// Edgecache: the paper's motivating edge-cloud scenario (§1) — a CDN
// edge store absorbing millions of small-object writes and reads over
// many persistent TCP connections, with one server core.
//
// The example runs a mixed PUT/GET workload with a Zipfian key
// distribution (hot objects, as CDN traffic has) over 32 concurrent
// connections and reports throughput, latency percentiles, and the
// storage-side evidence that the packet-as-storage mechanisms carried
// the load.
package main

import (
	"fmt"
	"log"
	"time"

	"packetstore"
	"packetstore/internal/kvclient"
	"packetstore/internal/wrkgen"
)

func main() {
	cluster, err := packetstore.NewCluster(packetstore.ClusterConfig{
		Profile: packetstore.PaperProfile(),
		StoreConfig: packetstore.StoreConfig{
			MetaSlots: 1 << 16, DataSlots: 1 << 16, ChecksumReuse: true,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Warm the cache: populate 4096 objects of 1KB.
	fmt.Println("populating 4096 objects...")
	seed, err := cluster.Dial()
	if err != nil {
		log.Fatal(err)
	}
	obj := make([]byte, 1024)
	for i := 0; i < 4096; i++ {
		if err := seed.Put([]byte(fmt.Sprintf("key%012d", i)), obj); err != nil {
			log.Fatal(err)
		}
	}
	seed.Close()

	// Edge traffic: 90% GET / 10% PUT, Zipfian popularity, 32 parallel
	// persistent connections (each a downstream cache or client).
	fmt.Println("running edge workload: 32 connections, 90/10 GET/PUT, zipf keys...")
	res, err := wrkgen.Run(wrkgen.Config{
		Conns:     32,
		Duration:  2 * time.Second,
		Warmup:    300 * time.Millisecond,
		ValueSize: 1024,
		KeySpace:  4096,
		KeyDist:   wrkgen.DistZipf,
		PutPct:    10,
		Seed:      42,
	}, func() (kvclient.Conn, error) { return cluster.DialRaw() })
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nthroughput: %.0f req/s over %d connections\n", res.Throughput(), 32)
	fmt.Printf("latency: mean=%v p50=%v p99=%v max=%v\n",
		res.Hist.Mean().Round(time.Microsecond),
		res.Hist.Percentile(50).Round(time.Microsecond),
		res.Hist.Percentile(99).Round(time.Microsecond),
		res.Hist.Max().Round(time.Microsecond))
	fmt.Printf("errors: %d\n", res.Errors)

	st := cluster.ServerStats()
	fmt.Printf("\nserver: %d requests (%d GET, %d PUT)\n", st.Requests, st.Gets, st.Puts)
	fmt.Printf("zero-copy puts: %d, zero-copy gets (values transmitted straight from PM): %d\n",
		st.ZeroCopyPuts, st.ZeroCopyGets)
	fmt.Printf("NIC checksums harvested: %d, software sums: %d\n", st.DerivedSums, st.SoftwareSums)

	ss := cluster.Store.Stats()
	fmt.Printf("store: %d records, %d bytes ingested without copies\n", ss.Records, ss.BytesStored)
}
