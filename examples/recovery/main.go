// Recovery: the paper's §5.1 requirement — persisted packet metadata must
// be locatable and consistent after a reboot.
//
// The example loads a store over the network, power-fails the machine
// mid-run (losing every cache line that was not flushed and fenced),
// "reboots", recovers the store by rescanning the persistent packet
// metadata, and proves three properties:
//
//  1. every acknowledged write survived,
//  2. the transport-derived checksums verify every record's bytes,
//  3. deliberately corrupted media is detected, not served.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"packetstore"
)

func main() {
	cluster, err := packetstore.NewCluster(packetstore.ClusterConfig{
		Profile: packetstore.PaperProfile(),
	})
	if err != nil {
		log.Fatal(err)
	}

	client, err := cluster.Dial()
	if err != nil {
		log.Fatal(err)
	}
	value := make([]byte, 1024)
	rand.New(rand.NewSource(7)).Read(value)
	const n = 500
	fmt.Printf("writing %d records over the network...\n", n)
	for i := 0; i < n; i++ {
		if err := client.Put([]byte(fmt.Sprintf("key%06d", i)), value); err != nil {
			log.Fatal(err)
		}
	}
	region := cluster.Region
	cluster.Close()

	fmt.Println("POWER FAILURE: unflushed cache lines are lost")
	region.Crash(time.Now().UnixNano() % 1000)

	fmt.Println("rebooting: rescanning persistent packet metadata...")
	t0 := time.Now()
	cluster2, err := packetstore.NewCluster(packetstore.ClusterConfig{Region: region})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster2.Close()
	fmt.Printf("recovered %d/%d records in %v\n",
		cluster2.Store.Len(), n, time.Since(t0).Round(time.Microsecond))
	if cluster2.Store.Len() != n {
		log.Fatalf("LOST %d acknowledged records", n-cluster2.Store.Len())
	}

	// 2. Integrity: the stored checksums came from the NIC on the
	// original writes; they still verify every byte.
	bad, err := cluster2.Store.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrity scrub after crash: %d corrupt records\n", len(bad))

	// Reads over the network still return the original bytes.
	client2, err := cluster2.Dial()
	if err != nil {
		log.Fatal(err)
	}
	got, ok, err := client2.Get([]byte("key000123"))
	if err != nil || !ok || !bytes.Equal(got, value) {
		log.Fatalf("post-crash read wrong: ok=%v err=%v", ok, err)
	}
	fmt.Println("post-crash network read: intact")

	// 3. Silent media corruption: flip one bit inside a stored value and
	// scrub again — the transport-derived checksum catches it.
	ref, _, _ := cluster2.Store.GetRef([]byte("key000200"))
	cluster2.Store.Slice(ref.Extents[0].Off, 1)[0] ^= 0x01
	bad, _ = cluster2.Store.Verify()
	fmt.Printf("after injecting a bit flip: scrub reports %d corrupt record(s): %q\n",
		len(bad), bad)
	if len(bad) != 1 {
		log.Fatal("corruption was not detected")
	}
	fmt.Println("done: durability, recovery and integrity all hold")
}
