// Netstack: using the simulated network substrate on its own — two hosts
// with NICs, TCP/IP stacks and a deliberately awful link (1% loss,
// reordering, duplication). The transport's retransmission, fast
// recovery and out-of-order reassembly deliver the data intact; the
// packet-buffer clone mechanism (the paper's §4.1 example of packet
// metadata as infrastructure) is what holds segments for retransmission.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/host"
	"packetstore/internal/tcp"
)

func main() {
	prof := calib.Paper()
	tb := host.NewTestbed(host.Options{
		Profile: prof,
		Loss:    0.01, Reorder: 0.02, Duplicate: 0.005,
		Seed:        1,
		StackConfig: tcp.Config{MinRTO: 5 * time.Millisecond},
	})
	defer tb.Close()

	fmt.Printf("hosts: %s (%s, %s) <-> %s (%s, %s)\n",
		tb.Client.Name, tb.Client.IP, tb.Client.MAC,
		tb.Server.Name, tb.Server.IP, tb.Server.MAC)
	fmt.Println("link: 25Gbit/s, 3us, 1% loss, 2% reorder, 0.5% duplicate")

	lst, err := tb.Server.Stack.Listen(9000)
	if err != nil {
		log.Fatal(err)
	}

	// Server: accept one connection and echo everything back.
	go func() {
		c, err := lst.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64<<10)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				if _, werr := c.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				c.Close()
				return
			}
		}
	}()

	c, err := tb.Dial(9000)
	if err != nil {
		log.Fatal(err)
	}
	payload := make([]byte, 1<<20)
	rand.New(rand.NewSource(2)).Read(payload)

	fmt.Printf("transferring %d KB through the lossy link (and back)...\n", len(payload)>>10)
	start := time.Now()
	go func() {
		if _, err := c.Write(payload); err != nil {
			log.Fatal(err)
		}
	}()
	echo := make([]byte, 0, len(payload))
	rb := make([]byte, 64<<10)
	for len(echo) < len(payload) {
		n, err := c.Read(rb)
		if err != nil {
			log.Fatalf("read after %d bytes: %v", len(echo), err)
		}
		echo = append(echo, rb[:n]...)
	}
	elapsed := time.Since(start)

	if !bytes.Equal(echo, payload) {
		log.Fatal("payload corrupted in transit")
	}
	fmt.Printf("echoed %d KB intact in %v (%.1f Mbit/s effective, both directions)\n",
		len(payload)>>10, elapsed.Round(time.Millisecond),
		float64(len(payload)*2*8)/elapsed.Seconds()/1e6)

	cs, ss := tb.Client.NIC.Stats(), tb.Server.NIC.Stats()
	fmt.Printf("client NIC: tx=%d rx=%d (checksum-verified %d)\n", cs.TxPackets, cs.RxPackets, cs.RxCsumGood)
	fmt.Printf("server NIC: tx=%d rx=%d tso-segments=%d\n", ss.TxPackets, ss.RxPackets, ss.TSOSegments)
}
