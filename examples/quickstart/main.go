// Quickstart: stand up a complete simulated deployment — client machine,
// 25GbE-like fabric, storage server whose NIC receives straight into the
// packetstore's persistent-memory packet pool — and issue a few requests.
package main

import (
	"fmt"
	"log"

	"packetstore"
)

func main() {
	// A cluster with the paper-calibrated latency model: PM flushes cost
	// what Optane flushes cost, the fabric has microseconds of latency.
	cluster, err := packetstore.NewCluster(packetstore.ClusterConfig{
		Profile: packetstore.PaperProfile(),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	client, err := cluster.Dial()
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// PUT: the value travels as TCP payload, lands in persistent memory
	// via NIC DMA, and is committed in place — no copy, no software
	// checksum (the NIC's is reused), no storage allocator.
	if err := client.Put([]byte("motd"), []byte("packets are data structures")); err != nil {
		log.Fatal(err)
	}

	val, ok, err := client.Get([]byte("motd"))
	if err != nil || !ok {
		log.Fatalf("get failed: %v %v", ok, err)
	}
	fmt.Printf("motd = %q\n", val)

	// The server-side evidence that the paper's mechanisms ran.
	stats := cluster.ServerStats()
	fmt.Printf("zero-copy puts: %d, NIC checksums harvested: %d\n",
		stats.ZeroCopyPuts, stats.DerivedSums)

	// Every record carries the transport-derived checksum; scrub it.
	bad, err := cluster.Store.Verify()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("integrity scrub: %d corrupt records\n", len(bad))

	// The record's storage metadata IS packet metadata: the NIC's receive
	// timestamp became the store timestamp.
	ref, _, _ := cluster.Store.GetRef([]byte("motd"))
	fmt.Printf("stored at %v (NIC hardware timestamp), %d extents, checksum %#04x\n",
		ref.HWTime.Format("15:04:05.000000"), len(ref.Extents), ref.Csum&0xffff)
}
