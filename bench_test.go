package packetstore

// Repository-level benchmarks: one per table/figure of the paper's
// evaluation (experiment ids from DESIGN.md). Each benchmark measures one
// request round trip per iteration against the configuration the
// experiment compares, with the hardware latency model active, so ns/op
// is directly the mean RTT the corresponding table/figure row reports.
//
// The full sweep harness (all connection counts, breakdowns, printed in
// the paper's table formats) is cmd/pktbench; EXPERIMENTS.md records its
// output.

import (
	"fmt"
	"testing"
	"time"

	"packetstore/internal/bench"
	"packetstore/internal/calib"
)

// BenchmarkTable1_Breakdown (E1) runs the full Table 1 measurement —
// networking, data-management and persistence breakdown of a 1KB write
// against the NoveLSM baseline — once per -benchtime unit and reports the
// headline figures as custom metrics.
func BenchmarkTable1_Breakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable1(calib.Paper(), 2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.NetworkingRTT.Nanoseconds())/1e3, "net_us")
		b.ReportMetric(float64(res.DataMgmt.Nanoseconds())/1e3, "datamgmt_us")
		b.ReportMetric(float64(res.Persistence.Nanoseconds())/1e3, "persist_us")
		b.ReportMetric(float64(res.TotalRTT.Nanoseconds())/1e3, "total_us")
	}
}

// BenchmarkTable2_PktStoreBreakdown (E3) is Table 1's methodology against
// the packetstore.
func BenchmarkTable2_PktStoreBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunTable2(calib.Paper(), 2000)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DataMgmt.Nanoseconds())/1e3, "datamgmt_us")
		b.ReportMetric(float64(res.Checksum.Nanoseconds())/1e3, "checksum_us")
		b.ReportMetric(float64(res.TotalRTT.Nanoseconds())/1e3, "total_us")
	}
}

// BenchmarkFigure2 (E2/E5) reports throughput and mean latency for each
// (series, connection count) point of Figure 2 including the packetstore
// series, as sub-benchmarks.
func BenchmarkFigure2(b *testing.B) {
	for _, conns := range []int{1, 25, 50, 75, 100} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			dur := 500 * time.Millisecond
			res, err := bench.RunFigure2(calib.Paper(), []int{conns}, dur, true)
			if err != nil {
				b.Fatal(err)
			}
			for _, s := range res.Series {
				name := map[string]string{
					"Net.+persist.":            "rawpm",
					"Net.+data mgmt.+persist.": "novelsm",
					"Packetstore (ours)":       "pktstore",
				}[s.Name]
				b.ReportMetric(s.Throughput[0], name+"_reqps")
				b.ReportMetric(float64(s.MeanLat[0].Nanoseconds())/1e3, name+"_lat_us")
			}
			// One sweep regardless of b.N: the duration bounds the work.
			_ = b.N
		})
	}
}

// BenchmarkAblation (E4) reports the packetstore's mechanism ablations.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunAblation(calib.Paper(), 1500)
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range res.Rows {
			key := map[string]string{
				"full (reuse+zero-copy)":     "full",
				"checksum reuse off":         "no_reuse",
				"zero-copy off (rx in DRAM)": "no_zerocopy",
			}[row.Name]
			b.ReportMetric(float64(row.MeanRTT.Nanoseconds())/1e3, key+"_rtt_us")
		}
	}
}

// BenchmarkRecovery (E6) measures post-crash recovery time per record.
func BenchmarkRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunRecovery(calib.Paper(), []int{10000})
		if err != nil {
			b.Fatal(err)
		}
		p := res.Points[0]
		b.ReportMetric(float64(p.RecoverTime.Nanoseconds())/float64(p.Records), "recover_ns_per_rec")
	}
}

// BenchmarkMetaSize (E7) sweeps the persistent metadata slot size.
func BenchmarkMetaSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := bench.RunMetaSize(calib.Paper(), 1000, []int{128, 256})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Points {
			b.ReportMetric(float64(p.PutRTT.Nanoseconds())/1e3,
				fmt.Sprintf("slot%d_put_us", p.SlotSize))
		}
	}
}

// BenchmarkPutRTT_PktStore is the headline end-to-end number: one 1KB PUT
// round trip per iteration against the packetstore over the calibrated
// fabric.
func BenchmarkPutRTT_PktStore(b *testing.B) {
	benchmarkPutRTT(b, true)
}

// BenchmarkPutRTT_NoLatencyModel isolates the real software cost of the
// same round trip (no emulated hardware delays).
func BenchmarkPutRTT_NoLatencyModel(b *testing.B) {
	benchmarkPutRTT(b, false)
}

func benchmarkPutRTT(b *testing.B, model bool) {
	prof := NoLatencyProfile()
	if model {
		prof = PaperProfile()
	}
	cluster, err := NewCluster(ClusterConfig{
		Profile: prof,
		StoreConfig: StoreConfig{
			MetaSlots: 1 << 16, DataSlots: 1 << 16, ChecksumReuse: true,
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	cl, err := cluster.Dial()
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	val := make([]byte, 1024)
	key := make([]byte, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("key%012d", i%50000))
		if err := cl.Put(key, val); err != nil {
			b.Fatal(err)
		}
	}
}
