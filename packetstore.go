// Package packetstore is a reproduction of "Packets as Persistent
// In-Memory Data Structures" (Michio Honda, HotNets 2021): a key-value
// store whose on-media format is persistent packet metadata.
//
// The package is a facade over the internal implementation:
//
//   - Store — the packetstore itself: persistent packet-metadata slots in
//     a (simulated) persistent-memory region, indexed by a persistent
//     skip list built out of those slots; values are stored where the NIC
//     wrote them, integrity checksums are harvested from the transport,
//     and timestamps come from NIC hardware stamps.
//   - Region — the simulated PM device (latency model + crash semantics),
//     optionally file-backed for durability across process runs.
//   - Cluster — a complete simulated deployment (client host, server
//     host, 25GbE-like fabric, storage server) for experiments and
//     examples.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduced evaluation.
package packetstore

import (
	"fmt"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/host"
	"packetstore/internal/kvclient"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
	"packetstore/internal/tcp"
)

// Re-exported core types: the store and its vocabulary.
type (
	// Store is the packetstore. See internal/core for the full API.
	Store = core.Store
	// StoreConfig tunes a Store's geometry and mechanisms.
	StoreConfig = core.Config
	// Extent locates value bytes in the PM data area.
	Extent = core.Extent
	// Ref is a zero-copy reference to a stored record.
	Ref = core.Ref
	// Record is an iteration result.
	Record = core.Record
	// PutOptions drives the zero-copy ingest path.
	PutOptions = core.PutOptions
	// ShardedStore partitions a region into independent store shards
	// routed by key hash (see DESIGN.md §5.7).
	ShardedStore = core.ShardedStore

	// Region is the simulated persistent-memory device.
	Region = pmem.Region
	// Profile is a hardware latency model.
	Profile = calib.Profile

	// Client is a KV-over-HTTP protocol client.
	Client = kvclient.Client
)

// Store errors.
var (
	ErrFull       = core.ErrFull
	ErrKeyTooLong = core.ErrKeyTooLong
	ErrCorrupt    = core.ErrCorrupt
	// ErrShardDown marks operations routed to a quarantined shard; the
	// rest of the store keeps serving (match with errors.Is).
	ErrShardDown = core.ErrShardDown
)

// Profiles.
var (
	// PaperProfile calibrates hardware latencies to the paper's testbed.
	PaperProfile = calib.Paper
	// NoLatencyProfile disables all hardware latency emulation.
	NoLatencyProfile = calib.Off
)

// NewRegion creates an in-memory simulated PM region.
func NewRegion(size int, p Profile) *Region { return pmem.New(size, p) }

// OpenRegionFile opens (or creates) a file-backed PM region, giving real
// durability across process restarts.
func OpenRegionFile(path string, size int, p Profile) (*Region, error) {
	return pmem.OpenFile(path, size, p)
}

// Open formats or recovers a Store over a region.
func Open(r *Region, cfg StoreConfig) (*Store, error) { return core.Open(r, cfg) }

// OpenSharded formats or recovers a ShardedStore of n partitions over a
// region (recovery scans shards in parallel). Size the region with
// ShardedRegionSize.
func OpenSharded(r *Region, cfg StoreConfig, n int) (*ShardedStore, error) {
	return core.OpenSharded(r, cfg, n)
}

// ShardedRegionSize returns the region size n shards of cfg need.
func ShardedRegionSize(cfg StoreConfig, n int) int { return core.ShardedRegionSize(cfg, n) }

// Cluster is a complete simulated deployment: a storage server running
// the packetstore over the simulated network stack, and a client host to
// connect from. It is the programmatic form of the paper's testbed.
type Cluster struct {
	// Store is shard 0 — the whole store in the default single-shard
	// deployment.
	Store  *Store
	Region *Region
	// Sharded is the full sharded view (one shard unless
	// ClusterConfig.Shards > 1).
	Sharded *ShardedStore

	tb  *host.Testbed
	srv *kvserver.Server
}

// ClusterConfig configures NewCluster.
type ClusterConfig struct {
	// Profile selects the latency model (default: no emulated latency).
	Profile Profile
	// StoreConfig shapes the store (defaults: 4096 slots of each kind,
	// checksum reuse on).
	StoreConfig StoreConfig
	// Region supplies an existing PM region (e.g. file-backed, or one
	// that survived a simulated crash); nil allocates a fresh one.
	Region *Region
	// Shards partitions the store (and the server) N ways: N store
	// shards, N NIC RSS queues each receiving into its shard's PM
	// partition, N server event loops. 0 or 1 keeps the original
	// single-core deployment bit-for-bit.
	Shards int
	// Nodes models a NUMA machine with that many sockets. Shard i's PM
	// partition, RSS queue interrupt and event loop all land on node
	// i mod Nodes (the aligned placement), and the region bills the
	// profile's remote rates on every cache line that crosses sockets.
	// 0 or 1 keeps the flat single-socket model — a strict no-op on
	// the charging path.
	Nodes int
}

// NewCluster builds and starts a simulated deployment. The server NIC
// receives directly into the store's PM packet pool (the PASTE
// configuration), so the zero-copy and checksum-reuse paths are active.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	sc := cfg.StoreConfig
	if sc.MetaSlots == 0 && sc.DataSlots == 0 {
		sc.ChecksumReuse = true
	}
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	r := cfg.Region
	if r == nil {
		r = pmem.New(core.ShardedRegionSize(sc, n), cfg.Profile)
	}
	if n == 1 {
		// Single shard: the original deployment, unchanged layout and
		// single-queue server path.
		store, err := core.Open(r, sc)
		if err != nil {
			return nil, err
		}
		tb := host.NewTestbed(host.Options{
			Profile:      cfg.Profile,
			ServerRxPool: store.Pool(),
		})
		srv, err := kvserver.New(tb.Server.Stack, 80, kvserver.PktStore{S: store})
		if err != nil {
			tb.Close()
			return nil, err
		}
		go srv.Run()
		return &Cluster{
			Store: store, Region: r, Sharded: core.WrapSharded(store),
			tb: tb, srv: srv,
		}, nil
	}
	ss, err := core.OpenSharded(r, sc, n)
	if err != nil {
		return nil, err
	}
	var loopNodes, queueNodes []int
	if cfg.Nodes > 1 {
		// Aligned placement: shard i, its RSS queue and its event loop
		// all live on node i mod Nodes. Placement must be installed
		// before the server is built — the server caches whether the
		// deployment is multi-socket when it wires its loops.
		shardNode := make([]int, n)
		for i := range shardNode {
			shardNode[i] = i % cfg.Nodes
		}
		if err := ss.SetNUMAPlacement(cfg.Profile.NUMA, cfg.Nodes, shardNode); err != nil {
			return nil, err
		}
		loopNodes, queueNodes = shardNode, shardNode
	}
	if d := ss.DownShards(); d > 0 {
		// The NIC's RSS queues receive directly into each shard's PM
		// partition; a deployment cannot wire queues to a quarantined
		// shard's pool. Degraded serving is for store-level embedders —
		// a cluster needs every shard healthy.
		for i, h := range ss.Health() {
			if h != nil {
				return nil, fmt.Errorf("cluster: shard %d quarantined: %w", i, h)
			}
		}
	}
	tb := host.NewTestbed(host.Options{
		Profile:          cfg.Profile,
		ServerRxPools:    ss.Pools(),
		ServerQueueNodes: queueNodes,
	})
	srv, err := kvserver.NewWithConfig(tb.Server.Stack, 80, kvserver.ShardedPktStore{S: ss},
		kvserver.Config{LoopNodes: loopNodes})
	if err != nil {
		tb.Close()
		return nil, err
	}
	go srv.Run()
	return &Cluster{
		Store: ss.Shard(0), Region: r, Sharded: ss,
		tb: tb, srv: srv,
	}, nil
}

// Dial opens a client connection to the cluster's server and wraps it in
// a protocol client.
func (c *Cluster) Dial() (*Client, error) {
	conn, err := c.tb.Dial(80)
	if err != nil {
		return nil, err
	}
	return kvclient.New(conn), nil
}

// DialRaw opens a raw transport connection (for custom protocols or load
// generators).
func (c *Cluster) DialRaw() (*tcp.Conn, error) { return c.tb.Dial(80) }

// ServerStats reports the storage server's counters.
func (c *Cluster) ServerStats() kvserver.Stats { return c.srv.Stats() }

// Close stops the server, tears the fabric down, and syncs the region's
// durable image to its backing file (when file-backed), returning the
// sync error instead of dropping it. The Region (and the data in it)
// survives, so a new Cluster can be started over it — the programmatic
// equivalent of a reboot.
func (c *Cluster) Close() error {
	c.srv.Close()
	c.tb.Close()
	return c.Region.Sync()
}

// String identifies the library.
func String() string { return fmt.Sprintf("packetstore (HotNets'21 reproduction)") }
