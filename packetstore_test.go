package packetstore

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestClusterQuickstartFlow(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	val := []byte("hello persistent packets")
	if err := cl.Put([]byte("greeting"), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get([]byte("greeting"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	if cluster.Store.Len() != 1 {
		t.Fatalf("store has %d records", cluster.Store.Len())
	}
	st := cluster.ServerStats()
	if st.ZeroCopyPuts != 1 {
		t.Fatalf("zero-copy path inactive: %+v", st)
	}
}

func TestClusterSurvivesReboot(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := cluster.Dial()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	region := cluster.Region
	cluster.Close()

	region.Crash(rand.New(rand.NewSource(1)))

	cluster2, err := NewCluster(ClusterConfig{Region: region})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster2.Close()
	cl2, _ := cluster2.Dial()
	got, ok, err := cl2.Get([]byte("k"))
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("after reboot: %q %v %v", got, ok, err)
	}
}

func TestDirectStoreAPI(t *testing.T) {
	r := NewRegion(StoreConfig{}.RegionSize(), NoLatencyProfile())
	s, err := Open(r, StoreConfig{VerifyOnGet: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("direct"), []byte("api")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("direct"))
	if err != nil || !ok || string(v) != "api" {
		t.Fatalf("%q %v %v", v, ok, err)
	}
	if String() == "" {
		t.Fatal("empty String")
	}
}
