package packetstore

import (
	"bytes"
	"testing"
)

func TestClusterQuickstartFlow(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	cl, err := cluster.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	val := []byte("hello persistent packets")
	if err := cl.Put([]byte("greeting"), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get([]byte("greeting"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("get: %q %v %v", got, ok, err)
	}
	if cluster.Store.Len() != 1 {
		t.Fatalf("store has %d records", cluster.Store.Len())
	}
	st := cluster.ServerStats()
	if st.ZeroCopyPuts != 1 {
		t.Fatalf("zero-copy path inactive: %+v", st)
	}
}

func TestClusterSurvivesReboot(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := cluster.Dial()
	if err := cl.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	region := cluster.Region
	cluster.Close()

	region.Crash(1)

	cluster2, err := NewCluster(ClusterConfig{Region: region})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster2.Close()
	cl2, _ := cluster2.Dial()
	got, ok, err := cl2.Get([]byte("k"))
	if err != nil || !ok || string(got) != "v" {
		t.Fatalf("after reboot: %q %v %v", got, ok, err)
	}
}

func TestClusterSharded(t *testing.T) {
	cluster, err := NewCluster(ClusterConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.Dial()
	if err != nil {
		t.Fatal(err)
	}

	// Keys land on all four shards regardless of which queue this one
	// connection hashes to: aligned PUTs take the zero-copy path, the
	// rest fall back to the copy path via the sharded backend.
	const n = 64
	key := func(i int) []byte { return []byte{byte('a' + i%26), byte('0' + i/26), 'k'} }
	for i := 0; i < n; i++ {
		if err := cl.Put(key(i), bytes.Repeat([]byte{byte(i)}, 100+i)); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	for i := 0; i < n; i++ {
		got, ok, err := cl.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100+i)) {
			t.Fatalf("get %d: ok=%v err=%v", i, ok, err)
		}
	}
	if cluster.Sharded.Len() != n {
		t.Fatalf("sharded len %d, want %d", cluster.Sharded.Len(), n)
	}
	populated := 0
	for i := 0; i < cluster.Sharded.Shards(); i++ {
		if cluster.Sharded.Shard(i).Len() > 0 {
			populated++
		}
	}
	if populated < 2 {
		t.Fatalf("keys landed on %d shards, want spread", populated)
	}
	kvs, err := cl.Range(nil, nil, 0)
	if err != nil || len(kvs) != n {
		t.Fatalf("range: %d kvs, err %v", len(kvs), err)
	}
	for i := 1; i < len(kvs); i++ {
		if bytes.Compare(kvs[i-1].Key, kvs[i].Key) >= 0 {
			t.Fatalf("range out of order at %d", i)
		}
	}
	cl.Close()
	region := cluster.Region
	cluster.Close()

	// Crash and reboot at the same shard count: parallel recovery must
	// round-trip every committed record.
	region.Crash(7)
	cluster2, err := NewCluster(ClusterConfig{Region: region, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster2.Close()
	cl2, err := cluster2.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < n; i++ {
		got, ok, err := cl2.Get(key(i))
		if err != nil || !ok || !bytes.Equal(got, bytes.Repeat([]byte{byte(i)}, 100+i)) {
			t.Fatalf("after reboot, get %d: ok=%v err=%v", i, ok, err)
		}
	}
}

func TestDirectStoreAPI(t *testing.T) {
	r := NewRegion(StoreConfig{}.RegionSize(), NoLatencyProfile())
	s, err := Open(r, StoreConfig{VerifyOnGet: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("direct"), []byte("api")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("direct"))
	if err != nil || !ok || string(v) != "api" {
		t.Fatalf("%q %v %v", v, ok, err)
	}
	if String() == "" {
		t.Fatal("empty String")
	}
}
