// Package httpmsg implements the minimal HTTP/1.1 subset the paper's
// workload uses: persistent connections carrying storage requests (the
// testbed drives NoveLSM with wrk over HTTP/TCP).
//
// The parser is incremental and zero-copy-friendly: it consumes input in
// arbitrary chunks (as TCP delivers packet buffers) and reports the byte
// ranges of the body rather than accumulating it, so a PM-backed receive
// path can record where body bytes already live instead of copying them.
package httpmsg

import (
	"fmt"
	"strconv"
	"strings"
)

// Request is a parsed HTTP request line plus the headers the KV protocol
// uses.
type Request struct {
	Method        string
	Path          string
	ContentLength int
	// BudgetUs is the client's remaining latency budget in microseconds
	// (X-Budget-Us header), or 0 when the client did not send one. The
	// header is optional, so old clients interoperate unchanged.
	BudgetUs int64
	// BodyComplete is set once the whole body has been consumed.
	BodyComplete bool
}

// parserState enumerates the incremental parser's positions.
type parserState int

const (
	stateLine parserState = iota
	stateHeaders
	stateBody
	stateDone
)

// RequestParser incrementally parses a stream of pipelined requests.
type RequestParser struct {
	st        parserState
	line      []byte // accumulated header bytes (request line + headers)
	req       Request
	bodyLeft  int
	maxHeader int
}

// NewRequestParser returns a parser; maxHeader bounds accumulated header
// bytes per request (default 8KB).
func NewRequestParser(maxHeader int) *RequestParser {
	if maxHeader <= 0 {
		maxHeader = 8 << 10
	}
	return &RequestParser{maxHeader: maxHeader}
}

// BodyChunk describes a byte range of the input chunk that belongs to the
// current request's body.
type BodyChunk struct {
	Off, Len int
}

// Result reports the outcome of feeding one chunk.
type Result struct {
	// Consumed is how many bytes of the chunk were used; the remainder
	// belongs to the next request and must be re-fed.
	Consumed int
	// HeaderDone is set when the request line and headers completed
	// within this chunk.
	HeaderDone bool
	// Body is the byte range of this chunk holding body bytes.
	Body BodyChunk
	// Done is set when the request (headers + body) is complete.
	Done bool
	// Err is a fatal protocol error; the connection must be closed.
	Err error
}

// Request returns the request being (or just finished being) parsed.
func (p *RequestParser) Request() Request { return p.req }

// Feed consumes input bytes. Call repeatedly with successive chunks; after
// a Result with Done, call Reset before feeding the next request's bytes
// (any unconsumed suffix of the chunk belongs to that next request).
func (p *RequestParser) Feed(chunk []byte) Result {
	var res Result
	i := 0
	for i < len(chunk) {
		switch p.st {
		case stateDone:
			res.Consumed = i
			res.Done = true
			return res
		case stateLine, stateHeaders:
			// Accumulate until the blank line ends the header block.
			p.line = append(p.line, chunk[i])
			i++
			if len(p.line) > p.maxHeader {
				res.Err = fmt.Errorf("httpmsg: header block exceeds %d bytes", p.maxHeader)
				res.Consumed = i
				return res
			}
			if n := len(p.line); n >= 4 && string(p.line[n-4:]) == "\r\n\r\n" {
				if err := p.parseHeaderBlock(); err != nil {
					res.Err = err
					res.Consumed = i
					return res
				}
				res.HeaderDone = true
				p.bodyLeft = p.req.ContentLength
				if p.bodyLeft == 0 {
					p.req.BodyComplete = true
					p.st = stateDone
					res.Consumed = i
					res.Done = true
					return res
				}
				p.st = stateBody
			}
		case stateBody:
			n := len(chunk) - i
			if n > p.bodyLeft {
				n = p.bodyLeft
			}
			if res.Body.Len == 0 {
				res.Body.Off = i
			}
			res.Body.Len += n
			p.bodyLeft -= n
			i += n
			if p.bodyLeft == 0 {
				p.req.BodyComplete = true
				p.st = stateDone
				res.Consumed = i
				res.Done = true
				return res
			}
		}
	}
	res.Consumed = i
	return res
}

// Reset prepares the parser for the next pipelined request.
func (p *RequestParser) Reset() {
	p.st = stateLine
	p.line = p.line[:0]
	p.req = Request{}
	p.bodyLeft = 0
}

func (p *RequestParser) parseHeaderBlock() error {
	text := string(p.line)
	lines := strings.Split(text, "\r\n")
	if len(lines) < 1 {
		return fmt.Errorf("httpmsg: empty header block")
	}
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/1.") {
		return fmt.Errorf("httpmsg: malformed request line %q", lines[0])
	}
	p.req.Method = parts[0]
	p.req.Path = parts[1]
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		colon := strings.IndexByte(ln, ':')
		if colon < 0 {
			return fmt.Errorf("httpmsg: malformed header %q", ln)
		}
		name := strings.ToLower(strings.TrimSpace(ln[:colon]))
		val := strings.TrimSpace(ln[colon+1:])
		switch name {
		case "content-length":
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("httpmsg: bad content-length %q", val)
			}
			p.req.ContentLength = n
		case "x-budget-us":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("httpmsg: bad x-budget-us %q", val)
			}
			p.req.BudgetUs = n
		}
	}
	return nil
}

// AppendRequest serializes a request with a body of bodyLen bytes into
// dst, returning the extended slice. The body itself is appended by the
// caller (possibly as packet fragments).
func AppendRequest(dst []byte, method, path string, bodyLen int) []byte {
	return AppendRequestBudget(dst, method, path, bodyLen, 0)
}

// AppendRequestBudget is AppendRequest plus an X-Budget-Us header when
// budgetUs > 0: the client's remaining latency budget, letting the server
// drop the request instead of executing it once the budget has lapsed.
func AppendRequestBudget(dst []byte, method, path string, bodyLen int, budgetUs int64) []byte {
	dst = append(dst, method...)
	dst = append(dst, ' ')
	dst = append(dst, path...)
	dst = append(dst, " HTTP/1.1\r\n"...)
	if bodyLen > 0 || method == "PUT" || method == "POST" {
		dst = append(dst, "Content-Length: "...)
		dst = strconv.AppendInt(dst, int64(bodyLen), 10)
		dst = append(dst, '\r', '\n')
	}
	if budgetUs > 0 {
		dst = append(dst, "X-Budget-Us: "...)
		dst = strconv.AppendInt(dst, budgetUs, 10)
		dst = append(dst, '\r', '\n')
	}
	return append(dst, '\r', '\n')
}

// Response is a parsed response status line plus content length.
type Response struct {
	Status        int
	ContentLength int
	// RetryAfterMs is the server's backoff hint in milliseconds
	// (Retry-After-Ms header on 503 sheds), or 0 when absent.
	RetryAfterMs int64
}

// ResponseParser incrementally parses responses on a client connection.
type ResponseParser struct {
	st       parserState
	line     []byte
	resp     Response
	bodyLeft int
}

// NewResponseParser returns a response parser.
func NewResponseParser() *ResponseParser { return &ResponseParser{} }

// Response returns the response being (or just finished being) parsed.
func (p *ResponseParser) Response() Response { return p.resp }

// Feed consumes input; semantics mirror RequestParser.Feed.
func (p *ResponseParser) Feed(chunk []byte) Result {
	var res Result
	i := 0
	for i < len(chunk) {
		switch p.st {
		case stateDone:
			res.Consumed = i
			res.Done = true
			return res
		case stateLine, stateHeaders:
			p.line = append(p.line, chunk[i])
			i++
			if len(p.line) > 8<<10 {
				res.Err = fmt.Errorf("httpmsg: response header block too large")
				res.Consumed = i
				return res
			}
			if n := len(p.line); n >= 4 && string(p.line[n-4:]) == "\r\n\r\n" {
				if err := p.parseStatusBlock(); err != nil {
					res.Err = err
					res.Consumed = i
					return res
				}
				res.HeaderDone = true
				p.bodyLeft = p.resp.ContentLength
				if p.bodyLeft == 0 {
					p.st = stateDone
					res.Consumed = i
					res.Done = true
					return res
				}
				p.st = stateBody
			}
		case stateBody:
			n := len(chunk) - i
			if n > p.bodyLeft {
				n = p.bodyLeft
			}
			if res.Body.Len == 0 {
				res.Body.Off = i
			}
			res.Body.Len += n
			p.bodyLeft -= n
			i += n
			if p.bodyLeft == 0 {
				p.st = stateDone
				res.Consumed = i
				res.Done = true
				return res
			}
		}
	}
	res.Consumed = i
	return res
}

// Reset prepares for the next response.
func (p *ResponseParser) Reset() {
	p.st = stateLine
	p.line = p.line[:0]
	p.resp = Response{}
	p.bodyLeft = 0
}

func (p *ResponseParser) parseStatusBlock() error {
	lines := strings.Split(string(p.line), "\r\n")
	parts := strings.SplitN(lines[0], " ", 3)
	if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/1.") {
		return fmt.Errorf("httpmsg: malformed status line %q", lines[0])
	}
	code, err := strconv.Atoi(parts[1])
	if err != nil {
		return fmt.Errorf("httpmsg: bad status code %q", parts[1])
	}
	p.resp.Status = code
	for _, ln := range lines[1:] {
		if ln == "" {
			continue
		}
		colon := strings.IndexByte(ln, ':')
		if colon < 0 {
			return fmt.Errorf("httpmsg: malformed header %q", ln)
		}
		name := strings.TrimSpace(ln[:colon])
		val := strings.TrimSpace(ln[colon+1:])
		switch {
		case strings.EqualFold(name, "content-length"):
			n, err := strconv.Atoi(val)
			if err != nil || n < 0 {
				return fmt.Errorf("httpmsg: bad content-length")
			}
			p.resp.ContentLength = n
		case strings.EqualFold(name, "retry-after-ms"):
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return fmt.Errorf("httpmsg: bad retry-after-ms")
			}
			p.resp.RetryAfterMs = n
		}
	}
	return nil
}

// StatusText returns the reason phrase for the status codes the server
// emits.
func StatusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 201:
		return "Created"
	case 204:
		return "No Content"
	case 400:
		return "Bad Request"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	case 503:
		return "Service Unavailable"
	case 507:
		return "Insufficient Storage"
	}
	return "Unknown"
}

// AppendResponse serializes a response header block with a body of bodyLen
// bytes into dst.
func AppendResponse(dst []byte, status, bodyLen int) []byte {
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(status), 10)
	dst = append(dst, ' ')
	dst = append(dst, StatusText(status)...)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(bodyLen), 10)
	dst = append(dst, "\r\n\r\n"...)
	return dst
}

// AppendResponseRetryAfter serializes a response header block carrying a
// Retry-After-Ms backoff hint (milliseconds). Used on overload sheds so
// retrying clients can pace themselves off the server's own estimate
// instead of a blind exponential schedule.
func AppendResponseRetryAfter(dst []byte, status, bodyLen int, retryAfterMs int64) []byte {
	dst = append(dst, "HTTP/1.1 "...)
	dst = strconv.AppendInt(dst, int64(status), 10)
	dst = append(dst, ' ')
	dst = append(dst, StatusText(status)...)
	dst = append(dst, "\r\nContent-Length: "...)
	dst = strconv.AppendInt(dst, int64(bodyLen), 10)
	if retryAfterMs > 0 {
		dst = append(dst, "\r\nRetry-After-Ms: "...)
		dst = strconv.AppendInt(dst, retryAfterMs, 10)
	}
	dst = append(dst, "\r\n\r\n"...)
	return dst
}
