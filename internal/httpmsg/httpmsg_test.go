package httpmsg

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func feedAll(t *testing.T, p *RequestParser, input []byte, chunkSizes []int) ([]byte, Request) {
	t.Helper()
	var body []byte
	rest := input
	idx := 0
	for len(rest) > 0 {
		n := len(rest)
		if idx < len(chunkSizes) && chunkSizes[idx] < n {
			n = chunkSizes[idx]
		}
		idx++
		chunk := rest[:n]
		res := p.Feed(chunk)
		if res.Err != nil {
			t.Fatalf("Feed error: %v", res.Err)
		}
		body = append(body, chunk[res.Body.Off:res.Body.Off+res.Body.Len]...)
		rest = rest[res.Consumed:]
		if res.Done {
			if len(rest) != 0 {
				t.Fatalf("unconsumed bytes after Done: %q", rest)
			}
			return body, p.Request()
		}
	}
	t.Fatal("input exhausted before Done")
	return nil, Request{}
}

func TestParsePutRequest(t *testing.T) {
	raw := []byte("PUT /k/mykey HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
	p := NewRequestParser(0)
	body, req := feedAll(t, p, raw, nil)
	if req.Method != "PUT" || req.Path != "/k/mykey" || req.ContentLength != 5 {
		t.Fatalf("req %+v", req)
	}
	if string(body) != "hello" || !req.BodyComplete {
		t.Fatalf("body %q", body)
	}
}

func TestParseGetNoBody(t *testing.T) {
	raw := []byte("GET /k/x HTTP/1.1\r\n\r\n")
	p := NewRequestParser(0)
	body, req := feedAll(t, p, raw, nil)
	if req.Method != "GET" || len(body) != 0 {
		t.Fatalf("req %+v body %q", req, body)
	}
}

func TestParseArbitraryChunking(t *testing.T) {
	raw := []byte("PUT /k/abc HTTP/1.1\r\nContent-Length: 100\r\n\r\n")
	payload := make([]byte, 100)
	rand.New(rand.NewSource(1)).Read(payload)
	for i := range payload {
		payload[i] = 'a' + payload[i]%26
	}
	raw = append(raw, payload...)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		var sizes []int
		for s := 0; s < len(raw); {
			n := 1 + rng.Intn(20)
			sizes = append(sizes, n)
			s += n
		}
		p := NewRequestParser(0)
		body, req := feedAll(t, p, raw, sizes)
		if string(body) != string(payload) || req.ContentLength != 100 {
			t.Fatalf("trial %d: body mismatch", trial)
		}
	}
}

func TestPipelinedRequests(t *testing.T) {
	raw := []byte("PUT /k/a HTTP/1.1\r\nContent-Length: 3\r\n\r\nAAAGET /k/b HTTP/1.1\r\n\r\n")
	p := NewRequestParser(0)
	res := p.Feed(raw)
	if !res.Done || res.Err != nil {
		t.Fatalf("first request not done: %+v", res)
	}
	if p.Request().Method != "PUT" || string(raw[res.Body.Off:res.Body.Off+res.Body.Len]) != "AAA" {
		t.Fatal("first request wrong")
	}
	p.Reset()
	res2 := p.Feed(raw[res.Consumed:])
	if !res2.Done || p.Request().Method != "GET" || p.Request().Path != "/k/b" {
		t.Fatalf("second request wrong: %+v %+v", res2, p.Request())
	}
}

func TestMalformedRequests(t *testing.T) {
	cases := []string{
		"BROKEN\r\n\r\n",
		"GET /x SPDY/9\r\n\r\n",
		"GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",
		"PUT /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
		"PUT /x HTTP/1.1\r\nContent-Length: abc\r\n\r\n",
	}
	for _, c := range cases {
		p := NewRequestParser(0)
		res := p.Feed([]byte(c))
		if res.Err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestHeaderTooLarge(t *testing.T) {
	p := NewRequestParser(64)
	res := p.Feed([]byte("GET /aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa HTTP/1.1\r\n\r\n"))
	if res.Err == nil {
		t.Fatal("oversized header accepted")
	}
}

func TestAppendRequest(t *testing.T) {
	got := string(AppendRequest(nil, "PUT", "/k/x", 10))
	want := "PUT /k/x HTTP/1.1\r\nContent-Length: 10\r\n\r\n"
	if got != want {
		t.Fatalf("got %q want %q", got, want)
	}
	got = string(AppendRequest(nil, "GET", "/k/x", 0))
	if got != "GET /k/x HTTP/1.1\r\n\r\n" {
		t.Fatalf("got %q", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, c := range []struct {
		status  int
		bodyLen int
	}{{200, 0}, {200, 1024}, {404, 0}, {500, 3}, {507, 0}, {201, 0}, {204, 0}, {400, 0}, {999, 0}} {
		raw := AppendResponse(nil, c.status, c.bodyLen)
		body := make([]byte, c.bodyLen)
		for i := range body {
			body[i] = byte(i)
		}
		raw = append(raw, body...)
		p := NewResponseParser()
		var got []byte
		rest := raw
		for {
			res := p.Feed(rest)
			if res.Err != nil {
				t.Fatalf("status %d: %v", c.status, res.Err)
			}
			got = append(got, rest[res.Body.Off:res.Body.Off+res.Body.Len]...)
			rest = rest[res.Consumed:]
			if res.Done {
				break
			}
		}
		if p.Response().Status != c.status || len(got) != c.bodyLen {
			t.Fatalf("status %d: parsed %+v body %d", c.status, p.Response(), len(got))
		}
		p.Reset()
	}
}

func TestResponseParserMalformed(t *testing.T) {
	for _, c := range []string{
		"FTP/1.1 200 OK\r\n\r\n",
		"HTTP/1.1 abc OK\r\n\r\n",
		"HTTP/1.1 200 OK\r\nBadHeader\r\n\r\n",
		"HTTP/1.1 200 OK\r\nContent-Length: x\r\n\r\n",
	} {
		p := NewResponseParser()
		if res := p.Feed([]byte(c)); res.Err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestQuickParserNeverPanicsAndConsumes(t *testing.T) {
	f := func(junk []byte) bool {
		p := NewRequestParser(1 << 10)
		rest := junk
		for len(rest) > 0 {
			res := p.Feed(rest)
			if res.Err != nil {
				return true // rejection is fine
			}
			if res.Consumed == 0 && !res.Done {
				return false // no progress would spin the server
			}
			rest = rest[res.Consumed:]
			if res.Done {
				p.Reset()
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestStatusText(t *testing.T) {
	if StatusText(200) != "OK" || StatusText(404) != "Not Found" || StatusText(123) != "Unknown" {
		t.Fatal("status text")
	}
}

func BenchmarkParsePut1K(b *testing.B) {
	raw := []byte(fmt.Sprintf("PUT /k/benchkey HTTP/1.1\r\nContent-Length: %d\r\n\r\n", 1024))
	raw = append(raw, make([]byte, 1024)...)
	p := NewRequestParser(0)
	b.SetBytes(int64(len(raw)))
	for i := 0; i < b.N; i++ {
		res := p.Feed(raw)
		if !res.Done {
			b.Fatal("not done")
		}
		p.Reset()
	}
}
