package wal

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, recs [][]byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	r := NewReader(&buf)
	for i, want := range recs {
		got, err := r.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d mismatch: %d vs %d bytes", i, len(got), len(want))
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
}

func TestSmallRecords(t *testing.T) {
	roundTrip(t, [][]byte{[]byte("one"), []byte("two"), {}, []byte("three")})
}

func TestRecordSpanningBlocks(t *testing.T) {
	big := make([]byte, 3*BlockSize+123)
	rand.New(rand.NewSource(1)).Read(big)
	roundTrip(t, [][]byte{[]byte("pre"), big, []byte("post")})
}

func TestRecordExactlyFillingBlock(t *testing.T) {
	roundTrip(t, [][]byte{
		make([]byte, BlockSize-headerSize),
		make([]byte, BlockSize-2*headerSize),
		[]byte("after"),
	})
}

func TestBlockTailPadding(t *testing.T) {
	// First record leaves < headerSize in the block, forcing padding.
	roundTrip(t, [][]byte{
		make([]byte, BlockSize-headerSize-3),
		[]byte("next-block"),
	})
}

func TestManyRandomRecords(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var recs [][]byte
	for i := 0; i < 500; i++ {
		r := make([]byte, rng.Intn(2000))
		rng.Read(r)
		recs = append(recs, r)
	}
	roundTrip(t, recs)
}

func TestQuickRoundTrip(t *testing.T) {
	f := func(recs [][]byte) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, r := range recs {
			if err := w.Append(r); err != nil {
				return false
			}
		}
		rd := NewReader(&buf)
		for _, want := range recs {
			got, err := rd.Next()
			if err != nil || !bytes.Equal(got, want) {
				return false
			}
		}
		_, err := rd.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptionDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append([]byte("good record"))
	w.Append([]byte("will be damaged"))
	raw := buf.Bytes()
	raw[headerSize+11+headerSize+3] ^= 0x40 // flip a bit in record 2's body

	r := NewReader(bytes.NewReader(raw))
	got, err := r.Next()
	if err != nil || string(got) != "good record" {
		t.Fatalf("first record: %q %v", got, err)
	}
	if _, err := r.Next(); err != ErrCorrupt {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestTornTail(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append([]byte("intact"))
	big := make([]byte, 2*BlockSize)
	w.Append(big)
	// Truncate mid-record (simulating a crash during append).
	raw := buf.Bytes()[:BlockSize+100]

	r := NewReader(bytes.NewReader(raw))
	if got, err := r.Next(); err != nil || string(got) != "intact" {
		t.Fatalf("first: %q %v", got, err)
	}
	if _, err := r.Next(); err != ErrCorrupt && err != io.EOF {
		t.Fatalf("torn tail: %v", err)
	}
}

func TestWrittenCounter(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.Append(make([]byte, 100))
	if w.Written() != int64(buf.Len()) || w.Written() != 107 {
		t.Fatalf("Written=%d buf=%d", w.Written(), buf.Len())
	}
}

func BenchmarkAppend1K(b *testing.B) {
	w := NewWriter(io.Discard)
	rec := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		w.Append(rec)
	}
}
