// Package wal implements a LevelDB-format write-ahead log: 32KB blocks of
// records framed as (masked CRC32C, length, type), where type marks full
// records or first/middle/last fragments of records spanning blocks.
//
// The LSM baseline uses it for the durability of its DRAM memtable — the
// cost NoveLSM eliminates by making the memtable itself persistent, which
// is why the paper's measured configuration runs without a log. Both modes
// are benchmarked.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"packetstore/internal/checksum"
)

// BlockSize is the log block size.
const BlockSize = 32 << 10

// headerSize is the per-record-fragment header: crc(4) + length(2) + type(1).
const headerSize = 7

// Record fragment types.
const (
	typeFull   = 1
	typeFirst  = 2
	typeMiddle = 3
	typeLast   = 4
)

// ErrCorrupt reports a checksum or framing failure; the reader stops at
// the last intact record, which is exactly the recovery semantic a log
// needs after a torn write.
var ErrCorrupt = errors.New("wal: corrupt record")

// Writer appends records to a log stream.
type Writer struct {
	w        io.Writer
	blockOff int
	written  int64
}

// NewWriter returns a Writer appending to w, which must be positioned at a
// block boundary (offset 0 for a fresh log).
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Written reports the total bytes emitted.
func (w *Writer) Written() int64 { return w.written }

// Append writes one record, fragmenting across blocks as needed.
func (w *Writer) Append(rec []byte) error {
	first := true
	for {
		leftover := BlockSize - w.blockOff
		if leftover < headerSize {
			// Pad the block tail with zeros.
			if leftover > 0 {
				if err := w.emit(make([]byte, leftover)); err != nil {
					return err
				}
			}
			w.blockOff = 0
			leftover = BlockSize
		}
		avail := leftover - headerSize
		frag := rec
		if len(frag) > avail {
			frag = frag[:avail]
		}
		var typ byte
		last := len(frag) == len(rec)
		switch {
		case first && last:
			typ = typeFull
		case first:
			typ = typeFirst
		case last:
			typ = typeLast
		default:
			typ = typeMiddle
		}
		var hdr [headerSize]byte
		crc := checksum.Mask(checksum.UpdateCRC32CFast(checksum.CRC32CFast([]byte{typ}), frag))
		binary.LittleEndian.PutUint32(hdr[0:4], crc)
		binary.LittleEndian.PutUint16(hdr[4:6], uint16(len(frag)))
		hdr[6] = typ
		if err := w.emit(hdr[:]); err != nil {
			return err
		}
		if err := w.emit(frag); err != nil {
			return err
		}
		w.blockOff += headerSize + len(frag)
		rec = rec[len(frag):]
		first = false
		if last {
			return nil
		}
	}
}

func (w *Writer) emit(b []byte) error {
	n, err := w.w.Write(b)
	w.written += int64(n)
	return err
}

// Reader replays records from a log stream.
type Reader struct {
	r        io.Reader
	block    [BlockSize]byte
	blockLen int
	blockOff int
	eof      bool
}

// NewReader returns a Reader over r.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next returns the next record, io.EOF at the clean end of the log, or
// ErrCorrupt when a damaged fragment is found (the torn tail of a crashed
// log).
func (r *Reader) Next() ([]byte, error) {
	var rec []byte
	inFragmented := false
	for {
		frag, typ, err := r.nextFragment()
		if err != nil {
			if err == io.EOF && inFragmented {
				// Log ended mid-record: torn tail.
				return nil, ErrCorrupt
			}
			return nil, err
		}
		switch typ {
		case typeFull:
			if inFragmented {
				return nil, ErrCorrupt
			}
			return append([]byte(nil), frag...), nil
		case typeFirst:
			if inFragmented {
				return nil, ErrCorrupt
			}
			inFragmented = true
			rec = append(rec[:0], frag...)
		case typeMiddle:
			if !inFragmented {
				return nil, ErrCorrupt
			}
			rec = append(rec, frag...)
		case typeLast:
			if !inFragmented {
				return nil, ErrCorrupt
			}
			return append(rec, frag...), nil
		default:
			return nil, fmt.Errorf("%w: fragment type %d", ErrCorrupt, typ)
		}
	}
}

func (r *Reader) nextFragment() ([]byte, byte, error) {
	for {
		if r.blockLen-r.blockOff < headerSize {
			// Remaining bytes are block padding; load the next block.
			if r.eof {
				return nil, 0, io.EOF
			}
			n, err := io.ReadFull(r.r, r.block[:])
			if err == io.ErrUnexpectedEOF || err == io.EOF {
				r.eof = true
			} else if err != nil {
				return nil, 0, err
			}
			r.blockLen = n
			r.blockOff = 0
			if n < headerSize {
				return nil, 0, io.EOF
			}
		}
		hdr := r.block[r.blockOff : r.blockOff+headerSize]
		length := int(binary.LittleEndian.Uint16(hdr[4:6]))
		typ := hdr[6]
		if typ == 0 && length == 0 {
			// Zero padding: skip to next block.
			r.blockOff = r.blockLen
			continue
		}
		if r.blockOff+headerSize+length > r.blockLen {
			return nil, 0, ErrCorrupt
		}
		frag := r.block[r.blockOff+headerSize : r.blockOff+headerSize+length]
		wantCRC := checksum.Unmask(binary.LittleEndian.Uint32(hdr[0:4]))
		gotCRC := checksum.UpdateCRC32CFast(checksum.CRC32CFast([]byte{typ}), frag)
		if wantCRC != gotCRC {
			return nil, 0, ErrCorrupt
		}
		r.blockOff += headerSize + length
		return frag, typ, nil
	}
}
