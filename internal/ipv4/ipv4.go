// Package ipv4 implements IPv4 header encoding and decoding with header
// checksumming. The simulated fabric never fragments (hosts honour the
// link MTU via TCP MSS and TSO), but decoding surfaces fragment fields so
// misbehaviour is detected rather than ignored.
package ipv4

import (
	"encoding/binary"
	"fmt"

	"packetstore/internal/checksum"
)

// HeaderLen is the length of a header without options; the stack never
// emits options.
const HeaderLen = 20

// Protocol numbers used by the stack.
const (
	ProtoTCP = 6
	ProtoUDP = 17
)

// Addr is an IPv4 address.
type Addr [4]byte

// String formats the address in dotted quad.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// HostAddr derives a 10.0.0.0/24 address for host id n (1-based).
func HostAddr(n int) Addr { return Addr{10, 0, 0, byte(n)} }

// Header is a decoded IPv4 header.
type Header struct {
	TotalLen uint16
	ID       uint16
	DF, MF   bool
	FragOff  uint16 // in 8-byte units
	TTL      uint8
	Proto    uint8
	Src, Dst Addr
}

// PayloadLen returns the L4 payload length.
func (h Header) PayloadLen() int { return int(h.TotalLen) - HeaderLen }

// Encode writes the header into b (>= HeaderLen bytes), computing the
// header checksum.
func (h Header) Encode(b []byte) {
	b[0] = 0x45 // version 4, IHL 5
	b[1] = 0
	binary.BigEndian.PutUint16(b[2:4], h.TotalLen)
	binary.BigEndian.PutUint16(b[4:6], h.ID)
	var fl uint16
	if h.DF {
		fl |= 0x4000
	}
	if h.MF {
		fl |= 0x2000
	}
	fl |= h.FragOff & 0x1fff
	binary.BigEndian.PutUint16(b[6:8], fl)
	b[8] = h.TTL
	b[9] = h.Proto
	b[10], b[11] = 0, 0
	copy(b[12:16], h.Src[:])
	copy(b[16:20], h.Dst[:])
	cs := checksum.Checksum(b[:HeaderLen])
	binary.BigEndian.PutUint16(b[10:12], cs)
}

// Decode parses and validates an IPv4 header from b.
func Decode(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("ipv4: packet too short (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return Header{}, fmt.Errorf("ipv4: version %d", b[0]>>4)
	}
	ihl := int(b[0]&0x0f) * 4
	if ihl != HeaderLen {
		return Header{}, fmt.Errorf("ipv4: unsupported IHL %d", ihl)
	}
	if checksum.Fold(checksum.Partial(0, b[:HeaderLen])) != 0xffff {
		return Header{}, fmt.Errorf("ipv4: bad header checksum")
	}
	var h Header
	h.TotalLen = binary.BigEndian.Uint16(b[2:4])
	if int(h.TotalLen) > len(b) || int(h.TotalLen) < HeaderLen {
		return Header{}, fmt.Errorf("ipv4: total length %d vs frame %d", h.TotalLen, len(b))
	}
	h.ID = binary.BigEndian.Uint16(b[4:6])
	fl := binary.BigEndian.Uint16(b[6:8])
	h.DF = fl&0x4000 != 0
	h.MF = fl&0x2000 != 0
	h.FragOff = fl & 0x1fff
	h.TTL = b[8]
	h.Proto = b[9]
	copy(h.Src[:], b[12:16])
	copy(h.Dst[:], b[16:20])
	return h, nil
}
