package ipv4

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(totalLenRaw uint16, id uint16, df, mf bool, fragOff uint16, ttl, proto uint8, src, dst [4]byte) bool {
		totalLen := HeaderLen + totalLenRaw%1500
		h := Header{
			TotalLen: totalLen, ID: id, DF: df, MF: mf,
			FragOff: fragOff & 0x1fff, TTL: ttl, Proto: proto,
			Src: Addr(src), Dst: Addr(dst),
		}
		b := make([]byte, totalLen)
		h.Encode(b)
		got, err := Decode(b)
		return err == nil && got == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	h := Header{TotalLen: 40, TTL: 64, Proto: ProtoTCP, Src: HostAddr(1), Dst: HostAddr(2)}
	b := make([]byte, 40)
	h.Encode(b)
	if _, err := Decode(b); err != nil {
		t.Fatalf("pristine header rejected: %v", err)
	}
	for _, corrupt := range []func([]byte){
		func(b []byte) { b[0] = 0x55 },             // version 5
		func(b []byte) { b[0] = 0x46 },             // IHL 6
		func(b []byte) { b[8]++ },                  // TTL flips -> checksum fails
		func(b []byte) { b[2], b[3] = 0xff, 0xff }, // absurd total length
		func(b []byte) { b[2], b[3] = 0, 1 },       // total length < header
	} {
		c := append([]byte(nil), b...)
		corrupt(c)
		if _, err := Decode(c); err == nil {
			t.Fatal("corrupted header accepted")
		}
	}
	if _, err := Decode(b[:19]); err == nil {
		t.Fatal("short packet accepted")
	}
}

func TestPayloadLen(t *testing.T) {
	h := Header{TotalLen: 120}
	if h.PayloadLen() != 100 {
		t.Fatalf("PayloadLen=%d", h.PayloadLen())
	}
}

func TestAddrString(t *testing.T) {
	if HostAddr(7).String() != "10.0.0.7" {
		t.Fatalf("got %s", HostAddr(7))
	}
}
