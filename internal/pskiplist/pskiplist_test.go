package pskiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

func newTestList(t *testing.T, size int) (*pmem.Region, *List) {
	t.Helper()
	r := pmem.New(size+4096, calib.Off())
	l := New(r, 0, size, bytes.Compare)
	return r, l
}

func TestInsertGet(t *testing.T) {
	_, l := newTestList(t, 1<<20)
	if !l.Insert([]byte("bravo"), []byte("2")) ||
		!l.Insert([]byte("alpha"), []byte("1")) ||
		!l.Insert([]byte("charlie"), []byte("3")) {
		t.Fatal("insert failed")
	}
	if l.Len() != 3 {
		t.Fatalf("Len=%d", l.Len())
	}
	for k, v := range map[string]string{"alpha": "1", "bravo": "2", "charlie": "3"} {
		got, ok := l.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("Get(%s)=%q,%v", k, got, ok)
		}
	}
	if _, ok := l.Get([]byte("zulu")); ok {
		t.Fatal("absent key found")
	}
}

func TestDuplicatePanics(t *testing.T) {
	_, l := newTestList(t, 1<<20)
	l.Insert([]byte("k"), []byte("v"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Insert([]byte("k"), []byte("v2"))
}

func TestIterationOrder(t *testing.T) {
	_, l := newTestList(t, 4<<20)
	rng := rand.New(rand.NewSource(7))
	seen := map[string]bool{}
	for i := 0; i < 2000; i++ {
		k := fmt.Sprintf("key-%08d", rng.Intn(10000000))
		if seen[k] {
			continue
		}
		seen[k] = true
		if !l.Insert([]byte(k), []byte(k)) {
			t.Fatal("arena exhausted")
		}
	}
	var want []string
	for k := range seen {
		want = append(want, k)
	}
	sort.Strings(want)
	it := l.NewIterator()
	i := 0
	for it.Next(); it.Valid(); it.Next() {
		if string(it.Key()) != want[i] || !bytes.Equal(it.Key(), it.Value()) {
			t.Fatalf("position %d: %q want %q", i, it.Key(), want[i])
		}
		i++
	}
	if i != len(want) {
		t.Fatalf("iterated %d of %d", i, len(want))
	}
}

func TestSeek(t *testing.T) {
	_, l := newTestList(t, 1<<20)
	for i := 0; i < 100; i += 10 {
		k := []byte(fmt.Sprintf("%03d", i))
		l.Insert(k, k)
	}
	it := l.NewIterator()
	it.Seek([]byte("045"))
	if !it.Valid() || string(it.Key()) != "050" {
		t.Fatalf("Seek(045) at %q", it.Key())
	}
	it.Seek([]byte("999"))
	if it.Valid() {
		t.Fatal("Seek past end valid")
	}
	it.SeekToFirst()
	if !it.Valid() || string(it.Key()) != "000" {
		t.Fatalf("SeekToFirst at %q", it.Key())
	}
}

func TestArenaExhaustion(t *testing.T) {
	_, l := newTestList(t, 2048)
	big := make([]byte, 512)
	inserted := 0
	for i := 0; i < 100; i++ {
		if l.Insert([]byte(fmt.Sprintf("k%03d", i)), big) {
			inserted++
		} else {
			break
		}
	}
	if inserted == 0 || inserted > 4 {
		t.Fatalf("inserted %d entries into 2KB arena", inserted)
	}
}

func TestRecoverAfterCleanShutdown(t *testing.T) {
	r, l := newTestList(t, 1<<20)
	kv := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("key%05d", i), fmt.Sprintf("val%d", i)
		kv[k] = v
		l.Insert([]byte(k), []byte(v))
	}
	l2, err := Recover(r, 0, 1<<20, bytes.Compare)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Len() != 500 {
		t.Fatalf("recovered Len=%d", l2.Len())
	}
	for k, v := range kv {
		got, ok := l2.Get([]byte(k))
		if !ok || string(got) != v {
			t.Fatalf("after recover Get(%s)=%q,%v", k, got, ok)
		}
	}
	// And still writable.
	if !l2.Insert([]byte("post-recovery"), []byte("x")) {
		t.Fatal("insert after recover failed")
	}
}

func TestRecoverRejectsGarbage(t *testing.T) {
	r := pmem.New(1<<20, calib.Off())
	if _, err := Recover(r, 0, 1<<20, bytes.Compare); err == nil {
		t.Fatal("recovered from zeroed region")
	}
}

// TestCrashDurability is the core crash-consistency property: every insert
// that returned before the crash is present and intact after recovery.
func TestCrashDurability(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := pmem.New(1<<20, calib.Off())
		l := New(r, 0, 1<<20, bytes.Compare)
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(300)
		kv := map[string]string{}
		for i := 0; i < n; i++ {
			k := fmt.Sprintf("key%06d", rng.Intn(1000000))
			if _, dup := kv[k]; dup {
				continue
			}
			v := fmt.Sprintf("value-%d-%d", seed, i)
			if !l.Insert([]byte(k), []byte(v)) {
				break
			}
			kv[k] = v
		}
		r.Crash(rng.Int63())
		l2, err := Recover(r, 0, 1<<20, bytes.Compare)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if l2.Len() != len(kv) {
			t.Fatalf("seed %d: recovered %d entries, want %d", seed, l2.Len(), len(kv))
		}
		for k, v := range kv {
			got, ok := l2.Get([]byte(k))
			if !ok || string(got) != v {
				t.Fatalf("seed %d: lost or corrupted %q after crash", seed, k)
			}
		}
	}
}

// TestCrashMidWorkloadStillSearchable interleaves crashes with further
// inserts on the recovered list.
func TestCrashMidWorkloadStillSearchable(t *testing.T) {
	r := pmem.New(2<<20, calib.Off())
	l := New(r, 0, 2<<20, bytes.Compare)
	rng := rand.New(rand.NewSource(42))
	kv := map[string]string{}
	for round := 0; round < 5; round++ {
		for i := 0; i < 100; i++ {
			k := fmt.Sprintf("r%dk%04d", round, i)
			v := fmt.Sprintf("v%d.%d", round, i)
			if !l.Insert([]byte(k), []byte(v)) {
				t.Fatal("arena exhausted")
			}
			kv[k] = v
		}
		r.Crash(rng.Int63())
		var err error
		l, err = Recover(r, 0, 2<<20, bytes.Compare)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for k, v := range kv {
			got, ok := l.Get([]byte(k))
			if !ok || string(got) != v {
				t.Fatalf("round %d: lost %q", round, k)
			}
		}
	}
}

func TestPMReadChargeOnSearch(t *testing.T) {
	p := calib.Off()
	p.PMReadLine = 1000 // 1µs per line: measurable via stats
	r := pmem.New(1<<20, p)
	l := New(r, 0, 1<<20, bytes.Compare)
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("key%04d", i))
		l.Insert(k, k)
	}
	before := r.Stats().Reads
	l.Get([]byte("key0050"))
	if r.Stats().Reads == before {
		t.Fatal("search charged no PM reads")
	}
}

func BenchmarkInsert100B(b *testing.B) {
	r := pmem.New(1<<30, calib.Off())
	l := New(r, 0, 1<<30, bytes.Compare)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert([]byte(fmt.Sprintf("key%012d", i)), val)
	}
}

func BenchmarkInsertPaperModel(b *testing.B) {
	r := pmem.New(1<<30, calib.Paper())
	l := New(r, 0, 1<<30, bytes.Compare)
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Insert([]byte(fmt.Sprintf("key%012d", i)), val)
	}
}

func BenchmarkGet(b *testing.B) {
	r := pmem.New(1<<28, calib.Off())
	l := New(r, 0, 1<<28, bytes.Compare)
	for i := 0; i < 100000; i++ {
		k := []byte(fmt.Sprintf("key%08d", i))
		l.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get([]byte(fmt.Sprintf("key%08d", (i*7919)%100000)))
	}
}
