// Package pskiplist implements a persistent skip list stored in a
// pmem.Region — the NoveLSM-style PM memtable the paper's baseline uses
// (§3, "a persistent skip list in NoveLSM").
//
// Design (and its crash-consistency argument):
//
//   - Nodes are allocated from a persistent bump allocator, whose durable
//     tail-pointer update is part of every insert — this is exactly the
//     "user-space persistent memory allocator" cost the paper's Table 1
//     measures inside buffer allocation and insertion.
//   - An insert writes and persists the node (header, tower, key, value),
//     then links it in with a single atomic 4-byte store to the level-0
//     predecessor pointer, which is flushed and fenced. After that fence
//     the entry is durable.
//   - Upper-level tower links are written without flushes: losing them in
//     a crash leaves a pointer to an older node (links are only ever
//     advanced), and a zero reads as nil — either way searches stay
//     correct through level 0, so towers are an optimization, never a
//     correctness dependency. This is the standard PM skip-list design.
//
// Reads charge PM latency (Region.Touch) per visited node, modelling the
// pointer-chasing loads of an index walk on Optane.
package pskiplist

import (
	"fmt"
	"math/rand"
	"time"

	"packetstore/internal/pmem"
)

const (
	maxHeight = 12
	branching = 4

	// headerSize is the on-PM list header: magic (8) + head tower
	// (maxHeight * 4), padded to a cache line boundary.
	headerSize = 64

	magic = 0x3154534c504b5350 // "PSKPLST1" little-endian
)

// node layout (offsets within the node):
//
//	0:  klen   uint16
//	2:  height uint8
//	3:  flags  uint8 (unused; reserved)
//	4:  vlen   uint32
//	8:  next[height] uint32 (region offsets; 0 = nil)
//	8+4h: key bytes, then value bytes
const nodeHdrSize = 8

// Comparator orders keys; negative means a < b.
type Comparator func(a, b []byte) int

// InsertStats accumulates per-phase insert time: the direct
// instrumentation behind the Table 1 "data copy" and "buffer allocation
// and insertion" rows. Search is the index walk to the insertion point,
// Alloc the persistent allocator, Copy the node image construction and
// store, Link the pointer updates, and Flush the cache-line write-backs
// and fences.
type InsertStats struct {
	Count  uint64
	Search time.Duration
	Alloc  time.Duration
	Copy   time.Duration
	Link   time.Duration
	Flush  time.Duration
}

// Add merges o into s.
func (s *InsertStats) Add(o *InsertStats) {
	s.Count += o.Count
	s.Search += o.Search
	s.Alloc += o.Alloc
	s.Copy += o.Copy
	s.Link += o.Link
	s.Flush += o.Flush
}

// List is a persistent skip list occupying [base, base+size) of a region.
type List struct {
	r     *pmem.Region
	base  int
	size  int
	cmp   Comparator
	alloc *pmem.BumpAlloc
	rng   *rand.Rand
	count int // volatile; recomputed on recovery
	stats InsertStats
}

// Stats returns the cumulative insert-phase timings (mutable; callers may
// zero it between measurement windows).
func (l *List) Stats() *InsertStats { return &l.stats }

// tagOff is the header offset of the user tag (after magic and tower).
const tagOff = 56

// SetTag durably stores an application tag (the LSM uses it to order
// memtable arenas across reboots).
func (l *List) SetTag(tag uint64) {
	l.r.WriteUint64(l.base+tagOff, tag)
	l.r.Persist(l.base+tagOff, 8)
}

// Tag returns the stored application tag.
func (l *List) Tag() uint64 { return l.r.ReadUint64(l.base + tagOff) }

// New initializes a fresh list over [base, base+size) of r. Any previous
// content in the range is discarded.
func New(r *pmem.Region, base, size int, cmp Comparator) *List {
	if base%8 != 0 {
		panic("pskiplist: unaligned base")
	}
	l := &List{r: r, base: base, size: size, cmp: cmp,
		rng: rand.New(rand.NewSource(0x5eed))}
	// Zero the header (head tower) and persist it with the magic.
	zero := make([]byte, headerSize)
	r.Write(base, zero)
	r.WriteUint64(base, magic)
	r.Persist(base, headerSize)
	// Reset the allocator area explicitly: a recycled arena may hold an
	// old tail pointer.
	r.WriteUint64(base+headerSize, 0)
	r.Persist(base+headerSize, 8)
	l.alloc = pmem.NewBumpAlloc(r, base+headerSize, size-headerSize)
	return l
}

// Recover re-opens a list previously created with New at the same range,
// after a crash or reboot. It validates the magic and recounts entries by
// walking level 0.
func Recover(r *pmem.Region, base, size int, cmp Comparator) (*List, error) {
	if r.ReadUint64(base) != magic {
		return nil, fmt.Errorf("pskiplist: no list at offset %d", base)
	}
	l := &List{r: r, base: base, size: size, cmp: cmp,
		rng: rand.New(rand.NewSource(0x5eed))}
	l.alloc = pmem.NewBumpAlloc(r, base+headerSize, size-headerSize)
	for off := l.headNext(0); off != 0; off = l.nodeNext(off, 0) {
		l.count++
	}
	return l, nil
}

// Len returns the number of entries reachable at level 0.
func (l *List) Len() int { return l.count }

// MemoryUsage reports bytes consumed in the arena.
func (l *List) MemoryUsage() int { return l.alloc.Used() }

// Remaining reports allocatable bytes left.
func (l *List) Remaining() int { return l.alloc.Remaining() }

// --- node accessors ---

func (l *List) headNext(level int) int {
	return int(l.r.ReadUint32(l.base + 8 + 4*level))
}

func (l *List) setHeadNext(level, off int, persist bool) {
	l.r.WriteUint32(l.base+8+4*level, uint32(off))
	if persist {
		l.r.Persist(l.base+8+4*level, 4)
	}
}

func (l *List) nodeHeight(off int) int { return int(l.r.Slice(off+2, 1)[0]) }

func (l *List) nodeNext(off, level int) int {
	return int(l.r.ReadUint32(off + nodeHdrSize + 4*level))
}

func (l *List) setNodeNext(off, level, next int, persist bool) {
	pos := off + nodeHdrSize + 4*level
	l.r.WriteUint32(pos, uint32(next))
	if persist {
		l.r.Persist(pos, 4)
	}
}

func (l *List) nodeKey(off int) []byte {
	h := l.r.Slice(off, nodeHdrSize)
	klen := int(h[0]) | int(h[1])<<8
	height := int(h[2])
	kOff := off + nodeHdrSize + 4*height
	return l.r.Slice(kOff, klen)
}

func (l *List) nodeValue(off int) []byte {
	h := l.r.Slice(off, nodeHdrSize)
	klen := int(h[0]) | int(h[1])<<8
	height := int(h[2])
	vlen := int(uint32(h[4]) | uint32(h[5])<<8 | uint32(h[6])<<16 | uint32(h[7])<<24)
	vOff := off + nodeHdrSize + 4*height + klen
	return l.r.Slice(vOff, vlen)
}

// touchNode charges the PM read latency of inspecting a node (header +
// key head).
func (l *List) touchNode(off int) {
	l.r.Touch(off, nodeHdrSize)
}

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGE locates the first node with key >= key; prev receives the
// rightmost predecessor offset per level (0 = head).
func (l *List) findGE(key []byte, prev *[maxHeight]int) int {
	x := 0 // head
	level := maxHeight - 1
	for {
		var nxt int
		if x == 0 {
			nxt = l.headNext(level)
		} else {
			nxt = l.nodeNext(x, level)
		}
		if nxt != 0 {
			// Upper tower levels are a handful of hot nodes; model them
			// as cache hits and charge PM latency only near the bottom,
			// where the node population is large and reads miss.
			if level <= 1 {
				l.touchNode(nxt)
			}
			if l.cmp(l.nodeKey(nxt), key) < 0 {
				x = nxt
				continue
			}
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return nxt
		}
		level--
	}
}

// Insert durably adds key/value. Exactly-equal keys panic (LSM internal
// keys are always unique). Returns false when the arena is exhausted.
func (l *List) Insert(key, val []byte) bool {
	if len(key) > 0xffff {
		panic("pskiplist: key too long")
	}
	t0 := time.Now()
	var prev [maxHeight]int
	if ge := l.findGE(key, &prev); ge != 0 && l.cmp(l.nodeKey(ge), key) == 0 {
		panic("pskiplist: duplicate key")
	}
	t1 := time.Now()
	height := l.randomHeight()
	nodeSize := nodeHdrSize + 4*height + len(key) + len(val)
	off := l.alloc.Alloc(nodeSize)
	if off < 0 {
		l.stats.Search += t1.Sub(t0)
		return false
	}
	t2 := time.Now()
	// Build the node image and store it (the data-copy phase).
	img := make([]byte, nodeSize)
	img[0], img[1] = byte(len(key)), byte(len(key)>>8)
	img[2] = byte(height)
	vlen := uint32(len(val))
	img[4], img[5], img[6], img[7] = byte(vlen), byte(vlen>>8), byte(vlen>>16), byte(vlen>>24)
	for lv := 0; lv < height; lv++ {
		var succ int
		if prev[lv] == 0 {
			succ = l.headNext(lv)
		} else {
			succ = l.nodeNext(prev[lv], lv)
		}
		p := nodeHdrSize + 4*lv
		img[p], img[p+1], img[p+2], img[p+3] = byte(succ), byte(succ>>8), byte(succ>>16), byte(succ>>24)
	}
	copy(img[nodeHdrSize+4*height:], key)
	copy(img[nodeHdrSize+4*height+len(key):], val)
	l.r.Write(off, img)
	t3 := time.Now()
	// Persist the node image before linking.
	l.r.Persist(off, nodeSize)
	t4 := time.Now()

	// Link level 0 durably: after its flush+fence the entry exists.
	if prev[0] == 0 {
		l.setHeadNext(0, off, false)
	} else {
		l.setNodeNext(prev[0], 0, off, false)
	}
	// Upper levels: best-effort (correctness never depends on them).
	for lv := 1; lv < height; lv++ {
		if prev[lv] == 0 {
			l.setHeadNext(lv, off, false)
		} else {
			l.setNodeNext(prev[lv], lv, off, false)
		}
	}
	t5 := time.Now()
	if prev[0] == 0 {
		l.r.Persist(l.base+8, 4)
	} else {
		l.r.Persist(prev[0]+nodeHdrSize, 4)
	}
	t6 := time.Now()

	l.stats.Count++
	l.stats.Search += t1.Sub(t0)
	l.stats.Alloc += t2.Sub(t1)
	l.stats.Copy += t3.Sub(t2)
	l.stats.Flush += t4.Sub(t3) + t6.Sub(t5)
	l.stats.Link += t5.Sub(t4)
	l.count++
	return true
}

// Get returns the value stored under an exactly-equal key. The returned
// slice aliases persistent memory; callers must copy to retain across
// mutations.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGE(key, nil)
	if n != 0 && l.cmp(l.nodeKey(n), key) == 0 {
		return l.nodeValue(n), true
	}
	return nil, false
}

// Iterator walks the list in comparator order.
type Iterator struct {
	l   *List
	off int
}

// NewIterator returns an iterator positioned before the first entry.
func (l *List) NewIterator() *Iterator { return &Iterator{l: l} }

// Valid reports whether the iterator is at an entry.
func (it *Iterator) Valid() bool { return it.off != 0 }

// Key returns the current key (aliases PM).
func (it *Iterator) Key() []byte { return it.l.nodeKey(it.off) }

// Value returns the current value (aliases PM).
func (it *Iterator) Value() []byte { return it.l.nodeValue(it.off) }

// Next advances; from the before-first position it moves to the first
// entry.
func (it *Iterator) Next() {
	if it.off == 0 {
		it.off = it.l.headNext(0)
	} else {
		it.off = it.l.nodeNext(it.off, 0)
	}
	if it.off != 0 {
		it.l.touchNode(it.off)
	}
}

// SeekToFirst positions at the smallest entry.
func (it *Iterator) SeekToFirst() {
	it.off = it.l.headNext(0)
}

// Seek positions at the first entry with key >= key.
func (it *Iterator) Seek(key []byte) {
	it.off = it.l.findGE(key, nil)
}
