package host

import (
	"testing"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/nic"
	"packetstore/internal/pkt"
)

func TestTestbedConnectivity(t *testing.T) {
	tb := NewTestbed(Options{})
	defer tb.Close()
	l, err := tb.Server.Stack.Listen(1234)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 16)
		n, _ := c.Read(buf)
		c.Write(buf[:n])
	}()
	c, err := tb.Dial(1234)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "ping" {
		t.Fatalf("echo: %q %v", buf[:n], err)
	}
}

func TestServerRxPoolOverride(t *testing.T) {
	pool := pkt.NewPool(2048, 8)
	tb := NewTestbed(Options{ServerRxPool: pool})
	defer tb.Close()
	if tb.Server.NIC.RxPool() != pool {
		t.Fatal("server rx pool not overridden")
	}
	if tb.Client.NIC.RxPool() == pool {
		t.Fatal("client got the server's pool")
	}
}

func TestOffloadOverride(t *testing.T) {
	off := nic.Offloads{}
	tb := NewTestbed(Options{Offloads: &off})
	defer tb.Close()
	if tb.Server.NIC.Offloads() != off {
		t.Fatal("offloads not applied")
	}
	if DefaultOffloads() == off {
		t.Fatal("default offloads should enable features")
	}
}

func TestProfileAppliesWireLatency(t *testing.T) {
	p := calib.Off()
	p.WireLatency = 300 * time.Microsecond
	tb := NewTestbed(Options{Profile: p})
	defer tb.Close()
	l, _ := tb.Server.Stack.Listen(80)
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	start := time.Now()
	if _, err := tb.Dial(80); err != nil { // SYN + SYNACK = 2 wire crossings
		t.Fatal(err)
	}
	if e := time.Since(start); e < 600*time.Microsecond {
		t.Fatalf("handshake took %v, want >= 600µs of wire latency", e)
	}
}

func TestEventually(t *testing.T) {
	n := 0
	if !Eventually(time.Second, func() bool { n++; return n > 2 }) {
		t.Fatal("Eventually gave up")
	}
	if Eventually(20*time.Millisecond, func() bool { return false }) {
		t.Fatal("Eventually succeeded on false")
	}
}
