// Package host assembles simulated hosts — NIC, TCP/IP stack, fabric
// port — into testbeds that mirror the paper's: one storage server and
// one (or logically many) client machine on a switched 25GbE fabric,
// with latencies taken from a calibration profile.
package host

import (
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/eth"
	"packetstore/internal/ipv4"
	"packetstore/internal/netsim"
	"packetstore/internal/nic"
	"packetstore/internal/pkt"
	"packetstore/internal/tcp"
)

// Host is one simulated machine.
type Host struct {
	Name  string
	MAC   eth.Addr
	IP    ipv4.Addr
	NIC   *nic.NIC
	Stack *tcp.Stack
}

// Close stops the host's stack (and NIC).
func (h *Host) Close() { h.Stack.Close() }

// Options configures a testbed.
type Options struct {
	// Profile supplies all emulated latencies (default: calib.Off).
	Profile calib.Profile
	// Offloads for both NICs (default: everything on, as on the paper's
	// XXV710s with checksum offload enabled).
	Offloads *nic.Offloads
	// ServerRxPool overrides the server NIC's receive pool — pass the
	// packetstore's PM pool for the PASTE configuration. nil uses DRAM.
	ServerRxPool *pkt.Pool
	// ServerRxPools gives the server NIC one RSS queue per pool, each
	// queue DMAing into its own pool — pass a sharded packetstore's
	// per-shard PM pools so every flow's payloads land in the partition
	// of the shard serving its queue. Overrides ServerRxPool.
	ServerRxPools []*pkt.Pool
	// ServerQueueNodes pins each server RSS queue's interrupt to a NUMA
	// node (nic.Config.QueueNodes); the serving loops read the mapping
	// to place themselves on the interrupt's socket.
	ServerQueueNodes []int
	// RxPoolBufs sizes the DRAM receive pools (default 4096).
	RxPoolBufs int
	// Loss/Reorder/Duplicate/Corrupt inject fabric impairments (tests
	// and fault-injection harnesses). Corrupt flips one random bit per
	// affected frame; the checksum path must catch it.
	Loss, Reorder, Duplicate, Corrupt float64
	// Seed for impairments.
	Seed int64
	// StackConfig tunes both TCP stacks.
	StackConfig tcp.Config
	// QueueLen bounds fabric queues.
	QueueLen int
}

// DefaultOffloads matches the testbed NICs: checksum offload both ways,
// TSO, hardware timestamps.
func DefaultOffloads() nic.Offloads {
	return nic.Offloads{RxChecksum: true, TxChecksum: true, TSO: true, HWTimestamp: true}
}

// Testbed is a two-host client/server fabric.
type Testbed struct {
	Client *Host
	Server *Host
}

// NewTestbed builds the two-host testbed.
func NewTestbed(opt Options) *Testbed {
	off := DefaultOffloads()
	if opt.Offloads != nil {
		off = *opt.Offloads
	}
	if opt.RxPoolBufs == 0 {
		opt.RxPoolBufs = 4096
	}
	link := netsim.LinkConfig{
		Latency:   opt.Profile.WireLatency,
		Bandwidth: opt.Profile.WireBandwidth,
		Loss:      opt.Loss,
		Reorder:   opt.Reorder,
		Duplicate: opt.Duplicate,
		Corrupt:   opt.Corrupt,
		Seed:      opt.Seed,
		QueueLen:  opt.QueueLen,
	}
	pa, pb := netsim.NewLink(link)

	mk := func(id int, name string, port *netsim.Port, rxPool *pkt.Pool, rxPools []*pkt.Pool, queueNodes []int) *Host {
		if rxPool == nil && len(rxPools) == 0 {
			rxPool = pkt.NewPool(2048, opt.RxPoolBufs)
		}
		h := &Host{
			Name: name,
			MAC:  eth.HostAddr(id),
			IP:   ipv4.HostAddr(id),
		}
		h.NIC = nic.New(nic.Config{
			MAC:         h.MAC,
			RxPool:      rxPool,
			RxPools:     rxPools,
			QueueNodes:  queueNodes,
			Offloads:    off,
			PerPacket:   opt.Profile.NICPerPacket,
			PerPacketSW: opt.Profile.StackPerPacket,
		}, port)
		h.Stack = tcp.NewStack(h.NIC, h.IP, opt.StackConfig)
		return h
	}
	tb := &Testbed{
		Client: mk(1, "client", pa, nil, nil, nil),
		Server: mk(2, "server", pb, opt.ServerRxPool, opt.ServerRxPools, opt.ServerQueueNodes),
	}
	tb.Client.Stack.AddNeighbor(tb.Server.IP, tb.Server.MAC)
	tb.Server.Stack.AddNeighbor(tb.Client.IP, tb.Client.MAC)
	return tb
}

// Dial opens a client connection to the server's port.
func (tb *Testbed) Dial(port uint16) (*tcp.Conn, error) {
	return tb.Client.Stack.Dial(tb.Server.IP, port)
}

// Close tears the testbed down.
func (tb *Testbed) Close() {
	tb.Client.Close()
	tb.Server.Close()
}

// Eventually polls cond until it holds or the deadline passes (test
// helper shared by integration suites).
func Eventually(d time.Duration, cond func() bool) bool {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}
