// Package netsim simulates the network fabric between hosts: full-duplex
// links with propagation latency, serialization bandwidth, and optional
// loss, reordering and duplication, plus a learning switch.
//
// Time is real: delays are enforced with calibrated busy-waits so that
// end-to-end wall-clock measurements through the fabric reproduce the
// testbed's microsecond-scale RTTs. Each link direction runs two stages —
// a serializer that paces frames at line rate and applies impairments,
// and a deliverer that holds each frame until its propagation deadline —
// so multiple frames can be in flight on the wire at once, as on a real
// link.
package netsim

import (
	"math/rand"
	"sync"
	"time"

	"packetstore/internal/latency"
)

// LinkConfig describes one link. The zero value is an ideal, instant link.
type LinkConfig struct {
	// Latency is the one-way propagation delay.
	Latency time.Duration
	// Bandwidth is the line rate in bits per second; 0 means infinite.
	Bandwidth float64
	// Loss is the independent drop probability per frame.
	Loss float64
	// Reorder is the probability that a frame is held back and emitted
	// after its successor.
	Reorder float64
	// Duplicate is the probability that a frame is delivered twice.
	Duplicate float64
	// Corrupt is the probability that a frame has one random bit flipped
	// in flight — the wire damage the transport checksum must catch.
	Corrupt float64
	// Seed seeds the impairment generator; each direction derives its own
	// stream.
	Seed int64
	// QueueLen bounds each direction's transmit queue; frames beyond it
	// are tail-dropped. 0 means 1024.
	QueueLen int
}

type frame struct {
	b   []byte
	enq time.Time
}

// Port is one end of a link. Frames sent on a Port arrive on the peer's
// receive channel. Send transfers ownership of the slice.
type Port struct {
	cfg    LinkConfig
	tx     chan frame
	rx     chan []byte
	closed chan struct{}
	once   sync.Once

	drops struct {
		sync.Mutex
		queue   uint64
		loss    uint64
		corrupt uint64
	}
}

// NewLink creates a full-duplex link and returns its two ports.
func NewLink(cfg LinkConfig) (*Port, *Port) {
	if cfg.QueueLen == 0 {
		cfg.QueueLen = 1024
	}
	a := newPort(cfg)
	b := newPort(cfg)
	go a.run(b, cfg.Seed*2+1)
	go b.run(a, cfg.Seed*2+2)
	return a, b
}

func newPort(cfg LinkConfig) *Port {
	return &Port{
		cfg:    cfg,
		tx:     make(chan frame, cfg.QueueLen),
		rx:     make(chan []byte, cfg.QueueLen),
		closed: make(chan struct{}),
	}
}

// Send enqueues a frame for transmission towards the peer. It reports
// false when the transmit queue is full (tail drop) or the link is closed.
// The frame slice must not be reused by the caller.
func (p *Port) Send(b []byte) bool {
	select {
	case <-p.closed:
		return false
	default:
	}
	select {
	case p.tx <- frame{b: b, enq: time.Now()}:
		return true
	default:
		p.drops.Lock()
		p.drops.queue++
		p.drops.Unlock()
		return false
	}
}

// Recv returns the channel on which frames from the peer arrive. The
// channel is closed when the link closes.
func (p *Port) Recv() <-chan []byte { return p.rx }

// Close shuts down both directions of the link.
func (p *Port) Close() { p.once.Do(func() { close(p.closed) }) }

// QueueDrops reports frames tail-dropped at this port's transmit queue.
func (p *Port) QueueDrops() uint64 {
	p.drops.Lock()
	defer p.drops.Unlock()
	return p.drops.queue
}

// LossDrops reports frames dropped by the loss impairment on this port's
// transmit direction.
func (p *Port) LossDrops() uint64 {
	p.drops.Lock()
	defer p.drops.Unlock()
	return p.drops.loss
}

// CorruptFrames reports frames bit-flipped by the corruption impairment
// on this port's transmit direction.
func (p *Port) CorruptFrames() uint64 {
	p.drops.Lock()
	defer p.drops.Unlock()
	return p.drops.corrupt
}

// run is the per-direction pipeline: serialize (pace + impair) then hand
// to the deliver stage.
func (p *Port) run(peer *Port, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	delivery := make(chan timedFrame, cap(p.tx))
	go deliver(delivery, peer, p.closed)
	defer close(delivery)

	var held *frame // reorder hold slot
	emit := func(f frame) {
		// Serialization delay at line rate.
		if p.cfg.Bandwidth > 0 {
			latency.Spin(time.Duration(float64(len(f.b)) * 8 / p.cfg.Bandwidth * 1e9))
		}
		deadline := f.enq.Add(p.cfg.Latency)
		select {
		case delivery <- timedFrame{b: f.b, at: deadline}:
		case <-p.closed:
		}
		if p.cfg.Duplicate > 0 && rng.Float64() < p.cfg.Duplicate {
			dup := append([]byte(nil), f.b...)
			select {
			case delivery <- timedFrame{b: dup, at: deadline}:
			case <-p.closed:
			}
		}
	}

	for {
		select {
		case <-p.closed:
			return
		case f := <-p.tx:
			if p.cfg.Loss > 0 && rng.Float64() < p.cfg.Loss {
				p.drops.Lock()
				p.drops.loss++
				p.drops.Unlock()
				continue
			}
			if p.cfg.Corrupt > 0 && len(f.b) > 0 && rng.Float64() < p.cfg.Corrupt {
				// Flip one random bit in flight. The NIC's receive-side
				// checksum offload (or the stack's software verify) must
				// catch this and drop the frame, forcing retransmission.
				f.b[rng.Intn(len(f.b))] ^= 1 << uint(rng.Intn(8))
				p.drops.Lock()
				p.drops.corrupt++
				p.drops.Unlock()
			}
			if held != nil {
				emit(f)
				emit(*held)
				held = nil
				continue
			}
			if p.cfg.Reorder > 0 && rng.Float64() < p.cfg.Reorder {
				cp := f
				held = &cp
				continue
			}
			emit(f)
		}
	}
}

type timedFrame struct {
	b  []byte
	at time.Time
}

// deliver holds each frame until its propagation deadline, then pushes it
// to the peer's receive channel. Deadlines are near-monotone, so waiting
// on each in turn keeps multiple frames in flight.
func deliver(in <-chan timedFrame, peer *Port, closed <-chan struct{}) {
	for f := range in {
		if wait := time.Until(f.at); wait > 0 {
			latency.Spin(wait)
		}
		select {
		case peer.rx <- f.b:
		case <-closed:
			return
		default:
			// Receiver queue overflow: drop, as a NIC ring overrun would.
			peer.drops.Lock()
			peer.drops.queue++
			peer.drops.Unlock()
		}
	}
}
