package netsim

import (
	"sync"
)

// Switch is a learning Ethernet switch connecting multiple link ports: it
// learns source MAC addresses and forwards frames to the learned port, or
// floods unknown/broadcast destinations. Multi-client topologies (several
// client hosts against one storage server) hang off one Switch, as the
// paper's testbed hangs off one ToR.
type Switch struct {
	mu    sync.Mutex
	ports []*Port
	fdb   map[[6]byte]int
	done  chan struct{}
	wg    sync.WaitGroup
}

// NewSwitch creates a switch over the given ports and starts forwarding.
func NewSwitch(ports ...*Port) *Switch {
	s := &Switch{ports: ports, fdb: make(map[[6]byte]int), done: make(chan struct{})}
	for i, p := range ports {
		s.wg.Add(1)
		go s.forward(i, p)
	}
	return s
}

func (s *Switch) forward(idx int, p *Port) {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case f, ok := <-p.Recv():
			if !ok {
				return
			}
			if len(f) < 14 {
				continue // runt frame
			}
			var src, dst [6]byte
			copy(dst[:], f[0:6])
			copy(src[:], f[6:12])
			s.mu.Lock()
			s.fdb[src] = idx
			out, known := s.fdb[dst]
			s.mu.Unlock()
			if known && out != idx {
				s.ports[out].Send(f)
				continue
			}
			if known && out == idx {
				continue // destination behind the ingress port
			}
			// Flood (copies for all but the last egress).
			for j, q := range s.ports {
				if j == idx {
					continue
				}
				q.Send(append([]byte(nil), f...))
			}
		}
	}
}

// Close stops the switch's forwarding goroutines.
func (s *Switch) Close() {
	close(s.done)
	s.wg.Wait()
}
