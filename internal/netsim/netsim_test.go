package netsim

import (
	"testing"
	"time"
)

func TestLinkDelivers(t *testing.T) {
	a, b := NewLink(LinkConfig{})
	defer a.Close()
	if !a.Send([]byte("ping")) {
		t.Fatal("send failed")
	}
	select {
	case f := <-b.Recv():
		if string(f) != "ping" {
			t.Fatalf("got %q", f)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
	// Reverse direction too.
	b.Send([]byte("pong"))
	select {
	case f := <-a.Recv():
		if string(f) != "pong" {
			t.Fatalf("got %q", f)
		}
	case <-time.After(time.Second):
		t.Fatal("timeout")
	}
}

func TestLinkOrderPreserved(t *testing.T) {
	a, b := NewLink(LinkConfig{Latency: 10 * time.Microsecond})
	defer a.Close()
	const n = 200
	for i := 0; i < n; i++ {
		a.Send([]byte{byte(i), byte(i >> 8)})
	}
	for i := 0; i < n; i++ {
		select {
		case f := <-b.Recv():
			got := int(f[0]) | int(f[1])<<8
			if got != i {
				t.Fatalf("frame %d arrived at position %d", got, i)
			}
		case <-time.After(time.Second):
			t.Fatalf("timeout at frame %d", i)
		}
	}
}

func TestLinkLatency(t *testing.T) {
	const lat = 200 * time.Microsecond
	a, b := NewLink(LinkConfig{Latency: lat})
	defer a.Close()
	start := time.Now()
	a.Send([]byte("x"))
	<-b.Recv()
	if e := time.Since(start); e < lat {
		t.Fatalf("delivered after %v, want >= %v", e, lat)
	}
}

func TestLinkBandwidth(t *testing.T) {
	// 8 Mbit/s: a 1000-byte frame serializes in 1ms.
	a, b := NewLink(LinkConfig{Bandwidth: 8e6})
	defer a.Close()
	start := time.Now()
	a.Send(make([]byte, 1000))
	<-b.Recv()
	if e := time.Since(start); e < time.Millisecond {
		t.Fatalf("1000B at 8Mbit/s took %v, want >= 1ms", e)
	}
}

func TestLinkLoss(t *testing.T) {
	a, b := NewLink(LinkConfig{Loss: 1.0, Seed: 1})
	defer a.Close()
	for i := 0; i < 10; i++ {
		a.Send([]byte("gone"))
	}
	select {
	case f := <-b.Recv():
		t.Fatalf("frame %q survived 100%% loss", f)
	case <-time.After(50 * time.Millisecond):
	}
	if a.LossDrops() != 10 {
		t.Fatalf("LossDrops=%d want 10", a.LossDrops())
	}
}

func TestLinkReorder(t *testing.T) {
	a, b := NewLink(LinkConfig{Reorder: 0.5, Seed: 7})
	defer a.Close()
	const n = 100
	for i := 0; i < n; i++ {
		a.Send([]byte{byte(i)})
	}
	got := make([]int, 0, n)
	deadline := time.After(2 * time.Second)
	for len(got) < n-1 { // a held frame may remain in the hold slot
		select {
		case f := <-b.Recv():
			got = append(got, int(f[0]))
		case <-deadline:
			t.Fatalf("timeout after %d frames", len(got))
		}
	}
	inOrder := true
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("no reordering observed at 50% probability")
	}
}

func TestLinkDuplicate(t *testing.T) {
	a, b := NewLink(LinkConfig{Duplicate: 1.0, Seed: 3})
	defer a.Close()
	a.Send([]byte("twin"))
	for i := 0; i < 2; i++ {
		select {
		case f := <-b.Recv():
			if string(f) != "twin" {
				t.Fatalf("got %q", f)
			}
		case <-time.After(time.Second):
			t.Fatalf("timeout waiting for copy %d", i)
		}
	}
}

func TestLinkQueueOverflow(t *testing.T) {
	a, _ := NewLink(LinkConfig{QueueLen: 4, Latency: 50 * time.Millisecond})
	defer a.Close()
	sent := 0
	for i := 0; i < 100; i++ {
		if a.Send([]byte{1}) {
			sent++
		}
	}
	if sent >= 100 {
		t.Fatal("no tail drop on overflow")
	}
	if a.QueueDrops() == 0 {
		t.Fatal("QueueDrops not counted")
	}
}

func TestSendAfterClose(t *testing.T) {
	a, _ := NewLink(LinkConfig{})
	a.Close()
	if a.Send([]byte("x")) {
		t.Fatal("send succeeded after close")
	}
}

func TestSwitchLearningAndFlood(t *testing.T) {
	// Three hosts h1,h2,h3 on a switch; host side ports hs*, switch side ss*.
	hs1, ss1 := NewLink(LinkConfig{})
	hs2, ss2 := NewLink(LinkConfig{})
	hs3, ss3 := NewLink(LinkConfig{})
	sw := NewSwitch(ss1, ss2, ss3)
	defer sw.Close()
	defer hs1.Close()
	defer hs2.Close()
	defer hs3.Close()

	mac := func(i byte) []byte { return []byte{2, 0, 0, 0, 0, i} }
	frame := func(dst, src []byte, body string) []byte {
		f := append(append(append([]byte{}, dst...), src...), 0x08, 0x00)
		return append(f, body...)
	}

	// h1 -> h2 (unknown dst: flood to h2 and h3).
	hs1.Send(frame(mac(2), mac(1), "hello"))
	recvOn := func(p *Port) string {
		select {
		case f := <-p.Recv():
			return string(f[14:])
		case <-time.After(time.Second):
			t.Fatal("timeout")
			return ""
		}
	}
	if recvOn(hs2) != "hello" || recvOn(hs3) != "hello" {
		t.Fatal("flood did not reach all ports")
	}

	// h2 -> h1: switch has learned h1's location; h3 must NOT see it.
	hs2.Send(frame(mac(1), mac(2), "reply"))
	if recvOn(hs1) != "reply" {
		t.Fatal("learned forward failed")
	}
	select {
	case f := <-hs3.Recv():
		t.Fatalf("h3 received unicast it should not see: %q", f)
	case <-time.After(20 * time.Millisecond):
	}

	// Runt frames are dropped silently.
	hs1.Send([]byte{1, 2, 3})
}

func BenchmarkLinkThroughput(b *testing.B) {
	a, p := NewLink(LinkConfig{})
	defer a.Close()
	go func() {
		for range p.Recv() {
		}
	}()
	buf := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		for !a.Send(append([]byte(nil), buf...)) {
		}
	}
}
