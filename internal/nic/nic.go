// Package nic simulates a network interface controller: descriptor rings,
// DMA into packet-buffer pools, and the hardware offloads the paper
// proposes to re-purpose for storage — receive checksum validation with
// CHECKSUM_COMPLETE-style payload sums, transmit checksumming, TCP
// segmentation offload, and hardware receive timestamps.
//
// Offloaded work costs no emulated time: it happens in the NIC pipeline,
// concurrent with transfer. What the model charges per packet is the
// descriptor/PCIe/doorbell cost (Config.PerPacket) plus the configured
// software-stack overhead (Config.PerPacketSW) standing in for the
// softirq/syscall path of the testbed's kernel stack.
//
// When the receive pool is PM-backed (PASTE), DMA lands packet data
// directly in persistent memory; the NIC marks the lines dirty and the
// application decides when to flush — persistence stays an explicit,
// measured cost.
package nic

import (
	"encoding/binary"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/checksum"
	"packetstore/internal/eth"
	"packetstore/internal/ipv4"
	"packetstore/internal/latency"
	"packetstore/internal/netsim"
	"packetstore/internal/pkt"
)

// Offloads selects which hardware offloads are active.
type Offloads struct {
	// RxChecksum verifies the TCP checksum of received segments and, when
	// valid, exports the unfolded partial sum of the TCP payload in
	// Buf.Csum with CsumComplete status.
	RxChecksum bool
	// TxChecksum fills the TCP checksum of transmitted segments whose
	// CsumStatus is CsumPartial.
	TxChecksum bool
	// TSO segments large TCP transmit buffers into MSS-sized frames in
	// the NIC, cloning headers and advancing sequence numbers.
	TSO bool
	// HWTimestamp stamps received packets with the NIC clock.
	HWTimestamp bool
}

// Config describes a NIC.
type Config struct {
	MAC    eth.Addr
	RxPool *pkt.Pool
	// RxPools, when set, gives each RSS queue its own receive pool:
	// queue q DMAs into RxPools[q]. This is the steering a sharded
	// packetstore exploits — each queue's pool is the PM data area of
	// the shard serving that queue, so a flow's packets land in the
	// partition that owns its keys. Overrides RxPool and Queues.
	RxPools []*pkt.Pool
	// Queues is the number of RSS receive queues (default 1). Flows hash
	// by 4-tuple onto queues.
	Queues int
	// RingLen bounds the tx ring and each rx ring (default 512).
	RingLen  int
	Offloads Offloads
	// PerPacket is the emulated hardware per-packet cost in each
	// direction.
	PerPacket time.Duration
	// PerPacketSW is the emulated fixed software-path cost charged with
	// each packet, standing in for kernel-stack overheads the thin
	// simulator stack does not have.
	PerPacketSW time.Duration
	// MSS is the TCP maximum segment size used by TSO (default 1460).
	MSS int
	// QueueNodes pins each RSS queue's interrupt (and therefore its rx
	// pool, when the pool is the shard's PM data area) to a NUMA node:
	// queue q fires on node QueueNodes[q]. Nil means node 0 for every
	// queue. The NIC itself charges no node-dependent cost — DMA writes
	// land wherever the pool lives — but the serving stack reads the
	// mapping (NodeOfQueue) to place each queue's event loop on the
	// interrupt's socket.
	QueueNodes []int
}

// Stats holds NIC counters.
type Stats struct {
	RxPackets   uint64
	RxBytes     uint64
	RxDropNoBuf uint64 // rx pool exhausted
	RxDropRing  uint64 // rx ring overflow
	TxPackets   uint64
	TxBytes     uint64
	TxDropRing  uint64 // tx ring overflow
	TSOSegments uint64
	RxCsumGood  uint64
	RxCsumBad   uint64
}

// txDesc is a transmit descriptor: a linearized frame plus the offload
// metadata a real descriptor carries.
type txDesc struct {
	frame    []byte
	l3, l4   int // offsets within frame; 0 = not TCP/IPv4
	payload  int
	csumFill bool
	tso      bool
}

// NIC is a simulated adapter bound to one fabric port.
type NIC struct {
	cfg     Config
	port    *netsim.Port
	rxqs    []chan *pkt.Buf
	rxPools []*pkt.Pool // per-queue receive pools
	txq     chan txDesc
	done    chan struct{}
	wg      sync.WaitGroup

	rxPackets, rxBytes, rxDropNoBuf, rxDropRing atomic.Uint64
	txPackets, txBytes, txDropRing, tsoSegments atomic.Uint64
	rxCsumGood, rxCsumBad                       atomic.Uint64
}

// New creates a NIC on port and starts its rx/tx engines.
func New(cfg Config, port *netsim.Port) *NIC {
	if len(cfg.RxPools) > 0 {
		cfg.Queues = len(cfg.RxPools)
	}
	if cfg.Queues <= 0 {
		cfg.Queues = 1
	}
	if cfg.RingLen <= 0 {
		cfg.RingLen = 512
	}
	if cfg.MSS <= 0 {
		cfg.MSS = 1460
	}
	n := &NIC{
		cfg:  cfg,
		port: port,
		txq:  make(chan txDesc, cfg.RingLen),
		done: make(chan struct{}),
	}
	if len(cfg.RxPools) > 0 {
		n.rxPools = cfg.RxPools
	} else {
		n.rxPools = make([]*pkt.Pool, cfg.Queues)
		for i := range n.rxPools {
			n.rxPools[i] = cfg.RxPool
		}
	}
	n.rxqs = make([]chan *pkt.Buf, cfg.Queues)
	for i := range n.rxqs {
		n.rxqs[i] = make(chan *pkt.Buf, cfg.RingLen)
	}
	n.wg.Add(2)
	go n.rxLoop()
	go n.txLoop()
	return n
}

// MAC returns the adapter's address.
func (n *NIC) MAC() eth.Addr { return n.cfg.MAC }

// MSS returns the TSO segment size.
func (n *NIC) MSS() int { return n.cfg.MSS }

// Offloads returns the active offload set.
func (n *NIC) Offloads() Offloads { return n.cfg.Offloads }

// RxPool returns queue 0's receive buffer pool.
func (n *NIC) RxPool() *pkt.Pool { return n.rxPools[0] }

// RxPoolQ returns queue q's receive buffer pool.
func (n *NIC) RxPoolQ(q int) *pkt.Pool { return n.rxPools[q] }

// Rx returns receive queue q's channel of packets.
func (n *NIC) Rx(q int) <-chan *pkt.Buf { return n.rxqs[q] }

// RxQueueLen returns the number of received packets waiting in queue
// q's descriptor ring — the NIC-level component of a queue's occupancy,
// which work-stealing loops use to pick victims by depth.
func (n *NIC) RxQueueLen(q int) int { return len(n.rxqs[q]) }

// Queues returns the RSS queue count.
func (n *NIC) Queues() int { return len(n.rxqs) }

// NodeOfQueue reports the NUMA node queue q's interrupt fires on
// (Config.QueueNodes; node 0 when unconfigured).
func (n *NIC) NodeOfQueue(q int) int {
	if q < 0 || q >= len(n.cfg.QueueNodes) {
		return 0
	}
	return n.cfg.QueueNodes[q]
}

// Stats returns a snapshot of the counters.
func (n *NIC) Stats() Stats {
	return Stats{
		RxPackets:   n.rxPackets.Load(),
		RxBytes:     n.rxBytes.Load(),
		RxDropNoBuf: n.rxDropNoBuf.Load(),
		RxDropRing:  n.rxDropRing.Load(),
		TxPackets:   n.txPackets.Load(),
		TxBytes:     n.txBytes.Load(),
		TxDropRing:  n.txDropRing.Load(),
		TSOSegments: n.tsoSegments.Load(),
		RxCsumGood:  n.rxCsumGood.Load(),
		RxCsumBad:   n.rxCsumBad.Load(),
	}
}

// Close stops the NIC and its fabric port.
func (n *NIC) Close() {
	close(n.done)
	n.port.Close()
	n.wg.Wait()
}

// Tx hands a packet to the adapter. The buffer's view must contain the
// frame from the Ethernet header; fragments extend the payload. L3/L4/
// Payload offsets must be set for TCP offloads to apply. Tx consumes the
// buffer (linearizing it into a descriptor — the DMA gather) and returns
// false if the ring is full, in which case the packet is dropped.
func (n *NIC) Tx(b *pkt.Buf) bool {
	d := txDesc{frame: make([]byte, b.TotalLen())}
	b.Linearize(d.frame)
	if b.L3 > 0 {
		d.l3 = b.L3 - b.HeadOffset()
		d.l4 = b.L4 - b.HeadOffset()
		d.payload = b.Payload - b.HeadOffset()
	}
	d.csumFill = b.CsumStatus == pkt.CsumPartial
	d.tso = n.cfg.Offloads.TSO && d.l4 > 0 && len(d.frame)-d.payload > n.cfg.MSS
	b.Release()
	select {
	case n.txq <- d:
		return true
	default:
		n.txDropRing.Add(1)
		return false
	}
}

func (n *NIC) txLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case d := <-n.txq:
			latency.Spin(n.cfg.PerPacket + n.cfg.PerPacketSW)
			if d.tso {
				n.transmitTSO(d)
			} else {
				n.transmitOne(d.frame, d)
			}
		}
	}
}

func (n *NIC) transmitOne(frame []byte, d txDesc) {
	if d.csumFill && n.cfg.Offloads.TxChecksum && d.l4 > 0 {
		fillTCPChecksum(frame, d.l3, d.l4)
	}
	n.txPackets.Add(1)
	n.txBytes.Add(uint64(len(frame)))
	n.port.Send(frame)
}

// transmitTSO splits one oversized TCP frame into MSS-sized segments,
// replicating headers and advancing IP ID and TCP sequence numbers — the
// hardware path of GSO.
func (n *NIC) transmitTSO(d txDesc) {
	hdr := d.frame[:d.payload]
	payload := d.frame[d.payload:]
	mss := n.cfg.MSS
	baseSeq := binary.BigEndian.Uint32(d.frame[d.l4+4 : d.l4+8])
	baseID := binary.BigEndian.Uint16(d.frame[d.l3+4 : d.l3+6])
	flags := d.frame[d.l4+13]
	for off, i := 0, 0; off < len(payload); i++ {
		seg := payload[off:]
		last := len(seg) <= mss
		if !last {
			seg = seg[:mss]
		}
		f := make([]byte, len(hdr)+len(seg))
		copy(f, hdr)
		copy(f[len(hdr):], seg)
		// IP: total length, ID, header checksum.
		binary.BigEndian.PutUint16(f[d.l3+2:d.l3+4], uint16(len(f)-d.l3))
		binary.BigEndian.PutUint16(f[d.l3+4:d.l3+6], baseID+uint16(i))
		f[d.l3+10], f[d.l3+11] = 0, 0
		cs := checksum.Checksum(f[d.l3 : d.l3+ipv4.HeaderLen])
		binary.BigEndian.PutUint16(f[d.l3+10:d.l3+12], cs)
		// TCP: sequence; FIN/PSH only on the last segment.
		binary.BigEndian.PutUint32(f[d.l4+4:d.l4+8], baseSeq+uint32(off))
		fl := flags
		if !last {
			fl &^= 0x09 // clear FIN|PSH
		}
		f[d.l4+13] = fl
		fillTCPChecksum(f, d.l3, d.l4)
		n.tsoSegments.Add(1)
		n.txPackets.Add(1)
		n.txBytes.Add(uint64(len(f)))
		n.port.Send(f)
		off += len(seg)
	}
}

// fillTCPChecksum computes and stores the TCP checksum of the frame's
// segment, using the IPv4 pseudo header.
func fillTCPChecksum(frame []byte, l3, l4 int) {
	var src, dst [4]byte
	copy(src[:], frame[l3+12:l3+16])
	copy(dst[:], frame[l3+16:l3+20])
	seg := frame[l4:]
	frame[l4+16], frame[l4+17] = 0, 0
	sum := checksum.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, len(seg))
	sum = checksum.Combine(sum, checksum.Partial(0, seg))
	cs := ^checksum.Fold(sum)
	binary.BigEndian.PutUint16(frame[l4+16:l4+18], cs)
}

func (n *NIC) rxLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case frame, ok := <-n.port.Recv():
			if !ok {
				return
			}
			n.receive(frame)
		}
	}
}

func (n *NIC) receive(frame []byte) {
	latency.Spin(n.cfg.PerPacket + n.cfg.PerPacketSW)
	// RSS steering happens in the NIC pipeline before DMA: the queue
	// choice selects the descriptor ring AND its buffer pool, so with
	// per-queue PM pools the payload lands in the owning partition.
	q := n.rssQueue(frame)
	pool := n.rxPools[q]
	b := pool.Alloc(0)
	if b == nil {
		n.rxDropNoBuf.Add(1)
		return
	}
	if len(frame) > b.Tailroom() {
		// Oversized frame for the pool's buffers: drop.
		b.Release()
		n.rxDropNoBuf.Add(1)
		return
	}
	// DMA: the frame lands in the pool buffer; if the pool is PM-backed,
	// the lines are dirty (DDIO leaves them unflushed).
	copy(b.Append(len(frame)), frame)
	if r := pool.Region(); r != nil {
		r.MarkDirty(b.PMOff(), len(frame))
	}
	if n.cfg.Offloads.HWTimestamp {
		b.HWTime = time.Now()
	}
	n.rxPackets.Add(1)
	n.rxBytes.Add(uint64(len(frame)))

	n.parseOffloads(b)

	select {
	case n.rxqs[q] <- b:
	default:
		b.Release()
		n.rxDropRing.Add(1)
	}
}

// rssQueue parses the raw frame just far enough to steer it: the RSS
// hash of the TCP/IPv4 4-tuple picks the receive queue. Non-TCP and
// short frames land on queue 0.
func (n *NIC) rssQueue(f []byte) int {
	if len(n.rxqs) == 1 {
		return 0
	}
	if len(f) < eth.HeaderLen+ipv4.HeaderLen {
		return 0
	}
	if binary.BigEndian.Uint16(f[12:14]) != eth.TypeIPv4 {
		return 0
	}
	ihl := int(f[eth.HeaderLen]&0x0f) * 4
	if f[eth.HeaderLen+9] != ipv4.ProtoTCP || len(f) < eth.HeaderLen+ihl+20 {
		return 0
	}
	srcIP := binary.BigEndian.Uint32(f[eth.HeaderLen+12 : eth.HeaderLen+16])
	dstIP := binary.BigEndian.Uint32(f[eth.HeaderLen+16 : eth.HeaderLen+20])
	ports := binary.BigEndian.Uint32(f[eth.HeaderLen+ihl : eth.HeaderLen+ihl+4])
	return rssSpread(rssHash(srcIP, dstIP, ports), len(n.rxqs))
}

// rssHash is the Toeplitz stand-in: fold the 4-tuple through a
// multiplicative hash.
func rssHash(srcIP, dstIP, ports uint32) uint32 {
	return (srcIP ^ dstIP ^ ports) * 0x9e3779b1
}

// rssSpread maps a hash onto [0, queues) through the product's HIGH bits
// (fastrange). A plain modulo would read the low bits, which a
// multiplicative hash barely perturbs: flows from one host differ only
// in the ephemeral port (bits 16+ of the input), so hash%queues would
// steer every flow of a client to the same queue.
func rssSpread(h uint32, queues int) int {
	return int((uint64(h) * uint64(queues)) >> 32)
}

// RSSQueue computes, for a frame with the given 4-tuple (as seen by the
// receiving NIC), the queue an adapter with the given queue count steers
// it to. Exported so stacks and clients can align flows with the shard
// serving a queue — the NIC-offload-to-storage-partition mapping.
func RSSQueue(srcIP, dstIP ipv4.Addr, srcPort, dstPort uint16, queues int) int {
	if queues <= 1 {
		return 0
	}
	src := binary.BigEndian.Uint32(srcIP[:])
	dst := binary.BigEndian.Uint32(dstIP[:])
	ports := uint32(srcPort)<<16 | uint32(dstPort)
	return rssSpread(rssHash(src, dst, ports), queues)
}

// parseOffloads sets layer offsets and runs the receive checksum
// offload.
func (n *NIC) parseOffloads(b *pkt.Buf) {
	f := b.Bytes()
	if len(f) < eth.HeaderLen+ipv4.HeaderLen {
		return
	}
	et := binary.BigEndian.Uint16(f[12:14])
	if et != eth.TypeIPv4 {
		return
	}
	l3 := b.HeadOffset() + eth.HeaderLen
	b.L3 = l3
	ihl := int(f[eth.HeaderLen]&0x0f) * 4
	proto := f[eth.HeaderLen+9]
	if proto != ipv4.ProtoTCP || len(f) < eth.HeaderLen+ihl+20 {
		return
	}
	l4 := l3 + ihl
	b.L4 = l4
	tcp := f[eth.HeaderLen+ihl:]
	doff := int(tcp[12]>>4) * 4
	if doff < 20 || len(tcp) < doff {
		return
	}
	b.Payload = l4 + doff

	if n.cfg.Offloads.RxChecksum {
		var src, dst [4]byte
		copy(src[:], f[eth.HeaderLen+12:eth.HeaderLen+16])
		copy(dst[:], f[eth.HeaderLen+16:eth.HeaderLen+20])
		totalLen := int(binary.BigEndian.Uint16(f[eth.HeaderLen+2 : eth.HeaderLen+4]))
		segLen := totalLen - ihl
		if segLen >= doff && eth.HeaderLen+ihl+segLen <= len(f) {
			seg := f[eth.HeaderLen+ihl : eth.HeaderLen+ihl+segLen]
			sum := checksum.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, segLen)
			sum = checksum.Combine(sum, checksum.Partial(0, seg))
			if checksum.Fold(sum) == 0xffff {
				n.rxCsumGood.Add(1)
				b.CsumStatus = pkt.CsumComplete
				// Export the payload-only partial sum: whole-segment sum
				// minus header bytes. The header is always even-length
				// (doff is a multiple of 4), so Subtract applies.
				segSum := checksum.Partial(0, seg)
				b.Csum = checksum.Subtract(segSum, checksum.Partial(0, seg[:doff]))
			} else {
				n.rxCsumBad.Add(1)
				b.CsumStatus = pkt.CsumNone
			}
		}
	}
}
