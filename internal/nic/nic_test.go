package nic

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/checksum"
	"packetstore/internal/eth"
	"packetstore/internal/ipv4"
	"packetstore/internal/netsim"
	"packetstore/internal/pkt"
	"packetstore/internal/pmem"
)

// buildTCPFrame assembles a valid eth+IPv4+TCP frame carrying payload.
func buildTCPFrame(payload []byte, seq uint32, goodCsum bool) []byte {
	f := make([]byte, eth.HeaderLen+ipv4.HeaderLen+20+len(payload))
	eth.Header{Dst: eth.HostAddr(2), Src: eth.HostAddr(1), Type: eth.TypeIPv4}.Encode(f)
	ih := ipv4.Header{
		TotalLen: uint16(ipv4.HeaderLen + 20 + len(payload)),
		TTL:      64, Proto: ipv4.ProtoTCP,
		Src: ipv4.HostAddr(1), Dst: ipv4.HostAddr(2),
	}
	ih.Encode(f[eth.HeaderLen:])
	tcp := f[eth.HeaderLen+ipv4.HeaderLen:]
	binary.BigEndian.PutUint16(tcp[0:2], 5555)
	binary.BigEndian.PutUint16(tcp[2:4], 80)
	binary.BigEndian.PutUint32(tcp[4:8], seq)
	tcp[12] = 5 << 4 // data offset 20
	tcp[13] = 0x18   // PSH|ACK
	binary.BigEndian.PutUint16(tcp[14:16], 65535)
	copy(tcp[20:], payload)
	fillTCPChecksum(f, eth.HeaderLen, eth.HeaderLen+ipv4.HeaderLen)
	if !goodCsum {
		tcp[16] ^= 0xff
	}
	return f
}

func newPair(t *testing.T, cfg Config) (*NIC, *netsim.Port) {
	t.Helper()
	a, b := netsim.NewLink(netsim.LinkConfig{})
	if cfg.RxPool == nil {
		cfg.RxPool = pkt.NewPool(2048, 64)
	}
	if cfg.MAC == (eth.Addr{}) {
		cfg.MAC = eth.HostAddr(2)
	}
	n := New(cfg, a)
	t.Cleanup(n.Close)
	return n, b
}

func recvBuf(t *testing.T, n *NIC, q int) *pkt.Buf {
	t.Helper()
	select {
	case b := <-n.Rx(q):
		return b
	case <-time.After(2 * time.Second):
		t.Fatal("rx timeout")
		return nil
	}
}

func TestRxParsesAndTimestamps(t *testing.T) {
	n, peer := newPair(t, Config{Offloads: Offloads{HWTimestamp: true}})
	payload := []byte("hello tcp payload")
	peer.Send(buildTCPFrame(payload, 1000, true))
	b := recvBuf(t, n, 0)
	defer b.Release()
	if b.L3 == 0 || b.L4 == 0 || b.Payload == 0 {
		t.Fatalf("layer offsets unset: %d %d %d", b.L3, b.L4, b.Payload)
	}
	if !bytes.Equal(b.PayloadBytes(), payload) {
		t.Fatalf("payload %q", b.PayloadBytes())
	}
	if b.HWTime.IsZero() {
		t.Fatal("hardware timestamp not set")
	}
	st := n.Stats()
	if st.RxPackets != 1 || st.RxBytes == 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestRxChecksumOffload(t *testing.T) {
	n, peer := newPair(t, Config{Offloads: Offloads{RxChecksum: true}})
	payload := []byte("payload to be summed!")
	peer.Send(buildTCPFrame(payload, 1, true))
	b := recvBuf(t, n, 0)
	defer b.Release()
	if b.CsumStatus != pkt.CsumComplete {
		t.Fatalf("CsumStatus=%v", b.CsumStatus)
	}
	want := checksum.Fold(checksum.Partial(0, payload))
	if got := checksum.Fold(b.Csum); got != want {
		t.Fatalf("payload sum %#04x want %#04x", got, want)
	}
	if n.Stats().RxCsumGood != 1 {
		t.Fatal("good counter")
	}
}

func TestRxChecksumBad(t *testing.T) {
	n, peer := newPair(t, Config{Offloads: Offloads{RxChecksum: true}})
	peer.Send(buildTCPFrame([]byte("corrupted"), 1, false))
	b := recvBuf(t, n, 0)
	defer b.Release()
	if b.CsumStatus != pkt.CsumNone {
		t.Fatalf("bad checksum marked %v", b.CsumStatus)
	}
	if n.Stats().RxCsumBad != 1 {
		t.Fatal("bad counter")
	}
}

func TestRxPoolExhaustionDrops(t *testing.T) {
	pool := pkt.NewPool(2048, 1)
	n, peer := newPair(t, Config{RxPool: pool})
	peer.Send(buildTCPFrame([]byte("one"), 1, true))
	b := recvBuf(t, n, 0) // hold the only buffer
	defer b.Release()
	peer.Send(buildTCPFrame([]byte("two"), 2, true))
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().RxDropNoBuf == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no-buffer drop not counted")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestRxIntoPMPoolMarksDirty(t *testing.T) {
	r := pmem.New(1<<20, calib.Off())
	pool := pkt.NewPMPool(r, 0, 2048, 16)
	n, peer := newPair(t, Config{RxPool: pool})
	peer.Send(buildTCPFrame([]byte("persist-me"), 1, true))
	b := recvBuf(t, n, 0)
	defer b.Release()
	if b.PMOff() < 0 {
		t.Fatal("buffer not PM-backed")
	}
	if r.DirtyLines() == 0 {
		t.Fatal("DMA did not mark PM lines dirty")
	}
	// The frame bytes are in the region at the buffer's offset.
	if !bytes.Equal(r.Slice(b.PMOff(), b.Len()), b.Bytes()) {
		t.Fatal("region does not hold the frame")
	}
}

func TestTxEmitsFrame(t *testing.T) {
	n, peer := newPair(t, Config{})
	b := pkt.NewBuf(make([]byte, 0, 128))
	raw := buildTCPFrame([]byte("outbound"), 7, true)
	b2 := pkt.NewBuf(raw)
	if !n.Tx(b2) {
		t.Fatal("tx refused")
	}
	b.Release()
	select {
	case f := <-peer.Recv():
		if !bytes.Equal(f, raw) {
			t.Fatal("frame mutated in tx")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("tx timeout")
	}
	if st := n.Stats(); st.TxPackets != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestTxChecksumOffload(t *testing.T) {
	n, peer := newPair(t, Config{Offloads: Offloads{TxChecksum: true}})
	raw := buildTCPFrame([]byte("fill my checksum"), 9, true)
	// Zero the checksum and mark partial.
	raw[eth.HeaderLen+ipv4.HeaderLen+16] = 0
	raw[eth.HeaderLen+ipv4.HeaderLen+17] = 0
	b := pkt.NewBuf(raw)
	b.L3 = eth.HeaderLen
	b.L4 = eth.HeaderLen + ipv4.HeaderLen
	b.Payload = b.L4 + 20
	b.CsumStatus = pkt.CsumPartial
	n.Tx(b)
	f := <-peer.Recv()
	// Verify the checksum the NIC filled.
	var src, dst [4]byte
	copy(src[:], f[eth.HeaderLen+12:])
	copy(dst[:], f[eth.HeaderLen+16:eth.HeaderLen+20])
	seg := f[eth.HeaderLen+ipv4.HeaderLen:]
	sum := checksum.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, len(seg))
	sum = checksum.Combine(sum, checksum.Partial(0, seg))
	if checksum.Fold(sum) != 0xffff {
		t.Fatal("NIC-filled checksum invalid")
	}
}

func TestTSOSplitsSegments(t *testing.T) {
	n, peer := newPair(t, Config{MSS: 100, Offloads: Offloads{TSO: true, TxChecksum: true}})
	payload := make([]byte, 350)
	for i := range payload {
		payload[i] = byte(i)
	}
	raw := buildTCPFrame(payload, 1000, true)
	b := pkt.NewBuf(raw)
	b.L3 = eth.HeaderLen
	b.L4 = eth.HeaderLen + ipv4.HeaderLen
	b.Payload = b.L4 + 20
	b.CsumStatus = pkt.CsumPartial
	n.Tx(b)

	var got []byte
	seqs := []uint32{}
	for i := 0; i < 4; i++ {
		select {
		case f := <-peer.Recv():
			ih, err := ipv4.Decode(f[eth.HeaderLen:])
			if err != nil {
				t.Fatalf("segment %d: %v", i, err)
			}
			tcp := f[eth.HeaderLen+ipv4.HeaderLen:]
			seqs = append(seqs, binary.BigEndian.Uint32(tcp[4:8]))
			seg := tcp[:ih.PayloadLen()]
			// Each segment's checksum must validate.
			sum := checksum.PseudoHeaderSum(ih.Src, ih.Dst, ipv4.ProtoTCP, len(seg))
			sum = checksum.Combine(sum, checksum.Partial(0, seg))
			if checksum.Fold(sum) != 0xffff {
				t.Fatalf("segment %d checksum invalid", i)
			}
			psh := tcp[13]&0x08 != 0
			if tcp[13]&0x10 == 0 {
				t.Fatalf("segment %d lost ACK flag", i)
			}
			if i < 3 && psh {
				t.Fatalf("segment %d has PSH before last", i)
			}
			got = append(got, seg[20:]...)
		case <-time.After(2 * time.Second):
			t.Fatalf("timeout at segment %d", i)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("reassembled payload mismatch")
	}
	for i, s := range seqs {
		if want := uint32(1000 + i*100); s != want {
			t.Fatalf("segment %d seq %d want %d", i, s, want)
		}
	}
	if n.Stats().TSOSegments != 4 {
		t.Fatalf("TSOSegments=%d", n.Stats().TSOSegments)
	}
}

func TestTxWithFrags(t *testing.T) {
	n, peer := newPair(t, Config{})
	head := pkt.NewBuf([]byte("head|"))
	head.AddFrag(pkt.Frag{B: []byte("frag1|"), PMOff: -1})
	head.AddFrag(pkt.Frag{B: []byte("frag2"), PMOff: -1})
	n.Tx(head)
	select {
	case f := <-peer.Recv():
		if string(f) != "head|frag1|frag2" {
			t.Fatalf("gather result %q", f)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("timeout")
	}
}

func TestRSSQueueSteering(t *testing.T) {
	n, peer := newPair(t, Config{Queues: 4})
	if n.Queues() != 4 {
		t.Fatal("queue count")
	}
	// Same flow must always land on the same queue.
	for i := 0; i < 5; i++ {
		peer.Send(buildTCPFrame([]byte{byte(i)}, uint32(i), true))
	}
	hits := make([]int, 4)
	deadline := time.After(2 * time.Second)
	for total := 0; total < 5; {
		progressed := false
		for q := 0; q < 4; q++ {
			select {
			case b := <-n.Rx(q):
				hits[q]++
				total++
				progressed = true
				b.Release()
			default:
			}
		}
		if !progressed {
			select {
			case <-deadline:
				t.Fatalf("timeout, got %v", hits)
			case <-time.After(time.Millisecond):
			}
		}
	}
	nonzero := 0
	for _, h := range hits {
		if h > 0 {
			nonzero++
		}
	}
	if nonzero != 1 {
		t.Fatalf("one flow spread across %d queues: %v", nonzero, hits)
	}
}

func TestNonTCPFrameStillDelivered(t *testing.T) {
	n, peer := newPair(t, Config{Offloads: Offloads{RxChecksum: true}})
	// An ARP-typed frame: delivered raw on queue 0 with no offsets.
	f := make([]byte, 60)
	eth.Header{Dst: eth.Broadcast, Src: eth.HostAddr(1), Type: eth.TypeARP}.Encode(f)
	peer.Send(f)
	b := recvBuf(t, n, 0)
	defer b.Release()
	if b.L4 != 0 || b.CsumStatus != pkt.CsumNone {
		t.Fatal("non-TCP frame got TCP treatment")
	}
}

func TestOversizeFrameDropped(t *testing.T) {
	pool := pkt.NewPool(256, 8)
	n, peer := newPair(t, Config{RxPool: pool})
	peer.Send(make([]byte, 1000))
	deadline := time.Now().Add(2 * time.Second)
	for n.Stats().RxDropNoBuf == 0 {
		if time.Now().After(deadline) {
			t.Fatal("oversize drop not counted")
		}
		time.Sleep(time.Millisecond)
	}
	if pool.InUse() != 0 {
		t.Fatal("dropped frame leaked a buffer")
	}
}

func BenchmarkRxPath(b *testing.B) {
	a, peer := netsim.NewLink(netsim.LinkConfig{})
	pool := pkt.NewPool(2048, 1024)
	n := New(Config{MAC: eth.HostAddr(2), RxPool: pool, Offloads: Offloads{RxChecksum: true}}, a)
	defer n.Close()
	frame := buildTCPFrame(make([]byte, 1024), 1, true)
	// Lockstep send/receive: under open-loop load the rx ring legitimately
	// drops packets, which would starve a counting consumer.
	for i := 0; i < b.N; i++ {
		f := append([]byte(nil), frame...)
		for !peer.Send(f) {
		}
		buf := <-n.Rx(0)
		buf.Release()
	}
}
