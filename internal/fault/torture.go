package fault

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/host"
	"packetstore/internal/kvclient"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
	"packetstore/internal/tcp"
)

// The torture harness model-checks the store against randomized fault
// schedules. Each run derives a workload, a fault plan and the post-cut
// device state from one seed, executes it against a real store, and
// compares recovery against a reference model:
//
//   - crash runs: after a power cut at any persist operation (torn
//     write-backs included), recovery must equal the acked prefix of
//     the workload — every acknowledged op exact, the one in-flight op
//     old/new/absent, nothing else, no checksum failures, nothing
//     quarantined.
//   - corruption runs: after random media bit flips, every read returns
//     the correct bytes, reports the key missing (quarantined), or
//     fails with an error — wrong bytes are never served, and no more
//     keys are affected than bits were flipped.
//   - shard runs: a shard whose metadata is destroyed quarantines on
//     reopen; its keyspace answers ErrShardDown while every other
//     shard keeps serving exact data.
//   - net runs: under frame loss, reordering, duplication and
//     corruption, a client-acknowledged put is committed exactly on
//     the server; unacknowledged puts are absent or exact.

// RunStats describes one torture run.
type RunStats struct {
	Seed       int64
	Shards     int
	PersistOps int64 // calibration total (crash runs)
	CutAt      int64
	TearBytes  int
	// BatchSize is the group-commit width drawn for crash runs: 1 means
	// the per-op path, >1 stages that many puts per Commit.
	BatchSize  int
	AckedOps   int
	RecoveryNs int64
	Records    int // records alive after recovery
	// SlotsQuarantined counts slots fenced off by recovery; Detected
	// counts keys whose corruption surfaced as a miss or an error.
	SlotsQuarantined int
	Detected         int
	ShardsDown       int
	// RejoinNs is the quarantine-to-readmission time of a heal run's
	// victim shard; TrafficOps/TrafficErrs count the concurrent traffic
	// issued during the heal and how much of it hit the outage window.
	RejoinNs    int64
	TrafficOps  int64
	TrafficErrs int64
	// Reconstructions counts records the erase mode re-materialised
	// from parity and the surviving group members.
	Reconstructions uint64
}

// tortureCfg is the small, fully explicit geometry the PM-level modes
// run on: every field is set so the harness can locate the superblock
// and per-shard strides without private layout knowledge.
func tortureCfg() core.Config {
	return core.Config{
		MetaSlots: 256, SlotSize: 128,
		DataSlots: 256, DataBufSize: 512,
		VerifyOnGet: true,
	}
}

// storeAPI is the store surface the harness checks — both *core.Store
// and *core.ShardedStore implement it.
type storeAPI interface {
	Put(key, value []byte) error
	PutStaged(key, value []byte) error
	Commit()
	Get(key []byte) ([]byte, bool, error)
	Delete(key []byte) (bool, error)
	Range(start, end []byte, limit int) ([]core.Record, error)
	Verify() ([][]byte, error)
	Stats() core.Stats
	Len() int
}

func openStore(r *pmem.Region, cfg core.Config, shards int) (storeAPI, error) {
	if shards > 1 {
		return core.OpenSharded(r, cfg, shards)
	}
	return core.Open(r, cfg)
}

// wlOp is one workload operation.
type wlOp struct {
	del bool
	key string
	val []byte
}

// crashOps derives a deterministic put/delete workload over a small key
// space (overwrites and deletes exercise slot recycling).
func crashOps(rng *rand.Rand, n, keys, maxVal int) []wlOp {
	ops := make([]wlOp, n)
	for i := range ops {
		k := fmt.Sprintf("key-%02d", rng.Intn(keys))
		if rng.Intn(5) == 0 {
			ops[i] = wlOp{del: true, key: k}
			continue
		}
		v := make([]byte, 1+rng.Intn(maxVal))
		rng.Read(v)
		ops[i] = wlOp{key: k, val: v}
	}
	return ops
}

// inflightOp describes one operation that was indeterminate when power
// died: a staged-but-uncommitted (or mid-commit) put, or the delete in
// flight. val is the last value staged for the key in the cut batch —
// earlier stagings of the same key are superseded before their sequence
// is ever stamped, so only the last can surface.
type inflightOp struct {
	del bool
	val []byte
}

// replayBatched drives ops against st, grouping puts into batches of
// `batch` staged puts per Commit (batch<=1 is the per-op path). Deletes
// are immediate operations: any open batch is committed — and its puts
// acked — before the delete issues, so the in-flight set at a cut is
// always either one delete, one unbatched put, or the puts of a single
// group commit. Returns the acked reference model and, if power died,
// the in-flight set (nil means the replay completed).
func replayBatched(st storeAPI, r *pmem.Region, ops []wlOp, batch int) (model map[string][]byte, acked int, inflight map[string]inflightOp, err error) {
	model = make(map[string][]byte)
	var pending []wlOp

	pendingSet := func(extra ...wlOp) map[string]inflightOp {
		fl := make(map[string]inflightOp)
		for _, p := range append(pending, extra...) {
			fl[p.key] = inflightOp{del: p.del, val: p.val}
		}
		return fl
	}
	commit := func() bool {
		st.Commit()
		if r.PowerFailed() {
			return true
		}
		for _, p := range pending {
			model[p.key] = p.val
			acked++
		}
		pending = nil
		return false
	}

	for i, o := range ops {
		if o.del {
			if len(pending) > 0 && commit() {
				return model, acked, pendingSet(), nil
			}
			_, derr := st.Delete([]byte(o.key))
			if r.PowerFailed() {
				return model, acked, pendingSet(o), nil
			}
			if derr != nil {
				return model, acked, nil, fmt.Errorf("op %d failed before the cut: %w", i, derr)
			}
			delete(model, o.key)
			acked++
			continue
		}
		if batch <= 1 {
			perr := st.Put([]byte(o.key), o.val)
			if r.PowerFailed() {
				return model, acked, pendingSet(o), nil
			}
			if perr != nil {
				return model, acked, nil, fmt.Errorf("op %d failed before the cut: %w", i, perr)
			}
			model[o.key] = o.val
			acked++
			continue
		}
		perr := st.PutStaged([]byte(o.key), o.val)
		if r.PowerFailed() {
			return model, acked, pendingSet(o), nil
		}
		if perr != nil {
			return model, acked, nil, fmt.Errorf("op %d failed before the cut: %w", i, perr)
		}
		pending = append(pending, o)
		if len(pending) >= batch && commit() {
			return model, acked, pendingSet(), nil
		}
	}
	if len(pending) > 0 && commit() {
		return model, acked, pendingSet(), nil
	}
	return model, acked, nil, nil
}

// RunCrash executes one crash-consistency run: calibrate the workload's
// persist-operation count on a scratch store, pick a group-commit batch
// size, a cut point and (half the time) a torn write-back from the
// seed, replay with the plan armed, crash, recover, and compare against
// the reference model. With batch > 1 the cut can land mid-group, so
// every put of the cut batch is independently indeterminate — committed
// sequence numbers flush under one fence, and any per-line subset may
// survive the cut.
func RunCrash(seed int64, shards int) (RunStats, error) {
	if shards < 1 {
		shards = 1
	}
	rs := RunStats{Seed: seed, Shards: shards}
	cfg := tortureCfg()
	rng := rand.New(rand.NewSource(seed))
	ops := crashOps(rng, 40, 12, 360)
	rs.BatchSize = []int{1, 2, 4, 8}[rng.Intn(4)]

	size := cfg.RegionSize()
	if shards > 1 {
		size = core.ShardedRegionSize(cfg, shards)
	}

	// Calibration: identical geometry, workload and batching, counting
	// hook. The store's index heights come from a fixed-seed rng and
	// sharded commits walk shards in order, so the replay issues the
	// exact same persist sequence.
	calSt, err := openStore(pmem.New(size, calib.Off()), cfg, shards)
	if err != nil {
		return rs, fmt.Errorf("calibration open: %w", err)
	}
	var calErr error
	total := CountPersistOps(storeRegion(calSt), func() {
		_, _, _, calErr = replayBatched(calSt, storeRegion(calSt), ops, rs.BatchSize)
	})
	if calErr != nil {
		return rs, fmt.Errorf("calibration: %w", calErr)
	}
	if total == 0 {
		return rs, errors.New("calibration counted no persist operations")
	}
	rs.PersistOps = total
	rs.CutAt = 1 + rng.Int63n(total)
	if rng.Intn(2) == 1 {
		rs.TearBytes = 1 + rng.Intn(pmem.LineSize-1)
	}

	// Replay with the plan armed.
	r := pmem.New(size, calib.Off())
	st, err := openStore(r, cfg, shards)
	if err != nil {
		return rs, fmt.Errorf("replay open: %w", err)
	}
	plan := &Plan{Seed: seed, CutAt: rs.CutAt, TearBytes: rs.TearBytes}
	plan.Install(r)

	model, acked, inflight, err := replayBatched(st, r, ops, rs.BatchSize)
	if err != nil {
		return rs, err
	}
	rs.AckedOps = acked
	if inflight == nil {
		return rs, fmt.Errorf("cut at op %d/%d never fired", rs.CutAt, total)
	}

	r.Crash(seed)
	t0 := time.Now()
	st2, err := openStore(r, cfg, shards)
	rs.RecoveryNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return rs, fmt.Errorf("recovery failed: %w", err)
	}
	if ss, ok := st2.(*core.ShardedStore); ok && ss.DownShards() > 0 {
		return rs, fmt.Errorf("clean power cut quarantined %d shards", ss.DownShards())
	}

	// Compare the recovered store against the reference model. Keys in
	// the in-flight set are judged per-key: a group commit flushes all
	// its sequence stamps under one fence, so any per-line subset of the
	// cut batch may have committed — each key independently shows its
	// acked old value, the batch's (last) staged value, or nothing if it
	// had no acked version.
	recs, err := st2.Range(nil, nil, 0)
	if err != nil {
		return rs, fmt.Errorf("range after recovery: %w", err)
	}
	seen := make(map[string][]byte, len(recs))
	for _, rec := range recs {
		seen[string(rec.Key)] = rec.Value
	}
	for k, want := range model {
		if _, ok := inflight[k]; ok {
			continue // judged below under in-flight rules
		}
		got, ok := seen[k]
		if !ok {
			return rs, fmt.Errorf("acked key %q lost by recovery", k)
		}
		if !bytes.Equal(got, want) {
			return rs, fmt.Errorf("acked key %q recovered with wrong value", k)
		}
	}
	for k, fl := range inflight {
		oldVal, hadOld := model[k]
		if got, ok := seen[k]; ok {
			okOld := hadOld && bytes.Equal(got, oldVal)
			okNew := !fl.del && bytes.Equal(got, fl.val)
			if !okOld && !okNew {
				return rs, fmt.Errorf("in-flight key %q recovered with impossible value", k)
			}
		} else if hadOld && !fl.del && !bytes.Equal(oldVal, fl.val) {
			// An in-flight overwrite may surface old or new but must not
			// lose the acked old version entirely.
			return rs, fmt.Errorf("in-flight overwrite of %q lost the acked old value", k)
		}
	}
	for k := range seen {
		if _, inModel := model[k]; inModel {
			continue
		}
		if _, inFlight := inflight[k]; inFlight {
			continue
		}
		return rs, fmt.Errorf("phantom key %q after recovery", k)
	}
	if bad, err := st2.Verify(); err != nil || len(bad) > 0 {
		return rs, fmt.Errorf("verify after recovery: %d bad keys, err %v", len(bad), err)
	}
	rs.SlotsQuarantined = st2.Stats().SlotsQuarantined
	if rs.SlotsQuarantined != 0 {
		// A power cut is not media corruption: every committed slot was
		// fenced before its commit word was written, so nothing should
		// ever fail validation.
		return rs, fmt.Errorf("clean power cut quarantined %d slots", rs.SlotsQuarantined)
	}
	rs.Records = st2.Len()
	return rs, nil
}

// storeRegion recovers the region under a store opened by openStore.
func storeRegion(st storeAPI) *pmem.Region {
	switch s := st.(type) {
	case *core.Store:
		return s.Region()
	case *core.ShardedStore:
		return s.Region()
	}
	panic("fault: unknown store type")
}

// RunCorrupt executes one media-corruption run: fill a store with
// records, flip random bits across the metadata and data areas (the
// superblock is spared — shard loss is RunShard's subject), reboot,
// and require that no read ever returns wrong bytes.
func RunCorrupt(seed int64) (RunStats, error) {
	rs := RunStats{Seed: seed, Shards: 1}
	cfg := tortureCfg()
	rng := rand.New(rand.NewSource(seed))
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := core.Open(r, cfg)
	if err != nil {
		return rs, err
	}
	// Unique keys only: recycling is exercised by RunCrash; here every
	// record must be attributable to exactly one key so the damage
	// accounting below is exact.
	model := make(map[string][]byte)
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := make([]byte, 1+rng.Intn(360))
		rng.Read(v)
		if err := s.Put([]byte(k), v); err != nil {
			return rs, err
		}
		model[k] = v
	}

	sbSize := cfg.RegionSize() - cfg.MetaSlots*cfg.SlotSize - cfg.DataSlots*cfg.DataBufSize
	const flips = 6
	for i := 0; i < flips; i++ {
		off := sbSize + rng.Intn(cfg.RegionSize()-sbSize)
		r.CorruptByte(off, 1<<uint(rng.Intn(8)))
	}

	r.Crash(seed)
	t0 := time.Now()
	s2, err := core.Open(r, cfg)
	rs.RecoveryNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return rs, fmt.Errorf("store must survive slot corruption, open failed: %w", err)
	}
	rs.SlotsQuarantined = s2.Quarantined()

	for k, want := range model {
		got, ok, err := s2.Get([]byte(k))
		switch {
		case err != nil:
			rs.Detected++ // value checksum caught it on read
		case !ok:
			rs.Detected++ // slot checksum caught it at recovery
		case !bytes.Equal(got, want):
			return rs, fmt.Errorf("key %q served wrong bytes after corruption", k)
		}
	}
	if rs.Detected > flips {
		return rs, fmt.Errorf("%d keys affected by %d bit flips", rs.Detected, flips)
	}
	recs, err := s2.Range(nil, nil, 0)
	if err != nil {
		return rs, fmt.Errorf("range after corruption: %w", err)
	}
	for _, rec := range recs {
		if _, ok := model[string(rec.Key)]; !ok {
			return rs, fmt.Errorf("phantom key %q after corruption", rec.Key)
		}
	}
	rs.Records = s2.Len()
	return rs, nil
}

// RunShard executes one graceful-degradation run: destroy one shard's
// superblock, reboot, and require the store to reopen with exactly that
// shard quarantined — its keyspace answering ErrShardDown, every other
// key served exactly.
func RunShard(seed int64) (RunStats, error) {
	const shards = 4
	rs := RunStats{Seed: seed, Shards: shards}
	cfg := tortureCfg()
	rng := rand.New(rand.NewSource(seed))
	size := core.ShardedRegionSize(cfg, shards)
	stride := size / shards
	r := pmem.New(size, calib.Off())
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		return rs, err
	}
	model := make(map[string][]byte)
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := make([]byte, 1+rng.Intn(360))
		rng.Read(v)
		if err := ss.Put([]byte(k), v); err != nil {
			return rs, err
		}
		model[k] = v
	}

	victim := rng.Intn(shards)
	// Trash the victim's superblock magic: unrecognizable metadata that
	// recovery must refuse to reformat over.
	r.CorruptByte(victim*stride, 0xff)
	r.Crash(seed)

	t0 := time.Now()
	ss2, err := core.OpenSharded(r, cfg, shards)
	rs.RecoveryNs = time.Since(t0).Nanoseconds()
	if err != nil {
		return rs, fmt.Errorf("multi-shard open must degrade, not fail: %w", err)
	}
	rs.ShardsDown = ss2.DownShards()
	if rs.ShardsDown != 1 {
		return rs, fmt.Errorf("want 1 shard down, got %d", rs.ShardsDown)
	}
	if ss2.Health()[victim] == nil {
		return rs, fmt.Errorf("shard %d should be the quarantined one", victim)
	}
	for k, want := range model {
		got, ok, err := ss2.Get([]byte(k))
		if core.ShardOf([]byte(k), shards) == victim {
			if !errors.Is(err, core.ErrShardDown) {
				return rs, fmt.Errorf("key %q on downed shard: want ErrShardDown, got %v", k, err)
			}
			if err := ss2.Put([]byte(k), []byte("x")); !errors.Is(err, core.ErrShardDown) {
				return rs, fmt.Errorf("put on downed shard: want ErrShardDown, got %v", err)
			}
			continue
		}
		if err != nil || !ok || !bytes.Equal(got, want) {
			return rs, fmt.Errorf("healthy shard stopped serving %q: ok=%v err=%v", k, ok, err)
		}
	}
	// A hash-partitioned range cannot silently skip a shard.
	if _, err := ss2.Range(nil, nil, 0); !errors.Is(err, core.ErrShardDown) {
		return rs, fmt.Errorf("range with a shard down: want ErrShardDown, got %v", err)
	}
	rs.Records = ss2.Len()
	return rs, nil
}

// RunNet executes one network-fault run: a client drives the server
// through a wire that drops, duplicates, reorders and bit-flips frames.
// TCP retransmission plus the checksum path must make every
// acknowledged put exactly durable; unacknowledged puts may be absent
// or exact, never mangled.
func RunNet(seed int64) (RunStats, error) {
	rs := RunStats{Seed: seed, Shards: 1}
	cfg := core.Config{
		MetaSlots: 512, SlotSize: 128,
		DataSlots: 1024, DataBufSize: 2048,
		ChecksumReuse: true, VerifyOnGet: true,
	}
	rng := rand.New(rand.NewSource(seed))
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := core.Open(r, cfg)
	if err != nil {
		return rs, err
	}
	tb := host.NewTestbed(host.Options{
		ServerRxPool: s.Pool(),
		Loss:         0.03,
		Reorder:      0.05,
		Duplicate:    0.03,
		Corrupt:      0.03,
		Seed:         seed,
		StackConfig:  tcp.Config{MinRTO: 2 * time.Millisecond},
	})
	defer tb.Close()
	srv, err := kvserver.New(tb.Server.Stack, 80, kvserver.PktStore{S: s})
	if err != nil {
		return rs, err
	}
	go srv.Run()
	defer srv.Close()

	dial := func() *kvclient.Client {
		for attempt := 0; attempt < 10; attempt++ {
			if c, err := tb.Dial(80); err == nil {
				return kvclient.New(c)
			}
		}
		return nil
	}
	cl := dial()
	if cl == nil {
		return rs, errors.New("could not establish a connection through the impaired wire")
	}

	acked := make(map[string][]byte)
	maybe := make(map[string][]byte)
	for i := 0; i < 30; i++ {
		k := fmt.Sprintf("net-%03d", i)
		v := make([]byte, 1+rng.Intn(300))
		rng.Read(v)
		if cl == nil {
			cl = dial()
		}
		if cl == nil {
			maybe[k] = v // never sent: must simply be absent, which maybe allows
			continue
		}
		if err := cl.Put([]byte(k), v); err != nil {
			maybe[k] = v // no ack: the server may or may not have committed it
			cl.Close()
			cl = nil
			continue
		}
		acked[k] = v
	}
	// Read acked keys back through the impaired wire: a successful GET
	// must return the exact bytes.
	for k, want := range acked {
		if cl == nil {
			cl = dial()
		}
		if cl == nil {
			break
		}
		got, ok, err := cl.Get([]byte(k))
		if err != nil {
			cl.Close()
			cl = nil
			continue // transport gave up; the store check below still runs
		}
		if !ok {
			return rs, fmt.Errorf("acked key %q missing over the network", k)
		}
		if !bytes.Equal(got, want) {
			return rs, fmt.Errorf("key %q read back wrong bytes over the network", k)
		}
	}
	if cl != nil {
		cl.Close()
	}

	// Ground truth: committed state must exactly equal acked state plus
	// any prefix of the unacknowledged ops.
	for k, want := range acked {
		got, ok, err := s.Get([]byte(k))
		if err != nil || !ok || !bytes.Equal(got, want) {
			return rs, fmt.Errorf("acked key %q not committed exactly: ok=%v err=%v", k, ok, err)
		}
	}
	recs, err := s.Range(nil, nil, 0)
	if err != nil {
		return rs, err
	}
	for _, rec := range recs {
		k := string(rec.Key)
		if want, ok := acked[k]; ok {
			if !bytes.Equal(rec.Value, want) {
				return rs, fmt.Errorf("acked key %q stored with wrong bytes", k)
			}
			continue
		}
		if want, ok := maybe[k]; ok {
			if !bytes.Equal(rec.Value, want) {
				return rs, fmt.Errorf("unacked key %q stored with wrong bytes", k)
			}
			continue
		}
		return rs, fmt.Errorf("phantom key %q on the server", k)
	}
	rs.AckedOps = len(acked)
	rs.Records = s.Len()
	return rs, nil
}
