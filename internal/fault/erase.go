package fault

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
)

// RunErase executes one data-area-loss run — the erase torture mode.
// The store runs with cross-shard parity groups; a victim shard's
// entire data area is destroyed at media level (both images zeroed)
// while traffic keeps flowing and a Healer supervises. The seed picks
// the flavor:
//
//   - seed%4 == 0 (operator path): the loss is known — the victim is
//     erased and explicitly quarantined. The healer's rebuild must
//     re-materialise every record from parity and the surviving group
//     members and re-admit the shard with zero acked-write loss.
//   - other even seeds (detection path): the victim is erased and
//     nothing is told. The background scrubber must discover the
//     damage itself and repair it — in place, or by quarantining the
//     shard into the rebuild path — until every victim key serves
//     exact bytes again.
//   - odd seeds (beyond redundancy): TWO members of one parity group
//     are erased. Rebuilds must fail with the typed ErrUnrecoverable —
//     the shards stay down, their keyspace answers ErrShardDown, and
//     the surviving shards keep serving exact bytes. Silent loss or
//     wrong bytes fail the run.
func RunErase(seed int64) (RunStats, error) {
	const shards = 4
	rs := RunStats{Seed: seed, Shards: shards}
	cfg := tortureCfg()
	cfg.ParityGroup = shards // one group: any single member is recoverable
	rng := rand.New(rand.NewSource(seed))
	r := pmem.New(core.ShardedRegionSize(cfg, shards), calib.Off())
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		return rs, err
	}

	model := make(map[string][]byte)
	var keys []string
	perShard := make([][]string, shards)
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := make([]byte, 1+rng.Intn(360))
		rng.Read(v)
		if err := ss.Put([]byte(k), v); err != nil {
			return rs, err
		}
		model[k] = v
		keys = append(keys, k)
		sh := core.ShardOf([]byte(k), shards)
		perShard[sh] = append(perShard[sh], k)
	}

	// Victims must actually hold records, or the flavor degenerates (an
	// empty member's data area carries no information to lose).
	victim := rng.Intn(shards)
	for len(perShard[victim]) == 0 {
		victim = (victim + 1) % shards
	}
	twoLoss := seed%2 == 1
	victim2 := -1
	if twoLoss {
		victim2 = (victim + 1 + rng.Intn(shards-1)) % shards
		for victim2 == victim || len(perShard[victim2]) == 0 {
			victim2 = (victim2 + 1) % shards
		}
	}
	lost := func(sh int) bool { return sh == victim || sh == victim2 }

	h := kvserver.NewHealer(ss, kvserver.HealConfig{
		ScrubInterval:  500 * time.Microsecond,
		ScrubSlots:     64,
		RebuildBackoff: time.Millisecond,
	})
	go h.Run()
	defer h.Close()

	// Concurrent traffic over keys on undamaged shards: those must serve
	// exact bytes through the entire heal, no exceptions.
	var safe []string
	for _, k := range keys {
		if !lost(core.ShardOf([]byte(k), shards)) {
			safe = append(safe, k)
		}
	}
	type trafficReport struct {
		ops, errs int64
		err       error
	}
	stop := make(chan struct{})
	trafficDone := make(chan trafficReport, 1)
	go func() {
		rng2 := rand.New(rand.NewSource(seed ^ 0x51ab))
		var ops int64
		for {
			select {
			case <-stop:
				trafficDone <- trafficReport{ops: ops}
				return
			default:
			}
			k := safe[rng2.Intn(len(safe))]
			v, ok, err := ss.Get([]byte(k))
			ops++
			if err != nil {
				trafficDone <- trafficReport{ops: ops,
					err: fmt.Errorf("traffic Get(%q) during erase heal: %v", k, err)}
				return
			}
			if !ok || !bytes.Equal(v, model[k]) {
				trafficDone <- trafficReport{ops: ops,
					err: fmt.Errorf("traffic Get(%q) served wrong bytes during erase heal", k)}
				return
			}
		}
	}()
	finishTraffic := func() error {
		close(stop)
		rep := <-trafficDone
		rs.TrafficOps, rs.TrafficErrs = rep.ops, rep.errs
		return rep.err
	}

	const healDeadline = 15 * time.Second
	waitHeal := func(what string, cond func() bool) error {
		deadline := time.Now().Add(healDeadline)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("erase heal timed out waiting for %s", what)
	}

	switch {
	case twoLoss:
		ss.EraseDataArea(victim)
		ss.EraseDataArea(victim2)
		ss.Quarantine(victim, fmt.Errorf("fault: data area lost"))
		ss.Quarantine(victim2, fmt.Errorf("fault: data area lost"))
		// The healer keeps attempting rebuilds; each must fail typed — two
		// members of one group lost the same stripes.
		if err := waitHeal("typed unrecoverable verdict", func() bool {
			health := ss.Health()
			return errors.Is(health[victim], core.ErrUnrecoverable) &&
				errors.Is(health[victim2], core.ErrUnrecoverable)
		}); err != nil {
			finishTraffic()
			return rs, err
		}
		if err := finishTraffic(); err != nil {
			return rs, err
		}
		for _, k := range keys {
			v, ok, gerr := ss.Get([]byte(k))
			if lost(core.ShardOf([]byte(k), shards)) {
				if !errors.Is(gerr, core.ErrShardDown) {
					return rs, fmt.Errorf("key %q beyond redundancy: want ErrShardDown, got ok=%v err=%v", k, ok, gerr)
				}
				continue
			}
			if gerr != nil || !ok || !bytes.Equal(v, model[k]) {
				return rs, fmt.Errorf("surviving key %q: ok=%v err=%v", k, ok, gerr)
			}
		}
		rs.ShardsDown = ss.DownShards()
		if rs.ShardsDown != 2 {
			return rs, fmt.Errorf("want exactly the 2 lost shards down, got %d", rs.ShardsDown)
		}

	case seed%4 == 0:
		// Operator path: the loss is reported; rebuild reconstructs.
		ss.EraseDataArea(victim)
		ss.Quarantine(victim, fmt.Errorf("fault: data area lost"))
		if err := waitHeal("reconstruction rejoin", func() bool {
			return h.Stats().Rebuilds > 0 && ss.ShardErr(victim) == nil
		}); err != nil {
			finishTraffic()
			return rs, err
		}
		if err := finishTraffic(); err != nil {
			return rs, err
		}
		st := h.Stats()
		if len(st.Rejoins) == 0 {
			return rs, errors.New("healer recorded no time-to-rejoin sample")
		}
		rs.RejoinNs = st.Rejoins[0].Nanoseconds()
		rs.RecoveryNs = rs.RejoinNs

	default:
		// Detection path: nothing is told; the scrubber must find and
		// repair the loss (in place or via quarantine + rebuild).
		ss.EraseDataArea(victim)
		if err := waitHeal("scrub-driven repair", func() bool {
			if ss.ShardErr(victim) != nil {
				return false // quarantined: the rebuild path is still working
			}
			for _, k := range perShard[victim] {
				v, ok, gerr := ss.Get([]byte(k))
				if gerr != nil || !ok || !bytes.Equal(v, model[k]) {
					return false
				}
			}
			return true
		}); err != nil {
			finishTraffic()
			return rs, err
		}
		if err := finishTraffic(); err != nil {
			return rs, err
		}
	}

	if !twoLoss {
		// Zero acked-write loss, victim included, and an intact group.
		for _, k := range keys {
			v, ok, gerr := ss.Get([]byte(k))
			if gerr != nil || !ok || !bytes.Equal(v, model[k]) {
				return rs, fmt.Errorf("acked key %q lost across erase heal: ok=%v err=%v", k, ok, gerr)
			}
		}
		rs.Reconstructions = ss.Stats().Reconstructions
		if rs.Reconstructions == 0 {
			return rs, errors.New("erase healed without a single parity reconstruction")
		}
		if err := ss.VerifyParity(); err != nil {
			return rs, fmt.Errorf("parity group inconsistent after heal: %v", err)
		}
		rs.ShardsDown = ss.DownShards()
		if rs.ShardsDown != 0 {
			return rs, fmt.Errorf("%d shards still down after erase heal", rs.ShardsDown)
		}
	}
	rs.Records = ss.Len()
	return rs, nil
}
