package fault

import (
	"testing"
)

// tortureBase keeps CI runs on a fixed, known-good seed range; the
// pktbench experiment can sweep arbitrary ranges.
const tortureBase = int64(1000)

// seeds returns the per-mode run count: a fixed subset in -short mode
// (CI), the full sweep otherwise.
func seeds(t *testing.T, short, full int) int {
	t.Helper()
	if testing.Short() {
		return short
	}
	return full
}

// TestTortureCrash is the headline crash-consistency sweep: 200+ seeds
// in full mode, alternating single-shard and sharded stores, each run
// cutting power at a seed-chosen persist operation (half with a torn
// cache line) and model-checking recovery.
func TestTortureCrash(t *testing.T) {
	n := seeds(t, 24, 208)
	for i := 0; i < n; i++ {
		shards := 1
		if i%2 == 1 {
			shards = 4
		}
		rs, err := RunCrash(tortureBase+int64(i), shards)
		if err != nil {
			t.Fatalf("seed %d (shards %d, cut %d/%d tear %d): %v",
				rs.Seed, shards, rs.CutAt, rs.PersistOps, rs.TearBytes, err)
		}
	}
}

// TestTortureCorrupt flips random media bits and requires detection:
// reads return correct bytes, a miss, or an error — never wrong data.
func TestTortureCorrupt(t *testing.T) {
	n := seeds(t, 8, 64)
	for i := 0; i < n; i++ {
		rs, err := RunCorrupt(tortureBase + int64(i))
		if err != nil {
			t.Fatalf("seed %d (quarantined %d, detected %d): %v",
				rs.Seed, rs.SlotsQuarantined, rs.Detected, err)
		}
	}
}

// TestTortureShard destroys one shard's metadata and requires graceful
// degradation: that shard quarantined, every other key still served.
func TestTortureShard(t *testing.T) {
	n := seeds(t, 4, 32)
	for i := 0; i < n; i++ {
		rs, err := RunShard(tortureBase + int64(i))
		if err != nil {
			t.Fatalf("seed %d: %v", rs.Seed, err)
		}
	}
}

// TestTortureNet drives the store through a lossy, reordering,
// duplicating, bit-flipping wire: acked puts must be exactly durable.
func TestTortureNet(t *testing.T) {
	n := seeds(t, 2, 8)
	for i := 0; i < n; i++ {
		rs, err := RunNet(tortureBase + int64(i))
		if err != nil {
			t.Fatalf("seed %d (acked %d): %v", rs.Seed, rs.AckedOps, err)
		}
	}
}

// TestTortureErase destroys whole data areas under cross-shard parity:
// single-member loss must heal with zero acked-write loss and an intact
// parity group (operator-reported on seed%4==0, scrub-discovered on
// other even seeds); two-member loss (odd seeds) must surface as typed
// ErrUnrecoverable — never silent misses or wrong bytes.
func TestTortureErase(t *testing.T) {
	n := seeds(t, 6, 208)
	for i := 0; i < n; i++ {
		rs, err := RunErase(tortureBase + int64(i))
		if err != nil {
			t.Fatalf("seed %d (reconstructed %d, rejoin %dns, traffic %d): %v",
				rs.Seed, rs.Reconstructions, rs.RejoinNs, rs.TrafficOps, err)
		}
	}
}

// TestTortureHeal injects shard loss (even seeds) and latent bit flips
// (odd seeds) into a live store under traffic: the healer must rebuild
// and rejoin every quarantined shard with the acked prefix intact, and
// the scrubber must find every injected flip.
func TestTortureHeal(t *testing.T) {
	n := seeds(t, 6, 32)
	for i := 0; i < n; i++ {
		rs, err := RunHeal(tortureBase + int64(i))
		if err != nil {
			t.Fatalf("seed %d (detected %d, rejoin %dns, traffic %d/%d): %v",
				rs.Seed, rs.Detected, rs.RejoinNs, rs.TrafficErrs, rs.TrafficOps, err)
		}
	}
}
