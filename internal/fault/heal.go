package fault

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
)

// RunHeal executes one self-healing run — the heal torture mode. Damage
// is injected into a LIVE sharded store while traffic keeps flowing and
// a Healer supervises; unlike the other modes there is no reboot. The
// seed picks the flavor:
//
//   - even seeds (shard loss): the victim shard's superblock is trashed
//     under load. The scrubber's superblock probe must quarantine it,
//     the rebuild must repair the superblock from configuration and
//     re-admit the shard, and afterwards every acked key — victim shard
//     included — must serve exact bytes. Time-to-rejoin is recorded.
//   - odd seeds (bit flips): random committed records take a media bit
//     flip in a CRC-covered slot field, a key byte, or a value byte.
//     The background scrubber must find every flip and excise or
//     quarantine the damaged records in place; undamaged keys must
//     serve exact bytes throughout and a damaged key must never serve
//     wrong bytes.
//
// Traffic against undamaged keys runs concurrently for the whole heal
// and is the availability-during-heal measurement: reads must return
// exact bytes or — on the victim shard during the outage window —
// ErrShardDown, nothing else.
func RunHeal(seed int64) (RunStats, error) {
	const shards = 4
	rs := RunStats{Seed: seed, Shards: shards}
	cfg := tortureCfg()
	rng := rand.New(rand.NewSource(seed))
	size := core.ShardedRegionSize(cfg, shards)
	r := pmem.New(size, calib.Off())
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		return rs, err
	}

	model := make(map[string][]byte)
	var keys []string
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("key-%03d", i)
		v := make([]byte, 1+rng.Intn(360))
		rng.Read(v)
		if err := ss.Put([]byte(k), v); err != nil {
			return rs, err
		}
		model[k] = v
		keys = append(keys, k)
	}

	flavorFlips := seed%2 == 1
	victim := rng.Intn(shards)
	const flips = 3
	var flipKeys []string
	if flavorFlips {
		perm := rng.Perm(len(keys))
		for _, i := range perm[:flips] {
			flipKeys = append(flipKeys, keys[i])
		}
	}

	h := kvserver.NewHealer(ss, kvserver.HealConfig{
		ScrubInterval:  500 * time.Microsecond,
		ScrubSlots:     64,
		RebuildBackoff: time.Millisecond,
	})
	go h.Run()
	defer h.Close()

	// Concurrent traffic over keys the run does not damage. The victim
	// shard's keys may answer ErrShardDown during the outage window;
	// anything else non-exact fails the run.
	safe := keys
	if flavorFlips {
		safe = nil
		flip := make(map[string]bool, len(flipKeys))
		for _, k := range flipKeys {
			flip[k] = true
		}
		for _, k := range keys {
			if !flip[k] {
				safe = append(safe, k)
			}
		}
	}
	type trafficReport struct {
		ops, errs int64
		err       error
	}
	stop := make(chan struct{})
	trafficDone := make(chan trafficReport, 1)
	go func() {
		rng2 := rand.New(rand.NewSource(seed ^ 0x51ab))
		var ops, errs int64
		for {
			select {
			case <-stop:
				trafficDone <- trafficReport{ops: ops, errs: errs}
				return
			default:
			}
			k := safe[rng2.Intn(len(safe))]
			v, ok, err := ss.Get([]byte(k))
			ops++
			if err != nil {
				if errors.Is(err, core.ErrShardDown) && core.ShardOf([]byte(k), shards) == victim && !flavorFlips {
					errs++ // the outage window: expected unavailability
					continue
				}
				trafficDone <- trafficReport{ops: ops, errs: errs,
					err: fmt.Errorf("traffic Get(%q) during heal: %v", k, err)}
				return
			}
			if !ok || !bytes.Equal(v, model[k]) {
				trafficDone <- trafficReport{ops: ops, errs: errs,
					err: fmt.Errorf("traffic Get(%q) served wrong bytes during heal", k)}
				return
			}
		}
	}()
	finishTraffic := func() error {
		close(stop)
		rep := <-trafficDone
		rs.TrafficOps, rs.TrafficErrs = rep.ops, rep.errs
		return rep.err
	}

	const healDeadline = 15 * time.Second
	waitHeal := func(what string, cond func() bool) error {
		deadline := time.Now().Add(healDeadline)
		for time.Now().Before(deadline) {
			if cond() {
				return nil
			}
			time.Sleep(time.Millisecond)
		}
		return fmt.Errorf("heal timed out waiting for %s", what)
	}

	if flavorFlips {
		// Inject one media flip per chosen record, rotating through the
		// three byte classes the scrubber must cover.
		targets := []core.FlipTarget{core.FlipSlotField, core.FlipKeyByte, core.FlipValueByte}
		for i, k := range flipKeys {
			st := ss.Shard(core.ShardOf([]byte(k), shards))
			mask := byte(1 << uint(rng.Intn(8)))
			if off := st.CorruptRecord([]byte(k), targets[i%len(targets)], rng.Intn(1<<16), mask); off < 0 {
				if err := finishTraffic(); err != nil {
					return rs, err
				}
				return rs, fmt.Errorf("CorruptRecord(%q) found no slot", k)
			}
		}
		if err := waitHeal("bit-flip detection", func() bool {
			return h.Stats().ScrubErrorsFound >= flips
		}); err != nil {
			finishTraffic()
			return rs, err
		}
		rs.Detected = flips
		if err := finishTraffic(); err != nil {
			return rs, err
		}
		// Damaged keys: excised or erroring, never wrong bytes. (Safe to
		// read now — detection already excised them.)
		for _, k := range flipKeys {
			v, ok, err := ss.Get([]byte(k))
			if err == nil && ok {
				if bytes.Equal(v, model[k]) {
					return rs, fmt.Errorf("flipped key %q still serving original bytes after detection", k)
				}
				return rs, fmt.Errorf("flipped key %q served wrong bytes", k)
			}
		}
		for _, k := range safe {
			v, ok, err := ss.Get([]byte(k))
			if err != nil || !ok || !bytes.Equal(v, model[k]) {
				return rs, fmt.Errorf("undamaged key %q lost by scrub repair: ok=%v err=%v", k, ok, err)
			}
		}
		rs.SlotsQuarantined = ss.Stats().SlotsQuarantined
	} else {
		// Shard loss under load: trash the victim's superblock magic and
		// let the supervisor notice, quarantine, rebuild and re-admit.
		ss.SmashSuperblock(victim)
		if err := waitHeal("shard rejoin", func() bool {
			st := h.Stats()
			return st.Rebuilds > 0 && ss.ShardErr(victim) == nil
		}); err != nil {
			finishTraffic()
			return rs, err
		}
		if err := finishTraffic(); err != nil {
			return rs, err
		}
		st := h.Stats()
		if len(st.Rejoins) == 0 {
			return rs, errors.New("healer recorded no time-to-rejoin sample")
		}
		rs.RejoinNs = st.Rejoins[0].Nanoseconds()
		rs.RecoveryNs = rs.RejoinNs
		if ss.DownShards() != 0 {
			return rs, fmt.Errorf("%d shards still down after heal", ss.DownShards())
		}
		// Zero acked-write loss: every key, victim shard included.
		for _, k := range keys {
			v, ok, err := ss.Get([]byte(k))
			if err != nil || !ok || !bytes.Equal(v, model[k]) {
				return rs, fmt.Errorf("acked key %q lost across rejoin: ok=%v err=%v", k, ok, err)
			}
		}
	}
	rs.ShardsDown = ss.DownShards()
	rs.Records = ss.Len()
	return rs, nil
}
