package fault

import (
	"fmt"
	"os"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/pmem"
)

func TestMain(m *testing.M) {
	// Hundreds of torture runs each log their injected crash; keep the
	// test output readable. Failures carry the seed in their message.
	pmem.SetCrashLogger(func(int64) {})
	code := m.Run()
	pmem.SetCrashLogger(nil)
	os.Exit(code)
}

// TestCountPersistOps checks calibration: the count is nonzero for real
// work and exactly reproducible across identical runs.
func TestCountPersistOps(t *testing.T) {
	cfg := tortureCfg()
	run := func() int64 {
		r := pmem.New(cfg.RegionSize(), calib.Off())
		s, err := core.Open(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return CountPersistOps(r, func() {
			for i := 0; i < 10; i++ {
				if err := s.Put([]byte(fmt.Sprintf("k%d", i)), []byte("value")); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
	a, b := run(), run()
	if a == 0 {
		t.Fatal("ten puts issued zero persist operations")
	}
	if a != b {
		t.Fatalf("persist count not deterministic: %d vs %d", a, b)
	}
}

// TestPlanCutsAtExactOp checks that the plan fires at precisely the
// chosen ordinal and that every later persist operation is dead.
func TestPlanCutsAtExactOp(t *testing.T) {
	r := pmem.New(4096, calib.Off())
	p := &Plan{Seed: 1, CutAt: 3}
	p.Install(r)
	for i := 0; i < 2; i++ {
		r.WriteUint64(0, uint64(i))
		r.Persist(0, 8) // Flush+Fence: two ops per loop
	}
	if !r.PowerFailed() {
		t.Fatal("power should have failed at op 3 (second loop's flush)")
	}
	if got := p.Ops(); got < 3 {
		t.Fatalf("plan observed %d ops, want >= 3", got)
	}
	// Post-cut writes must not become durable.
	r.WriteUint64(8, 0xdead)
	r.Persist(8, 8)
	r.Crash(1)
	if got := r.ReadUint64(8); got == 0xdead {
		t.Fatal("write after the power cut survived the crash")
	}
}

// TestPlanTearPersistsPrefix checks the torn write-back: a cut flush
// with TearBytes persists exactly that prefix of the first dirty line.
func TestPlanTearPersistsPrefix(t *testing.T) {
	r := pmem.New(4096, calib.Off())
	line := make([]byte, pmem.LineSize)
	for i := range line {
		line[i] = 0xAB
	}
	r.Write(0, line)
	p := &Plan{Seed: 2, CutAt: 1, TearBytes: 10}
	p.Install(r)
	r.Flush(0, pmem.LineSize)
	r.Fence()
	r.Crash(2)
	got := r.Slice(0, pmem.LineSize)
	for i := 0; i < 10; i++ {
		if got[i] != 0xAB {
			t.Fatalf("torn byte %d not persisted", i)
		}
	}
	for i := 10; i < pmem.LineSize; i++ {
		if got[i] != 0 {
			t.Fatalf("byte %d beyond the tear persisted", i)
		}
	}
}

// TestCrashSurvivalDeterministic checks that the same seed resolves the
// flushed-unfenced window identically across devices.
func TestCrashSurvivalDeterministic(t *testing.T) {
	image := func(seed int64) []byte {
		r := pmem.New(4096, calib.Off())
		for l := 0; l < 16; l++ {
			b := make([]byte, pmem.LineSize)
			for i := range b {
				b[i] = byte(l + 1)
			}
			r.Write(l*pmem.LineSize, b)
		}
		r.Flush(0, 16*pmem.LineSize) // dirty -> pending
		// No fence: every line sits in the 50/50 window.
		r.Crash(seed)
		return append([]byte(nil), r.Slice(0, 16*pmem.LineSize)...)
	}
	a, b := image(42), image(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("crash survival diverged at byte %d for the same seed", i)
		}
	}
}
