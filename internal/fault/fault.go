// Package fault is the deterministic fault-injection layer: seeded,
// reproducible schedules of power cuts (with torn cache-line
// write-backs), media bit flips, shard loss and network impairment,
// threaded through the pmem device model, the store and the simulated
// wire. Every run is identified by a single int64 seed — the same seed
// replays the same workload, the same crash point and the same post-cut
// line survival, so any torture failure is a one-line reproduction.
package fault

import (
	"sync/atomic"

	"packetstore/internal/pmem"
)

// Plan is one deterministic fault schedule: cut the power at the
// CutAt-th persist operation (every Flush and Fence counts, in issue
// order), optionally tearing the first dirty cache line of that flush.
// A Plan with CutAt=0 never cuts — installed on a calibration run it
// just counts persist operations, which bounds the crash-point space
// for a replay over the same workload.
type Plan struct {
	// Seed identifies the run; pass it to Region.Crash so the post-cut
	// line survival is reproducible too.
	Seed int64
	// CutAt is the 1-based persist-operation ordinal at which power
	// dies. 0 never cuts.
	CutAt int64
	// TearBytes, when the cut lands on a Flush, persists only this
	// prefix of the first dirty cache line — the torn write-back real PM
	// exposes when power dies mid-line. 0 cuts cleanly.
	TearBytes int

	ops atomic.Int64
}

// Hook returns the pmem.PersistHook implementing the plan. The hook
// only counts and compares — it is safe under the region lock.
func (p *Plan) Hook() pmem.PersistHook {
	return func(op pmem.PersistOp) pmem.PersistDecision {
		n := p.ops.Add(1)
		if p.CutAt > 0 && n == p.CutAt {
			return pmem.PersistDecision{Cut: true, TearBytes: p.TearBytes}
		}
		return pmem.PersistDecision{}
	}
}

// Install arms the plan on r. Region.Crash disarms it.
func (p *Plan) Install(r *pmem.Region) { r.SetPersistHook(p.Hook()) }

// Ops reports how many persist operations the plan has observed.
func (p *Plan) Ops() int64 { return p.ops.Load() }

// CountPersistOps runs fn with a counting, never-cutting plan installed
// on r and returns how many persist operations it issued — the
// calibration pass of a crash-point replay. The hook is removed before
// returning.
func CountPersistOps(r *pmem.Region, fn func()) int64 {
	p := &Plan{}
	p.Install(r)
	fn()
	r.SetPersistHook(nil)
	return p.Ops()
}
