package kvserver

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/host"
	"packetstore/internal/kvclient"
	"packetstore/internal/nic"
	"packetstore/internal/pmem"
)

// dialQueue dials until the client's ephemeral port RSS-hashes to the
// wanted server queue, closing mismatches — the test's handle on
// connection-placement skew.
func dialQueue(tb *host.Testbed, want, queues int) (*kvclient.Client, error) {
	var lastErr error
	for i := 0; i < 2048; i++ {
		c, err := tb.Dial(80)
		if err != nil {
			// The hot loop also drains accepts; under a redial storm its
			// backlog can overflow and reset the handshake. Transient —
			// back off and retry.
			lastErr = err
			time.Sleep(200 * time.Microsecond)
			continue
		}
		ip, port := c.LocalAddr()
		if nic.RSSQueue(ip, tb.Server.IP, port, 80, queues) == want {
			cl := kvclient.New(c)
			cl.SetTimeout(2 * time.Second)
			return cl, nil
		}
		c.Close()
	}
	return nil, fmt.Errorf("no connection landed on queue %d (last dial error: %v)", want, lastErr)
}

// hotKeys builds n keys for one worker that all hash to shard 0, so the
// whole keyspace lands on one shard/queue — the adversarial skew for the
// steal scheduler.
func hotKeys(worker, n, shards int) [][]byte {
	var out [][]byte
	for i := 0; len(out) < n; i++ {
		k := []byte(fmt.Sprintf("steal-%d-%03d", worker, i))
		if core.ShardOf(k, shards) == 0 {
			out = append(out, k)
		}
	}
	return out
}

// stealWorker drives one hot connection with a seeded Zipf key pick and
// tracks, per key, the set of states the store may legitimately hold:
// an acked PUT collapses the set to the new value; an errored PUT (503,
// reset, timeout) leaves both old and new permissible — the retryable-
// indeterminate window of the acked-prefix contract.
type stealWorker struct {
	id    int
	keys  [][]byte
	cands map[string][][]byte // key -> permissible values; nil entry = absent
}

func (w *stealWorker) run(t *testing.T, tb *host.Testbed, queues int, stop <-chan struct{}, wg *sync.WaitGroup) {
	defer wg.Done()
	rng := rand.New(rand.NewSource(int64(0xbeef + w.id)))
	zipf := rand.NewZipf(rng, 1.3, 1, uint64(len(w.keys)-1))
	cl, err := dialQueue(tb, 0, queues)
	if err != nil {
		t.Error(err)
		return
	}
	defer func() {
		if cl != nil {
			cl.Close()
		}
	}()
	redial := func() bool {
		cl.Close()
		cl, err = dialQueue(tb, 0, queues)
		if err != nil {
			t.Error(err)
			return false
		}
		return true
	}
	for i := 0; ; i++ {
		select {
		case <-stop:
			return
		default:
		}
		key := w.keys[zipf.Uint64()]
		ks := string(key)
		if rng.Intn(100) < 60 {
			v := []byte(fmt.Sprintf("w%d-i%d-%0*d", w.id, i, 1+rng.Intn(200), 0))
			if len(w.cands[ks]) == 0 {
				// Preserve the absent pre-state: if this first PUT is not
				// acked, a 404 stays legal.
				w.cands[ks] = [][]byte{nil}
			}
			w.cands[ks] = append(w.cands[ks], v)
			if err := cl.Put(key, v); err != nil {
				if !redial() {
					return
				}
				continue
			}
			// Acked: the write is durable and current, whatever loop
			// committed it.
			w.cands[ks] = [][]byte{v}
		} else {
			v, ok, err := cl.Get(key)
			if err != nil {
				if !redial() {
					return
				}
				continue
			}
			if !w.permitted(ks, v, ok) {
				t.Errorf("worker %d: GET %q = %q (ok=%v) not among permissible states", w.id, ks, v, ok)
				return
			}
		}
	}
}

// permitted reports whether an observed read matches some permissible
// state for the key.
func (w *stealWorker) permitted(key string, v []byte, ok bool) bool {
	cands := w.cands[key]
	if len(cands) == 0 {
		return !ok // never written: only absence is legal
	}
	for _, c := range cands {
		if c == nil {
			if !ok {
				return true
			}
			continue
		}
		if ok && bytes.Equal(c, v) {
			return true
		}
	}
	return false
}

// TestStealPropertySkewedWithRebuild is the scheduler's property test:
// every connection and every key lands on shard/queue 0 (maximal skew),
// stealing is on with an aggressive poll, and the hot shard is
// quarantined and rebuilt twice mid-run — exercising the steal path's
// interaction with the ownership token and the epoch ack gate. The
// store must end consistent with the per-key model (acked writes
// current, unacked writes old-or-new), and idle loops must actually
// have stolen cycles. Run under -race in CI.
func TestStealPropertySkewedWithRebuild(t *testing.T) {
	cfg := core.Config{
		MetaSlots: 512, SlotSize: 128, DataSlots: 512, DataBufSize: 2048,
		ChecksumReuse: true, VerifyOnGet: true,
	}
	const shards = 4
	r := pmem.New(core.ShardedRegionSize(cfg, shards), calib.Off())
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	tb := host.NewTestbed(host.Options{ServerRxPools: ss.Pools()})
	defer tb.Close()
	srv, err := NewWithConfig(tb.Server.Stack, 80, ShardedPktStore{S: ss}, Config{
		MaxBatch: 4,
		Steal:    StealConfig{Enabled: true, MinDepth: 1, Poll: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Close()

	nWorkers, nKeys := 10, 8
	minOps := uint64(600)
	if testing.Short() {
		nWorkers, minOps = 6, 200
	}
	workers := make([]*stealWorker, nWorkers)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := range workers {
		workers[i] = &stealWorker{id: i, keys: hotKeys(i, nKeys, shards), cands: make(map[string][][]byte)}
		wg.Add(1)
		go workers[i].run(t, tb, shards, stop, &wg)
	}

	steals := func() uint64 {
		var n uint64
		for _, ls := range srv.LoopStats() {
			n += ls.Steals
		}
		return n
	}
	waitFor(t, "warmup traffic", func() bool { return srv.Stats().Requests > minOps/2 })

	// Two mid-run rebuilds of the hot shard: each drops whatever was
	// staged-unacked and bumps the epoch under live stolen traffic.
	for round := 0; round < 2; round++ {
		ss.Quarantine(0, fmt.Errorf("injected round %d", round))
		time.Sleep(2 * time.Millisecond)
		if err := ss.Rebuild(0); err != nil {
			t.Fatal(err)
		}
		time.Sleep(2 * time.Millisecond)
	}

	waitFor(t, "post-rebuild traffic and steals", func() bool {
		return srv.Stats().Requests > minOps && steals() > 0
	})
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Ground truth: every key's stored state must be one the model
	// permits.
	for _, w := range workers {
		for _, key := range w.keys {
			v, ok, err := ss.Get(key)
			if err != nil {
				t.Fatalf("final GET %q: %v", key, err)
			}
			if !w.permitted(string(key), v, ok) {
				t.Errorf("worker %d: final state of %q = %q (ok=%v) not among permissible states", w.id, key, v, ok)
			}
		}
	}
	st := srv.Stats()
	if st.Steals == 0 {
		t.Fatal("no cycles stolen under maximal skew")
	}
	t.Logf("requests=%d steals=%d stolenOps=%d stealAborts=%d ackAborts=%d zcPuts=%d zcFallbacks=%d",
		st.Requests, st.Steals, st.StolenOps, st.StealAborts, st.AckAborts, st.ZeroCopyPuts, st.ZeroCopyFallbacks)
}
