package kvserver

import (
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/httpmsg"
	"packetstore/internal/kvproto"
)

// NetServer serves the KV protocol over operating-system TCP sockets —
// the deployment path for running the store on a real network (the
// simulated stack's zero-copy mechanisms do not apply; requests take the
// copy path). One goroutine per connection.
type NetServer struct {
	backend Backend
	lst     net.Listener
	cfg     Config
	mu      sync.Mutex
	conns   map[net.Conn]struct{}
	closed  bool
	health  func() HealthReport
	wg      sync.WaitGroup

	sheds      atomic.Uint64
	idleClosed atomic.Uint64
	expired    atomic.Uint64
}

// NewNetServer wraps an OS listener.
func NewNetServer(lst net.Listener, backend Backend) *NetServer {
	return NewNetServerWithConfig(lst, backend, Config{})
}

// NewNetServerWithConfig wraps an OS listener with overload tuning:
// Config.MaxConns sheds connections beyond the cap with a 503, and
// Config.IdleTimeout bounds every read so a stalled client cannot hold a
// serving goroutine forever.
func NewNetServerWithConfig(lst net.Listener, backend Backend, cfg Config) *NetServer {
	cfg.fill()
	return &NetServer{backend: backend, lst: lst, cfg: cfg, conns: make(map[net.Conn]struct{})}
}

// Sheds counts connections rejected at the MaxConns cap; IdleClosed
// counts connections closed by the read deadline; Expired counts
// requests dropped unexecuted because their client budget lapsed
// (Config.Overload.Enabled).
func (s *NetServer) Sheds() uint64      { return s.sheds.Load() }
func (s *NetServer) IdleClosed() uint64 { return s.idleClosed.Load() }
func (s *NetServer) Expired() uint64    { return s.expired.Load() }

// SetHealthSource installs the GET /healthz report producer — normally
// (*Healer).Health. Without one, /healthz reports ready unconditionally.
func (s *NetServer) SetHealthSource(fn func() HealthReport) {
	s.mu.Lock()
	s.health = fn
	s.mu.Unlock()
}

// Serve accepts and services connections until Close.
func (s *NetServer) Serve() error {
	for {
		c, err := s.lst.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				s.wg.Wait()
				return nil
			}
			return err
		}
		s.mu.Lock()
		full := s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns
		if !full {
			s.conns[c] = struct{}{}
		}
		s.mu.Unlock()
		if full {
			s.sheds.Add(1)
			c.Write(httpmsg.AppendResponseRetryAfter(nil, 503, 0, s.cfg.Overload.RetryAfter.Milliseconds()))
			c.Close()
			continue
		}
		s.wg.Add(1)
		go s.serveConn(c)
	}
}

// Close stops accepting and closes live connections.
func (s *NetServer) Close() {
	s.mu.Lock()
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.lst.Close()
	s.wg.Wait()
}

func (s *NetServer) serveConn(c net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		c.Close()
	}()

	parser := httpmsg.NewRequestParser(0)
	rbuf := make([]byte, 64<<10)
	var body, resp []byte
	var cur kvproto.Request
	var curErr error
	var curHealth bool
	var deadline time.Time

	for {
		if s.cfg.IdleTimeout > 0 {
			c.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		}
		n, err := c.Read(rbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				s.idleClosed.Add(1)
			}
			return
		}
		// Arrival stamp for the whole chunk: pipelined requests deeper in
		// the buffer age against it while earlier ones execute, so a
		// backlog on this connection shows up as lapsed budgets.
		chunkAt := time.Now()
		chunk := rbuf[:n]
		resp = resp[:0]
		for len(chunk) > 0 {
			res := parser.Feed(chunk)
			if res.Err != nil {
				resp = httpmsg.AppendResponse(resp, 400, 0)
				c.Write(resp)
				return
			}
			if res.HeaderDone {
				hreq := parser.Request()
				curHealth = hreq.Method == "GET" && hreq.Path == "/healthz"
				if !curHealth {
					cur, curErr = kvproto.Parse(hreq.Method, hreq.Path)
				}
				deadline = time.Time{}
				if s.cfg.Overload.Enabled && hreq.BudgetUs > 0 {
					deadline = chunkAt.Add(time.Duration(hreq.BudgetUs) * time.Microsecond)
				}
				body = body[:0]
			}
			body = append(body, chunk[res.Body.Off:res.Body.Off+res.Body.Len]...)
			chunk = chunk[res.Consumed:]
			if res.Done {
				switch {
				case curHealth:
					resp = s.appendHealth(resp)
				case !deadline.IsZero() && time.Now().After(deadline) && curErr == nil:
					// Doomed-work elimination: the client's budget lapsed
					// before execution; answer 503 instead of executing.
					s.expired.Add(1)
					resp = httpmsg.AppendResponseRetryAfter(resp, 503, 0, s.cfg.Overload.RetryAfter.Milliseconds())
				default:
					resp = s.respond(resp, cur, curErr, body)
				}
				parser.Reset()
			}
		}
		if len(resp) > 0 {
			if _, err := c.Write(resp); err != nil {
				return
			}
		}
	}
}

// appendHealth serves GET /healthz: the JSON HealthReport, 200 when
// every shard serves and 503 while any is down or rebuilding — the body
// is present either way so a poller can see per-shard progress. The
// accept layer's own overload counters (connections shed at the
// MaxConns cap, idle closes, expired-budget drops) are merged into the
// report's overload section, so they are visible to operators even
// without a healer wired.
func (s *NetServer) appendHealth(resp []byte) []byte {
	s.mu.Lock()
	fn := s.health
	s.mu.Unlock()
	rep := HealthReport{Ready: true}
	if fn != nil {
		rep = fn()
	}
	if rep.Overload == nil {
		rep.Overload = &OverloadHealth{}
	}
	rep.Overload.Sheds += s.sheds.Load()
	rep.Overload.IdleClosed += s.idleClosed.Load()
	rep.Overload.Expired += s.expired.Load()
	b, err := json.Marshal(rep)
	if err != nil {
		return httpmsg.AppendResponse(resp, 500, 0)
	}
	code := 200
	if !rep.Ready {
		code = 503
	}
	resp = httpmsg.AppendResponse(resp, code, len(b))
	return append(resp, b...)
}

func (s *NetServer) respond(resp []byte, req kvproto.Request, parseErr error, body []byte) []byte {
	if parseErr != nil {
		return httpmsg.AppendResponse(resp, 400, 0)
	}
	switch req.Op {
	case kvproto.OpPut:
		if err := s.backend.Put(req.Key, body); err != nil {
			return httpmsg.AppendResponse(resp, statusForErr(err), 0)
		}
		return httpmsg.AppendResponse(resp, 200, 0)
	case kvproto.OpGet:
		val, ok, err := s.backend.Get(req.Key)
		switch {
		case err != nil:
			return httpmsg.AppendResponse(resp, statusForErr(err), 0)
		case !ok:
			return httpmsg.AppendResponse(resp, 404, 0)
		}
		resp = httpmsg.AppendResponse(resp, 200, len(val))
		return append(resp, val...)
	case kvproto.OpDelete:
		found, err := s.backend.Delete(req.Key)
		switch {
		case err != nil:
			return httpmsg.AppendResponse(resp, statusForErr(err), 0)
		case !found:
			return httpmsg.AppendResponse(resp, 404, 0)
		}
		return httpmsg.AppendResponse(resp, 204, 0)
	case kvproto.OpRange:
		kvs, err := s.backend.Range(req.Start, req.End, req.Limit)
		if err != nil {
			return httpmsg.AppendResponse(resp, statusForErr(err), 0)
		}
		b := kvproto.AppendRangeBody(nil, kvs)
		resp = httpmsg.AppendResponse(resp, 200, len(b))
		return append(resp, b...)
	}
	return httpmsg.AppendResponse(resp, 400, 0)
}
