package kvserver

import (
	"fmt"
	"sync"
	"time"

	"packetstore/internal/core"
)

// Healer is the self-healing supervisor: a ticker goroutine that (1)
// drives the background PM scrubber — a low-priority walker re-validating
// slot CRCs and value checksums at a configurable slots-per-tick budget,
// repairing or quarantining damage in place — and (2) rebuilds
// quarantined shards online with capped exponential backoff between
// attempts, re-admitting them the moment recovery succeeds. The store
// keeps serving throughout: scrub steps bound their store-lock hold time
// by the budget, and each rebuild runs in its own goroutine outside the
// shard router's lock, so a slow rebuild stalls neither scrubbing nor
// other shards' rebuilds.
type Healer struct {
	ss  *core.ShardedStore
	cfg HealConfig

	mu      sync.Mutex
	cursors []int           // per shard: next scrub slot
	backoff []time.Duration // per shard: current rebuild retry delay
	nextTry []time.Time     // per shard: earliest next rebuild attempt
	downAt  []time.Time     // per shard: when the healer first saw it down
	busy    []bool          // per shard: a rebuild goroutine is in flight
	stats   HealStats
	rejoins []time.Duration
	loopSrc func() []Stats // optional: Server.LoopStats for healthz
	// pressureSrc is the server's overload signal (Server.Pressure,
	// 0..1): the scrubber sheds its own budget first when the serving
	// path is browned out — background PM reads are the most
	// discretionary work in the system.
	pressureSrc func() float64
	// breakerSrc optionally aggregates client-side circuit-breaker
	// opens (kvclient.RetryStats.BreakerOpens) for deployments that
	// co-locate the store's clients (benches, sidecar proxies), so
	// breaker transitions surface in /healthz next to the server-side
	// overload counters.
	breakerSrc func() uint64

	// rejoinC publishes each rejoin sample the moment a rebuild
	// re-admits its shard — the event-driven wait the heal benchmarks
	// block on instead of polling counters against a wall clock. Sends
	// never block (buffered; extra samples are dropped once full, and the
	// cumulative stats still hold every sample).
	rejoinC chan time.Duration

	// wake receives shard indices from the store's quarantine
	// notification, so the first rebuild attempt starts immediately
	// instead of waiting out the scrub cadence — time-to-rejoin is
	// rebuild-time-dominated, not probe-cadence-dominated.
	wake chan int

	done      chan struct{}
	ret       chan struct{}
	closeOnce sync.Once
	// wg tracks in-flight rebuild goroutines: rebuilds run off the scrub
	// ticker so a slow one never stalls scrubbing or other shards'
	// rebuild attempts, and Close waits for them.
	wg sync.WaitGroup
}

// HealConfig tunes the supervisor. The zero value scrubs 64 slots per
// shard every 5ms and retries failed rebuilds from 10ms up to 1s.
type HealConfig struct {
	// ScrubInterval is the tick between scrub steps. Together with
	// ScrubSlots it sets the scrub bandwidth budget:
	// shards * ScrubSlots * SlotSize / ScrubInterval bytes/sec of PM
	// read traffic, and ScrubSlots bounds the store-lock hold per step.
	ScrubInterval time.Duration
	// ScrubSlots is the number of slots re-validated per shard per tick.
	ScrubSlots int
	// RebuildBackoff is the delay before retrying a failed rebuild;
	// it doubles per consecutive failure up to RebuildBackoffMax.
	RebuildBackoff    time.Duration
	RebuildBackoffMax time.Duration
}

func (c *HealConfig) fill() {
	if c.ScrubInterval <= 0 {
		c.ScrubInterval = 5 * time.Millisecond
	}
	if c.ScrubSlots <= 0 {
		c.ScrubSlots = 64
	}
	if c.RebuildBackoff <= 0 {
		c.RebuildBackoff = 10 * time.Millisecond
	}
	if c.RebuildBackoffMax <= 0 {
		c.RebuildBackoffMax = time.Second
	}
}

// HealStats counts the supervisor's work.
type HealStats struct {
	// ScrubPasses counts completed full sweeps of one shard's slot array.
	ScrubPasses uint64
	// ScrubErrorsFound counts damage discovered: bad slots (CRC, structure
	// or value checksum), index damage found by the audit, and superblock
	// failures.
	ScrubErrorsFound uint64
	// ScrubRepaired counts in-place repairs: records excised by the scrub
	// rebuild and index rebuilds triggered by the audit.
	ScrubRepaired uint64
	// Rebuilds counts shards rebuilt and re-admitted online;
	// RebuildFailures counts attempts that left the shard down.
	Rebuilds        uint64
	RebuildFailures uint64
	// Reconstructions counts records the scrubber repaired in place from
	// parity; UnrecoverableSlots counts scrub repair attempts that found
	// loss beyond the group's redundancy (rebuild-path reconstructions
	// are visible in the store's own counters).
	Reconstructions    uint64
	UnrecoverableSlots uint64
	// ScrubThrottled counts scrub steps that ran with a reduced (or
	// zero) slot budget because the serving path was under overload
	// pressure (see Healer.SetPressureSource).
	ScrubThrottled uint64
	// ShardsDown / ShardsRebuilding are gauges sampled at Stats time.
	ShardsDown       int
	ShardsRebuilding int
	// Rejoins holds each heal's time from quarantine observation to
	// re-admission — the time-to-rejoin distribution.
	Rejoins []time.Duration
}

// NewHealer creates a supervisor over ss. Call Run (usually in its own
// goroutine) to start it and Close to stop it.
func NewHealer(ss *core.ShardedStore, cfg HealConfig) *Healer {
	cfg.fill()
	n := ss.Shards()
	h := &Healer{
		ss: ss, cfg: cfg,
		cursors: make([]int, n),
		backoff: make([]time.Duration, n),
		nextTry: make([]time.Time, n),
		downAt:  make([]time.Time, n),
		busy:    make([]bool, n),
		wake:    make(chan int, n),
		rejoinC: make(chan time.Duration, 4*n),
		done:    make(chan struct{}),
		ret:     make(chan struct{}),
	}
	// Push, don't poll: a quarantine rings the heal loop the moment it
	// happens. The send never blocks — with the buffer full a tick is
	// already overdue and will sweep every down shard anyway.
	ss.OnQuarantine(func(shard int, _ error) {
		select {
		case h.wake <- shard:
		default:
		}
	})
	return h
}

// RejoinC returns the channel on which the supervisor publishes each
// heal's time-to-rejoin as the shard is re-admitted. Receivers get an
// event-driven signal that a rebuild completed — no counter polling, no
// wall-clock window.
func (h *Healer) RejoinC() <-chan time.Duration { return h.rejoinC }

// SetLoopSource wires the server's per-loop stats into the healthz
// report, making queue depths and steal activity observable in
// production. fn is typically Server.LoopStats.
func (h *Healer) SetLoopSource(fn func() []Stats) {
	h.mu.Lock()
	h.loopSrc = fn
	h.mu.Unlock()
}

// SetPressureSource wires the server's overload signal (typically
// Server.Pressure) into the supervisor: while loops are browned out the
// scrub budget shrinks proportionally — at full pressure scrub steps
// skip entirely — so background PM scans stop competing with the
// serving path exactly when it is saturated.
func (h *Healer) SetPressureSource(fn func() float64) {
	h.mu.Lock()
	h.pressureSrc = fn
	h.mu.Unlock()
}

// SetBreakerSource wires an aggregate of client-side circuit-breaker
// opens into the healthz report's overload section, for deployments
// that co-locate the store's own clients.
func (h *Healer) SetBreakerSource(fn func() uint64) {
	h.mu.Lock()
	h.breakerSrc = fn
	h.mu.Unlock()
}

// Run drives the heal loop until Close.
func (h *Healer) Run() {
	defer close(h.ret)
	t := time.NewTicker(h.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-h.done:
			return
		case i := <-h.wake:
			// Quarantine notification: start the rebuild now instead of
			// on the next tick (the guard re-checks — the shard may have
			// been rebuilt by a racing attempt already).
			if h.ss.ShardErr(i) != nil {
				h.tryRebuild(i, time.Now())
			}
		case now := <-t.C:
			h.tick(now)
		}
	}
}

// Close stops the supervisor and waits for the loop and any in-flight
// rebuild to exit. Safe for concurrent and repeated callers.
func (h *Healer) Close() {
	h.closeOnce.Do(func() { close(h.done) })
	<-h.ret
	h.wg.Wait()
}

// tick is one supervisor cycle: attempt due rebuilds, then spend the
// scrub budget on every serving shard.
func (h *Healer) tick(now time.Time) {
	for i := 0; i < h.ss.Shards(); i++ {
		if h.ss.ShardErr(i) != nil {
			h.tryRebuild(i, now)
			continue
		}
		h.mu.Lock()
		h.downAt[i], h.backoff[i], h.nextTry[i] = time.Time{}, 0, time.Time{}
		h.mu.Unlock()
		h.scrubStep(i)
	}
}

// tryRebuild attempts to rebuild down shard i, honoring the capped
// exponential backoff between failed attempts. The rebuild itself runs
// in its own goroutine (at most one per shard): a slow rebuild must not
// stall scrubbing or the rebuild attempts of other down shards for the
// rest of the tick.
func (h *Healer) tryRebuild(i int, now time.Time) {
	h.mu.Lock()
	if h.downAt[i].IsZero() {
		h.downAt[i] = now
	}
	if h.busy[i] || now.Before(h.nextTry[i]) {
		h.mu.Unlock()
		return
	}
	h.busy[i] = true
	downAt := h.downAt[i]
	h.mu.Unlock()

	h.wg.Add(1)
	go func() {
		defer h.wg.Done()
		err := h.ss.Rebuild(i)
		// One clock reading feeds both the rejoin sample and the backoff
		// bookkeeping, so the two never disagree about when the attempt
		// ended.
		end := time.Now()

		h.mu.Lock()
		defer h.mu.Unlock()
		h.busy[i] = false
		if err != nil {
			h.stats.RebuildFailures++
			if h.backoff[i] <= 0 {
				h.backoff[i] = h.cfg.RebuildBackoff
			} else if h.backoff[i] < h.cfg.RebuildBackoffMax {
				h.backoff[i] *= 2
				if h.backoff[i] > h.cfg.RebuildBackoffMax {
					h.backoff[i] = h.cfg.RebuildBackoffMax
				}
			}
			h.nextTry[i] = end.Add(h.backoff[i])
			return
		}
		h.stats.Rebuilds++
		h.rejoins = append(h.rejoins, end.Sub(downAt))
		h.downAt[i], h.backoff[i], h.nextTry[i] = time.Time{}, 0, time.Time{}
		select {
		case h.rejoinC <- end.Sub(downAt):
		default:
		}
	}()
}

// scrubStep spends one tick's budget on serving shard i: a superblock
// probe at the start of each pass, a budgeted slot walk, and an index
// audit when the pass wraps.
func (h *Healer) scrubStep(i int) {
	st := h.ss.Shard(i)
	if st == nil {
		return // quarantined between the health check and here
	}
	h.mu.Lock()
	cursor := h.cursors[i]
	pressure := h.pressureSrc
	h.mu.Unlock()
	// Overload brownout throttles the scrub budget first: background
	// CRC walks are pure discretionary PM traffic, so they yield their
	// share of the media and the store locks to the serving path.
	budget := h.cfg.ScrubSlots
	if pressure != nil {
		if p := pressure(); p > 0 {
			budget = int(float64(h.cfg.ScrubSlots) * (1 - p))
			h.mu.Lock()
			h.stats.ScrubThrottled++
			h.mu.Unlock()
			if budget <= 0 {
				return
			}
		}
	}
	if cursor == 0 {
		if err := st.CheckSuperblock(); err != nil {
			h.ss.Quarantine(i, err)
			h.mu.Lock()
			h.stats.ScrubErrorsFound++
			h.mu.Unlock()
			return
		}
	}
	res := st.ScrubSlots(cursor, budget)
	h.mu.Lock()
	h.cursors[i] = res.Next
	h.stats.ScrubErrorsFound += uint64(res.Bad)
	h.stats.ScrubRepaired += uint64(res.Excised)
	h.stats.Reconstructions += uint64(res.Reconstructed)
	h.stats.UnrecoverableSlots += uint64(res.Unrecoverable)
	h.mu.Unlock()
	// Damage an in-place repair could not clear takes the shard through
	// the rebuild path: quarantine with a typed reason. Unrecoverable
	// loss MUST surface typed rather than as silent misses for the
	// damaged keys, and deferred/metadata damage is exactly what a group
	// rebuild (which owns the whole parity group) exists to repair.
	switch {
	case res.Unrecoverable > 0:
		h.ss.Quarantine(i, fmt.Errorf("%w: %d records beyond parity redundancy", core.ErrUnrecoverable, res.Unrecoverable))
		return
	case res.NeedsRebuild > 0:
		h.ss.Quarantine(i, fmt.Errorf("%w: %d damaged records need a group rebuild", core.ErrCorrupt, res.NeedsRebuild))
		return
	}
	if res.Next == 0 {
		rebuilt, excised, err := st.AuditIndex()
		if err != nil {
			// Index damage with parity attached: the in-place rescan would
			// excise instead of reconstruct, so route through Rebuild.
			h.ss.Quarantine(i, err)
			h.mu.Lock()
			h.stats.ScrubErrorsFound++
			h.stats.ScrubPasses++
			h.mu.Unlock()
			return
		}
		h.mu.Lock()
		if rebuilt {
			h.stats.ScrubErrorsFound++
			h.stats.ScrubRepaired += uint64(1 + excised)
		}
		h.stats.ScrubPasses++
		h.mu.Unlock()
	}
}

// Stats snapshots the supervisor's counters plus the store's current
// down/rebuilding gauges.
func (h *Healer) Stats() HealStats {
	h.mu.Lock()
	out := h.stats
	out.Rejoins = append([]time.Duration(nil), h.rejoins...)
	h.mu.Unlock()
	for _, st := range h.ss.States() {
		switch st.State {
		case "down":
			out.ShardsDown++
		case "rebuilding":
			out.ShardsRebuilding++
		}
	}
	return out
}

// Health builds the healthz report: per-shard serving state, scrubber
// and rebuild progress, and — when a loop source is wired — each event
// loop's queue depth and steal activity.
func (h *Healer) Health() HealthReport {
	st := h.Stats()
	rep := healthFromStates(h.ss.States(), &st)
	if ss := h.ss.Stats(); ss.Gets != 0 || ss.FastGets != 0 || ss.FastGetFallbacks != 0 {
		rep.Reads = &ReadPathHealth{
			Gets:             ss.Gets,
			Hits:             ss.Hits,
			FastGets:         ss.FastGets,
			FastGetRetries:   ss.FastGetRetries,
			FastGetFallbacks: ss.FastGetFallbacks,
		}
	}
	h.mu.Lock()
	src := h.loopSrc
	brkSrc := h.breakerSrc
	h.mu.Unlock()
	var crossSteals uint64
	if src != nil {
		var ov OverloadHealth
		for q, ls := range src() {
			rep.Loops = append(rep.Loops, LoopHealth{
				Queue:       q,
				QueueDepth:  ls.QueueDepth,
				Node:        ls.Node,
				Requests:    ls.Requests,
				Steals:      ls.Steals,
				StolenOps:   ls.StolenOps,
				StealAborts: ls.StealAborts,
				CrossSteals: ls.CrossSteals,
				Brownout:    ls.BrownoutLoops > 0,
				Expired:     ls.Expired,
				CoDelSheds:  ls.CoDelSheds,
			})
			crossSteals += ls.CrossSteals
			ov.Sheds += ls.Sheds
			ov.IdleClosed += ls.IdleClosed
			ov.Expired += ls.Expired
			ov.CoDelSheds += ls.CoDelSheds
			ov.Brownouts += ls.Brownouts
			ov.BrownoutLoops += ls.BrownoutLoops
			ov.QueueDelayMs += float64(ls.QueueDelay) / float64(time.Millisecond)
		}
		rep.Overload = &ov
	}
	if brkSrc != nil {
		if rep.Overload == nil {
			rep.Overload = &OverloadHealth{}
		}
		rep.Overload.BreakerOpens = brkSrc()
	}
	if nodes := h.ss.NUMANodes(); nodes > 1 {
		rs := h.ss.Region().Stats()
		nh := &NUMAHealth{
			Nodes:         nodes,
			LocalLines:    rs.LocalLines,
			RemoteLines:   rs.RemoteLines,
			RemoteExtraMs: float64(rs.RemoteExtra) / float64(time.Millisecond),
			CrossSteals:   crossSteals,
		}
		if total := nh.LocalLines + nh.RemoteLines; total > 0 {
			nh.RemoteShare = float64(nh.RemoteLines) / float64(total)
		}
		rep.NUMA = nh
	}
	return rep
}

// ShardHealth is one shard's state in the healthz report.
type ShardHealth struct {
	Shard  int    `json:"shard"`
	State  string `json:"state"` // serving | rebuilding | down
	Reason string `json:"reason,omitempty"`
}

// ScrubHealth is the scrubber/rebuild progress section of the report.
type ScrubHealth struct {
	Passes          uint64 `json:"passes"`
	ErrorsFound     uint64 `json:"errors_found"`
	Repaired        uint64 `json:"repaired"`
	Rebuilds        uint64 `json:"rebuilds"`
	RebuildFailures uint64 `json:"rebuild_failures"`
	Reconstructions uint64 `json:"reconstructions"`
	Unrecoverable   uint64 `json:"unrecoverable_slots"`
	Throttled       uint64 `json:"throttled,omitempty"`
}

// LoopHealth is one event loop's scheduler view in the healthz report:
// its live backlog (the steal path's victim-selection metric) and its
// steal activity, so workload skew is observable in production, not just
// in pktbench.
type LoopHealth struct {
	Queue       int    `json:"queue"`
	QueueDepth  int    `json:"queue_depth"`
	Node        int    `json:"node"`
	Requests    uint64 `json:"requests"`
	Steals      uint64 `json:"steals"`
	StolenOps   uint64 `json:"stolen_ops"`
	StealAborts uint64 `json:"steal_aborts"`
	CrossSteals uint64 `json:"cross_steals,omitempty"`
	// Overload view: whether the loop's CoDel controller is currently
	// shedding (brownout), and its doomed-work/shed counters.
	Brownout   bool   `json:"brownout,omitempty"`
	Expired    uint64 `json:"expired,omitempty"`
	CoDelSheds uint64 `json:"codel_sheds,omitempty"`
}

// OverloadHealth is the overload-control section of the healthz report:
// the accept-layer and queue-controller shed counters that were
// previously invisible to operators, aggregated across loops, plus the
// optional client-side breaker aggregate (SetBreakerSource).
type OverloadHealth struct {
	Sheds         uint64  `json:"sheds"`
	IdleClosed    uint64  `json:"idle_closed"`
	Expired       uint64  `json:"expired"`
	CoDelSheds    uint64  `json:"codel_sheds"`
	Brownouts     uint64  `json:"brownouts"`
	BrownoutLoops int     `json:"brownout_loops"`
	QueueDelayMs  float64 `json:"queue_delay_ms"`
	BreakerOpens  uint64  `json:"breaker_opens,omitempty"`
}

// ReadPathHealth is the lock-free read path's section of the healthz
// report: how many GETs the seqlock fast path served without the shard
// mutex versus how many conceded to the locked slow path. A fallback
// ratio near 1 under a read-heavy workload means something is
// continuously holding mutation brackets (scrub pressure, heavy write
// churn) and the E14 speedup is not being realised.
type ReadPathHealth struct {
	Gets             uint64 `json:"gets"`
	Hits             uint64 `json:"hits"`
	FastGets         uint64 `json:"fast_gets"`
	FastGetRetries   uint64 `json:"fast_get_retries"`
	FastGetFallbacks uint64 `json:"fast_get_fallbacks"`
}

// NUMAHealth is the placement section of the healthz report, present
// only when a multi-node placement is installed: the region's node-
// attributed line counters (remote share ~0 means the placement is
// aligned), the total modeled cross-socket surcharge, and how many
// stolen cycles crossed sockets for the balance they bought.
type NUMAHealth struct {
	Nodes         int     `json:"nodes"`
	LocalLines    uint64  `json:"local_lines"`
	RemoteLines   uint64  `json:"remote_lines"`
	RemoteShare   float64 `json:"remote_share"`
	RemoteExtraMs float64 `json:"remote_extra_ms"`
	CrossSteals   uint64  `json:"cross_steals"`
}

// HealthReport is the GET /healthz body. Ready is true only when every
// shard serves — the poll-for-readiness signal the heal experiment (and
// an operator's load balancer) watches.
type HealthReport struct {
	Ready    bool            `json:"ready"`
	Shards   []ShardHealth   `json:"shards"`
	Scrub    ScrubHealth     `json:"scrub"`
	Loops    []LoopHealth    `json:"loops,omitempty"`
	Reads    *ReadPathHealth `json:"reads,omitempty"`
	Overload *OverloadHealth `json:"overload,omitempty"`
	NUMA     *NUMAHealth     `json:"numa,omitempty"`
}

func healthFromStates(states []core.ShardStatus, st *HealStats) HealthReport {
	rep := HealthReport{Ready: true}
	for i, s := range states {
		rep.Shards = append(rep.Shards, ShardHealth{Shard: i, State: s.State, Reason: s.Reason})
		if s.State != "serving" {
			rep.Ready = false
		}
	}
	if st != nil {
		rep.Scrub = ScrubHealth{
			Passes:          st.ScrubPasses,
			ErrorsFound:     st.ScrubErrorsFound,
			Repaired:        st.ScrubRepaired,
			Rebuilds:        st.Rebuilds,
			RebuildFailures: st.RebuildFailures,
			Reconstructions: st.Reconstructions,
			Unrecoverable:   st.UnrecoverableSlots,
			Throttled:       st.ScrubThrottled,
		}
	}
	return rep
}
