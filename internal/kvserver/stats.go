package kvserver

import (
	"sync/atomic"
	"time"
)

// Stats counts server activity.
type Stats struct {
	Requests, Puts, Gets, Deletes, Ranges uint64
	Errors                                uint64
	BytesIn, BytesOut                     uint64
	ZeroCopyPuts                          uint64
	ZeroCopyGets                          uint64
	DerivedSums                           uint64 // body checksums harvested from the NIC
	SoftwareSums                          uint64 // body checksums computed in software
	// Sheds counts connections rejected with 503 at the per-loop
	// MaxConns cap; IdleClosed counts connections reaped by the idle
	// sweep (Config.IdleTimeout).
	Sheds      uint64
	IdleClosed uint64
	// Overload-control counters (Config.Overload). Expired counts
	// requests dropped unexecuted because their client budget
	// (X-Budget-Us) lapsed before dispatch — doomed work eliminated.
	// CoDelSheds counts run-queue shed decisions by the sojourn-time
	// controller (each 503s one queued connection's pending requests).
	// Brownouts counts entries into brownout (controller dropping
	// state); BrownoutLoops is a gauge — loops currently browned out.
	// QueueDelay accumulates run-queue sojourn over every claimed
	// connection (the raw signal the controller integrates).
	Expired       uint64
	CoDelSheds    uint64
	Brownouts     uint64
	BrownoutLoops int
	QueueDelay    time.Duration
	// GroupCommits counts group-commit cycles that batched more than one
	// connection; GroupedConns counts the connections they covered, so
	// GroupedConns/GroupCommits is the achieved burst size.
	GroupCommits uint64
	GroupedConns uint64
	// AckAborts counts connections failed because an online shard rebuild
	// dropped staged puts after their acks were buffered: the responses
	// are discarded and the connection reset so no acked write is ever
	// lost (clients classify the reset as transient and retry).
	AckAborts uint64
	// Steals counts stolen service cycles this loop ran against another
	// loop's queue; StolenOps counts the requests those cycles handled;
	// StealAborts counts steal rounds that picked a deep victim but found
	// no claimable connection — the backlog was contended away by the
	// home loop (or another thief) before this one could claim it.
	// CrossSteals is the subset of Steals whose victim lived on another
	// NUMA node — cycles that paid the remote PM rate per line for the
	// balance they bought (always 0 when placement is single-node).
	Steals      uint64
	StolenOps   uint64
	StealAborts uint64
	CrossSteals uint64
	// Node is a gauge: the NUMA node this loop declared (per-loop
	// snapshots only; aggregation leaves it 0).
	Node int
	// ZeroCopyFallbacks counts PUT payloads that arrived in a packet
	// buffer outside the serving shard's PM partition — the executing
	// loop's rx pool was not the shard's pool — and fell back to the
	// copy path.
	ZeroCopyFallbacks uint64
	// QueueDepth is a gauge sampled at snapshot time: undrained stack
	// ready events + NIC ring occupancy + queued run-queue connections
	// for this loop — the victim-selection metric of the steal path.
	QueueDepth int
	// ShardsDown is a gauge: store shards currently quarantined (served
	// keyspace answers 503).
	ShardsDown int
	// Redundancy counters sampled from the store at snapshot time:
	// parity lines written on the commit path, records re-materialised
	// from parity, repair attempts that exceeded the group's redundancy,
	// and data slots currently fenced for media damage.
	ParityWrites       uint64
	Reconstructions    uint64
	UnrecoverableSlots uint64
	SlotsHeld          int
	// Read-path counters sampled from the store at snapshot time:
	// lock-free GETs served without the shard mutex, optimistic attempts
	// discarded by a mid-read mutation, and reads that conceded to the
	// locked slow path (see core's fallback taxonomy).
	FastGets         uint64
	FastGetRetries   uint64
	FastGetFallbacks uint64
	ParseTime        time.Duration
	// BusyTime is the time this loop (core) spent servicing requests —
	// the serving critical path, including emulated PM stalls. Per-loop
	// snapshots (Server.LoopStats) expose how evenly sharding splits it.
	BusyTime time.Duration
}

// merge accumulates o into s (per-shard snapshot aggregation).
func (s *Stats) merge(o Stats) {
	s.Requests += o.Requests
	s.Puts += o.Puts
	s.Gets += o.Gets
	s.Deletes += o.Deletes
	s.Ranges += o.Ranges
	s.Errors += o.Errors
	s.BytesIn += o.BytesIn
	s.BytesOut += o.BytesOut
	s.ZeroCopyPuts += o.ZeroCopyPuts
	s.ZeroCopyGets += o.ZeroCopyGets
	s.DerivedSums += o.DerivedSums
	s.SoftwareSums += o.SoftwareSums
	s.Sheds += o.Sheds
	s.IdleClosed += o.IdleClosed
	s.Expired += o.Expired
	s.CoDelSheds += o.CoDelSheds
	s.Brownouts += o.Brownouts
	s.BrownoutLoops += o.BrownoutLoops
	s.QueueDelay += o.QueueDelay
	s.GroupCommits += o.GroupCommits
	s.GroupedConns += o.GroupedConns
	s.AckAborts += o.AckAborts
	s.Steals += o.Steals
	s.StolenOps += o.StolenOps
	s.StealAborts += o.StealAborts
	s.CrossSteals += o.CrossSteals
	s.ZeroCopyFallbacks += o.ZeroCopyFallbacks
	s.QueueDepth += o.QueueDepth
	s.ShardsDown += o.ShardsDown
	s.ParityWrites += o.ParityWrites
	s.Reconstructions += o.Reconstructions
	s.UnrecoverableSlots += o.UnrecoverableSlots
	s.SlotsHeld += o.SlotsHeld
	s.FastGets += o.FastGets
	s.FastGetRetries += o.FastGetRetries
	s.FastGetFallbacks += o.FastGetFallbacks
	s.ParseTime += o.ParseTime
	s.BusyTime += o.BusyTime
}

// statsCounters is the atomic mirror of Stats: one instance per server
// loop, so counting never contends across shards and aggregation is a
// loop over Snapshot calls.
type statsCounters struct {
	requests, puts, gets, deletes, ranges atomic.Uint64
	errors                                atomic.Uint64
	bytesIn, bytesOut                     atomic.Uint64
	zcPuts, zcGets                        atomic.Uint64
	derivedSums, softwareSums             atomic.Uint64
	sheds, idleClosed                     atomic.Uint64
	expired, codelSheds, brownouts        atomic.Uint64
	queueDelayNanos                       atomic.Int64
	groupCommits, groupedConns            atomic.Uint64
	ackAborts                             atomic.Uint64
	steals, stolenOps, stealAborts        atomic.Uint64
	crossSteals                           atomic.Uint64
	zcFallbacks                           atomic.Uint64
	parseNanos                            atomic.Int64
	busyNanos                             atomic.Int64
}

// Snapshot reads the counters into a Stats value.
func (c *statsCounters) Snapshot() Stats {
	return Stats{
		Requests: c.requests.Load(), Puts: c.puts.Load(), Gets: c.gets.Load(),
		Deletes: c.deletes.Load(), Ranges: c.ranges.Load(),
		Errors: c.errors.Load(), BytesIn: c.bytesIn.Load(), BytesOut: c.bytesOut.Load(),
		ZeroCopyPuts: c.zcPuts.Load(), ZeroCopyGets: c.zcGets.Load(),
		DerivedSums: c.derivedSums.Load(), SoftwareSums: c.softwareSums.Load(),
		Sheds: c.sheds.Load(), IdleClosed: c.idleClosed.Load(),
		Expired: c.expired.Load(), CoDelSheds: c.codelSheds.Load(),
		Brownouts:    c.brownouts.Load(),
		QueueDelay:   time.Duration(c.queueDelayNanos.Load()),
		GroupCommits: c.groupCommits.Load(), GroupedConns: c.groupedConns.Load(),
		AckAborts: c.ackAborts.Load(),
		Steals:    c.steals.Load(), StolenOps: c.stolenOps.Load(),
		StealAborts:       c.stealAborts.Load(),
		CrossSteals:       c.crossSteals.Load(),
		ZeroCopyFallbacks: c.zcFallbacks.Load(),
		ParseTime:         time.Duration(c.parseNanos.Load()),
		BusyTime:          time.Duration(c.busyNanos.Load()),
	}
}
