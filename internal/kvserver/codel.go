package kvserver

import (
	"math"
	"time"
)

// OverloadConfig tunes deadline-aware admission and the CoDel queue
// controller (Config.Overload). Zero value: disabled — the server keeps
// the original binary MaxConns shed and executes every parsed request.
type OverloadConfig struct {
	// Enabled turns on both doomed-work elimination (requests whose
	// X-Budget-Us budget lapsed before execution are answered 503
	// instead of executed) and the CoDel run-queue controller below.
	Enabled bool
	// Target is the acceptable run-queue sojourn time: as long as the
	// queue drains within Target there is no standing backlog and
	// nothing is shed. Default 2ms.
	Target time.Duration
	// Interval is the controller's observation window: sojourn must
	// stay above Target for a full Interval before shedding starts, so
	// bursts shorter than an RTT-scale window pass untouched. Default
	// 50ms.
	Interval time.Duration
	// RetryAfter is the backoff hint (Retry-After-Ms) attached to
	// overload 503s — accept-cap sheds, CoDel sheds, and expired-budget
	// drops. Default 25ms.
	RetryAfter time.Duration
	// BrownoutBatch is the group-commit burst cap while the loop is in
	// brownout (CoDel actively shedding): PUT bursts are forced into
	// larger groups exactly when fence amortization buys the most.
	// Default 4×MaxBatch, floor 16.
	BrownoutBatch int
}

func (c *OverloadConfig) fill(maxBatch int) {
	if c.Target <= 0 {
		c.Target = 2 * time.Millisecond
	}
	if c.Interval <= 0 {
		c.Interval = 50 * time.Millisecond
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 25 * time.Millisecond
	}
	if c.BrownoutBatch <= 0 {
		c.BrownoutBatch = 4 * maxBatch
		if c.BrownoutBatch < 16 {
			c.BrownoutBatch = 16
		}
	}
}

// codel implements the controlled-delay (CoDel) law over run-queue
// sojourn times. The controller watches the *minimum* sojourn seen per
// interval: a standing queue shows up as min-sojourn > target for a
// whole interval (a transient burst does not — its tail drains and the
// minimum dips), at which point the controller enters the dropping
// state and sheds at an increasing rate (interval/√count spacing) until
// the minimum falls back under target. State is guarded by the owning
// sched's mutex: observations come from popBatch, which stealers call
// from other goroutines.
type codel struct {
	target, interval time.Duration

	// firstAbove, when non-zero, is the deadline by which sojourn must
	// dip below target to prove the backlog was a burst; set the first
	// time sojourn exceeds target.
	firstAbove time.Time
	// dropping is the shedding state — also the loop's brownout signal.
	dropping bool
	// dropNext paces sheds while dropping; count is the consecutive
	// drop counter that tightens the pace (interval/√count).
	dropNext time.Time
	count    int
}

// observe feeds one dequeue's sojourn time into the control law and
// reports whether the caller should shed one queued item now. now is
// passed in so the law is testable with a synthetic clock.
func (cd *codel) observe(sojourn time.Duration, now time.Time) bool {
	if sojourn < cd.target {
		// The minimum dipped below target: whatever backlog existed has
		// drained. Leave dropping but keep count — a quick relapse
		// resumes near the old drop rate instead of re-proving overload
		// from scratch (the CoDel restart heuristic in resume below).
		cd.firstAbove = time.Time{}
		cd.dropping = false
		return false
	}
	if cd.firstAbove.IsZero() {
		cd.firstAbove = now.Add(cd.interval)
		return false
	}
	if !cd.dropping {
		if now.Before(cd.firstAbove) {
			return false
		}
		// Sojourn stayed above target a full interval: standing queue.
		if cd.count > 2 && !cd.dropNext.IsZero() && now.Sub(cd.dropNext) < 8*cd.interval {
			cd.count -= 2 // recent relapse: resume near the old rate
		} else {
			cd.count = 1
		}
		cd.dropping = true
		cd.dropNext = now
	}
	if now.Before(cd.dropNext) {
		return false
	}
	cd.count++
	cd.dropNext = now.Add(time.Duration(float64(cd.interval) / math.Sqrt(float64(cd.count))))
	return true
}
