package kvserver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/host"
	"packetstore/internal/pmem"
)

// TestPickVictimDistanceAware pins the steal policy's two-pass scan
// against fabricated backlogs: same-node victims win even when a
// cross-node loop is deeper, cross-node is a fallback only, quarantined
// loops are never victims, and nothing below MinDepth is stolen from.
func TestPickVictimDistanceAware(t *testing.T) {
	mk := func(node, shard int) *loop { return &loop{node: node, shard: shard} }
	thief := mk(0, 0)
	sameShallow := mk(0, 1)
	sameDeep := mk(0, 2)
	crossDeep := mk(1, 3)
	quarantined := mk(0, -1)
	loops := []*loop{thief, sameShallow, sameDeep, crossDeep, quarantined}
	depths := map[*loop]int{}
	depth := func(lp *loop) int { return depths[lp] }

	// Same-node backlog beats a deeper cross-node one.
	depths[sameShallow], depths[sameDeep], depths[crossDeep], depths[quarantined] = 0, 5, 50, 99
	if got := pickVictim(thief, loops, 4, depth); got != sameDeep {
		t.Errorf("deep cross-node victim chosen over same-node backlog: got %p", got)
	}
	// The deepest same-node victim wins within the node.
	depths[sameShallow] = 7
	if got := pickVictim(thief, loops, 4, depth); got != sameShallow {
		t.Error("did not pick the deepest same-node victim")
	}
	// Only when no same-node backlog clears MinDepth does the thief go
	// cross-node.
	depths[sameShallow], depths[sameDeep] = 3, 3
	if got := pickVictim(thief, loops, 4, depth); got != crossDeep {
		t.Errorf("same-node victims below MinDepth should yield to cross-node: got %p", got)
	}
	// Nothing anywhere clears MinDepth: no victim. The quarantined
	// loop's fake depth of 99 must never be considered.
	depths[crossDeep] = 2
	if got := pickVictim(thief, loops, 4, depth); got != nil {
		t.Errorf("victim %p chosen with no backlog clearing MinDepth", got)
	}
}

// TestNUMAStealCrossNodeAccounting is the distance-aware scheduler's
// live property test (run under -race in CI): a 4-shard deployment on a
// modeled 2-socket machine with nearly every connection and key pinned
// to shard/queue 0 on node 0 (dial churn leaves transient backlogs on
// the other queues, so victims off queue 0 are rare but legal).
// Whatever mix of thieves ends up stealing, the counters must
// reconcile: the aggregate equals the per-loop sum, no loop counts more
// cross-steals than steals, and each loop's mix matches its side of the
// socket boundary — node-1 thieves steal mostly cross (their only
// steady victim lives on node 0), node-0 thieves mostly same-node.
func TestNUMAStealCrossNodeAccounting(t *testing.T) {
	cfg := core.Config{
		MetaSlots: 512, SlotSize: 128, DataSlots: 512, DataBufSize: 2048,
		ChecksumReuse: true, VerifyOnGet: true,
	}
	const shards = 4
	prof := calib.Off()
	r := pmem.New(core.ShardedRegionSize(cfg, shards), prof)
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int{0, 0, 1, 1}
	if err := ss.SetNUMAPlacement(prof.NUMA, 2, nodes); err != nil {
		t.Fatal(err)
	}
	tb := host.NewTestbed(host.Options{ServerRxPools: ss.Pools(), ServerQueueNodes: nodes})
	defer tb.Close()
	srv, err := NewWithConfig(tb.Server.Stack, 80, ShardedPktStore{S: ss}, Config{
		MaxBatch: 4,
		Steal:    StealConfig{Enabled: true, MinDepth: 1, Poll: 50 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Close()

	nWorkers := 10
	minOps := uint64(600)
	if testing.Short() {
		nWorkers, minOps = 6, 200
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		keys := hotKeys(w, 8, shards)
		wg.Add(1)
		go func(w int, keys [][]byte) {
			defer wg.Done()
			cl, err := dialQueue(tb, 0, shards)
			if err != nil {
				t.Error(err)
				return
			}
			defer func() { cl.Close() }()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				v := []byte(fmt.Sprintf("w%d-i%d", w, i))
				if err := cl.Put(keys[i%len(keys)], v); err != nil {
					cl.Close()
					if cl, err = dialQueue(tb, 0, shards); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w, keys)
	}
	waitFor(t, "traffic and cross-node steals", func() bool {
		st := srv.Stats()
		return st.Requests > minOps && st.Steals > 0 && st.CrossSteals > 0
	})
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// The steady backlog lives on loop 0 (node 0): a thief's steal off
	// it is cross-node exactly when the thief runs on node 1. Dial
	// churn can leave a transient one-event backlog on any queue, so
	// the per-loop mix is asserted as a majority, not an equality
	// (loops with a handful of steals are too small a sample to judge).
	var sumSteals, sumCross uint64
	for q, ls := range srv.LoopStats() {
		if ls.Node != nodes[q] {
			t.Errorf("loop %d reports node %d, want %d", q, ls.Node, nodes[q])
		}
		sumSteals += ls.Steals
		sumCross += ls.CrossSteals
		if ls.CrossSteals > ls.Steals {
			t.Errorf("loop %d: cross-steals %d > steals %d", q, ls.CrossSteals, ls.Steals)
		}
		if ls.Steals < 8 {
			continue
		}
		switch nodes[q] {
		case 0:
			if 2*ls.CrossSteals > ls.Steals {
				t.Errorf("node-0 loop %d: %d of %d steals cross-node despite the same-node victim", q, ls.CrossSteals, ls.Steals)
			}
		case 1:
			if 2*ls.CrossSteals < ls.Steals {
				t.Errorf("node-1 loop %d: only %d of %d steals counted cross-node", q, ls.CrossSteals, ls.Steals)
			}
		}
	}
	st := srv.Stats()
	if st.Steals != sumSteals || st.CrossSteals != sumCross {
		t.Errorf("aggregate steals %d/%d do not reconcile with per-loop sums %d/%d",
			st.Steals, st.CrossSteals, sumSteals, sumCross)
	}
	if st.Steals == 0 {
		t.Fatal("no cycles stolen under maximal skew")
	}

	// The healthz report carries the placement section: node count, the
	// reconciled cross-steal total, and the region's line counters.
	h := NewHealer(ss, HealConfig{ScrubInterval: time.Hour})
	go h.Run()
	defer h.Close()
	h.SetLoopSource(srv.LoopStats)
	rep := h.Health()
	if rep.NUMA == nil {
		t.Fatal("healthz report missing numa section on a 2-node deployment")
	}
	if rep.NUMA.Nodes != 2 {
		t.Errorf("healthz numa nodes = %d, want 2", rep.NUMA.Nodes)
	}
	if rep.NUMA.CrossSteals != sumCross {
		t.Errorf("healthz cross-steals = %d, want %d", rep.NUMA.CrossSteals, sumCross)
	}
	rs := r.Stats()
	if rep.NUMA.LocalLines != rs.LocalLines || rep.NUMA.RemoteLines != rs.RemoteLines {
		t.Errorf("healthz line counters %d/%d, want %d/%d",
			rep.NUMA.LocalLines, rep.NUMA.RemoteLines, rs.LocalLines, rs.RemoteLines)
	}
	if sumCross > 0 && rs.RemoteLines == 0 {
		t.Error("cross-node steals happened but no remote lines were charged")
	}
	t.Logf("requests=%d steals=%d cross=%d localLines=%d remoteLines=%d",
		st.Requests, st.Steals, st.CrossSteals, rs.LocalLines, rs.RemoteLines)
}
