package kvserver

import (
	"testing"
	"time"
)

// codelHarness drives the control law with a synthetic clock so the
// tests are exact: observations advance time explicitly and no real
// sleeping happens.
type codelHarness struct {
	cd  codel
	now time.Time
}

func newCodelHarness(target, interval time.Duration) *codelHarness {
	return &codelHarness{
		cd:  codel{target: target, interval: interval},
		now: time.Unix(1000, 0),
	}
}

// step advances the clock and feeds one sojourn observation.
func (h *codelHarness) step(advance, sojourn time.Duration) bool {
	h.now = h.now.Add(advance)
	return h.cd.observe(sojourn, h.now)
}

func TestCodelBelowTargetNeverSheds(t *testing.T) {
	h := newCodelHarness(2*time.Millisecond, 50*time.Millisecond)
	for i := 0; i < 1000; i++ {
		if h.step(time.Millisecond, time.Millisecond) {
			t.Fatalf("shed at observation %d with sojourn below target", i)
		}
	}
	if h.cd.dropping {
		t.Fatal("entered dropping with sojourn below target")
	}
}

func TestCodelBurstShorterThanIntervalPasses(t *testing.T) {
	h := newCodelHarness(2*time.Millisecond, 50*time.Millisecond)
	// 40ms of standing sojourn — above target but shorter than the
	// interval — then a dip below target. Nothing may shed.
	for i := 0; i < 40; i++ {
		if h.step(time.Millisecond, 10*time.Millisecond) {
			t.Fatalf("shed %dms into a sub-interval burst", i)
		}
	}
	if h.step(time.Millisecond, time.Millisecond) {
		t.Fatal("shed on the dip that proved the burst drained")
	}
	if h.cd.dropping {
		t.Fatal("dropping after the burst drained")
	}
}

func TestCodelStandingQueueTripsAfterInterval(t *testing.T) {
	h := newCodelHarness(2*time.Millisecond, 50*time.Millisecond)
	sheds, first := 0, -1
	for i := 0; i < 60; i++ {
		if h.step(time.Millisecond, 10*time.Millisecond) {
			sheds++
			if first < 0 {
				first = i
			}
		}
	}
	if sheds == 0 {
		t.Fatal("standing queue above target for > interval never shed")
	}
	// The first shed must wait out a full interval (50 observations at
	// 1ms spacing; the first observation only arms the deadline).
	if first < 50 {
		t.Fatalf("first shed at observation %d, before the interval elapsed", first)
	}
	if !h.cd.dropping {
		t.Fatal("not in dropping state with the queue still standing")
	}
}

func TestCodelDropRateTightens(t *testing.T) {
	h := newCodelHarness(2*time.Millisecond, 50*time.Millisecond)
	// Hold a standing queue for 2 simulated seconds and collect shed
	// times. CoDel paces sheds at interval/sqrt(count): the gaps must
	// shrink monotonically-ish; compare first gap vs a later one.
	var shedAt []time.Duration
	start := h.now
	for i := 0; i < 2000; i++ {
		if h.step(time.Millisecond, 10*time.Millisecond) {
			shedAt = append(shedAt, h.now.Sub(start))
		}
	}
	if len(shedAt) < 6 {
		t.Fatalf("only %d sheds in 2s of standing queue", len(shedAt))
	}
	firstGap := shedAt[1] - shedAt[0]
	lastGap := shedAt[len(shedAt)-1] - shedAt[len(shedAt)-2]
	if lastGap >= firstGap {
		t.Fatalf("drop pacing did not tighten: first gap %v, last gap %v", firstGap, lastGap)
	}
}

func TestCodelDipExitsDropping(t *testing.T) {
	h := newCodelHarness(2*time.Millisecond, 50*time.Millisecond)
	for i := 0; i < 200; i++ {
		h.step(time.Millisecond, 10*time.Millisecond)
	}
	if !h.cd.dropping {
		t.Fatal("not dropping after 200ms standing queue")
	}
	if h.step(time.Millisecond, time.Millisecond) {
		t.Fatal("shed on a sojourn below target")
	}
	if h.cd.dropping {
		t.Fatal("dip below target did not exit dropping")
	}
	// And a fresh standing queue must again wait out a full interval
	// before shedding resumes (possibly faster via the restart
	// heuristic, but never instantly).
	if h.step(time.Millisecond, 10*time.Millisecond) {
		t.Fatal("shed immediately after leaving dropping")
	}
}

func TestCodelRelapseResumesNearOldRate(t *testing.T) {
	h := newCodelHarness(2*time.Millisecond, 50*time.Millisecond)
	// Build up a high drop count.
	for i := 0; i < 1000; i++ {
		h.step(time.Millisecond, 10*time.Millisecond)
	}
	countBefore := h.cd.count
	if countBefore < 4 {
		t.Fatalf("drop count %d too low to exercise the restart heuristic", countBefore)
	}
	// Brief dip, then an immediate relapse.
	h.step(time.Millisecond, time.Millisecond)
	relapseSheds := 0
	for i := 0; i < 60; i++ {
		if h.step(time.Millisecond, 10*time.Millisecond) {
			relapseSheds++
		}
	}
	if relapseSheds == 0 {
		t.Fatal("relapse never resumed shedding")
	}
	// The restart heuristic (count - 2) must carry history over: the
	// count after re-entering dropping starts near the old rate instead
	// of from 1.
	if h.cd.count < countBefore/2 {
		t.Fatalf("restart count %d lost the drop history (was %d)", h.cd.count, countBefore)
	}
}

func TestOverloadConfigDefaults(t *testing.T) {
	var c OverloadConfig
	c.fill(8)
	if c.Target != 2*time.Millisecond || c.Interval != 50*time.Millisecond {
		t.Fatalf("defaults = %+v", c)
	}
	if c.RetryAfter != 25*time.Millisecond {
		t.Fatalf("RetryAfter default = %v", c.RetryAfter)
	}
	if c.BrownoutBatch != 32 {
		t.Fatalf("BrownoutBatch = %d, want 4x MaxBatch", c.BrownoutBatch)
	}
	c = OverloadConfig{}
	c.fill(2)
	if c.BrownoutBatch != 16 {
		t.Fatalf("BrownoutBatch floor = %d, want 16", c.BrownoutBatch)
	}
}
