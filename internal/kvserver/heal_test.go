package kvserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/pmem"
)

func healShardedSetup(t *testing.T) (*pmem.Region, *core.ShardedStore, []string) {
	t.Helper()
	cfg := core.Config{MetaSlots: 64, SlotSize: 128, DataSlots: 64, DataBufSize: 512, VerifyOnGet: true}
	const shards = 4
	r := pmem.New(core.ShardedRegionSize(cfg, shards), calib.Off())
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("key-%03d", i)
		keys = append(keys, k)
		if err := ss.Put([]byte(k), []byte("value of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	return r, ss, keys
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// waitRejoin blocks on the healer's rejoin channel — the event-driven
// wait for "a rebuild just re-admitted its shard", replacing wall-clock
// polls that flake when the scheduler stalls the heal goroutine.
func waitRejoin(t *testing.T, h *Healer) time.Duration {
	t.Helper()
	select {
	case d := <-h.RejoinC():
		return d
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for a rejoin event")
		return 0
	}
}

// TestHealerRebuildsQuarantinedShard exercises the supervisor end to
// end: a quarantined shard is rebuilt and re-admitted automatically
// while the other shards keep serving, and no acked write is lost.
func TestHealerRebuildsQuarantinedShard(t *testing.T) {
	_, ss, keys := healShardedSetup(t)
	h := NewHealer(ss, HealConfig{ScrubInterval: time.Millisecond, ScrubSlots: 16})
	go h.Run()
	defer h.Close()

	victim := 1
	ss.Quarantine(victim, fmt.Errorf("injected"))
	waitRejoin(t, h)
	if err := ss.ShardErr(victim); err != nil {
		t.Fatalf("rejoin event fired but victim still down: %v", err)
	}

	st := h.Stats()
	if st.Rebuilds == 0 {
		t.Fatal("healer recorded no rebuild")
	}
	if len(st.Rejoins) == 0 {
		t.Fatal("healer recorded no time-to-rejoin sample")
	}
	for _, k := range keys {
		v, ok, err := ss.Get([]byte(k))
		if err != nil || !ok || string(v) != "value of "+k {
			t.Fatalf("after heal, %q: ok=%v err=%v v=%q", k, ok, err, v)
		}
	}
}

// TestHealerScrubFindsInjectedFlip verifies the background scrubber
// detects a latent CRC-covered bit flip and repairs the store in place.
func TestHealerScrubFindsInjectedFlip(t *testing.T) {
	_, ss, keys := healShardedSetup(t)
	// Damage a record in its own shard's store, directly.
	victimKey := keys[7]
	shard := core.ShardOf([]byte(victimKey), ss.Shards())
	if off := ss.Shard(shard).CorruptRecord([]byte(victimKey), core.FlipSlotField, 1, 0x10); off < 0 {
		t.Fatal("CorruptRecord found no slot")
	}
	h := NewHealer(ss, HealConfig{ScrubInterval: time.Millisecond, ScrubSlots: 16})
	go h.Run()
	defer h.Close()

	waitFor(t, "scrub detection", func() bool { return h.Stats().ScrubErrorsFound > 0 })
	waitFor(t, "scrub pass", func() bool { return h.Stats().ScrubPasses > 0 })
	st := h.Stats()
	if st.ScrubRepaired == 0 {
		t.Fatal("scrub detected damage but repaired nothing")
	}
	// Every undamaged key still serves exact bytes.
	for _, k := range keys {
		if k == victimKey {
			continue
		}
		v, ok, err := ss.Get([]byte(k))
		if err != nil || !ok || string(v) != "value of "+k {
			t.Fatalf("after scrub repair, %q: ok=%v err=%v v=%q", k, ok, err, v)
		}
	}
	// The damaged record must never serve wrong bytes.
	if v, ok, err := ss.Get([]byte(victimKey)); err == nil && ok {
		t.Fatalf("damaged key still serving: %q", v)
	}
}

// TestHealerRecoversSuperblockLoss drives the full loss flavor: the
// scrubber's superblock probe quarantines the shard, then the rebuild
// repairs the superblock from configuration and rejoins it.
func TestHealerRecoversSuperblockLoss(t *testing.T) {
	r, ss, keys := healShardedSetup(t)
	h := NewHealer(ss, HealConfig{ScrubInterval: time.Millisecond, ScrubSlots: 16})
	go h.Run()
	defer h.Close()

	victim := 2
	stride := core.ShardedRegionSize(core.Config{MetaSlots: 64, SlotSize: 128, DataSlots: 64, DataBufSize: 512, VerifyOnGet: true}, ss.Shards()) / ss.Shards()
	r.CorruptByte(victim*stride, 0xff)

	waitRejoin(t, h)
	if h.Stats().Rebuilds == 0 {
		t.Fatal("rejoin event fired without a rebuild on record")
	}
	if err := ss.ShardErr(victim); err != nil {
		t.Fatalf("rejoin event fired but victim still down: %v", err)
	}
	for _, k := range keys {
		v, ok, err := ss.Get([]byte(k))
		if err != nil || !ok || string(v) != "value of "+k {
			t.Fatalf("after superblock heal, %q: ok=%v err=%v v=%q", k, ok, err, v)
		}
	}
	if h.Stats().ScrubErrorsFound == 0 {
		t.Fatal("superblock loss not counted as a scrub error")
	}
}

// rawHTTP sends one request over c and returns the raw response bytes.
func rawHTTP(t *testing.T, c net.Conn, req string) []byte {
	t.Helper()
	if _, err := c.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64<<10)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	return buf[:n]
}

// TestNetServerHealthz checks the endpoint end to end: 503 + JSON while
// a shard is down, 200 + JSON once everything serves.
func TestNetServerHealthz(t *testing.T) {
	_, ss, _ := healShardedSetup(t)
	h := NewHealer(ss, HealConfig{})
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServer(lst, ShardedPktStore{S: ss})
	srv.SetHealthSource(h.Health)
	// Wire a loop source the way an event-loop deployment wires
	// Server.LoopStats, so the scheduler section rides along in the JSON.
	h.SetLoopSource(func() []Stats {
		return []Stats{{Requests: 7, Steals: 2, StolenOps: 5, StealAborts: 1, QueueDepth: 3}}
	})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	ss.Quarantine(3, fmt.Errorf("injected"))
	c, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	resp := rawHTTP(t, c, "GET /healthz HTTP/1.1\r\n\r\n")
	if !bytes.Contains(resp, []byte("503")) {
		t.Fatalf("healthz with a down shard: want 503, got %q", resp)
	}
	var rep HealthReport
	if i := bytes.Index(resp, []byte("\r\n\r\n")); i < 0 {
		t.Fatalf("no body in %q", resp)
	} else if err := json.Unmarshal(resp[i+4:], &rep); err != nil {
		t.Fatalf("healthz body not JSON: %v in %q", err, resp)
	}
	if rep.Ready || len(rep.Shards) != ss.Shards() || rep.Shards[3].State != "down" {
		t.Fatalf("bad report while down: %+v", rep)
	}
	if len(rep.Loops) != 1 {
		t.Fatalf("loop stats missing from healthz: %+v", rep)
	}
	if l := rep.Loops[0]; l.Requests != 7 || l.Steals != 2 || l.StolenOps != 5 || l.StealAborts != 1 || l.QueueDepth != 3 {
		t.Fatalf("loop stats mangled in healthz JSON: %+v", l)
	}

	if err := ss.Rebuild(3); err != nil {
		t.Fatal(err)
	}
	resp = rawHTTP(t, c, "GET /healthz HTTP/1.1\r\n\r\n")
	if !bytes.Contains(resp, []byte("200")) {
		t.Fatalf("healthz after rejoin: want 200, got %q", resp)
	}
	c.Close()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestNetServerShedsAtMaxConns verifies the 503 connection shed at the
// MaxConns cap.
func TestNetServerShedsAtMaxConns(t *testing.T) {
	cfg := core.Config{MetaSlots: 64, DataSlots: 64, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	store, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServerWithConfig(lst, PktStore{S: store}, Config{MaxConns: 1})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	c1, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Prove c1 holds the slot by completing a request on it.
	resp := rawHTTP(t, c1, "PUT /k/held HTTP/1.1\r\nContent-Length: 1\r\n\r\nx")
	if !bytes.Contains(resp, []byte("200")) {
		t.Fatalf("put on first conn: %q", resp)
	}

	c2, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 256)
	n, _ := c2.Read(buf)
	if !bytes.Contains(buf[:n], []byte("503")) {
		t.Fatalf("over-cap conn: want 503 shed, got %q", buf[:n])
	}
	if srv.Sheds() == 0 {
		t.Fatal("shed not counted")
	}
	c2.Close()
	c1.Close()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestNetServerIdleTimeout verifies the read deadline reaps stalled
// connections.
func TestNetServerIdleTimeout(t *testing.T) {
	cfg := core.Config{MetaSlots: 64, DataSlots: 64, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	store, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServerWithConfig(lst, PktStore{S: store}, Config{IdleTimeout: 30 * time.Millisecond})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	c, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// Never write: the server must close us at the idle deadline.
	buf := make([]byte, 16)
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("expected the server to close the idle connection")
	}
	waitFor(t, "idle close counted", func() bool { return srv.IdleClosed() > 0 })
	c.Close()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestCommitGroupDetectsMidCycleRebuild is the acked-write-loss
// regression: a rebuild between staging and commit drops the staged
// group, so the commit gate must poison the cycle and refuse the acks.
func TestCommitGroupDetectsMidCycleRebuild(t *testing.T) {
	_, ss, _ := healShardedSetup(t)
	lp := &loop{srv: &Server{sharded: ss}, store: ss.Shard(1), shard: 1}
	x := lp.executorFor(lp)

	x.beginCycle()
	if err := x.store.PutStaged([]byte("staged-a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	x.stagedOps++ // dispatch's accounting; these tests stage directly
	if !x.commitGroup() {
		t.Fatal("healthy cycle flagged bad")
	}

	x.beginCycle()
	if err := x.store.PutStaged([]byte("staged-b"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	x.stagedOps++ // dispatch's accounting; these tests stage directly
	ss.Quarantine(1, fmt.Errorf("injected"))
	if x.servingSelf() {
		t.Fatal("servingSelf true on a quarantined shard")
	}
	if err := ss.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	if x.commitGroup() {
		t.Fatal("rebuild dropped the staged group but the gate passed its acks")
	}
	if _, ok, _ := x.store.Get([]byte("staged-b")); ok {
		t.Fatal("dropped staged put resurfaced")
	}

	// A shard still down at commit time also fails the gate.
	x.beginCycle()
	ss.Quarantine(1, fmt.Errorf("injected again"))
	if x.commitGroup() {
		t.Fatal("down shard passed the ack gate")
	}
	if err := ss.Rebuild(1); err != nil {
		t.Fatal(err)
	}

	// The gate re-arms once a cycle starts against the healed shard.
	x.beginCycle()
	if !x.commitGroup() {
		t.Fatal("gate failed to re-arm after the shard healed")
	}
}

// TestCommitGroupGateHoldsUnderSteal is the same acked-write gate driven
// the way a stealing loop drives it: the executing loop is not the
// shard's home loop and enters holding the ownership token. The gate's
// correctness must not depend on which goroutine (or loop) runs the
// cycle.
func TestCommitGroupGateHoldsUnderSteal(t *testing.T) {
	_, ss, _ := healShardedSetup(t)
	srv := &Server{sharded: ss}
	victim := &loop{srv: srv, store: ss.Shard(1), shard: 1}
	thief := &loop{srv: srv, q: 3, shard: -1}

	x := thief.executorFor(victim)
	if !x.stealing {
		t.Fatal("executor for a peer loop not marked stealing")
	}
	if !ss.TryAcquire(victim.shard) {
		t.Fatal("uncontended token not acquired")
	}
	x.token = true
	x.beginCycle()
	if err := x.store.PutStaged([]byte("stolen-a"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	x.stagedOps++ // dispatch's accounting; this test stages directly
	ss.Quarantine(1, fmt.Errorf("injected"))
	if err := ss.Rebuild(1); err != nil {
		t.Fatal(err)
	}
	if x.commitGroup() {
		t.Fatal("mid-steal rebuild dropped the staged group but the gate passed its acks")
	}
	if x.token {
		t.Fatal("commitGroup left the ownership token held")
	}
	// The token must be free again for the home loop.
	if !ss.TryAcquire(victim.shard) {
		t.Fatal("token still held after the steal cycle resolved")
	}
	ss.Release(victim.shard)
}

// TestQuarantineWakesHealerImmediately asserts rejoin latency is
// rebuild-time-dominated, not probe-cadence-dominated: with a scrub
// interval far longer than a rebuild, the quarantine notification alone
// must start the rebuild, so the shard rejoins well before the first
// tick could have seen it.
func TestQuarantineWakesHealerImmediately(t *testing.T) {
	_, ss, _ := healShardedSetup(t)
	const interval = 300 * time.Millisecond
	h := NewHealer(ss, HealConfig{ScrubInterval: interval})
	go h.Run()
	defer h.Close()
	time.Sleep(5 * time.Millisecond) // let the heal loop park in select

	ss.Quarantine(2, fmt.Errorf("injected"))
	sample := waitRejoin(t, h)
	if err := ss.ShardErr(2); err != nil {
		t.Fatalf("rejoin event fired but shard still down: %v", err)
	}
	// The channel sample is measured by the healer itself (quarantine to
	// re-admit), so the assertion is immune to test-goroutine scheduling.
	if sample >= interval {
		t.Fatalf("rejoin took %v with a %v scrub interval — quarantine wakeup did not fire", sample, interval)
	}
	if len(h.Stats().Rejoins) == 0 {
		t.Fatal("no time-to-rejoin sample recorded")
	}
}

// TestHealerCloseIdempotent: Close must be safe to call concurrently
// and repeatedly (server shutdown paths overlap with defers).
func TestHealerCloseIdempotent(t *testing.T) {
	_, ss, _ := healShardedSetup(t)
	h := NewHealer(ss, HealConfig{ScrubInterval: time.Millisecond})
	go h.Run()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Close()
		}()
	}
	wg.Wait()
	h.Close()
}
