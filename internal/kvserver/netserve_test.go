package kvserver

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/httpmsg"
	"packetstore/internal/kvclient"
	"packetstore/internal/pmem"
)

func TestNetServerOverOSSockets(t *testing.T) {
	cfg := core.Config{MetaSlots: 1024, DataSlots: 1024, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	store, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServer(lst, PktStore{S: store})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	conn, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := kvclient.New(conn)
	val := bytes.Repeat([]byte("x"), 2000)
	if err := cl.Put([]byte("net-key"), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get([]byte("net-key"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("get over OS sockets: %v %v", ok, err)
	}
	if _, ok, _ := cl.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	if found, err := cl.Delete([]byte("net-key")); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	// Range with some records.
	for _, k := range []string{"a", "b", "c"} {
		cl.Put([]byte(k), []byte("v-"+k))
	}
	kvs, err := cl.Range([]byte("a"), []byte("c"), 0)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("range: %d %v", len(kvs), err)
	}
	cl.Close()

	// Malformed request: server answers 400 and closes.
	conn2, _ := net.Dial("tcp", lst.Addr().String())
	conn2.Write([]byte("JUNK\r\n\r\n"))
	buf := make([]byte, 256)
	n, _ := conn2.Read(buf)
	if !bytes.Contains(buf[:n], []byte("400")) {
		t.Fatalf("want 400, got %q", buf[:n])
	}
	conn2.Close()

	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// readResponse parses exactly one HTTP response (plus body) off the
// connection.
func readResponse(t *testing.T, c net.Conn) (httpmsg.Response, []byte) {
	t.Helper()
	p := httpmsg.NewResponseParser()
	buf := make([]byte, 4096)
	var body []byte
	for {
		n, err := c.Read(buf)
		if err != nil {
			t.Fatalf("read response: %v", err)
		}
		chunk := buf[:n]
		for len(chunk) > 0 {
			res := p.Feed(chunk)
			if res.Err != nil {
				t.Fatalf("parse response: %v", res.Err)
			}
			body = append(body, chunk[res.Body.Off:res.Body.Off+res.Body.Len]...)
			chunk = chunk[res.Consumed:]
			if res.Done {
				return p.Response(), body
			}
		}
	}
}

// TestNetServerAcceptStorm dials well past MaxConns at once: every
// over-cap connection must receive a parseable 503 with a Retry-After-Ms
// hint before being closed (never a silent RST or hang), the in-cap
// connections must keep serving, and Sheds() must count the rejects
// exactly.
func TestNetServerAcceptStorm(t *testing.T) {
	const maxConns, storm = 4, 12
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServerWithConfig(lst, Discard{}, Config{MaxConns: maxConns})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	// Fill the cap and prove each in-cap connection is registered by
	// completing a request on it (accept order, not dial order, decides
	// who is over cap — a round trip pins each one as accepted).
	inCap := make([]net.Conn, 0, maxConns)
	for i := 0; i < maxConns; i++ {
		c, err := net.Dial("tcp", lst.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(c, "PUT /k/warm-%d HTTP/1.1\r\nContent-Length: 1\r\n\r\nx", i)
		if r, _ := readResponse(t, c); r.Status != 200 {
			t.Fatalf("in-cap conn %d: status %d", i, r.Status)
		}
		inCap = append(inCap, c)
	}

	// The storm: every extra connection gets a clean 503.
	for i := 0; i < storm; i++ {
		c, err := net.Dial("tcp", lst.Addr().String())
		if err != nil {
			t.Fatalf("storm dial %d: %v", i, err)
		}
		r, _ := readResponse(t, c)
		if r.Status != 503 {
			t.Fatalf("storm conn %d: status %d, want 503", i, r.Status)
		}
		if r.RetryAfterMs <= 0 {
			t.Fatalf("storm conn %d: no Retry-After-Ms hint", i)
		}
		// The server hangs up after the 503.
		if _, err := c.Read(make([]byte, 1)); err != io.EOF {
			t.Fatalf("storm conn %d: want EOF after 503, got %v", i, err)
		}
		c.Close()
	}
	if got := srv.Sheds(); got != storm {
		t.Fatalf("Sheds() = %d, want %d", got, storm)
	}

	// In-cap connections survived the storm.
	for i, c := range inCap {
		fmt.Fprintf(c, "PUT /k/after-%d HTTP/1.1\r\nContent-Length: 1\r\n\r\ny", i)
		if r, _ := readResponse(t, c); r.Status != 200 {
			t.Fatalf("in-cap conn %d after storm: status %d", i, r.Status)
		}
		c.Close()
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestNetServerExpiredBudget sends a request whose X-Budget-Us lapsed
// before execution: the server must answer 503 without executing, count
// it in Expired(), and surface the tally in /healthz.
func TestNetServerExpiredBudget(t *testing.T) {
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServerWithConfig(lst, Discard{}, Config{Overload: OverloadConfig{Enabled: true}})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	c, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// A 1µs budget has always lapsed by dispatch time.
	fmt.Fprintf(c, "PUT /k/doomed HTTP/1.1\r\nX-Budget-Us: 1\r\nContent-Length: 1\r\n\r\nz")
	r, _ := readResponse(t, c)
	if r.Status != 503 || r.RetryAfterMs <= 0 {
		t.Fatalf("expired budget: status %d retry-after %d", r.Status, r.RetryAfterMs)
	}
	if got := srv.Expired(); got != 1 {
		t.Fatalf("Expired() = %d, want 1", got)
	}
	// A generous budget executes normally on the same connection.
	fmt.Fprintf(c, "PUT /k/alive HTTP/1.1\r\nX-Budget-Us: 10000000\r\nContent-Length: 1\r\n\r\nz")
	if r, _ := readResponse(t, c); r.Status != 200 {
		t.Fatalf("live budget: status %d", r.Status)
	}

	// /healthz carries the overload section even without a healer wired.
	fmt.Fprintf(c, "GET /healthz HTTP/1.1\r\n\r\n")
	hr, hbody := readResponse(t, c)
	if hr.Status != 200 {
		t.Fatalf("healthz status %d", hr.Status)
	}
	var rep HealthReport
	if err := json.Unmarshal(hbody, &rep); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	if rep.Overload == nil || rep.Overload.Expired != 1 {
		t.Fatalf("healthz overload section = %+v, want expired=1", rep.Overload)
	}
	c.Close()
	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
