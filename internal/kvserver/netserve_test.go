package kvserver

import (
	"bytes"
	"net"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/kvclient"
	"packetstore/internal/pmem"
)

func TestNetServerOverOSSockets(t *testing.T) {
	cfg := core.Config{MetaSlots: 1024, DataSlots: 1024, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	store, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewNetServer(lst, PktStore{S: store})
	done := make(chan error, 1)
	go func() { done <- srv.Serve() }()

	conn, err := net.Dial("tcp", lst.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cl := kvclient.New(conn)
	val := bytes.Repeat([]byte("x"), 2000)
	if err := cl.Put([]byte("net-key"), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get([]byte("net-key"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("get over OS sockets: %v %v", ok, err)
	}
	if _, ok, _ := cl.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	if found, err := cl.Delete([]byte("net-key")); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	// Range with some records.
	for _, k := range []string{"a", "b", "c"} {
		cl.Put([]byte(k), []byte("v-"+k))
	}
	kvs, err := cl.Range([]byte("a"), []byte("c"), 0)
	if err != nil || len(kvs) != 2 {
		t.Fatalf("range: %d %v", len(kvs), err)
	}
	cl.Close()

	// Malformed request: server answers 400 and closes.
	conn2, _ := net.Dial("tcp", lst.Addr().String())
	conn2.Write([]byte("JUNK\r\n\r\n"))
	buf := make([]byte, 256)
	n, _ := conn2.Read(buf)
	if !bytes.Contains(buf[:n], []byte("400")) {
		t.Fatalf("want 400, got %q", buf[:n])
	}
	conn2.Close()

	srv.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
