package kvserver

import (
	"errors"
	"fmt"
	"net/url"
	"runtime"
	"sync"
	"time"

	"packetstore/internal/checksum"
	"packetstore/internal/core"
	"packetstore/internal/httpmsg"
	"packetstore/internal/kvproto"
	"packetstore/internal/pkt"
	"packetstore/internal/tcp"
)

// Config tunes the server's overload and robustness behaviour. The zero
// value imposes no connection cap and no idle timeout (the original
// trusted-testbed behaviour).
type Config struct {
	// MaxConns caps connections per event loop. A connection accepted
	// beyond the cap is shed: it gets a 503 response and is closed
	// immediately, so one loop's state stays bounded no matter how many
	// clients pile on. 0 means unlimited.
	MaxConns int
	// IdleTimeout closes a connection that has not delivered a request
	// for this long — a stalled or wedged client cannot pin an event
	// loop's resources forever. 0 disables.
	IdleTimeout time.Duration
	// MaxBatch enables group commit: an event loop drains up to MaxBatch
	// readable connections per cycle, stages their PUTs, commits them
	// under one group flush+fence, and only then sends the whole burst's
	// responses — so every ack still follows its record's fence.
	// Adaptive cutoff: a burst of one is serviced exactly like the
	// unbatched path, so unloaded latency does not regress. 0 or 1
	// disables batching.
	MaxBatch int
}

// Server is the storage server application. One event-loop goroutine per
// NIC RSS queue emulates the paper's busy-polling server cores. With a
// sharded packetstore, loop q serves exactly the store shard whose PM
// partition backs queue q's receive pool, so zero-copy ingest never
// crosses cores: the NIC DMAs a flow's payloads straight into the
// partition of the shard that will index them (DESIGN.md §5.7). With one
// queue and one shard this degenerates to the original single-core loop.
type Server struct {
	stk     *tcp.Stack
	lst     *tcp.Listener
	backend Backend
	sharded *core.ShardedStore // non-nil for packetstore backends

	cfg   Config
	loops []*loop
	done  chan struct{}
	ret   chan struct{}
}

// loop is one event-loop "core": it owns the connections whose flows RSS
// to its queue plus, in sharded mode, the store shard backing that
// queue's receive pool. Loops share no mutable state — each has its own
// connection table, key arena and stats counters.
type loop struct {
	srv   *Server
	q     int
	store *core.Store // shard for the zero-copy paths; nil = copy only
	shard int         // index of store within srv.sharded (-1 if none)
	conns map[*tcp.Conn]*connState
	stats statsCounters

	// Key arena: small key copies land in the shard's data slots so
	// records can reference them (values are never copied).
	arenaOff   int
	arenaUsed  int
	arenaUnpin func()

	// burst is the reusable connection list for group-commit cycles.
	burst []*connState

	// cycleEpoch is the loop shard's rebuild epoch (core.Store.Epoch)
	// snapshotted when the current service cycle began, before any PUT
	// was staged. cycleBad marks the cycle poisoned: an online rebuild
	// dropped staged puts whose acks are already buffered, so commitGroup
	// failed its post-commit check and every response buffered this cycle
	// is discarded (the connections close instead of acking).
	cycleEpoch uint64
	cycleBad   bool
}

// New creates a server listening on port, with one event loop per NIC
// RSS queue. If backend is PktStore or ShardedPktStore and a loop's
// receive pool is a store shard's PM pool, that loop's zero-copy paths
// activate automatically.
func New(stk *tcp.Stack, port uint16, backend Backend) (*Server, error) {
	return NewWithConfig(stk, port, backend, Config{})
}

// NewWithConfig is New with overload/robustness tuning.
func NewWithConfig(stk *tcp.Stack, port uint16, backend Backend, cfg Config) (*Server, error) {
	lst, err := stk.Listen(port)
	if err != nil {
		return nil, err
	}
	s := &Server{
		stk:     stk,
		lst:     lst,
		backend: backend,
		cfg:     cfg,
		done:    make(chan struct{}),
		ret:     make(chan struct{}),
	}
	switch b := backend.(type) {
	case PktStore:
		s.sharded = core.WrapSharded(b.S)
	case ShardedPktStore:
		s.sharded = b.S
	}
	nq := stk.Queues()
	s.loops = make([]*loop, nq)
	for q := 0; q < nq; q++ {
		lp := &loop{
			srv:      s,
			q:        q,
			shard:    -1,
			conns:    make(map[*tcp.Conn]*connState),
			arenaOff: -1,
		}
		if s.sharded != nil {
			pool := stk.NIC().RxPoolQ(q)
			for i := 0; i < s.sharded.Shards(); i++ {
				// Shard returns nil for a quarantined shard — its queue's
				// loop then runs copy-path only, like a DRAM-pool loop.
				if sh := s.sharded.Shard(i); sh != nil && sh.Pool() == pool {
					lp.store, lp.shard = sh, i
					break
				}
			}
		}
		s.loops[q] = lp
	}
	return s, nil
}

// Stats aggregates all loops' counters into one snapshot, plus the
// store's shard-health gauge.
func (s *Server) Stats() Stats {
	var out Stats
	for _, lp := range s.loops {
		out.merge(lp.stats.Snapshot())
	}
	if s.sharded != nil {
		out.ShardsDown = s.sharded.DownShards()
	}
	return out
}

// LoopStats returns each event loop's own snapshot, indexed by RSS
// queue — the per-core view of a sharded deployment.
func (s *Server) LoopStats() []Stats {
	out := make([]Stats, len(s.loops))
	for i, lp := range s.loops {
		out[i] = lp.stats.Snapshot()
	}
	return out
}

// Run services the event loops until Close. The caller's goroutine runs
// loop 0 (which also drains accepts); loops 1..n-1 get their own
// goroutines — the per-core serving threads of the sharded deployment.
func (s *Server) Run() {
	defer close(s.ret)
	var wg sync.WaitGroup
	for _, lp := range s.loops[1:] {
		wg.Add(1)
		go func(lp *loop) {
			defer wg.Done()
			lp.run(nil)
		}(lp)
	}
	s.loops[0].run(s.lst.AcceptCh())
	wg.Wait()
}

// Close stops the server loops.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	<-s.ret
	s.lst.Close()
}

// run is one loop's event cycle. Only loop 0 receives acceptCh (nil
// elsewhere; a nil channel never fires in select).
func (lp *loop) run(acceptCh <-chan *tcp.Conn) {
	s := lp.srv
	rx := s.stk.ReadableQ(lp.q)
	var idleTick <-chan time.Time
	if s.cfg.IdleTimeout > 0 {
		period := s.cfg.IdleTimeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		idleTick = t.C
	}
	for {
		select {
		case <-s.done:
			return
		case c, ok := <-acceptCh:
			if !ok {
				return
			}
			// Register only flows RSS-steered to this loop's queue; the
			// owning loop picks its conns up lazily on first readable.
			if c.RxQueue() == lp.q {
				if lp.shedIfFull(c) {
					continue
				}
				lp.conns[c] = newConnState(c)
			}
		case c, ok := <-rx:
			if !ok {
				return
			}
			c.ClearReady()
			st := lp.admit(c)
			if st == nil {
				continue
			}
			if s.cfg.MaxBatch > 1 {
				lp.serviceBurst(st, rx)
			} else {
				lp.service(st)
			}
		case now := <-idleTick:
			lp.sweepIdle(now)
		}
	}
}

// admit resolves a readable connection to its state, registering it on
// first contact (accepted on loop 0, or raced with accept) unless the
// loop is at its connection cap.
func (lp *loop) admit(c *tcp.Conn) *connState {
	st := lp.conns[c]
	if st == nil {
		if lp.shedIfFull(c) {
			return nil
		}
		st = newConnState(c)
		lp.conns[c] = st
	}
	return st
}

// shedIfFull rejects a connection when this loop is at its MaxConns cap:
// the client gets an immediate 503 and the connection closes, keeping
// per-loop state bounded under connection floods.
func (lp *loop) shedIfFull(c *tcp.Conn) bool {
	max := lp.srv.cfg.MaxConns
	if max <= 0 || len(lp.conns) < max {
		return false
	}
	lp.stats.sheds.Add(1)
	resp := httpmsg.AppendResponse(nil, 503, 0)
	c.Write(resp)
	c.Close()
	return true
}

// sweepIdle closes connections that have not delivered a request within
// the idle timeout, so a stalled client cannot wedge the loop's
// resources.
func (lp *loop) sweepIdle(now time.Time) {
	timeout := lp.srv.cfg.IdleTimeout
	for _, st := range lp.conns {
		if now.Sub(st.lastActive) <= timeout {
			continue
		}
		lp.stats.idleClosed.Add(1)
		lp.dropConn(st)
	}
}

// dropConn tears one connection down and releases anything its
// half-assembled request adopted.
func (lp *loop) dropConn(st *connState) {
	st.dead = true
	if st.cur != nil {
		for _, base := range st.cur.adopted {
			lp.store.ReleaseUnused(base)
		}
		st.cur = nil
	}
	st.c.Close()
	delete(lp.conns, st.c)
}

type connState struct {
	c      *tcp.Conn
	parser *httpmsg.RequestParser
	cur    *pendingReq
	resp   []byte
	dead   bool
	// inBurst dedups a connection within one group-commit cycle: after
	// ClearReady re-arms, a connection receiving more data can reappear
	// in the ready channel while its first appearance is still queued in
	// the burst.
	inBurst bool
	// lastActive is the last time the connection delivered bytes; the
	// idle sweep closes connections stalled past Config.IdleTimeout.
	lastActive time.Time
}

// pendingReq is a request whose body may still be arriving.
type pendingReq struct {
	req      kvproto.Request
	parseErr error
	// Zero-copy PUT assembly.
	keyOff int
	exts   []core.Extent
	sumsOK bool
	hwtime time.Time
	vlen   int
	// Copy-path body.
	body []byte
	// adopted data-slot bases whose release is deferred until this
	// request resolves (body spans multiple packets).
	adopted []int
}

func newConnState(c *tcp.Conn) *connState {
	return &connState{c: c, parser: httpmsg.NewRequestParser(0), lastActive: time.Now()}
}

// service drains all pending packet buffers on one connection and
// responds immediately — the unbatched cycle.
func (lp *loop) service(st *connState) {
	lp.beginCycle()
	lp.serviceConn(st, false)
	lp.finishConn(st)
}

// beginCycle arms the acked-write gate for one service cycle: it
// snapshots the loop shard's rebuild epoch before anything is staged,
// so commitGroup can later prove the staged records survived to their
// fence.
func (lp *loop) beginCycle() {
	lp.cycleBad = false
	if lp.store != nil {
		lp.cycleEpoch = lp.store.Epoch()
	}
}

// servingSelf reports whether this loop's shard currently serves
// through the very Store object the loop's zero-copy paths use.
// ServingStore resolves the serving check and the store identity under
// one lock: a mismatch means the shard is down, rebuilding, or was
// replaced by a rebuild. Both the zero-copy PUT and GET paths gate on
// it, so a quarantined or mid-rebuild shard is never read or written
// through the loop's direct store pointer.
func (lp *loop) servingSelf() bool {
	st, err := lp.srv.sharded.ServingStore(lp.shard)
	return err == nil && st == lp.store
}

// commitGroup commits the loop shard's staged group, then verifies the
// cycle's buffered acks are safe to flush: the shard must still be
// serving through the same Store object and rebuild epoch the cycle
// started with. A mismatch means an online rebuild (Store.Rehydrate)
// may have dropped staged puts whose 200s are already buffered — the
// cycle is poisoned (cycleBad) and its connections abort instead of
// acking writes that were never made durable.
func (lp *loop) commitGroup() bool {
	if lp.store == nil {
		return true
	}
	lp.store.Commit()
	if !lp.cycleBad && (!lp.servingSelf() || lp.store.Epoch() != lp.cycleEpoch) {
		lp.cycleBad = true
	}
	return !lp.cycleBad
}

// serviceBurst is the group-commit cycle: it drains up to MaxBatch
// readable connections without responding, stages every zero-copy PUT,
// commits the group under one fence, and only then flushes all the
// responses — acks strictly after the group fence. A burst of one takes
// the unbatched path (adaptive cutoff).
func (lp *loop) serviceBurst(first *connState, rx <-chan *tcp.Conn) {
	lp.burst = append(lp.burst[:0], first)
	first.inBurst = true
	// Bounded busy-poll: an empty ready queue does not mean no work is
	// coming — the NIC and stack pipelines may be mid-delivery (on a
	// single core the scheduler interleaves them with this loop at fine
	// grain, so the queue rarely holds more than one event at the
	// instant we look). Yield a few times to let deliveries land; two
	// consecutive empty polls means the batch has genuinely drained, so
	// an unloaded connection pays at most two scheduler yields.
	idle := 0
collect:
	for len(lp.burst) < lp.srv.cfg.MaxBatch && idle < 2 {
		select {
		case c, ok := <-rx:
			if !ok {
				break collect
			}
			idle = 0
			c.ClearReady()
			st := lp.admit(c)
			if st == nil || st.inBurst {
				continue
			}
			st.inBurst = true
			lp.burst = append(lp.burst, st)
		default:
			idle++
			runtime.Gosched()
		}
	}
	if len(lp.burst) == 1 {
		first.inBurst = false
		lp.service(first)
		return
	}
	lp.beginCycle()
	for _, st := range lp.burst {
		lp.serviceConn(st, true)
	}
	lp.commitGroup()
	lp.stats.groupCommits.Add(1)
	lp.stats.groupedConns.Add(uint64(len(lp.burst)))
	for _, st := range lp.burst {
		st.inBurst = false
		lp.finishConn(st)
	}
}

// serviceConn drains one connection's pending packet buffers. With
// staged set, zero-copy PUTs stage into the shard's group commit and
// their responses stay buffered until the caller commits and flushes.
func (lp *loop) serviceConn(st *connState, staged bool) {
	if st.dead {
		return
	}
	t0 := time.Now()
	st.lastActive = t0
	defer func() { lp.stats.busyNanos.Add(int64(time.Since(t0))) }()
	for {
		bufs := st.c.TryReadBufs()
		if bufs == nil {
			break
		}
		for _, b := range bufs {
			lp.stats.bytesIn.Add(uint64(b.Len()))
			lp.handleBuf(st, b, staged)
		}
	}
}

// finishConn sends a connection's buffered responses and reaps it on
// death, EOF or error. In a poisoned cycle (an online rebuild dropped
// staged puts whose acks are buffered) the responses are discarded and
// the connection fails instead.
func (lp *loop) finishConn(st *connState) {
	if lp.cycleBad {
		lp.abortConn(st)
		return
	}
	lp.flushResp(st)
	if st.c.EOF() || st.c.Err() != nil {
		lp.dropConn(st)
	}
}

// abortConn fails a connection whose buffered responses can no longer
// be trusted: the bytes are discarded and the connection closes, so the
// client sees a reset — a retryable transient per kvclient.Transient —
// instead of an ack for a write that may not exist.
func (lp *loop) abortConn(st *connState) {
	st.resp = st.resp[:0]
	lp.stats.ackAborts.Add(1)
	lp.dropConn(st)
}

// bodySpan is a byte range of one packet payload belonging to a request
// body.
type bodySpan struct {
	off, n int
	pr     *pendingReq
}

// handleBuf processes one received packet buffer.
func (lp *loop) handleBuf(st *connState, b *pkt.Buf, staged bool) {
	p := b.Bytes()
	zc := lp.store != nil && b.PMOff() >= 0
	t0 := time.Now()

	var spans []bodySpan
	var completed []*pendingReq
	pos := 0
	for pos < len(p) {
		if st.cur == nil {
			st.parser.Reset()
			st.cur = &pendingReq{keyOff: -1}
		}
		res := st.parser.Feed(p[pos:])
		if res.Err != nil {
			lp.protocolError(st, res.Err)
			b.Release()
			return
		}
		if res.HeaderDone {
			lp.beginRequest(st, b, zc)
		}
		if res.Body.Len > 0 {
			spans = append(spans, bodySpan{off: pos + res.Body.Off, n: res.Body.Len, pr: st.cur})
		}
		pos += res.Consumed
		if res.Done {
			completed = append(completed, st.cur)
			st.cur = nil
		}
		if res.Consumed == 0 && !res.Done {
			// Defensive: the parser always progresses, but never spin.
			lp.protocolError(st, fmt.Errorf("kvserver: parser stalled"))
			b.Release()
			return
		}
	}
	lp.stats.parseNanos.Add(int64(time.Since(t0)))

	adoptedBase := -1
	if len(spans) > 0 {
		// A span stores zero-copy only if its PUT's key hashes to this
		// loop's shard (keyOff >= 0); misaligned PUTs fall back to the
		// copy path so correctness never depends on client alignment.
		anyZC := false
		for _, sp := range spans {
			if sp.pr.req.Op != kvproto.OpPut {
				continue
			}
			if sp.pr.keyOff >= 0 {
				anyZC = true
			} else {
				sp.pr.body = append(sp.pr.body, p[sp.off:sp.off+sp.n]...)
			}
		}
		if anyZC {
			adoptedBase = lp.store.AdoptBuf(b)
			lp.attachSpansZeroCopy(b, p, spans)
		}
	}

	for _, pr := range completed {
		lp.dispatch(st, pr, staged)
	}
	b.Release()
	if adoptedBase >= 0 {
		if st.cur != nil {
			// A request is still assembling across packets: its extents
			// may reference this slot, so defer the release until it
			// resolves.
			st.cur.adopted = append(st.cur.adopted, adoptedBase)
		} else {
			lp.store.ReleaseUnused(adoptedBase)
		}
	}
}

// beginRequest parses the request line once headers complete.
func (lp *loop) beginRequest(st *connState, b *pkt.Buf, zc bool) {
	hreq := st.parser.Request()
	req, err := kvproto.Parse(hreq.Method, hreq.Path)
	pr := st.cur
	pr.vlen = hreq.ContentLength
	pr.hwtime = b.HWTime
	if err != nil {
		pr.parseErr = err
		return
	}
	pr.req = req
	if req.Op == kvproto.OpPut && zc && lp.srv.sharded.ShardFor(req.Key) == lp.shard {
		// The zero-copy path writes through this loop's direct store
		// pointer, so it must not ingest into a shard the sharded router
		// has quarantined — the copy path routes through the router, which
		// answers ErrShardDown (503).
		if !lp.servingSelf() {
			return
		}
		// Copy the (small) key into the arena so the record can
		// reference it; values stay in place.
		off := lp.allocKey(req.Key)
		if off < 0 {
			pr.parseErr = core.ErrFull
			return
		}
		pr.keyOff = off
		pr.sumsOK = true
	}
}

// attachSpansZeroCopy turns packet body spans into store extents,
// deriving the largest span's checksum from the NIC's whole-payload sum
// (everything else is summed in software — those are header-sized
// leftovers). Spans of misaligned PUTs participate in the checksum
// accounting but get no extents (their bodies were copied).
func (lp *loop) attachSpansZeroCopy(b *pkt.Buf, p []byte, spans []bodySpan) {
	pmBase := b.PMOff()
	useNIC := b.CsumStatus == pkt.CsumComplete
	largest := -1
	if useNIC {
		for i, sp := range spans {
			if largest < 0 || sp.n > spans[largest].n {
				largest = i
			}
		}
	}
	var others uint16 // ones-complement sum of all contributions except the largest span
	if useNIC {
		// Contribution of every byte range outside the largest span, at
		// its payload parity.
		addRange := func(off, n int) {
			if n <= 0 {
				return
			}
			sum := checksum.Fold(checksum.Partial(0, p[off:off+n]))
			if off%2 == 1 {
				sum = checksum.Swap16(sum)
			}
			others = checksum.Fold(checksum.Combine(uint32(others), uint32(sum)))
		}
		prev := 0
		for i, sp := range spans {
			addRange(prev, sp.off-prev) // inter-span (header) bytes
			if i != largest {
				addRange(sp.off, sp.n)
			}
			prev = sp.off + sp.n
		}
		addRange(prev, len(p)-prev)
	}
	for i, sp := range spans {
		var sum uint32
		if useNIC && i == largest {
			contrib := checksum.Sub16(checksum.Fold(b.Csum), others)
			if sp.off%2 == 1 {
				contrib = checksum.Swap16(contrib)
			}
			sum = uint32(contrib)
			lp.stats.derivedSums.Add(1)
		} else {
			sum = checksum.Partial(0, p[sp.off:sp.off+sp.n])
			lp.stats.softwareSums.Add(1)
		}
		if sp.pr.req.Op != kvproto.OpPut || sp.pr.keyOff < 0 {
			continue // body on a non-PUT or a copy-path PUT: no extents
		}
		if !useNIC {
			// Sum computed in software either way; still valid.
			sp.pr.sumsOK = sp.pr.sumsOK && true
		}
		sp.pr.exts = append(sp.pr.exts, core.Extent{
			Off: pmBase + sp.off, Len: sp.n, Sum: sum,
		})
	}
}

// statusForErr maps a backend error to the KV protocol status: a
// quarantined shard is 503 (the rest of the store still serves; retry
// elsewhere is pointless, but the client learns it is not at fault),
// exhaustion is 507, an oversized key 400, anything else 500.
func statusForErr(err error) int {
	switch {
	case errors.Is(err, core.ErrShardDown):
		return 503
	case errors.Is(err, core.ErrFull):
		return 507
	case errors.Is(err, core.ErrKeyTooLong):
		return 400
	default:
		return 500
	}
}

// dispatch executes one completed request and queues its response.
// With staged set (group-commit burst), zero-copy PUTs stage into the
// loop shard's pending group instead of committing per-op; every other
// operation first commits the pending group, both as a read barrier and
// because ops like zeroCopyGet flush buffered responses — no staged
// PUT's ack may escape before its fence.
func (lp *loop) dispatch(st *connState, pr *pendingReq, staged bool) {
	s := lp.srv
	lp.stats.requests.Add(1)
	defer func() {
		for _, base := range pr.adopted {
			lp.store.ReleaseUnused(base)
		}
	}()
	if pr.parseErr != nil {
		lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
		return
	}
	if staged && pr.req.Op != kvproto.OpPut && !lp.commitGroup() {
		// Poisoned cycle: build no response — every connection in this
		// burst aborts unflushed at cycle end, so no buffered staged-PUT
		// ack (now unbacked by a durable record) can escape.
		return
	}
	switch pr.req.Op {
	case kvproto.OpPut:
		lp.stats.puts.Add(1)
		var err error
		if pr.keyOff >= 0 {
			lp.stats.zcPuts.Add(1)
			opt := core.PutOptions{
				Extents: pr.exts, KeyOff: pr.keyOff,
				HasSum: pr.sumsOK, HWTime: pr.hwtime,
			}
			if staged {
				err = lp.store.PutExtentsStaged(pr.req.Key, pr.vlen, opt)
			} else {
				err = lp.store.PutExtents(pr.req.Key, pr.vlen, opt)
			}
		} else {
			// Copy-path PUTs may route to another loop's shard, whose
			// group this loop does not commit — they stay per-op so their
			// ack never precedes their fence.
			err = s.backend.Put(pr.req.Key, pr.body)
		}
		if err != nil {
			lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
			return
		}
		st.resp = httpmsg.AppendResponse(st.resp, 200, 0)
	case kvproto.OpGet:
		lp.stats.gets.Add(1)
		if lp.store != nil && lp.servingSelf() {
			lp.zeroCopyGet(st, pr.req.Key)
			return
		}
		// Loop shard down, rebuilding or replaced: fall back to the
		// backend router, which answers ErrShardDown (503) for a
		// quarantined keyspace instead of reading through the loop's
		// direct store pointer.
		val, ok, err := s.backend.Get(pr.req.Key)
		switch {
		case err != nil:
			lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
		case !ok:
			st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		default:
			st.resp = httpmsg.AppendResponse(st.resp, 200, len(val))
			st.resp = append(st.resp, val...)
		}
	case kvproto.OpDelete:
		lp.stats.deletes.Add(1)
		found, err := s.backend.Delete(pr.req.Key)
		switch {
		case err != nil:
			lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
		case !found:
			st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		default:
			st.resp = httpmsg.AppendResponse(st.resp, 204, 0)
		}
	case kvproto.OpRange:
		lp.stats.ranges.Add(1)
		kvs, err := s.backend.Range(pr.req.Start, pr.req.End, pr.req.Limit)
		if err != nil {
			lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
			return
		}
		body := kvproto.AppendRangeBody(nil, kvs)
		st.resp = httpmsg.AppendResponse(st.resp, 200, len(body))
		st.resp = append(st.resp, body...)
	default:
		lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
	}
}

// zeroCopyGet transmits a stored value directly from PM as packet
// fragments, pinning the data until the transport releases it
// (post-ACK). The value may live in any shard — extents are absolute
// region offsets, so cross-shard GETs stay zero-copy.
func (lp *loop) zeroCopyGet(st *connState, key []byte) {
	tgt := lp.srv.sharded.StoreFor(key)
	if tgt == nil {
		// Owning shard is quarantined: its keyspace is down, the rest of
		// the store keeps serving.
		lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 503, 0)
		return
	}
	ref, ok, err := tgt.GetRef(key)
	if err != nil {
		lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
		return
	}
	if !ok {
		st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		return
	}
	// Large values would exceed one segment without TSO; fall back to the
	// copy path rather than fail.
	hdr := httpmsg.AppendResponse(nil, 200, ref.VLen)
	if len(hdr)+ref.VLen > st.c.MaxSegment() {
		val := make([]byte, 0, ref.VLen)
		for _, e := range ref.Extents {
			val = append(val, tgt.Slice(e.Off, e.Len)...)
		}
		st.resp = append(st.resp, hdr...)
		st.resp = append(st.resp, val...)
		return
	}
	lp.flushResp(st) // preserve pipelined response order
	lp.stats.zcGets.Add(1)
	release := tgt.PinExtents(ref.Extents)
	head := pkt.NewBuf(make([]byte, tcp.HeaderRoom()+len(hdr)))
	head.Pull(tcp.HeaderRoom())
	copy(head.Bytes(), hdr)
	for i, e := range ref.Extents {
		fr := pkt.Frag{
			B: tgt.Slice(e.Off, e.Len), PMOff: e.Off,
			Sum: e.Sum, HasSum: true,
		}
		if i == 0 {
			fr.Release = release
		}
		head.AddFrag(fr)
	}
	lp.stats.bytesOut.Add(uint64(len(hdr) + ref.VLen))
	if err := st.c.WriteBufs(head); err != nil {
		release()
		st.dead = true
	}
}

// flushResp writes the batched response bytes.
func (lp *loop) flushResp(st *connState) {
	if len(st.resp) == 0 || st.dead {
		return
	}
	lp.stats.bytesOut.Add(uint64(len(st.resp)))
	if _, err := st.c.Write(st.resp); err != nil {
		st.dead = true
	}
	st.resp = st.resp[:0]
}

func (lp *loop) protocolError(st *connState, err error) {
	lp.stats.errors.Add(1)
	// The error response flushes everything buffered on this connection,
	// which may include acks for PUTs staged earlier in a burst: commit
	// them first so no ack precedes its fence. If the post-commit check
	// finds an online rebuild dropped the staged group, the buffered
	// acks are discarded and the connection just closes.
	if lp.commitGroup() {
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
		lp.flushResp(st)
	} else {
		st.resp = st.resp[:0]
	}
	st.dead = true
	st.c.Close()
	delete(lp.conns, st.c)
}

// allocKey copies key bytes into the key arena, returning their region
// offset (-1 on exhaustion). The arena is a data slot of this loop's
// shard pinned while the loop appends into it; records referencing the
// keys keep the slot alive after rotation.
func (lp *loop) allocKey(key []byte) int {
	if lp.arenaOff < 0 || lp.arenaUsed+len(key) > lp.store.DataBufSize() {
		if lp.arenaUnpin != nil {
			lp.arenaUnpin()
		}
		base := lp.store.AllocDataSlot()
		if base < 0 {
			return -1
		}
		lp.arenaOff = base
		lp.arenaUsed = 0
		lp.arenaUnpin = lp.store.PinExtents([]core.Extent{{Off: base, Len: 1}})
	}
	off := lp.arenaOff + lp.arenaUsed
	lp.store.WriteData(off, key)
	lp.arenaUsed += len(key)
	return off
}

// unescapeInPlaceSafe reports whether the key's path escaping is identity
// (kept for future in-packet key referencing; the arena copy path does
// not require it).
func unescapeInPlaceSafe(raw string) bool {
	un, err := url.PathUnescape(raw)
	return err == nil && un == raw
}
