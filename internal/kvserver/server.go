package kvserver

import (
	"errors"
	"fmt"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/checksum"
	"packetstore/internal/core"
	"packetstore/internal/httpmsg"
	"packetstore/internal/kvproto"
	"packetstore/internal/pkt"
	"packetstore/internal/tcp"
)

// StealConfig tunes the work-stealing scheduler. With stealing enabled,
// an event loop whose own queue is empty picks the deepest backlogged
// peer, try-acquires that peer's shard ownership token, and runs one
// service cycle against the peer's connections on its own goroutine —
// so a skewed workload that piles onto one RSS queue is served by every
// idle core instead of collapsing onto the hot loop.
type StealConfig struct {
	// Enabled turns the steal path on. Off by default: with it off the
	// scheduler reduces exactly to the per-queue loops of the 1:1 design.
	Enabled bool
	// MinDepth is the minimum victim backlog (undrained ready events +
	// NIC ring occupancy + queued connections) worth stealing from.
	// Below it the steal costs more than the wait. Default 2.
	MinDepth int
	// Poll is the idle loop's steal-scan period. Default 200µs.
	Poll time.Duration
}

func (c *StealConfig) fill() {
	if c.MinDepth <= 0 {
		c.MinDepth = 2
	}
	if c.Poll <= 0 {
		c.Poll = 200 * time.Microsecond
	}
}

// Config tunes the server's overload and robustness behaviour. The zero
// value imposes no connection cap and no idle timeout (the original
// trusted-testbed behaviour).
type Config struct {
	// MaxConns caps connections per event loop. A connection accepted
	// beyond the cap is shed: it gets a 503 response and is closed
	// immediately, so one loop's state stays bounded no matter how many
	// clients pile on. 0 means unlimited.
	MaxConns int
	// IdleTimeout closes a connection that has not delivered a request
	// for this long — a stalled or wedged client cannot pin an event
	// loop's resources forever. 0 disables.
	IdleTimeout time.Duration
	// MaxBatch enables group commit: an event loop drains up to MaxBatch
	// readable connections per cycle, stages their PUTs, commits them
	// under one group flush+fence, and only then sends the whole burst's
	// responses — so every ack still follows its record's fence.
	// Adaptive cutoff: a burst of one is serviced exactly like the
	// unbatched path, so unloaded latency does not regress. 0 or 1
	// disables batching.
	MaxBatch int
	// Steal configures the work-stealing scheduler.
	Steal StealConfig
	// LoopNodes declares each event loop's NUMA node, indexed by RSS
	// queue: the loop's executor stamps the node onto whatever store it
	// drives so the PM simulator bills cross-socket lines at the remote
	// rate, and the steal policy prefers same-node victims. Nil falls
	// back to the NIC's per-queue interrupt nodes (nic.Config.QueueNodes),
	// which default to node 0 everywhere — the single-socket no-op.
	LoopNodes []int
	// Overload configures deadline-aware admission and the CoDel
	// run-queue controller (see OverloadConfig). Disabled by default.
	Overload OverloadConfig
}

func (c *Config) fill() {
	c.Steal.fill()
	c.Overload.fill(c.MaxBatch)
}

// Server is the storage server application. One event-loop goroutine per
// NIC RSS queue emulates the paper's busy-polling server cores. With a
// sharded packetstore, loop q is the *home* of the store shard whose PM
// partition backs queue q's receive pool, so in the common case
// zero-copy ingest never crosses cores: the NIC DMAs a flow's payloads
// straight into the partition of the shard that will index them
// (DESIGN.md §5.7). Home is a scheduling default, not ownership: the
// right to mutate a shard is the ShardedStore ownership token, and with
// Config.Steal enabled any idle loop may acquire a busy shard's token
// and serve its queue (DESIGN.md §5.11). With one queue and one shard
// this degenerates to the original single-core loop.
type Server struct {
	stk     *tcp.Stack
	lst     *tcp.Listener
	backend Backend
	sharded *core.ShardedStore // non-nil for packetstore backends

	cfg   Config
	loops []*loop
	done  chan struct{}
	ret   chan struct{}
	// numaOn caches whether a multi-node placement is installed on the
	// backing store: the per-cycle node stamp is skipped entirely when
	// single-node, keeping Nodes=1 a strict no-op on the hot path.
	numaOn bool
}

// sched is one loop's scheduling core: the table of connections homed on
// this loop's RSS queue plus the run queue of those that are readable
// and waiting for an executor, with the burst-formation claim flags on
// each connState. It is the only loop state a stealing peer touches, so
// it carries its own mutex; everything else on the loop stays
// single-goroutine.
type sched struct {
	mu    sync.Mutex
	conns map[*tcp.Conn]*connState
	runq  []*connState
	// qlen mirrors len(runq) so the steal path's victim scan reads a
	// single atomic instead of taking every peer's mu — depth sampling
	// at the steal poll rate must not contend with the hot loop's
	// scheduling path.
	qlen atomic.Int32
	// cd is the CoDel sojourn controller over this run queue
	// (Config.Overload); guarded by mu like the queue it watches, since
	// observations come from popBatch on home and stealer goroutines.
	cd codel
}

// loop is one event-loop "core": the home of the connections whose flows
// RSS to its queue and — in sharded mode — of the store shard backing
// that queue's receive pool. Scheduling state (sched) is shared with
// stealing peers under its mutex; stats, arenas and the executor scratch
// are touched only by this loop's goroutine.
type loop struct {
	srv   *Server
	q     int
	store *core.Store // home shard for the zero-copy paths; nil = copy only
	shard int         // index of store within srv.sharded (-1 if none)
	node  int         // NUMA node this loop's core runs on (Config.LoopNodes)
	stats statsCounters

	sched sched
	// wake is the cross-goroutine kick: a peer that reposted work onto
	// this loop's run queue (repost flag on a claimed connection) rings
	// it so the home loop re-drains without waiting for the next packet.
	wake chan struct{}
	// accept is the shared listener queue (set by Run); every loop drains
	// it, and drain/gather poll it mid-cycle so a saturated loop cannot
	// starve handshake completion (see drainAccepts).
	accept <-chan *tcp.Conn
	// theft is the victim-side single-thief guard: at most one peer
	// steals from this loop at a time. Beyond the first, thieves would
	// convoy on the shard token — and a loop parked in Acquire is a loop
	// not draining the shared accept channel.
	theft atomic.Bool
	// brownout mirrors the CoDel controller's dropping state outside
	// sched.mu: while set, batchMax returns the larger BrownoutBatch
	// (fence amortization when it buys the most), idle peers stop
	// stealing extra work onto this loop, and Server.Pressure reports
	// the loop as pressed so the Healer throttles background scrub.
	brownout atomic.Bool

	// arenas holds this goroutine's key arena per target shard. Steal
	// cycles execute on the stealer's goroutine, so arenas never need
	// locking — each executing loop appends keys into its own slot of
	// whatever shard it is currently serving.
	arenas map[int]*keyArena

	// burst is the reusable claimed-connection list for service cycles.
	burst []*connState
	// exec is the reusable executor scratch for cycles this goroutine
	// runs (against its own shard or a steal victim's).
	exec executor
}

// keyArena is one executing goroutine's private key-copy arena inside
// one shard's data area: small key copies land here so records can
// reference them (values are never copied). The (store, epoch) stamp
// detects an online rebuild of the target shard — the arena slot is then
// abandoned (its pin dropped; surviving records keep it alive) and a
// fresh slot allocated, so the goroutine never appends into a slot the
// rebuilt allocator may have repurposed.
type keyArena struct {
	store *core.Store
	epoch uint64
	off   int
	used  int
	unpin func()
}

// New creates a server listening on port, with one event loop per NIC
// RSS queue. If backend is PktStore or ShardedPktStore and a loop's
// receive pool is a store shard's PM pool, that loop's zero-copy paths
// activate automatically.
func New(stk *tcp.Stack, port uint16, backend Backend) (*Server, error) {
	return NewWithConfig(stk, port, backend, Config{})
}

// NewWithConfig is New with overload/robustness tuning.
func NewWithConfig(stk *tcp.Stack, port uint16, backend Backend, cfg Config) (*Server, error) {
	lst, err := stk.Listen(port)
	if err != nil {
		return nil, err
	}
	cfg.fill()
	s := &Server{
		stk:     stk,
		lst:     lst,
		backend: backend,
		cfg:     cfg,
		done:    make(chan struct{}),
		ret:     make(chan struct{}),
	}
	switch b := backend.(type) {
	case PktStore:
		s.sharded = core.WrapSharded(b.S)
	case ShardedPktStore:
		s.sharded = b.S
	}
	nq := stk.Queues()
	s.loops = make([]*loop, nq)
	for q := 0; q < nq; q++ {
		lp := &loop{
			srv:    s,
			q:      q,
			shard:  -1,
			node:   stk.NIC().NodeOfQueue(q),
			wake:   make(chan struct{}, 1),
			arenas: make(map[int]*keyArena),
		}
		if q < len(cfg.LoopNodes) {
			lp.node = cfg.LoopNodes[q]
		}
		lp.sched.conns = make(map[*tcp.Conn]*connState)
		lp.sched.cd = codel{target: cfg.Overload.Target, interval: cfg.Overload.Interval}
		if s.sharded != nil {
			pool := stk.NIC().RxPoolQ(q)
			for i := 0; i < s.sharded.Shards(); i++ {
				// Shard returns nil for a quarantined shard — its queue's
				// loop then runs copy-path only, like a DRAM-pool loop.
				if sh := s.sharded.Shard(i); sh != nil && sh.Pool() == pool {
					lp.store, lp.shard = sh, i
					break
				}
			}
		}
		s.loops[q] = lp
	}
	s.numaOn = s.sharded != nil && s.sharded.NUMANodes() > 1
	return s, nil
}

// Stats aggregates all loops' counters into one snapshot, plus the
// store's shard-health gauge.
func (s *Server) Stats() Stats {
	var out Stats
	for _, lp := range s.loops {
		out.merge(lp.stats.Snapshot())
	}
	if s.sharded != nil {
		out.ShardsDown = s.sharded.DownShards()
		st := s.sharded.Stats()
		out.ParityWrites = st.ParityWrites
		out.Reconstructions = st.Reconstructions
		out.UnrecoverableSlots = st.UnrecoverableSlots
		out.SlotsHeld = st.SlotsHeld
		out.FastGets = st.FastGets
		out.FastGetRetries = st.FastGetRetries
		out.FastGetFallbacks = st.FastGetFallbacks
	}
	return out
}

// LoopStats returns each event loop's own snapshot, indexed by RSS
// queue — the per-core view of a sharded deployment. QueueDepth is
// sampled live: it is the same backlog metric the steal path uses for
// victim selection, so persistent skew is directly observable here (and
// in GET /healthz).
func (s *Server) LoopStats() []Stats {
	out := make([]Stats, len(s.loops))
	for i, lp := range s.loops {
		out[i] = lp.stats.Snapshot()
		out[i].QueueDepth = lp.depth()
		out[i].Node = lp.node
		if lp.brownout.Load() {
			out[i].BrownoutLoops = 1
		}
	}
	return out
}

// Pressure is the overload signal exported to background work (the
// Healer's scrub budget, steal admission): the fraction of event loops
// currently in brownout, 0 when fully healthy through 1 when every
// loop's queue controller is shedding.
func (s *Server) Pressure() float64 {
	if len(s.loops) == 0 {
		return 0
	}
	n := 0
	for _, lp := range s.loops {
		if lp.brownout.Load() {
			n++
		}
	}
	return float64(n) / float64(len(s.loops))
}

// Run services the event loops until Close. The caller's goroutine runs
// loop 0; loops 1..n-1 get their own goroutines — the per-core serving
// threads of the sharded deployment. Every loop drains the shared
// accept channel: an accepted connection is registered by its home loop
// or simply dropped from the queue (its home loop admits it lazily on
// first readable), so handshakes complete even while one loop is
// saturated — under placement skew the hot loop is exactly the one with
// no select bandwidth to spare for accepts.
func (s *Server) Run() {
	defer close(s.ret)
	var wg sync.WaitGroup
	for _, lp := range s.loops {
		lp.accept = s.lst.AcceptCh()
	}
	for _, lp := range s.loops[1:] {
		wg.Add(1)
		go func(lp *loop) {
			defer wg.Done()
			lp.run()
		}(lp)
	}
	s.loops[0].run()
	wg.Wait()
}

// Close stops the server loops.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	<-s.ret
	s.lst.Close()
}

// run is one loop's event cycle.
func (lp *loop) run() {
	s := lp.srv
	rx := s.stk.ReadableQ(lp.q)
	var idleTick <-chan time.Time
	if s.cfg.IdleTimeout > 0 {
		period := s.cfg.IdleTimeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		t := time.NewTicker(period)
		defer t.Stop()
		idleTick = t.C
	}
	var stealTick <-chan time.Time
	if s.cfg.Steal.Enabled && len(s.loops) > 1 {
		t := time.NewTicker(s.cfg.Steal.Poll)
		defer t.Stop()
		stealTick = t.C
	}
	for {
		if !lp.drainAccepts() {
			return
		}
		select {
		case <-s.done:
			return
		case c, ok := <-lp.accept:
			if !ok {
				return
			}
			// Register only flows RSS-steered to this loop's queue; the
			// home loop picks its conns up lazily on first readable.
			if c.RxQueue() == lp.q {
				lp.register(c)
			}
		case c, ok := <-rx:
			if !ok {
				return
			}
			c.ClearReady()
			lp.noteReady(c)
			lp.drain(rx)
		case <-lp.wake:
			lp.drain(rx)
		case now := <-idleTick:
			lp.sweepIdle(now)
		case <-stealTick:
			// Bounded per tick: a deep victim backlog must not starve this
			// loop's own accepts and shutdown path.
			for i := 0; i < stealRounds && lp.trySteal(); i++ {
			}
		}
	}
}

// register admits an accepted connection to this loop's table without
// queueing it (it becomes runnable on its first readable event), unless
// the loop is at its MaxConns cap.
func (lp *loop) register(c *tcp.Conn) {
	lp.sched.mu.Lock()
	if lp.sched.conns[c] != nil {
		lp.sched.mu.Unlock()
		return
	}
	if max := lp.srv.cfg.MaxConns; max > 0 && len(lp.sched.conns) >= max {
		lp.sched.mu.Unlock()
		lp.shed(c)
		return
	}
	lp.sched.conns[c] = newConnState(c)
	lp.sched.mu.Unlock()
}

// noteReady records a readable event for c: the connection is admitted
// (registered on first contact, or shed at the MaxConns cap) and pushed
// onto the run queue — unless an executor currently holds the claim, in
// which case it is marked for reposting when the claim releases. Safe
// from any goroutine; stealers use it to queue the events they pulled
// off the victim's ready channel.
func (lp *loop) noteReady(c *tcp.Conn) {
	// With overload control on, anchor the queue-entry stamp at the
	// arrival time persisted in the oldest pending packet buffer rather
	// than at this wakeup: ready-channel and scheduler delays upstream of
	// the run queue are queueing too, and anchoring at wakeup would hide
	// them from the CoDel sojourn and the request deadline.
	var arrival time.Time
	if lp.srv.cfg.Overload.Enabled {
		arrival = c.OldestRxTime()
	}
	lp.sched.mu.Lock()
	st := lp.sched.conns[c]
	if st == nil {
		if max := lp.srv.cfg.MaxConns; max > 0 && len(lp.sched.conns) >= max {
			lp.sched.mu.Unlock()
			lp.shed(c)
			return
		}
		st = newConnState(c)
		lp.sched.conns[c] = st
	}
	if st.claimed {
		st.repost = true
	} else if !st.queued && !st.dead {
		st.queued = true
		st.readyAt = time.Now()
		if !arrival.IsZero() && arrival.Before(st.readyAt) {
			st.readyAt = arrival
		}
		lp.sched.runq = append(lp.sched.runq, st)
		lp.sched.qlen.Store(int32(len(lp.sched.runq)))
	}
	lp.sched.mu.Unlock()
}

// popBatch claims up to max runnable connections for an executor,
// appending them to out. A claimed connection is untouchable by every
// other goroutine until doneWith returns it.
//
// With Config.Overload enabled this is also the CoDel observation
// point: each claim's run-queue sojourn feeds the controller, and when
// the law says shed, the *newest* queued connection is claimed into the
// batch with its shed503 flag set — the executor answers its pending
// requests with 503+Retry-After-Ms instead of executing them. Shedding
// newest-over-oldest keeps the requests that have already waited (and
// whose clients have already invested their budget) while pushing back
// on fresh arrivals.
func (lp *loop) popBatch(out []*connState, max int) []*connState {
	overload := lp.srv.cfg.Overload.Enabled
	var now time.Time
	var minSojourn, sumSojourn time.Duration
	lp.sched.mu.Lock()
	q := lp.sched.runq
	n := 0
	for n < len(q) && len(out) < max {
		st := q[n]
		n++
		st.queued = false
		if st.claimed || st.dead {
			continue
		}
		st.claimed = true
		out = append(out, st)
		if overload {
			if now.IsZero() {
				now = time.Now()
				minSojourn = now.Sub(st.readyAt)
			} else if d := now.Sub(st.readyAt); d < minSojourn {
				minSojourn = d
			}
			sumSojourn += now.Sub(st.readyAt)
		}
	}
	// Shift the consumed prefix out, nilling the vacated tail so the
	// backing array does not retain dead connStates.
	copy(q, q[n:])
	for i := len(q) - n; i < len(q); i++ {
		q[i] = nil
	}
	q = q[:len(q)-n]
	if overload && !now.IsZero() {
		lp.stats.queueDelayNanos.Add(int64(sumSojourn))
		if lp.sched.cd.observe(minSojourn, now) {
			// Shed the newest queued connection (the run-queue tail).
			for len(q) > 0 {
				st := q[len(q)-1]
				q[len(q)-1] = nil
				q = q[:len(q)-1]
				st.queued = false
				if st.claimed || st.dead {
					continue
				}
				st.claimed = true
				st.shed503 = true
				out = append(out, st)
				lp.stats.codelSheds.Add(1)
				break
			}
		}
		if was := lp.brownout.Load(); was != lp.sched.cd.dropping {
			lp.brownout.Store(lp.sched.cd.dropping)
			if !was {
				lp.stats.brownouts.Add(1)
			}
		}
	}
	lp.sched.runq = q
	lp.sched.qlen.Store(int32(len(lp.sched.runq)))
	lp.sched.mu.Unlock()
	return out
}

// doneWith releases an executor's claims. A readable event that arrived
// during a claim (repost) requeues that connection and rings the home
// loop's wake channel, so data that raced with a steal is drained even
// if no further packet ever arrives on the flow.
func (lp *loop) doneWith(batch []*connState) {
	kick := false
	lp.sched.mu.Lock()
	for _, st := range batch {
		st.claimed = false
		st.shed503 = false
		if st.repost {
			st.repost = false
			if !st.dead && !st.queued {
				st.queued = true
				lp.sched.runq = append(lp.sched.runq, st)
				kick = true
			}
		}
	}
	lp.sched.qlen.Store(int32(len(lp.sched.runq)))
	lp.sched.mu.Unlock()
	if kick {
		lp.kick()
	}
}

// queuedLen reads the run-queue depth gauge — lock-free, so peers'
// victim scans cost the hot loop nothing.
func (lp *loop) queuedLen() int {
	return int(lp.sched.qlen.Load())
}

// depth is the backlog metric of the steal path's victim selection:
// undrained stack ready events + NIC rx ring occupancy + queued
// run-queue connections on this loop.
func (lp *loop) depth() int {
	s := lp.srv
	return s.stk.ReadyLenQ(lp.q) + s.stk.NIC().RxQueueLen(lp.q) + lp.queuedLen()
}

// batchMax is the claim size for one service cycle. In brownout the
// group-commit burst is forced up to BrownoutBatch: under pressure a
// bigger group amortizes its one fence over more PUTs, which is exactly
// when that trade is worth the added per-request latency.
func (lp *loop) batchMax() int {
	m := lp.srv.cfg.MaxBatch
	if m > 1 && lp.brownout.Load() {
		if b := lp.srv.cfg.Overload.BrownoutBatch; b > m {
			return b
		}
	}
	if m > 1 {
		return m
	}
	return 1
}

// drainCycles bounds the service cycles one drain call may run, and
// stealRounds bounds the steal cycles one tick may run, before control
// returns to the loop's select. Without the bound a continuously-busy
// run queue (sustained load, or a retransmission storm feeding events
// faster than the two-yield gather window) starves accepts and the
// shutdown path forever — the select is the only place they are heard.
const (
	drainCycles = 8
	stealRounds = 4
)

// drain runs service cycles on this loop's own run queue until it is
// empty or the cycle budget runs out; in the latter case it re-kicks the
// wake channel so the select re-enters drain after giving accepts,
// shutdown, and ticks a chance. With batching enabled each cycle first
// gathers more readable events via a bounded busy-poll, preserving the
// group-commit burst formation of the pre-scheduler design.
func (lp *loop) drain(rx <-chan *tcp.Conn) {
	for i := 0; i < drainCycles; i++ {
		select {
		case <-lp.srv.done:
			return
		default:
		}
		lp.drainAccepts()
		if lp.srv.cfg.MaxBatch > 1 {
			lp.gather(rx)
		}
		lp.burst = lp.popBatch(lp.burst[:0], lp.batchMax())
		if len(lp.burst) == 0 {
			return
		}
		x := lp.executorFor(lp)
		x.runCycle(lp.burst)
		lp.doneWith(lp.burst)
	}
	lp.kick()
}

// kick rings the loop's wake channel (non-blocking) so its select runs
// drain again: used when claims release with reposted events pending and
// when drain exhausts its cycle budget with the run queue non-empty.
func (lp *loop) kick() {
	select {
	case lp.wake <- struct{}{}:
	default:
	}
}

// drainAccepts empties the shared accept queue without blocking; it
// returns false when the listener has closed. Registering is a map
// insert (or a drop, for another loop's flow) — far cheaper than a
// service cycle — yet the run select picks among ready cases at random,
// so a loop saturated enough to re-enter drain through its own wake
// channel hears accepts rarely; worse, on a single CPU gather's
// scheduler yields are exactly when dialing clients make progress, so
// handshakes complete fastest while every loop is mid-cycle. Unchecked,
// the listener backlog overflows and resets connections whose dials
// already succeeded. drain and gather therefore poll this between
// cycles, bounding the queue by one service cycle.
func (lp *loop) drainAccepts() (open bool) {
	for {
		select {
		case c, ok := <-lp.accept:
			if !ok {
				lp.accept = nil // closed: a nil channel never selects
				return false
			}
			if c.RxQueue() == lp.q {
				lp.register(c)
			}
		default:
			return true
		}
	}
}

// gather is the burst-formation busy-poll: an empty ready queue does not
// mean no work is coming — the NIC and stack pipelines may be
// mid-delivery (on a single core the scheduler interleaves them with
// this loop at fine grain, so the queue rarely holds more than one event
// at the instant we look). Yield a few times to let deliveries land; two
// consecutive empty polls means the batch has genuinely drained, so an
// unloaded connection pays at most two scheduler yields. The overall
// poll budget keeps a stream of events that never grows the run queue
// (retransmissions for claimed or dead connections) from pinning the
// loop here.
func (lp *loop) gather(rx <-chan *tcp.Conn) {
	idle := 0
	target := lp.batchMax()
	budget := 4 * target
	for polls := 0; lp.queuedLen() < target && idle < 2 && polls < budget; polls++ {
		select {
		case c, ok := <-rx:
			if !ok {
				return
			}
			idle = 0
			c.ClearReady()
			lp.noteReady(c)
		default:
			idle++
			lp.drainAccepts()
			runtime.Gosched()
		}
	}
}

// trySteal runs one steal round: pick the deepest backlogged peer, pull
// its undrained ready events into its run queue, claim a batch, and run
// one service cycle on this goroutine under the victim shard's epoch
// snapshot — then hand everything back. Returns true if a cycle ran;
// the caller loops until the backlog is gone.
//
// Connections, not the token, are claimed up front: the thief parses
// and assembles its stolen batch while the victim is still committing
// its own, and only the first staged mutation blocks on Acquire — a
// wait bounded by one in-flight commit, which an idle loop can afford.
// (A TryAcquire admission gate was tried first; with the victim
// continuously mid-cycle its token-free windows are rarely sampled, so
// a gated thief starves even as the victim's queue grows.) A round that
// found a deep victim but no claimable connection counts as a
// StealAbort — the backlog was contended away or is all mid-service.
// pickVictim is the distance-aware victim selection: every PM line a
// stolen cycle touches lives in the victim's partition, so a
// cross-socket steal pays the remote rate per line. Same-node victims
// are drained first; only when no same-node backlog clears minDepth
// does the thief go cross-node — balance still beats locality once the
// local sockets are level. depth is a parameter so the policy is
// testable against fabricated backlogs.
func pickVictim(lp *loop, loops []*loop, minDepth int, depth func(*loop) int) *loop {
	var victim *loop
	best := minDepth
	for _, v := range loops {
		if v == lp || v.shard < 0 || v.node != lp.node {
			continue
		}
		if d := depth(v); d >= best {
			best, victim = d, v
		}
	}
	if victim == nil {
		best = minDepth
		for _, v := range loops {
			if v == lp || v.shard < 0 || v.node == lp.node {
				continue
			}
			if d := depth(v); d >= best {
				best, victim = d, v
			}
		}
	}
	return victim
}

func (lp *loop) trySteal() bool {
	s := lp.srv
	if s.sharded == nil || !s.cfg.Steal.Enabled {
		return false
	}
	// Steal only from genuine idleness — the local backlog has priority.
	// A loop still in brownout is not idle either: its controller has
	// not yet proven the standing queue drained, so taking on a peer's
	// work would feed the very pressure the brownout is shedding.
	if lp.queuedLen() > 0 || s.stk.ReadyLenQ(lp.q) > 0 || lp.brownout.Load() {
		return false
	}
	victim := pickVictim(lp, s.loops, s.cfg.Steal.MinDepth, (*loop).depth)
	if victim == nil {
		return false
	}
	if !victim.theft.CompareAndSwap(false, true) {
		return false // another thief is already on this victim
	}
	defer victim.theft.Store(false)
	// Drain the victim's ready channel into its run queue — channel
	// receives are safe from any goroutine, and ClearReady re-arms the
	// edge trigger exactly as the home loop would.
	vrx := s.stk.ReadableQ(victim.q)
pull:
	for {
		select {
		case c, ok := <-vrx:
			if !ok {
				break pull
			}
			c.ClearReady()
			victim.noteReady(c)
		default:
			break pull
		}
	}
	lp.burst = victim.popBatch(lp.burst[:0], lp.batchMax())
	if len(lp.burst) == 0 {
		lp.stats.stealAborts.Add(1)
		return false
	}
	x := lp.executorFor(victim)
	x.runCycle(lp.burst)
	lp.stats.steals.Add(1)
	lp.stats.stolenOps.Add(x.ops)
	if victim.node != lp.node {
		lp.stats.crossSteals.Add(1)
	}
	victim.doneWith(lp.burst)
	return true
}

// shed rejects a connection at the MaxConns cap: the client gets an
// immediate 503 (with the Retry-After-Ms pacing hint) and the
// connection closes, keeping per-loop state bounded under connection
// floods.
func (lp *loop) shed(c *tcp.Conn) {
	lp.stats.sheds.Add(1)
	resp := httpmsg.AppendResponseRetryAfter(nil, 503, 0, lp.srv.cfg.Overload.RetryAfter.Milliseconds())
	c.Write(resp)
	c.Close()
}

// sweepIdle closes connections that have not delivered a request within
// the idle timeout, so a stalled client cannot wedge the loop's
// resources. Claimed connections are skipped — an executor is servicing
// them right now, so they are not idle.
func (lp *loop) sweepIdle(now time.Time) {
	timeout := lp.srv.cfg.IdleTimeout
	var victims []*connState
	lp.sched.mu.Lock()
	for _, st := range lp.sched.conns {
		if st.claimed || now.Sub(st.lastActive) <= timeout {
			continue
		}
		st.claimed = true // reserve against a concurrent stealer's claim
		victims = append(victims, st)
	}
	lp.sched.mu.Unlock()
	for _, st := range victims {
		lp.stats.idleClosed.Add(1)
		lp.reap(st)
	}
}

// reap tears one of this loop's connections down and releases anything
// its half-assembled request adopted. The caller must hold the claim (an
// executor) or have reserved the connection under sched.mu (idle sweep),
// so no other goroutine touches st concurrently.
func (lp *loop) reap(st *connState) {
	if st.cur != nil {
		for _, base := range st.cur.adopted {
			lp.store.ReleaseUnused(base)
		}
		st.cur = nil
	}
	st.c.Close()
	lp.sched.mu.Lock()
	st.dead = true
	delete(lp.sched.conns, st.c)
	lp.sched.mu.Unlock()
}

type connState struct {
	c      *tcp.Conn
	parser *httpmsg.RequestParser
	cur    *pendingReq
	resp   []byte
	dead   bool
	// Scheduling flags, guarded by the home loop's sched.mu. queued:
	// sitting in the run queue. claimed: an executor (home or stealing)
	// holds the connection — nobody else may touch it. repost: a
	// readable event arrived while claimed; requeue on release.
	queued, claimed, repost bool
	// shed503 marks a connection claimed by a CoDel shed decision: the
	// executor parses its pending requests (cheap) but answers each
	// with 503+Retry-After-Ms instead of executing (the expensive
	// part), keeping the HTTP pipeline synchronized. Set under sched.mu
	// at claim time, read by the claiming executor, cleared at release.
	shed503 bool
	// readyAt is when the connection last entered the run queue — with
	// overload control on, backdated to the arrival stamp of its oldest
	// pending packet, so delivery delays upstream of the queue count.
	// Set under sched.mu by noteReady: the base of the CoDel sojourn
	// observation and a fallback anchor for the request deadline (+ client
	// budget).
	readyAt time.Time
	// lastActive is the last time the connection delivered bytes; the
	// idle sweep closes connections stalled past Config.IdleTimeout.
	lastActive time.Time
}

// pendingReq is a request whose body may still be arriving.
type pendingReq struct {
	req      kvproto.Request
	parseErr error
	// deadline is when the client's latency budget lapses (readyAt +
	// X-Budget-Us); zero when the client sent no budget or overload
	// control is off. A request past it at dispatch is answered 503
	// without executing — the client has already given up on it.
	deadline time.Time
	// Zero-copy PUT assembly.
	keyOff int
	exts   []core.Extent
	sumsOK bool
	hwtime time.Time
	vlen   int
	// Copy-path body.
	body []byte
	// adopted data-slot bases whose release is deferred until this
	// request resolves (body spans multiple packets).
	adopted []int
}

func newConnState(c *tcp.Conn) *connState {
	return &connState{c: c, parser: httpmsg.NewRequestParser(0), lastActive: time.Now()}
}

// executor runs service cycles against one target loop's connections and
// shard. lp is the executing loop — stats and key arenas attribute to
// it; tgt is the loop whose claimed connections and shard are served. In
// the common case lp == tgt (a loop serving its own queue); in a steal
// they differ, and the executor enters holding tgt's shard ownership
// token. Either way the mutation-path invariants are carried by the
// token and the epoch snapshot, not by which goroutine is driving.
type executor struct {
	srv      *Server
	lp       *loop // executing loop: stats, arenas
	tgt      *loop // target loop: connections, shard
	store    *core.Store
	shard    int
	stealing bool

	// token records whether this executor holds the target shard's
	// ownership token (ShardedStore.Acquire) — the exclusive right to
	// stage mutations and group-commit the shard. The home path takes it
	// lazily at the first zero-copy PUT and commitGroup releases it, so
	// read-only cycles never serialise against a concurrent owner.
	token bool

	// cycleEpoch is the target shard's rebuild epoch (core.Store.Epoch)
	// snapshotted when the current service cycle began, before any PUT
	// was staged. cycleBad marks the cycle poisoned: an online rebuild
	// dropped staged puts whose acks are already buffered, so commitGroup
	// failed its post-commit check and every response buffered this
	// cycle is discarded (the connections close instead of acking).
	cycleEpoch uint64
	cycleBad   bool
	// ops counts requests this executor instance dispatched — the
	// StolenOps accounting for steal cycles.
	ops uint64
	// stagedOps counts puts staged into the shard's group this cycle.
	// Zero means there is no group to commit: commitGroup then skips the
	// store's Commit round trip (and the acked-write gate re-check, which
	// only protects staged acks), so a GET-only cycle never takes the
	// shard mutex or the ownership token — reads stop queueing behind a
	// stolen shard's drain.
	stagedOps int
}

// executorFor resets this loop's executor scratch for a cycle against
// tgt (itself, or a steal victim).
func (lp *loop) executorFor(tgt *loop) *executor {
	x := &lp.exec
	*x = executor{
		srv:      lp.srv,
		lp:       lp,
		tgt:      tgt,
		store:    tgt.store,
		shard:    tgt.shard,
		stealing: lp != tgt,
	}
	return x
}

// ensureToken acquires the target shard's ownership token if this
// executor does not already hold it. Blocking here is fine: the holder
// is mid-cycle and cycles are bounded by MaxBatch.
func (x *executor) ensureToken() {
	if x.token || x.srv.sharded == nil || x.shard < 0 {
		return
	}
	x.srv.sharded.Acquire(x.shard)
	x.token = true
}

// releaseToken hands the shard back. Idempotent — commitGroup releases
// mid-cycle and the cycle end releases again as a safety net.
func (x *executor) releaseToken() {
	if x.token {
		x.srv.sharded.Release(x.shard)
		x.token = false
	}
}

// runCycle services one claimed batch. A batch of one (or batching
// disabled) takes the unbatched path — immediate per-op commits and
// responses, the adaptive cutoff that keeps unloaded latency flat.
// Larger batches run the group-commit protocol: stage every zero-copy
// PUT, one flush+fence for the whole group, then flush all the acks.
func (x *executor) runCycle(batch []*connState) {
	if len(batch) == 1 || x.srv.cfg.MaxBatch <= 1 {
		for _, st := range batch {
			x.service(st)
		}
		return
	}
	x.beginCycle()
	for _, st := range batch {
		x.serviceConn(st, true)
	}
	x.commitGroup()
	x.lp.stats.groupCommits.Add(1)
	x.lp.stats.groupedConns.Add(uint64(len(batch)))
	for _, st := range batch {
		x.finishConn(st)
	}
	x.releaseToken()
}

// service drains all pending packet buffers on one connection and
// responds immediately — the unbatched cycle.
func (x *executor) service(st *connState) {
	x.beginCycle()
	x.serviceConn(st, false)
	x.finishConn(st)
	x.releaseToken()
}

// beginCycle arms the acked-write gate for one service cycle: it
// snapshots the target shard's rebuild epoch before anything is staged,
// so commitGroup can later prove the staged records survived to their
// fence.
func (x *executor) beginCycle() {
	x.cycleBad = false
	if x.store != nil {
		x.cycleEpoch = x.store.Epoch()
		if x.srv.numaOn {
			// Declare which socket drives this cycle: the home loop's own
			// node, or the thief's on a stolen cycle — every PM charge the
			// cycle issues bills cross-socket lines at the remote rate.
			x.store.SetNUMANode(x.lp.node)
		}
	}
}

// servingSelf reports whether the target shard currently serves through
// the very Store object this executor's zero-copy paths use.
// ServingStore resolves the serving check and the store identity under
// one lock: a mismatch means the shard is down, rebuilding, or was
// replaced by a rebuild. Both the zero-copy PUT and GET paths gate on
// it, so a quarantined or mid-rebuild shard is never read or written
// through the stale store pointer.
func (x *executor) servingSelf() bool {
	st, err := x.srv.sharded.ServingStore(x.shard)
	return err == nil && st == x.store
}

// commitGroup commits the target shard's staged group, then verifies the
// cycle's buffered acks are safe to flush: the shard must still be
// serving through the same Store object and rebuild epoch the cycle
// started with. A mismatch means an online rebuild (Store.Rehydrate)
// may have dropped staged puts whose 200s are already buffered — the
// cycle is poisoned (cycleBad) and its connections abort instead of
// acking writes that were never made durable. The ownership token is
// released here: the staged group it protected is resolved either way.
func (x *executor) commitGroup() bool {
	if x.store == nil {
		return true
	}
	if x.stagedOps == 0 {
		// Nothing staged this cycle — there is no group to commit and no
		// buffered staged-PUT ack for the epoch gate to protect. Skip the
		// Commit round trip and the Epoch read (both take the shard
		// mutex, which would put every lock-free GET of a read-only
		// cycle right back behind the write path). The serving check
		// stays: it resolves at the shard map, and a cycle whose shard
		// quarantined or was replaced mid-flight must not flush its
		// buffered responses as if the shard were healthy.
		if !x.cycleBad && !x.servingSelf() {
			x.cycleBad = true
		}
		x.releaseToken()
		return !x.cycleBad
	}
	x.stagedOps = 0
	x.store.Commit()
	if !x.cycleBad && (!x.servingSelf() || x.store.Epoch() != x.cycleEpoch) {
		x.cycleBad = true
	}
	x.releaseToken()
	return !x.cycleBad
}

// serviceConn drains one connection's pending packet buffers. With
// staged set, zero-copy PUTs stage into the shard's group commit and
// their responses stay buffered until the caller commits and flushes.
func (x *executor) serviceConn(st *connState, staged bool) {
	if st.dead {
		return
	}
	t0 := time.Now()
	st.lastActive = t0
	defer func() { x.lp.stats.busyNanos.Add(int64(time.Since(t0))) }()
	for {
		bufs := st.c.TryReadBufs()
		if bufs == nil {
			break
		}
		for _, b := range bufs {
			x.lp.stats.bytesIn.Add(uint64(b.Len()))
			x.handleBuf(st, b, staged)
		}
	}
}

// finishConn sends a connection's buffered responses and reaps it on
// death, EOF or error. In a poisoned cycle (an online rebuild dropped
// staged puts whose acks are buffered) the responses are discarded and
// the connection fails instead.
func (x *executor) finishConn(st *connState) {
	if x.cycleBad {
		x.abortConn(st)
		return
	}
	x.flushResp(st)
	if st.c.EOF() || st.c.Err() != nil {
		x.tgt.reap(st)
	}
}

// abortConn fails a connection whose buffered responses can no longer
// be trusted: the bytes are discarded and the connection closes, so the
// client sees a reset — a retryable transient per kvclient.Transient —
// instead of an ack for a write that may not exist.
func (x *executor) abortConn(st *connState) {
	st.resp = st.resp[:0]
	x.lp.stats.ackAborts.Add(1)
	x.tgt.reap(st)
}

// bodySpan is a byte range of one packet payload belonging to a request
// body.
type bodySpan struct {
	off, n int
	pr     *pendingReq
}

// handleBuf processes one received packet buffer.
func (x *executor) handleBuf(st *connState, b *pkt.Buf, staged bool) {
	p := b.Bytes()
	zc := x.store != nil && b.PMOff() >= 0
	if zc && x.srv.sharded != nil && x.srv.sharded.ShardByOff(b.PMOff()) != x.shard {
		// The packet landed in a PM partition other than the target
		// shard's — the executing path's rx pool is not the shard's pool.
		// Adopting it would hand one shard's data slot to another shard's
		// allocator, so fall back to the copy path and count it.
		zc = false
		x.lp.stats.zcFallbacks.Add(1)
	}
	t0 := time.Now()

	var spans []bodySpan
	var completed []*pendingReq
	pos := 0
	for pos < len(p) {
		if st.cur == nil {
			st.parser.Reset()
			st.cur = &pendingReq{keyOff: -1}
		}
		res := st.parser.Feed(p[pos:])
		if res.Err != nil {
			x.protocolError(st, res.Err)
			b.Release()
			return
		}
		if res.HeaderDone {
			x.beginRequest(st, b, zc)
		}
		if res.Body.Len > 0 {
			spans = append(spans, bodySpan{off: pos + res.Body.Off, n: res.Body.Len, pr: st.cur})
		}
		pos += res.Consumed
		if res.Done {
			completed = append(completed, st.cur)
			st.cur = nil
		}
		if res.Consumed == 0 && !res.Done {
			// Defensive: the parser always progresses, but never spin.
			x.protocolError(st, fmt.Errorf("kvserver: parser stalled"))
			b.Release()
			return
		}
	}
	x.lp.stats.parseNanos.Add(int64(time.Since(t0)))

	adoptedBase := -1
	if len(spans) > 0 {
		// A span stores zero-copy only if its PUT's key hashes to the
		// target shard (keyOff >= 0); misaligned PUTs fall back to the
		// copy path so correctness never depends on client alignment.
		anyZC := false
		for _, sp := range spans {
			if sp.pr.req.Op != kvproto.OpPut {
				continue
			}
			if sp.pr.keyOff >= 0 {
				anyZC = true
			} else {
				sp.pr.body = append(sp.pr.body, p[sp.off:sp.off+sp.n]...)
			}
		}
		if anyZC {
			adoptedBase = x.store.AdoptBuf(b)
			x.attachSpansZeroCopy(b, p, spans)
		}
	}

	for _, pr := range completed {
		x.dispatch(st, pr, staged)
	}
	b.Release()
	if adoptedBase >= 0 {
		if st.cur != nil {
			// A request is still assembling across packets: its extents
			// may reference this slot, so defer the release until it
			// resolves.
			st.cur.adopted = append(st.cur.adopted, adoptedBase)
		} else {
			x.store.ReleaseUnused(adoptedBase)
		}
	}
}

// beginRequest parses the request line once headers complete.
func (x *executor) beginRequest(st *connState, b *pkt.Buf, zc bool) {
	hreq := st.parser.Request()
	req, err := kvproto.Parse(hreq.Method, hreq.Path)
	pr := st.cur
	pr.vlen = hreq.ContentLength
	pr.hwtime = b.HWTime
	if err != nil {
		pr.parseErr = err
		return
	}
	pr.req = req
	if hreq.BudgetUs > 0 && x.srv.cfg.Overload.Enabled {
		pr.req.Budget = time.Duration(hreq.BudgetUs) * time.Microsecond
		// Anchor at the arrival stamp persisted in the packet buffer that
		// carried this request's header (NIC hardware stamp when
		// offloaded, stack software stamp otherwise): the budget then
		// covers every wait the request has suffered since it reached the
		// host — socket queues, ready channels, run queue — not just the
		// parse-to-dispatch gap.
		anchor := b.HWTime
		if anchor.IsZero() {
			anchor = b.Time
		}
		if anchor.IsZero() {
			anchor = st.readyAt
		}
		if anchor.IsZero() {
			anchor = time.Now()
		}
		pr.deadline = anchor.Add(pr.req.Budget)
	}
	if req.Op == kvproto.OpPut && zc && !st.shed503 && x.srv.sharded.ShardFor(req.Key) == x.shard {
		// The zero-copy path writes through the executor's direct store
		// pointer, so it must not ingest into a shard the sharded router
		// has quarantined — the copy path routes through the router, which
		// answers ErrShardDown (503).
		if !x.servingSelf() {
			return
		}
		// Copy the (small) key into the arena so the record can
		// reference it; values stay in place.
		off := x.allocKey(req.Key)
		if off < 0 {
			pr.parseErr = core.ErrFull
			return
		}
		pr.keyOff = off
		pr.sumsOK = true
	}
}

// attachSpansZeroCopy turns packet body spans into store extents,
// deriving the largest span's checksum from the NIC's whole-payload sum
// (everything else is summed in software — those are header-sized
// leftovers). Spans of misaligned PUTs participate in the checksum
// accounting but get no extents (their bodies were copied).
func (x *executor) attachSpansZeroCopy(b *pkt.Buf, p []byte, spans []bodySpan) {
	pmBase := b.PMOff()
	useNIC := b.CsumStatus == pkt.CsumComplete
	largest := -1
	if useNIC {
		for i, sp := range spans {
			if largest < 0 || sp.n > spans[largest].n {
				largest = i
			}
		}
	}
	var others uint16 // ones-complement sum of all contributions except the largest span
	if useNIC {
		// Contribution of every byte range outside the largest span, at
		// its payload parity.
		addRange := func(off, n int) {
			if n <= 0 {
				return
			}
			sum := checksum.Fold(checksum.Partial(0, p[off:off+n]))
			if off%2 == 1 {
				sum = checksum.Swap16(sum)
			}
			others = checksum.Fold(checksum.Combine(uint32(others), uint32(sum)))
		}
		prev := 0
		for i, sp := range spans {
			addRange(prev, sp.off-prev) // inter-span (header) bytes
			if i != largest {
				addRange(sp.off, sp.n)
			}
			prev = sp.off + sp.n
		}
		addRange(prev, len(p)-prev)
	}
	for i, sp := range spans {
		var sum uint32
		if useNIC && i == largest {
			contrib := checksum.Sub16(checksum.Fold(b.Csum), others)
			if sp.off%2 == 1 {
				contrib = checksum.Swap16(contrib)
			}
			sum = uint32(contrib)
			x.lp.stats.derivedSums.Add(1)
		} else {
			sum = checksum.Partial(0, p[sp.off:sp.off+sp.n])
			x.lp.stats.softwareSums.Add(1)
		}
		if sp.pr.req.Op != kvproto.OpPut || sp.pr.keyOff < 0 {
			continue // body on a non-PUT or a copy-path PUT: no extents
		}
		if !useNIC {
			// Sum computed in software either way; still valid.
			sp.pr.sumsOK = sp.pr.sumsOK && true
		}
		sp.pr.exts = append(sp.pr.exts, core.Extent{
			Off: pmBase + sp.off, Len: sp.n, Sum: sum,
		})
	}
}

// statusForErr maps a backend error to the KV protocol status: a
// quarantined shard is 503 (the rest of the store still serves; retry
// elsewhere is pointless, but the client learns it is not at fault),
// exhaustion is 507, an oversized key 400, anything else 500.
func statusForErr(err error) int {
	switch {
	case errors.Is(err, core.ErrShardDown):
		return 503
	case errors.Is(err, core.ErrFull):
		return 507
	case errors.Is(err, core.ErrKeyTooLong):
		return 400
	default:
		return 500
	}
}

// dispatch executes one completed request and queues its response.
// With staged set (group-commit burst), zero-copy PUTs stage into the
// target shard's pending group instead of committing per-op; every other
// operation first commits the pending group, both as a read barrier and
// because ops like zeroCopyGet flush buffered responses — no staged
// PUT's ack may escape before its fence.
func (x *executor) dispatch(st *connState, pr *pendingReq, staged bool) {
	s := x.srv
	x.lp.stats.requests.Add(1)
	x.ops++
	defer func() {
		for _, base := range pr.adopted {
			x.store.ReleaseUnused(base)
		}
	}()
	if pr.parseErr != nil {
		x.lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
		return
	}
	if st.shed503 {
		// CoDel shed: the queue controller decided this connection's
		// pending requests push the standing queue past target. Parsing
		// kept the pipeline synchronized; the answer is a 503 with the
		// pacing hint, and none of the expensive work (staging, fences,
		// store reads) happens.
		st.resp = httpmsg.AppendResponseRetryAfter(st.resp, 503, 0,
			x.srv.cfg.Overload.RetryAfter.Milliseconds())
		return
	}
	if !pr.deadline.IsZero() && time.Now().After(pr.deadline) {
		// Doomed-work elimination: the client's budget lapsed while the
		// request waited — it has already timed out or retried, so
		// executing now would burn capacity on an answer nobody reads.
		x.lp.stats.expired.Add(1)
		st.resp = httpmsg.AppendResponseRetryAfter(st.resp, 503, 0,
			x.srv.cfg.Overload.RetryAfter.Milliseconds())
		return
	}
	if staged && pr.req.Op != kvproto.OpPut && !x.commitGroup() {
		// Poisoned cycle: build no response — every connection in this
		// burst aborts unflushed at cycle end, so no buffered staged-PUT
		// ack (now unbacked by a durable record) can escape.
		return
	}
	switch pr.req.Op {
	case kvproto.OpPut:
		x.lp.stats.puts.Add(1)
		var err error
		if pr.keyOff >= 0 {
			x.lp.stats.zcPuts.Add(1)
			// Staging is the mutation the ownership token serialises:
			// take it before touching the shard's staged group. The
			// unbatched op commits internally, so its token window closes
			// with the call; a staged op holds it to commitGroup.
			x.ensureToken()
			opt := core.PutOptions{
				Extents: pr.exts, KeyOff: pr.keyOff,
				HasSum: pr.sumsOK, HWTime: pr.hwtime,
			}
			if staged {
				err = x.store.PutExtentsStaged(pr.req.Key, pr.vlen, opt)
				if err == nil {
					x.stagedOps++
				}
			} else {
				err = x.store.PutExtents(pr.req.Key, pr.vlen, opt)
				x.releaseToken()
			}
		} else {
			// Copy-path PUTs may route to a shard this executor does not
			// commit — they stay per-op so their ack never precedes their
			// fence.
			err = s.backend.Put(pr.req.Key, pr.body)
		}
		if err != nil {
			x.lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
			return
		}
		st.resp = httpmsg.AppendResponse(st.resp, 200, 0)
	case kvproto.OpGet:
		x.lp.stats.gets.Add(1)
		if x.store != nil && x.servingSelf() {
			x.zeroCopyGet(st, pr.req.Key)
			return
		}
		// Target shard down, rebuilding or replaced: fall back to the
		// backend router, which answers ErrShardDown (503) for a
		// quarantined keyspace instead of reading through the stale
		// store pointer.
		val, ok, err := s.backend.Get(pr.req.Key)
		switch {
		case err != nil:
			x.lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
		case !ok:
			st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		default:
			st.resp = httpmsg.AppendResponse(st.resp, 200, len(val))
			st.resp = append(st.resp, val...)
		}
	case kvproto.OpDelete:
		x.lp.stats.deletes.Add(1)
		found, err := s.backend.Delete(pr.req.Key)
		switch {
		case err != nil:
			x.lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
		case !found:
			st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		default:
			st.resp = httpmsg.AppendResponse(st.resp, 204, 0)
		}
	case kvproto.OpRange:
		x.lp.stats.ranges.Add(1)
		kvs, err := s.backend.Range(pr.req.Start, pr.req.End, pr.req.Limit)
		if err != nil {
			x.lp.stats.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
			return
		}
		body := kvproto.AppendRangeBody(nil, kvs)
		st.resp = httpmsg.AppendResponse(st.resp, 200, len(body))
		st.resp = append(st.resp, body...)
	default:
		x.lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
	}
}

// zeroCopyGet transmits a stored value directly from PM as packet
// fragments, pinning the data until the transport releases it
// (post-ACK). The value may live in any shard — extents are absolute
// region offsets, so cross-shard GETs stay zero-copy.
func (x *executor) zeroCopyGet(st *connState, key []byte) {
	tgt := x.srv.sharded.StoreFor(key)
	if tgt == nil {
		// Owning shard is quarantined: its keyspace is down, the rest of
		// the store keeps serving.
		x.lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 503, 0)
		return
	}
	// Lookup and pin are one atomic step: the old GetRef-then-PinExtents
	// pair left a window where a delete could recycle the extents' slots
	// before the pin landed. The common case also completes lock-free.
	ref, release, ok, err := tgt.GetRefPinned(key)
	if err != nil {
		x.lp.stats.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, statusForErr(err), 0)
		return
	}
	if !ok {
		st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		return
	}
	// Large values would exceed one segment without TSO; fall back to the
	// copy path rather than fail. The pins hold the bytes stable for the
	// copy, then release before buffering.
	hdr := httpmsg.AppendResponse(nil, 200, ref.VLen)
	if len(hdr)+ref.VLen > st.c.MaxSegment() {
		val := make([]byte, 0, ref.VLen)
		for _, e := range ref.Extents {
			val = append(val, tgt.Slice(e.Off, e.Len)...)
		}
		release()
		st.resp = append(st.resp, hdr...)
		st.resp = append(st.resp, val...)
		return
	}
	x.flushResp(st) // preserve pipelined response order
	x.lp.stats.zcGets.Add(1)
	head := pkt.NewBuf(make([]byte, tcp.HeaderRoom()+len(hdr)))
	head.Pull(tcp.HeaderRoom())
	copy(head.Bytes(), hdr)
	for i, e := range ref.Extents {
		fr := pkt.Frag{
			B: tgt.Slice(e.Off, e.Len), PMOff: e.Off,
			Sum: e.Sum, HasSum: true,
		}
		if i == 0 {
			fr.Release = release
		}
		head.AddFrag(fr)
	}
	x.lp.stats.bytesOut.Add(uint64(len(hdr) + ref.VLen))
	if err := st.c.WriteBufs(head); err != nil {
		release()
		st.dead = true
	}
}

// flushResp writes the batched response bytes.
func (x *executor) flushResp(st *connState) {
	if len(st.resp) == 0 || st.dead {
		return
	}
	x.lp.stats.bytesOut.Add(uint64(len(st.resp)))
	if _, err := st.c.Write(st.resp); err != nil {
		st.dead = true
	}
	st.resp = st.resp[:0]
}

func (x *executor) protocolError(st *connState, err error) {
	x.lp.stats.errors.Add(1)
	// The error response flushes everything buffered on this connection,
	// which may include acks for PUTs staged earlier in a burst: commit
	// them first so no ack precedes its fence. If the post-commit check
	// finds an online rebuild dropped the staged group, the buffered
	// acks are discarded and the connection just closes.
	if x.commitGroup() {
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
		x.flushResp(st)
	} else {
		st.resp = st.resp[:0]
	}
	x.tgt.reap(st)
}

// allocKey copies key bytes into the executing goroutine's key arena for
// the target shard, returning their region offset (-1 on exhaustion).
// The arena is a data slot of the target shard pinned while this
// goroutine appends into it; records referencing the keys keep the slot
// alive after rotation. Arenas are keyed per (executing loop, target
// shard) so steal cycles never share arena state with the home loop, and
// the (store, epoch) stamp abandons any slot whose shard was rebuilt out
// from under it.
func (x *executor) allocKey(key []byte) int {
	a := x.lp.arenas[x.shard]
	if a != nil && (a.store != x.store || a.epoch != x.cycleEpoch) {
		// The shard was rebuilt or replaced since the arena was cut: stop
		// appending into the old slot. Its pin survives the rebuild
		// (rescan preserves dataPins), so dropping it here re-admits the
		// slot once surviving records stop referencing it.
		a.unpin()
		delete(x.lp.arenas, x.shard)
		a = nil
	}
	if a == nil || a.used+len(key) > x.store.DataBufSize() {
		if a != nil {
			a.unpin()
		}
		base := x.store.AllocDataSlot()
		if base < 0 {
			return -1
		}
		if a == nil {
			a = &keyArena{}
			x.lp.arenas[x.shard] = a
		}
		a.store, a.epoch = x.store, x.cycleEpoch
		a.off, a.used = base, 0
		a.unpin = x.store.PinExtents([]core.Extent{{Off: base, Len: 1}})
	}
	off := a.off + a.used
	x.store.WriteData(off, key)
	a.used += len(key)
	return off
}

// unescapeInPlaceSafe reports whether the key's path escaping is identity
// (kept for future in-packet key referencing; the arena copy path does
// not require it).
func unescapeInPlaceSafe(raw string) bool {
	un, err := url.PathUnescape(raw)
	return err == nil && un == raw
}
