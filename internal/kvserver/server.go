package kvserver

import (
	"fmt"
	"net/url"
	"sync/atomic"
	"time"

	"packetstore/internal/checksum"
	"packetstore/internal/core"
	"packetstore/internal/httpmsg"
	"packetstore/internal/kvproto"
	"packetstore/internal/pkt"
	"packetstore/internal/tcp"
)

// Stats counts server activity.
type Stats struct {
	Requests, Puts, Gets, Deletes, Ranges uint64
	Errors                                uint64
	BytesIn, BytesOut                     uint64
	ZeroCopyPuts                          uint64
	ZeroCopyGets                          uint64
	DerivedSums                           uint64 // body checksums harvested from the NIC
	SoftwareSums                          uint64 // body checksums computed in software
	ParseTime                             time.Duration
}

// Server is the storage server application: one goroutine services
// accepts and readable events, emulating the paper's single-CPU-core
// busy-polling server.
type Server struct {
	stk      *tcp.Stack
	lst      *tcp.Listener
	backend  Backend
	store    *core.Store // non-nil enables the zero-copy fast path
	zeroCopy bool

	conns map[*tcp.Conn]*connState
	done  chan struct{}
	ret   chan struct{}

	// Key arena: small key copies land in store data slots so records
	// can reference them (values are never copied).
	arenaOff   int
	arenaUsed  int
	arenaUnpin func()

	requests, puts, gets, deletes, ranges atomic.Uint64
	errors                                atomic.Uint64
	bytesIn, bytesOut                     atomic.Uint64
	zcPuts, zcGets                        atomic.Uint64
	derivedSums, softwareSums             atomic.Uint64
	parseNanos                            atomic.Int64
}

// New creates a server listening on port. If backend is PktStore and the
// stack's NIC receives into the store's PM pool, the zero-copy paths
// activate automatically.
func New(stk *tcp.Stack, port uint16, backend Backend) (*Server, error) {
	lst, err := stk.Listen(port)
	if err != nil {
		return nil, err
	}
	s := &Server{
		stk:      stk,
		lst:      lst,
		backend:  backend,
		conns:    make(map[*tcp.Conn]*connState),
		done:     make(chan struct{}),
		ret:      make(chan struct{}),
		arenaOff: -1,
	}
	if ps, ok := backend.(PktStore); ok {
		s.store = ps.S
		s.zeroCopy = stk.NIC().RxPool() == ps.S.Pool()
	}
	return s, nil
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests: s.requests.Load(), Puts: s.puts.Load(), Gets: s.gets.Load(),
		Deletes: s.deletes.Load(), Ranges: s.ranges.Load(),
		Errors: s.errors.Load(), BytesIn: s.bytesIn.Load(), BytesOut: s.bytesOut.Load(),
		ZeroCopyPuts: s.zcPuts.Load(), ZeroCopyGets: s.zcGets.Load(),
		DerivedSums: s.derivedSums.Load(), SoftwareSums: s.softwareSums.Load(),
		ParseTime: time.Duration(s.parseNanos.Load()),
	}
}

// Run services the event loop until Close. It is the single "server CPU
// core": all request processing happens here.
func (s *Server) Run() {
	defer close(s.ret)
	for {
		select {
		case <-s.done:
			return
		case c, ok := <-s.lst.AcceptCh():
			if !ok {
				return
			}
			s.conns[c] = s.newConnState(c)
		case c, ok := <-s.stk.Readable():
			if !ok {
				return
			}
			c.ClearReady()
			st := s.conns[c]
			if st == nil {
				// Raced with accept: register now.
				st = s.newConnState(c)
				s.conns[c] = st
			}
			s.service(st)
		}
	}
}

// Close stops the server loop.
func (s *Server) Close() {
	select {
	case <-s.done:
		return
	default:
	}
	close(s.done)
	<-s.ret
	s.lst.Close()
}

type connState struct {
	c      *tcp.Conn
	parser *httpmsg.RequestParser
	cur    *pendingReq
	resp   []byte
	dead   bool
}

// pendingReq is a request whose body may still be arriving.
type pendingReq struct {
	req      kvproto.Request
	parseErr error
	// Zero-copy PUT assembly.
	keyOff int
	exts   []core.Extent
	sumsOK bool
	hwtime time.Time
	vlen   int
	// Copy-path body.
	body []byte
	// adopted data-slot bases whose release is deferred until this
	// request resolves (body spans multiple packets).
	adopted []int
}

func (s *Server) newConnState(c *tcp.Conn) *connState {
	return &connState{c: c, parser: httpmsg.NewRequestParser(0)}
}

// service drains all pending packet buffers on one connection.
func (s *Server) service(st *connState) {
	if st.dead {
		return
	}
	for {
		bufs := st.c.TryReadBufs()
		if bufs == nil {
			break
		}
		for _, b := range bufs {
			s.bytesIn.Add(uint64(b.Len()))
			s.handleBuf(st, b)
		}
	}
	s.flushResp(st)
	if st.c.EOF() || st.c.Err() != nil {
		st.dead = true
		if st.cur != nil {
			for _, base := range st.cur.adopted {
				s.store.ReleaseUnused(base)
			}
			st.cur = nil
		}
		st.c.Close()
		delete(s.conns, st.c)
	}
}

// bodySpan is a byte range of one packet payload belonging to a request
// body.
type bodySpan struct {
	off, n int
	pr     *pendingReq
}

// handleBuf processes one received packet buffer.
func (s *Server) handleBuf(st *connState, b *pkt.Buf) {
	p := b.Bytes()
	zc := s.zeroCopy && b.PMOff() >= 0
	t0 := time.Now()

	var spans []bodySpan
	var completed []*pendingReq
	pos := 0
	for pos < len(p) {
		if st.cur == nil {
			st.parser.Reset()
			st.cur = &pendingReq{keyOff: -1}
		}
		res := st.parser.Feed(p[pos:])
		if res.Err != nil {
			s.protocolError(st, res.Err)
			b.Release()
			return
		}
		if res.HeaderDone {
			s.beginRequest(st, b, zc)
		}
		if res.Body.Len > 0 {
			spans = append(spans, bodySpan{off: pos + res.Body.Off, n: res.Body.Len, pr: st.cur})
		}
		pos += res.Consumed
		if res.Done {
			completed = append(completed, st.cur)
			st.cur = nil
		}
		if res.Consumed == 0 && !res.Done {
			// Defensive: the parser always progresses, but never spin.
			s.protocolError(st, fmt.Errorf("kvserver: parser stalled"))
			b.Release()
			return
		}
	}
	s.parseNanos.Add(int64(time.Since(t0)))

	adoptedBase := -1
	if zc && len(spans) > 0 {
		adoptedBase = s.store.AdoptBuf(b)
		s.attachSpansZeroCopy(b, p, spans)
	} else if len(spans) > 0 {
		for _, sp := range spans {
			if sp.pr.req.Op == kvproto.OpPut {
				sp.pr.body = append(sp.pr.body, p[sp.off:sp.off+sp.n]...)
			}
		}
	}

	for _, pr := range completed {
		s.dispatch(st, pr)
	}
	b.Release()
	if adoptedBase >= 0 {
		if st.cur != nil {
			// A request is still assembling across packets: its extents
			// may reference this slot, so defer the release until it
			// resolves.
			st.cur.adopted = append(st.cur.adopted, adoptedBase)
		} else {
			s.store.ReleaseUnused(adoptedBase)
		}
	}
}

// beginRequest parses the request line once headers complete.
func (s *Server) beginRequest(st *connState, b *pkt.Buf, zc bool) {
	hreq := st.parser.Request()
	req, err := kvproto.Parse(hreq.Method, hreq.Path)
	pr := st.cur
	pr.vlen = hreq.ContentLength
	pr.hwtime = b.HWTime
	if err != nil {
		pr.parseErr = err
		return
	}
	pr.req = req
	if req.Op == kvproto.OpPut && zc {
		// Copy the (small) key into the arena so the record can
		// reference it; values stay in place.
		off := s.allocKey(req.Key)
		if off < 0 {
			pr.parseErr = core.ErrFull
			return
		}
		pr.keyOff = off
		pr.sumsOK = true
	}
}

// attachSpansZeroCopy turns packet body spans into store extents,
// deriving the largest span's checksum from the NIC's whole-payload sum
// (everything else is summed in software — those are header-sized
// leftovers).
func (s *Server) attachSpansZeroCopy(b *pkt.Buf, p []byte, spans []bodySpan) {
	pmBase := b.PMOff()
	useNIC := b.CsumStatus == pkt.CsumComplete
	largest := -1
	if useNIC {
		for i, sp := range spans {
			if largest < 0 || sp.n > spans[largest].n {
				largest = i
			}
		}
	}
	var others uint16 // ones-complement sum of all contributions except the largest span
	if useNIC {
		// Contribution of every byte range outside the largest span, at
		// its payload parity.
		addRange := func(off, n int) {
			if n <= 0 {
				return
			}
			sum := checksum.Fold(checksum.Partial(0, p[off:off+n]))
			if off%2 == 1 {
				sum = checksum.Swap16(sum)
			}
			others = checksum.Fold(checksum.Combine(uint32(others), uint32(sum)))
		}
		prev := 0
		for i, sp := range spans {
			addRange(prev, sp.off-prev) // inter-span (header) bytes
			if i != largest {
				addRange(sp.off, sp.n)
			}
			prev = sp.off + sp.n
		}
		addRange(prev, len(p)-prev)
	}
	for i, sp := range spans {
		var sum uint32
		if useNIC && i == largest {
			contrib := checksum.Sub16(checksum.Fold(b.Csum), others)
			if sp.off%2 == 1 {
				contrib = checksum.Swap16(contrib)
			}
			sum = uint32(contrib)
			s.derivedSums.Add(1)
		} else {
			sum = checksum.Partial(0, p[sp.off:sp.off+sp.n])
			s.softwareSums.Add(1)
		}
		if sp.pr.req.Op != kvproto.OpPut {
			continue // body on a non-PUT: parsed and ignored
		}
		if !useNIC {
			// Sum computed in software either way; still valid.
			sp.pr.sumsOK = sp.pr.sumsOK && true
		}
		sp.pr.exts = append(sp.pr.exts, core.Extent{
			Off: pmBase + sp.off, Len: sp.n, Sum: sum,
		})
	}
}

// dispatch executes one completed request and queues its response.
func (s *Server) dispatch(st *connState, pr *pendingReq) {
	s.requests.Add(1)
	defer func() {
		for _, base := range pr.adopted {
			s.store.ReleaseUnused(base)
		}
	}()
	if pr.parseErr != nil {
		s.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
		return
	}
	switch pr.req.Op {
	case kvproto.OpPut:
		s.puts.Add(1)
		var err error
		if pr.keyOff >= 0 {
			s.zcPuts.Add(1)
			err = s.store.PutExtents(pr.req.Key, pr.vlen, core.PutOptions{
				Extents: pr.exts, KeyOff: pr.keyOff,
				HasSum: pr.sumsOK, HWTime: pr.hwtime,
			})
		} else {
			err = s.backend.Put(pr.req.Key, pr.body)
		}
		if err != nil {
			s.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, 507, 0)
			return
		}
		st.resp = httpmsg.AppendResponse(st.resp, 200, 0)
	case kvproto.OpGet:
		s.gets.Add(1)
		if s.zeroCopy && s.store != nil {
			s.zeroCopyGet(st, pr.req.Key)
			return
		}
		val, ok, err := s.backend.Get(pr.req.Key)
		switch {
		case err != nil:
			s.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, 500, 0)
		case !ok:
			st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		default:
			st.resp = httpmsg.AppendResponse(st.resp, 200, len(val))
			st.resp = append(st.resp, val...)
		}
	case kvproto.OpDelete:
		s.deletes.Add(1)
		found, err := s.backend.Delete(pr.req.Key)
		switch {
		case err != nil:
			s.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, 500, 0)
		case !found:
			st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		default:
			st.resp = httpmsg.AppendResponse(st.resp, 204, 0)
		}
	case kvproto.OpRange:
		s.ranges.Add(1)
		kvs, err := s.backend.Range(pr.req.Start, pr.req.End, pr.req.Limit)
		if err != nil {
			s.errors.Add(1)
			st.resp = httpmsg.AppendResponse(st.resp, 500, 0)
			return
		}
		body := kvproto.AppendRangeBody(nil, kvs)
		st.resp = httpmsg.AppendResponse(st.resp, 200, len(body))
		st.resp = append(st.resp, body...)
	default:
		s.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
	}
}

// zeroCopyGet transmits a stored value directly from PM as packet
// fragments, pinning the data until the transport releases it (post-ACK).
func (s *Server) zeroCopyGet(st *connState, key []byte) {
	ref, ok, err := s.store.GetRef(key)
	if err != nil {
		s.errors.Add(1)
		st.resp = httpmsg.AppendResponse(st.resp, 500, 0)
		return
	}
	if !ok {
		st.resp = httpmsg.AppendResponse(st.resp, 404, 0)
		return
	}
	// Large values would exceed one segment without TSO; fall back to the
	// copy path rather than fail.
	hdr := httpmsg.AppendResponse(nil, 200, ref.VLen)
	if len(hdr)+ref.VLen > st.c.MaxSegment() {
		val := make([]byte, 0, ref.VLen)
		for _, e := range ref.Extents {
			val = append(val, s.store.Slice(e.Off, e.Len)...)
		}
		st.resp = append(st.resp, hdr...)
		st.resp = append(st.resp, val...)
		return
	}
	s.flushResp(st) // preserve pipelined response order
	s.zcGets.Add(1)
	release := s.store.PinExtents(ref.Extents)
	head := pkt.NewBuf(make([]byte, tcp.HeaderRoom()+len(hdr)))
	head.Pull(tcp.HeaderRoom())
	copy(head.Bytes(), hdr)
	for i, e := range ref.Extents {
		fr := pkt.Frag{
			B: s.store.Slice(e.Off, e.Len), PMOff: e.Off,
			Sum: e.Sum, HasSum: true,
		}
		if i == 0 {
			fr.Release = release
		}
		head.AddFrag(fr)
	}
	s.bytesOut.Add(uint64(len(hdr) + ref.VLen))
	if err := st.c.WriteBufs(head); err != nil {
		release()
		st.dead = true
	}
}

// flushResp writes the batched response bytes.
func (s *Server) flushResp(st *connState) {
	if len(st.resp) == 0 || st.dead {
		return
	}
	s.bytesOut.Add(uint64(len(st.resp)))
	if _, err := st.c.Write(st.resp); err != nil {
		st.dead = true
	}
	st.resp = st.resp[:0]
}

func (s *Server) protocolError(st *connState, err error) {
	s.errors.Add(1)
	st.resp = httpmsg.AppendResponse(st.resp, 400, 0)
	s.flushResp(st)
	st.dead = true
	st.c.Close()
	delete(s.conns, st.c)
}

// allocKey copies key bytes into the key arena, returning their region
// offset (-1 on exhaustion). The arena is a store data slot pinned while
// the server appends into it; records referencing the keys keep the slot
// alive after rotation.
func (s *Server) allocKey(key []byte) int {
	if s.arenaOff < 0 || s.arenaUsed+len(key) > s.store.DataBufSize() {
		if s.arenaUnpin != nil {
			s.arenaUnpin()
		}
		base := s.store.AllocDataSlot()
		if base < 0 {
			return -1
		}
		s.arenaOff = base
		s.arenaUsed = 0
		s.arenaUnpin = s.store.PinExtents([]core.Extent{{Off: base, Len: 1}})
	}
	off := s.arenaOff + s.arenaUsed
	s.store.WriteData(off, key)
	s.arenaUsed += len(key)
	return off
}

// unescapeInPlaceSafe reports whether the key's path escaping is identity
// (kept for future in-packet key referencing; the arena copy path does
// not require it).
func unescapeInPlaceSafe(raw string) bool {
	un, err := url.PathUnescape(raw)
	return err == nil && un == raw
}
