// Package kvserver implements the storage server application: a
// single-goroutine event loop (the paper's one-core busy-polling server)
// that parses KV-over-HTTP requests from the TCP stack's packet buffers
// and dispatches them to a storage backend.
//
// Backends:
//
//   - Discard: parses and acknowledges without storing — the paper's
//     "networking only" configuration that isolates network overheads.
//   - RawPM: copy + flush into PM, no data management — Figure 2's
//     "Net. + persist." series.
//   - LSM: the NoveLSM/LevelDB baseline — Figure 2's
//     "Net. + data mgmt. + persist." series.
//   - PktStore: the paper's proposal. With a PM-backed NIC receive pool
//     the server runs the zero-copy ingest path: request values are
//     committed where the NIC wrote them, with NIC-derived checksums and
//     hardware timestamps, and GET responses are transmitted straight
//     out of the store via packet fragments.
package kvserver

import (
	"packetstore/internal/core"
	"packetstore/internal/kvproto"
	"packetstore/internal/lsm"
	"packetstore/internal/rawpm"
)

// Backend stores and retrieves values (copy path).
type Backend interface {
	Name() string
	Put(key, value []byte) error
	Get(key []byte) (value []byte, ok bool, err error)
	Delete(key []byte) (found bool, err error)
	Range(start, end []byte, limit int) ([]kvproto.KV, error)
}

// Discard acknowledges everything and stores nothing.
type Discard struct{}

// Name implements Backend.
func (Discard) Name() string { return "discard" }

// Put implements Backend.
func (Discard) Put(key, value []byte) error { return nil }

// Get implements Backend.
func (Discard) Get(key []byte) ([]byte, bool, error) { return nil, false, nil }

// Delete implements Backend.
func (Discard) Delete(key []byte) (bool, error) { return false, nil }

// Range implements Backend.
func (Discard) Range(start, end []byte, limit int) ([]kvproto.KV, error) { return nil, nil }

// RawPM copies and persists values without data management.
type RawPM struct {
	S *rawpm.Store
}

// Name implements Backend.
func (RawPM) Name() string { return "rawpm" }

// Put implements Backend.
func (b RawPM) Put(key, value []byte) error { return b.S.Put(value) }

// Get implements Backend (raw PM keeps no index; reads always miss).
func (RawPM) Get(key []byte) ([]byte, bool, error) { return nil, false, nil }

// Delete implements Backend.
func (RawPM) Delete(key []byte) (bool, error) { return false, nil }

// Range implements Backend.
func (RawPM) Range(start, end []byte, limit int) ([]kvproto.KV, error) { return nil, nil }

// LSM adapts the NoveLSM/LevelDB baseline.
type LSM struct {
	DB *lsm.DB
}

// Name implements Backend.
func (LSM) Name() string { return "lsm" }

// Put implements Backend.
func (b LSM) Put(key, value []byte) error { return b.DB.Put(key, value) }

// Get implements Backend.
func (b LSM) Get(key []byte) ([]byte, bool, error) { return b.DB.Get(key) }

// Delete implements Backend.
func (b LSM) Delete(key []byte) (bool, error) {
	// The LSM always writes a tombstone; report found for protocol
	// symmetry.
	return true, b.DB.Delete(key)
}

// Range implements Backend.
func (b LSM) Range(start, end []byte, limit int) ([]kvproto.KV, error) {
	kvs, err := b.DB.Range(start, end, limit)
	if err != nil {
		return nil, err
	}
	out := make([]kvproto.KV, len(kvs))
	for i, kv := range kvs {
		out[i] = kvproto.KV{Key: kv.Key, Value: kv.Value}
	}
	return out, nil
}

// PktStore adapts the packetstore; the server detects it and switches to
// the zero-copy ingest and egress paths.
type PktStore struct {
	S *core.Store
}

// Name implements Backend.
func (PktStore) Name() string { return "pktstore" }

// Put implements Backend (copy path, used when the receive pool is not
// the store's PM pool).
func (b PktStore) Put(key, value []byte) error { return b.S.Put(key, value) }

// Get implements Backend.
func (b PktStore) Get(key []byte) ([]byte, bool, error) { return b.S.Get(key) }

// Delete implements Backend.
func (b PktStore) Delete(key []byte) (bool, error) { return b.S.Delete(key) }

// Range implements Backend.
func (b PktStore) Range(start, end []byte, limit int) ([]kvproto.KV, error) {
	recs, err := b.S.Range(start, end, limit)
	if err != nil {
		return nil, err
	}
	out := make([]kvproto.KV, len(recs))
	for i, rec := range recs {
		out[i] = kvproto.KV{Key: rec.Key, Value: rec.Value}
	}
	return out, nil
}

// ShardedPktStore adapts a multi-shard packetstore: point operations
// route to the owning shard by key hash and RANGE merges the per-shard
// ordered runs. The server detects it (like PktStore) and activates the
// per-queue zero-copy paths on every loop whose receive pool is a
// shard's PM partition.
type ShardedPktStore struct {
	S *core.ShardedStore
}

// Name implements Backend.
func (ShardedPktStore) Name() string { return "pktstore-sharded" }

// Put implements Backend (copy path; routes by key hash).
func (b ShardedPktStore) Put(key, value []byte) error { return b.S.Put(key, value) }

// Get implements Backend.
func (b ShardedPktStore) Get(key []byte) ([]byte, bool, error) { return b.S.Get(key) }

// Delete implements Backend.
func (b ShardedPktStore) Delete(key []byte) (bool, error) { return b.S.Delete(key) }

// Range implements Backend (cross-shard merge).
func (b ShardedPktStore) Range(start, end []byte, limit int) ([]kvproto.KV, error) {
	recs, err := b.S.Range(start, end, limit)
	if err != nil {
		return nil, err
	}
	out := make([]kvproto.KV, len(recs))
	for i, rec := range recs {
		out[i] = kvproto.KV{Key: rec.Key, Value: rec.Value}
	}
	return out, nil
}
