package kvserver

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/host"
	"packetstore/internal/kvclient"
	"packetstore/internal/lsm"
	"packetstore/internal/pmem"
	"packetstore/internal/rawpm"
	"packetstore/internal/tcp"
	"packetstore/internal/wrkgen"
)

// env is one end-to-end deployment: testbed + server + client dialer.
type env struct {
	tb  *host.Testbed
	srv *Server
}

func (e *env) dial(t *testing.T) *kvclient.Client {
	t.Helper()
	c, err := e.tb.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	return kvclient.New(c)
}

func (e *env) close() {
	e.srv.Close()
	e.tb.Close()
}

func newEnv(t *testing.T, backend func(tb *host.Testbed) Backend, opt host.Options) *env {
	t.Helper()
	tb := host.NewTestbed(opt)
	srv, err := New(tb.Server.Stack, 80, backend(tb))
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	e := &env{tb: tb, srv: srv}
	t.Cleanup(e.close)
	return e
}

func pktStoreEnv(t *testing.T, cfg core.Config) (*env, *core.Store) {
	t.Helper()
	cfg.ChecksumReuse = true
	r := pmem.New(cfg.RegionSize(), calib.Off())
	store, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, func(*host.Testbed) Backend { return PktStore{S: store} },
		host.Options{ServerRxPool: store.Pool()})
	return e, store
}

func TestEndToEndDiscard(t *testing.T) {
	e := newEnv(t, func(*host.Testbed) Backend { return Discard{} }, host.Options{})
	cl := e.dial(t)
	if err := cl.Put([]byte("k"), bytes.Repeat([]byte("x"), 1024)); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cl.Get([]byte("k")); err != nil || ok {
		t.Fatalf("discard backend returned data: %v %v", ok, err)
	}
	if st := e.srv.Stats(); st.Requests != 2 || st.Puts != 1 || st.Gets != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestEndToEndRawPM(t *testing.T) {
	r := pmem.New(1<<20, calib.Off())
	rp := rawpm.New(r, 0, 1<<20)
	e := newEnv(t, func(*host.Testbed) Backend { return RawPM{S: rp} }, host.Options{})
	cl := e.dial(t)
	for i := 0; i < 10; i++ {
		if err := cl.Put([]byte("k"), make([]byte, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if rp.Puts() != 10 {
		t.Fatalf("rawpm persisted %d values", rp.Puts())
	}
}

func TestEndToEndLSM(t *testing.T) {
	r := pmem.New(64<<20, calib.Off())
	db, err := lsm.Open(lsm.Options{
		Mode: lsm.NoveLSMSim, PM: r, PMSize: r.Size(),
		ArenaSize: 4 << 20, Checksum: true, DisableCompaction: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, func(*host.Testbed) Backend { return LSM{DB: db} }, host.Options{})
	cl := e.dial(t)
	val := bytes.Repeat([]byte("v"), 1024)
	for i := 0; i < 50; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("key%03d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	got, ok, err := cl.Get([]byte("key025"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("get: %v %v (%d bytes)", ok, err, len(got))
	}
	if _, ok, _ := cl.Get([]byte("missing")); ok {
		t.Fatal("missing key found")
	}
	if found, err := cl.Delete([]byte("key025")); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := cl.Get([]byte("key025")); ok {
		t.Fatal("deleted key visible")
	}
	kvs, err := cl.Range([]byte("key010"), []byte("key020"), 0)
	if err != nil || len(kvs) != 10 {
		t.Fatalf("range: %d, %v", len(kvs), err)
	}
}

func TestEndToEndPktStoreZeroCopy(t *testing.T) {
	e, store := pktStoreEnv(t, core.Config{VerifyOnGet: true})
	cl := e.dial(t)
	val := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(val)
	for i := 0; i < 100; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("key%04d", i)), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	got, ok, err := cl.Get([]byte("key0042"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("get: ok=%v err=%v len=%d", ok, err, len(got))
	}
	st := e.srv.Stats()
	if st.ZeroCopyPuts != 100 {
		t.Fatalf("zero-copy puts %d, want 100 (stats %+v)", st.ZeroCopyPuts, st)
	}
	if st.ZeroCopyGets == 0 {
		t.Fatal("GET did not use zero-copy egress")
	}
	if st.DerivedSums == 0 {
		t.Fatal("no NIC checksum harvesting happened")
	}
	// The store really reused sums rather than recomputing.
	ss := store.Stats()
	if ss.ChecksumReused != 100 || ss.ChecksumComputed != 0 {
		t.Fatalf("store checksum stats %+v", ss)
	}
	// Every stored record passes an integrity scrub: the derived NIC
	// sums equal direct computation over the stored bytes.
	if bad, _ := store.Verify(); len(bad) != 0 {
		t.Fatalf("verify failed for %q", bad)
	}
	// Range through the server.
	kvs, err := cl.Range([]byte("key0010"), []byte("key0015"), 0)
	if err != nil || len(kvs) != 5 {
		t.Fatalf("range: %d %v", len(kvs), err)
	}
	// Deletes work end to end.
	if found, err := cl.Delete([]byte("key0042")); err != nil || !found {
		t.Fatalf("delete: %v %v", found, err)
	}
	if _, ok, _ := cl.Get([]byte("key0042")); ok {
		t.Fatal("deleted key visible")
	}
}

func TestPktStoreValueLargerThanMSS(t *testing.T) {
	// Values above one MSS arrive as multiple segments -> multi-extent
	// records with combined NIC checksums.
	e, store := pktStoreEnv(t, core.Config{VerifyOnGet: true})
	cl := e.dial(t)
	val := make([]byte, 5000)
	rand.New(rand.NewSource(2)).Read(val)
	if err := cl.Put([]byte("big"), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := cl.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("big value: ok=%v err=%v len=%d", ok, err, len(got))
	}
	ref, _, _ := store.GetRef([]byte("big"))
	if len(ref.Extents) < 2 {
		t.Fatalf("expected multiple extents, got %d", len(ref.Extents))
	}
	if bad, _ := store.Verify(); len(bad) != 0 {
		t.Fatal("verify failed on multi-extent record")
	}
}

func TestPktStoreOverwriteAndChurn(t *testing.T) {
	e, store := pktStoreEnv(t, core.Config{
		MetaSlots: 256, DataSlots: 256, VerifyOnGet: true,
	})
	cl := e.dial(t)
	// Overwrite far more times than there are slots: recycling must work
	// end to end (acknowledged packets' slots return to the NIC pool).
	val := make([]byte, 512)
	for i := 0; i < 2000; i++ {
		copy(val, fmt.Sprintf("generation-%06d", i))
		if err := cl.Put([]byte("churn-key"), val); err != nil {
			t.Fatalf("put %d: %v (slot exhaustion => leak)", i, err)
		}
	}
	got, ok, err := cl.Get([]byte("churn-key"))
	if err != nil || !ok || !bytes.HasPrefix(got, []byte("generation-001999")) {
		t.Fatalf("final value: %q %v %v", got[:20], ok, err)
	}
	if store.Len() != 1 {
		t.Fatalf("store has %d records", store.Len())
	}
}

func TestPktStoreCrashRecoveryEndToEnd(t *testing.T) {
	cfg := core.Config{ChecksumReuse: true, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	store, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := host.NewTestbed(host.Options{ServerRxPool: store.Pool()})
	srv, err := New(tb.Server.Stack, 80, PktStore{S: store})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	c, err := tb.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	cl := kvclient.New(c)
	val := make([]byte, 1024)
	rand.New(rand.NewSource(3)).Read(val)
	for i := 0; i < 200; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("key%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	tb.Close()

	// Power failure.
	r.Crash(4)

	// Reboot: recover and serve again.
	store2, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if store2.Len() != 200 {
		t.Fatalf("recovered %d records, want 200", store2.Len())
	}
	if bad, _ := store2.Verify(); len(bad) != 0 {
		t.Fatalf("post-crash verify failed: %q", bad)
	}
	tb2 := host.NewTestbed(host.Options{ServerRxPool: store2.Pool()})
	defer tb2.Close()
	srv2, err := New(tb2.Server.Stack, 80, PktStore{S: store2})
	if err != nil {
		t.Fatal(err)
	}
	go srv2.Run()
	defer srv2.Close()
	c2, err := tb2.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	cl2 := kvclient.New(c2)
	got, ok, err := cl2.Get([]byte("key0111"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("post-crash get: %v %v", ok, err)
	}
	// And writable.
	if err := cl2.Put([]byte("post-crash"), val); err != nil {
		t.Fatal(err)
	}
}

func TestPipelinedRequests(t *testing.T) {
	e, _ := pktStoreEnv(t, core.Config{})
	c, err := e.tb.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	// Two PUTs and a GET written back-to-back in one burst.
	var burst []byte
	v1, v2 := []byte("value-one"), []byte("value-two")
	burst = appendPut(burst, "pipe1", v1)
	burst = appendPut(burst, "pipe2", v2)
	burst = append(burst, "GET /k/pipe1 HTTP/1.1\r\n\r\n"...)
	if _, err := c.Write(burst); err != nil {
		t.Fatal(err)
	}
	// Read three responses.
	resp := readAll(t, c, []byte("value-one"))
	if !bytes.Contains(resp, []byte("value-one")) {
		t.Fatalf("pipelined GET missing value: %q", resp)
	}
	if n := bytes.Count(resp, []byte("HTTP/1.1 200")); n != 3 {
		t.Fatalf("%d 200-responses, want 3: %q", n, resp)
	}
}

func appendPut(dst []byte, key string, val []byte) []byte {
	dst = append(dst, fmt.Sprintf("PUT /k/%s HTTP/1.1\r\nContent-Length: %d\r\n\r\n", key, len(val))...)
	return append(dst, val...)
}

// readOKs reads from c until n 200-responses have arrived.
func readOKs(t *testing.T, c interface{ Read([]byte) (int, error) }, n int) {
	t.Helper()
	var out []byte
	buf := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	for bytes.Count(out, []byte("HTTP/1.1 200")) < n {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %d responses; got %q", n, out)
		}
		m, err := c.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, out)
		}
		out = append(out, buf[:m]...)
	}
}

func readAll(t *testing.T, c interface{ Read([]byte) (int, error) }, until []byte) []byte {
	t.Helper()
	var out []byte
	buf := make([]byte, 4096)
	deadline := time.Now().Add(5 * time.Second)
	for !bytes.Contains(out, until) {
		if time.Now().After(deadline) {
			t.Fatalf("timeout; got %q", out)
		}
		n, err := c.Read(buf)
		if err != nil {
			t.Fatalf("read: %v (got %q)", err, out)
		}
		out = append(out, buf[:n]...)
	}
	return out
}

func TestMalformedRequestGets400(t *testing.T) {
	e := newEnv(t, func(*host.Testbed) Backend { return Discard{} }, host.Options{})
	c, err := e.tb.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	c.Write([]byte("NONSENSE GARBAGE\r\n\r\n"))
	resp := readAll(t, c, []byte("400"))
	if !bytes.Contains(resp, []byte("400")) {
		t.Fatalf("no 400: %q", resp)
	}
}

func TestUnknownPathGets400(t *testing.T) {
	e := newEnv(t, func(*host.Testbed) Backend { return Discard{} }, host.Options{})
	c, _ := e.tb.Dial(80)
	c.Write([]byte("GET /unknown/path HTTP/1.1\r\n\r\n"))
	resp := readAll(t, c, []byte("HTTP/1.1"))
	if !bytes.Contains(resp, []byte("400")) {
		t.Fatalf("want 400, got %q", resp)
	}
}

func TestConcurrentConnectionsMixedWorkload(t *testing.T) {
	e, store := pktStoreEnv(t, core.Config{
		MetaSlots: 1 << 14, DataSlots: 1 << 14,
	})
	res, err := wrkgen.Run(wrkgen.Config{
		Conns: 8, Requests: 800, ValueSize: 512,
		KeySpace: 200, KeyDist: wrkgen.DistUniform,
		PutPct: 60, DeletePct: 10, Seed: 42,
	}, func() (kvclient.Conn, error) { return e.tb.Dial(80) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	if res.Requests < 800 {
		t.Fatalf("only %d requests", res.Requests)
	}
	if bad, _ := store.Verify(); len(bad) != 0 {
		t.Fatalf("verify after churn: %q", bad)
	}
}

func TestLossyFabricEndToEnd(t *testing.T) {
	cfg := core.Config{ChecksumReuse: true, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	store, _ := core.Open(r, cfg)
	tb := host.NewTestbed(host.Options{
		ServerRxPool: store.Pool(),
		Loss:         0.01, Reorder: 0.02, Seed: 99,
		StackConfig: tcp.Config{MinRTO: 5 * time.Millisecond},
	})
	defer tb.Close()
	srv, err := New(tb.Server.Stack, 80, PktStore{S: store})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Close()
	c, err := tb.Dial(80)
	if err != nil {
		t.Fatal(err)
	}
	cl := kvclient.New(c)
	val := make([]byte, 1024)
	rand.New(rand.NewSource(5)).Read(val)
	for i := 0; i < 100; i++ {
		if err := cl.Put([]byte(fmt.Sprintf("lossy%03d", i)), val); err != nil {
			t.Fatalf("put %d over lossy fabric: %v", i, err)
		}
	}
	for i := 0; i < 100; i++ {
		got, ok, err := cl.Get([]byte(fmt.Sprintf("lossy%03d", i)))
		if err != nil || !ok || !bytes.Equal(got, val) {
			t.Fatalf("get %d over lossy fabric: ok=%v err=%v", i, ok, err)
		}
	}
	// Retransmission-trimmed segments must never poison checksums.
	if bad, _ := store.Verify(); len(bad) != 0 {
		t.Fatalf("verify after lossy ingest: %q", bad)
	}
}

// TestEndToEndGroupCommit drives many concurrent connections at a server
// with MaxBatch enabled: bursts must actually form (GroupCommits > 0),
// every grouped PUT must still be durable and correct, and group commit
// must spend fewer fences than one-fence-per-op would.
func TestEndToEndGroupCommit(t *testing.T) {
	cfg := core.Config{MetaSlots: 1 << 14, DataSlots: 1 << 14, ChecksumReuse: true}
	// The paper PM latency profile (not Off) matters here: with free PM
	// the loop services each request the instant it arrives, bursts stay
	// at one conn, and the adaptive cutoff routes everything down the
	// unbatched path. Realistic persist cost lets arrivals pile up.
	r := pmem.New(cfg.RegionSize(), calib.Paper())
	store, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := host.NewTestbed(host.Options{ServerRxPool: store.Pool()})
	defer tb.Close()
	srv, err := NewWithConfig(tb.Server.Stack, 80, PktStore{S: store}, Config{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Run()
	defer srv.Close()

	// Pure-PUT phase first: with no reads forcing mid-burst commit
	// barriers, fence amortization must be visible in the PM counters.
	// Every conn pipelines its whole round before anyone reads a
	// response, so several connections are readable at once and bursts
	// form regardless of scheduler timing.
	const conns, rounds, perRound = 8, 4, 8
	val := bytes.Repeat([]byte("b"), 512)
	cs := make([]kvclient.Conn, conns)
	for i := range cs {
		c, err := tb.Dial(80)
		if err != nil {
			t.Fatal(err)
		}
		cs[i] = c
	}
	for r := 0; r < rounds; r++ {
		for i, c := range cs {
			var burst []byte
			for j := 0; j < perRound; j++ {
				key := fmt.Sprintf("g%03d", (i*perRound+j+r*13)%50)
				burst = appendPut(burst, key, val)
			}
			if _, err := c.Write(burst); err != nil {
				t.Fatal(err)
			}
		}
		for _, c := range cs {
			readOKs(t, c, perRound)
		}
	}
	st := srv.Stats()
	if st.GroupCommits == 0 {
		t.Fatal("no group commits formed under 8 concurrent connections")
	}
	if st.GroupedConns < 2*st.GroupCommits {
		t.Fatalf("groups averaged <2 conns: %d commits, %d conns",
			st.GroupCommits, st.GroupedConns)
	}
	// An unbatched overwrite-heavy PUT run spends ~3 fences per op
	// (flush, seq, retire); grouping must land below 2.
	pm := r.Stats()
	puts := store.Stats().Puts
	if pm.Fences >= 2*puts {
		t.Fatalf("fences %d for %d puts: batching bought nothing", pm.Fences, puts)
	}

	// Mixed phase: interleaved GETs and DELETEs force commit barriers
	// mid-burst; correctness must survive the churn.
	res, err := wrkgen.Run(wrkgen.Config{
		Conns: 8, Requests: 800, ValueSize: 512,
		KeySpace: 200, KeyDist: wrkgen.DistUniform,
		PutPct: 60, DeletePct: 10, Seed: 44,
	}, func() (kvclient.Conn, error) { return tb.Dial(80) })
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 {
		t.Fatalf("mixed phase: %d errors", res.Errors)
	}
	if bad, _ := store.Verify(); len(bad) != 0 {
		t.Fatalf("verify after grouped churn: %q", bad)
	}
}
