// Package wrkgen is the load generator: the role wrk plays on the paper's
// testbed. It opens N persistent connections, issues continual storage
// requests, and reports throughput and a latency distribution.
package wrkgen

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"packetstore/internal/hdrhist"
	"packetstore/internal/kvclient"
	"packetstore/internal/kvproto"
)

// Dist selects the key distribution.
type Dist int

// Distributions.
const (
	DistSeq Dist = iota
	DistUniform
	DistZipf
)

// Config describes a workload.
type Config struct {
	// Conns is the number of concurrent persistent connections.
	Conns int
	// Duration bounds the measured run (after Warmup).
	Duration time.Duration
	// Warmup runs load without recording.
	Warmup time.Duration
	// Requests, when > 0, bounds the total measured requests instead of
	// Duration.
	Requests int
	// ValueSize is the PUT payload size (the paper uses 1KB).
	ValueSize int
	// KeySpace is the number of distinct keys.
	KeySpace int
	// KeyDist selects how keys are drawn.
	KeyDist Dist
	// ZipfS is the Zipf skew exponent for DistZipf (s > 1; larger is more
	// skewed). 0 means the default 1.1.
	ZipfS float64
	// PutPct/DeletePct are the operation mix out of 100; the remainder
	// is GETs (GetPct derives it).
	PutPct    int
	DeletePct int
	// Pipeline keeps up to this many requests in flight per connection
	// (HTTP pipelining). 0 or 1 is the synchronous request/response
	// loop; higher depths let one connection's requests queue at the
	// server, which is what lets the group-commit loop form bursts.
	Pipeline int
	// Seed makes runs reproducible; each connection derives its own
	// stream.
	Seed int64
	// QueueOf, when set together with ShardOfKey, maps a freshly dialed
	// connection to the server RSS queue its flow hashes to. The
	// generator then salts each key until it hashes to that queue's
	// shard — the client side of the hash-alignment invariant
	// (DESIGN.md §5.7): every PUT arrives at the loop owning its shard,
	// keeping the zero-copy ingest path core-local.
	QueueOf func(kvclient.Conn) int
	// ShardOfKey maps a key to its owning shard (bind core.ShardOf to
	// the shard count).
	ShardOfKey func(key []byte) int
	// Retry, when set, runs each worker over kvclient's retrying client:
	// transient failures — 503 sheds, shard-down windows, response
	// timeouts, connection resets — back off and re-issue instead of
	// aborting the worker, so the generator rides through heal events.
	// Implies Pipeline 1. Hash alignment (QueueOf) is bypassed: the
	// retry layer redials internally, which would invalidate a computed
	// alignment.
	Retry *kvclient.RetryConfig
}

// Result aggregates a run.
type Result struct {
	Requests uint64
	Errors   uint64
	// Retries counts transient-failure re-attempts absorbed by the retry
	// layer (only populated when Config.Retry is set).
	Retries uint64
	Elapsed time.Duration
	Hist    hdrhist.Hist
}

// GetPct is the GET share of the mix: whatever PutPct and DeletePct
// leave over (read-mix sweeps are specified by their read percentage,
// but the generator's knobs are the write ones).
func (c Config) GetPct() int { return 100 - c.PutPct - c.DeletePct }

// Throughput returns requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("%.0f req/s, %s", r.Throughput(), r.Hist.String())
}

// Dialer opens workload connections.
type Dialer func() (kvclient.Conn, error)

// Run executes the workload and blocks until done.
func Run(cfg Config, dial Dialer) (Result, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 1024
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 10000
	}
	if cfg.PutPct == 0 && cfg.DeletePct == 0 {
		cfg.PutPct = 100
	}
	if cfg.Duration <= 0 && cfg.Requests <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Retry != nil {
		cfg.Pipeline = 1
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}

	type connResult struct {
		reqs, errs, retries uint64
		hist                hdrhist.Hist
		err                 error
	}
	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup

	var startMeasure, stop time.Time
	measureStart := time.Now().Add(cfg.Warmup)
	if cfg.Duration > 0 {
		stop = measureStart.Add(cfg.Duration)
	}
	startMeasure = measureStart

	perConnReqs := 0
	if cfg.Requests > 0 {
		perConnReqs = (cfg.Requests + cfg.Conns - 1) / cfg.Conns
	}

	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			var cl *kvclient.Client
			var rc *kvclient.RetryClient
			var conn kvclient.Conn
			if cfg.Retry != nil {
				rcfg := *cfg.Retry
				if rcfg.Seed == 0 {
					rcfg.Seed = cfg.Seed + int64(ci)*104729 + 1
				}
				rc = kvclient.NewRetry(dial, rcfg)
				defer func() {
					res.retries = rc.Stats().Retries
					rc.Close()
				}()
			} else {
				c, err := dial()
				if err != nil {
					res.err = err
					return
				}
				conn = c
				cl = kvclient.New(conn)
				defer cl.Close()
			}
			alignQ := -1
			var keyCache map[int][]byte
			if conn != nil && cfg.QueueOf != nil && cfg.ShardOfKey != nil {
				alignQ = cfg.QueueOf(conn)
				keyCache = make(map[int][]byte)
			}
			makeKey := func(keyID int) []byte {
				if alignQ < 0 {
					return []byte(fmt.Sprintf("key%012d", keyID))
				}
				if k, ok := keyCache[keyID]; ok {
					return k
				}
				// Deterministic rejection sampling: the first salt that
				// lands the key on this connection's queue (expected
				// iterations = shard count). Each queue thus works a
				// disjoint key subspace, like per-core wrk streams.
				var k []byte
				for salt := 0; ; salt++ {
					k = []byte(fmt.Sprintf("key%012d-%04d", keyID, salt))
					if cfg.ShardOfKey(k) == alignQ {
						break
					}
				}
				keyCache[keyID] = k
				return k
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			var zipf *rand.Zipf
			if cfg.KeyDist == DistZipf {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeySpace-1))
			}
			value := make([]byte, cfg.ValueSize)
			rng.Read(value)
			seqKey := ci // stride sequential keys across connections

			nextKey := func() []byte {
				var keyID int
				switch cfg.KeyDist {
				case DistSeq:
					keyID = seqKey % cfg.KeySpace
					seqKey += cfg.Conns
				case DistUniform:
					keyID = rng.Intn(cfg.KeySpace)
				case DistZipf:
					keyID = int(zipf.Uint64())
				}
				return makeKey(keyID)
			}

			measured := 0
			if cfg.Pipeline > 1 {
				// Windowed pipelining: keep up to Pipeline requests in
				// flight; responses come back in request order. Latency
				// covers send-to-response, queueing included.
				type outst struct {
					t0 time.Time
					op int // 0 put, 1 delete, 2 get
				}
				var window []outst
				recvOne := func() error {
					status, _, err := cl.Recv()
					o := window[0]
					window = window[1:]
					if err == nil {
						switch {
						case o.op == 0 && status != 200 && status != 201:
							err = fmt.Errorf("pipelined PUT: status %d", status)
						case o.op != 0 && status != 200 && status != 204 && status != 404:
							err = fmt.Errorf("pipelined op %d: status %d", o.op, status)
						}
					}
					if o.t0.After(startMeasure) {
						measured++
						res.reqs++
						if err != nil {
							res.errs++
						} else {
							res.hist.Record(time.Since(o.t0))
						}
					}
					return err
				}
				for {
					now := time.Now()
					if perConnReqs > 0 {
						if measured+len(window) >= perConnReqs {
							break
						}
					} else if now.After(stop) {
						break
					}
					key := nextKey()
					op := rng.Intn(100)
					var method, path string
					var body []byte
					kind := 2
					switch {
					case op < cfg.PutPct:
						method, path, body, kind = "PUT", kvproto.KeyPath(key), value, 0
					case op < cfg.PutPct+cfg.DeletePct:
						method, path, kind = "DELETE", kvproto.KeyPath(key), 1
					default:
						method, path = "GET", kvproto.KeyPath(key)
					}
					t0 := time.Now()
					if err := cl.Send(method, path, body); err != nil {
						res.err = err
						return
					}
					window = append(window, outst{t0: t0, op: kind})
					if len(window) >= cfg.Pipeline {
						if err := recvOne(); err != nil {
							res.err = err
							return
						}
					}
				}
				for len(window) > 0 {
					if err := recvOne(); err != nil {
						res.err = err
						return
					}
				}
				return
			}
			for {
				now := time.Now()
				if perConnReqs > 0 {
					if measured >= perConnReqs {
						return
					}
				} else if now.After(stop) {
					return
				}
				key := nextKey()

				op := rng.Intn(100)
				t0 := time.Now()
				var err error
				switch {
				case op < cfg.PutPct:
					if rc != nil {
						err = rc.Put(key, value)
					} else {
						err = cl.Put(key, value)
					}
				case op < cfg.PutPct+cfg.DeletePct:
					if rc != nil {
						_, err = rc.Delete(key)
					} else {
						_, err = cl.Delete(key)
					}
				default:
					if rc != nil {
						_, _, err = rc.Get(key)
					} else {
						_, _, err = cl.Get(key)
					}
				}
				lat := time.Since(t0)
				if t0.After(startMeasure) {
					measured++
					res.reqs++
					if err != nil {
						res.errs++
					} else {
						res.hist.Record(lat)
					}
				}
				if err != nil {
					if rc == nil || !kvclient.Transient(err) {
						res.err = err
						return
					}
					// Retry budget exhausted mid-outage: already counted as
					// an error; the worker keeps going and rejoins the load
					// once the shard heals.
				}
			}
		}(ci)
	}
	wg.Wait()

	var out Result
	var firstErr error
	for i := range results {
		out.Requests += results[i].reqs
		out.Errors += results[i].errs
		out.Retries += results[i].retries
		out.Hist.Merge(&results[i].hist)
		if results[i].err != nil && firstErr == nil {
			firstErr = results[i].err
		}
	}
	if cfg.Duration > 0 {
		out.Elapsed = cfg.Duration
	} else {
		out.Elapsed = time.Since(startMeasure)
	}
	return out, firstErr
}
