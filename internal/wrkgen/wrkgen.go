// Package wrkgen is the load generator: the role wrk plays on the paper's
// testbed. It opens N persistent connections, issues continual storage
// requests, and reports throughput and a latency distribution.
package wrkgen

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/hdrhist"
	"packetstore/internal/kvclient"
	"packetstore/internal/kvproto"
)

// Dist selects the key distribution.
type Dist int

// Distributions.
const (
	DistSeq Dist = iota
	DistUniform
	DistZipf
)

// Config describes a workload.
type Config struct {
	// Conns is the number of concurrent persistent connections.
	Conns int
	// Duration bounds the measured run (after Warmup).
	Duration time.Duration
	// Warmup runs load without recording.
	Warmup time.Duration
	// Requests, when > 0, bounds the total measured requests instead of
	// Duration.
	Requests int
	// ValueSize is the PUT payload size (the paper uses 1KB).
	ValueSize int
	// KeySpace is the number of distinct keys.
	KeySpace int
	// KeyDist selects how keys are drawn.
	KeyDist Dist
	// ZipfS is the Zipf skew exponent for DistZipf (s > 1; larger is more
	// skewed). 0 means the default 1.1.
	ZipfS float64
	// PutPct/DeletePct are the operation mix out of 100; the remainder
	// is GETs (GetPct derives it).
	PutPct    int
	DeletePct int
	// Pipeline keeps up to this many requests in flight per connection
	// (HTTP pipelining). 0 or 1 is the synchronous request/response
	// loop; higher depths let one connection's requests queue at the
	// server, which is what lets the group-commit loop form bursts.
	Pipeline int
	// Seed makes runs reproducible; each connection derives its own
	// stream.
	Seed int64
	// QueueOf, when set together with ShardOfKey, maps a freshly dialed
	// connection to the server RSS queue its flow hashes to. The
	// generator then salts each key until it hashes to that queue's
	// shard — the client side of the hash-alignment invariant
	// (DESIGN.md §5.7): every PUT arrives at the loop owning its shard,
	// keeping the zero-copy ingest path core-local.
	QueueOf func(kvclient.Conn) int
	// ShardOfKey maps a key to its owning shard (bind core.ShardOf to
	// the shard count).
	ShardOfKey func(key []byte) int
	// Retry, when set, runs each worker over kvclient's retrying client:
	// transient failures — 503 sheds, shard-down windows, response
	// timeouts, connection resets — back off and re-issue instead of
	// aborting the worker, so the generator rides through heal events.
	// Implies Pipeline 1. Hash alignment (QueueOf) is bypassed: the
	// retry layer redials internally, which would invalidate a computed
	// alignment.
	Retry *kvclient.RetryConfig
	// Rate, when > 0, switches the generator to open loop: arrivals are
	// a Poisson process at Rate requests/second total (split evenly
	// across connections), scheduled independently of completions — the
	// load a congested server faces from the outside world, where slow
	// responses do not slow the offered stream. Each connection splits
	// into a paced sender and an in-order receiver; arrivals that find
	// the in-flight window full are dropped client-side and counted
	// (Result.ClientDrops) rather than back-pressured. Requires
	// Duration; incompatible with Retry and Pipeline (ignored).
	Rate float64
	// Budget, in open-loop mode, is both the wire latency budget and the
	// client SLO: each request carries the budget *remaining* at send
	// time (X-Budget-Us, aged by client-side queue wait), arrivals whose
	// budget lapses before they reach the wire are dropped client-side
	// as doomed, and a response counts toward Result.Good only if it
	// lands within Budget of its scheduled arrival. 0 means no budget:
	// every accepted response is good.
	Budget time.Duration
	// InFlight caps requests outstanding per connection in open-loop
	// mode (default 1024). A small cap is client-side containment: work
	// that would queue beyond what the budget can survive is dropped at
	// the client (Result.ClientDrops) instead of aging in socket buffers
	// where no server-side controller can see its true age.
	InFlight int
}

// Result aggregates a run.
type Result struct {
	Requests uint64
	Errors   uint64
	// Retries counts transient-failure re-attempts absorbed by the retry
	// layer (only populated when Config.Retry is set).
	Retries uint64
	Elapsed time.Duration
	Hist    hdrhist.Hist
	// Open-loop accounting (Config.Rate > 0). Offered counts scheduled
	// arrivals in the measured window; Good counts responses accepted
	// (non-503) within the Budget SLO; Shed counts overload rejections —
	// server 503s plus arrivals whose budget lapsed client-side before
	// the wire; ClientDrops counts arrivals dropped because the
	// connection's in-flight window was full. Offered ≥ Good + Shed +
	// ClientDrops (the remainder: errors and SLO-missing responses).
	Offered     uint64
	Good        uint64
	Shed        uint64
	ClientDrops uint64
}

// GetPct is the GET share of the mix: whatever PutPct and DeletePct
// leave over (read-mix sweeps are specified by their read percentage,
// but the generator's knobs are the write ones).
func (c Config) GetPct() int { return 100 - c.PutPct - c.DeletePct }

// Throughput returns requests per second.
func (r Result) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Requests) / r.Elapsed.Seconds()
}

// Goodput returns SLO-compliant completions per second (open loop).
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Good) / r.Elapsed.Seconds()
}

// String summarizes the result.
func (r Result) String() string {
	return fmt.Sprintf("%.0f req/s, %s", r.Throughput(), r.Hist.String())
}

// Dialer opens workload connections.
type Dialer func() (kvclient.Conn, error)

// Run executes the workload and blocks until done.
func Run(cfg Config, dial Dialer) (Result, error) {
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 1024
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 10000
	}
	if cfg.PutPct == 0 && cfg.DeletePct == 0 {
		cfg.PutPct = 100
	}
	if cfg.Duration <= 0 && cfg.Requests <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.Retry != nil {
		cfg.Pipeline = 1
	}
	if cfg.Rate > 0 && cfg.Duration <= 0 {
		cfg.Duration = time.Second // open loop is duration-bounded
	}
	if cfg.ZipfS == 0 {
		cfg.ZipfS = 1.1
	}

	type connResult struct {
		reqs, errs, retries uint64
		offered, good       uint64
		shed, clientDrops   uint64
		hist                hdrhist.Hist
		err                 error
	}
	if cfg.Retry != nil {
		cfg.Rate = 0 // open loop drives raw clients; retry redials internally
	}
	results := make([]connResult, cfg.Conns)
	var wg sync.WaitGroup

	var startMeasure, stop time.Time
	measureStart := time.Now().Add(cfg.Warmup)
	if cfg.Duration > 0 {
		stop = measureStart.Add(cfg.Duration)
	}
	startMeasure = measureStart

	perConnReqs := 0
	if cfg.Requests > 0 {
		perConnReqs = (cfg.Requests + cfg.Conns - 1) / cfg.Conns
	}

	for ci := 0; ci < cfg.Conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			res := &results[ci]
			var cl *kvclient.Client
			var rc *kvclient.RetryClient
			var conn kvclient.Conn
			if cfg.Retry != nil {
				rcfg := *cfg.Retry
				if rcfg.Seed == 0 {
					rcfg.Seed = cfg.Seed + int64(ci)*104729 + 1
				}
				rc = kvclient.NewRetry(dial, rcfg)
				defer func() {
					res.retries = rc.Stats().Retries
					rc.Close()
				}()
			} else {
				c, err := dial()
				if err != nil {
					res.err = err
					return
				}
				conn = c
				cl = kvclient.New(conn)
				defer cl.Close()
			}
			alignQ := -1
			var keyCache map[int][]byte
			if conn != nil && cfg.QueueOf != nil && cfg.ShardOfKey != nil {
				alignQ = cfg.QueueOf(conn)
				keyCache = make(map[int][]byte)
			}
			makeKey := func(keyID int) []byte {
				if alignQ < 0 {
					return []byte(fmt.Sprintf("key%012d", keyID))
				}
				if k, ok := keyCache[keyID]; ok {
					return k
				}
				// Deterministic rejection sampling: the first salt that
				// lands the key on this connection's queue (expected
				// iterations = shard count). Each queue thus works a
				// disjoint key subspace, like per-core wrk streams.
				var k []byte
				for salt := 0; ; salt++ {
					k = []byte(fmt.Sprintf("key%012d-%04d", keyID, salt))
					if cfg.ShardOfKey(k) == alignQ {
						break
					}
				}
				keyCache[keyID] = k
				return k
			}
			rng := rand.New(rand.NewSource(cfg.Seed + int64(ci)*7919))
			var zipf *rand.Zipf
			if cfg.KeyDist == DistZipf {
				zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.KeySpace-1))
			}
			value := make([]byte, cfg.ValueSize)
			rng.Read(value)
			seqKey := ci // stride sequential keys across connections

			nextKey := func() []byte {
				var keyID int
				switch cfg.KeyDist {
				case DistSeq:
					keyID = seqKey % cfg.KeySpace
					seqKey += cfg.Conns
				case DistUniform:
					keyID = rng.Intn(cfg.KeySpace)
				case DistZipf:
					keyID = int(zipf.Uint64())
				}
				return makeKey(keyID)
			}

			if cfg.Rate > 0 && cl != nil {
				os, err := runOpenLoop(cfg, cl, ci, rng, nextKey, startMeasure, stop)
				res.reqs, res.errs = os.reqs, os.errs
				res.offered, res.good = os.offered, os.good
				res.shed, res.clientDrops = os.shed, os.clientDrops
				res.hist = os.hist
				res.err = err
				return
			}
			measured := 0
			if cfg.Pipeline > 1 {
				// Windowed pipelining: keep up to Pipeline requests in
				// flight; responses come back in request order. Latency
				// covers send-to-response, queueing included.
				type outst struct {
					t0 time.Time
					op int // 0 put, 1 delete, 2 get
				}
				var window []outst
				recvOne := func() error {
					status, _, err := cl.Recv()
					o := window[0]
					window = window[1:]
					if err == nil {
						switch {
						case o.op == 0 && status != 200 && status != 201:
							err = fmt.Errorf("pipelined PUT: status %d", status)
						case o.op != 0 && status != 200 && status != 204 && status != 404:
							err = fmt.Errorf("pipelined op %d: status %d", o.op, status)
						}
					}
					if o.t0.After(startMeasure) {
						measured++
						res.reqs++
						if err != nil {
							res.errs++
						} else {
							res.hist.Record(time.Since(o.t0))
						}
					}
					return err
				}
				for {
					now := time.Now()
					if perConnReqs > 0 {
						if measured+len(window) >= perConnReqs {
							break
						}
					} else if now.After(stop) {
						break
					}
					key := nextKey()
					op := rng.Intn(100)
					var method, path string
					var body []byte
					kind := 2
					switch {
					case op < cfg.PutPct:
						method, path, body, kind = "PUT", kvproto.KeyPath(key), value, 0
					case op < cfg.PutPct+cfg.DeletePct:
						method, path, kind = "DELETE", kvproto.KeyPath(key), 1
					default:
						method, path = "GET", kvproto.KeyPath(key)
					}
					t0 := time.Now()
					if err := cl.Send(method, path, body); err != nil {
						res.err = err
						return
					}
					window = append(window, outst{t0: t0, op: kind})
					if len(window) >= cfg.Pipeline {
						if err := recvOne(); err != nil {
							res.err = err
							return
						}
					}
				}
				for len(window) > 0 {
					if err := recvOne(); err != nil {
						res.err = err
						return
					}
				}
				return
			}
			for {
				now := time.Now()
				if perConnReqs > 0 {
					if measured >= perConnReqs {
						return
					}
				} else if now.After(stop) {
					return
				}
				key := nextKey()

				op := rng.Intn(100)
				t0 := time.Now()
				var err error
				switch {
				case op < cfg.PutPct:
					if rc != nil {
						err = rc.Put(key, value)
					} else {
						err = cl.Put(key, value)
					}
				case op < cfg.PutPct+cfg.DeletePct:
					if rc != nil {
						_, err = rc.Delete(key)
					} else {
						_, err = cl.Delete(key)
					}
				default:
					if rc != nil {
						_, _, err = rc.Get(key)
					} else {
						_, _, err = cl.Get(key)
					}
				}
				lat := time.Since(t0)
				if t0.After(startMeasure) {
					measured++
					res.reqs++
					if err != nil {
						res.errs++
					} else {
						res.hist.Record(lat)
					}
				}
				if err != nil {
					if rc == nil || !kvclient.Transient(err) {
						res.err = err
						return
					}
					// Retry budget exhausted mid-outage: already counted as
					// an error; the worker keeps going and rejoins the load
					// once the shard heals.
				}
			}
		}(ci)
	}
	wg.Wait()

	var out Result
	var firstErr error
	for i := range results {
		out.Requests += results[i].reqs
		out.Errors += results[i].errs
		out.Retries += results[i].retries
		out.Offered += results[i].offered
		out.Good += results[i].good
		out.Shed += results[i].shed
		out.ClientDrops += results[i].clientDrops
		out.Hist.Merge(&results[i].hist)
		if results[i].err != nil && firstErr == nil {
			firstErr = results[i].err
		}
	}
	if cfg.Duration > 0 {
		out.Elapsed = cfg.Duration
	} else {
		out.Elapsed = time.Since(startMeasure)
	}
	return out, firstErr
}

// openStats is one connection's open-loop tally.
type openStats struct {
	reqs, errs        uint64
	offered, good     uint64
	shed, clientDrops uint64
	hist              hdrhist.Hist
}

// runOpenLoop drives one connection at a Poisson-paced offered rate.
// The sender schedules arrivals from an exponential inter-arrival
// stream and never waits for responses; the receiver consumes them in
// request order (the protocol is pipelined FIFO). A bounded in-flight
// window keeps client memory finite: arrivals beyond it are dropped
// and counted, not queued — queueing them would quietly convert the
// generator back to closed loop.
func runOpenLoop(cfg Config, cl *kvclient.Client, ci int, rng *rand.Rand, nextKey func() []byte, startMeasure, stop time.Time) (openStats, error) {
	var st openStats
	perRate := cfg.Rate / float64(cfg.Conns)

	type rec struct {
		t0 time.Time // scheduled arrival: latency includes client queue wait
		op int       // 0 put, 1 delete, 2 get
	}
	window := cfg.InFlight
	if window <= 0 {
		window = 1024
	}
	sendCh := make(chan rec, window)
	// Bound every Recv: a response overdue by many budgets is never
	// going to be good, and an unbounded wait would wedge the drain if
	// the transport stalls under the very overload being generated.
	if cfg.Budget > 0 {
		to := 10 * cfg.Budget
		if to < 2*time.Second {
			to = 2 * time.Second
		}
		cl.SetTimeout(to)
	}
	// After the first Recv failure the response stream is
	// desynchronized: the connection is wedged, every remaining
	// in-flight request is an error, and the sender must stop offering
	// into it. The flag is the cross-goroutine fail-stop signal.
	var failed atomic.Bool
	var rdWG sync.WaitGroup
	rdWG.Add(1)
	go func() {
		defer rdWG.Done()
		for o := range sendCh {
			var status int
			var err error
			if !failed.Load() {
				status, _, err = cl.Recv()
				if err != nil {
					failed.Store(true)
				}
			}
			if !o.t0.After(startMeasure) {
				continue
			}
			st.reqs++
			switch {
			case failed.Load():
				st.errs++
			case status == 503:
				st.shed++
			case status == 200 || status == 201 || status == 204 ||
				(o.op != 0 && status == 404):
				lat := time.Since(o.t0)
				st.hist.Record(lat)
				if cfg.Budget <= 0 || lat <= cfg.Budget {
					st.good++
				}
			default:
				st.errs++
			}
		}
	}()

	// Dedicated arrival stream so pacing does not perturb the op/key
	// stream shared with the closed-loop modes.
	arr := rand.New(rand.NewSource(cfg.Seed + int64(ci)*15485863 + 7))
	var offered, lapsed, drops uint64
	var sendErr error
	value := make([]byte, cfg.ValueSize)
	arr.Read(value)
	next := time.Now()
	for {
		next = next.Add(time.Duration(arr.ExpFloat64() / perRate * float64(time.Second)))
		if next.After(stop) {
			break
		}
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		if failed.Load() {
			break
		}
		measured := next.After(startMeasure)
		if measured {
			offered++
		}
		budget := cfg.Budget
		if budget > 0 {
			// Age the budget by the client-side wait already incurred: the
			// server sees only what remains. A lapsed budget is doomed work
			// — drop it here instead of shipping it.
			budget -= time.Since(next)
			if budget <= 0 {
				if measured {
					lapsed++
				}
				continue
			}
		}
		key := nextKey()
		op := rng.Intn(100)
		var method, path string
		var body []byte
		kind := 2
		switch {
		case op < cfg.PutPct:
			method, path, body, kind = "PUT", kvproto.KeyPath(key), value, 0
		case op < cfg.PutPct+cfg.DeletePct:
			method, path, kind = "DELETE", kvproto.KeyPath(key), 1
		default:
			method, path = "GET", kvproto.KeyPath(key)
		}
		select {
		case sendCh <- rec{t0: next, op: kind}:
		default:
			if measured {
				drops++
			}
			continue
		}
		if err := cl.SendBudget(method, path, body, budget); err != nil {
			// A send failure on a connection the reader already declared
			// wedged is the same per-connection outcome, not a run error.
			if !failed.Load() {
				sendErr = err
			}
			break
		}
	}
	close(sendCh)
	rdWG.Wait()
	st.offered += offered
	st.shed += lapsed
	st.clientDrops += drops
	return st, sendErr
}
