package wrkgen

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"packetstore/internal/httpmsg"
	"packetstore/internal/kvclient"
)

// fakeConn is an in-process server speaking just enough of the protocol.
type fakeConn struct {
	mu      sync.Mutex
	pending bytes.Buffer
	parser  *httpmsg.RequestParser
	closed  bool
	puts    *int64
	gets    *int64
	countMu *sync.Mutex
}

func newFakeDialer() (Dialer, *int64, *int64, *sync.Mutex) {
	var puts, gets int64
	var mu sync.Mutex
	return func() (kvclient.Conn, error) {
		return &fakeConn{parser: httpmsg.NewRequestParser(0), puts: &puts, gets: &gets, countMu: &mu}, nil
	}, &puts, &gets, &mu
}

func (c *fakeConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("closed")
	}
	rest := p
	for len(rest) > 0 {
		res := c.parser.Feed(rest)
		if res.Err != nil {
			return 0, res.Err
		}
		rest = rest[res.Consumed:]
		if res.Done {
			req := c.parser.Request()
			c.countMu.Lock()
			switch req.Method {
			case "PUT":
				*c.puts++
				c.pending.Write(httpmsg.AppendResponse(nil, 200, 0))
			case "GET":
				*c.gets++
				c.pending.Write(httpmsg.AppendResponse(nil, 404, 0))
			case "DELETE":
				c.pending.Write(httpmsg.AppendResponse(nil, 204, 0))
			}
			c.countMu.Unlock()
			c.parser.Reset()
		}
	}
	return len(p), nil
}

func (c *fakeConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending.Len() == 0 {
		if c.closed {
			return 0, io.EOF
		}
		return 0, errors.New("fakeConn: read with nothing pending")
	}
	return c.pending.Read(p)
}

func (c *fakeConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func TestRunRequestsMode(t *testing.T) {
	dial, puts, _, mu := newFakeDialer()
	res, err := Run(Config{
		Conns: 4, Requests: 100, ValueSize: 64,
		KeySpace: 10, PutPct: 100, Seed: 1,
	}, dial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 100 {
		t.Fatalf("%d requests, want >= 100", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	mu.Lock()
	defer mu.Unlock()
	if *puts < 100 {
		t.Fatalf("server saw %d puts", *puts)
	}
	if res.Hist.Count() == 0 || res.Throughput() <= 0 {
		t.Fatal("no latency samples or throughput")
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunDurationModeWithMix(t *testing.T) {
	dial, puts, gets, mu := newFakeDialer()
	res, err := Run(Config{
		Conns: 2, Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond,
		ValueSize: 32, KeySpace: 100, KeyDist: DistUniform,
		PutPct: 50, DeletePct: 10, Seed: 3,
	}, dial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests in duration mode")
	}
	mu.Lock()
	defer mu.Unlock()
	if *puts == 0 || *gets == 0 {
		t.Fatalf("mix not exercised: %d puts %d gets", *puts, *gets)
	}
}

func TestRunZipf(t *testing.T) {
	dial, _, _, _ := newFakeDialer()
	res, err := Run(Config{
		Conns: 1, Requests: 50, KeySpace: 1000, KeyDist: DistZipf,
		PutPct: 100, Seed: 5,
	}, dial)
	if err != nil || res.Requests < 50 {
		t.Fatalf("%v %d", err, res.Requests)
	}
}

func TestRunDialFailure(t *testing.T) {
	wantErr := errors.New("dial boom")
	_, err := Run(Config{Conns: 2, Requests: 10},
		func() (kvclient.Conn, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("got %v", err)
	}
}

// blockConn is a fake server whose Read blocks until a response is
// pending — what the open-loop split sender/receiver pair needs (the
// receiver runs concurrently with the sender and must wait, not error,
// when it races ahead).
type blockConn struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending bytes.Buffer
	parser  *httpmsg.RequestParser
	closed  bool
	status  int // forced response status; 0 means per-method defaults
	budgets int64
}

func newBlockConn(status int) *blockConn {
	c := &blockConn{parser: httpmsg.NewRequestParser(0), status: status}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *blockConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("closed")
	}
	rest := p
	for len(rest) > 0 {
		res := c.parser.Feed(rest)
		if res.Err != nil {
			return 0, res.Err
		}
		rest = rest[res.Consumed:]
		if res.Done {
			req := c.parser.Request()
			if req.BudgetUs > 0 {
				c.budgets++
			}
			status := c.status
			if status == 0 {
				switch req.Method {
				case "PUT":
					status = 200
				case "DELETE":
					status = 204
				default:
					status = 404
				}
			}
			c.pending.Write(httpmsg.AppendResponse(nil, status, 0))
			c.parser.Reset()
		}
	}
	c.cond.Broadcast()
	return len(p), nil
}

func (c *blockConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for c.pending.Len() == 0 {
		if c.closed {
			return 0, io.EOF
		}
		c.cond.Wait()
	}
	return c.pending.Read(p)
}

func (c *blockConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	return nil
}

func TestOpenLoopGoodput(t *testing.T) {
	var mu sync.Mutex
	var conns []*blockConn
	dial := func() (kvclient.Conn, error) {
		c := newBlockConn(0)
		mu.Lock()
		conns = append(conns, c)
		mu.Unlock()
		return c, nil
	}
	res, err := Run(Config{
		Conns: 2, Duration: 200 * time.Millisecond,
		Rate: 2000, Budget: 100 * time.Millisecond,
		ValueSize: 32, KeySpace: 100, PutPct: 100, Seed: 7,
	}, dial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("open loop offered nothing")
	}
	if res.Good == 0 || res.Goodput() <= 0 {
		t.Fatalf("no goodput: %+v", res)
	}
	if res.Shed != 0 || res.Errors != 0 {
		t.Fatalf("unexpected sheds/errors against an instant server: %+v", res)
	}
	if res.Good > res.Offered {
		t.Fatalf("good %d > offered %d", res.Good, res.Offered)
	}
	mu.Lock()
	defer mu.Unlock()
	var budgets int64
	for _, c := range conns {
		c.mu.Lock()
		budgets += c.budgets
		c.mu.Unlock()
	}
	if budgets == 0 {
		t.Fatal("no request carried an X-Budget-Us header")
	}
}

func TestOpenLoopShedClassification(t *testing.T) {
	dial := func() (kvclient.Conn, error) { return newBlockConn(503), nil }
	res, err := Run(Config{
		Conns: 1, Duration: 150 * time.Millisecond,
		Rate: 1000, ValueSize: 32, KeySpace: 100, PutPct: 100, Seed: 9,
	}, dial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Good != 0 {
		t.Fatalf("503s counted as good: %+v", res)
	}
	if res.Shed == 0 {
		t.Fatalf("no sheds recorded: %+v", res)
	}
}
