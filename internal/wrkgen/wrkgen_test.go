package wrkgen

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"time"

	"packetstore/internal/httpmsg"
	"packetstore/internal/kvclient"
)

// fakeConn is an in-process server speaking just enough of the protocol.
type fakeConn struct {
	mu      sync.Mutex
	pending bytes.Buffer
	parser  *httpmsg.RequestParser
	closed  bool
	puts    *int64
	gets    *int64
	countMu *sync.Mutex
}

func newFakeDialer() (Dialer, *int64, *int64, *sync.Mutex) {
	var puts, gets int64
	var mu sync.Mutex
	return func() (kvclient.Conn, error) {
		return &fakeConn{parser: httpmsg.NewRequestParser(0), puts: &puts, gets: &gets, countMu: &mu}, nil
	}, &puts, &gets, &mu
}

func (c *fakeConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return 0, errors.New("closed")
	}
	rest := p
	for len(rest) > 0 {
		res := c.parser.Feed(rest)
		if res.Err != nil {
			return 0, res.Err
		}
		rest = rest[res.Consumed:]
		if res.Done {
			req := c.parser.Request()
			c.countMu.Lock()
			switch req.Method {
			case "PUT":
				*c.puts++
				c.pending.Write(httpmsg.AppendResponse(nil, 200, 0))
			case "GET":
				*c.gets++
				c.pending.Write(httpmsg.AppendResponse(nil, 404, 0))
			case "DELETE":
				c.pending.Write(httpmsg.AppendResponse(nil, 204, 0))
			}
			c.countMu.Unlock()
			c.parser.Reset()
		}
	}
	return len(p), nil
}

func (c *fakeConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.pending.Len() == 0 {
		if c.closed {
			return 0, io.EOF
		}
		return 0, errors.New("fakeConn: read with nothing pending")
	}
	return c.pending.Read(p)
}

func (c *fakeConn) Close() error {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	return nil
}

func TestRunRequestsMode(t *testing.T) {
	dial, puts, _, mu := newFakeDialer()
	res, err := Run(Config{
		Conns: 4, Requests: 100, ValueSize: 64,
		KeySpace: 10, PutPct: 100, Seed: 1,
	}, dial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests < 100 {
		t.Fatalf("%d requests, want >= 100", res.Requests)
	}
	if res.Errors != 0 {
		t.Fatalf("%d errors", res.Errors)
	}
	mu.Lock()
	defer mu.Unlock()
	if *puts < 100 {
		t.Fatalf("server saw %d puts", *puts)
	}
	if res.Hist.Count() == 0 || res.Throughput() <= 0 {
		t.Fatal("no latency samples or throughput")
	}
	if res.String() == "" {
		t.Fatal("empty String")
	}
}

func TestRunDurationModeWithMix(t *testing.T) {
	dial, puts, gets, mu := newFakeDialer()
	res, err := Run(Config{
		Conns: 2, Duration: 100 * time.Millisecond, Warmup: 20 * time.Millisecond,
		ValueSize: 32, KeySpace: 100, KeyDist: DistUniform,
		PutPct: 50, DeletePct: 10, Seed: 3,
	}, dial)
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests == 0 {
		t.Fatal("no requests in duration mode")
	}
	mu.Lock()
	defer mu.Unlock()
	if *puts == 0 || *gets == 0 {
		t.Fatalf("mix not exercised: %d puts %d gets", *puts, *gets)
	}
}

func TestRunZipf(t *testing.T) {
	dial, _, _, _ := newFakeDialer()
	res, err := Run(Config{
		Conns: 1, Requests: 50, KeySpace: 1000, KeyDist: DistZipf,
		PutPct: 100, Seed: 5,
	}, dial)
	if err != nil || res.Requests < 50 {
		t.Fatalf("%v %d", err, res.Requests)
	}
}

func TestRunDialFailure(t *testing.T) {
	wantErr := errors.New("dial boom")
	_, err := Run(Config{Conns: 2, Requests: 10},
		func() (kvclient.Conn, error) { return nil, wantErr })
	if err != wantErr {
		t.Fatalf("got %v", err)
	}
}
