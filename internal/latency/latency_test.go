package latency

import (
	"testing"
	"time"
)

func TestSpinZero(t *testing.T) {
	start := time.Now()
	Spin(0)
	if e := time.Since(start); e > time.Millisecond {
		t.Fatalf("Spin(0) took %v, want ~0", e)
	}
}

func TestSpinBelowMinIsNoop(t *testing.T) {
	before := TotalSpun()
	Spin(minSpin - 1)
	if TotalSpun() != before {
		t.Fatalf("sub-threshold spin charged time")
	}
}

func TestSpinDuration(t *testing.T) {
	for _, d := range []time.Duration{time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond} {
		start := time.Now()
		Spin(d)
		e := time.Since(start)
		if e < d {
			t.Errorf("Spin(%v) returned after %v, want >= %v", d, e, d)
		}
		// Allow generous slack for scheduler preemption, but catch
		// gross overshoot (e.g. accidentally sleeping).
		if e > d*20+time.Millisecond {
			t.Errorf("Spin(%v) took %v, way over budget", d, e)
		}
	}
}

func TestTotalSpunAccumulates(t *testing.T) {
	ResetTotalSpun()
	Spin(time.Microsecond)
	Spin(2 * time.Microsecond)
	if got := TotalSpun(); got != 3*time.Microsecond {
		t.Fatalf("TotalSpun = %v, want 3µs", got)
	}
	ResetTotalSpun()
	if TotalSpun() != 0 {
		t.Fatalf("ResetTotalSpun did not zero the counter")
	}
}

func BenchmarkSpin1us(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Spin(time.Microsecond)
	}
}
