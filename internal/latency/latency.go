// Package latency provides calibrated sub-microsecond busy-wait delays.
//
// The simulator models hardware costs (PM flush latency, NIC per-packet
// processing, wire propagation) that are far below the resolution of
// time.Sleep on a general-purpose kernel (tens of microseconds at best).
// Benchmarks in this repository measure real wall-clock time, so emulated
// hardware latencies must consume real time with nanosecond accuracy; the
// only portable way to do that is to spin.
//
// Spin is the single primitive. Code that wants to charge a hardware cost
// computes the total duration for the operation (for example, lines x
// perLineFlushLatency) and issues one Spin call, so the fixed overhead of
// reading the clock is amortized over the whole operation.
package latency

import (
	"runtime"
	"sync/atomic"
	"time"
)

// minSpin is the shortest delay worth spinning for. Reading the monotonic
// clock via time.Since costs roughly 20-30ns on Linux (vDSO); delays below
// that are indistinguishable from the measurement overhead, so they are
// skipped entirely rather than over-charged.
const minSpin = 20 * time.Nanosecond

// totalSpun accumulates all time spent spinning, in nanoseconds. It is a
// diagnostic: harnesses subtract it from wall time to separate "emulated
// hardware time" from "real software time".
var totalSpun atomic.Int64

// Spin waits for at least d of wall-clock time while yielding the
// processor to other goroutines. Yielding matters: emulated delays model
// hardware that works in parallel with the CPUs (the wire propagates, the
// NIC DMAs, the PM DIMM drains its write queue), so a delay must consume
// time without monopolizing a core — on a single-core host a pure busy
// wait would serialize all emulated hardware with all software and
// destroy concurrency scaling. The spin re-checks the clock between
// yields, so the wait is accurate to the scheduler's hand-off latency.
func Spin(d time.Duration) {
	if d < minSpin {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
		runtime.Gosched()
	}
	totalSpun.Add(int64(d))
}

// SpinHot busy-waits for approximately d without yielding: it models
// work that stalls the issuing CPU itself (cache-line write-backs, fence
// drains, blocking loads), which cannot overlap with other software on
// that core. Use Spin for delays that model hardware running in parallel
// with the CPUs (wire propagation, NIC DMA engines).
func SpinHot(d time.Duration) {
	if d < minSpin {
		return
	}
	start := time.Now()
	for time.Since(start) < d {
	}
	totalSpun.Add(int64(d))
}

// TotalSpun reports the cumulative emulated-hardware time charged through
// Spin since process start (or the last ResetTotalSpun).
func TotalSpun() time.Duration { return time.Duration(totalSpun.Load()) }

// ResetTotalSpun zeroes the cumulative spin counter. Harnesses call it at
// the start of a measurement window.
func ResetTotalSpun() { totalSpun.Store(0) }
