package pmem

import (
	"testing"
	"time"

	"packetstore/internal/calib"
)

// numaProfile returns a region profile with tiny but distinct local
// rates, and the matching remote rates. The delays are nanoseconds so
// the emulation spin is negligible while the accounting stays exact.
func numaProfile() calib.Profile {
	return calib.Profile{
		Name:        "numa-test",
		PMReadLine:  10 * time.Nanosecond,
		PMWriteLine: 4 * time.Nanosecond,
		PMFlushLine: 8 * time.Nanosecond,
		NUMA: calib.NUMAProfile{
			RemoteReadLine:  25 * time.Nanosecond,
			RemoteWriteLine: 10 * time.Nanosecond,
			RemoteFlushLine: 20 * time.Nanosecond,
			HopCost:         5 * time.Nanosecond,
		},
	}
}

// twoNode carves a fresh region into two 2KB halves: lines in
// [0, 2048) on node 0, [2048, 4096) on node 1.
func twoNode(t *testing.T) *Region {
	t.Helper()
	p := numaProfile()
	r := New(4096, p)
	r.SetNUMA(2, p.NUMA, []NodeRange{
		{Off: 0, Len: 2048, Node: 0},
		{Off: 2048, Len: 2048, Node: 1},
	})
	return r
}

func lineDelta(t *testing.T, r *Region, before Stats, wantLocal, wantRemote uint64) Stats {
	t.Helper()
	after := r.Stats()
	if got := after.LocalLines - before.LocalLines; got != wantLocal {
		t.Errorf("local lines += %d, want %d", got, wantLocal)
	}
	if got := after.RemoteLines - before.RemoteLines; got != wantRemote {
		t.Errorf("remote lines += %d, want %d", got, wantRemote)
	}
	return after
}

func TestNUMANodeTable(t *testing.T) {
	r := twoNode(t)
	if r.NUMANodes() != 2 {
		t.Fatalf("NUMANodes = %d, want 2", r.NUMANodes())
	}
	for _, tc := range []struct{ off, node int }{
		{0, 0}, {2047, 0}, {2048, 1}, {4095, 1},
	} {
		if got := r.NodeAt(tc.off); got != tc.node {
			t.Errorf("NodeAt(%d) = %d, want %d", tc.off, got, tc.node)
		}
	}
	// Uncovered lines default to node 0; partial ranges own whole lines.
	p := numaProfile()
	r2 := New(4096, p)
	r2.SetNUMA(2, p.NUMA, []NodeRange{{Off: 100, Len: 10, Node: 1}})
	if got := r2.NodeAt(64); got != 1 {
		t.Errorf("partial range should own its whole line: NodeAt(64) = %d", got)
	}
	if got := r2.NodeAt(0); got != 0 {
		t.Errorf("uncovered line NodeAt(0) = %d, want 0", got)
	}
	if got := r2.NodeAt(128); got != 0 {
		t.Errorf("uncovered line NodeAt(128) = %d, want 0", got)
	}
	// Removing the model restores the flat view.
	r2.SetNUMA(1, p.NUMA, nil)
	if r2.NUMANodes() != 1 || r2.NodeAt(64) != 0 {
		t.Error("SetNUMA(1) did not clear the model")
	}
}

func TestNUMATouchReadWriteAttribution(t *testing.T) {
	r := twoNode(t)
	p := numaProfile()

	// Local touch: 2 lines on node 0 from node 0.
	st := r.Stats()
	r.TouchFrom(0, 0, 2*LineSize)
	st = lineDelta(t, r, st, 2, 0)

	// Remote touch: 2 lines on node 1 from node 0; the surcharge is
	// exactly (remote - local) per line.
	r.TouchFrom(0, 2048, 2*LineSize)
	after := lineDelta(t, r, st, 0, 2)
	wantExtra := 2 * (p.NUMA.RemoteReadLine - p.PMReadLine)
	if got := after.RemoteExtra - st.RemoteExtra; got != wantExtra {
		t.Errorf("touch RemoteExtra += %v, want %v", got, wantExtra)
	}

	// The same lines from their own node are local again.
	st = r.Stats()
	r.TouchFrom(1, 2048, 2*LineSize)
	st = lineDelta(t, r, st, 2, 0)

	// ReadFrom and WriteFrom attribute by span the same way.
	buf := make([]byte, LineSize)
	r.ReadFrom(1, buf, 0) // node-0 line from node 1: remote
	st = lineDelta(t, r, st, 0, 1)
	r.WriteFrom(0, 0, buf) // node-0 line from node 0: local
	st = lineDelta(t, r, st, 1, 0)
	r.WriteFrom(1, 0, buf) // node-0 line from node 1: remote
	after = lineDelta(t, r, st, 0, 1)
	if got := after.RemoteExtra - st.RemoteExtra; got != p.NUMA.RemoteWriteLine-p.PMWriteLine {
		t.Errorf("write RemoteExtra += %v, want %v", got, p.NUMA.RemoteWriteLine-p.PMWriteLine)
	}
}

func TestNUMAFlushAttribution(t *testing.T) {
	r := twoNode(t)
	p := numaProfile()
	buf := make([]byte, 2*LineSize)

	// Dirty two node-1 lines (writing from node 1, local), then flush
	// them from node 0: the flush is charged remote per freshly-flushed
	// dirty line.
	r.WriteFrom(1, 2048, buf)
	st := r.Stats()
	r.FlushFrom(0, 2048, len(buf))
	after := lineDelta(t, r, st, 0, 2)
	if got := after.RemoteExtra - st.RemoteExtra; got != 2*(p.NUMA.RemoteFlushLine-p.PMFlushLine) {
		t.Errorf("flush RemoteExtra += %v, want %v", got, 2*(p.NUMA.RemoteFlushLine-p.PMFlushLine))
	}
	// Re-flushing clean lines charges (and counts) nothing.
	st = r.Stats()
	r.FlushFrom(0, 2048, len(buf))
	lineDelta(t, r, st, 0, 0)
	r.Fence()

	// PersistFrom = flush + fence, same per-line accounting, local side.
	r.WriteFrom(1, 2048+len(buf), buf)
	st = r.Stats()
	r.PersistFrom(1, 2048+len(buf), len(buf))
	lineDelta(t, r, st, 2, 0)
}

func TestNUMAFlushBatchAttribution(t *testing.T) {
	r := twoNode(t)
	p := numaProfile()
	buf := make([]byte, LineSize)

	// One dirty line on each node, flushed as one batch from node 0:
	// one local, one remote.
	r.WriteFrom(0, 0, buf)
	r.WriteFrom(1, 2048, buf)
	var fs FlushSet
	fs.Add(0, LineSize)
	fs.Add(2048, LineSize)
	st := r.Stats()
	bs := r.FlushBatchFrom(0, &fs)
	if bs.Flushed != 2 {
		t.Fatalf("batch flushed %d lines, want 2", bs.Flushed)
	}
	after := lineDelta(t, r, st, 1, 1)
	if got := after.RemoteExtra - st.RemoteExtra; got != p.NUMA.RemoteFlushLine-p.PMFlushLine {
		t.Errorf("batch RemoteExtra += %v, want %v", got, p.NUMA.RemoteFlushLine-p.PMFlushLine)
	}
	r.Fence()
}

func TestNUMATouchLinesAttribution(t *testing.T) {
	r := twoNode(t)
	// TouchLinesFrom attributes the whole batch to the node owning the
	// line at off (batched reads stay within one shard's partition).
	st := r.Stats()
	r.TouchLinesFrom(0, 2048, 3)
	st = lineDelta(t, r, st, 0, 3)
	r.TouchLinesFrom(1, 2048, 3)
	lineDelta(t, r, st, 3, 0)
}

func TestNUMALocalPlusRemoteEqualsTotal(t *testing.T) {
	r := twoNode(t)
	buf := make([]byte, 4*LineSize)
	// 4 touched + 4 read + 4 written + 4 flushed = 16 charged lines, from
	// alternating callers; every one must land in exactly one counter.
	r.TouchFrom(0, 0, len(buf))
	r.ReadFrom(1, buf, 2048)
	r.WriteFrom(0, 1024, buf)
	r.FlushFrom(1, 1024, len(buf))
	r.Fence()
	st := r.Stats()
	if total := st.LocalLines + st.RemoteLines; total != 16 {
		t.Fatalf("local %d + remote %d = %d charged lines, want 16",
			st.LocalLines, st.RemoteLines, total)
	}
}

func TestNUMAHopCost(t *testing.T) {
	p := numaProfile()
	r := New(4096, p)
	r.SetNUMA(4, p.NUMA, []NodeRange{{Off: 0, Len: 4096, Node: 3}})
	st := r.Stats()
	r.TouchFrom(0, 0, LineSize) // distance 3: remote + 2 extra hops
	after := r.Stats()
	want := p.NUMA.RemoteReadLine + 2*p.NUMA.HopCost - p.PMReadLine
	if got := after.RemoteExtra - st.RemoteExtra; got != want {
		t.Errorf("3-hop RemoteExtra = %v, want %v", got, want)
	}
	st = after
	r.TouchFrom(2, 0, LineSize) // distance 1: no hop surcharge
	after = r.Stats()
	if got := after.RemoteExtra - st.RemoteExtra; got != p.NUMA.RemoteReadLine-p.PMReadLine {
		t.Errorf("1-hop RemoteExtra = %v, want %v", got, p.NUMA.RemoteReadLine-p.PMReadLine)
	}
}

func TestNUMAZeroRemoteRatesFallBackToLocal(t *testing.T) {
	// An all-zero NUMA profile (the off model) still counts remote lines
	// but charges no surcharge: orLocal keeps remote == local.
	r := New(4096, off())
	r.SetNUMA(2, calib.NUMAProfile{}, []NodeRange{{Off: 2048, Len: 2048, Node: 1}})
	r.TouchFrom(0, 2048, 2*LineSize)
	st := r.Stats()
	if st.RemoteLines != 2 {
		t.Errorf("remote lines = %d, want 2", st.RemoteLines)
	}
	if st.RemoteExtra != 0 {
		t.Errorf("zero-rate model charged RemoteExtra %v", st.RemoteExtra)
	}
}

// TestNUMANodes1IsNoOp runs the same operation sequence against a region
// that never heard of NUMA and one with the model explicitly removed:
// the emulated charge must match to the nanosecond and no line counters
// may move — the Nodes=1 strict no-op guarantee.
func TestNUMANodes1IsNoOp(t *testing.T) {
	p := numaProfile()
	plain := New(8192, p)
	cleared := New(8192, p)
	cleared.SetNUMA(1, p.NUMA, nil)

	run := func(r *Region) Stats {
		buf := make([]byte, 3*LineSize)
		var fs FlushSet
		for i := 0; i < 8; i++ {
			off := (i * 512) % (8192 - len(buf))
			r.Write(off, buf)
			r.Touch(off, len(buf))
			r.Read(buf, off)
			r.Flush(off, len(buf))
			r.Fence()
			r.Write(off, buf)
			fs.Add(off, len(buf))
			r.FlushBatch(&fs)
			r.Fence()
			r.TouchLines(4)
		}
		return r.Stats()
	}
	sp, sc := run(plain), run(cleared)
	if sp.Charged != sc.Charged {
		t.Errorf("Nodes=1 changed the emulated charge: %v (plain) vs %v (cleared)", sp.Charged, sc.Charged)
	}
	if sc.LocalLines != 0 || sc.RemoteLines != 0 || sc.RemoteExtra != 0 {
		t.Errorf("Nodes=1 region kept NUMA counters: %+v", sc)
	}
	if sp.Flushes != sc.Flushes || sp.Reads != sc.Reads || sp.Writes != sc.Writes {
		t.Errorf("op counters diverged: %+v vs %+v", sp, sc)
	}
}
