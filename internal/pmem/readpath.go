package pmem

import "time"

// CopyOut copies [off, off+len(dst)) into dst under the region's write
// lock, so the copy is atomic with respect to every locked mutator
// (Write, XorDeltaBatch, XorReconstruct, EraseRange, CorruptByte). It
// charges no latency: lock-free readers account their PM cost separately
// with TouchLines, batching the whole value into one charge. Unlike
// Slice, the returned bytes cannot be torn by a concurrent locked write —
// the caller still must validate (checksum + sequence recheck) against
// writers that bypass the lock, such as NIC DMA into recycled slots.
func (r *Region) CopyOut(dst []byte, off int) {
	r.check(off, len(dst))
	r.mu.Lock()
	copy(dst, r.buf[off:])
	r.mu.Unlock()
}

// TouchLines charges the PM read latency for nl cache lines as a single
// batch: one charge call, one stats update. Per-extent Touch calls pay
// the scheduler hand-off per span; a read that knows its total footprint
// batches it here (the read-path analogue of XorDeltaBatch's single
// write charge).
func (r *Region) TouchLines(nl int) {
	if nl <= 0 {
		return
	}
	r.charge(time.Duration(nl) * r.readLine)
	r.statsMu.Lock()
	r.stats.Reads += uint64(nl)
	r.statsMu.Unlock()
}

// TouchLinesFrom is TouchLines issued from the given NUMA node, with the
// whole batch attributed to the node that owns the line containing off.
// The batched read path stays within one shard's partition, which lives
// on a single node, so one owner lookup covers every line of the batch.
func (r *Region) TouchLinesFrom(node, off, nl int) {
	if nl <= 0 {
		return
	}
	cost := time.Duration(nl) * r.readLine
	if r.numaNodes > 1 {
		var acc nodeAcc
		l := off / LineSize
		for i := 0; i < nl; i++ {
			r.accLine(&acc, node, l, r.readLine, r.remoteRead)
		}
		r.commitAcc(&acc)
		cost = acc.cost
	}
	r.charge(cost)
	r.statsMu.Lock()
	r.stats.Reads += uint64(nl)
	r.statsMu.Unlock()
}
