package pmem

import (
	"bytes"
	"testing"
)

func TestFlushSetDedup(t *testing.T) {
	r := New(4096, off())
	var fs FlushSet

	// Three ranges: two share line 0 (slot header + key bytes), one is
	// adjacent. Lines touched: {0}, {0,1}, {2,3} -> distinct {0,1,2,3}.
	r.Write(0, bytes.Repeat([]byte{1}, 256))
	fs.Add(0, 16)
	fs.Add(32, 96)  // lines 0-1, line 0 duplicated
	fs.Add(128, 96) // lines 2-3
	if got := fs.Refs(); got != 5 {
		t.Fatalf("Refs = %d, want 5", got)
	}
	bs := r.FlushBatch(&fs)
	if bs.Lines != 4 || bs.Coalesced != 1 || bs.Flushed != 4 || bs.Wasted != 0 {
		t.Fatalf("BatchStats = %+v, want Lines 4 Coalesced 1 Flushed 4 Wasted 0", bs)
	}
	if !fs.Empty() {
		t.Fatal("FlushBatch did not reset the set")
	}
	if n := r.PendingLines(); n != 4 {
		t.Fatalf("PendingLines = %d, want 4", n)
	}
	r.Fence()
	if n := r.PendingLines(); n != 0 {
		t.Fatalf("PendingLines after Fence = %d, want 0", n)
	}
	st := r.Stats()
	if st.Flushes != 1 || st.BatchFlushes != 1 || st.LinesFlushed != 4 ||
		st.LinesCoalesced != 1 || st.WastedFlushes != 0 || st.Fences != 1 {
		t.Fatalf("Stats = %+v", st)
	}
}

func TestFlushSetCleanAndWastedLines(t *testing.T) {
	r := New(4096, off())
	var fs FlushSet

	// A clean line costs nothing; a line already pending counts as wasted.
	r.Write(0, bytes.Repeat([]byte{1}, 64))
	r.Flush(0, 64) // line 0 now pending
	fs.Add(0, 64)  // wasted: already pending
	fs.Add(64, 64) // clean: never written
	bs := r.FlushBatch(&fs)
	if bs.Lines != 2 || bs.Flushed != 0 || bs.Wasted != 1 {
		t.Fatalf("BatchStats = %+v, want Lines 2 Flushed 0 Wasted 1", bs)
	}
	if st := r.Stats(); st.WastedFlushes != 1 {
		t.Fatalf("WastedFlushes = %d, want 1", st.WastedFlushes)
	}
}

func TestFlushWastedCounting(t *testing.T) {
	r := New(4096, off())
	r.Write(0, bytes.Repeat([]byte{1}, 64))
	r.Flush(0, 64)
	r.Flush(0, 64) // redundant: line already pending
	if st := r.Stats(); st.WastedFlushes != 1 {
		t.Fatalf("WastedFlushes = %d, want 1", st.WastedFlushes)
	}
}

func TestFlushBatchDurability(t *testing.T) {
	r := New(4096, off())
	var fs FlushSet
	r.Write(0, []byte("hello"))
	r.Write(200, []byte("world"))
	fs.Add(0, 5)
	fs.Add(200, 5)
	r.FlushBatch(&fs)
	r.Fence()
	r.Crash(1)
	if got := string(r.Slice(0, 5)); got != "hello" {
		t.Fatalf("after crash: %q, want hello", got)
	}
	if got := string(r.Slice(200, 5)); got != "world" {
		t.Fatalf("after crash: %q, want world", got)
	}
}

func TestFlushBatchUnfencedIsUndefined(t *testing.T) {
	// A batched flush without a fence leaves lines in the 50/50 window,
	// exactly as Flush does: over many seeds both outcomes must occur.
	survived, lost := 0, 0
	for seed := int64(0); seed < 32; seed++ {
		r := New(4096, off())
		var fs FlushSet
		r.Write(0, []byte{0xAA})
		fs.Add(0, 1)
		r.FlushBatch(&fs)
		r.Crash(seed)
		if r.Slice(0, 1)[0] == 0xAA {
			survived++
		} else {
			lost++
		}
	}
	if survived == 0 || lost == 0 {
		t.Fatalf("flushed-unfenced line not 50/50: survived %d lost %d", survived, lost)
	}
}

func TestFlushBatchHookSingleOpAndTear(t *testing.T) {
	r := New(4096, off())
	var fs FlushSet
	r.Write(0, bytes.Repeat([]byte{0xFF}, 256))

	// The whole batch is one persist op: a hook counting ops sees exactly
	// one OpFlush however many ranges the set holds.
	ops := 0
	r.SetPersistHook(func(op PersistOp) PersistDecision {
		ops++
		return PersistDecision{}
	})
	fs.Add(0, 64)
	fs.Add(128, 64)
	r.FlushBatch(&fs)
	if ops != 1 {
		t.Fatalf("hook consulted %d times for one batch, want 1", ops)
	}
	r.SetPersistHook(nil)
	r.Fence()

	// Cut with tear: only a prefix of the first dirty line of the set
	// reaches the media.
	r2 := New(4096, off())
	var fs2 FlushSet
	r2.Write(64, bytes.Repeat([]byte{0xBB}, 64)) // line 1, dirty
	r2.SetPersistHook(func(op PersistOp) PersistDecision {
		return PersistDecision{Cut: true, TearBytes: 8}
	})
	fs2.Add(64, 64)
	r2.FlushBatch(&fs2)
	if !r2.PowerFailed() {
		t.Fatal("cut at FlushBatch did not fail the region")
	}
	r2.Crash(7)
	line := r2.Slice(64, 64)
	for i := 0; i < 8; i++ {
		if line[i] != 0xBB {
			t.Fatalf("torn prefix byte %d = %x, want bb", i, line[i])
		}
	}
	for i := 8; i < 64; i++ {
		if line[i] != 0 {
			t.Fatalf("beyond torn prefix byte %d = %x, want 0", i, line[i])
		}
	}
}

func TestFlushBatchAfterPowerFailIsNoop(t *testing.T) {
	r := New(4096, off())
	r.SetPersistHook(func(op PersistOp) PersistDecision { return PersistDecision{Cut: true} })
	r.Write(0, []byte{1})
	r.Flush(0, 1) // cuts power
	var fs FlushSet
	r.Write(64, []byte{2})
	fs.Add(64, 1)
	r.FlushBatch(&fs)
	r.Fence()
	r.Crash(3)
	if r.Slice(64, 1)[0] != 0 {
		t.Fatal("FlushBatch after power cut reached the media")
	}
}

func BenchmarkFlushSetDedup(b *testing.B) {
	r := New(1<<20, off())
	var fs FlushSet
	buf := bytes.Repeat([]byte{1}, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A representative commit: 16 slot images with overlapping
		// key/extent lines, plus repeated index-head references.
		for s := 0; s < 16; s++ {
			off := (s % 64) * 512
			r.Write(off, buf)
			fs.Add(off, 128)
			fs.Add(off+96, 64) // key tail sharing the image's last line
			fs.Add(0, 8)       // index head, every op
		}
		r.FlushBatch(&fs)
		r.Fence()
	}
}
