// Package pmem simulates a byte-addressable persistent-memory device
// (Intel Optane DC PM in App-Direct mode, as used by the paper's testbed).
//
// The simulation models the two properties the experiments depend on:
//
//  1. Latency. Loads, stores and cache-line write-backs to PM cost more
//     than DRAM. A Region charges calibrated delays (internal/latency)
//     per cache line for reads, writes and flushes, per the profile it
//     was created with.
//
//  2. Persistence semantics. A store is NOT durable until the cache line
//     holding it has been written back (clwb/clflushopt, modelled by
//     Flush) and the write-back has been ordered by a fence (sfence,
//     modelled by Fence). A Region maintains a shadow "persisted" image:
//     dirty lines live only in the volatile image; Flush moves them to a
//     pending set; Fence commits the pending set to the shadow. Crash
//     rebuilds the volatile image from the shadow — flushed-but-unfenced
//     lines survive with 50/50 probability per line, exactly the
//     uncertainty window real hardware exhibits — so crash-consistency
//     bugs (missing flushes, missing fences, wrong ordering) manifest as
//     real data loss in tests.
//
// A Region may be backed by a file, giving actual durability across
// process restarts for the CLI tools; the file holds the persisted image
// and is written on Sync and Close.
package pmem

import (
	"errors"
	"fmt"
	"log"
	"math/bits"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/latency"
)

// LineSize is the cache-line granularity of flush operations, in bytes.
const LineSize = 64

// PersistOp identifies one durability-ordering operation on a Region, in
// issue order: every Flush and every Fence counts as one op. Fault plans
// index crash points by this count.
type PersistOp uint8

// Persist operations observed by a PersistHook.
const (
	OpFlush PersistOp = iota + 1
	OpFence
)

// PersistDecision is a fault plan's verdict on one persist operation.
type PersistDecision struct {
	// Cut simulates power loss at this operation: the operation and every
	// later Flush/Fence have no durable effect. The software under test
	// keeps running against the volatile image (harmlessly — the power is
	// already gone); the harness then calls Crash to discard it.
	Cut bool
	// TearBytes, with Cut at a Flush, persists only that prefix of the
	// first dirty line of the flushed range — a torn cache-line
	// write-back, the partial-line state real PM exposes when power dies
	// mid-write-back. 0 cuts cleanly. Values are clamped to LineSize-1.
	TearBytes int
}

// PersistHook observes every Flush and Fence on a Region and may cut the
// power at any of them. It is called with the region lock held: it must
// decide from its own state only and must not call back into the Region.
type PersistHook func(op PersistOp) PersistDecision

// SetPersistHook installs (or, with nil, removes) a fault-injection hook
// consulted on every Flush and Fence. Crash removes the hook — the
// rebooted device persists normally again.
func (r *Region) SetPersistHook(h PersistHook) {
	r.mu.Lock()
	r.persistHook = h
	r.mu.Unlock()
}

// PowerFailed reports whether an installed hook has cut the power (and
// no Crash has rebooted the device yet). While failed, no Flush or Fence
// has any durable effect.
func (r *Region) PowerFailed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failed
}

// Stats counts Region operations. Latencies are the emulated hardware
// delays charged; they are included in wall-clock measurements because
// charging spins.
type Stats struct {
	Reads        uint64 // explicit charged reads (lines)
	Writes       uint64 // write calls
	BytesWritten uint64
	LinesFlushed uint64
	Flushes      uint64 // Flush + FlushBatch calls
	Fences       uint64
	// BatchFlushes counts FlushBatch calls (a subset of Flushes);
	// LinesCoalesced counts duplicate line references those batches
	// deduplicated away; WastedFlushes counts clwbs issued for lines
	// already in the flushed-but-unfenced window — redundant write-backs
	// a well-formed commit protocol never produces.
	BatchFlushes   uint64
	LinesCoalesced uint64
	WastedFlushes  uint64
	// ParityLines counts parity lines updated by XorDeltaBatch on the
	// write path; ReconstructedLines counts lines rebuilt from surviving
	// group members by XorReconstruct on the repair path.
	ParityLines        uint64
	ReconstructedLines uint64
	// LocalLines / RemoteLines attribute charged line accesses to the
	// accessor's socket when a NUMA map is installed (SetNUMA with
	// nodes > 1); both stay zero on single-node regions. RemoteExtra is
	// the total surcharge remote lines paid over the local rate — the
	// modeled cross-socket penalty a perfectly aligned placement would
	// have avoided.
	LocalLines  uint64
	RemoteLines uint64
	RemoteExtra time.Duration
	Charged     time.Duration // total emulated delay
}

// Region is a simulated PM device. All mutating methods are safe for
// concurrent use. Read-side helpers that return direct slices (Slice) do
// not synchronize with writers; callers partition the address space, as
// software sharing a real PM mapping must.
type Region struct {
	mu      sync.Mutex
	buf     []byte   // volatile image (CPU caches + PM, merged view)
	shadow  []byte   // durable image
	dirty   []uint64 // bitset: line written since last flush
	pending []uint64 // bitset: line flushed but not yet fenced
	// pendingWords lists bitset words with pending bits, so Fence scans
	// only what was flushed instead of the whole (potentially multi-GB)
	// line space.
	pendingWords []int
	closed       bool

	// Fault injection: persistHook is consulted on every Flush/Fence;
	// once it cuts the power, failed stays true until Crash reboots the
	// device and no durability operation has any effect. frozen snapshots
	// the pending lines' content at the instant of the cut: the software
	// under test keeps running against the volatile image, but stores
	// issued after power died must never reach the media, even when their
	// line was already in the clwb/sfence window.
	persistHook PersistHook
	failed      bool
	frozen      map[int][]byte

	file *os.File // nil if purely in-memory

	readLine  time.Duration
	writeLine time.Duration
	flushLine time.Duration
	fence     time.Duration

	// NUMA model (SetNUMA): lineNode maps each cache line to its home
	// socket; accesses from another socket are charged the remote rates
	// plus per-hop interconnect cost. numaNodes <= 1 means no NUMA model
	// and every *From method degenerates to exactly the pre-NUMA
	// arithmetic with zero extra work on the hot path. The table and
	// rates are written only by SetNUMA on a quiescent region (before
	// serving) and read-only afterwards, so lock-free readers are safe.
	numaNodes   int
	lineNode    []int8
	remoteRead  time.Duration
	remoteWrite time.Duration
	remoteFlush time.Duration
	hopCost     time.Duration

	localLines    atomic.Uint64
	remoteLines   atomic.Uint64
	remoteExtraNs atomic.Int64

	// multiCore: the region serves several simulated cores (sharded
	// stores with one event loop each), so a PM stall must yield the
	// physical CPU to the other loops instead of busy-waiting — see
	// charge.
	multiCore atomic.Bool

	stats   Stats
	statsMu sync.Mutex
}

// SetMultiCore declares whether several simulated cores issue PM
// operations concurrently. Single-core deployments (the paper's) leave
// it off: a stall busy-waits, stalling the one simulated CPU exactly as
// clwb/sfence drains stall a real one. Sharded deployments turn it on:
// each shard's event loop is its own simulated core, and on a host with
// fewer physical CPUs than loops a busy wait would falsely stall the
// *other* simulated cores too, so stalls yield instead (the wall-clock
// charge is identical; only scheduling differs).
func (r *Region) SetMultiCore(on bool) { r.multiCore.Store(on) }

// New creates an in-memory Region of the given size with latencies taken
// from profile. Size is rounded up to a whole number of lines.
func New(size int, profile calib.Profile) *Region {
	if size <= 0 {
		panic("pmem: non-positive size")
	}
	size = (size + LineSize - 1) &^ (LineSize - 1)
	nlines := size / LineSize
	return &Region{
		buf:       make([]byte, size),
		shadow:    make([]byte, size),
		dirty:     make([]uint64, (nlines+63)/64),
		pending:   make([]uint64, (nlines+63)/64),
		readLine:  profile.PMReadLine,
		writeLine: profile.PMWriteLine,
		flushLine: profile.PMFlushLine,
		fence:     profile.PMFence,
	}
}

// fileMagic distinguishes a Region backing file.
var fileMagic = []byte("PKTSPMEM")

// OpenFile opens (or creates) a file-backed Region of the given size. An
// existing file's persisted image is loaded; its size must match. The
// volatile image starts equal to the persisted image, as after a reboot.
func OpenFile(path string, size int, profile calib.Profile) (*Region, error) {
	r := New(size, profile)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pmem: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	want := int64(len(fileMagic) + len(r.shadow))
	switch {
	case st.Size() == 0:
		// Fresh device: write the initial (zero) image.
		if _, err := f.Write(fileMagic); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Write(r.shadow); err != nil {
			f.Close()
			return nil, err
		}
	case st.Size() == want:
		hdr := make([]byte, len(fileMagic))
		if _, err := f.ReadAt(hdr, 0); err != nil {
			f.Close()
			return nil, err
		}
		if string(hdr) != string(fileMagic) {
			f.Close()
			return nil, fmt.Errorf("pmem: %s is not a pmem image", path)
		}
		if _, err := f.ReadAt(r.shadow, int64(len(fileMagic))); err != nil {
			f.Close()
			return nil, err
		}
		copy(r.buf, r.shadow)
	default:
		f.Close()
		return nil, fmt.Errorf("pmem: %s has size %d, want %d", path, st.Size(), want)
	}
	r.file = f
	return r, nil
}

// Size returns the region size in bytes.
func (r *Region) Size() int { return len(r.buf) }

func (r *Region) check(off, n int) {
	if off < 0 || n < 0 || off+n > len(r.buf) {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside region of %d bytes", off, off+n, len(r.buf)))
	}
}

func lines(off, n int) int {
	if n == 0 {
		return 0
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	return last - first + 1
}

func (r *Region) charge(d time.Duration) {
	if d <= 0 {
		return
	}
	// PM access and flush delays stall the issuing core (blocking loads,
	// clwb retire, sfence drain), so they spin hot rather than yield —
	// unless several simulated cores share the physical ones, where a
	// hot spin would stall the whole simulation (SetMultiCore).
	if r.multiCore.Load() {
		latency.Spin(d)
	} else {
		latency.SpinHot(d)
	}
	r.statsMu.Lock()
	r.stats.Charged += d
	r.statsMu.Unlock()
}

// Slice returns a direct view of [off, off+n). Reads through the slice are
// not charged PM latency (they model cache hits / streaming reads); writes
// through the slice MUST be followed by MarkDirty or they will silently
// vanish on Crash, exactly as un-tracked stores would on real hardware
// with a buggy persistence protocol.
func (r *Region) Slice(off, n int) []byte {
	r.check(off, n)
	return r.buf[off : off+n : off+n]
}

// Touch charges the PM read latency for a cache-missing read of [off,
// off+n). Index walks use it to model pointer-chasing loads.
func (r *Region) Touch(off, n int) { r.TouchFrom(0, off, n) }

// TouchFrom is Touch issued from the given NUMA node: lines whose home
// socket differs are charged the remote read rate plus interconnect
// hops. Without a NUMA map (SetNUMA not called, or nodes <= 1) it is
// exactly Touch.
func (r *Region) TouchFrom(node, off, n int) {
	r.check(off, n)
	nl := lines(off, n)
	r.charge(r.spanCost(node, off, nl, r.readLine, r.remoteRead))
	r.statsMu.Lock()
	r.stats.Reads += uint64(nl)
	r.statsMu.Unlock()
}

// Read copies [off, off+len(dst)) into dst, charging read latency.
func (r *Region) Read(dst []byte, off int) { r.ReadFrom(0, dst, off) }

// ReadFrom is Read issued from the given NUMA node.
func (r *Region) ReadFrom(node int, dst []byte, off int) {
	r.check(off, len(dst))
	copy(dst, r.buf[off:])
	nl := lines(off, len(dst))
	r.charge(r.spanCost(node, off, nl, r.readLine, r.remoteRead))
	r.statsMu.Lock()
	r.stats.Reads += uint64(nl)
	r.statsMu.Unlock()
}

// Write copies src into the region at off, marks the covered lines dirty,
// and charges write latency.
func (r *Region) Write(off int, src []byte) { r.WriteFrom(0, off, src) }

// WriteFrom is Write issued from the given NUMA node: the store still
// lands in the target DIMM's write-pending queue, but a cross-socket
// store pays the interconnect transfer first.
func (r *Region) WriteFrom(node, off int, src []byte) {
	r.check(off, len(src))
	r.mu.Lock()
	copy(r.buf[off:], src)
	r.markDirtyLocked(off, len(src))
	r.mu.Unlock()
	r.charge(r.spanCost(node, off, lines(off, len(src)), r.writeLine, r.remoteWrite))
	r.statsMu.Lock()
	r.stats.Writes++
	r.stats.BytesWritten += uint64(len(src))
	r.statsMu.Unlock()
}

// WriteUint64 stores an 8-byte little-endian value at off. off must be
// 8-byte aligned so the store is atomic with respect to crashes, the
// property commit words rely on.
func (r *Region) WriteUint64(off int, v uint64) {
	if off%8 != 0 {
		panic("pmem: unaligned WriteUint64")
	}
	var b [8]byte
	putUint64(b[:], v)
	r.Write(off, b[:])
}

// ReadUint64 loads an 8-byte little-endian value (uncharged; callers that
// model a cache miss call Touch).
func (r *Region) ReadUint64(off int) uint64 {
	r.check(off, 8)
	return getUint64(r.buf[off:])
}

// WriteUint32 stores a 4-byte little-endian value at a 4-byte-aligned off.
func (r *Region) WriteUint32(off int, v uint32) {
	if off%4 != 0 {
		panic("pmem: unaligned WriteUint32")
	}
	var b [4]byte
	putUint32(b[:], v)
	r.Write(off, b[:])
}

// ReadUint32 loads a 4-byte little-endian value (uncharged).
func (r *Region) ReadUint32(off int) uint32 {
	r.check(off, 4)
	return getUint32(r.buf[off:])
}

// MarkDirty records that [off, off+n) was mutated through a Slice (for
// example by DMA). No latency is charged; the writer charges its own cost.
func (r *Region) MarkDirty(off, n int) {
	r.check(off, n)
	r.mu.Lock()
	r.markDirtyLocked(off, n)
	r.mu.Unlock()
}

func (r *Region) markDirtyLocked(off, n int) {
	if n == 0 {
		return
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for l := first; l <= last; l++ {
		r.dirty[l/64] |= 1 << (l % 64)
	}
}

// Flush issues clwb for every line in [off, off+n): dirty lines move to
// the pending (flushed-but-unfenced) set and are charged flush latency.
// Lines that are not dirty cost nothing, as clwb of a clean line retires
// without a write-back.
func (r *Region) Flush(off, n int) { r.FlushFrom(0, off, n) }

// FlushFrom is Flush issued from the given NUMA node: each freshly
// written-back line whose home socket differs pays the remote flush
// rate plus interconnect hops (the write-back cannot complete until the
// line reaches the remote DIMM's ADR domain).
func (r *Region) FlushFrom(node, off, n int) {
	r.check(off, n)
	if n == 0 {
		return
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	flushed := 0
	numa := r.numaNodes > 1
	var acc nodeAcc
	r.mu.Lock()
	if r.failed {
		r.mu.Unlock()
		return
	}
	if r.persistHook != nil {
		if d := r.persistHook(OpFlush); d.Cut {
			r.failLocked(first, last, d.TearBytes)
			r.mu.Unlock()
			return
		}
	}
	wasted := 0
	for l := first; l <= last; l++ {
		w, bit := l/64, uint64(1)<<(l%64)
		switch {
		case r.dirty[w]&bit != 0:
			r.dirty[w] &^= bit
			if r.pending[w] == 0 {
				r.pendingWords = append(r.pendingWords, w)
			}
			r.pending[w] |= bit
			flushed++
			if numa {
				r.accLine(&acc, node, l, r.flushLine, r.remoteFlush)
			}
		case r.pending[w]&bit != 0:
			wasted++
		}
	}
	r.mu.Unlock()
	cost := time.Duration(flushed) * r.flushLine
	if numa {
		cost = acc.cost
		r.commitAcc(&acc)
	}
	r.charge(cost)
	r.statsMu.Lock()
	r.stats.Flushes++
	r.stats.LinesFlushed += uint64(flushed)
	r.stats.WastedFlushes += uint64(wasted)
	r.statsMu.Unlock()
}

// failLocked cuts the power: all later persist operations become no-ops
// until Crash. A torn flush persists tearBytes of the first dirty line in
// [first, last] — the half-written-back line a real power cut can leave.
func (r *Region) failLocked(first, last, tearBytes int) {
	r.failed = true
	r.freezePendingLocked()
	if tearBytes <= 0 {
		return
	}
	if tearBytes >= LineSize {
		tearBytes = LineSize - 1
	}
	for l := first; l <= last; l++ {
		if r.dirty[l/64]&(1<<(l%64)) != 0 {
			o := l * LineSize
			copy(r.shadow[o:o+tearBytes], r.buf[o:o+tearBytes])
			return
		}
	}
}

// freezePendingLocked snapshots the flushed-but-unfenced lines as they
// are right now: Crash resolves each 50/50 from this snapshot, not from
// whatever the still-running (but already powerless) software writes
// afterwards.
func (r *Region) freezePendingLocked() {
	r.frozen = make(map[int][]byte)
	for _, w := range r.pendingWords {
		bv := r.pending[w]
		for bv != 0 {
			l := w*64 + bits.TrailingZeros64(bv)
			bv &= bv - 1
			o := l * LineSize
			r.frozen[l] = append([]byte(nil), r.buf[o:o+LineSize]...)
		}
	}
}

// Fence orders all previously flushed lines: the pending set is committed
// to the durable shadow image.
func (r *Region) Fence() {
	r.mu.Lock()
	if r.failed {
		r.mu.Unlock()
		return
	}
	if r.persistHook != nil {
		if d := r.persistHook(OpFence); d.Cut {
			// Power dies before the sfence retires: the pending (flushed
			// but unordered) lines stay in their undefined window — Crash
			// resolves each 50/50, exactly as for a missing fence.
			r.failLocked(0, -1, 0)
			r.mu.Unlock()
			return
		}
	}
	for _, w := range r.pendingWords {
		bv := r.pending[w]
		for bv != 0 {
			l := w*64 + bits.TrailingZeros64(bv)
			bv &= bv - 1
			o := l * LineSize
			copy(r.shadow[o:o+LineSize], r.buf[o:o+LineSize])
		}
		r.pending[w] = 0
	}
	r.pendingWords = r.pendingWords[:0]
	r.mu.Unlock()
	r.charge(r.fence)
	r.statsMu.Lock()
	r.stats.Fences++
	r.statsMu.Unlock()
}

// Persist is the common flush-then-fence sequence for a single range.
func (r *Region) Persist(off, n int) {
	r.Flush(off, n)
	r.Fence()
}

// PersistFrom is Persist issued from the given NUMA node.
func (r *Region) PersistFrom(node, off, n int) {
	r.FlushFrom(node, off, n)
	r.Fence()
}

// WriteUint64From is WriteUint64 issued from the given NUMA node.
func (r *Region) WriteUint64From(node, off int, v uint64) {
	if off%8 != 0 {
		panic("pmem: unaligned WriteUint64")
	}
	var b [8]byte
	putUint64(b[:], v)
	r.WriteFrom(node, off, b[:])
}

// WriteUint32From is WriteUint32 issued from the given NUMA node.
func (r *Region) WriteUint32From(node, off int, v uint32) {
	if off%4 != 0 {
		panic("pmem: unaligned WriteUint32")
	}
	var b [4]byte
	putUint32(b[:], v)
	r.WriteFrom(node, off, b[:])
}

// crashLogger receives the seed of every injected crash. The default
// writes through the standard logger so a failing test's output names
// the seed that reproduces it; torture harnesses install a recorder.
var crashLogger atomic.Value // func(seed int64)

func init() {
	crashLogger.Store(func(seed int64) {
		log.Printf("pmem: injected crash (reproduce with seed %d)", seed)
	})
}

// SetCrashLogger replaces the crash-seed logger (nil restores the
// default). Harnesses that inject thousands of crashes record the seeds
// into their results instead of spamming the log.
func SetCrashLogger(fn func(seed int64)) {
	if fn == nil {
		fn = func(seed int64) {
			log.Printf("pmem: injected crash (reproduce with seed %d)", seed)
		}
	}
	crashLogger.Store(fn)
}

// Crash simulates a power failure and reboot: the volatile image is
// discarded and rebuilt from the durable shadow. Each line that was
// flushed but not yet fenced independently survives with probability 1/2,
// drawn from a generator seeded with the explicit seed — the undefined
// window between clwb and sfence. The seed is logged (SetCrashLogger) so
// any crash-consistency failure reproduces from its seed alone. The
// Region remains usable afterwards, representing the post-reboot device:
// any installed persist hook and power-failure state are cleared.
func (r *Region) Crash(seed int64) {
	crashLogger.Load().(func(seed int64))(seed)
	rng := rand.New(rand.NewSource(seed))
	r.mu.Lock()
	defer r.mu.Unlock()
	r.persistHook = nil
	r.failed = false
	defer func() { r.frozen = nil }()
	for _, w := range r.pendingWords {
		bv := r.pending[w]
		for bv != 0 {
			l := w*64 + bits.TrailingZeros64(bv)
			bv &= bv - 1
			if rng.Intn(2) == 0 {
				o := l * LineSize
				src := r.buf[o : o+LineSize]
				if b, ok := r.frozen[l]; ok {
					// The power cut froze this line before later volatile
					// writes landed on it.
					src = b
				}
				copy(r.shadow[o:o+LineSize], src)
			}
		}
		r.pending[w] = 0
	}
	r.pendingWords = r.pendingWords[:0]
	copy(r.buf, r.shadow)
	for i := range r.dirty {
		r.dirty[i] = 0
	}
}

// CorruptByte XORs mask into the byte at off in both the volatile and the
// durable image — media corruption (a flipped bit in a PM row) that
// survives reboot. Fault injection uses it to prove checksum verification
// detects, quarantines, and never serves corrupted data.
func (r *Region) CorruptByte(off int, mask byte) {
	r.check(off, 1)
	r.mu.Lock()
	r.buf[off] ^= mask
	r.shadow[off] ^= mask
	r.mu.Unlock()
}

// Sync writes the durable image to the backing file, if any.
func (r *Region) Sync() error {
	if r.file == nil {
		return nil
	}
	r.mu.Lock()
	img := make([]byte, len(r.shadow))
	copy(img, r.shadow)
	r.mu.Unlock()
	if _, err := r.file.WriteAt(img, int64(len(fileMagic))); err != nil {
		return err
	}
	return r.file.Sync()
}

// Close syncs (when file-backed) and releases the backing file.
func (r *Region) Close() error {
	if r.closed {
		return errors.New("pmem: already closed")
	}
	r.closed = true
	if r.file == nil {
		return nil
	}
	err := r.Sync()
	if cerr := r.file.Close(); err == nil {
		err = cerr
	}
	r.file = nil
	return err
}

// Stats returns a snapshot of the operation counters.
func (r *Region) Stats() Stats {
	r.statsMu.Lock()
	s := r.stats
	r.statsMu.Unlock()
	s.LocalLines = r.localLines.Load()
	s.RemoteLines = r.remoteLines.Load()
	s.RemoteExtra = time.Duration(r.remoteExtraNs.Load())
	return s
}

// ResetStats zeroes the operation counters.
func (r *Region) ResetStats() {
	r.statsMu.Lock()
	r.stats = Stats{}
	r.statsMu.Unlock()
	r.localLines.Store(0)
	r.remoteLines.Store(0)
	r.remoteExtraNs.Store(0)
}

// DirtyLines reports how many lines are dirty (unflushed); tests use it to
// assert that persistence protocols leave nothing behind.
func (r *Region) DirtyLines() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.dirty {
		n += bits.OnesCount64(w)
	}
	return n
}

// PendingLines reports how many lines are flushed but not fenced.
func (r *Region) PendingLines() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, w := range r.pending {
		n += bits.OnesCount64(w)
	}
	return n
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	b[4], b[5], b[6], b[7] = byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56)
}

func getUint64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putUint32(b []byte, v uint32) {
	_ = b[3]
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getUint32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
