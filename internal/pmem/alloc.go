package pmem

import (
	"fmt"
	"sync"
)

// SlabPool hands out fixed-size slots from a range of a Region. Its
// allocation bitmap is volatile: the durable truth about which slots are
// live is whatever committed metadata references them, and recovery
// re-marks live slots with MarkAllocated. This is the standard design for
// PM allocators that want allocation itself to cost nothing durable — the
// packet-buffer pool of the packetstore uses it.
type SlabPool struct {
	mu       sync.Mutex
	r        *Region
	base     int
	slotSize int
	nslots   int
	// free is a LIFO of candidate slot indices with lazy deletion:
	// MarkAllocated (recovery) flips inUse without scanning the list, and
	// Alloc discards stale entries as it meets them. nfree tracks the
	// true free count.
	free  []int
	inUse []bool
	nfree int
}

// NewSlabPool creates a pool of nslots slots of slotSize bytes starting at
// base within r. The range [base, base+nslots*slotSize) must be reserved
// for the pool by the caller's layout.
func NewSlabPool(r *Region, base, slotSize, nslots int) *SlabPool {
	if slotSize <= 0 || nslots <= 0 {
		panic("pmem: bad slab geometry")
	}
	if base < 0 || base+slotSize*nslots > r.Size() {
		panic("pmem: slab range outside region")
	}
	p := &SlabPool{r: r, base: base, slotSize: slotSize, nslots: nslots,
		free: make([]int, 0, nslots), inUse: make([]bool, nslots), nfree: nslots}
	for i := nslots - 1; i >= 0; i-- {
		p.free = append(p.free, i)
	}
	return p
}

// SlotSize returns the size of each slot in bytes.
func (p *SlabPool) SlotSize() int { return p.slotSize }

// Slots returns the total number of slots.
func (p *SlabPool) Slots() int { return p.nslots }

// Base returns the region offset of slot 0.
func (p *SlabPool) Base() int { return p.base }

// Alloc returns the region offset of a free slot, or -1 if the pool is
// exhausted.
func (p *SlabPool) Alloc() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.free) > 0 {
		i := p.free[len(p.free)-1]
		p.free = p.free[:len(p.free)-1]
		if p.inUse[i] {
			continue // stale entry left by MarkAllocated
		}
		p.inUse[i] = true
		p.nfree--
		return p.base + i*p.slotSize
	}
	return -1
}

// Free returns the slot at region offset off to the pool.
func (p *SlabPool) Free(off int) {
	i := p.index(off)
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.inUse[i] {
		panic(fmt.Sprintf("pmem: double free of slot %d", i))
	}
	p.inUse[i] = false
	p.nfree++
	p.free = append(p.free, i)
}

// MarkAllocated records (during recovery) that the slot at off is live.
// It reports false if the slot was already marked, which recovery treats
// as corruption (two committed records claiming one slot).
func (p *SlabPool) MarkAllocated(off int) bool {
	i := p.index(off)
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.inUse[i] {
		return false
	}
	p.inUse[i] = true
	p.nfree--
	// The stale free-list entry is discarded lazily by Alloc.
	return true
}

// FreeSlots reports how many slots are currently free.
func (p *SlabPool) FreeSlots() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.nfree
}

// index converts a region offset to a slot index, panicking on misaligned
// or out-of-range offsets.
func (p *SlabPool) index(off int) int {
	d := off - p.base
	if d < 0 || d%p.slotSize != 0 || d/p.slotSize >= p.nslots {
		panic(fmt.Sprintf("pmem: offset %d is not a slot of this pool", off))
	}
	return d / p.slotSize
}

// BumpAlloc is a persistent bump allocator: a durable tail pointer at the
// head of its range, advanced with a flush+fence per allocation. This is
// deliberately the expensive design — it models the user-space persistent
// memory allocator of the NoveLSM baseline, whose cost the paper's Table 1
// measures inside "buffer allocation and insertion". Freed space is not
// reclaimed (NoveLSM's PM memtable arenas are likewise free-once).
type BumpAlloc struct {
	mu   sync.Mutex
	r    *Region
	base int // tail pointer lives at [base, base+8)
	lo   int // first allocatable byte
	hi   int // end of range
}

// bumpAlign is the allocation granularity (avoids torn neighbours by
// keeping allocations cache-line aligned).
const bumpAlign = LineSize

// NewBumpAlloc initializes (or re-opens) a persistent bump allocator over
// [base, base+size) of r. The first line holds the tail pointer; if it is
// zero (fresh region) it is initialized durably.
func NewBumpAlloc(r *Region, base, size int) *BumpAlloc {
	if base%8 != 0 || size < 2*bumpAlign {
		panic("pmem: bad bump allocator range")
	}
	a := &BumpAlloc{r: r, base: base, lo: base + bumpAlign, hi: base + size}
	if tail := int(r.ReadUint64(base)); tail == 0 {
		r.WriteUint64(base, uint64(a.lo))
		r.Persist(base, 8)
	} else if tail < a.lo || tail > a.hi {
		panic("pmem: corrupt bump allocator tail")
	}
	return a
}

// Alloc durably reserves n bytes and returns their region offset, or -1 if
// the range is exhausted. The tail update is flushed and fenced so that a
// crash never leaks a partially-allocated extent into reuse.
func (a *BumpAlloc) Alloc(n int) int {
	if n <= 0 {
		panic("pmem: bad alloc size")
	}
	n = (n + bumpAlign - 1) &^ (bumpAlign - 1)
	a.mu.Lock()
	defer a.mu.Unlock()
	a.r.Touch(a.base, 8) // read the durable tail
	tail := int(a.r.ReadUint64(a.base))
	if tail+n > a.hi {
		return -1
	}
	a.r.WriteUint64(a.base, uint64(tail+n))
	a.r.Persist(a.base, 8)
	return tail
}

// Used reports how many bytes have been allocated.
func (a *BumpAlloc) Used() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.r.ReadUint64(a.base)) - a.lo
}

// Remaining reports how many bytes are still allocatable.
func (a *BumpAlloc) Remaining() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.hi - int(a.r.ReadUint64(a.base))
}

// Reset durably rewinds the allocator, discarding all allocations. Used
// when an arena is retired and recycled.
func (a *BumpAlloc) Reset() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.r.WriteUint64(a.base, uint64(a.lo))
	a.r.Persist(a.base, 8)
}
