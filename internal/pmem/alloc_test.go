package pmem

import (
	"math/rand"
	"testing"

	"packetstore/internal/calib"
)

func TestSlabPoolAllocFree(t *testing.T) {
	r := New(1<<16, calib.Off())
	p := NewSlabPool(r, 1024, 256, 16)
	if p.SlotSize() != 256 || p.Slots() != 16 || p.Base() != 1024 {
		t.Fatal("geometry accessors wrong")
	}
	seen := map[int]bool{}
	for i := 0; i < 16; i++ {
		o := p.Alloc()
		if o < 1024 || o >= 1024+16*256 || (o-1024)%256 != 0 {
			t.Fatalf("bad offset %d", o)
		}
		if seen[o] {
			t.Fatalf("duplicate offset %d", o)
		}
		seen[o] = true
	}
	if p.Alloc() != -1 {
		t.Fatal("exhausted pool should return -1")
	}
	for o := range seen {
		p.Free(o)
	}
	if p.FreeSlots() != 16 {
		t.Fatalf("FreeSlots=%d want 16", p.FreeSlots())
	}
}

func TestSlabPoolDoubleFreePanics(t *testing.T) {
	r := New(1<<16, calib.Off())
	p := NewSlabPool(r, 0, 64, 4)
	o := p.Alloc()
	p.Free(o)
	mustPanic(t, func() { p.Free(o) })
	mustPanic(t, func() { p.Free(o + 1) }) // misaligned
}

func TestSlabPoolMarkAllocated(t *testing.T) {
	r := New(1<<16, calib.Off())
	p := NewSlabPool(r, 0, 64, 8)
	if !p.MarkAllocated(3 * 64) {
		t.Fatal("MarkAllocated refused a free slot")
	}
	if p.MarkAllocated(3 * 64) {
		t.Fatal("MarkAllocated accepted a live slot twice")
	}
	// The marked slot must never be handed out.
	for i := 0; i < 7; i++ {
		if o := p.Alloc(); o == 3*64 {
			t.Fatal("marked slot was allocated")
		}
	}
	if p.Alloc() != -1 {
		t.Fatal("pool should be exhausted")
	}
}

func TestSlabPoolRandomized(t *testing.T) {
	r := New(1<<18, calib.Off())
	p := NewSlabPool(r, 0, 128, 64)
	rng := rand.New(rand.NewSource(9))
	live := map[int]bool{}
	for i := 0; i < 5000; i++ {
		if rng.Intn(2) == 0 && len(live) < 64 {
			o := p.Alloc()
			if o == -1 {
				t.Fatal("unexpected exhaustion")
			}
			if live[o] {
				t.Fatal("allocated a live slot")
			}
			live[o] = true
		} else if len(live) > 0 {
			for o := range live {
				p.Free(o)
				delete(live, o)
				break
			}
		}
		if p.FreeSlots() != 64-len(live) {
			t.Fatalf("free count drift: %d vs %d live", p.FreeSlots(), len(live))
		}
	}
}

func TestBumpAllocBasic(t *testing.T) {
	r := New(1<<16, calib.Off())
	a := NewBumpAlloc(r, 0, 4096)
	o1 := a.Alloc(100)
	o2 := a.Alloc(100)
	if o1 < 64 || o2 != o1+128 { // rounded to 64B lines
		t.Fatalf("offsets %d %d", o1, o2)
	}
	if a.Used() != 256 {
		t.Fatalf("Used=%d want 256", a.Used())
	}
}

func TestBumpAllocExhaustion(t *testing.T) {
	r := New(1<<16, calib.Off())
	a := NewBumpAlloc(r, 0, 256) // 64 header + 192 allocatable
	if a.Alloc(192) == -1 {
		t.Fatal("fitting alloc refused")
	}
	if a.Alloc(1) != -1 {
		t.Fatal("over-alloc accepted")
	}
}

func TestBumpAllocSurvivesCrash(t *testing.T) {
	// The tail pointer is persisted per alloc, so after a crash the
	// allocator must not hand out previously-allocated space.
	r := New(1<<16, calib.Off())
	a := NewBumpAlloc(r, 0, 4096)
	o1 := a.Alloc(64)
	r.Crash(5)
	a2 := NewBumpAlloc(r, 0, 4096)
	o2 := a2.Alloc(64)
	if o2 <= o1 {
		t.Fatalf("post-crash alloc %d overlaps pre-crash alloc %d", o2, o1)
	}
}

func TestBumpAllocReset(t *testing.T) {
	r := New(1<<16, calib.Off())
	a := NewBumpAlloc(r, 0, 4096)
	a.Alloc(100)
	a.Reset()
	if a.Used() != 0 {
		t.Fatalf("Used=%d after reset", a.Used())
	}
	if rem := a.Remaining(); rem != 4096-64 {
		t.Fatalf("Remaining=%d", rem)
	}
}

func TestBumpAllocBadGeometry(t *testing.T) {
	r := New(1<<16, calib.Off())
	mustPanic(t, func() { NewBumpAlloc(r, 4, 4096) }) // unaligned base
	mustPanic(t, func() { NewBumpAlloc(r, 0, 64) })   // too small
	a := NewBumpAlloc(r, 0, 4096)
	mustPanic(t, func() { a.Alloc(0) })
}
