// NUMA model: a Region can carry a per-line node-ownership table so
// cross-socket PM accesses are charged the remote rates from the calib
// NUMA profile. "Observations on Porting In-memory KV stores to
// Persistent Memory" measures remote-socket PM at roughly 2–3× local —
// much steeper than the DRAM NUMA ratio — which makes placement a
// first-order cost for a store whose packet buffers ARE the medium.
//
// The design keeps Nodes=1 a strict no-op: without a map every *From
// method computes the exact pre-NUMA charge (count × local rate) and
// never touches the node table or the atomic counters.
package pmem

import (
	"time"

	"packetstore/internal/calib"
)

// NodeRange assigns the cache lines covered by [Off, Off+Len) to a home
// NUMA node. Partial lines at the edges are assigned whole (ownership is
// a line property).
type NodeRange struct {
	Off, Len int
	Node     int
}

// SetNUMA installs a NUMA model: nodes sockets, the given remote-access
// rates, and a partition→node ownership table (lines not covered by any
// range default to node 0). nodes <= 1 removes the model. Zero-valued
// remote rates fall back to the local rate, so an all-zero profile (off)
// stays all-zero.
//
// SetNUMA must be called on a quiescent region (before serving starts):
// the table is read lock-free by every access afterwards.
func (r *Region) SetNUMA(nodes int, prof calib.NUMAProfile, ranges []NodeRange) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if nodes <= 1 {
		r.numaNodes = 0
		r.lineNode = nil
		return
	}
	if nodes > 127 {
		panic("pmem: more than 127 NUMA nodes")
	}
	tbl := make([]int8, len(r.buf)/LineSize)
	for _, rg := range ranges {
		if rg.Len <= 0 {
			continue
		}
		r.check(rg.Off, rg.Len)
		if rg.Node < 0 || rg.Node >= nodes {
			panic("pmem: NodeRange node out of range")
		}
		first := rg.Off / LineSize
		last := (rg.Off + rg.Len - 1) / LineSize
		for l := first; l <= last; l++ {
			tbl[l] = int8(rg.Node)
		}
	}
	r.numaNodes = nodes
	r.lineNode = tbl
	r.remoteRead = orLocal(prof.RemoteReadLine, r.readLine)
	r.remoteWrite = orLocal(prof.RemoteWriteLine, r.writeLine)
	r.remoteFlush = orLocal(prof.RemoteFlushLine, r.flushLine)
	r.hopCost = prof.HopCost
}

func orLocal(remote, local time.Duration) time.Duration {
	if remote == 0 {
		return local
	}
	return remote
}

// NUMANodes reports the number of nodes in the installed model (1 when
// no model is installed).
func (r *Region) NUMANodes() int {
	if r.numaNodes <= 1 {
		return 1
	}
	return r.numaNodes
}

// NodeAt reports the home node of the line containing off (0 without a
// model).
func (r *Region) NodeAt(off int) int {
	r.check(off, 1)
	if r.numaNodes <= 1 {
		return 0
	}
	return int(r.lineNode[off/LineSize])
}

// nodeAcc accumulates the node-attributed cost of a batch of lines so
// the atomic counters are bumped once per operation, not once per line.
type nodeAcc struct {
	cost, extra time.Duration
	loc, rem    uint64
}

// accLine adds one line's node-aware cost to the accumulator: the local
// rate when the line's home node matches the accessing node, otherwise
// the remote rate plus per-hop interconnect cost beyond the first hop.
// Callers must have checked numaNodes > 1.
func (r *Region) accLine(a *nodeAcc, node, l int, local, remote time.Duration) {
	owner := int(r.lineNode[l])
	if owner == node {
		a.cost += local
		a.loc++
		return
	}
	d := owner - node
	if d < 0 {
		d = -d
	}
	c := remote + time.Duration(d-1)*r.hopCost
	a.cost += c
	a.extra += c - local
	a.rem++
}

// commitAcc publishes an accumulator into the region's atomic counters.
func (r *Region) commitAcc(a *nodeAcc) {
	if a.loc != 0 {
		r.localLines.Add(a.loc)
	}
	if a.rem != 0 {
		r.remoteLines.Add(a.rem)
		r.remoteExtraNs.Add(int64(a.extra))
	}
}

// spanCost returns the charge for nl consecutive lines starting at the
// line containing off, accessed from node. Without a NUMA model this is
// exactly nl × local — the pre-NUMA arithmetic, with no table walk and
// no counter traffic.
func (r *Region) spanCost(node, off, nl int, local, remote time.Duration) time.Duration {
	if r.numaNodes <= 1 || nl == 0 {
		return time.Duration(nl) * local
	}
	var acc nodeAcc
	first := off / LineSize
	for l := first; l < first+nl; l++ {
		r.accLine(&acc, node, l, local, remote)
	}
	r.commitAcc(&acc)
	return acc.cost
}
