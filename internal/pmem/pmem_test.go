package pmem

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"

	"packetstore/internal/calib"
)

func off() calib.Profile { return calib.Off() }

func TestWriteReadRoundTrip(t *testing.T) {
	r := New(4096, off())
	data := []byte("hello persistent world")
	r.Write(100, data)
	got := make([]byte, len(data))
	r.Read(got, 100)
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q want %q", got, data)
	}
	if !bytes.Equal(r.Slice(100, len(data)), data) {
		t.Fatal("Slice view mismatch")
	}
}

func TestSizeRoundedToLine(t *testing.T) {
	r := New(100, off())
	if r.Size() != 128 {
		t.Fatalf("size %d, want 128", r.Size())
	}
}

func TestUnflushedWriteLostOnCrash(t *testing.T) {
	r := New(4096, off())
	r.Write(0, []byte("durable"))
	r.Persist(0, 7)
	r.Write(64, []byte("volatile"))
	r.Crash(1)
	if got := r.Slice(0, 7); string(got) != "durable" {
		t.Fatalf("fenced data lost: %q", got)
	}
	if got := r.Slice(64, 8); string(got) == "volatile" {
		t.Fatal("unflushed data survived crash")
	}
}

func TestFlushWithoutFenceIsUndefined(t *testing.T) {
	// A line that was flushed but not fenced survives a crash with
	// probability 1/2 per line; over many trials both outcomes must occur.
	survived, lost := 0, 0
	for seed := int64(0); seed < 64; seed++ {
		r := New(4096, off())
		r.Write(0, []byte{0xaa})
		r.Flush(0, 1)
		r.Crash(seed)
		if r.Slice(0, 1)[0] == 0xaa {
			survived++
		} else {
			lost++
		}
	}
	if survived == 0 || lost == 0 {
		t.Fatalf("flush-no-fence should be nondeterministic: survived=%d lost=%d", survived, lost)
	}
}

func TestSliceWriteWithoutMarkDirtyVanishes(t *testing.T) {
	r := New(4096, off())
	copy(r.Slice(0, 4), "ABCD")
	r.Persist(0, 4) // flush sees no dirty lines -> nothing persists
	r.Crash(2)
	if string(r.Slice(0, 4)) == "ABCD" {
		t.Fatal("untracked slice write should be lost")
	}

	copy(r.Slice(0, 4), "ABCD")
	r.MarkDirty(0, 4)
	r.Persist(0, 4)
	r.Crash(3)
	if string(r.Slice(0, 4)) != "ABCD" {
		t.Fatal("MarkDirty+Persist write lost")
	}
}

func TestDirtyAndPendingCounters(t *testing.T) {
	r := New(4096, off())
	r.Write(0, make([]byte, 130)) // lines 0,1,2
	if got := r.DirtyLines(); got != 3 {
		t.Fatalf("DirtyLines=%d want 3", got)
	}
	r.Flush(0, 130)
	if got := r.DirtyLines(); got != 0 {
		t.Fatalf("DirtyLines after flush=%d want 0", got)
	}
	if got := r.PendingLines(); got != 3 {
		t.Fatalf("PendingLines=%d want 3", got)
	}
	r.Fence()
	if got := r.PendingLines(); got != 0 {
		t.Fatalf("PendingLines after fence=%d want 0", got)
	}
}

func TestPartialLineFlush(t *testing.T) {
	// Flushing a sub-range only persists lines it covers.
	r := New(4096, off())
	r.Write(0, make([]byte, 128)) // lines 0,1 dirty
	for i := 0; i < 128; i++ {
		r.Slice(0, 128)[i] = byte(i)
	}
	r.MarkDirty(0, 128)
	r.Persist(0, 64) // only line 0
	r.Crash(4)
	if r.Slice(0, 1)[0] != 0 {
		t.Fatal("line 0 content wrong")
	}
	if r.Slice(64, 1)[0] == 64 {
		t.Fatal("line 1 should not have persisted")
	}
}

func TestUintAccessors(t *testing.T) {
	r := New(4096, off())
	r.WriteUint64(8, 0xdeadbeefcafebabe)
	if got := r.ReadUint64(8); got != 0xdeadbeefcafebabe {
		t.Fatalf("u64 got %#x", got)
	}
	r.WriteUint32(4, 0x12345678)
	if got := r.ReadUint32(4); got != 0x12345678 {
		t.Fatalf("u32 got %#x", got)
	}
	mustPanic(t, func() { r.WriteUint64(4, 1) })
	mustPanic(t, func() { r.WriteUint32(2, 1) })
}

func TestBoundsChecks(t *testing.T) {
	r := New(128, off())
	mustPanic(t, func() { r.Slice(120, 16) })
	mustPanic(t, func() { r.Write(-1, []byte{1}) })
	mustPanic(t, func() { r.Read(make([]byte, 1), 128) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCrashQuick(t *testing.T) {
	// Property: any byte that was written and fenced before the crash is
	// intact after it; any byte never written reads zero.
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op, seed int64) bool {
		r := New(1<<16, off())
		ref := make([]byte, 1<<16)
		for _, o := range ops {
			off := int(o.Off)
			n := len(o.Data)
			if off+n > r.Size() {
				n = r.Size() - off
			}
			r.Write(off, o.Data[:n])
			r.Persist(off, n)
			copy(ref[off:], o.Data[:n])
		}
		r.Crash(seed)
		return bytes.Equal(r.Slice(0, r.Size()), ref)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyCharged(t *testing.T) {
	p := calib.Off()
	p.PMFlushLine = 50 * time.Microsecond
	r := New(4096, p)
	r.Write(0, make([]byte, 256)) // 4 lines
	start := time.Now()
	r.Flush(0, 256)
	if e := time.Since(start); e < 200*time.Microsecond {
		t.Fatalf("flush of 4 lines took %v, want >= 200µs of charged latency", e)
	}
	if st := r.Stats(); st.LinesFlushed != 4 || st.Charged < 200*time.Microsecond {
		t.Fatalf("stats %+v", st)
	}
}

func TestStats(t *testing.T) {
	r := New(4096, off())
	r.Write(0, make([]byte, 100))
	r.Read(make([]byte, 10), 0)
	r.Touch(0, 64)
	r.Flush(0, 100)
	r.Fence()
	st := r.Stats()
	if st.Writes != 1 || st.BytesWritten != 100 || st.Flushes != 1 || st.Fences != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.LinesFlushed != 2 {
		t.Fatalf("LinesFlushed=%d want 2", st.LinesFlushed)
	}
	r.ResetStats()
	if st := r.Stats(); st.Writes != 0 {
		t.Fatalf("reset failed: %+v", st)
	}
}

func TestFileBackingRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	r, err := OpenFile(path, 4096, off())
	if err != nil {
		t.Fatal(err)
	}
	r.Write(10, []byte("persist me"))
	r.Persist(10, 10)
	r.Write(200, []byte("lose me")) // never flushed
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenFile(path, 4096, off())
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if got := string(r2.Slice(10, 10)); got != "persist me" {
		t.Fatalf("reopened: got %q", got)
	}
	if got := string(r2.Slice(200, 7)); got == "lose me" {
		t.Fatal("unflushed data survived file round trip")
	}
}

func TestOpenFileSizeMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	r, err := OpenFile(path, 4096, off())
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
	if _, err := OpenFile(path, 8192, off()); err == nil {
		t.Fatal("size mismatch not detected")
	}
}

func TestOpenFileBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pm.img")
	junk := make([]byte, len(fileMagic)+128)
	if err := os.WriteFile(path, junk, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path, 128, off()); err == nil {
		t.Fatal("bad magic not detected")
	}
}

func TestDoubleClose(t *testing.T) {
	r := New(128, off())
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err == nil {
		t.Fatal("double close not detected")
	}
}

func TestConcurrentWriters(t *testing.T) {
	r := New(1<<20, off())
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			base := g * (1 << 16)
			for i := 0; i < 1000; i++ {
				r.Write(base+(i%100)*64, []byte{byte(g), byte(i)})
				r.Persist(base+(i%100)*64, 2)
			}
		}(g)
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if st := r.Stats(); st.Writes != 8000 {
		t.Fatalf("writes=%d want 8000", st.Writes)
	}
}

func BenchmarkWrite1K(b *testing.B) {
	r := New(1<<20, off())
	buf := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		r.Write((i%512)*1024, buf)
	}
}

func BenchmarkPersist1K(b *testing.B) {
	r := New(1<<20, off())
	buf := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		o := (i % 512) * 1024
		r.Write(o, buf)
		r.Persist(o, 1024)
	}
}

func BenchmarkPersist1KPaperModel(b *testing.B) {
	r := New(1<<20, calib.Paper())
	buf := make([]byte, 1024)
	for i := 0; i < b.N; i++ {
		o := (i % 512) * 1024
		r.Write(o, buf)
		r.Persist(o, 1024)
	}
}
