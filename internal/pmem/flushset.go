package pmem

import (
	"sort"
	"time"
)

// FlushSet accumulates dirty byte ranges for one batched write-back.
// Ranges are deduplicated at cache-line granularity when the set is
// issued (FlushBatch): adjacent extents, re-flushed slot headers and
// repeated index lines collapse to a single clwb each. A FlushSet is
// not safe for concurrent use; each event loop (or store) owns its own
// and reuses it across batches (FlushBatch resets it).
type FlushSet struct {
	spans []lineSpan
	refs  int // line references accumulated by Add (before dedup)
	// scratch is reused by VisitSpans so parity maintenance can walk the
	// set without consuming it or disturbing its dedup accounting.
	scratch []lineSpan
}

// lineSpan is an inclusive range of cache-line indices.
type lineSpan struct{ first, last int }

// Add records that [off, off+n) must be written back in the next
// FlushBatch. Zero-length ranges are ignored.
func (fs *FlushSet) Add(off, n int) {
	if n <= 0 {
		return
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	fs.refs += last - first + 1
	if len(fs.spans) > 0 {
		// Fast path: extend the tail when ranges arrive in address order
		// (sequential extents, key bytes following a slot header).
		if t := &fs.spans[len(fs.spans)-1]; first == t.last+1 {
			t.last = last
			return
		}
	}
	fs.spans = append(fs.spans, lineSpan{first, last})
}

// Empty reports whether the set holds no ranges.
func (fs *FlushSet) Empty() bool { return len(fs.spans) == 0 }

// Refs returns the total line references added since the last reset —
// the clwb count a non-deduplicating protocol would have issued.
func (fs *FlushSet) Refs() int { return fs.refs }

// Reset discards the accumulated ranges (capacity is kept).
func (fs *FlushSet) Reset() {
	fs.spans = fs.spans[:0]
	fs.refs = 0
}

// VisitSpans calls fn(off, n) for every distinct line-aligned byte range
// currently in the set, in ascending address order with overlaps and
// adjacency merged. The set itself is untouched: iteration works on a
// scratch copy, so the later FlushBatch still sees the original spans
// and its dedup (LinesCoalesced) accounting is unaffected. fn may Add
// further ranges to the set; they are not visited.
func (fs *FlushSet) VisitSpans(fn func(off, n int)) {
	if len(fs.spans) == 0 {
		return
	}
	fs.scratch = append(fs.scratch[:0], fs.spans...)
	sort.Slice(fs.scratch, func(a, b int) bool { return fs.scratch[a].first < fs.scratch[b].first })
	cur := fs.scratch[0]
	for _, sp := range fs.scratch[1:] {
		if sp.first <= cur.last+1 {
			if sp.last > cur.last {
				cur.last = sp.last
			}
			continue
		}
		fn(cur.first*LineSize, (cur.last-cur.first+1)*LineSize)
		cur = sp
	}
	fn(cur.first*LineSize, (cur.last-cur.first+1)*LineSize)
}

// normalize sorts the spans, merges overlapping and adjacent ones in
// place, and returns the number of line references collapsed by the
// overlap dedup (adjacency is mere iteration convenience, not a dup).
func (fs *FlushSet) normalize() int {
	if len(fs.spans) < 2 {
		return 0
	}
	sort.Slice(fs.spans, func(a, b int) bool { return fs.spans[a].first < fs.spans[b].first })
	coalesced := 0
	out := fs.spans[:1]
	for _, sp := range fs.spans[1:] {
		t := &out[len(out)-1]
		if sp.first <= t.last { // overlap: duplicate line references
			if sp.last <= t.last {
				coalesced += sp.last - sp.first + 1
				continue
			}
			coalesced += t.last - sp.first + 1
			t.last = sp.last
			continue
		}
		if sp.first == t.last+1 { // adjacent: merge for iteration only
			t.last = sp.last
			continue
		}
		out = append(out, sp)
	}
	fs.spans = out
	return coalesced
}

// BatchStats reports what one FlushBatch actually issued.
type BatchStats struct {
	// Lines is the distinct cache-line count covered after dedup — the
	// clwbs issued.
	Lines int
	// Coalesced is how many duplicate line references the dedup absorbed
	// (Refs - Lines over overlapping ranges).
	Coalesced int
	// Flushed is how many of the issued lines were dirty and actually
	// moved into the write-back (flushed-but-unfenced) window; clean
	// lines retire for free, as clwb of a clean line does.
	Flushed int
	// Wasted counts issued lines that were already in the write-back
	// window — redundant clwbs a well-formed commit protocol never
	// produces (the duplicate-flush assertion counter).
	Wasted int
}

// FlushBatch issues one clwb per distinct dirty line accumulated in fs,
// as a single persist operation: an installed PersistHook is consulted
// exactly once (the whole batch is one cut point, and a torn cut tears
// the first dirty line of the deduplicated set), latency is charged for
// the deduplicated dirty-line count only, and Stats.Flushes increments
// by one. The set is reset afterwards. Durability still requires a
// Fence, exactly as for Flush.
func (r *Region) FlushBatch(fs *FlushSet) BatchStats { return r.FlushBatchFrom(0, fs) }

// FlushBatchFrom is FlushBatch issued from the given NUMA node: each
// freshly written-back line whose home socket differs pays the remote
// flush rate plus interconnect hops.
func (r *Region) FlushBatchFrom(node int, fs *FlushSet) BatchStats {
	bs := BatchStats{Coalesced: fs.normalize()}
	numa := r.numaNodes > 1
	var acc nodeAcc
	for _, sp := range fs.spans {
		bs.Lines += sp.last - sp.first + 1
	}
	if bs.Lines == 0 {
		fs.Reset()
		return bs
	}
	last := fs.spans[len(fs.spans)-1].last
	if (last+1)*LineSize > len(r.buf) {
		panic("pmem: FlushBatch range outside region")
	}
	r.mu.Lock()
	if r.failed {
		r.mu.Unlock()
		fs.Reset()
		return bs
	}
	if r.persistHook != nil {
		if d := r.persistHook(OpFlush); d.Cut {
			r.failSpansLocked(fs.spans, d.TearBytes)
			r.mu.Unlock()
			fs.Reset()
			return bs
		}
	}
	for _, sp := range fs.spans {
		for l := sp.first; l <= sp.last; l++ {
			w, bit := l/64, uint64(1)<<(l%64)
			switch {
			case r.dirty[w]&bit != 0:
				r.dirty[w] &^= bit
				if r.pending[w] == 0 {
					r.pendingWords = append(r.pendingWords, w)
				}
				r.pending[w] |= bit
				bs.Flushed++
				if numa {
					r.accLine(&acc, node, l, r.flushLine, r.remoteFlush)
				}
			case r.pending[w]&bit != 0:
				bs.Wasted++
			}
		}
	}
	r.mu.Unlock()
	cost := time.Duration(bs.Flushed) * r.flushLine
	if numa {
		cost = acc.cost
		r.commitAcc(&acc)
	}
	r.charge(cost)
	r.statsMu.Lock()
	r.stats.Flushes++
	r.stats.BatchFlushes++
	r.stats.LinesFlushed += uint64(bs.Flushed)
	r.stats.LinesCoalesced += uint64(bs.Coalesced)
	r.stats.WastedFlushes += uint64(bs.Wasted)
	r.statsMu.Unlock()
	fs.Reset()
	return bs
}

// failSpansLocked cuts the power at a batched flush: pending lines are
// frozen exactly as in failLocked, and a torn write-back persists
// tearBytes of the first dirty line of the (sorted, deduplicated) set —
// never of some unrelated dirty line outside it.
func (r *Region) failSpansLocked(spans []lineSpan, tearBytes int) {
	r.failed = true
	r.freezePendingLocked()
	if tearBytes <= 0 {
		return
	}
	if tearBytes >= LineSize {
		tearBytes = LineSize - 1
	}
	for _, sp := range spans {
		for l := sp.first; l <= sp.last; l++ {
			if r.dirty[l/64]&(1<<(l%64)) != 0 {
				o := l * LineSize
				copy(r.shadow[o:o+tearBytes], r.buf[o:o+tearBytes])
				return
			}
		}
	}
}
