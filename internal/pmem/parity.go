package pmem

import "time"

// Parity support. The store layers RAID-5-style redundancy over a shared
// Region: a parity partition holds, line for line, the XOR of its group
// members' partitions. Three primitives keep that invariant cheap to
// maintain and usable for repair:
//
//   - XorDeltaBatch folds a member's not-yet-durable changes (volatile
//     image XOR durable shadow) into the parity partition's volatile
//     image, so the parity lines can ride the member's own
//     FlushBatch/Fence.
//   - XorReconstruct rebuilds a lost range as the XOR of the surviving
//     images, writing the result at media level (volatile and durable).
//   - EraseRange models losing the media itself: both images zeroed.
//
// The XOR math happens at DRAM speed (the delta is computed from cached
// lines); what is charged is the PM cost of the extra stores and, for
// reconstruction, the write-backs that make the repair durable.

// XorSpan names one fold of a batch: the unpersisted change of the
// member range [Off, Off+N) is XORed into the same-length parity range
// at Poff. Both ranges must be line-aligned and must not overlap.
type XorSpan struct {
	Poff, Off, N int
}

// XorDeltaBatch XORs the unpersisted change of each span's member range
// into its parity range: for every covered byte,
// parity ^= member_volatile ^ member_durable. The parity lines are
// marked dirty — the caller adds them to its FlushSet so they persist
// under the very fence that makes the member changes durable. Write
// latency is charged per parity line touched, in a single charge for
// the whole batch: a group commit folds its spans back-to-back, and
// consuming an emulated sub-microsecond delay costs far more scheduler
// time than it models when paid span by span.
func (r *Region) XorDeltaBatch(spans []XorSpan) {
	nl := 0
	r.mu.Lock()
	for _, sp := range spans {
		if sp.N == 0 {
			continue
		}
		if sp.Off%LineSize != 0 || sp.Poff%LineSize != 0 {
			r.mu.Unlock()
			panic("pmem: unaligned XorDeltaBatch")
		}
		r.check(sp.Off, sp.N)
		r.check(sp.Poff, sp.N)
		for i := 0; i < sp.N; i++ {
			r.buf[sp.Poff+i] ^= r.buf[sp.Off+i] ^ r.shadow[sp.Off+i]
		}
		r.markDirtyLocked(sp.Poff, sp.N)
		nl += lines(sp.Poff, sp.N)
	}
	r.mu.Unlock()
	if nl == 0 {
		return
	}
	r.charge(time.Duration(nl) * r.writeLine)
	r.statsMu.Lock()
	r.stats.Writes++
	r.stats.ParityLines += uint64(nl)
	r.statsMu.Unlock()
}

// XorReconstruct rebuilds [off, off+n) as the byte-wise XOR of the
// durable images of the source ranges (each n bytes, line-aligned) and
// installs the result at media level: both the volatile and the durable
// image are rewritten, as a repair path that writes, flushes and fences
// would leave them. Destination lines that are volatile-dirty are
// skipped and counted — someone is mid-write there, and clobbering an
// in-flight line would corrupt state the durable images cannot vouch
// for; the caller treats skipped lines as not-yet-repairable. Write and
// flush latency is charged per reconstructed line, plus one fence.
func (r *Region) XorReconstruct(off int, srcs []int, n int) (skipped int) {
	if n == 0 || len(srcs) == 0 {
		return 0
	}
	if off%LineSize != 0 {
		panic("pmem: unaligned XorReconstruct")
	}
	r.check(off, n)
	for _, s := range srcs {
		if s%LineSize != 0 {
			panic("pmem: unaligned XorReconstruct source")
		}
		r.check(s, n)
	}
	line := make([]byte, LineSize)
	restored := 0
	r.mu.Lock()
	for o := 0; o < n; o += LineSize {
		l := (off + o) / LineSize
		if r.dirty[l/64]&(1<<(l%64)) != 0 {
			skipped++
			continue
		}
		copy(line, r.shadow[srcs[0]+o:])
		for _, s := range srcs[1:] {
			for i := 0; i < LineSize; i++ {
				line[i] ^= r.shadow[s+o+i]
			}
		}
		copy(r.buf[off+o:], line)
		copy(r.shadow[off+o:], line)
		// The line is durable again: drop it from any flushed-but-unfenced
		// window so a later fence cannot resurrect pre-repair content.
		r.pending[l/64] &^= 1 << (l % 64)
		restored++
	}
	r.mu.Unlock()
	r.charge(time.Duration(restored)*(r.writeLine+r.flushLine) + r.fence)
	r.statsMu.Lock()
	r.stats.Writes++
	r.stats.ReconstructedLines += uint64(restored)
	r.statsMu.Unlock()
	return skipped
}

// EraseRange destroys [off, off+n) at media level: volatile and durable
// images are zeroed and all per-line write-back state is dropped, as if
// the PM rows themselves were lost. Fault injection uses it to model
// whole-data-area loss that only redundancy can survive.
func (r *Region) EraseRange(off, n int) {
	r.check(off, n)
	if n == 0 {
		return
	}
	r.mu.Lock()
	for i := off; i < off+n; i++ {
		r.buf[i] = 0
		r.shadow[i] = 0
	}
	first := off / LineSize
	last := (off + n - 1) / LineSize
	for l := first; l <= last; l++ {
		w, bit := l/64, uint64(1)<<(l%64)
		r.dirty[w] &^= bit
		r.pending[w] &^= bit
	}
	r.mu.Unlock()
}

// ReadShadow copies the durable image of [off, off+len(dst)) into dst,
// uncharged. Verification helpers use it to check media-level
// invariants (for example that a parity partition equals the XOR of its
// members) without perturbing latency accounting.
func (r *Region) ReadShadow(dst []byte, off int) {
	r.check(off, len(dst))
	r.mu.Lock()
	copy(dst, r.shadow[off:])
	r.mu.Unlock()
}
