// Package pktfs is the paper's second use case (§4.2): a file system
// whose metadata is persistent packet metadata.
//
// The paper sketches PM file systems in which "current inode structures
// would be simplified, and packet metadata blocks will be maintained by
// the file system alongside inode blocks": an inode's name, timestamp,
// checksum and data-block pointers are exactly the fields a persistent
// packet-metadata record already carries. pktfs realizes the sketch on
// top of the packetstore:
//
//   - an inode is a record under "i/<name>" whose value encodes the file
//     size and chunk count — its timestamp is the record's (NIC) time
//     stamp, its integrity comes from the record checksum;
//   - file data is a sequence of chunk records "d/<name>/<chunk#>", each
//     a packet-metadata record pointing at payload bytes in the PM data
//     area, each carrying its own transport-derived (or computed)
//     checksum.
//
// Files written over the network through the kvserver inherit zero-copy
// placement and checksum harvesting chunk by chunk; files written through
// this API take the copy path. Both recover by the store's metadata scan,
// and Fsck re-verifies every byte of every file against the stored sums.
package pktfs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"packetstore/internal/core"
)

// FS is a file system view over a packetstore.
type FS struct {
	s *core.Store
	// ChunkSize bounds each data record (default: half a data buffer, so
	// chunk payloads never span data slots).
	chunkSize int
}

// Errors.
var (
	ErrNotExist = errors.New("pktfs: file does not exist")
	ErrExist    = errors.New("pktfs: file already exists")
	ErrBadName  = errors.New("pktfs: invalid file name")
)

// New creates a file-system view over store. Files and KV records share
// the store; pktfs keys are namespaced under "i/" and "d/".
func New(store *core.Store) *FS {
	return &FS{s: store, chunkSize: 1024}
}

func inodeKey(name string) []byte { return []byte("i/" + name) }

func chunkKey(name string, i int) []byte {
	return []byte(fmt.Sprintf("d/%s/%08d", name, i))
}

func validName(name string) bool {
	if name == "" || len(name) > 255 {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return false
		}
	}
	return true
}

// FileInfo describes a file.
type FileInfo struct {
	Name    string
	Size    int
	Chunks  int
	ModTime time.Time // the inode record's (NIC) timestamp
}

// encodeInode packs size and chunk count.
func encodeInode(size, chunks int) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:8], uint64(size))
	binary.LittleEndian.PutUint64(b[8:16], uint64(chunks))
	return b
}

func decodeInode(b []byte) (size, chunks int, err error) {
	if len(b) != 16 {
		return 0, 0, fmt.Errorf("pktfs: corrupt inode (%d bytes)", len(b))
	}
	return int(binary.LittleEndian.Uint64(b[0:8])), int(binary.LittleEndian.Uint64(b[8:16])), nil
}

// WriteFile creates or replaces a file with data. The write is
// crash-atomic at the file level: chunks commit first, the inode commits
// last, and Fsck garbage-collects chunks with no (or a stale) inode.
func (fs *FS) WriteFile(name string, data []byte) error {
	if !validName(name) {
		return ErrBadName
	}
	// Stale chunks beyond the new count are removed after the inode
	// flips; remember the old shape.
	oldChunks := 0
	if fi, err := fs.Stat(name); err == nil {
		oldChunks = fi.Chunks
	}
	chunks := (len(data) + fs.chunkSize - 1) / fs.chunkSize
	for i := 0; i < chunks; i++ {
		lo := i * fs.chunkSize
		hi := min(lo+fs.chunkSize, len(data))
		if err := fs.s.Put(chunkKey(name, i), data[lo:hi]); err != nil {
			return err
		}
	}
	if err := fs.s.Put(inodeKey(name), encodeInode(len(data), chunks)); err != nil {
		return err
	}
	for i := chunks; i < oldChunks; i++ {
		if _, err := fs.s.Delete(chunkKey(name, i)); err != nil {
			return err
		}
	}
	return nil
}

// ReadFile returns a file's contents.
func (fs *FS) ReadFile(name string) ([]byte, error) {
	fi, err := fs.Stat(name)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, fi.Size)
	for i := 0; i < fi.Chunks; i++ {
		c, ok, err := fs.s.Get(chunkKey(name, i))
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, fmt.Errorf("pktfs: %s missing chunk %d", name, i)
		}
		out = append(out, c...)
	}
	if len(out) != fi.Size {
		return nil, fmt.Errorf("pktfs: %s has %d bytes, inode says %d", name, len(out), fi.Size)
	}
	return out, nil
}

// Stat describes a file.
func (fs *FS) Stat(name string) (FileInfo, error) {
	if !validName(name) {
		return FileInfo{}, ErrBadName
	}
	ref, ok, err := fs.s.GetRef(inodeKey(name))
	if err != nil {
		return FileInfo{}, err
	}
	if !ok {
		return FileInfo{}, ErrNotExist
	}
	v, ok, err := fs.s.Get(inodeKey(name))
	if err != nil || !ok {
		return FileInfo{}, fmt.Errorf("pktfs: inode read: %v", err)
	}
	size, chunks, err := decodeInode(v)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{Name: name, Size: size, Chunks: chunks, ModTime: ref.HWTime}, nil
}

// Remove deletes a file.
func (fs *FS) Remove(name string) error {
	fi, err := fs.Stat(name)
	if err != nil {
		return err
	}
	// Inode first: a crash mid-removal leaves orphan chunks for Fsck, not
	// a resurrectable file.
	if _, err := fs.s.Delete(inodeKey(name)); err != nil {
		return err
	}
	for i := 0; i < fi.Chunks; i++ {
		if _, err := fs.s.Delete(chunkKey(name, i)); err != nil {
			return err
		}
	}
	return nil
}

// List returns the names of all files.
func (fs *FS) List() ([]string, error) {
	var names []string
	err := fs.s.Ascend([]byte("i/"), func(rec core.Record) bool {
		k := string(rec.Key)
		if len(k) < 2 || k[:2] != "i/" {
			return false
		}
		names = append(names, k[2:])
		return true
	})
	return names, err
}

// FsckReport summarizes a consistency scan.
type FsckReport struct {
	Files         int
	OrphanChunks  int // chunk records with no live inode (removed)
	MissingChunks []string
	Corrupt       []string // checksum failures (from the store scrub)
}

// Fsck verifies every file's structure and integrity and garbage-collects
// orphan chunks left by crashes between chunk and inode commits.
func (fs *FS) Fsck() (FsckReport, error) {
	var rep FsckReport
	names, err := fs.List()
	if err != nil {
		return rep, err
	}
	rep.Files = len(names)
	valid := map[string]int{} // name -> chunk count
	for _, n := range names {
		fi, err := fs.Stat(n)
		if err != nil {
			return rep, err
		}
		valid[n] = fi.Chunks
		for i := 0; i < fi.Chunks; i++ {
			if _, ok, _ := fs.s.Get(chunkKey(n, i)); !ok {
				rep.MissingChunks = append(rep.MissingChunks, fmt.Sprintf("%s/%d", n, i))
			}
		}
	}
	// Orphan chunks: data records whose file or index is gone/stale.
	var orphans [][]byte
	err = fs.s.Ascend([]byte("d/"), func(rec core.Record) bool {
		k := string(rec.Key)
		if len(k) < 2 || k[:2] != "d/" {
			return false
		}
		var name string
		var idx int
		slash := -1
		for i := len(k) - 1; i >= 2; i-- {
			if k[i] == '/' {
				slash = i
				break
			}
		}
		if slash < 0 {
			return true
		}
		name = k[2:slash]
		fmt.Sscanf(k[slash+1:], "%d", &idx)
		if chunks, ok := valid[name]; !ok || idx >= chunks {
			orphans = append(orphans, append([]byte(nil), rec.Key...))
		}
		return true
	})
	if err != nil {
		return rep, err
	}
	for _, k := range orphans {
		if _, err := fs.s.Delete(k); err != nil {
			return rep, err
		}
	}
	rep.OrphanChunks = len(orphans)
	// Byte-level integrity via the store's transport-derived checksums.
	bad, err := fs.s.Verify()
	if err != nil {
		return rep, err
	}
	for _, k := range bad {
		rep.Corrupt = append(rep.Corrupt, string(k))
	}
	return rep, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
