package pktfs

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/pmem"
)

func newFS(t *testing.T) (*pmem.Region, *core.Store, *FS) {
	t.Helper()
	cfg := core.Config{MetaSlots: 1 << 13, DataSlots: 1 << 13, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, s, New(s)
}

func TestWriteReadFile(t *testing.T) {
	_, _, fs := newFS(t)
	data := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(data)
	if err := fs.WriteFile("report.bin", data); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("report.bin")
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read: %d bytes, %v", len(got), err)
	}
	fi, err := fs.Stat("report.bin")
	if err != nil || fi.Size != len(data) || fi.Chunks != 10 {
		t.Fatalf("stat: %+v %v", fi, err)
	}
	if fi.ModTime.IsZero() {
		t.Fatal("no timestamp on inode")
	}
}

func TestEmptyAndSmallFiles(t *testing.T) {
	_, _, fs := newFS(t)
	if err := fs.WriteFile("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, err := fs.ReadFile("empty")
	if err != nil || len(got) != 0 {
		t.Fatalf("%d bytes, %v", len(got), err)
	}
	if err := fs.WriteFile("tiny", []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("tiny")
	if string(got) != "x" {
		t.Fatal("tiny file corrupted")
	}
}

func TestOverwriteShrinksFile(t *testing.T) {
	_, s, fs := newFS(t)
	fs.WriteFile("f", make([]byte, 5000)) // 5 chunks
	before := s.Len()
	fs.WriteFile("f", make([]byte, 1000)) // 1 chunk: 4 stale chunks removed
	if s.Len() != before-4 {
		t.Fatalf("records %d -> %d, want -4", before, s.Len())
	}
	got, err := fs.ReadFile("f")
	if err != nil || len(got) != 1000 {
		t.Fatalf("%d bytes %v", len(got), err)
	}
}

func TestRemoveAndList(t *testing.T) {
	_, s, fs := newFS(t)
	for i := 0; i < 5; i++ {
		fs.WriteFile(fmt.Sprintf("file%d", i), make([]byte, 2000))
	}
	names, err := fs.List()
	if err != nil || len(names) != 5 {
		t.Fatalf("%v %v", names, err)
	}
	if err := fs.Remove("file2"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Stat("file2"); err != ErrNotExist {
		t.Fatalf("stat removed: %v", err)
	}
	if _, err := fs.ReadFile("file2"); err != ErrNotExist {
		t.Fatalf("read removed: %v", err)
	}
	names, _ = fs.List()
	if len(names) != 4 {
		t.Fatalf("%v", names)
	}
	// All of file2's records are gone (no leaks).
	want := 4 * 3 // 4 files x (inode + 2 chunks)
	if s.Len() != want {
		t.Fatalf("store has %d records, want %d", s.Len(), want)
	}
}

func TestBadNames(t *testing.T) {
	_, _, fs := newFS(t)
	for _, n := range []string{"", "a/b", string([]byte{'a', 0}), string(make([]byte, 300))} {
		if err := fs.WriteFile(n, nil); err != ErrBadName {
			t.Errorf("name %q accepted: %v", n, err)
		}
	}
}

func TestFsckCleanAndOrphans(t *testing.T) {
	_, s, fs := newFS(t)
	fs.WriteFile("good", make([]byte, 3000))
	rep, err := fs.Fsck()
	if err != nil || rep.Files != 1 || rep.OrphanChunks != 0 || len(rep.Corrupt) != 0 {
		t.Fatalf("clean fsck: %+v %v", rep, err)
	}
	// Simulate a crash between chunk and inode commits: orphan chunks.
	s.Put(chunkKey("half-written", 0), make([]byte, 1000))
	s.Put(chunkKey("half-written", 1), make([]byte, 500))
	rep, err = fs.Fsck()
	if err != nil || rep.OrphanChunks != 2 {
		t.Fatalf("orphan fsck: %+v %v", rep, err)
	}
	// Orphans were collected.
	rep, _ = fs.Fsck()
	if rep.OrphanChunks != 0 {
		t.Fatalf("orphans resurrected: %+v", rep)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	r, _, fs := newFS(t)
	payload := bytes.Repeat([]byte("FILEDATA"), 200)
	fs.WriteFile("victim", payload)
	img := r.Slice(0, r.Size())
	idx := bytes.Index(img, []byte("FILEDATAFILEDATA"))
	if idx < 0 {
		t.Fatal("payload not found")
	}
	img[idx] ^= 0x01
	rep, err := fs.Fsck()
	if err != nil || len(rep.Corrupt) != 1 {
		t.Fatalf("corruption fsck: %+v %v", rep, err)
	}
}

func TestFilesystemSurvivesCrash(t *testing.T) {
	cfg := core.Config{MetaSlots: 1 << 13, DataSlots: 1 << 13, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, _ := core.Open(r, cfg)
	fs := New(s)
	data := make([]byte, 8000)
	rand.New(rand.NewSource(2)).Read(data)
	for i := 0; i < 10; i++ {
		if err := fs.WriteFile(fmt.Sprintf("doc%02d", i), data); err != nil {
			t.Fatal(err)
		}
	}
	r.Crash(3)
	s2, err := core.Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs2 := New(s2)
	rep, err := fs2.Fsck()
	if err != nil || len(rep.MissingChunks) != 0 || len(rep.Corrupt) != 0 {
		t.Fatalf("post-crash fsck: %+v %v", rep, err)
	}
	for i := 0; i < 10; i++ {
		got, err := fs2.ReadFile(fmt.Sprintf("doc%02d", i))
		if err != nil || !bytes.Equal(got, data) {
			t.Fatalf("doc%02d lost after crash: %v", i, err)
		}
	}
}
