// Package calib defines the latency-model profiles that calibrate the
// simulated hardware (persistent memory, NIC, network fabric) to the
// testbed the paper measured.
//
// The "paper" profile is tuned so that the end-to-end shape of the paper's
// evaluation reproduces: networking around 25µs RTT, persistence around
// 2µs per 1KB value, PM index walks noticeably more expensive than DRAM.
// Absolute values are documented per-field with their provenance (the
// paper's Table 1 and the Izraelevitz et al. Optane characterization the
// paper cites).
//
// The "off" profile zeroes every emulated delay; unit tests use it so the
// suite runs at full speed and tests only functional behaviour.
package calib

import "time"

// Profile is a complete set of emulated hardware latencies. A Profile is
// plain data: subsystems copy the fields they need at construction time.
type Profile struct {
	Name string

	// Network fabric.

	// WireLatency is the one-way propagation plus switch transit delay of
	// the fabric. The paper's testbed is two hosts on one 25GbE switch;
	// a few microseconds one-way is typical for a store-and-forward ToR
	// plus cabling plus PHY/MAC latency.
	WireLatency time.Duration
	// WireBandwidth is the link rate in bits per second, charged as
	// serialization delay per frame. Zero disables the bandwidth model.
	WireBandwidth float64

	// NIC.

	// NICPerPacket models DMA descriptor processing, PCIe round trip and
	// doorbell cost per packet, in each direction.
	NICPerPacket time.Duration
	// StackPerPacket models the fixed per-packet software-path overhead
	// that exists on the testbed but not in this simulator's thin stack:
	// softirq dispatch, socket locking, epoll wakeups, syscall crossings
	// on the (kernel-stack) client. Charged once per packet per traversal.
	StackPerPacket time.Duration

	// Persistent memory, per 64-byte cache line. Values follow the Optane
	// DC characterization cited by the paper (§5.1: 346ns read latency
	// vs 70ns DRAM) and its Table 1 persistence row (1.94µs to flush a
	// 1KB value, i.e. ~120ns per line).

	// PMReadLine is the extra cost of a cache-missing load from PM,
	// charged by index walks and other pointer-chasing reads.
	PMReadLine time.Duration
	// PMWriteLine is the extra cost of a store to PM (write goes to the
	// on-DIMM write-pending queue; slower than DRAM but far cheaper than
	// a flush).
	PMWriteLine time.Duration
	// PMFlushLine is the cost of clwb/clflushopt per dirty line.
	PMFlushLine time.Duration
	// PMFence is the cost of the sfence ordering a batch of flushes.
	PMFence time.Duration

	// NUMA holds the remote-socket PM surcharge model. The zero value
	// means "no NUMA model": remote access costs the same as local.
	NUMA NUMAProfile
}

// NUMAProfile models the extra cost of touching persistent memory that
// lives on a different socket than the accessing core. "Observations on
// Porting In-memory KV stores to Persistent Memory" measures remote PM
// access at roughly 2–3× local — a far steeper penalty than the DRAM
// NUMA ratio — because the access serializes the interconnect hop with
// the already-slow media. Fields are absolute per-line costs on the
// remote path (they replace, not add to, the local per-line cost), plus
// a per-hop interconnect charge for topologies more than one hop wide.
type NUMAProfile struct {
	// RemoteReadLine replaces PMReadLine when the line's home node
	// differs from the accessing node (≈2.5× local per the Optane
	// cross-socket characterization).
	RemoteReadLine time.Duration
	// RemoteWriteLine replaces PMWriteLine across sockets: stores still
	// land in the remote DIMM's write-pending queue, but only after the
	// interconnect transfer.
	RemoteWriteLine time.Duration
	// RemoteFlushLine replaces PMFlushLine across sockets: the flush
	// cannot complete until the line reaches the remote DIMM's ADR
	// domain, so the hop is on the critical path.
	RemoteFlushLine time.Duration
	// HopCost is added once per line per interconnect hop beyond the
	// first (distance-1 remote access pays only the Remote*Line rates;
	// each further hop adds HopCost).
	HopCost time.Duration
}

// Paper returns the profile calibrated against the paper's testbed
// (Table 1: networking 26.71µs, persistence 1.94µs/1KB; Izraelevitz et
// al.: 346ns PM read vs 70ns DRAM).
func Paper() Profile {
	return Profile{
		Name:           "paper",
		WireLatency:    3 * time.Microsecond,
		WireBandwidth:  25e9,
		NICPerPacket:   500 * time.Nanosecond,
		StackPerPacket: 500 * time.Nanosecond,
		PMReadLine:     250 * time.Nanosecond, // 346ns raw minus ~70-100ns a DRAM miss would cost anyway
		PMWriteLine:    60 * time.Nanosecond,
		PMFlushLine:    115 * time.Nanosecond,
		PMFence:        30 * time.Nanosecond,
		NUMA: NUMAProfile{
			RemoteReadLine:  625 * time.Nanosecond, // 2.5× local: cross-socket PM load per the porting study
			RemoteWriteLine: 150 * time.Nanosecond, // 2.5× local: interconnect transfer before the remote WPQ
			RemoteFlushLine: 290 * time.Nanosecond, // ~2.5× local: hop on the flush critical path
			HopCost:         75 * time.Nanosecond,  // extra interconnect hop beyond the first
		},
	}
}

// Fast returns a profile with token delays an order of magnitude below
// Paper's: useful for integration tests that want the latency model code
// paths exercised without the wall-clock cost.
func Fast() Profile {
	p := Paper()
	p.Name = "fast"
	p.WireLatency = 500 * time.Nanosecond
	p.NICPerPacket = 90 * time.Nanosecond
	p.StackPerPacket = 120 * time.Nanosecond
	p.PMReadLine = 25 * time.Nanosecond
	p.PMWriteLine = 0
	p.PMFlushLine = 12 * time.Nanosecond
	p.PMFence = 0
	p.NUMA = NUMAProfile{
		RemoteReadLine:  62 * time.Nanosecond,
		RemoteWriteLine: 15 * time.Nanosecond,
		RemoteFlushLine: 29 * time.Nanosecond,
		HopCost:         8 * time.Nanosecond,
	}
	return p
}

// Off returns the all-zero profile: no emulated delays anywhere.
func Off() Profile { return Profile{Name: "off"} }

// ByName resolves a profile by its name; it returns Off for unknown names
// with ok=false.
func ByName(name string) (Profile, bool) {
	switch name {
	case "paper":
		return Paper(), true
	case "fast":
		return Fast(), true
	case "off", "":
		return Off(), true
	}
	return Off(), false
}
