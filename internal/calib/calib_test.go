package calib

import "testing"

func TestByName(t *testing.T) {
	for _, name := range []string{"paper", "fast", "off"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName accepted bogus profile")
	}
	if p, ok := ByName(""); !ok || p.Name != "off" {
		t.Error("empty name should resolve to off")
	}
}

func TestOffIsAllZero(t *testing.T) {
	p := Off()
	if p.WireLatency != 0 || p.NICPerPacket != 0 || p.StackPerPacket != 0 ||
		p.PMReadLine != 0 || p.PMWriteLine != 0 || p.PMFlushLine != 0 || p.PMFence != 0 ||
		p.WireBandwidth != 0 {
		t.Fatalf("Off profile has nonzero delays: %+v", p)
	}
}

func TestPaperRoughCalibration(t *testing.T) {
	p := Paper()
	// 1KB = 16 lines; flushing must land in the neighbourhood of the
	// paper's 1.94µs persistence row.
	flush := 16*p.PMFlushLine + p.PMFence
	if flush.Nanoseconds() < 1200 || flush.Nanoseconds() > 2800 {
		t.Errorf("1KB flush cost %v outside [1.2µs, 2.8µs]", flush)
	}
	// Round trip fabric alone: 2x wire must be well under the paper's
	// 26.71µs networking figure, leaving room for stack costs.
	if rt := 2 * p.WireLatency; rt.Microseconds() > 15 {
		t.Errorf("wire RTT %v too large", rt)
	}
}
