package calib

import (
	"testing"
	"time"
)

func TestByName(t *testing.T) {
	for _, name := range []string{"paper", "fast", "off"} {
		p, ok := ByName(name)
		if !ok || p.Name != name {
			t.Errorf("ByName(%q) = %+v, %v", name, p, ok)
		}
	}
	if _, ok := ByName("bogus"); ok {
		t.Error("ByName accepted bogus profile")
	}
	if p, ok := ByName(""); !ok || p.Name != "off" {
		t.Error("empty name should resolve to off")
	}
}

func TestOffIsAllZero(t *testing.T) {
	p := Off()
	if p.WireLatency != 0 || p.NICPerPacket != 0 || p.StackPerPacket != 0 ||
		p.PMReadLine != 0 || p.PMWriteLine != 0 || p.PMFlushLine != 0 || p.PMFence != 0 ||
		p.WireBandwidth != 0 {
		t.Fatalf("Off profile has nonzero delays: %+v", p)
	}
}

func TestPaperRoughCalibration(t *testing.T) {
	p := Paper()
	// 1KB = 16 lines; flushing must land in the neighbourhood of the
	// paper's 1.94µs persistence row.
	flush := 16*p.PMFlushLine + p.PMFence
	if flush.Nanoseconds() < 1200 || flush.Nanoseconds() > 2800 {
		t.Errorf("1KB flush cost %v outside [1.2µs, 2.8µs]", flush)
	}
	// Round trip fabric alone: 2x wire must be well under the paper's
	// 26.71µs networking figure, leaving room for stack costs.
	if rt := 2 * p.WireLatency; rt.Microseconds() > 15 {
		t.Errorf("wire RTT %v too large", rt)
	}
}

// TestPaperGolden pins the paper profile's exact constants: drift here
// silently recalibrates every recorded benchmark, so a change must be
// deliberate (update this table alongside the provenance comments).
func TestPaperGolden(t *testing.T) {
	p := Paper()
	golden := []struct {
		name string
		got  time.Duration
		want time.Duration
	}{
		{"WireLatency", p.WireLatency, 3 * time.Microsecond},
		{"NICPerPacket", p.NICPerPacket, 500 * time.Nanosecond},
		{"StackPerPacket", p.StackPerPacket, 500 * time.Nanosecond},
		{"PMReadLine", p.PMReadLine, 250 * time.Nanosecond},
		{"PMWriteLine", p.PMWriteLine, 60 * time.Nanosecond},
		{"PMFlushLine", p.PMFlushLine, 115 * time.Nanosecond},
		{"PMFence", p.PMFence, 30 * time.Nanosecond},
		{"NUMA.RemoteReadLine", p.NUMA.RemoteReadLine, 625 * time.Nanosecond},
		{"NUMA.RemoteWriteLine", p.NUMA.RemoteWriteLine, 150 * time.Nanosecond},
		{"NUMA.RemoteFlushLine", p.NUMA.RemoteFlushLine, 290 * time.Nanosecond},
		{"NUMA.HopCost", p.NUMA.HopCost, 75 * time.Nanosecond},
	}
	for _, g := range golden {
		if g.got != g.want {
			t.Errorf("Paper().%s = %v, want %v", g.name, g.got, g.want)
		}
	}
	if p.WireBandwidth != 25e9 {
		t.Errorf("Paper().WireBandwidth = %v, want 25e9", p.WireBandwidth)
	}
	// The remote rates must model the porting study's 2-3x penalty.
	for _, r := range []struct {
		name          string
		local, remote time.Duration
	}{
		{"read", p.PMReadLine, p.NUMA.RemoteReadLine},
		{"write", p.PMWriteLine, p.NUMA.RemoteWriteLine},
		{"flush", p.PMFlushLine, p.NUMA.RemoteFlushLine},
	} {
		lo, hi := 2*r.local, 3*r.local
		if r.remote < lo || r.remote > hi {
			t.Errorf("remote %s rate %v outside [2x, 3x] of local %v", r.name, r.remote, r.local)
		}
	}
}

// TestByNameNUMARoundTrip checks each named profile carries its NUMA
// section through ByName intact, and that off stays modelless.
func TestByNameNUMARoundTrip(t *testing.T) {
	for _, name := range []string{"paper", "fast"} {
		p, ok := ByName(name)
		if !ok {
			t.Fatalf("ByName(%q) not found", name)
		}
		var want NUMAProfile
		switch name {
		case "paper":
			want = Paper().NUMA
		case "fast":
			want = Fast().NUMA
		}
		if p.NUMA != want {
			t.Errorf("ByName(%q).NUMA = %+v, want %+v", name, p.NUMA, want)
		}
		if p.NUMA == (NUMAProfile{}) {
			t.Errorf("profile %q has a zero NUMA section", name)
		}
	}
	if p, _ := ByName("off"); p.NUMA != (NUMAProfile{}) {
		t.Errorf("off profile should have no NUMA model, got %+v", p.NUMA)
	}
}
