package skiplist

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func newList() *List { return New(bytes.Compare) }

func TestInsertGet(t *testing.T) {
	l := newList()
	l.Insert([]byte("b"), []byte("2"))
	l.Insert([]byte("a"), []byte("1"))
	l.Insert([]byte("c"), []byte("3"))
	if l.Len() != 3 {
		t.Fatalf("Len=%d", l.Len())
	}
	for k, want := range map[string]string{"a": "1", "b": "2", "c": "3"} {
		v, ok := l.Get([]byte(k))
		if !ok || string(v) != want {
			t.Fatalf("Get(%s)=%q,%v", k, v, ok)
		}
	}
	if _, ok := l.Get([]byte("zz")); ok {
		t.Fatal("absent key found")
	}
}

func TestDuplicatePanics(t *testing.T) {
	l := newList()
	l.Insert([]byte("k"), []byte("v"))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Insert([]byte("k"), []byte("v2"))
}

func TestEmptyList(t *testing.T) {
	l := newList()
	if _, ok := l.Get([]byte("x")); ok {
		t.Fatal("Get on empty")
	}
	it := l.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("iterator valid on empty list")
	}
	it.Next() // before-first Next on empty
	if it.Valid() {
		t.Fatal("Next on empty list")
	}
}

func TestIteratorOrder(t *testing.T) {
	l := newList()
	rng := rand.New(rand.NewSource(2))
	keys := map[string]bool{}
	for i := 0; i < 1000; i++ {
		k := fmt.Sprintf("key-%06d", rng.Intn(100000))
		if keys[k] {
			continue
		}
		keys[k] = true
		l.Insert([]byte(k), []byte(k))
	}
	var want []string
	for k := range keys {
		want = append(want, k)
	}
	sort.Strings(want)

	var got []string
	for it := l.NewIterator(); ; {
		it.Next()
		if !it.Valid() {
			break
		}
		if !bytes.Equal(it.Key(), it.Value()) {
			t.Fatal("value mismatch")
		}
		got = append(got, string(it.Key()))
	}
	if len(got) != len(want) {
		t.Fatalf("got %d keys want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("order diverges at %d: %s vs %s", i, got[i], want[i])
		}
	}
}

func TestSeek(t *testing.T) {
	l := newList()
	for i := 0; i < 100; i += 10 {
		k := []byte(fmt.Sprintf("%03d", i))
		l.Insert(k, k)
	}
	it := l.NewIterator()
	it.Seek([]byte("035"))
	if !it.Valid() || string(it.Key()) != "040" {
		t.Fatalf("Seek(035) at %q", it.Key())
	}
	it.Seek([]byte("040"))
	if !it.Valid() || string(it.Key()) != "040" {
		t.Fatalf("Seek(040) at %q", it.Key())
	}
	it.Seek([]byte("999"))
	if it.Valid() {
		t.Fatal("Seek past end should be invalid")
	}
	it.SeekToFirst()
	if !it.Valid() || string(it.Key()) != "000" {
		t.Fatalf("SeekToFirst at %q", it.Key())
	}
}

func TestQuickAgainstSortedModel(t *testing.T) {
	f := func(raw [][]byte) bool {
		l := newList()
		ref := map[string][]byte{}
		for i, k := range raw {
			if _, dup := ref[string(k)]; dup {
				continue
			}
			v := []byte(fmt.Sprint(i))
			ref[string(k)] = v
			l.Insert(k, v)
		}
		if l.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := l.Get([]byte(k))
			if !ok || !bytes.Equal(got, v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestInternalKeyStyleComparator(t *testing.T) {
	// Comparator: user key ascending, trailing 8-byte seq descending —
	// the LSM internal key order. Same user key, different seq must
	// coexist and iterate newest-first.
	cmp := func(a, b []byte) int {
		ua, sa := a[:len(a)-8], a[len(a)-8:]
		ub, sb := b[:len(b)-8], b[len(b)-8:]
		if c := bytes.Compare(ua, ub); c != 0 {
			return c
		}
		return -bytes.Compare(sa, sb)
	}
	l := New(cmp)
	mk := func(k string, seq byte) []byte {
		return append([]byte(k), 0, 0, 0, 0, 0, 0, 0, seq)
	}
	l.Insert(mk("k", 1), []byte("old"))
	l.Insert(mk("k", 2), []byte("new"))
	it := l.NewIterator()
	it.Seek(mk("k", 255)) // seeks to highest seq for "k"
	if !it.Valid() || string(it.Value()) != "new" {
		t.Fatalf("newest-first seek got %q", it.Value())
	}
}

func TestMemoryUsageGrows(t *testing.T) {
	l := newList()
	before := l.MemoryUsage()
	big := make([]byte, arenaBlock) // takes the large-value path
	l.Insert([]byte("k"), big)
	if l.MemoryUsage() <= before {
		t.Fatal("MemoryUsage did not grow")
	}
}

func TestArenaLargeAndSmallMix(t *testing.T) {
	a := newArena()
	big := make([]byte, arenaBlock)
	for i := range big {
		big[i] = byte(i)
	}
	small := []byte("small")
	gb := a.copy(big)
	gs := a.copy(small)
	if !bytes.Equal(gb, big) || !bytes.Equal(gs, small) {
		t.Fatal("arena copies corrupt")
	}
	if a.copy(nil) != nil {
		t.Fatal("empty copy should be nil")
	}
}

func BenchmarkInsert(b *testing.B) {
	l := newList()
	key := make([]byte, 16)
	val := make([]byte, 100)
	for i := 0; i < b.N; i++ {
		for j := 0; j < 8; j++ {
			key[j] = byte(i >> (8 * j))
		}
		key[8] = byte(i >> 24) // keep unique
		l.Insert(append([]byte(nil), key...), val)
	}
}

func BenchmarkGet(b *testing.B) {
	l := newList()
	for i := 0; i < 10000; i++ {
		k := []byte(fmt.Sprintf("key-%08d", i))
		l.Insert(k, k)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Get([]byte(fmt.Sprintf("key-%08d", i%10000)))
	}
}
