// Package skiplist implements a volatile, arena-backed skip list with
// byte-slice keys and values and a caller-supplied comparator.
//
// This is the DRAM memtable of the LevelDB-style baseline store: inserts
// copy key and value into a grow-only arena (LevelDB's design, which the
// paper's Table 1 measures as part of "buffer allocation and insertion"),
// and iteration order follows the comparator, so LSM internal keys (user
// key ascending, sequence number descending) work unchanged.
//
// The list supports one writer with concurrent readers when the caller
// provides external synchronization for writes; reads never observe a
// partially linked node because forward pointers are published last.
package skiplist

import (
	"math/rand"
	"sync/atomic"
)

const (
	maxHeight = 12
	branching = 4
)

// Comparator orders keys; negative means a < b.
type Comparator func(a, b []byte) int

// List is a skip list. Create with New.
type List struct {
	cmp    Comparator
	head   *node
	height atomic.Int32
	rng    *rand.Rand
	arena  *arena
	count  int
}

type node struct {
	key  []byte
	val  []byte
	next [maxHeight]atomic.Pointer[node]
}

// New returns an empty list using cmp. Random heights are drawn from a
// fixed-seed generator so behaviour is reproducible.
func New(cmp Comparator) *List {
	l := &List{
		cmp:   cmp,
		head:  &node{},
		rng:   rand.New(rand.NewSource(0xdecea5e)),
		arena: newArena(),
	}
	l.height.Store(1)
	return l
}

// Len returns the number of entries.
func (l *List) Len() int { return l.count }

// MemoryUsage returns the bytes consumed by the arena, the figure the LSM
// uses to decide when a memtable is full.
func (l *List) MemoryUsage() int { return l.arena.used }

func (l *List) randomHeight() int {
	h := 1
	for h < maxHeight && l.rng.Intn(branching) == 0 {
		h++
	}
	return h
}

// findGE returns the first node with key >= key, filling prev with the
// rightmost node before that position at every level when prev != nil.
func (l *List) findGE(key []byte, prev *[maxHeight]*node) *node {
	x := l.head
	level := int(l.height.Load()) - 1
	for {
		nxt := x.next[level].Load()
		if nxt != nil && l.cmp(nxt.key, key) < 0 {
			x = nxt
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return nxt
		}
		level--
	}
}

// Insert adds key/value. Duplicate keys are allowed only if the comparator
// distinguishes them (LSM internal keys always differ by sequence number);
// inserting an exactly-equal key panics, matching LevelDB's contract.
func (l *List) Insert(key, val []byte) {
	var prev [maxHeight]*node
	if ge := l.findGE(key, &prev); ge != nil && l.cmp(ge.key, key) == 0 {
		panic("skiplist: duplicate key")
	}
	h := l.randomHeight()
	if h > int(l.height.Load()) {
		for i := int(l.height.Load()); i < h; i++ {
			prev[i] = l.head
		}
		l.height.Store(int32(h))
	}
	n := &node{key: l.arena.copy(key), val: l.arena.copy(val)}
	for i := 0; i < h; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n)
	}
	l.count++
}

// Get returns the value stored under the exactly-equal key.
func (l *List) Get(key []byte) ([]byte, bool) {
	n := l.findGE(key, nil)
	if n != nil && l.cmp(n.key, key) == 0 {
		return n.val, true
	}
	return nil, false
}

// Iterator walks the list in comparator order. The zero Iterator is
// positioned before the first entry.
type Iterator struct {
	l *List
	n *node
}

// NewIterator returns an iterator positioned before the first entry.
func (l *List) NewIterator() *Iterator { return &Iterator{l: l} }

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.n != nil }

// Key returns the current key; valid only when Valid.
func (it *Iterator) Key() []byte { return it.n.key }

// Value returns the current value; valid only when Valid.
func (it *Iterator) Value() []byte { return it.n.val }

// Next advances to the following entry.
func (it *Iterator) Next() {
	if it.n == nil {
		it.n = it.l.head.next[0].Load()
		return
	}
	it.n = it.n.next[0].Load()
}

// SeekToFirst positions at the smallest entry.
func (it *Iterator) SeekToFirst() { it.n = it.l.head.next[0].Load() }

// Seek positions at the first entry with key >= key.
func (it *Iterator) Seek(key []byte) { it.n = it.l.findGE(key, nil) }

// arena is a grow-only byte allocator: key/value bytes for all nodes live
// in large shared blocks, amortizing allocation.
type arena struct {
	blocks [][]byte
	cur    []byte
	used   int
}

const arenaBlock = 1 << 16

func newArena() *arena { return &arena{} }

func (a *arena) copy(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	if len(b) > arenaBlock/4 {
		// Large values get their own block so they don't strand space.
		blk := make([]byte, len(b))
		copy(blk, b)
		a.blocks = append(a.blocks, blk)
		a.used += len(b)
		return blk
	}
	if len(a.cur) < len(b) {
		a.cur = make([]byte, arenaBlock)
		a.blocks = append(a.blocks, a.cur)
		a.used += arenaBlock
	}
	out := a.cur[:len(b):len(b)]
	copy(out, b)
	a.cur = a.cur[len(b):]
	return out
}
