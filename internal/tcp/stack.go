package tcp

import (
	"errors"
	"sync"
	"time"

	"packetstore/internal/checksum"
	"packetstore/internal/eth"
	"packetstore/internal/ipv4"
	"packetstore/internal/nic"
	"packetstore/internal/pkt"
)

// Errors returned by the connection API.
var (
	ErrClosed       = errors.New("tcp: connection closed")
	ErrReset        = errors.New("tcp: connection reset by peer")
	ErrTimeout      = errors.New("tcp: operation timed out")
	ErrStackClosed  = errors.New("tcp: stack closed")
	ErrListenerUsed = errors.New("tcp: port already in use")
	ErrRefused      = errors.New("tcp: connection refused")
)

// Config tunes a Stack.
type Config struct {
	// RcvBuf is the per-connection receive budget in bytes (window
	// clamp). Default 256KB.
	RcvBuf int
	// SndBuf is the per-connection send buffer in bytes. Default 256KB.
	SndBuf int
	// MinRTO clamps the retransmission timeout. Default 20ms.
	MinRTO time.Duration
	// DelayedACK is the delayed-acknowledgement timer. Default 1ms
	// (busy-polling testbed configuration).
	DelayedACK time.Duration
	// ReadyLen bounds the readable-event queue. Default 4096.
	ReadyLen int
	// Backlog bounds each listener's accept queue; SYNs beyond it are
	// refused (RST) instead of growing server state without bound.
	// Default 128.
	Backlog int
}

func (c *Config) fill() {
	if c.RcvBuf == 0 {
		c.RcvBuf = 256 << 10
	}
	if c.SndBuf == 0 {
		c.SndBuf = 256 << 10
	}
	if c.MinRTO == 0 {
		c.MinRTO = 20 * time.Millisecond
	}
	if c.DelayedACK == 0 {
		c.DelayedACK = time.Millisecond
	}
	if c.ReadyLen == 0 {
		c.ReadyLen = 4096
	}
	if c.Backlog == 0 {
		c.Backlog = 128
	}
}

type flowKey struct {
	raddr ipv4.Addr
	rport uint16
	lport uint16
}

// Stack is a host TCP/IPv4 endpoint bound to one NIC. A single goroutine
// per NIC queue processes incoming segments; one mutex guards all
// connection state (the single-core busy-polling structure of the paper's
// server).
type Stack struct {
	mu   sync.Mutex
	cfg  Config
	nic  *nic.NIC
	addr ipv4.Addr
	mac  eth.Addr

	neighbors map[ipv4.Addr]eth.Addr
	conns     map[flowKey]*Conn
	listeners map[uint16]*Listener
	ready     []chan *Conn // readable events, partitioned by NIC RSS queue
	nextPort  uint16
	ipID      uint16
	closed    bool
	done      chan struct{}
	wg        sync.WaitGroup
}

// NewStack creates a stack on n with the given local address and starts
// its receive loops.
func NewStack(n *nic.NIC, addr ipv4.Addr, cfg Config) *Stack {
	cfg.fill()
	s := &Stack{
		cfg:       cfg,
		nic:       n,
		addr:      addr,
		mac:       n.MAC(),
		neighbors: make(map[ipv4.Addr]eth.Addr),
		conns:     make(map[flowKey]*Conn),
		listeners: make(map[uint16]*Listener),
		ready:     make([]chan *Conn, n.Queues()),
		nextPort:  32768,
		done:      make(chan struct{}),
	}
	for q := range s.ready {
		s.ready[q] = make(chan *Conn, cfg.ReadyLen)
	}
	for q := 0; q < n.Queues(); q++ {
		s.wg.Add(1)
		go s.rxLoop(q)
	}
	return s
}

// Addr returns the stack's IPv4 address.
func (s *Stack) Addr() ipv4.Addr { return s.addr }

// NIC returns the stack's adapter.
func (s *Stack) NIC() *nic.NIC { return s.nic }

// AddNeighbor installs a static ARP entry. The simulator uses static
// neighbor tables instead of ARP resolution.
func (s *Stack) AddNeighbor(ip ipv4.Addr, mac eth.Addr) {
	s.mu.Lock()
	s.neighbors[ip] = mac
	s.mu.Unlock()
}

// Readable returns queue 0's channel of connections that transitioned to
// having data (or EOF, or an error) pending. Each connection appears at
// most once until the application drains it — an edge-triggered epoll
// analogue for the single-threaded server loop. Multi-queue servers use
// ReadableQ per loop; a connection's events always arrive on the channel
// of the RSS queue its flow hashes to.
func (s *Stack) Readable() <-chan *Conn { return s.ready[0] }

// ReadableQ returns the readable-event channel of RSS queue q.
func (s *Stack) ReadableQ(q int) <-chan *Conn { return s.ready[q] }

// ReadyLenQ returns the number of undrained readable events on RSS
// queue q — the stack-level component of a queue's occupancy, which
// work-stealing loops use to pick victims by depth.
func (s *Stack) ReadyLenQ(q int) int { return len(s.ready[q]) }

// Queues returns the number of RSS queues (= readable channels).
func (s *Stack) Queues() int { return len(s.ready) }

// Close shuts the stack down: all connections error out, the NIC closes,
// and the receive loops exit.
func (s *Stack) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	conns := make([]*Conn, 0, len(s.conns))
	for _, c := range s.conns {
		conns = append(conns, c)
	}
	for _, l := range s.listeners {
		l.closeLocked(ErrStackClosed)
	}
	s.mu.Unlock()
	for _, c := range conns {
		c.abort(ErrStackClosed)
	}
	close(s.done)
	s.nic.Close()
	s.wg.Wait()
}

// Listen starts accepting connections on port.
func (s *Stack) Listen(port uint16) (*Listener, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrStackClosed
	}
	if _, busy := s.listeners[port]; busy {
		return nil, ErrListenerUsed
	}
	l := &Listener{stk: s, port: port, acceptQ: make(chan *Conn, s.cfg.Backlog)}
	s.listeners[port] = l
	return l, nil
}

// Listener accepts inbound connections on a port.
type Listener struct {
	stk     *Stack
	port    uint16
	acceptQ chan *Conn
	closed  bool
	err     error
}

// Accept blocks until a connection completes the handshake.
func (l *Listener) Accept() (*Conn, error) {
	c, ok := <-l.acceptQ
	if !ok {
		l.stk.mu.Lock()
		err := l.err
		l.stk.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return nil, err
	}
	return c, nil
}

// AcceptCh exposes the accept queue for event-loop servers that select
// over accepts and readable events.
func (l *Listener) AcceptCh() <-chan *Conn { return l.acceptQ }

// Close stops the listener. Established connections are unaffected.
func (l *Listener) Close() {
	l.stk.mu.Lock()
	defer l.stk.mu.Unlock()
	l.closeLocked(ErrClosed)
	delete(l.stk.listeners, l.port)
}

func (l *Listener) closeLocked(err error) {
	if l.closed {
		return
	}
	l.closed = true
	l.err = err
	close(l.acceptQ)
}

// Dial opens a connection to raddr:rport, blocking until established or
// failed.
func (s *Stack) Dial(raddr ipv4.Addr, rport uint16) (*Conn, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrStackClosed
	}
	var key flowKey
	for i := 0; i < 65536; i++ {
		p := s.nextPort
		s.nextPort++
		if s.nextPort == 0 {
			s.nextPort = 32768
		}
		key = flowKey{raddr: raddr, rport: rport, lport: p}
		if _, busy := s.conns[key]; !busy && p != 0 {
			break
		}
	}
	c := s.newConn(key)
	c.state = stateSynSent
	s.conns[key] = c
	c.sendSegmentLocked(flagSYN, c.sndNxt, 0, nil, uint16(s.nic.MSS()))
	c.sndNxt++
	c.armRtxTimerLocked()
	for c.state != stateEstablished && c.err == nil {
		c.rcvCond.Wait()
	}
	err := c.err
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return c, nil
}

// rxLoop drains one NIC queue.
func (s *Stack) rxLoop(q int) {
	defer s.wg.Done()
	rx := s.nic.Rx(q)
	for {
		select {
		case <-s.done:
			return
		case b, ok := <-rx:
			if !ok {
				return
			}
			s.handle(b)
		}
	}
}

// handle processes one received packet. It consumes the buffer reference.
func (s *Stack) handle(b *pkt.Buf) {
	// Software receive stamp (the NIC's hardware stamp, when offloaded,
	// was taken earlier): rides with the buffer into the receive queue so
	// consumers can measure true queueing delay from arrival.
	b.Time = time.Now()
	release := true
	defer func() {
		if release {
			b.Release()
		}
	}()

	f := b.Bytes()
	if len(f) < eth.HeaderLen {
		return
	}
	eh, err := eth.Decode(f)
	if err != nil || eh.Type != eth.TypeIPv4 {
		return
	}
	ih, err := ipv4.Decode(f[eth.HeaderLen:])
	if err != nil || ih.Proto != ipv4.ProtoTCP || ih.Dst != s.addr {
		return
	}
	if ih.MF || ih.FragOff != 0 {
		return // no fragment reassembly: the stack never emits fragments
	}
	// Trim Ethernet padding: the IP total length is authoritative.
	segLen := ih.PayloadLen()
	if eth.HeaderLen+ipv4.HeaderLen+segLen > len(f) {
		return
	}
	b.Trim(eth.HeaderLen + ipv4.HeaderLen + segLen)
	seg := b.Bytes()[eth.HeaderLen+ipv4.HeaderLen:]
	h, err := decodeHeader(seg)
	if err != nil {
		return
	}
	// Checksum: trust the NIC's verdict when offloaded; otherwise verify
	// in software.
	if b.CsumStatus != pkt.CsumComplete && b.CsumStatus != pkt.CsumUnnecessary {
		if !verifyChecksum(ih.Src, s.addr, seg) {
			return
		}
	}
	// Normalize layer offsets (NIC may have skipped parsing).
	b.L3 = b.HeadOffset() + eth.HeaderLen
	b.L4 = b.L3 + ipv4.HeaderLen
	b.Payload = b.L4 + h.dataOff
	payloadLen := segLen - h.dataOff

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	key := flowKey{raddr: ih.Src, rport: h.srcPort, lport: h.dstPort}
	if c, ok := s.conns[key]; ok {
		release = !c.segmentLocked(b, h, payloadLen)
		return
	}
	if l, ok := s.listeners[h.dstPort]; ok && !l.closed && h.flags&flagSYN != 0 && h.flags&flagACK == 0 {
		s.acceptSynLocked(l, key, h)
		return
	}
	// No matching endpoint: RST (unless the arriving segment is an RST).
	if h.flags&flagRST == 0 {
		s.sendRstLocked(key, h, payloadLen)
	}
}

func (s *Stack) acceptSynLocked(l *Listener, key flowKey, h header) {
	c := s.newConn(key)
	c.state = stateSynRcvd
	c.listener = l
	c.wantReady = true
	c.rcvNxt = h.seq + 1
	c.sndWnd = uint32(h.wnd)
	if h.mss != 0 && int(h.mss) < c.mss {
		c.mss = int(h.mss)
	}
	s.conns[key] = c
	c.sendSegmentLocked(flagSYN|flagACK, c.sndNxt, c.rcvNxt, nil, uint16(s.nic.MSS()))
	c.sndNxt++
	c.armRtxTimerLocked()
}

func (s *Stack) sendRstLocked(key flowKey, h header, payloadLen int) {
	seq := h.ack
	fl := uint8(flagRST)
	var ack uint32
	if h.flags&flagACK == 0 {
		seq = 0
		ack = h.seq + uint32(payloadLen)
		if h.flags&flagSYN != 0 {
			ack++
		}
		fl |= flagACK
	}
	s.xmitLocked(key, fl, seq, ack, 0, nil, 0, pkt.CsumNone, 0)
}

// xmitLocked builds and transmits one segment with a freshly allocated
// head buffer holding all headers and payload (control path; the data
// path goes through Conn.transmitLocked with zero-copy payload bufs).
func (s *Stack) xmitLocked(key flowKey, flags uint8, seq, ack uint32, wnd uint16, payload []byte, mss uint16, _ pkt.CsumStatus, _ uint32) {
	doff := headerLen
	if mss != 0 {
		doff += mssOptLen
	}
	total := eth.HeaderLen + ipv4.HeaderLen + doff + len(payload)
	buf := pkt.NewBuf(make([]byte, total))
	f := buf.Bytes()
	dstMAC, ok := s.neighbors[key.raddr]
	if !ok {
		buf.Release()
		return
	}
	eth.Header{Dst: dstMAC, Src: s.mac, Type: eth.TypeIPv4}.Encode(f)
	s.ipID++
	ipv4.Header{
		TotalLen: uint16(ipv4.HeaderLen + doff + len(payload)),
		ID:       s.ipID, DF: true, TTL: 64, Proto: ipv4.ProtoTCP,
		Src: s.addr, Dst: key.raddr,
	}.Encode(f[eth.HeaderLen:])
	h := header{
		srcPort: key.lport, dstPort: key.rport,
		seq: seq, ack: ack, flags: flags, wnd: wnd, mss: mss,
	}
	h.encode(f[eth.HeaderLen+ipv4.HeaderLen:])
	copy(f[eth.HeaderLen+ipv4.HeaderLen+doff:], payload)
	buf.L3 = eth.HeaderLen
	buf.L4 = eth.HeaderLen + ipv4.HeaderLen
	buf.Payload = buf.L4 + doff
	s.finishChecksumAndTx(buf)
}

// finishChecksumAndTx fills (or delegates) the TCP checksum and hands the
// packet to the NIC. Payload fragments carrying known partial sums let
// software checksumming skip re-reading stored data.
func (s *Stack) finishChecksumAndTx(b *pkt.Buf) {
	if s.nic.Offloads().TxChecksum {
		b.CsumStatus = pkt.CsumPartial
		s.nic.Tx(b)
		return
	}
	// Software checksum over pseudo header + TCP header + payload,
	// reusing fragment partial sums when provided.
	f := b.Bytes()
	l4 := b.L4 - b.HeadOffset()
	seg := f[l4:]
	var src, dst [4]byte
	copy(src[:], f[b.L3-b.HeadOffset()+12:])
	copy(dst[:], f[b.L3-b.HeadOffset()+16:])
	segLen := len(seg)
	for _, fr := range b.Frags() {
		segLen += len(fr.B)
	}
	seg[16], seg[17] = 0, 0
	var acc checksum.Accumulator
	acc.Add(seg)
	for _, fr := range b.Frags() {
		if fr.HasSum {
			if !acc.AddPartial(fr.Sum, len(fr.B)) {
				acc.Add(fr.B)
			}
		} else {
			acc.Add(fr.B)
		}
	}
	sum := checksum.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, segLen)
	sum = checksum.Combine(sum, acc.Sum())
	cs := ^checksum.Fold(sum)
	seg[16], seg[17] = byte(cs>>8), byte(cs)
	b.CsumStatus = pkt.CsumNone
	s.nic.Tx(b)
}

// pushReadyLocked queues an edge-triggered readable event for c. Only
// connections that subscribed (accepted server-side connections do so
// automatically) receive events.
func (s *Stack) pushReadyLocked(c *Conn) {
	if !c.wantReady || c.readyQueued {
		return
	}
	select {
	case s.ready[c.rxq] <- c:
		c.readyQueued = true
	default:
		// Event queue overflow: the server loop will still find the data
		// when it next touches this connection.
	}
}

func (s *Stack) deleteConnLocked(c *Conn) {
	delete(s.conns, c.key)
}
