package tcp

import (
	"io"
	"os"
	"sync"
	"time"

	"packetstore/internal/eth"
	"packetstore/internal/ipv4"
	"packetstore/internal/nic"
	"packetstore/internal/pkt"
	"packetstore/internal/rbtree"
)

// maxRtx aborts a connection after this many consecutive retransmissions
// of one segment.
const maxRtx = 15

// maxRTO caps exponential backoff.
const maxRTO = 2 * time.Second

// timeWaitDelay is the (shortened) TIME_WAIT linger.
const timeWaitDelay = 100 * time.Millisecond

// segment is a send-queue entry: payload buffer plus bookkeeping. The
// payload buffer is held here — the clone mechanism in action — until the
// segment is cumulatively acknowledged, at which point the buffer (and
// through its fragment release hooks, any borrowed storage data) is
// released.
type segment struct {
	seq    uint32
	buf    *pkt.Buf // payload view with header headroom; nil for bare FIN
	length int      // payload bytes including fragments
	fin    bool
	sentAt time.Time
	rtx    int
	sent   bool
	psh    bool
}

func (s *segment) end() uint32 {
	e := s.seq + uint32(s.length)
	if s.fin {
		e++
	}
	return e
}

// Conn is one TCP connection. Methods are safe for concurrent use; reads
// and writes from different goroutines proceed independently.
type Conn struct {
	stk      *Stack
	key      flowKey
	rxq      int // NIC RSS queue this flow's incoming packets hash to
	state    state
	listener *Listener
	mss      int
	err      error

	// Send state.
	sndUna, sndNxt uint32
	sndQSeq        uint32 // sequence for the next queued byte
	sndWnd         uint32
	cwnd, ssthresh int
	dupAcks        int
	sndQ           []*segment
	sndBufUsed     int
	sndClosed      bool
	recovering     bool
	recoverSeq     uint32
	srtt, rttvar   time.Duration
	rto            time.Duration
	rtxTimer       *time.Timer
	handshakeRtx   int

	// Receive state.
	rcvNxt      uint32
	rcvQ        pkt.Queue
	rcvQBytes   int
	rcvHead     *pkt.Buf // partially consumed by Read
	ooo         *rbtree.Tree[uint32, *pkt.Buf]
	oooBytes    int
	finRcvd     bool
	ackPending  int
	ackNow      bool
	delackTimer *time.Timer
	lastAdvWnd  int

	// Application wakeups (conditions on the stack mutex).
	rcvCond, sndCond *sync.Cond
	wantReady        bool
	readyQueued      bool
	timeWaitTimer    *time.Timer

	// Read deadline (zero = none).
	rdDeadline time.Time
	rdTimer    *time.Timer
}

func (s *Stack) newConn(key flowKey) *Conn {
	iss := uint32(0x1000) + uint32(len(s.conns))*0x010000 + uint32(key.lport)<<4
	c := &Conn{
		stk:    s,
		key:    key,
		rxq:    nic.RSSQueue(key.raddr, s.addr, key.rport, key.lport, s.nic.Queues()),
		mss:    s.nic.MSS(),
		ooo:    rbtree.New[uint32, *pkt.Buf](seqLT),
		rto:    200 * time.Millisecond,
		cwnd:   0, // set below
		sndUna: iss, sndNxt: iss, sndQSeq: iss + 1,
	}
	c.ssthresh = 64 << 10
	c.cwnd = 10 * c.mss
	c.rcvCond = sync.NewCond(&s.mu)
	c.sndCond = sync.NewCond(&s.mu)
	c.lastAdvWnd = s.cfg.RcvBuf
	return c
}

// LocalAddr returns the local IP and port.
func (c *Conn) LocalAddr() (ipv4.Addr, uint16) { return c.stk.addr, c.key.lport }

// RemoteAddr returns the remote IP and port.
func (c *Conn) RemoteAddr() (ipv4.Addr, uint16) { return c.key.raddr, c.key.rport }

// MSS returns the effective maximum segment size.
func (c *Conn) MSS() int { return c.mss }

// RxQueue returns the NIC RSS queue (and so the Stack readable channel)
// this connection's incoming segments are steered to.
func (c *Conn) RxQueue() int { return c.rxq }

// Stack returns the owning stack.
func (c *Conn) Stack() *Stack { return c.stk }

// State returns the connection state name (diagnostics).
func (c *Conn) State() string {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	return c.state.String()
}

// SubscribeReadable opts this connection into Stack.Readable events
// (accepted connections are subscribed automatically).
func (c *Conn) SubscribeReadable() {
	c.stk.mu.Lock()
	c.wantReady = true
	if c.rcvQ.Len() > 0 || c.finRcvd || c.err != nil {
		c.stk.pushReadyLocked(c)
	}
	c.stk.mu.Unlock()
}

// ClearReady re-arms the edge trigger after the server loop takes this
// connection off the Readable channel.
func (c *Conn) ClearReady() {
	c.stk.mu.Lock()
	c.readyQueued = false
	c.stk.mu.Unlock()
}

// sendSegmentLocked emits a control segment (SYN/ACK/FIN combinations
// without payload bufs) for this connection.
func (c *Conn) sendSegmentLocked(flags uint8, seq, ack uint32, payload []byte, mss uint16) {
	wnd := c.advWndLocked()
	c.lastAdvWnd = wnd
	if flags&flagACK != 0 {
		c.ackPending = 0
		c.ackNow = false
	}
	c.stk.xmitLocked(c.key, flags, seq, ack, uint16(wnd), payload, mss, pkt.CsumNone, 0)
}

// advWndLocked computes the receive window to advertise.
func (c *Conn) advWndLocked() int {
	w := c.stk.cfg.RcvBuf - c.rcvQBytes - c.oooBytes
	if w < 0 {
		w = 0
	}
	if w > 65535 {
		w = 65535
	}
	return w
}

// segmentLocked processes one inbound segment. It returns true when the
// packet buffer was consumed (queued in-order or out-of-order).
func (c *Conn) segmentLocked(b *pkt.Buf, h header, plen int) bool {
	s := c.stk

	if h.flags&flagRST != 0 {
		if c.state == stateSynSent && (h.flags&flagACK == 0 || h.ack != c.sndNxt) {
			return false // blind reset against our SYN
		}
		c.abortLocked(ErrReset)
		return false
	}

	switch c.state {
	case stateSynSent:
		if h.flags&(flagSYN|flagACK) == flagSYN|flagACK && h.ack == c.sndNxt {
			c.rcvNxt = h.seq + 1
			c.sndUna = h.ack
			c.sndWnd = uint32(h.wnd)
			if h.mss != 0 && int(h.mss) < c.mss {
				c.mss = int(h.mss)
			}
			c.state = stateEstablished
			c.handshakeRtx = 0
			c.stopRtxTimerLocked()
			c.sendSegmentLocked(flagACK, c.sndNxt, c.rcvNxt, nil, 0)
			c.rcvCond.Broadcast()
		}
		return false
	case stateSynRcvd:
		if h.flags&flagACK != 0 && h.ack == c.sndNxt {
			c.state = stateEstablished
			c.sndUna = h.ack
			c.sndWnd = uint32(h.wnd)
			c.stopRtxTimerLocked()
			if c.listener != nil && !c.listener.closed {
				select {
				case c.listener.acceptQ <- c:
				default:
					// Backlog overflow: reset the connection.
					c.abortLocked(ErrRefused)
					return false
				}
			}
		} else {
			return false
		}
	case stateClosed, stateListen:
		return false
	}

	consumed := false
	if h.flags&flagACK != 0 {
		c.processAckLocked(h)
		if c.state == stateClosed {
			return false
		}
	}
	if plen > 0 {
		consumed = c.processDataLocked(b, h, plen)
	}
	if h.flags&flagFIN != 0 {
		// Accept the FIN only when it is the next expected sequence.
		finSeq := h.seq + uint32(plen)
		if finSeq == c.rcvNxt && !c.finRcvd {
			c.rcvNxt++
			c.finRcvd = true
			c.ackNow = true
			switch c.state {
			case stateEstablished:
				c.state = stateCloseWait
			case stateFinWait1:
				// Our FIN not yet acked: simultaneous close.
				c.state = stateClosing
			case stateFinWait2:
				c.enterTimeWaitLocked()
			}
			c.rcvCond.Broadcast()
			s.pushReadyLocked(c)
		} else if seqLT(finSeq, c.rcvNxt) {
			c.ackNow = true // retransmitted FIN
		}
	}
	c.outputLocked()
	return consumed
}

// processAckLocked handles the acknowledgement fields of an inbound
// segment: cumulative ack, RTT sampling, congestion control, fast
// retransmit and FIN-ack state transitions.
func (c *Conn) processAckLocked(h header) {
	ack := h.ack
	if seqGT(ack, c.sndNxt) {
		c.ackNow = true
		return
	}
	prevWnd := c.sndWnd
	c.sndWnd = uint32(h.wnd)

	if seqLEQ(ack, c.sndUna) {
		// Duplicate ACK detection per RFC 5681: no data, no window
		// change, outstanding data exists.
		if ack == c.sndUna && c.sndNxt != c.sndUna && c.sndWnd == prevWnd {
			c.dupAcks++
			if c.dupAcks == 3 {
				c.enterFastRecoveryLocked()
			} else if c.dupAcks > 3 && c.recovering {
				c.cwnd += c.mss // inflation
			}
		}
		return
	}

	acked := int(ack - c.sndUna)
	// RTT sample from the oldest segment if it was never retransmitted
	// (Karn's rule).
	if len(c.sndQ) > 0 && c.sndQ[0].sent && c.sndQ[0].rtx == 0 && seqGEQ(ack, c.sndQ[0].end()) {
		c.updateRTTLocked(time.Since(c.sndQ[0].sentAt))
	}
	// Pop fully acknowledged segments.
	finAcked := false
	for len(c.sndQ) > 0 && c.sndQ[0].sent && seqGEQ(ack, c.sndQ[0].end()) {
		seg := c.sndQ[0]
		c.sndQ = c.sndQ[1:]
		c.sndBufUsed -= seg.length
		if seg.fin {
			finAcked = true
		}
		if seg.buf != nil {
			seg.buf.Release()
		}
	}
	c.sndUna = ack
	c.dupAcks = 0

	if c.recovering {
		if seqGEQ(ack, c.recoverSeq) {
			c.recovering = false
			c.cwnd = c.ssthresh
		} else {
			// Partial ack (NewReno): retransmit the next hole.
			c.retransmitFirstLocked()
		}
	} else {
		if c.cwnd < c.ssthresh {
			c.cwnd += min(acked, c.mss) // slow start
		} else {
			c.cwnd += max(1, c.mss*c.mss/c.cwnd) // congestion avoidance
		}
	}

	if c.sndUna == c.sndNxt {
		c.stopRtxTimerLocked()
	} else {
		c.armRtxTimerLocked()
	}
	c.sndCond.Broadcast()

	if finAcked {
		switch c.state {
		case stateFinWait1:
			c.state = stateFinWait2
		case stateClosing:
			c.enterTimeWaitLocked()
		case stateLastAck:
			c.teardownLocked(nil)
		}
	}
}

func (c *Conn) enterFastRecoveryLocked() {
	inflight := int(c.sndNxt - c.sndUna)
	c.ssthresh = max(inflight/2, 2*c.mss)
	c.recovering = true
	c.recoverSeq = c.sndNxt
	c.cwnd = c.ssthresh + 3*c.mss
	c.retransmitFirstLocked()
}

// retransmitFirstLocked re-sends the oldest unacknowledged segment.
func (c *Conn) retransmitFirstLocked() {
	for _, seg := range c.sndQ {
		if seg.sent {
			seg.rtx++
			c.transmitLocked(seg)
			return
		}
		break
	}
}

func (c *Conn) updateRTTLocked(m time.Duration) {
	if c.srtt == 0 {
		c.srtt = m
		c.rttvar = m / 2
	} else {
		d := c.srtt - m
		if d < 0 {
			d = -d
		}
		c.rttvar = (3*c.rttvar + d) / 4
		c.srtt = (7*c.srtt + m) / 8
	}
	c.rto = c.srtt + 4*c.rttvar
	if c.rto < c.stk.cfg.MinRTO {
		c.rto = c.stk.cfg.MinRTO
	}
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
}

// processDataLocked queues in-window payload; returns true when the buffer
// was kept.
func (c *Conn) processDataLocked(b *pkt.Buf, h header, plen int) bool {
	seq := h.seq
	end := seq + uint32(plen)
	avail := c.stk.cfg.RcvBuf - c.rcvQBytes - c.oooBytes
	// Entirely old data: re-ack.
	if seqLEQ(end, c.rcvNxt) {
		c.ackNow = true
		return false
	}
	// Beyond window: drop.
	if seqGEQ(seq, c.rcvNxt+uint32(avail)) {
		c.ackNow = true
		return false
	}
	// Move the view to the payload.
	b.Pull(b.Payload - b.HeadOffset())
	// Trim leading overlap. The NIC's payload sum covered the original
	// segment, so it no longer describes the trimmed view.
	if seqLT(seq, c.rcvNxt) {
		b.Pull(int(c.rcvNxt - seq))
		seq = c.rcvNxt
		if b.CsumStatus == pkt.CsumComplete {
			b.CsumStatus = pkt.CsumUnnecessary
		}
	}
	if seq == c.rcvNxt {
		c.deliverLocked(b)
		c.drainOOOLocked()
		c.ackPending++
		if c.ackPending >= 2 {
			c.ackNow = true
		} else {
			c.armDelackLocked()
		}
		c.rcvCond.Broadcast()
		c.stk.pushReadyLocked(c)
		return true
	}
	// Out of order: stash in the tree and dup-ack.
	c.ackNow = true
	if _, dup := c.ooo.Get(seq); dup {
		return false
	}
	c.ooo.Set(seq, b)
	c.oooBytes += b.Len()
	return true
}

func (c *Conn) deliverLocked(b *pkt.Buf) {
	c.rcvQ.Push(b)
	c.rcvQBytes += b.Len()
	c.rcvNxt += uint32(b.Len())
}

func (c *Conn) drainOOOLocked() {
	for {
		seq, b, ok := c.ooo.Min()
		if !ok {
			return
		}
		if seqGT(seq, c.rcvNxt) {
			return
		}
		c.ooo.Delete(seq)
		c.oooBytes -= b.Len()
		if seqLEQ(seq+uint32(b.Len()), c.rcvNxt) {
			b.Release() // fully duplicate
			continue
		}
		if seqLT(seq, c.rcvNxt) {
			b.Pull(int(c.rcvNxt - seq))
			if b.CsumStatus == pkt.CsumComplete {
				b.CsumStatus = pkt.CsumUnnecessary
			}
		}
		c.deliverLocked(b)
	}
}

// --- Application receive API ---

// SetReadDeadline bounds blocking Read and ReadBufs calls: once t
// passes they return os.ErrDeadlineExceeded (which reports
// Timeout() == true through the net.Error interface) instead of
// blocking forever on a stalled peer — the client-side guard against a
// server that accepted a request and then went quiet. A zero t clears
// the deadline. Data already queued is still delivered first.
func (c *Conn) SetReadDeadline(t time.Time) {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	c.rdDeadline = t
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
	if t.IsZero() {
		return
	}
	d := time.Until(t)
	if d <= 0 {
		c.rcvCond.Broadcast()
		return
	}
	c.rdTimer = time.AfterFunc(d, func() {
		c.stk.mu.Lock()
		c.rcvCond.Broadcast()
		c.stk.mu.Unlock()
	})
}

func (c *Conn) readDeadlineExceededLocked() bool {
	return !c.rdDeadline.IsZero() && !time.Now().Before(c.rdDeadline)
}

// Read copies received data into p, blocking until data, EOF or error.
func (c *Conn) Read(p []byte) (int, error) {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	for {
		if c.rcvHead == nil {
			c.rcvHead = c.rcvQ.Pop()
		}
		if c.rcvHead != nil {
			n := copy(p, c.rcvHead.Bytes())
			c.rcvHead.Pull(n)
			c.rcvQBytes -= n
			if c.rcvHead.Len() == 0 {
				c.rcvHead.Release()
				c.rcvHead = nil
			}
			c.maybeWindowUpdateLocked()
			return n, nil
		}
		if c.err != nil {
			return 0, c.err
		}
		if c.finRcvd {
			return 0, io.EOF
		}
		if c.readDeadlineExceededLocked() {
			return 0, os.ErrDeadlineExceeded
		}
		c.rcvCond.Wait()
	}
}

// ReadBufs removes and returns all in-order pending packet buffers —
// the zero-copy receive path. The caller owns the returned buffers
// (payload views) and must Release or adopt them. Returns io.EOF after
// the peer's FIN once the queue is drained.
func (c *Conn) ReadBufs() ([]*pkt.Buf, error) {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	for {
		if bufs := c.takeBufsLocked(); bufs != nil {
			return bufs, nil
		}
		if c.err != nil {
			return nil, c.err
		}
		if c.finRcvd {
			return nil, io.EOF
		}
		if c.readDeadlineExceededLocked() {
			return nil, os.ErrDeadlineExceeded
		}
		c.rcvCond.Wait()
	}
}

// TryReadBufs is the non-blocking form of ReadBufs for event loops; it
// returns nil when nothing is pending. Drained EOF is reported via EOF().
func (c *Conn) TryReadBufs() []*pkt.Buf {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	return c.takeBufsLocked()
}

func (c *Conn) takeBufsLocked() []*pkt.Buf {
	n := c.rcvQ.Len()
	if c.rcvHead != nil {
		n++
	}
	if n == 0 {
		return nil
	}
	bufs := make([]*pkt.Buf, 0, n)
	if c.rcvHead != nil {
		bufs = append(bufs, c.rcvHead)
		c.rcvQBytes -= c.rcvHead.Len()
		c.rcvHead = nil
	}
	for {
		b := c.rcvQ.Pop()
		if b == nil {
			break
		}
		c.rcvQBytes -= b.Len()
		bufs = append(bufs, b)
	}
	c.maybeWindowUpdateLocked()
	return bufs
}

// OldestRxTime returns the receive timestamp of the oldest pending
// undelivered data on the connection — the NIC hardware stamp when
// available, the stack's software stamp otherwise; zero when nothing is
// pending. Because the stamp persists with the packet buffer through
// the receive queue, a serving loop can anchor queue-delay measurement
// at packet *arrival* rather than at its own wakeup, keeping delivery
// and scheduling delays upstream of the run queue visible to overload
// control.
func (c *Conn) OldestRxTime() time.Time {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	b := c.rcvHead
	if b == nil {
		b = c.rcvQ.Peek()
	}
	if b == nil {
		return time.Time{}
	}
	if !b.HWTime.IsZero() {
		return b.HWTime
	}
	return b.Time
}

// EOF reports whether the peer sent FIN and all data has been consumed.
func (c *Conn) EOF() bool {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	return c.finRcvd && c.rcvQ.Empty() && c.rcvHead == nil
}

// Err returns the terminal error, if any.
func (c *Conn) Err() error {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	return c.err
}

// maybeWindowUpdateLocked sends a window-update ACK when reading reopened
// the window by at least two segments relative to the last advertisement.
func (c *Conn) maybeWindowUpdateLocked() {
	if c.state != stateEstablished && c.state != stateCloseWait {
		return
	}
	if c.advWndLocked()-c.lastAdvWnd >= 2*c.mss {
		c.sendSegmentLocked(flagACK, c.sndNxt, c.rcvNxt, nil, 0)
	}
}

// --- Application send API ---

// Write queues p for transmission, copying it into segment buffers. It
// blocks while the send buffer is full and returns the bytes accepted.
func (c *Conn) Write(p []byte) (int, error) {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	total := 0
	maxSeg := c.maxSegLocked()
	for len(p) > 0 {
		if err := c.waitSendSpaceLocked(); err != nil {
			return total, err
		}
		chunk := len(p)
		if chunk > maxSeg {
			chunk = maxSeg
		}
		// Cap the chunk at remaining buffer space (rounded to >0 by
		// waitSendSpaceLocked).
		if room := c.stk.cfg.SndBuf - c.sndBufUsed; chunk > room {
			chunk = room
		}
		head := make([]byte, frameHeadroom+chunk)
		copy(head[frameHeadroom:], p[:chunk])
		b := pkt.NewBuf(head)
		b.Pull(frameHeadroom)
		c.enqueueSegmentLocked(b, chunk, len(p) == chunk)
		p = p[chunk:]
		total += chunk
		// Transmit as data is queued; deferring output to the end would
		// deadlock when p exceeds the send buffer (nothing would ever
		// drain while Write waits for space).
		c.outputLocked()
	}
	return total, nil
}

// frameHeadroom is the reserved space for Ethernet+IP+TCP headers.
const frameHeadroom = eth.HeaderLen + ipv4.HeaderLen + headerLen

// HeaderRoom returns the headroom WriteBufs requires before the payload
// view.
func HeaderRoom() int { return frameHeadroom }

// WriteBufs queues a payload packet buffer for transmission without
// copying: the buffer's view (plus any fragments, whose partial checksums
// are honoured) becomes one segment. The buffer must have at least
// HeaderRoom headroom and at most MaxSegment payload. Ownership passes to
// the connection; the buffer is released — firing fragment release hooks —
// when the segment is acknowledged.
func (c *Conn) WriteBufs(b *pkt.Buf) error {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	if b.Headroom() < frameHeadroom {
		b.Release()
		return errHeadroom
	}
	n := b.TotalLen()
	if n > c.maxSegLocked() {
		b.Release()
		return errSegTooBig
	}
	if err := c.waitSendSpaceLocked(); err != nil {
		b.Release()
		return err
	}
	c.enqueueSegmentLocked(b, n, true)
	c.outputLocked()
	return nil
}

var (
	errHeadroom  = errorString("tcp: WriteBufs payload lacks header headroom")
	errSegTooBig = errorString("tcp: WriteBufs payload exceeds max segment")
)

type errorString string

func (e errorString) Error() string { return string(e) }

// MaxSegment returns the largest payload WriteBufs accepts: one MSS, or
// a TSO super-segment when the NIC segments in hardware.
func (c *Conn) MaxSegment() int {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	return c.maxSegLocked()
}

func (c *Conn) maxSegLocked() int {
	if c.stk.nic.Offloads().TSO {
		return 16 * c.mss
	}
	return c.mss
}

func (c *Conn) waitSendSpaceLocked() error {
	for {
		if c.err != nil {
			return c.err
		}
		if c.sndClosed {
			return ErrClosed
		}
		if c.sndBufUsed < c.stk.cfg.SndBuf {
			return nil
		}
		c.sndCond.Wait()
	}
}

func (c *Conn) enqueueSegmentLocked(b *pkt.Buf, n int, psh bool) {
	seg := &segment{seq: c.sndQSeq, buf: b, length: n, psh: psh}
	c.sndQSeq += uint32(n)
	c.sndQ = append(c.sndQ, seg)
	c.sndBufUsed += n
}

// Close queues a FIN after pending data and returns immediately (graceful
// close). Reading remains possible until the peer's FIN.
func (c *Conn) Close() error {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	if c.sndClosed || c.err != nil {
		return nil
	}
	switch c.state {
	case stateEstablished:
		c.state = stateFinWait1
	case stateCloseWait:
		c.state = stateLastAck
	case stateSynSent, stateSynRcvd:
		c.teardownLocked(ErrClosed)
		return nil
	default:
		return nil
	}
	c.sndClosed = true
	fin := &segment{seq: c.sndQSeq, fin: true}
	c.sndQSeq++
	c.sndQ = append(c.sndQ, fin)
	c.outputLocked()
	return nil
}

// Abort resets the connection immediately (RST to peer, local teardown).
func (c *Conn) Abort() {
	c.abort(ErrClosed)
}

func (c *Conn) abort(err error) {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	c.abortLocked(err)
}

func (c *Conn) abortLocked(err error) {
	if c.state == stateClosed {
		return
	}
	c.stk.xmitLocked(c.key, flagRST|flagACK, c.sndNxt, c.rcvNxt, 0, nil, 0, pkt.CsumNone, 0)
	c.teardownLocked(err)
}

// teardownLocked finalizes the connection: timers stopped, buffers
// released, waiters woken, demux entry removed.
func (c *Conn) teardownLocked(err error) {
	if c.state == stateClosed {
		return
	}
	c.state = stateClosed
	if c.err == nil {
		c.err = err
	}
	c.stopRtxTimerLocked()
	if c.delackTimer != nil {
		c.delackTimer.Stop()
	}
	if c.timeWaitTimer != nil {
		c.timeWaitTimer.Stop()
	}
	if c.rdTimer != nil {
		c.rdTimer.Stop()
		c.rdTimer = nil
	}
	for _, seg := range c.sndQ {
		if seg.buf != nil {
			seg.buf.Release()
		}
	}
	c.sndQ = nil
	for {
		b := c.rcvQ.Pop()
		if b == nil {
			break
		}
		b.Release()
		// Note: rcvQBytes intentionally not maintained past teardown.
	}
	c.ooo.Ascend(func(_ uint32, b *pkt.Buf) bool {
		b.Release()
		return true
	})
	c.ooo = rbtree.New[uint32, *pkt.Buf](seqLT)
	c.stk.deleteConnLocked(c)
	c.rcvCond.Broadcast()
	c.sndCond.Broadcast()
	if c.err != nil {
		c.stk.pushReadyLocked(c)
	}
}

func (c *Conn) enterTimeWaitLocked() {
	c.state = stateTimeWait
	c.stopRtxTimerLocked()
	if c.timeWaitTimer == nil {
		c.timeWaitTimer = time.AfterFunc(timeWaitDelay, func() {
			c.stk.mu.Lock()
			defer c.stk.mu.Unlock()
			if c.state == stateTimeWait {
				c.teardownLocked(nil)
			}
		})
	} else {
		c.timeWaitTimer.Reset(timeWaitDelay)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
