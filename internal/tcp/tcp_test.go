package tcp

import (
	"bytes"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"packetstore/internal/eth"
	"packetstore/internal/ipv4"
	"packetstore/internal/netsim"
	"packetstore/internal/nic"
	"packetstore/internal/pkt"
)

// testNet is a two-host testbed: client (h1) and server (h2).
type testNet struct {
	client, server *Stack
}

func newTestNet(t *testing.T, link netsim.LinkConfig, off nic.Offloads, cfg Config) *testNet {
	t.Helper()
	pa, pb := netsim.NewLink(link)
	mkHost := func(id int, port *netsim.Port) *Stack {
		pool := pkt.NewPool(2048, 2048)
		n := nic.New(nic.Config{
			MAC:      eth.HostAddr(id),
			RxPool:   pool,
			Offloads: off,
		}, port)
		return NewStack(n, ipv4.HostAddr(id), cfg)
	}
	c := mkHost(1, pa)
	s := mkHost(2, pb)
	c.AddNeighbor(ipv4.HostAddr(2), eth.HostAddr(2))
	s.AddNeighbor(ipv4.HostAddr(1), eth.HostAddr(1))
	t.Cleanup(func() {
		c.Close()
		s.Close()
	})
	return &testNet{client: c, server: s}
}

var allOffloads = nic.Offloads{RxChecksum: true, TxChecksum: true, TSO: true, HWTimestamp: true}

func TestHandshakeAndEcho(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, err := net.server.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		c, err := l.Accept()
		if err != nil {
			done <- err
			return
		}
		buf := make([]byte, 64)
		n, err := c.Read(buf)
		if err != nil {
			done <- err
			return
		}
		_, err = c.Write(buf[:n])
		done <- err
	}()

	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "hello" {
		t.Fatalf("echo: %q, %v", buf[:n], err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	la, lp := c.LocalAddr()
	ra, rp := c.RemoteAddr()
	if la != ipv4.HostAddr(1) || ra != ipv4.HostAddr(2) || rp != 80 || lp == 0 {
		t.Fatalf("addrs: %v:%d -> %v:%d", la, lp, ra, rp)
	}
}

// transferTest moves size bytes server->client and checks integrity.
func transferTest(t *testing.T, net *testNet, size int) {
	t.Helper()
	l, err := net.server.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	rand.New(rand.NewSource(99)).Read(data)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write(data)
		c.Close()
	}()
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(connReader{c})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("transferred %d bytes, want %d; corrupted=%v", len(got), len(data), !bytes.Equal(got, data))
	}
}

type connReader struct{ c *Conn }

func (r connReader) Read(p []byte) (int, error) { return r.c.Read(p) }

func TestBulkTransfer(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	transferTest(t, net, 1<<20)
}

func TestBulkTransferNoOffloads(t *testing.T) {
	// Software checksum and GSO-less path.
	net := newTestNet(t, netsim.LinkConfig{}, nic.Offloads{}, Config{})
	transferTest(t, net, 256<<10)
}

func TestTransferWithLoss(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{Loss: 0.02, Seed: 11},
		allOffloads, Config{MinRTO: 5 * time.Millisecond})
	transferTest(t, net, 512<<10)
}

func TestTransferWithReorderAndDup(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{Reorder: 0.1, Duplicate: 0.05, Seed: 13},
		allOffloads, Config{MinRTO: 5 * time.Millisecond})
	transferTest(t, net, 512<<10)
}

func TestTransferLossyNoOffloads(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{Loss: 0.03, Reorder: 0.05, Seed: 17},
		nic.Offloads{}, Config{MinRTO: 5 * time.Millisecond})
	transferTest(t, net, 128<<10)
}

func TestEOFAfterClose(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, _ := net.server.Listen(80)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		c.Write([]byte("bye"))
		c.Close()
	}()
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "bye" {
		t.Fatalf("read: %q %v", buf[:n], err)
	}
	if _, err := c.Read(buf); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	c.Close()
	// Write after close fails.
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after close succeeded")
	}
}

func TestConnectRefused(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	if _, err := net.client.Dial(ipv4.HostAddr(2), 9999); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestManyConcurrentConnections(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, _ := net.server.Listen(80)
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c *Conn) {
				buf := make([]byte, 256)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()

	const conns = 32
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for i := 0; i < conns; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := net.client.Dial(ipv4.HostAddr(2), 80)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			msg := []byte{byte(i), byte(i + 1), byte(i + 2)}
			buf := make([]byte, 16)
			for round := 0; round < 20; round++ {
				if _, err := c.Write(msg); err != nil {
					errs <- err
					return
				}
				n := 0
				for n < len(msg) {
					k, err := c.Read(buf[n:])
					if err != nil {
						errs <- err
						return
					}
					n += k
				}
				if !bytes.Equal(buf[:n], msg) {
					errs <- errorString("echo mismatch")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestZeroCopyReadWriteBufs(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, _ := net.server.Listen(80)
	payload := make([]byte, 4000)
	rand.New(rand.NewSource(5)).Read(payload)

	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		// Read via zero-copy bufs, verify csum state, echo back via
		// WriteBufs with a fragment.
		var got []byte
		for len(got) < len(payload) {
			bufs, err := c.ReadBufs()
			if err != nil {
				return
			}
			for _, b := range bufs {
				if b.CsumStatus != pkt.CsumComplete {
					panic("rx buf lacks NIC checksum state")
				}
				got = append(got, b.Bytes()...)
				b.Release()
			}
		}
		head := pkt.NewBuf(make([]byte, HeaderRoom()+2))
		head.Pull(HeaderRoom())
		copy(head.Bytes(), got[:2])
		head.AddFrag(pkt.Frag{B: got[2:], PMOff: -1})
		if err := c.WriteBufs(head); err != nil {
			panic(err)
		}
	}()

	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(payload); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 0, len(payload))
	for len(got) < len(payload) {
		bufs, err := c.ReadBufs()
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range bufs {
			got = append(got, b.Bytes()...)
			b.Release()
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("zero-copy round trip corrupted data")
	}
}

func TestWriteBufsValidation(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, _ := net.server.Listen(80)
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	// No headroom.
	b := pkt.NewBuf(make([]byte, 10))
	if err := c.WriteBufs(b); err != errHeadroom {
		t.Fatalf("want headroom error, got %v", err)
	}
	// Oversized.
	huge := pkt.NewBuf(make([]byte, HeaderRoom()))
	huge.Pull(HeaderRoom())
	huge.AddFrag(pkt.Frag{B: make([]byte, c.MaxSegment()+1), PMOff: -1})
	if err := c.WriteBufs(huge); err != errSegTooBig {
		t.Fatalf("want size error, got %v", err)
	}
}

func TestWriteBufsFragReleaseAfterAck(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, _ := net.server.Listen(80)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, connReader{c})
	}()
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	released := make(chan struct{})
	head := pkt.NewBuf(make([]byte, HeaderRoom()+4))
	head.Pull(HeaderRoom())
	copy(head.Bytes(), "data")
	head.AddFrag(pkt.Frag{B: []byte("borrowed-from-store"), PMOff: -1,
		Release: func() { close(released) }})
	if err := c.WriteBufs(head); err != nil {
		t.Fatal(err)
	}
	select {
	case <-released:
		// The segment was acked and the storage data handed back.
	case <-time.After(2 * time.Second):
		t.Fatal("fragment release hook never ran after ack")
	}
}

func TestReadableEvents(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, _ := net.server.Listen(80)
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	var sc *Conn
	select {
	case sc = <-l.AcceptCh():
	case <-time.After(time.Second):
		t.Fatal("accept timeout")
	}
	c.Write([]byte("event"))
	select {
	case rc := <-net.server.Readable():
		if rc != sc {
			t.Fatal("readable event for wrong conn")
		}
		rc.ClearReady()
		bufs := rc.TryReadBufs()
		if len(bufs) == 0 {
			t.Fatal("no bufs after readable event")
		}
		var got []byte
		for _, b := range bufs {
			got = append(got, b.Bytes()...)
			b.Release()
		}
		if string(got) != "event" {
			t.Fatalf("got %q", got)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no readable event")
	}
	// FIN also triggers an event.
	c.Close()
	select {
	case rc := <-net.server.Readable():
		rc.ClearReady()
		if !rc.EOF() {
			t.Fatal("expected EOF after peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no event for FIN")
	}
}

func TestFlowControlSlowReader(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads,
		Config{RcvBuf: 8 << 10, SndBuf: 1 << 20})
	l, _ := net.server.Listen(80)
	data := make([]byte, 256<<10)
	rand.New(rand.NewSource(3)).Read(data)
	var got []byte
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 1024)
		for {
			n, err := c.Read(buf)
			if n > 0 {
				got = append(got, buf[:n]...)
				time.Sleep(100 * time.Microsecond) // slow consumer
			}
			if err != nil {
				return
			}
		}
	}()
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write(data); err != nil {
		t.Fatal(err)
	}
	c.Close()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("slow-reader transfer stalled")
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("slow reader got %d bytes, want %d", len(got), len(data))
	}
}

func TestStackCloseErrorsConnections(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, _ := net.server.Listen(80)
	go func() {
		for {
			if _, err := l.Accept(); err != nil {
				return
			}
		}
	}()
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	readErr := make(chan error, 1)
	go func() {
		_, err := c.Read(make([]byte, 16))
		readErr <- err
	}()
	time.Sleep(10 * time.Millisecond)
	net.client.Close()
	select {
	case err := <-readErr:
		if err == nil || err == io.EOF {
			t.Fatalf("want hard error, got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocked read survived stack close")
	}
}

func TestListenTwiceFails(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	if _, err := net.server.Listen(80); err != nil {
		t.Fatal(err)
	}
	if _, err := net.server.Listen(80); err != ErrListenerUsed {
		t.Fatalf("want ErrListenerUsed, got %v", err)
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := header{
		srcPort: 1234, dstPort: 80, seq: 0xdeadbeef, ack: 0xcafebabe,
		flags: flagSYN | flagACK, wnd: 4096, mss: 1460,
	}
	b := make([]byte, 64)
	n := h.encode(b)
	if n != headerLen+mssOptLen {
		t.Fatalf("encoded length %d", n)
	}
	got, err := decodeHeader(b[:n])
	if err != nil {
		t.Fatal(err)
	}
	h.dataOff = n
	if got != h {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, h)
	}
	if got.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	if _, err := decodeHeader(make([]byte, 10)); err == nil {
		t.Fatal("short header accepted")
	}
	b := make([]byte, 20)
	b[12] = 4 << 4 // data offset 16 < 20
	if _, err := decodeHeader(b); err == nil {
		t.Fatal("bad data offset accepted")
	}
	b[12] = 15 << 4 // data offset 60 > len
	if _, err := decodeHeader(b); err == nil {
		t.Fatal("oversized data offset accepted")
	}
	// Malformed option: kind 2, bad length.
	b = make([]byte, 24)
	b[12] = 6 << 4
	b[20], b[21] = 2, 0
	if _, err := decodeHeader(b); err == nil {
		t.Fatal("malformed option accepted")
	}
}

func TestSeqArith(t *testing.T) {
	cases := []struct {
		a, b uint32
		lt   bool
	}{
		{1, 2, true}, {2, 1, false}, {5, 5, false},
		{0xffffff00, 0x00000010, true}, // wraparound
		{0x00000010, 0xffffff00, false},
	}
	for _, c := range cases {
		if seqLT(c.a, c.b) != c.lt {
			t.Errorf("seqLT(%#x,%#x) != %v", c.a, c.b, c.lt)
		}
		if seqGT(c.b, c.a) != c.lt {
			t.Errorf("seqGT(%#x,%#x) != %v", c.b, c.a, c.lt)
		}
	}
	if !seqLEQ(7, 7) || !seqGEQ(7, 7) {
		t.Error("equality comparisons broken")
	}
}

func TestStateString(t *testing.T) {
	if stateEstablished.String() != "Established" || state(99).String() == "" {
		t.Fatal("state names")
	}
	c := &Conn{stk: &Stack{}, state: stateEstablished}
	_ = c // State() needs a live stack mutex; covered by integration tests
}

func BenchmarkPingPong1K(b *testing.B) {
	pa, pb := netsim.NewLink(netsim.LinkConfig{})
	mk := func(id int, port *netsim.Port) *Stack {
		pool := pkt.NewPool(2048, 1024)
		n := nic.New(nic.Config{MAC: eth.HostAddr(id), RxPool: pool, Offloads: allOffloads}, port)
		return NewStack(n, ipv4.HostAddr(id), Config{})
	}
	cs := mk(1, pa)
	ss := mk(2, pb)
	defer cs.Close()
	defer ss.Close()
	cs.AddNeighbor(ipv4.HostAddr(2), eth.HostAddr(2))
	ss.AddNeighbor(ipv4.HostAddr(1), eth.HostAddr(1))
	l, _ := ss.Listen(80)
	go func() {
		c, err := l.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 2048)
		for {
			n, err := c.Read(buf)
			if err != nil {
				return
			}
			if _, err := c.Write(buf[:n]); err != nil {
				return
			}
		}
	}()
	c, err := cs.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 1024)
	buf := make([]byte, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Write(msg)
		n := 0
		for n < len(msg) {
			k, err := c.Read(buf[n:])
			if err != nil {
				b.Fatal(err)
			}
			n += k
		}
	}
}

func TestReadDeadline(t *testing.T) {
	net := newTestNet(t, netsim.LinkConfig{}, allOffloads, Config{})
	l, err := net.server.Listen(80)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan *Conn, 1)
	go func() {
		c, err := l.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	c, err := net.client.Dial(ipv4.HostAddr(2), 80)
	if err != nil {
		t.Fatal(err)
	}
	srv := <-accepted

	// A quiet peer: the deadline must fire, report a net.Error timeout,
	// and leave the connection usable.
	c.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 64)
	start := time.Now()
	_, err = c.Read(buf)
	if err == nil {
		t.Fatal("read returned without data before the peer wrote")
	}
	ne, ok := err.(interface{ Timeout() bool })
	if !ok || !ne.Timeout() {
		t.Fatalf("deadline error %v does not report Timeout()", err)
	}
	if time.Since(start) < 25*time.Millisecond {
		t.Fatal("deadline fired early")
	}

	// Clearing the deadline restores blocking reads; queued data is
	// delivered even with an expired deadline already consumed.
	c.SetReadDeadline(time.Time{})
	if _, err := srv.Write([]byte("late")); err != nil {
		t.Fatal(err)
	}
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != "late" {
		t.Fatalf("read after deadline clear: %q, %v", buf[:n], err)
	}

	// A deadline in the past fails immediately when nothing is queued...
	c.SetReadDeadline(time.Now().Add(-time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("expired deadline did not fail the read")
	}
	// ...but pending data still wins over the deadline.
	if _, err := srv.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n, err := c.Read(buf); err == nil && n == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queued data never delivered past an expired deadline")
		}
		time.Sleep(time.Millisecond)
	}
}
