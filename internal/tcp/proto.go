// Package tcp implements a reliable transport over the simulated NIC and
// fabric: three-way handshake, cumulative and delayed acknowledgements,
// flow control, Reno congestion control with fast retransmit, retransmission
// timeout with Karn-adjusted RTT estimation, out-of-order reassembly in a
// red-black tree, and connection teardown.
//
// The implementation is deliberately structured the way the paper describes
// production stacks (§4.1): every segment is a pkt.Buf; the retransmission
// queue holds the payload buffers while transmitted copies travel down the
// stack; received payloads are handed to the application as packet buffers
// (ReadBufs) without copying, carrying the NIC's checksum state and
// hardware timestamps — the raw material the packetstore persists.
package tcp

import (
	"encoding/binary"
	"fmt"

	"packetstore/internal/checksum"
	"packetstore/internal/ipv4"
)

// Header flags.
const (
	flagFIN = 0x01
	flagSYN = 0x02
	flagRST = 0x04
	flagPSH = 0x08
	flagACK = 0x10
)

// headerLen is the TCP header size without options.
const headerLen = 20

// mssOptLen is the encoded size of the MSS option.
const mssOptLen = 4

// header is a decoded TCP header.
type header struct {
	srcPort, dstPort uint16
	seq, ack         uint32
	dataOff          int // bytes
	flags            uint8
	wnd              uint16
	csum             uint16
	mss              uint16 // from options; 0 if absent
}

func (h header) String() string {
	fl := ""
	for _, f := range []struct {
		bit  uint8
		name string
	}{{flagSYN, "S"}, {flagACK, "."}, {flagFIN, "F"}, {flagRST, "R"}, {flagPSH, "P"}} {
		if h.flags&f.bit != 0 {
			fl += f.name
		}
	}
	return fmt.Sprintf("%d>%d seq=%d ack=%d wnd=%d [%s]", h.srcPort, h.dstPort, h.seq, h.ack, h.wnd, fl)
}

// encode writes the header (and MSS option if h.mss != 0) into b and
// returns the header length. The checksum field is left zero.
func (h header) encode(b []byte) int {
	doff := headerLen
	if h.mss != 0 {
		doff += mssOptLen
	}
	binary.BigEndian.PutUint16(b[0:2], h.srcPort)
	binary.BigEndian.PutUint16(b[2:4], h.dstPort)
	binary.BigEndian.PutUint32(b[4:8], h.seq)
	binary.BigEndian.PutUint32(b[8:12], h.ack)
	b[12] = byte(doff/4) << 4
	b[13] = h.flags
	binary.BigEndian.PutUint16(b[14:16], h.wnd)
	b[16], b[17] = 0, 0 // checksum
	b[18], b[19] = 0, 0 // urgent
	if h.mss != 0 {
		b[20], b[21] = 2, 4
		binary.BigEndian.PutUint16(b[22:24], h.mss)
	}
	return doff
}

// decodeHeader parses a TCP header from b (the TCP segment).
func decodeHeader(b []byte) (header, error) {
	if len(b) < headerLen {
		return header{}, fmt.Errorf("tcp: segment too short (%d)", len(b))
	}
	var h header
	h.srcPort = binary.BigEndian.Uint16(b[0:2])
	h.dstPort = binary.BigEndian.Uint16(b[2:4])
	h.seq = binary.BigEndian.Uint32(b[4:8])
	h.ack = binary.BigEndian.Uint32(b[8:12])
	h.dataOff = int(b[12]>>4) * 4
	if h.dataOff < headerLen || h.dataOff > len(b) {
		return header{}, fmt.Errorf("tcp: bad data offset %d", h.dataOff)
	}
	h.flags = b[13]
	h.wnd = binary.BigEndian.Uint16(b[14:16])
	h.csum = binary.BigEndian.Uint16(b[16:18])
	// Options: only MSS (kind 2) is interpreted.
	opts := b[headerLen:h.dataOff]
	for len(opts) > 0 {
		switch opts[0] {
		case 0: // end of options
			opts = nil
		case 1: // nop
			opts = opts[1:]
		default:
			if len(opts) < 2 || int(opts[1]) > len(opts) || opts[1] < 2 {
				return header{}, fmt.Errorf("tcp: malformed option")
			}
			if opts[0] == 2 && opts[1] == 4 {
				h.mss = binary.BigEndian.Uint16(opts[2:4])
			}
			opts = opts[opts[1]:]
		}
	}
	return h, nil
}

// verifyChecksum validates a whole TCP segment against the IPv4 pseudo
// header.
func verifyChecksum(src, dst ipv4.Addr, seg []byte) bool {
	sum := checksum.PseudoHeaderSum(src, dst, ipv4.ProtoTCP, len(seg))
	sum = checksum.Combine(sum, checksum.Partial(0, seg))
	return checksum.Fold(sum) == 0xffff
}

// Sequence-space comparisons with wraparound (RFC 793 arithmetic).
func seqLT(a, b uint32) bool  { return int32(a-b) < 0 }
func seqLEQ(a, b uint32) bool { return int32(a-b) <= 0 }
func seqGT(a, b uint32) bool  { return int32(a-b) > 0 }
func seqGEQ(a, b uint32) bool { return int32(a-b) >= 0 }

// state is the TCP connection state.
type state int

const (
	stateClosed state = iota
	stateListen
	stateSynSent
	stateSynRcvd
	stateEstablished
	stateFinWait1
	stateFinWait2
	stateCloseWait
	stateClosing
	stateLastAck
	stateTimeWait
)

var stateNames = [...]string{
	"Closed", "Listen", "SynSent", "SynRcvd", "Established",
	"FinWait1", "FinWait2", "CloseWait", "Closing", "LastAck", "TimeWait",
}

func (s state) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}
