package tcp

import (
	"time"

	"packetstore/internal/eth"
	"packetstore/internal/ipv4"
	"packetstore/internal/pkt"
)

// outputLocked is the transmit engine: it sends queued segments allowed by
// the congestion and flow-control windows, then emits a pure ACK if one is
// due and nothing carried it.
func (c *Conn) outputLocked() {
	if c.state == stateClosed || c.state == stateSynSent || c.state == stateSynRcvd {
		return
	}
	sentData := false
	wnd := min(c.cwnd, int(c.sndWnd))
	for i := 0; i < len(c.sndQ); i++ {
		seg := c.sndQ[i]
		if seg.sent {
			continue
		}
		inFlight := int(c.sndNxt - c.sndUna)
		if seg.length > 0 {
			usable := wnd - inFlight
			if seg.length > usable {
				if inFlight > 0 {
					break // wait for acknowledgements
				}
				// Nothing in flight and the segment exceeds the usable
				// window: send what fits (at least one byte, which then
				// acts as a window probe the retransmit timer sustains).
				if usable < 1 {
					usable = 1
				}
				c.splitSegmentLocked(i, usable)
				seg = c.sndQ[i]
			}
		}
		seg.sent = true
		seg.sentAt = time.Now()
		c.transmitLocked(seg)
		c.sndNxt = seg.end()
		sentData = true
	}
	if sentData {
		c.armRtxTimerLocked()
		c.ackPending = 0
		c.ackNow = false
		return
	}
	if c.ackNow {
		c.sendSegmentLocked(flagACK, c.sndNxt, c.rcvNxt, nil, 0)
	}
}

// transmitLocked emits one data (or FIN) segment: headers are written into
// the payload buffer's headroom on a clone, so the original stays queued
// for retransmission while the clone travels down the stack — the sk_buff
// clone mechanism of §4.1.
func (c *Conn) transmitLocked(seg *segment) {
	s := c.stk
	flags := uint8(flagACK)
	if seg.fin {
		flags |= flagFIN
	}
	if seg.psh {
		flags |= flagPSH
	}
	wnd := c.advWndLocked()
	c.lastAdvWnd = wnd

	if seg.buf == nil {
		// Bare FIN.
		s.xmitLocked(c.key, flags, seg.seq, c.rcvNxt, uint16(wnd), nil, 0, 0, 0)
		return
	}

	clone := seg.buf.Clone()
	hdr := clone.Push(frameHeadroom)
	dstMAC, ok := s.neighbors[c.key.raddr]
	if !ok {
		clone.Release()
		return
	}
	eth.Header{Dst: dstMAC, Src: s.mac, Type: eth.TypeIPv4}.Encode(hdr)
	s.ipID++
	ipv4.Header{
		TotalLen: uint16(ipv4.HeaderLen + headerLen + clone.TotalLen() - frameHeadroom),
		ID:       s.ipID, DF: true, TTL: 64, Proto: ipv4.ProtoTCP,
		Src: s.addr, Dst: c.key.raddr,
	}.Encode(hdr[eth.HeaderLen:])
	h := header{
		srcPort: c.key.lport, dstPort: c.key.rport,
		seq: seg.seq, ack: c.rcvNxt, flags: flags, wnd: uint16(wnd),
	}
	h.encode(hdr[eth.HeaderLen+ipv4.HeaderLen:])
	clone.L3 = clone.HeadOffset() + eth.HeaderLen
	clone.L4 = clone.L3 + ipv4.HeaderLen
	clone.Payload = clone.L4 + headerLen
	c.ackPending = 0
	c.ackNow = false
	s.finishChecksumAndTx(clone)
}

// splitSegmentLocked splits the unsent segment at index i so its first
// part carries n payload bytes. Fragmented (zero-copy) payloads are
// flattened first — the receiver shrank its window below the segment
// size, so the copy is the price of making progress; fragment release
// hooks fire at flatten time because the data has been copied out.
func (c *Conn) splitSegmentLocked(i, n int) {
	seg := c.sndQ[i]
	if len(seg.buf.Frags()) > 0 {
		flat := make([]byte, frameHeadroom+seg.length)
		seg.buf.Linearize(flat[frameHeadroom:])
		nb := pkt.NewBuf(flat)
		nb.Pull(frameHeadroom)
		seg.buf.Release()
		seg.buf = nb
	}
	// The tail gets its own buffer (with headroom): a clone would share
	// the head buffer, and writing the tail's protocol headers would
	// land inside the first part's payload bytes.
	tail := make([]byte, frameHeadroom+seg.length-n)
	copy(tail[frameHeadroom:], seg.buf.Bytes()[n:])
	nb2 := pkt.NewBuf(tail)
	nb2.Pull(frameHeadroom)
	segB := &segment{
		seq: seg.seq + uint32(n), buf: nb2,
		length: seg.length - n, psh: seg.psh,
	}
	seg.buf.Trim(n)
	seg.length = n
	seg.psh = false
	c.sndQ = append(c.sndQ, nil)
	copy(c.sndQ[i+2:], c.sndQ[i+1:])
	c.sndQ[i+1] = segB
}

// --- Timers ---

func (c *Conn) armRtxTimerLocked() {
	d := c.rto
	if c.rtxTimer == nil {
		c.rtxTimer = time.AfterFunc(d, c.onRtxTimeout)
		return
	}
	c.rtxTimer.Stop()
	c.rtxTimer.Reset(d)
}

func (c *Conn) stopRtxTimerLocked() {
	if c.rtxTimer != nil {
		c.rtxTimer.Stop()
	}
}

func (c *Conn) onRtxTimeout() {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	switch c.state {
	case stateClosed, stateTimeWait:
		return
	case stateSynSent:
		c.handshakeRtx++
		if c.handshakeRtx > 6 {
			c.teardownLocked(ErrTimeout)
			return
		}
		c.stk.xmitLocked(c.key, flagSYN, c.sndNxt-1, 0, uint16(c.advWndLocked()), nil, uint16(c.stk.nic.MSS()), 0, 0)
		c.backoffLocked()
		return
	case stateSynRcvd:
		c.handshakeRtx++
		if c.handshakeRtx > 6 {
			c.teardownLocked(ErrTimeout)
			return
		}
		c.stk.xmitLocked(c.key, flagSYN|flagACK, c.sndNxt-1, c.rcvNxt, uint16(c.advWndLocked()), nil, uint16(c.stk.nic.MSS()), 0, 0)
		c.backoffLocked()
		return
	}
	if c.sndUna == c.sndNxt {
		return // everything acked meanwhile
	}
	// Loss: collapse to one segment and retransmit the head (RFC 5681).
	var head *segment
	for _, seg := range c.sndQ {
		if seg.sent {
			head = seg
			break
		}
	}
	if head == nil {
		return
	}
	head.rtx++
	if head.rtx > maxRtx {
		c.abortLocked(ErrTimeout)
		return
	}
	inflight := int(c.sndNxt - c.sndUna)
	c.ssthresh = max(inflight/2, 2*c.mss)
	c.cwnd = c.mss
	c.recovering = false
	c.dupAcks = 0
	c.transmitLocked(head)
	c.backoffLocked()
}

func (c *Conn) backoffLocked() {
	c.rto *= 2
	if c.rto > maxRTO {
		c.rto = maxRTO
	}
	c.armRtxTimerLocked()
}

func (c *Conn) armDelackLocked() {
	if c.delackTimer == nil {
		c.delackTimer = time.AfterFunc(c.stk.cfg.DelayedACK, c.onDelack)
		return
	}
	c.delackTimer.Reset(c.stk.cfg.DelayedACK)
}

func (c *Conn) onDelack() {
	c.stk.mu.Lock()
	defer c.stk.mu.Unlock()
	if c.state == stateClosed || c.ackPending == 0 {
		return
	}
	c.sendSegmentLocked(flagACK, c.sndNxt, c.rcvNxt, nil, 0)
}
