package checksum

import (
	"bytes"
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
)

// refChecksum is a direct, obviously-correct RFC 1071 implementation used
// as the oracle for the optimized code.
func refChecksum(b []byte) uint16 {
	var sum uint64
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint64(b[i])<<8 | uint64(b[i+1])
	}
	if len(b)%2 == 1 {
		sum += uint64(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return ^uint16(sum)
}

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 worked example: 0x0001, 0xf203, 0xf4f5, 0xf6f7 sums to
	// 0xddf2 (before complement).
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	if got := Fold(Partial(0, b)); got != 0xddf2 {
		t.Errorf("Fold(Partial) = %#04x, want 0xddf2", got)
	}
	if got := Checksum(b); got != ^uint16(0xddf2) {
		t.Errorf("Checksum = %#04x, want %#04x", got, ^uint16(0xddf2))
	}
	if got, want := Checksum(nil), ^uint16(0); got != want {
		t.Errorf("Checksum(nil) = %#04x, want %#04x", got, want)
	}
}

func TestChecksumMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(2000)
		b := make([]byte, n)
		rng.Read(b)
		if got, want := Checksum(b), refChecksum(b); got != want {
			t.Fatalf("len=%d: Checksum=%#04x want %#04x", n, got, want)
		}
	}
}

func TestChecksumQuick(t *testing.T) {
	f := func(b []byte) bool { return Checksum(b) == refChecksum(b) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineSplitInvariant(t *testing.T) {
	// Splitting data at any even boundary and combining partial sums must
	// equal the whole-buffer sum.
	f := func(b []byte, splitRaw uint16) bool {
		if len(b) < 2 {
			return true
		}
		split := int(splitRaw) % len(b)
		split &^= 1 // even boundary
		whole := Fold(Partial(0, b))
		combined := Fold(Combine(Partial(0, b[:split]), Partial(0, b[split:])))
		return whole == combined
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCombineOdd(t *testing.T) {
	f := func(b []byte, splitRaw uint16) bool {
		if len(b) < 3 {
			return true
		}
		split := int(splitRaw)%(len(b)-1) | 1 // odd boundary
		whole := Fold(Partial(0, b))
		combined := Fold(CombineOdd(Partial(0, b[:split]), Partial(0, b[split:])))
		return whole == combined
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtractPeelsPrefix(t *testing.T) {
	// sum(b) - sum(prefix) == sum(suffix) for even-length prefixes: the
	// exact operation used to peel HTTP headers off a NIC payload sum.
	// Ones-complement subtraction can produce negative zero (0xffff)
	// where direct accumulation produces +0, so the comparison must be
	// through Norm16 — as every production consumer compares.
	f := func(b []byte, cutRaw uint16) bool {
		if len(b) < 2 {
			return true
		}
		cut := int(cutRaw) % len(b)
		cut &^= 1
		whole := Partial(0, b)
		peeled := Subtract(whole, Partial(0, b[:cut]))
		return Norm16(Fold(peeled)) == Norm16(Fold(Partial(0, b[cut:])))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestAccumulatorArbitraryPieces(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(1500)
		b := make([]byte, n)
		rng.Read(b)
		var acc Accumulator
		rest := b
		for len(rest) > 0 {
			k := 1 + rng.Intn(len(rest))
			acc.Add(rest[:k])
			rest = rest[k:]
		}
		if got, want := acc.Sum16(), Fold(Partial(0, b)); got != want {
			t.Fatalf("trial %d len %d: acc=%#04x want %#04x", trial, n, got, want)
		}
	}
}

func TestAccumulatorAddPartial(t *testing.T) {
	b := []byte("the quick brown fox jumps over the lazy dog????")
	var acc Accumulator
	acc.Add(b[:10])
	if !acc.AddPartial(Partial(0, b[10:31]), 21) {
		t.Fatal("AddPartial rejected at even offset")
	}
	// Offset is now odd (10+21=31): AddPartial must refuse.
	if acc.AddPartial(Partial(0, b[31:]), len(b)-31) {
		t.Fatal("AddPartial accepted at odd offset")
	}
	acc.Add(b[31:])
	if got, want := acc.Sum16(), Fold(Partial(0, b)); got != want {
		t.Fatalf("got %#04x want %#04x", got, want)
	}
	acc.Reset()
	if acc.Sum() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestUpdateUint16(t *testing.T) {
	f := func(b []byte, idxRaw uint16, newVal uint16) bool {
		if len(b) < 2 {
			return true
		}
		idx := int(idxRaw) % (len(b) - 1)
		idx &^= 1
		old := Checksum(b)
		oldVal := uint16(b[idx])<<8 | uint16(b[idx+1])
		nb := bytes.Clone(b)
		nb[idx], nb[idx+1] = byte(newVal>>8), byte(newVal)
		return UpdateUint16(old, oldVal, newVal) == Checksum(nb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoHeaderSum(t *testing.T) {
	src := [4]byte{10, 0, 0, 1}
	dst := [4]byte{10, 0, 0, 2}
	// Reference: build the 12-byte pseudo header and sum it.
	ph := []byte{10, 0, 0, 1, 10, 0, 0, 2, 0, 6, 0x12, 0x34}
	want := Fold(Partial(0, ph))
	if got := Fold(PseudoHeaderSum(src, dst, 6, 0x1234)); got != want {
		t.Fatalf("got %#04x want %#04x", got, want)
	}
}

func TestCRC32CAgainstStdlib(t *testing.T) {
	table := crc32.MakeTable(crc32.Castagnoli)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		b := make([]byte, rng.Intn(4096))
		rng.Read(b)
		want := crc32.Checksum(b, table)
		if got := CRC32C(b); got != want {
			t.Fatalf("CRC32C mismatch len=%d: got %#08x want %#08x", len(b), got, want)
		}
		if got := CRC32CFast(b); got != want {
			t.Fatalf("CRC32CFast mismatch len=%d: got %#08x want %#08x", len(b), got, want)
		}
	}
}

func TestCRC32CIncremental(t *testing.T) {
	f := func(a, b []byte) bool {
		whole := CRC32C(append(bytes.Clone(a), b...))
		inc := UpdateCRC32C(CRC32C(a), b)
		incFast := UpdateCRC32CFast(CRC32CFast(a), b)
		return whole == inc && whole == incFast
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMaskRoundTrip(t *testing.T) {
	f := func(crc uint32) bool {
		m := Mask(crc)
		return Unmask(m) == crc && m != crc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
	// Known LevelDB property: masking is not idempotent.
	if Mask(Mask(0x12345678)) == Mask(0x12345678) {
		t.Fatal("double mask equals single mask")
	}
}

func BenchmarkChecksum1K(b *testing.B) {
	buf := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}

func BenchmarkCRC32C1K(b *testing.B) {
	buf := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		CRC32C(buf)
	}
}

func BenchmarkCRC32CFast1K(b *testing.B) {
	buf := make([]byte, 1024)
	rand.New(rand.NewSource(1)).Read(buf)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		CRC32CFast(buf)
	}
}
