package checksum

// CRC32C (Castagnoli polynomial, reflected 0x82f63b78) in table-driven pure
// Go. Two variants are provided:
//
//   - CRC32C: byte-at-a-time table lookup. Roughly 0.5-0.8 GB/s, matching
//     the throughput implied by the paper's measured 1.77µs per 1KB value.
//     The baseline LSM store uses this, so the "checksum calculation" row
//     of Table 1 is real measured work of comparable magnitude.
//   - CRC32CFast: slicing-by-8, several times faster; used where checksum
//     speed is not itself the quantity under measurement.
//
// Both produce identical CRC values. Mask/Unmask implement LevelDB's CRC
// masking, which guards against the pathology of storing a CRC of data
// that itself embeds CRCs.

const crcPoly = 0x82f63b78

var crcTable [8][256]uint32

func init() {
	for i := 0; i < 256; i++ {
		c := uint32(i)
		for k := 0; k < 8; k++ {
			if c&1 != 0 {
				c = crcPoly ^ (c >> 1)
			} else {
				c >>= 1
			}
		}
		crcTable[0][i] = c
	}
	for i := 0; i < 256; i++ {
		c := crcTable[0][i]
		for t := 1; t < 8; t++ {
			c = crcTable[0][c&0xff] ^ (c >> 8)
			crcTable[t][i] = c
		}
	}
}

// CRC32C computes the CRC32C of b using the simple byte-at-a-time table
// method. Use UpdateCRC32C to extend an existing CRC.
func CRC32C(b []byte) uint32 { return UpdateCRC32C(0, b) }

// UpdateCRC32C extends crc with the bytes of b (byte-at-a-time).
func UpdateCRC32C(crc uint32, b []byte) uint32 {
	c := ^crc
	for _, x := range b {
		c = crcTable[0][byte(c)^x] ^ (c >> 8)
	}
	return ^c
}

// CRC32CFast computes the CRC32C of b using slicing-by-8.
func CRC32CFast(b []byte) uint32 { return UpdateCRC32CFast(0, b) }

// UpdateCRC32CFast extends crc with the bytes of b (slicing-by-8).
func UpdateCRC32CFast(crc uint32, b []byte) uint32 {
	c := ^crc
	for len(b) >= 8 {
		c ^= uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
		c = crcTable[7][byte(c)] ^
			crcTable[6][byte(c>>8)] ^
			crcTable[5][byte(c>>16)] ^
			crcTable[4][byte(c>>24)] ^
			crcTable[3][b[4]] ^
			crcTable[2][b[5]] ^
			crcTable[1][b[6]] ^
			crcTable[0][b[7]]
		b = b[8:]
	}
	for _, x := range b {
		c = crcTable[0][byte(c)^x] ^ (c >> 8)
	}
	return ^c
}

const maskDelta = 0xa282ead8

// Mask returns a masked representation of crc, per LevelDB: rotate right by
// 15 bits and add a constant. Stored CRCs are always masked.
func Mask(crc uint32) uint32 { return ((crc >> 15) | (crc << 17)) + maskDelta }

// Unmask inverts Mask.
func Unmask(masked uint32) uint32 {
	r := masked - maskDelta
	return (r << 15) | (r >> 17)
}
