// Package checksum implements the two checksum families used across the
// network and storage stacks.
//
// The Internet checksum (RFC 1071) is the 16-bit ones-complement sum used
// by IPv4, TCP and UDP. Its key algebraic properties — partial sums combine
// additively, and single-word updates can be applied incrementally
// (RFC 1624) — are exactly what lets the packetstore reuse NIC-computed
// sums as storage integrity metadata without ever re-reading the payload:
// the sum over a byte range can be derived by combining per-segment sums
// and subtracting the sums of the few bytes outside the range.
//
// CRC32C (Castagnoli) is the checksum LevelDB and most storage systems use
// for on-media integrity. It is implemented here in pure table-driven Go
// (no SSE4.2 acceleration) because the baseline's checksum cost is one of
// the overheads the paper measures: the paper's 1.77µs per 1KB implies a
// software implementation at roughly 0.6 GB/s, which table-driven Go
// matches far better than a hardware CRC instruction would.
package checksum

// Partial extends an unfolded Internet-checksum partial sum with the bytes
// of b. The sum argument and result are 32-bit accumulators that have not
// yet been folded to 16 bits; fold with Fold. Partial assumes b starts at
// an even byte offset of the covered data; when accumulating a range in
// pieces, use Accumulator, which tracks byte parity across pieces.
func Partial(sum uint32, b []byte) uint32 {
	n := len(b)
	i := 0
	// Unrolled 16-bit big-endian word accumulation. The inner loop reads
	// 8 bytes per iteration; carries are deferred to Fold-time because a
	// uint32 can absorb 65535 additions of 0xffff without overflow only
	// if we periodically fold — so fold opportunistically when high bits
	// appear.
	for ; i+8 <= n; i += 8 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
		sum += uint32(b[i+2])<<8 | uint32(b[i+3])
		sum += uint32(b[i+4])<<8 | uint32(b[i+5])
		sum += uint32(b[i+6])<<8 | uint32(b[i+7])
		if sum >= 0xffff0000 {
			sum = (sum & 0xffff) + (sum >> 16)
		}
	}
	for ; i+2 <= n; i += 2 {
		sum += uint32(b[i])<<8 | uint32(b[i+1])
	}
	if i < n {
		sum += uint32(b[i]) << 8
	}
	return sum
}

// Fold reduces an unfolded partial sum to the final 16-bit ones-complement
// sum (without complementing; the wire checksum field is ^Fold(sum)).
func Fold(sum uint32) uint16 {
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + (sum >> 16)
	}
	return uint16(sum)
}

// Checksum computes the folded, complemented Internet checksum of b, as it
// would appear in a protocol checksum field covering exactly b.
func Checksum(b []byte) uint16 { return ^Fold(Partial(0, b)) }

// Combine merges two unfolded partial sums where b covers bytes that begin
// at an even offset relative to the start of a's coverage. Because the
// ones-complement sum is position-independent apart from byte parity,
// Combine is a single end-around addition.
func Combine(a, b uint32) uint32 {
	s := uint64(a) + uint64(b)
	return uint32(s&0xffffffff) + uint32(s>>32)
}

// CombineOdd merges partial sum b into a when b's coverage begins at an odd
// byte offset relative to a's start: every byte of b is swapped within its
// 16-bit word before adding.
func CombineOdd(a, b uint32) uint32 {
	f := Fold(b)
	return Combine(a, uint32(f<<8|f>>8))
}

// Subtract removes partial sum b (covering an even-offset, even-parity
// range) from a, yielding the partial sum of the remaining bytes. This is
// the operation the packetstore uses to peel protocol/application headers
// off a NIC-provided whole-payload sum.
func Subtract(a, b uint32) uint32 {
	// Ones-complement subtraction: add the complement.
	return Combine(a, uint32(^Fold(b)))
}

// UpdateUint16 incrementally updates folded checksum old (the complemented
// wire value) when a 16-bit word of the covered data changes from oldVal
// to newVal, per RFC 1624 (eqn. 3): HC' = ~(~HC + ~m + m').
func UpdateUint16(old uint16, oldVal, newVal uint16) uint16 {
	sum := uint32(^old&0xffff) + uint32(^oldVal&0xffff) + uint32(newVal)
	return ^Fold(sum)
}

// Accumulator incrementally builds an Internet-checksum partial sum over a
// byte range delivered in arbitrary-length pieces, tracking byte parity so
// odd-length pieces are handled correctly.
type Accumulator struct {
	sum uint32
	odd bool // next byte lands in the low half of its 16-bit word
}

// Add appends b to the accumulated range.
func (a *Accumulator) Add(b []byte) {
	if len(b) == 0 {
		return
	}
	if a.odd {
		// Consume one byte into the low half of the pending word.
		a.sum = Combine(a.sum, uint32(b[0]))
		b = b[1:]
		a.odd = false
		if len(b) == 0 {
			return
		}
	}
	a.sum = Combine(a.sum, Partial(0, b))
	if len(b)%2 == 1 {
		a.odd = true
	}
}

// AddPartial appends a precomputed partial sum covering n bytes that start
// at the accumulator's current offset. It is valid only when the current
// offset is even (no pending odd byte); callers with odd alignment must
// fall back to Add on the raw bytes. The boolean reports whether the sum
// was accepted.
func (a *Accumulator) AddPartial(sum uint32, n int) bool {
	if a.odd {
		return false
	}
	a.sum = Combine(a.sum, sum)
	if n%2 == 1 {
		a.odd = true
	}
	return true
}

// Sum returns the accumulated unfolded partial sum.
func (a *Accumulator) Sum() uint32 { return a.sum }

// Sum16 returns the folded (uncomplemented) 16-bit sum of the accumulated
// range.
func (a *Accumulator) Sum16() uint16 { return Fold(a.sum) }

// Reset clears the accumulator for reuse.
func (a *Accumulator) Reset() { a.sum, a.odd = 0, false }

// Norm16 canonicalizes a folded ones-complement sum: negative zero
// (0xffff) maps to positive zero. Compare sums via Norm16 when they may
// come from different derivations (direct accumulation vs algebraic
// subtraction), which can disagree only in the representation of zero.
func Norm16(s uint16) uint16 {
	if s == 0xffff {
		return 0
	}
	return s
}

// Sub16 computes the ones-complement difference a - b of two folded sums.
func Sub16(a, b uint16) uint16 {
	return Fold(uint32(a) + uint32(^b))
}

// Swap16 byte-swaps a folded sum — the parity adjustment for combining a
// sum whose data starts at an odd offset of the covering range.
func Swap16(s uint16) uint16 { return s<<8 | s>>8 }

// PseudoHeaderSum computes the unfolded partial sum of the TCP/UDP IPv4
// pseudo-header: source and destination addresses, protocol number, and
// L4 segment length.
func PseudoHeaderSum(src, dst [4]byte, proto uint8, l4len int) uint32 {
	var sum uint32
	sum += uint32(src[0])<<8 | uint32(src[1])
	sum += uint32(src[2])<<8 | uint32(src[3])
	sum += uint32(dst[0])<<8 | uint32(dst[1])
	sum += uint32(dst[2])<<8 | uint32(dst[3])
	sum += uint32(proto)
	sum += uint32(l4len)
	return sum
}
