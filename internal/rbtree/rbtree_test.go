package rbtree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func intTree() *Tree[int, int] { return New[int, int](func(a, b int) bool { return a < b }) }

func TestBasicOps(t *testing.T) {
	tr := intTree()
	if _, ok := tr.Get(1); ok {
		t.Fatal("empty tree Get")
	}
	tr.Set(5, 50)
	tr.Set(3, 30)
	tr.Set(8, 80)
	tr.Set(5, 55) // replace
	if tr.Len() != 3 {
		t.Fatalf("Len=%d", tr.Len())
	}
	if v, ok := tr.Get(5); !ok || v != 55 {
		t.Fatalf("Get(5)=%d,%v", v, ok)
	}
	if k, v, ok := tr.Min(); !ok || k != 3 || v != 30 {
		t.Fatalf("Min=%d,%d", k, v)
	}
	if k, _, ok := tr.Max(); !ok || k != 8 {
		t.Fatalf("Max=%d", k)
	}
}

func TestCeil(t *testing.T) {
	tr := intTree()
	for _, k := range []int{10, 20, 30} {
		tr.Set(k, k)
	}
	cases := []struct {
		q, want int
		ok      bool
	}{{5, 10, true}, {10, 10, true}, {11, 20, true}, {30, 30, true}, {31, 0, false}}
	for _, c := range cases {
		k, _, ok := tr.Ceil(c.q)
		if ok != c.ok || (ok && k != c.want) {
			t.Errorf("Ceil(%d) = %d,%v want %d,%v", c.q, k, ok, c.want, c.ok)
		}
	}
	empty := intTree()
	if _, _, ok := empty.Ceil(1); ok {
		t.Error("Ceil on empty tree")
	}
	if _, _, ok := empty.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, _, ok := empty.Max(); ok {
		t.Error("Max on empty tree")
	}
}

func TestDelete(t *testing.T) {
	tr := intTree()
	for i := 0; i < 100; i++ {
		tr.Set(i, i)
	}
	for i := 0; i < 100; i += 2 {
		tr.Delete(i)
	}
	tr.Delete(1000) // absent: no-op
	if tr.Len() != 50 {
		t.Fatalf("Len=%d", tr.Len())
	}
	for i := 0; i < 100; i++ {
		_, ok := tr.Get(i)
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get(%d)=%v want %v", i, ok, want)
		}
	}
}

func TestDeleteMin(t *testing.T) {
	tr := intTree()
	for _, k := range []int{5, 1, 9, 3} {
		tr.Set(k, k)
	}
	want := []int{1, 3, 5, 9}
	for _, w := range want {
		k, _, ok := tr.Min()
		if !ok || k != w {
			t.Fatalf("Min=%d want %d", k, w)
		}
		tr.DeleteMin()
	}
	if tr.Len() != 0 {
		t.Fatalf("Len=%d after draining", tr.Len())
	}
	tr.DeleteMin() // empty: no-op
}

func TestAscendOrderAndEarlyStop(t *testing.T) {
	tr := intTree()
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, k := range perm {
		tr.Set(k, k*2)
	}
	var got []int
	tr.Ascend(func(k, v int) bool {
		if v != k*2 {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true
	})
	if !sort.IntsAreSorted(got) || len(got) != 500 {
		t.Fatalf("ascend order broken, n=%d", len(got))
	}
	count := 0
	tr.Ascend(func(k, v int) bool { count++; return count < 10 })
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

// TestAgainstMapModel drives random operations against a reference map and
// checks full agreement, plus red-black invariants after every batch.
func TestAgainstMapModel(t *testing.T) {
	tr := intTree()
	ref := map[int]int{}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		k := rng.Intn(300)
		switch rng.Intn(3) {
		case 0, 1:
			tr.Set(k, i)
			ref[k] = i
		case 2:
			tr.Delete(k)
			delete(ref, k)
		}
		if i%500 == 0 {
			checkModel(t, tr, ref)
			checkInvariants(t, tr)
		}
	}
	checkModel(t, tr, ref)
	checkInvariants(t, tr)
}

func checkModel(t *testing.T, tr *Tree[int, int], ref map[int]int) {
	t.Helper()
	if tr.Len() != len(ref) {
		t.Fatalf("Len=%d want %d", tr.Len(), len(ref))
	}
	for k, v := range ref {
		got, ok := tr.Get(k)
		if !ok || got != v {
			t.Fatalf("Get(%d)=%d,%v want %d", k, got, ok, v)
		}
	}
}

// checkInvariants verifies: no red node has a red left child chained (LLRB
// form: no right-leaning red links, no two reds in a row) and every path
// to a nil has equal black height.
func checkInvariants(t *testing.T, tr *Tree[int, int]) {
	t.Helper()
	var walk func(n *node[int, int]) int
	walk = func(n *node[int, int]) int {
		if n == nil {
			return 1
		}
		if isRed(n.right) {
			t.Fatal("right-leaning red link")
		}
		if isRed(n) && isRed(n.left) {
			t.Fatal("two reds in a row")
		}
		lh := walk(n.left)
		rh := walk(n.right)
		if lh != rh {
			t.Fatalf("black height mismatch %d vs %d", lh, rh)
		}
		if !n.red {
			lh++
		}
		return lh
	}
	if tr.root != nil && tr.root.red {
		t.Fatal("red root")
	}
	walk(tr.root)
}

func TestQuickSetGetDelete(t *testing.T) {
	f := func(keys []uint8, dels []uint8) bool {
		tr := intTree()
		ref := map[int]int{}
		for i, k := range keys {
			tr.Set(int(k), i)
			ref[int(k)] = i
		}
		for _, k := range dels {
			tr.Delete(int(k))
			delete(ref, int(k))
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSetGet(b *testing.B) {
	tr := intTree()
	for i := 0; i < b.N; i++ {
		tr.Set(i%10000, i)
		tr.Get((i * 7) % 10000)
	}
}
