// Package rbtree implements a left-leaning red-black tree with a
// caller-supplied ordering.
//
// The TCP receiver uses it to hold out-of-order segments keyed by sequence
// number — the same structure the Linux TCP stack uses for its OOO queue,
// and one of the paper's examples (§4.2) of packet metadata already being
// organized into efficient in-memory search structures.
package rbtree

// Tree is a red-black tree mapping K to V. The zero Tree is not usable;
// create one with New. Tree is not safe for concurrent use.
type Tree[K, V any] struct {
	less func(a, b K) bool
	root *node[K, V]
	size int
}

type node[K, V any] struct {
	key         K
	val         V
	left, right *node[K, V]
	red         bool
}

// New returns an empty tree ordered by less.
func New[K, V any](less func(a, b K) bool) *Tree[K, V] {
	return &Tree[K, V]{less: less}
}

// Len returns the number of entries.
func (t *Tree[K, V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[K, V]) Get(key K) (V, bool) {
	n := t.root
	for n != nil {
		switch {
		case t.less(key, n.key):
			n = n.left
		case t.less(n.key, key):
			n = n.right
		default:
			return n.val, true
		}
	}
	var zero V
	return zero, false
}

// Set inserts or replaces the value under key.
func (t *Tree[K, V]) Set(key K, val V) {
	t.root = t.insert(t.root, key, val)
	t.root.red = false
}

func isRed[K, V any](n *node[K, V]) bool { return n != nil && n.red }

func rotateLeft[K, V any](h *node[K, V]) *node[K, V] {
	x := h.right
	h.right = x.left
	x.left = h
	x.red = h.red
	h.red = true
	return x
}

func rotateRight[K, V any](h *node[K, V]) *node[K, V] {
	x := h.left
	h.left = x.right
	x.right = h
	x.red = h.red
	h.red = true
	return x
}

func flipColors[K, V any](h *node[K, V]) {
	h.red = !h.red
	h.left.red = !h.left.red
	h.right.red = !h.right.red
}

func fixUp[K, V any](h *node[K, V]) *node[K, V] {
	if isRed(h.right) && !isRed(h.left) {
		h = rotateLeft(h)
	}
	if isRed(h.left) && isRed(h.left.left) {
		h = rotateRight(h)
	}
	if isRed(h.left) && isRed(h.right) {
		flipColors(h)
	}
	return h
}

func (t *Tree[K, V]) insert(h *node[K, V], key K, val V) *node[K, V] {
	if h == nil {
		t.size++
		return &node[K, V]{key: key, val: val, red: true}
	}
	switch {
	case t.less(key, h.key):
		h.left = t.insert(h.left, key, val)
	case t.less(h.key, key):
		h.right = t.insert(h.right, key, val)
	default:
		h.val = val
	}
	return fixUp(h)
}

// Min returns the smallest key and its value.
func (t *Tree[K, V]) Min() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.left != nil {
		n = n.left
	}
	return n.key, n.val, true
}

// Max returns the largest key and its value.
func (t *Tree[K, V]) Max() (K, V, bool) {
	if t.root == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	n := t.root
	for n.right != nil {
		n = n.right
	}
	return n.key, n.val, true
}

// Ceil returns the smallest entry with key >= key.
func (t *Tree[K, V]) Ceil(key K) (K, V, bool) {
	var best *node[K, V]
	n := t.root
	for n != nil {
		if t.less(n.key, key) {
			n = n.right
		} else {
			best = n
			n = n.left
		}
	}
	if best == nil {
		var zk K
		var zv V
		return zk, zv, false
	}
	return best.key, best.val, true
}

// DeleteMin removes the smallest entry.
func (t *Tree[K, V]) DeleteMin() {
	if t.root == nil {
		return
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = t.deleteMin(t.root)
	if t.root != nil {
		t.root.red = false
	}
}

func moveRedLeft[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.right.left) {
		h.right = rotateRight(h.right)
		h = rotateLeft(h)
		flipColors(h)
	}
	return h
}

func moveRedRight[K, V any](h *node[K, V]) *node[K, V] {
	flipColors(h)
	if isRed(h.left.left) {
		h = rotateRight(h)
		flipColors(h)
	}
	return h
}

func (t *Tree[K, V]) deleteMin(h *node[K, V]) *node[K, V] {
	if h.left == nil {
		t.size--
		return nil
	}
	if !isRed(h.left) && !isRed(h.left.left) {
		h = moveRedLeft(h)
	}
	h.left = t.deleteMin(h.left)
	return fixUp(h)
}

// Delete removes key if present.
func (t *Tree[K, V]) Delete(key K) {
	if _, ok := t.Get(key); !ok {
		return
	}
	if !isRed(t.root.left) && !isRed(t.root.right) {
		t.root.red = true
	}
	t.root = t.delete(t.root, key)
	if t.root != nil {
		t.root.red = false
	}
}

func (t *Tree[K, V]) delete(h *node[K, V], key K) *node[K, V] {
	if t.less(key, h.key) {
		if !isRed(h.left) && !isRed(h.left.left) {
			h = moveRedLeft(h)
		}
		h.left = t.delete(h.left, key)
	} else {
		if isRed(h.left) {
			h = rotateRight(h)
		}
		if !t.less(h.key, key) && h.right == nil {
			t.size--
			return nil
		}
		if !isRed(h.right) && !isRed(h.right.left) {
			h = moveRedRight(h)
		}
		if !t.less(h.key, key) && !t.less(key, h.key) {
			m := h.right
			for m.left != nil {
				m = m.left
			}
			h.key, h.val = m.key, m.val
			h.right = t.deleteMin(h.right)
		} else {
			h.right = t.delete(h.right, key)
		}
	}
	return fixUp(h)
}

// Ascend calls fn for each entry in ascending key order until fn returns
// false.
func (t *Tree[K, V]) Ascend(fn func(key K, val V) bool) {
	ascend(t.root, fn)
}

func ascend[K, V any](n *node[K, V], fn func(K, V) bool) bool {
	if n == nil {
		return true
	}
	if !ascend(n.left, fn) {
		return false
	}
	if !fn(n.key, n.val) {
		return false
	}
	return ascend(n.right, fn)
}
