// Package hdrhist provides a compact log-bucketed latency histogram for
// the benchmark harness (the role wrk's HdrHistogram plays on the paper's
// testbed).
//
// Values are durations recorded in nanoseconds into buckets of ~3%
// relative width, giving percentile error well below the run-to-run noise
// of the experiments while keeping the histogram a few kilobytes.
package hdrhist

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// subBuckets is the number of buckets per power of two; 32 gives ~3.1%
// maximum relative error.
const subBuckets = 32

// numBuckets covers 1ns to ~2^40ns (~18 minutes).
const numBuckets = 41 * subBuckets

// Hist is a latency histogram. The zero value is ready to use. Hist is not
// safe for concurrent use; each load-generating connection records into
// its own and the harness merges them.
type Hist struct {
	counts [numBuckets]uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

func bucketOf(ns int64) int {
	if ns < 1 {
		ns = 1
	}
	exp := 63 - leadingZeros(uint64(ns))
	var sub int
	if exp <= 5 { // values below 2^5 map by value
		return int(ns) - 1
	}
	sub = int((ns - (1 << exp)) >> (exp - 5))
	b := (exp-5)*subBuckets + 31 + sub
	if b >= numBuckets {
		b = numBuckets - 1
	}
	return b
}

// bucketMid returns a representative value (ns) for bucket b.
func bucketMid(b int) int64 {
	if b < 31 {
		return int64(b + 1)
	}
	exp := (b-31)/subBuckets + 5
	sub := (b - 31) % subBuckets
	lo := int64(1)<<exp + int64(sub)<<(exp-5)
	width := int64(1) << (exp - 5)
	return lo + width/2
}

func leadingZeros(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one observation.
func (h *Hist) Record(d time.Duration) {
	ns := d.Nanoseconds()
	h.counts[bucketOf(ns)]++
	if h.total == 0 || ns < h.min {
		h.min = ns
	}
	if ns > h.max {
		h.max = ns
	}
	h.total++
	h.sum += float64(ns)
}

// Count returns the number of observations.
func (h *Hist) Count() uint64 { return h.total }

// Mean returns the arithmetic mean.
func (h *Hist) Mean() time.Duration {
	if h.total == 0 {
		return 0
	}
	return time.Duration(h.sum / float64(h.total))
}

// Min returns the smallest recorded value.
func (h *Hist) Min() time.Duration { return time.Duration(h.min) }

// Max returns the largest recorded value.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Percentile returns the q-th percentile (0 < q <= 100) with ~3% value
// resolution.
func (h *Hist) Percentile(q float64) time.Duration {
	if h.total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q / 100 * float64(h.total)))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for b, c := range h.counts {
		seen += c
		if seen >= rank {
			mid := bucketMid(b)
			if int64(mid) > h.max {
				return time.Duration(h.max)
			}
			if int64(mid) < h.min {
				return time.Duration(h.min)
			}
			return time.Duration(mid)
		}
	}
	return time.Duration(h.max)
}

// Merge adds all of o's observations into h.
func (h *Hist) Merge(o *Hist) {
	if o.total == 0 {
		return
	}
	for b, c := range o.counts {
		h.counts[b] += c
	}
	if h.total == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.total += o.total
	h.sum += o.sum
}

// Reset clears the histogram.
func (h *Hist) Reset() { *h = Hist{} }

// String summarizes the distribution for harness output.
func (h *Hist) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v max=%v",
		h.total, h.Mean().Round(10*time.Nanosecond),
		h.Percentile(50).Round(10*time.Nanosecond),
		h.Percentile(99).Round(10*time.Nanosecond),
		h.Max().Round(10*time.Nanosecond))
}

// Sorted is a helper for exact small-sample percentiles in tests.
func Sorted(ds []time.Duration) []time.Duration {
	out := append([]time.Duration(nil), ds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
