package hdrhist

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSingleValue(t *testing.T) {
	var h Hist
	h.Record(42 * time.Microsecond)
	if h.Count() != 1 {
		t.Fatal("count")
	}
	for _, q := range []float64{1, 50, 99, 100} {
		got := h.Percentile(q)
		if relErr(got, 42*time.Microsecond) > 0.05 {
			t.Fatalf("p%v = %v, want ~42µs", q, got)
		}
	}
	if h.Min() != 42*time.Microsecond || h.Max() != 42*time.Microsecond {
		t.Fatal("min/max")
	}
}

func relErr(a, b time.Duration) float64 {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	return d / float64(b)
}

func TestPercentilesUniform(t *testing.T) {
	var h Hist
	// 1..10000 µs uniformly.
	for i := 1; i <= 10000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	cases := map[float64]time.Duration{
		50: 5000 * time.Microsecond,
		90: 9000 * time.Microsecond,
		99: 9900 * time.Microsecond,
	}
	for q, want := range cases {
		if got := h.Percentile(q); relErr(got, want) > 0.05 {
			t.Errorf("p%v = %v, want ~%v", q, got, want)
		}
	}
	if relErr(h.Mean(), 5000500*time.Nanosecond) > 0.01 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestMerge(t *testing.T) {
	var a, b, whole Hist
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(1000000)) * time.Nanosecond
		whole.Record(d)
		if i%2 == 0 {
			a.Record(d)
		} else {
			b.Record(d)
		}
	}
	a.Merge(&b)
	if a.Count() != whole.Count() {
		t.Fatalf("merged count %d want %d", a.Count(), whole.Count())
	}
	for _, q := range []float64{10, 50, 90, 99} {
		if a.Percentile(q) != whole.Percentile(q) {
			t.Errorf("p%v differs after merge: %v vs %v", q, a.Percentile(q), whole.Percentile(q))
		}
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Error("min/max differ after merge")
	}
	var empty Hist
	a.Merge(&empty) // no-op
	if a.Count() != whole.Count() {
		t.Error("merging empty changed count")
	}
}

func TestQuickBucketMonotone(t *testing.T) {
	// Property: bucketOf is monotone non-decreasing and bucketMid(b) lands
	// within ~7% of any value mapping to b.
	f := func(rawA, rawB uint32) bool {
		a, b := int64(rawA)+1, int64(rawB)+1
		if a > b {
			a, b = b, a
		}
		if bucketOf(a) > bucketOf(b) {
			return false
		}
		mid := bucketMid(bucketOf(a))
		d := float64(mid - a)
		if d < 0 {
			d = -d
		}
		return d <= 0.07*float64(a)+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestResetAndString(t *testing.T) {
	var h Hist
	h.Record(time.Millisecond)
	if s := h.String(); s == "" {
		t.Fatal("empty String")
	}
	h.Reset()
	if h.Count() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSortedHelper(t *testing.T) {
	in := []time.Duration{3, 1, 2}
	out := Sorted(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatal("not sorted")
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}

func BenchmarkRecord(b *testing.B) {
	var h Hist
	for i := 0; i < b.N; i++ {
		h.Record(time.Duration(i%1000000) * time.Nanosecond)
	}
}
