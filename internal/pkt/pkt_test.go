package pkt

import (
	"bytes"
	"math/rand"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

func TestNewBufViewOps(t *testing.T) {
	b := NewBuf(make([]byte, 100))
	defer b.Release()
	if b.Len() != 100 || b.TotalLen() != 100 {
		t.Fatal("initial view")
	}
	b.Pull(14) // strip "ethernet"
	if b.Len() != 86 || b.Headroom() != 14 {
		t.Fatalf("after pull: len=%d headroom=%d", b.Len(), b.Headroom())
	}
	hdr := b.Push(14)
	if len(hdr) != 14 || b.Len() != 100 {
		t.Fatal("push did not restore")
	}
	b.Trim(50)
	if b.Len() != 50 || b.Tailroom() != 50 {
		t.Fatalf("after trim: len=%d tailroom=%d", b.Len(), b.Tailroom())
	}
	s := b.Append(10)
	if len(s) != 10 || b.Len() != 60 {
		t.Fatal("append")
	}
}

func TestViewPanics(t *testing.T) {
	b := NewBuf(make([]byte, 10))
	defer b.Release()
	mustPanic(t, func() { b.Push(1) })   // no headroom
	mustPanic(t, func() { b.Pull(11) })  // beyond len
	mustPanic(t, func() { b.Append(1) }) // no tailroom
	mustPanic(t, func() { b.Trim(11) })  // beyond len
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}

func TestCloneSharesData(t *testing.T) {
	b := NewBuf([]byte("hello world"))
	b.Pull(6)
	b.Csum = 42
	b.CsumStatus = CsumComplete
	c := b.Clone()
	if b.DataRefs() != 2 {
		t.Fatalf("DataRefs=%d want 2", b.DataRefs())
	}
	if string(c.Bytes()) != "world" || c.Csum != 42 || c.CsumStatus != CsumComplete {
		t.Fatal("clone did not copy metadata")
	}
	// Mutating shared data is visible through both (same backing bytes).
	b.Bytes()[0] = 'W'
	if c.Bytes()[0] != 'W' {
		t.Fatal("clone does not share data")
	}
	c.Release()
	if b.DataRefs() != 1 {
		t.Fatalf("DataRefs=%d after clone release", b.DataRefs())
	}
	b.Release()
}

func TestRetainRelease(t *testing.T) {
	b := NewBuf(make([]byte, 4))
	b.Retain()
	b.Release()
	// Still alive: one metadata ref remains.
	_ = b.Bytes()
	b.Release()
}

func TestFragReleaseHookRunsOnce(t *testing.T) {
	released := 0
	b := NewBuf(make([]byte, 8))
	b.AddFrag(Frag{B: []byte("frag-data"), PMOff: -1, Release: func() { released++ }})
	c := b.Clone()
	if b.TotalLen() != 8+9 {
		t.Fatalf("TotalLen=%d", b.TotalLen())
	}
	b.Release()
	if released != 0 {
		t.Fatal("hook ran while clone alive")
	}
	c.Release()
	if released != 1 {
		t.Fatalf("hook ran %d times, want 1", released)
	}
}

func TestLinearize(t *testing.T) {
	b := NewBuf([]byte("head-"))
	b.AddFrag(Frag{B: []byte("frag1-"), PMOff: -1})
	b.AddFrag(Frag{B: []byte("frag2"), PMOff: -1})
	defer b.Release()
	dst := make([]byte, b.TotalLen())
	n := b.Linearize(dst)
	if n != 16 || string(dst) != "head-frag1-frag2" {
		t.Fatalf("linearize: %q (%d)", dst[:n], n)
	}
}

func TestPayloadBytes(t *testing.T) {
	raw := []byte("EEEEIIIITTTTpayload")
	b := NewBuf(raw)
	defer b.Release()
	if !bytes.Equal(b.PayloadBytes(), raw) {
		t.Fatal("unset Payload should return whole view")
	}
	b.Payload = 12
	if string(b.PayloadBytes()) != "payload" {
		t.Fatalf("payload %q", b.PayloadBytes())
	}
}

func TestQueueFIFO(t *testing.T) {
	var q Queue
	if !q.Empty() || q.Pop() != nil || q.Peek() != nil {
		t.Fatal("empty queue behaviour")
	}
	bufs := make([]*Buf, 5)
	for i := range bufs {
		bufs[i] = NewBuf([]byte{byte(i)})
		q.Push(bufs[i])
	}
	if q.Len() != 5 {
		t.Fatal("len")
	}
	if q.Peek() != bufs[0] {
		t.Fatal("peek")
	}
	for i := 0; i < 5; i++ {
		b := q.Pop()
		if b != bufs[i] {
			t.Fatalf("pop order at %d", i)
		}
		b.Release()
	}
	if !q.Empty() {
		t.Fatal("not empty after drain")
	}
}

func TestDRAMPoolExhaustionAndReuse(t *testing.T) {
	p := NewPool(256, 4)
	if p.BufSize() != 256 || p.Capacity() != 4 || p.Region() != nil || p.Slab() != nil {
		t.Fatal("accessors")
	}
	var bufs []*Buf
	for i := 0; i < 4; i++ {
		b := p.Alloc(16)
		if b == nil {
			t.Fatal("premature exhaustion")
		}
		if b.Headroom() != 16 || b.Len() != 0 || b.Tailroom() != 240 {
			t.Fatalf("geometry: %d %d %d", b.Headroom(), b.Len(), b.Tailroom())
		}
		bufs = append(bufs, b)
	}
	if p.InUse() != 4 {
		t.Fatalf("InUse=%d", p.InUse())
	}
	if p.Alloc(0) != nil {
		t.Fatal("exhausted pool returned a buffer")
	}
	if p.AllocFails() != 1 {
		t.Fatalf("AllocFails=%d", p.AllocFails())
	}
	for _, b := range bufs {
		b.Release()
	}
	if p.InUse() != 0 {
		t.Fatalf("InUse=%d after release", p.InUse())
	}
	if p.Alloc(0) == nil {
		t.Fatal("pool did not recycle")
	}
}

func TestPMPool(t *testing.T) {
	r := pmem.New(1<<16, calib.Off())
	p := NewPMPool(r, 4096, 2048, 8)
	b := p.Alloc(64)
	if b == nil {
		t.Fatal("alloc failed")
	}
	if b.PMOff() != b.sh.pmOff+64 {
		t.Fatal("PMOff accounting")
	}
	off := b.sh.pmOff
	if off < 4096 || off >= 4096+8*2048 {
		t.Fatalf("slot offset %d outside pool range", off)
	}
	// Writing through the view writes the region.
	copy(b.Append(5), "hello")
	if string(r.Slice(off+64, 5)) != "hello" {
		t.Fatal("PM view not aliasing region")
	}
	b.Release()
	if p.InUse() != 0 {
		t.Fatal("slot not freed")
	}
}

func TestPMPoolTakeOver(t *testing.T) {
	r := pmem.New(1<<16, calib.Off())
	p := NewPMPool(r, 0, 1024, 4)
	b := p.Alloc(0)
	off := p.TakeOver(b)
	b.Release() // must NOT free the slot
	if p.InUse() != 0 {
		t.Fatal("TakeOver should drop InUse")
	}
	// All remaining slots allocatable, but not the taken one.
	got := map[int]bool{}
	for {
		nb := p.Alloc(0)
		if nb == nil {
			break
		}
		got[nb.sh.pmOff] = true
	}
	if len(got) != 3 || got[off] {
		t.Fatalf("taken slot leaked back: %v (taken %d)", got, off)
	}
	p.ReturnSlot(off)
	if p.Alloc(0) == nil {
		t.Fatal("returned slot not allocatable")
	}
}

func TestPMPoolMarkSlotLive(t *testing.T) {
	r := pmem.New(1<<16, calib.Off())
	p := NewPMPool(r, 0, 512, 4)
	if !p.MarkSlotLive(512) {
		t.Fatal("mark failed")
	}
	if p.MarkSlotLive(512) {
		t.Fatal("double mark accepted")
	}
	for i := 0; i < 3; i++ {
		b := p.Alloc(0)
		if b == nil || b.sh.pmOff == 512 {
			t.Fatal("live slot handed out")
		}
	}
	if p.Alloc(0) != nil {
		t.Fatal("expected exhaustion")
	}
}

func TestDRAMPoolPanicsOnPMOps(t *testing.T) {
	p := NewPool(64, 1)
	b := p.Alloc(0)
	defer b.Release()
	mustPanic(t, func() { p.TakeOver(b) })
	mustPanic(t, func() { p.ReturnSlot(0) })
	mustPanic(t, func() { p.MarkSlotLive(0) })
	mustPanic(t, func() { p.Alloc(65) })
}

func TestCsumStatusString(t *testing.T) {
	for s, want := range map[CsumStatus]string{
		CsumNone: "none", CsumUnnecessary: "unnecessary",
		CsumComplete: "complete", CsumPartial: "partial", 99: "CsumStatus(99)",
	} {
		if s.String() != want {
			t.Errorf("%d.String()=%q want %q", s, s.String(), want)
		}
	}
}

func TestConcurrentCloneRelease(t *testing.T) {
	p := NewPool(128, 64)
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			rng := rand.New(rand.NewSource(int64(42)))
			for i := 0; i < 2000; i++ {
				b := p.Alloc(0)
				if b == nil {
					continue
				}
				clones := make([]*Buf, rng.Intn(3))
				for j := range clones {
					clones[j] = b.Clone()
				}
				b.Release()
				for _, c := range clones {
					c.Release()
				}
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if p.InUse() != 0 {
		t.Fatalf("leak: InUse=%d", p.InUse())
	}
}

func BenchmarkAllocRelease(b *testing.B) {
	p := NewPool(2048, 256)
	for i := 0; i < b.N; i++ {
		buf := p.Alloc(128)
		buf.Release()
	}
}

func BenchmarkClone(b *testing.B) {
	buf := NewBuf(make([]byte, 1500))
	defer buf.Release()
	for i := 0; i < b.N; i++ {
		buf.Clone().Release()
	}
}
