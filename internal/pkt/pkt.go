// Package pkt implements the packet metadata structure and buffer pools of
// the network stack — the Go analogue of Linux's sk_buff (Figure 3 of the
// paper).
//
// A Buf is metadata describing packet data it does not own exclusively:
// the data (head buffer plus optional fragments) lives in a Shared object
// with its own reference count, so a Buf can be cloned — new metadata,
// same data — exactly the mechanism a TCP sender uses to keep segment
// data alive for retransmission while lower layers consume and release
// their clone. The paper's core observation is that this structure —
// reference counts, hardware timestamps, checksum state, links, and data
// that can span multiple pages — is already a flexible in-memory data
// structure with storage-grade metadata; the packetstore (internal/core)
// persists a compact on-PM representation of it.
//
// Pools can be backed by DRAM or carved from a pmem.Region (the PASTE
// configuration): a PM-backed pool makes received packet data persistent
// in place, with no copy, once flushed.
package pkt

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/pmem"
)

// CsumStatus describes what is known about a packet's L4 checksum,
// mirroring the ip_summed states of Linux.
type CsumStatus uint8

const (
	// CsumNone: nothing verified or computed; software must do the work.
	CsumNone CsumStatus = iota
	// CsumUnnecessary: the NIC verified the L4 checksum on receive.
	CsumUnnecessary
	// CsumComplete: the NIC computed the unfolded Internet-checksum
	// partial sum of the L4 payload into Buf.Csum on receive. This is the
	// state the packetstore harvests for storage integrity metadata.
	CsumComplete
	// CsumPartial: transmit-side; software left the pseudo-header sum in
	// the checksum field and the NIC must fold in the payload.
	CsumPartial
)

func (s CsumStatus) String() string {
	switch s {
	case CsumNone:
		return "none"
	case CsumUnnecessary:
		return "unnecessary"
	case CsumComplete:
		return "complete"
	case CsumPartial:
		return "partial"
	}
	return fmt.Sprintf("CsumStatus(%d)", uint8(s))
}

// Frag is an external data fragment (Linux's skb_shared_info pages): extra
// payload bytes that follow the head buffer without being copied into it.
// Zero-copy transmit points Frags directly at stored data in PM.
type Frag struct {
	B      []byte // fragment bytes; may alias a pmem.Region
	PMOff  int    // offset of B[0] within the region, or -1
	Sum    uint32 // unfolded partial Internet checksum of B, if HasSum
	HasSum bool
	// Release, if non-nil, runs when the owning Shared's last reference
	// drops: the hook under which a storage stack lends data to the
	// network stack and learns when the transmission no longer needs it.
	Release func()
}

// Shared is the reference-counted data portion of a packet: the head
// buffer and any fragments. All clones of a Buf point at one Shared.
type Shared struct {
	refs  atomic.Int32
	head  []byte
	pmOff int // region offset of head[0], or -1
	pool  *Pool
	frags []Frag
}

// Buf is packet metadata. Field layout groups the hot parsing state first.
// A Buf is obtained from a Pool (receive/transmit paths) or NewBuf (tests,
// loose data), used, and released with Release.
type Buf struct {
	sh   *Shared
	refs atomic.Int32
	off  int // view start within sh.head
	end  int // view end within sh.head

	// Protocol layer offsets, absolute within sh.head. Zero means unset.
	L3      int // network header start
	L4      int // transport header start
	Payload int // application payload start

	Time   time.Time // software receive/queue timestamp
	HWTime time.Time // NIC hardware timestamp

	Csum       uint32 // meaning depends on CsumStatus
	CsumStatus CsumStatus

	// Next links Bufs into queues (socket buffers, retransmit queues,
	// out-of-order lists) — metadata as a list node, per the paper.
	Next *Buf
}

var bufPool = sync.Pool{New: func() any { return new(Buf) }}
var sharedPool = sync.Pool{New: func() any { return new(Shared) }}

// NewBuf wraps an existing byte slice in a standalone Buf (no pool). The
// view covers all of b.
func NewBuf(b []byte) *Buf {
	sh := sharedPool.Get().(*Shared)
	sh.refs.Store(1)
	sh.head = b
	sh.pmOff = -1
	sh.pool = nil
	sh.frags = sh.frags[:0]
	buf := bufPool.Get().(*Buf)
	buf.reset(sh, 0, len(b))
	return buf
}

func (b *Buf) reset(sh *Shared, off, end int) {
	b.sh = sh
	b.refs.Store(1)
	b.off, b.end = off, end
	b.L3, b.L4, b.Payload = 0, 0, 0
	b.Time, b.HWTime = time.Time{}, time.Time{}
	b.Csum, b.CsumStatus = 0, CsumNone
	b.Next = nil
}

// Clone returns new metadata sharing this Buf's data, bumping the data
// reference count. View, layer offsets, timestamps and checksum state are
// copied.
func (b *Buf) Clone() *Buf {
	b.sh.refs.Add(1)
	c := bufPool.Get().(*Buf)
	c.sh = b.sh
	c.refs.Store(1)
	c.off, c.end = b.off, b.end
	c.Next = nil
	c.L3, c.L4, c.Payload = b.L3, b.L4, b.Payload
	c.Time, c.HWTime = b.Time, b.HWTime
	c.Csum, c.CsumStatus = b.Csum, b.CsumStatus
	return c
}

// Retain adds a metadata reference; each Retain needs a matching Release.
func (b *Buf) Retain() { b.refs.Add(1) }

// Release drops a metadata reference; at zero, the shared data reference
// is dropped too, and at zero data references the head buffer returns to
// its pool and fragment release hooks run.
func (b *Buf) Release() {
	if b.refs.Add(-1) != 0 {
		return
	}
	sh := b.sh
	b.sh = nil
	bufPool.Put(b)
	if sh.refs.Add(-1) != 0 {
		return
	}
	for i := range sh.frags {
		if sh.frags[i].Release != nil {
			sh.frags[i].Release()
		}
		sh.frags[i] = Frag{}
	}
	sh.frags = sh.frags[:0]
	if sh.pool != nil {
		sh.pool.putSlot(sh)
	} else {
		sh.head = nil
		sharedPool.Put(sh)
	}
}

// DataRefs reports the shared-data reference count (diagnostics/tests).
func (b *Buf) DataRefs() int32 { return b.sh.refs.Load() }

// Bytes returns the current head-buffer view.
func (b *Buf) Bytes() []byte { return b.sh.head[b.off:b.end] }

// Len returns the view length, excluding fragments.
func (b *Buf) Len() int { return b.end - b.off }

// TotalLen returns view length plus all fragment lengths.
func (b *Buf) TotalLen() int {
	n := b.Len()
	for i := range b.sh.frags {
		n += len(b.sh.frags[i].B)
	}
	return n
}

// Headroom returns the bytes available before the view for Push.
func (b *Buf) Headroom() int { return b.off }

// Tailroom returns the bytes available after the view for Append.
func (b *Buf) Tailroom() int { return len(b.sh.head) - b.end }

// Push extends the view n bytes forward (into headroom) and returns the
// newly exposed prefix, where a protocol header is written.
func (b *Buf) Push(n int) []byte {
	if n > b.off {
		panic(fmt.Sprintf("pkt: push %d exceeds headroom %d", n, b.off))
	}
	b.off -= n
	return b.sh.head[b.off : b.off+n]
}

// Pull strips n bytes from the front of the view (header consumption).
func (b *Buf) Pull(n int) {
	if n > b.Len() {
		panic(fmt.Sprintf("pkt: pull %d exceeds len %d", n, b.Len()))
	}
	b.off += n
}

// Append extends the view n bytes into tailroom and returns the newly
// exposed suffix.
func (b *Buf) Append(n int) []byte {
	if n > b.Tailroom() {
		panic(fmt.Sprintf("pkt: append %d exceeds tailroom %d", n, b.Tailroom()))
	}
	s := b.sh.head[b.end : b.end+n]
	b.end += n
	return s
}

// Trim shortens the view to n bytes.
func (b *Buf) Trim(n int) {
	if n > b.Len() {
		panic(fmt.Sprintf("pkt: trim to %d exceeds len %d", n, b.Len()))
	}
	b.end = b.off + n
}

// HeadOffset returns the view's start offset within the head buffer; with
// PMOff it locates the view inside a pmem.Region.
func (b *Buf) HeadOffset() int { return b.off }

// PMOff returns the region offset of the view start, or -1 for DRAM bufs.
func (b *Buf) PMOff() int {
	if b.sh.pmOff < 0 {
		return -1
	}
	return b.sh.pmOff + b.off
}

// Frags returns the fragment list (shared across clones; do not mutate
// concurrently with transmission).
func (b *Buf) Frags() []Frag { return b.sh.frags }

// AddFrag appends an external fragment.
func (b *Buf) AddFrag(f Frag) { b.sh.frags = append(b.sh.frags, f) }

// Linearize copies the view and all fragments into dst, returning the
// number of bytes written; dst must be at least TotalLen.
func (b *Buf) Linearize(dst []byte) int {
	n := copy(dst, b.Bytes())
	for i := range b.sh.frags {
		n += copy(dst[n:], b.sh.frags[i].B)
	}
	return n
}

// PayloadBytes returns the head-buffer bytes from the Payload offset to
// the view end (not including fragments).
func (b *Buf) PayloadBytes() []byte {
	if b.Payload == 0 {
		return b.Bytes()
	}
	return b.sh.head[b.Payload:b.end]
}

// Queue is a FIFO of Bufs linked through Next.
type Queue struct {
	head, tail *Buf
	n          int
}

// Len returns the queue length.
func (q *Queue) Len() int { return q.n }

// Empty reports whether the queue has no Bufs.
func (q *Queue) Empty() bool { return q.n == 0 }

// Push appends b.
func (q *Queue) Push(b *Buf) {
	b.Next = nil
	if q.tail == nil {
		q.head, q.tail = b, b
	} else {
		q.tail.Next = b
		q.tail = b
	}
	q.n++
}

// Pop removes and returns the head, or nil.
func (q *Queue) Pop() *Buf {
	if q.head == nil {
		return nil
	}
	b := q.head
	q.head = b.Next
	if q.head == nil {
		q.tail = nil
	}
	b.Next = nil
	q.n--
	return b
}

// Peek returns the head without removing it.
func (q *Queue) Peek() *Buf { return q.head }

// Pool hands out packet buffers of fixed size. With a pmem.Region, head
// buffers are PM slots (the PASTE design); otherwise they are DRAM slabs.
type Pool struct {
	mu        sync.Mutex
	bufSize   int
	region    *pmem.Region
	slab      *pmem.SlabPool // PM mode
	freeDRAM  [][]byte       // DRAM mode
	allocated int
	capacity  int
	fails     atomic.Uint64
}

// NewPool creates a DRAM-backed pool of n buffers of bufSize bytes.
func NewPool(bufSize, n int) *Pool {
	p := &Pool{bufSize: bufSize, capacity: n}
	p.freeDRAM = make([][]byte, n)
	backing := make([]byte, bufSize*n)
	for i := 0; i < n; i++ {
		p.freeDRAM[i] = backing[i*bufSize : (i+1)*bufSize : (i+1)*bufSize]
	}
	return p
}

// NewPMPool creates a pool whose buffers are slots of a pmem.Region slab,
// starting at base.
func NewPMPool(r *pmem.Region, base, bufSize, n int) *Pool {
	return &Pool{
		bufSize:  bufSize,
		capacity: n,
		region:   r,
		slab:     pmem.NewSlabPool(r, base, bufSize, n),
	}
}

// BufSize returns the head-buffer size.
func (p *Pool) BufSize() int { return p.bufSize }

// Capacity returns the total number of buffers.
func (p *Pool) Capacity() int { return p.capacity }

// Region returns the PM region backing the pool, or nil.
func (p *Pool) Region() *pmem.Region { return p.region }

// Slab exposes the PM slab (recovery marks live slots through it); nil for
// DRAM pools.
func (p *Pool) Slab() *pmem.SlabPool { return p.slab }

// AllocFails reports how many allocations failed due to exhaustion.
func (p *Pool) AllocFails() uint64 { return p.fails.Load() }

// InUse reports how many buffers are currently allocated.
func (p *Pool) InUse() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocated
}

// Alloc returns a Buf whose view starts after headroom bytes and has zero
// length (use Append to fill), or nil when the pool is exhausted — the
// caller drops the packet, as a NIC out of descriptors would.
func (p *Pool) Alloc(headroom int) *Buf {
	if headroom > p.bufSize {
		panic("pkt: headroom exceeds buffer size")
	}
	sh := p.getSlot()
	if sh == nil {
		p.fails.Add(1)
		return nil
	}
	b := bufPool.Get().(*Buf)
	b.reset(sh, headroom, headroom)
	return b
}

func (p *Pool) getSlot() *Shared {
	p.mu.Lock()
	defer p.mu.Unlock()
	var head []byte
	pmOff := -1
	if p.slab != nil {
		off := p.slab.Alloc()
		if off < 0 {
			return nil
		}
		head = p.region.Slice(off, p.bufSize)
		pmOff = off
	} else {
		if len(p.freeDRAM) == 0 {
			return nil
		}
		head = p.freeDRAM[len(p.freeDRAM)-1]
		p.freeDRAM = p.freeDRAM[:len(p.freeDRAM)-1]
	}
	p.allocated++
	sh := sharedPool.Get().(*Shared)
	sh.refs.Store(1)
	sh.head = head
	sh.pmOff = pmOff
	sh.pool = p
	sh.frags = sh.frags[:0]
	return sh
}

// TakeOver removes the head buffer slot from pool management: the caller
// (a persistent store adopting the packet data in place) now owns the PM
// slot and must eventually hand it back via ReturnSlot. Valid only for PM
// pools. Returns the slot's region offset.
func (p *Pool) TakeOver(b *Buf) int {
	if p.slab == nil {
		panic("pkt: TakeOver on DRAM pool")
	}
	sh := b.sh
	if sh.pool != p {
		panic("pkt: TakeOver of foreign buffer")
	}
	sh.pool = nil // Release will no longer return the slot
	p.mu.Lock()
	p.allocated--
	p.mu.Unlock()
	return sh.pmOff
}

// ReturnSlot returns a previously taken-over PM slot to the pool's free
// list.
func (p *Pool) ReturnSlot(off int) {
	if p.slab == nil {
		panic("pkt: ReturnSlot on DRAM pool")
	}
	p.slab.Free(off)
}

// MarkSlotLive marks a PM slot as allocated during recovery, so the pool
// never hands it out while the store still references it.
func (p *Pool) MarkSlotLive(off int) bool {
	if p.slab == nil {
		panic("pkt: MarkSlotLive on DRAM pool")
	}
	return p.slab.MarkAllocated(off)
}

func (p *Pool) putSlot(sh *Shared) {
	p.mu.Lock()
	if p.slab != nil {
		p.slab.Free(sh.pmOff)
	} else {
		p.freeDRAM = append(p.freeDRAM, sh.head)
	}
	p.allocated--
	p.mu.Unlock()
	sh.head = nil
	sh.pool = nil
	sharedPool.Put(sh)
}
