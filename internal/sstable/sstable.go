// Package sstable implements LevelDB-format sorted string tables: data
// blocks with prefix-compressed entries and restart points, an index
// block, a footer, and a CRC32C per block.
//
// The LSM baseline writes SSTables when memtables spill; the paper's
// experiment disables compaction to keep the measurement inside PM, but
// the full structure is implemented (and benchmarked separately) so the
// baseline is the real system, not a mock.
package sstable

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"packetstore/internal/checksum"
)

const (
	// restartInterval is how many entries share a prefix-compression run.
	restartInterval = 16
	// targetBlockSize is the uncompressed data-block size threshold.
	targetBlockSize = 4 << 10
	// blockTrailerSize is type byte + CRC32C.
	blockTrailerSize = 5
	// footerSize holds the index block handle (2 varints padded) + magic.
	footerSize = 24
)

var magic = []byte("SSTBLv1\x00")

// ErrCorrupt reports a structural or checksum failure.
var ErrCorrupt = errors.New("sstable: corrupt table")

// handle locates a block within the file.
type handle struct {
	off, size uint64
}

func (h handle) encode(dst []byte) int {
	n := binary.PutUvarint(dst, h.off)
	return n + binary.PutUvarint(dst[n:], h.size)
}

func decodeHandle(b []byte) (handle, int, error) {
	off, n1 := binary.Uvarint(b)
	if n1 <= 0 {
		return handle{}, 0, ErrCorrupt
	}
	size, n2 := binary.Uvarint(b[n1:])
	if n2 <= 0 {
		return handle{}, 0, ErrCorrupt
	}
	return handle{off, size}, n1 + n2, nil
}

// blockBuilder accumulates prefix-compressed entries.
type blockBuilder struct {
	buf      []byte
	restarts []uint32
	count    int
	lastKey  []byte
}

func (b *blockBuilder) add(key, val []byte) {
	shared := 0
	if b.count%restartInterval == 0 {
		b.restarts = append(b.restarts, uint32(len(b.buf)))
	} else {
		n := len(b.lastKey)
		if len(key) < n {
			n = len(key)
		}
		for shared < n && b.lastKey[shared] == key[shared] {
			shared++
		}
	}
	var tmp [3 * binary.MaxVarintLen32]byte
	n := binary.PutUvarint(tmp[:], uint64(shared))
	n += binary.PutUvarint(tmp[n:], uint64(len(key)-shared))
	n += binary.PutUvarint(tmp[n:], uint64(len(val)))
	b.buf = append(b.buf, tmp[:n]...)
	b.buf = append(b.buf, key[shared:]...)
	b.buf = append(b.buf, val...)
	b.lastKey = append(b.lastKey[:0], key...)
	b.count++
}

func (b *blockBuilder) finish() []byte {
	if len(b.restarts) == 0 {
		b.restarts = append(b.restarts, 0)
	}
	for _, r := range b.restarts {
		var tmp [4]byte
		binary.LittleEndian.PutUint32(tmp[:], r)
		b.buf = append(b.buf, tmp[:]...)
	}
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(b.restarts)))
	b.buf = append(b.buf, tmp[:]...)
	return b.buf
}

func (b *blockBuilder) reset() {
	b.buf = b.buf[:0]
	b.restarts = b.restarts[:0]
	b.count = 0
	b.lastKey = b.lastKey[:0]
}

func (b *blockBuilder) sizeEstimate() int { return len(b.buf) + 4*len(b.restarts) + 4 }

func (b *blockBuilder) empty() bool { return b.count == 0 }

// Writer builds an SSTable into a byte buffer. Keys must be added in
// strictly increasing order under cmp.
type Writer struct {
	cmp           func(a, b []byte) int
	out           []byte
	data          blockBuilder
	index         blockBuilder
	lastKey       []byte
	pending       bool // an index entry awaits the next block's first key
	pendingHandle handle
	n             int
	firstKey      []byte
}

// NewWriter returns a Writer ordering keys by cmp (nil means
// bytes.Compare).
func NewWriter(cmp func(a, b []byte) int) *Writer {
	if cmp == nil {
		cmp = bytes.Compare
	}
	return &Writer{cmp: cmp}
}

// Count returns how many entries were added.
func (w *Writer) Count() int { return w.n }

// FirstKey and LastKey bound the table (for level placement).
func (w *Writer) FirstKey() []byte { return w.firstKey }

// LastKey returns the largest key added.
func (w *Writer) LastKey() []byte { return w.lastKey }

// Add appends an entry. Keys must arrive in strictly increasing order.
func (w *Writer) Add(key, val []byte) error {
	if w.lastKey != nil && w.cmp(key, w.lastKey) <= 0 {
		return fmt.Errorf("sstable: keys out of order")
	}
	if w.firstKey == nil {
		w.firstKey = append([]byte(nil), key...)
	}
	if w.pending {
		w.flushIndexEntry(key)
	}
	w.data.add(key, val)
	w.lastKey = append(w.lastKey[:0], key...)
	w.n++
	if w.data.sizeEstimate() >= targetBlockSize {
		w.finishDataBlock()
	}
	return nil
}

func (w *Writer) finishDataBlock() {
	if w.data.empty() {
		return
	}
	content := w.data.finish()
	h := w.emitBlock(content)
	w.data.reset()
	w.pending = true
	w.pendingHandle = h
}

// flushIndexEntry emits the index entry for the block that just closed,
// keyed by a separator <= the next block's first key (we simply use the
// closed block's last key, which is always a valid separator).
func (w *Writer) flushIndexEntry(_ []byte) {
	var tmp [2 * binary.MaxVarintLen64]byte
	n := w.pendingHandle.encode(tmp[:])
	w.index.add(w.lastKey, tmp[:n])
	w.pending = false
}

func (w *Writer) emitBlock(content []byte) handle {
	off := uint64(len(w.out))
	w.out = append(w.out, content...)
	crc := checksum.Mask(checksum.UpdateCRC32C(checksum.CRC32C(content), []byte{0}))
	w.out = append(w.out, 0) // block type: uncompressed
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], crc)
	w.out = append(w.out, tmp[:]...)
	return handle{off: off, size: uint64(len(content))}
}

// Finish completes the table and returns its bytes.
func (w *Writer) Finish() []byte {
	w.finishDataBlock()
	if w.pending {
		w.flushIndexEntry(nil)
	}
	indexHandle := w.emitBlock(w.index.finish())
	footer := make([]byte, footerSize)
	n := indexHandle.encode(footer)
	_ = n
	copy(footer[footerSize-len(magic):], magic)
	w.out = append(w.out, footer...)
	return w.out
}

// Reader serves point and range lookups from an SSTable byte image.
type Reader struct {
	cmp   func(a, b []byte) int
	data  []byte
	index *block
}

// NewReader opens a table image.
func NewReader(data []byte, cmp func(a, b []byte) int) (*Reader, error) {
	if cmp == nil {
		cmp = bytes.Compare
	}
	if len(data) < footerSize {
		return nil, ErrCorrupt
	}
	footer := data[len(data)-footerSize:]
	if !bytes.Equal(footer[footerSize-len(magic):], magic) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	ih, _, err := decodeHandle(footer)
	if err != nil {
		return nil, err
	}
	r := &Reader{cmp: cmp, data: data}
	ib, err := r.readBlock(ih)
	if err != nil {
		return nil, err
	}
	r.index = ib
	return r, nil
}

func (r *Reader) readBlock(h handle) (*block, error) {
	end := h.off + h.size + blockTrailerSize
	if end > uint64(len(r.data)) {
		return nil, ErrCorrupt
	}
	content := r.data[h.off : h.off+h.size]
	trailer := r.data[h.off+h.size : end]
	wantCRC := checksum.Unmask(binary.LittleEndian.Uint32(trailer[1:5]))
	gotCRC := checksum.UpdateCRC32C(checksum.CRC32C(content), trailer[:1])
	if wantCRC != gotCRC {
		return nil, fmt.Errorf("%w: block checksum", ErrCorrupt)
	}
	return newBlock(content)
}

// Get returns the value stored under key (exact match under cmp).
func (r *Reader) Get(key []byte) ([]byte, bool, error) {
	it := r.index.iterator()
	it.seek(key, r.cmp)
	if !it.valid() {
		return nil, false, nil
	}
	h, _, err := decodeHandle(it.val)
	if err != nil {
		return nil, false, err
	}
	blk, err := r.readBlock(h)
	if err != nil {
		return nil, false, err
	}
	dit := blk.iterator()
	dit.seek(key, r.cmp)
	if dit.valid() && r.cmp(dit.key, key) == 0 {
		return append([]byte(nil), dit.val...), true, nil
	}
	return nil, false, nil
}

// Iterator walks the whole table in key order.
type Iterator struct {
	r   *Reader
	iit *blockIter
	dit *blockIter
	err error
}

// NewIterator returns an iterator positioned before the first entry.
func (r *Reader) NewIterator() *Iterator {
	it := &Iterator{r: r, iit: r.index.iterator()}
	return it
}

// Seek positions at the first entry with key >= key.
func (it *Iterator) Seek(key []byte) {
	it.iit.seek(key, it.r.cmp)
	it.dit = nil
	if !it.iit.valid() {
		return
	}
	if !it.loadDataBlock() {
		return
	}
	it.dit.seek(key, it.r.cmp)
	it.skipExhausted()
}

// SeekToFirst positions at the smallest entry.
func (it *Iterator) SeekToFirst() {
	it.iit.seekToFirst()
	it.dit = nil
	if !it.iit.valid() {
		return
	}
	if !it.loadDataBlock() {
		return
	}
	it.dit.seekToFirst()
	it.skipExhausted()
}

// Next advances the iterator.
func (it *Iterator) Next() {
	if it.dit == nil {
		return
	}
	it.dit.next()
	it.skipExhausted()
}

func (it *Iterator) skipExhausted() {
	for it.dit != nil && !it.dit.valid() {
		it.iit.next()
		if !it.iit.valid() {
			it.dit = nil
			return
		}
		if !it.loadDataBlock() {
			return
		}
		it.dit.seekToFirst()
	}
}

func (it *Iterator) loadDataBlock() bool {
	h, _, err := decodeHandle(it.iit.val)
	if err != nil {
		it.err = err
		it.dit = nil
		return false
	}
	blk, err := it.r.readBlock(h)
	if err != nil {
		it.err = err
		it.dit = nil
		return false
	}
	it.dit = blk.iterator()
	return true
}

// Valid reports whether the iterator is positioned at an entry.
func (it *Iterator) Valid() bool { return it.err == nil && it.dit != nil && it.dit.valid() }

// Key returns the current key.
func (it *Iterator) Key() []byte { return it.dit.key }

// Value returns the current value.
func (it *Iterator) Value() []byte { return it.dit.val }

// Err returns the first error encountered.
func (it *Iterator) Err() error { return it.err }

// block is a decoded (referenced, not copied) block.
type block struct {
	data     []byte // entries region
	restarts []uint32
}

func newBlock(content []byte) (*block, error) {
	if len(content) < 4 {
		return nil, ErrCorrupt
	}
	n := int(binary.LittleEndian.Uint32(content[len(content)-4:]))
	restartsOff := len(content) - 4 - 4*n
	if n <= 0 || restartsOff < 0 {
		return nil, ErrCorrupt
	}
	b := &block{data: content[:restartsOff]}
	for i := 0; i < n; i++ {
		b.restarts = append(b.restarts, binary.LittleEndian.Uint32(content[restartsOff+4*i:]))
	}
	return b, nil
}

type blockIter struct {
	b        *block
	off      int
	key, val []byte
	ok       bool
}

func (b *block) iterator() *blockIter { return &blockIter{b: b} }

func (it *blockIter) valid() bool { return it.ok }

func (it *blockIter) seekToFirst() {
	it.off = 0
	it.key = it.key[:0]
	it.next()
}

// seek positions at the first entry >= key: binary search the restart
// array, then scan.
func (it *blockIter) seek(key []byte, cmp func(a, b []byte) int) {
	lo := sort.Search(len(it.b.restarts), func(i int) bool {
		k := it.keyAtRestart(i)
		return cmp(k, key) >= 0
	})
	if lo > 0 {
		lo--
	}
	it.off = int(it.b.restarts[lo])
	it.key = it.key[:0]
	for it.next(); it.ok && cmp(it.key, key) < 0; it.next() {
	}
}

// keyAtRestart decodes the (fully stored) key at restart point i.
func (it *blockIter) keyAtRestart(i int) []byte {
	off := int(it.b.restarts[i])
	shared, n1 := binary.Uvarint(it.b.data[off:])
	nonShared, n2 := binary.Uvarint(it.b.data[off+n1:])
	_, n3 := binary.Uvarint(it.b.data[off+n1+n2:])
	_ = shared // zero at restart points
	start := off + n1 + n2 + n3
	return it.b.data[start : start+int(nonShared)]
}

func (it *blockIter) next() {
	if it.off >= len(it.b.data) {
		it.ok = false
		return
	}
	shared, n1 := binary.Uvarint(it.b.data[it.off:])
	nonShared, n2 := binary.Uvarint(it.b.data[it.off+n1:])
	valLen, n3 := binary.Uvarint(it.b.data[it.off+n1+n2:])
	if n1 <= 0 || n2 <= 0 || n3 <= 0 {
		it.ok = false
		return
	}
	start := it.off + n1 + n2 + n3
	if start+int(nonShared)+int(valLen) > len(it.b.data) || int(shared) > len(it.key) {
		it.ok = false
		return
	}
	it.key = append(it.key[:int(shared)], it.b.data[start:start+int(nonShared)]...)
	it.val = it.b.data[start+int(nonShared) : start+int(nonShared)+int(valLen)]
	it.off = start + int(nonShared) + int(valLen)
	it.ok = true
}
