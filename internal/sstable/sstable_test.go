package sstable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func buildTable(t *testing.T, kv map[string]string) *Reader {
	t.Helper()
	keys := make([]string, 0, len(kv))
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	w := NewWriter(nil)
	for _, k := range keys {
		if err := w.Add([]byte(k), []byte(kv[k])); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(w.Finish(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestGetSmallTable(t *testing.T) {
	kv := map[string]string{"apple": "1", "banana": "2", "cherry": "3"}
	r := buildTable(t, kv)
	for k, v := range kv {
		got, ok, err := r.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q,%v,%v", k, got, ok, err)
		}
	}
	for _, absent := range []string{"", "aardvark", "banan", "bananaa", "zzz"} {
		if _, ok, _ := r.Get([]byte(absent)); ok {
			t.Fatalf("found absent key %q", absent)
		}
	}
}

func TestLargeTableMultiBlock(t *testing.T) {
	kv := map[string]string{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		k := fmt.Sprintf("user%06d", rng.Intn(1000000))
		kv[k] = fmt.Sprintf("value-%d-%s", i, k)
	}
	r := buildTable(t, kv)
	for k, v := range kv {
		got, ok, err := r.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%s) = %q,%v,%v", k, got, ok, err)
		}
	}
}

func TestIteratorFullScan(t *testing.T) {
	kv := map[string]string{}
	for i := 0; i < 3000; i++ {
		kv[fmt.Sprintf("key%08d", i*7)] = fmt.Sprint(i)
	}
	r := buildTable(t, kv)
	var keys []string
	for k := range kv {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	it := r.NewIterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		if string(it.Key()) != keys[i] {
			t.Fatalf("position %d: %q want %q", i, it.Key(), keys[i])
		}
		if string(it.Value()) != kv[keys[i]] {
			t.Fatalf("value mismatch at %q", it.Key())
		}
		i++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if i != len(keys) {
		t.Fatalf("scanned %d of %d", i, len(keys))
	}
}

func TestIteratorSeek(t *testing.T) {
	kv := map[string]string{}
	for i := 0; i < 1000; i++ {
		kv[fmt.Sprintf("k%05d", i*10)] = "v"
	}
	r := buildTable(t, kv)
	it := r.NewIterator()

	it.Seek([]byte("k00095"))
	if !it.Valid() || string(it.Key()) != "k00100" {
		t.Fatalf("Seek between keys: %q", it.Key())
	}
	it.Seek([]byte("k00100"))
	if !it.Valid() || string(it.Key()) != "k00100" {
		t.Fatalf("Seek exact: %q", it.Key())
	}
	it.Seek([]byte("k99999"))
	if it.Valid() {
		t.Fatal("Seek past end should be invalid")
	}
	it.Seek([]byte(""))
	if !it.Valid() || string(it.Key()) != "k00000" {
		t.Fatalf("Seek before start: %q", it.Key())
	}
}

func TestEmptyTable(t *testing.T) {
	w := NewWriter(nil)
	r, err := NewReader(w.Finish(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.Get([]byte("x")); ok {
		t.Fatal("empty table found a key")
	}
	it := r.NewIterator()
	it.SeekToFirst()
	if it.Valid() {
		t.Fatal("empty table iterator valid")
	}
}

func TestOutOfOrderRejected(t *testing.T) {
	w := NewWriter(nil)
	w.Add([]byte("b"), nil)
	if err := w.Add([]byte("a"), nil); err == nil {
		t.Fatal("out-of-order key accepted")
	}
	if err := w.Add([]byte("b"), nil); err == nil {
		t.Fatal("duplicate key accepted")
	}
}

func TestCorruptionDetected(t *testing.T) {
	w := NewWriter(nil)
	for i := 0; i < 100; i++ {
		w.Add([]byte(fmt.Sprintf("key%04d", i)), []byte("value"))
	}
	img := w.Finish()

	// Truncated.
	if _, err := NewReader(img[:10], nil); err == nil {
		t.Fatal("truncated table accepted")
	}
	// Bad magic.
	bad := append([]byte(nil), img...)
	bad[len(bad)-1] ^= 0xff
	if _, err := NewReader(bad, nil); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Flipped data byte: block CRC must catch it on access.
	bad = append([]byte(nil), img...)
	bad[50] ^= 0x01
	r, err := NewReader(bad, nil)
	if err == nil {
		_, _, err = r.Get([]byte("key0000"))
		if err == nil {
			t.Fatal("corrupt block served a read")
		}
	}
}

func TestWriterMetadata(t *testing.T) {
	w := NewWriter(nil)
	w.Add([]byte("aaa"), []byte("1"))
	w.Add([]byte("zzz"), []byte("2"))
	if string(w.FirstKey()) != "aaa" || string(w.LastKey()) != "zzz" || w.Count() != 2 {
		t.Fatalf("metadata: %q %q %d", w.FirstKey(), w.LastKey(), w.Count())
	}
}

func TestQuickRandomTables(t *testing.T) {
	f := func(raw map[string]string) bool {
		if len(raw) == 0 {
			return true
		}
		w := NewWriter(nil)
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := w.Add([]byte(k), []byte(raw[k])); err != nil {
				return false
			}
		}
		r, err := NewReader(w.Finish(), nil)
		if err != nil {
			return false
		}
		for k, v := range raw {
			got, ok, err := r.Get([]byte(k))
			if err != nil || !ok || !bytes.Equal(got, []byte(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixCompressionShrinksOutput(t *testing.T) {
	// Heavily shared prefixes must compress versus unique keys.
	shared := NewWriter(nil)
	unique := NewWriter(nil)
	for i := 0; i < 2000; i++ {
		shared.Add([]byte(fmt.Sprintf("averylongcommonprefix/%08d", i)), []byte("v"))
		unique.Add([]byte(fmt.Sprintf("%08d-averylongsuffixpad", i)), []byte("v"))
	}
	if len(shared.Finish()) >= len(unique.Finish()) {
		t.Fatal("prefix compression ineffective")
	}
}

func BenchmarkGet(b *testing.B) {
	w := NewWriter(nil)
	for i := 0; i < 100000; i++ {
		w.Add([]byte(fmt.Sprintf("key%08d", i)), []byte("0123456789abcdef"))
	}
	r, err := NewReader(w.Finish(), nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Get([]byte(fmt.Sprintf("key%08d", (i*7919)%100000)))
	}
}

func BenchmarkBuild(b *testing.B) {
	val := make([]byte, 100)
	for i := 0; i < b.N; i++ {
		w := NewWriter(nil)
		for j := 0; j < 1000; j++ {
			w.Add([]byte(fmt.Sprintf("key%08d", j)), val)
		}
		w.Finish()
	}
}
