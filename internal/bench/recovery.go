package bench

import (
	"fmt"
	"io"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/pmem"
)

// RecoveryPoint is one (record count, recovery time) measurement.
type RecoveryPoint struct {
	Records     int
	RecoverTime time.Duration
	VerifyTime  time.Duration
}

// RecoveryResult is experiment E6: locating persisted packet metadata
// after a crash (§5.1's recovery requirement), as a function of store
// size.
type RecoveryResult struct {
	Points []RecoveryPoint
}

// RunRecovery loads each record count, crashes the region, and times
// core.Open's scan-and-rebuild plus a full integrity scrub.
func RunRecovery(profile calib.Profile, counts []int) (RecoveryResult, error) {
	if len(counts) == 0 {
		counts = []int{1000, 10000, 100000}
	}
	var out RecoveryResult
	for _, n := range counts {
		slots := 1
		for slots < n*2 {
			slots *= 2
		}
		cfg := core.Config{MetaSlots: slots, DataSlots: slots, ChecksumReuse: true}
		r := pmem.New(cfg.RegionSize(), profile)
		s, err := core.Open(r, cfg)
		if err != nil {
			return out, err
		}
		val := make([]byte, 1024)
		for i := 0; i < n; i++ {
			if err := s.Put([]byte(fmt.Sprintf("key%012d", i)), val); err != nil {
				return out, fmt.Errorf("load %d/%d: %w", i, n, err)
			}
		}
		r.Crash(int64(n))

		t0 := time.Now()
		s2, err := core.Open(r, cfg)
		if err != nil {
			return out, err
		}
		recoverTime := time.Since(t0)
		if s2.Len() != n {
			return out, fmt.Errorf("recovered %d of %d records", s2.Len(), n)
		}
		t1 := time.Now()
		bad, err := s2.Verify()
		if err != nil || len(bad) != 0 {
			return out, fmt.Errorf("verify: %d bad, %v", len(bad), err)
		}
		out.Points = append(out.Points, RecoveryPoint{
			Records: n, RecoverTime: recoverTime, VerifyTime: time.Since(t1),
		})
	}
	return out, nil
}

// Print renders the recovery scaling table.
func (r RecoveryResult) Print(w io.Writer) {
	fprintf(w, "Recovery (E6): crash, rescan, rebuild index, scrub integrity\n")
	fprintf(w, "%12s %15s %15s\n", "records", "recover [ms]", "verify [ms]")
	for _, p := range r.Points {
		fprintf(w, "%12d %15.2f %15.2f\n", p.Records,
			float64(p.RecoverTime.Microseconds())/1000,
			float64(p.VerifyTime.Microseconds())/1000)
	}
}

// MetaSizePoint is one slot-size measurement of experiment E7.
type MetaSizePoint struct {
	SlotSize int
	PutRTT   time.Duration
	GetRTT   time.Duration
}

// MetaSizeResult is experiment E7: metadata compactness vs operation
// latency (§5.1 argues compact, cache-friendly metadata matters more on
// PM than on DRAM).
type MetaSizeResult struct {
	Requests int
	Points   []MetaSizePoint
}

// RunMetaSize sweeps the persistent metadata slot size.
func RunMetaSize(profile calib.Profile, requests int, sizes []int) (MetaSizeResult, error) {
	if requests <= 0 {
		requests = 1500
	}
	if len(sizes) == 0 {
		sizes = []int{128, 256, 512}
	}
	out := MetaSizeResult{Requests: requests}
	for _, sz := range sizes {
		cfg := storeCfgLarge()
		cfg.SlotSize = sz
		cfg.MetaSlots = 1 << 16
		cfg.DataSlots = 1 << 16
		d, err := deploy(deployOptions{profile: profile, kind: kindPktStore,
			storeCfg: cfg, zeroCopy: true})
		if err != nil {
			return out, err
		}
		putRTT, err := measureRTT(d, requests, 1024)
		if err != nil {
			d.close()
			return out, err
		}
		getRTT, err := measureGetRTT(d, requests)
		d.close()
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, MetaSizePoint{SlotSize: sz, PutRTT: putRTT, GetRTT: getRTT})
	}
	return out, nil
}

// Print renders the slot-size sweep.
func (r MetaSizeResult) Print(w io.Writer) {
	fprintf(w, "Metadata size (E7): persistent packet-metadata slot size vs RTT (%d requests)\n", r.Requests)
	fprintf(w, "%12s %14s %14s\n", "slot [B]", "PUT RTT [us]", "GET RTT [us]")
	for _, p := range r.Points {
		fprintf(w, "%12d %14.2f %14.2f\n", p.SlotSize, us(p.PutRTT), us(p.GetRTT))
	}
}
