package bench

import (
	"testing"

	"packetstore/internal/calib"
)

func BenchmarkProfNoveLSMPut(b *testing.B) {
	d, err := deploy(deployOptions{profile: calib.Off(), kind: kindNoveLSM})
	if err != nil {
		b.Fatal(err)
	}
	defer d.close()
	if _, err := measureRTT(d, b.N, 1024); err != nil {
		b.Fatal(err)
	}
}
