package bench

import (
	"io"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/wrkgen"
)

// ScalingPoint is one (shards, connections) measurement.
type ScalingPoint struct {
	Shards int
	Conns  int
	// Throughput is measured req/s.
	Throughput float64
	MeanLatUs  float64
	P99LatUs   float64
	// Puts / ZeroCopyPuts verify the hash-alignment invariant held: with
	// aligned clients every PUT should take the zero-copy path.
	Puts         uint64
	ZeroCopyPuts uint64
	// LoopRequests / LoopBusyUs are each event loop's request count and
	// serving wall time. Their spread shows how evenly RSS + key
	// hashing split the load over the shards.
	LoopRequests []uint64
	LoopBusyUs   []float64
}

// Balance reports how evenly requests spread over the loops: total
// requests over (loops x busiest loop). 1.0 is a perfect split; 1/N
// means one loop served everything. Wall-clock speedup on a host with
// >= shards idle CPUs approaches shards x Balance.
func (p ScalingPoint) Balance() float64 {
	var busiest, total uint64
	for _, n := range p.LoopRequests {
		total += n
		if n > busiest {
			busiest = n
		}
	}
	if busiest == 0 {
		return 0
	}
	return float64(total) / (float64(len(p.LoopRequests)) * float64(busiest))
}

// ScalingResult reproduces experiment E8: continual 1KB writes against
// the packetstore partitioned 1..N ways, with NIC RSS queues, PM
// partitions and server event loops scaled together. The single-shard
// row is exactly the Figure 2/3 packetstore configuration; the paper
// (§5.2) leaves multicore scaling as future work, so this measures the
// design's answer.
type ScalingResult struct {
	Duration time.Duration
	Shards   []int
	Conns    []int
	Points   []ScalingPoint
}

// RunScaling sweeps shard counts × connection counts over the sharded
// packetstore deployment with RSS-aligned load.
func RunScaling(profile calib.Profile, shards, conns []int, duration time.Duration) (ScalingResult, error) {
	if len(shards) == 0 {
		shards = []int{1, 2, 4, 8}
	}
	if len(conns) == 0 {
		conns = []int{25, 100}
	}
	if duration <= 0 {
		duration = time.Second
	}
	out := ScalingResult{Duration: duration, Shards: shards, Conns: conns}

	for _, ns := range shards {
		for _, nc := range conns {
			// Partition a constant total store geometry: N shards of
			// 1/N-th the slots each, so the sweep varies parallelism,
			// not capacity or memory footprint.
			cfg := storeCfgLarge()
			cfg.MetaSlots /= ns
			cfg.DataSlots /= ns
			d, err := deploy(deployOptions{
				profile: profile, kind: kindPktStore, zeroCopy: true,
				shards: ns, storeCfg: cfg,
			})
			if err != nil {
				return out, err
			}
			res, err := wrkgen.Run(d.align(wrkgen.Config{
				Conns: nc, Duration: duration, Warmup: duration / 5,
				ValueSize: 1024, KeySpace: 1 << 16, KeyDist: wrkgen.DistSeq,
				PutPct: 100, Seed: 7,
			}), d.dial)
			st := d.srv.Stats()
			var busy []float64
			var lreqs []uint64
			for _, ls := range d.srv.LoopStats() {
				busy = append(busy, us(ls.BusyTime))
				lreqs = append(lreqs, ls.Requests)
			}
			d.close()
			if err != nil {
				return out, err
			}
			out.Points = append(out.Points, ScalingPoint{
				Shards: ns, Conns: nc,
				Throughput: res.Throughput(),
				MeanLatUs:  us(res.Hist.Mean()),
				P99LatUs:   us(res.Hist.Percentile(99)),
				Puts:       st.Puts, ZeroCopyPuts: st.ZeroCopyPuts,
				LoopRequests: lreqs, LoopBusyUs: busy,
			})
		}
	}
	return out, nil
}

// point returns the measurement for (shards, conns), or nil.
func (r ScalingResult) point(ns, nc int) *ScalingPoint {
	for i := range r.Points {
		if r.Points[i].Shards == ns && r.Points[i].Conns == nc {
			return &r.Points[i]
		}
	}
	return nil
}

// Print renders the sweep as throughput/latency tables plus speedups
// over the single-shard row.
func (r ScalingResult) Print(w io.Writer) {
	fprintf(w, "Scaling: continual 1KB writes, shards x connections (%v per point)\n", r.Duration)
	fprintf(w, "\nThroughput (k req/s):\n%-10s", "shards")
	for _, nc := range r.Conns {
		fprintf(w, "%8d co", nc)
	}
	fprintf(w, "\n")
	for _, ns := range r.Shards {
		fprintf(w, "%-10d", ns)
		for _, nc := range r.Conns {
			if p := r.point(ns, nc); p != nil {
				fprintf(w, "%11.1f", p.Throughput/1000)
			}
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nMean latency (us):\n%-10s", "shards")
	for _, nc := range r.Conns {
		fprintf(w, "%8d co", nc)
	}
	fprintf(w, "\n")
	for _, ns := range r.Shards {
		fprintf(w, "%-10d", ns)
		for _, nc := range r.Conns {
			if p := r.point(ns, nc); p != nil {
				fprintf(w, "%11.1f", p.MeanLatUs)
			}
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nSpeedup vs 1 shard (wall-clock), load balance, zero-copy PUT fraction:\n")
	for _, nc := range r.Conns {
		base := r.point(r.Shards[0], nc)
		if base == nil || base.Throughput <= 0 {
			continue
		}
		for _, ns := range r.Shards {
			p := r.point(ns, nc)
			if p == nil {
				continue
			}
			zc := 0.0
			if p.Puts > 0 {
				zc = float64(p.ZeroCopyPuts) / float64(p.Puts) * 100
			}
			fprintf(w, "  %3d conns, %d shards: %.2fx, balance %.2f, %.0f%% zero-copy\n",
				nc, ns, p.Throughput/base.Throughput, p.Balance(), zc)
		}
	}
	fprintf(w, "(balance = total requests / (loops x busiest loop); wall-clock speedup\n")
	fprintf(w, " approaches shards x balance once the host has >= shards idle CPUs)\n")
}
