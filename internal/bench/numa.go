package bench

import (
	"io"
	"sort"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/kvserver"
	"packetstore/internal/wrkgen"
)

// NUMAPoint is one measurement of the locality experiment: a fixed
// sharded deployment whose PM partitions, RSS queue interrupts and
// event loops are placed on sockets per Placement.
type NUMAPoint struct {
	// Placement names the shape under test:
	//
	//	flat        — no NUMA model (Nodes=1): the pre-change baseline the
	//	              aligned point must match, proving the model is a
	//	              no-op when off.
	//	aligned     — shard i's partition, queue and loop all on node
	//	              i mod Nodes: every PM line a loop touches is local.
	//	interleaved — partitions page-striped across nodes (the OS
	//	              first-touch-free default), loops on i mod Nodes.
	//	anti        — partitions on i mod Nodes but loops on
	//	              (i+1) mod Nodes: every line is a cross-socket miss.
	Placement string
	Conns     int
	// Throughput is measured req/s.
	Throughput float64
	MeanLatUs  float64
	P50LatUs   float64
	P99LatUs   float64
	// Requests completed during the measured window.
	Requests uint64
	// LocalLines/RemoteLines are the region's placement-accounting
	// deltas over the run: cache lines charged at the caller's own
	// node's rate vs at the cross-socket rate.
	LocalLines  uint64
	RemoteLines uint64
	// RemoteShare = RemoteLines / (LocalLines + RemoteLines).
	RemoteShare float64
	// RemoteExtraUs is the modeled cross-socket surcharge per completed
	// request, in microseconds — the latency the placement left on the
	// table relative to an all-local layout.
	RemoteExtraUs float64
}

// NUMAResult reproduces experiment E16: the same sharded deployment and
// hash-aligned 1KB PUT workload swept over socket placements, at a low
// and a high connection count. Aligned placement should recover at
// least the modeled remote penalty in p50 relative to anti-aligned,
// with a ~0% remote-line share against anti-aligned's majority share.
//
// Each placement runs Rounds times, interleaved round-robin with the
// others (deployment N+1's page faults and GC debt systematically tax
// whichever placement happens to run next on a 1-CPU host, so
// back-to-back repetition would bias by sweep position). The reported
// latencies are the median-p50 round; the line counters aggregate all
// rounds.
type NUMAResult struct {
	Duration time.Duration
	Shards   int
	Nodes    int
	Rounds   int
	Points   []NUMAPoint
}

func (r NUMAResult) point(placement string, conns int) *NUMAPoint {
	for i := range r.Points {
		if r.Points[i].Placement == placement && r.Points[i].Conns == conns {
			return &r.Points[i]
		}
	}
	return nil
}

// RecoveredP50Us is the headline number at a connection count: the p50
// latency aligned placement recovered relative to anti-aligned.
func (r NUMAResult) RecoveredP50Us(conns int) float64 {
	al, anti := r.point("aligned", conns), r.point("anti", conns)
	if al == nil || anti == nil {
		return 0
	}
	return anti.P50LatUs - al.P50LatUs
}

// RecoveredMeanUs is the mean-latency recovery at a connection count.
// On hosts whose histogram buckets near the operating point are wider
// than the modeled penalty, the mean resolves the contrast the
// quantized p50 cannot.
func (r NUMAResult) RecoveredMeanUs(conns int) float64 {
	al, anti := r.point("aligned", conns), r.point("anti", conns)
	if al == nil || anti == nil {
		return 0
	}
	return anti.MeanLatUs - al.MeanLatUs
}

// ModeledPenaltyUs is the per-op cross-socket surcharge the model
// charged the anti-aligned placement — the floor RecoveredP50Us should
// clear.
func (r NUMAResult) ModeledPenaltyUs(conns int) float64 {
	anti := r.point("anti", conns)
	if anti == nil {
		return 0
	}
	return anti.RemoteExtraUs
}

// RunNUMA sweeps socket placements over a 4-shard deployment on a
// modeled 2-socket machine, at 16 and 100 connections. rounds <= 0
// selects the default of 5 interleaved rounds per placement.
func RunNUMA(profile calib.Profile, shards, nodes int, duration time.Duration, rounds int) (NUMAResult, error) {
	if shards <= 1 {
		shards = 4
	}
	if nodes <= 1 {
		nodes = 2
	}
	if duration <= 0 {
		duration = time.Second
	}
	out := NUMAResult{Duration: duration, Shards: shards, Nodes: nodes}

	same := make([]int, shards)
	next := make([]int, shards)
	for i := range same {
		same[i] = i % nodes
		next[i] = (i + 1) % nodes
	}
	type shape struct {
		name       string
		numaNodes  int
		shardNode  []int
		loopNodes  []int
		queueNodes []int
	}
	shapes := []shape{
		{name: "flat"},
		{name: "aligned", numaNodes: nodes, shardNode: same, loopNodes: same, queueNodes: same},
		{name: "interleaved", numaNodes: nodes, shardNode: nil, loopNodes: same, queueNodes: same},
		{name: "anti", numaNodes: nodes, shardNode: same, loopNodes: next, queueNodes: next},
	}
	if rounds <= 0 {
		rounds = 5
	}
	out.Rounds = rounds
	type agg struct {
		reps     []NUMAPoint
		requests uint64
		local    uint64
		remote   uint64
		extra    time.Duration
	}
	for _, conns := range []int{16, 100} {
		aggs := make([]agg, len(shapes))
		for round := 0; round < rounds; round++ {
			for i, sh := range shapes {
				cfg := storeCfgLarge()
				cfg.MetaSlots /= shards
				cfg.DataSlots /= shards
				d, err := deploy(deployOptions{
					profile: profile, kind: kindPktStore, zeroCopy: true,
					shards: shards, storeCfg: cfg,
					// Stealing stays off: a stolen cycle runs a shard from the
					// thief's socket, which is cross-node traffic by design and
					// would blur the placement comparison (E12 and the healthz
					// cross-steal counters cover the scheduler side).
					srvCfg:    kvserver.Config{MaxBatch: 16},
					numaNodes: sh.numaNodes, numaShardNode: sh.shardNode,
					numaLoopNodes: sh.loopNodes, numaQueueNodes: sh.queueNodes,
				})
				if err != nil {
					return out, err
				}
				before := d.pm.Stats()
				res, err := wrkgen.Run(d.align(wrkgen.Config{
					Conns: conns, Duration: duration, Warmup: duration / 5,
					ValueSize: 1024, KeySpace: 1 << 14, PutPct: 100, Seed: 7,
					KeyDist: wrkgen.DistSeq,
				}), d.dial)
				after := d.pm.Stats()
				d.close()
				if err != nil {
					return out, err
				}
				a := &aggs[i]
				a.reps = append(a.reps, NUMAPoint{
					Placement: sh.name, Conns: conns,
					Throughput: res.Throughput(),
					MeanLatUs:  us(res.Hist.Mean()),
					P50LatUs:   us(res.Hist.Percentile(50)),
					P99LatUs:   us(res.Hist.Percentile(99)),
				})
				a.requests += res.Requests
				a.local += after.LocalLines - before.LocalLines
				a.remote += after.RemoteLines - before.RemoteLines
				a.extra += after.RemoteExtra - before.RemoteExtra
			}
		}
		for i := range aggs {
			a := &aggs[i]
			// Median round by p50: position-in-sweep effects (page-fault
			// and GC debt from the previous deployment) land on different
			// rounds for different placements; the median sheds them.
			sort.Slice(a.reps, func(x, y int) bool { return a.reps[x].P50LatUs < a.reps[y].P50LatUs })
			p := a.reps[len(a.reps)/2]
			p.Requests = a.requests
			p.LocalLines, p.RemoteLines = a.local, a.remote
			if total := a.local + a.remote; total > 0 {
				p.RemoteShare = float64(a.remote) / float64(total)
			}
			if a.requests > 0 {
				p.RemoteExtraUs = us(a.extra) / float64(a.requests)
			}
			out.Points = append(out.Points, p)
		}
	}
	return out, nil
}

// Print renders the locality experiment.
func (r NUMAResult) Print(w io.Writer) {
	fprintf(w, "NUMA placement: %d shards on %d modeled sockets, hash-aligned 1KB PUTs (%v per point, median of %d interleaved rounds)\n",
		r.Shards, r.Nodes, r.Duration, r.Rounds)
	fprintf(w, "\n%-18s %6s %12s %10s %10s %10s %8s %10s\n",
		"placement", "conns", "req/s", "mean us", "p50 us", "p99 us", "remote%", "extra us")
	for _, p := range r.Points {
		fprintf(w, "%-18s %6d %12.0f %10.1f %10.1f %10.1f %8.1f %10.3f\n",
			p.Placement, p.Conns, p.Throughput, p.MeanLatUs, p.P50LatUs, p.P99LatUs,
			p.RemoteShare*100, p.RemoteExtraUs)
	}
	for _, conns := range []int{16, 100} {
		if rec, mod := r.RecoveredP50Us(conns), r.ModeledPenaltyUs(conns); mod > 0 {
			fprintf(w, "\n%d conns: aligned recovered %.1f us of p50, %.1f us of mean vs anti-aligned (modeled remote penalty %.1f us/op).",
				conns, rec, r.RecoveredMeanUs(conns), mod)
		}
	}
	fprintf(w, "\n")
}
