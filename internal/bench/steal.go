package bench

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/kvclient"
	"packetstore/internal/kvserver"
	"packetstore/internal/nic"
	"packetstore/internal/wrkgen"
)

// StealPoint is one measurement of the work-stealing experiment: a fixed
// deployment and load shape with the steal scheduler on or off.
type StealPoint struct {
	// Steal is the scheduler knob under test.
	Steal bool
	// Skewed marks the connection-placement-skewed load; false is the
	// uniform sanity row (RSS spreads connections evenly).
	Skewed bool
	Conns  int
	// Throughput is measured req/s.
	Throughput float64
	MeanLatUs  float64
	P50LatUs   float64
	P99LatUs   float64
	// Steals/StolenOps/StealAborts are the scheduler's own counters.
	Steals      uint64
	StolenOps   uint64
	StealAborts uint64
	// Puts / ZeroCopyPuts / ZeroCopyFallbacks verify the ingest path: a
	// stolen cycle still runs zero-copy when the payload landed in the
	// victim shard's rx pool, and falls back to the copy path (counted)
	// otherwise.
	Puts              uint64
	ZeroCopyPuts      uint64
	ZeroCopyFallbacks uint64
	// LoopRequests is each event loop's request count — with stealing on,
	// idle loops' counts rise because stolen cycles are charged to the
	// thief.
	LoopRequests []uint64
}

// Balance reports how evenly requests spread over the loops (see
// ScalingPoint.Balance): 1.0 is a perfect split, 1/N is one loop serving
// everything. Under placement skew, stealing should raise this.
func (p StealPoint) Balance() float64 {
	var busiest, total uint64
	for _, n := range p.LoopRequests {
		total += n
		if n > busiest {
			busiest = n
		}
	}
	if busiest == 0 {
		return 0
	}
	return float64(total) / (float64(len(p.LoopRequests)) * float64(busiest))
}

// StealResult reproduces experiment E12: a skewed workload — most
// connections RSS-hash to queue 0, and hash-aligned keys follow their
// connections, so shard 0's loop saturates while its peers idle — run
// with the work-stealing scheduler off and on, plus a uniform sanity row
// checking that stealing is free when there is nothing to steal.
type StealResult struct {
	Duration time.Duration
	Shards   int
	Conns    int
	// HotFrac is the fraction of connections pinned to queue 0.
	HotFrac float64
	// ZipfS is the per-connection key skew exponent.
	ZipfS  float64
	Points []StealPoint
}

func (r StealResult) point(steal, skewed bool) *StealPoint {
	for i := range r.Points {
		if r.Points[i].Steal == steal && r.Points[i].Skewed == skewed {
			return &r.Points[i]
		}
	}
	return nil
}

// P99Ratio is the headline number: skewed p99 with stealing over skewed
// p99 without. Below 1.0, stealing helped.
func (r StealResult) P99Ratio() float64 {
	off, on := r.point(false, true), r.point(true, true)
	if off == nil || on == nil || off.P99LatUs <= 0 {
		return 0
	}
	return on.P99LatUs / off.P99LatUs
}

// skewDialer pins roughly hotFrac of the workload's connections to RSS
// queue 0 by redialing until the ephemeral port hashes there; the rest
// round-robin over the remaining queues. This is connection-placement
// skew — the failure mode RSS cannot fix, since the NIC hashes the
// 4-tuple, not the key.
func skewDialer(d *deployment, shards int, hotFrac float64) wrkgen.Dialer {
	var seq atomic.Int64
	var mu sync.Mutex
	serverIP := d.tb.Server.IP
	hot := int(hotFrac * 100)
	return func() (kvclient.Conn, error) {
		i := int(seq.Add(1) - 1)
		want := 0
		if i%100 >= hot {
			want = 1 + i%(shards-1)
		}
		// Serialize the redial loop: N workers each burning ~shards dials
		// at once would overflow the listener backlog, and a backlog
		// overflow resets the connection only after the client's dial has
		// already succeeded — poisoning a connection we would hand out.
		mu.Lock()
		defer mu.Unlock()
		var lastErr error
		for attempt := 0; attempt < 4096; attempt++ {
			c, err := d.tb.Dial(80)
			if err != nil {
				lastErr = err
				time.Sleep(200 * time.Microsecond)
				continue
			}
			ip, port := c.LocalAddr()
			if nic.RSSQueue(ip, serverIP, port, 80, shards) == want {
				return c, nil
			}
			c.Close()
		}
		return nil, fmt.Errorf("bench: no connection landed on queue %d (last dial error: %v)", want, lastErr)
	}
}

// RunSteal sweeps the steal knob over the skewed deployment, then runs
// the uniform sanity point with stealing on.
func RunSteal(profile calib.Profile, shards, conns int, duration time.Duration) (StealResult, error) {
	if shards <= 1 {
		shards = 4
	}
	if conns <= 0 {
		conns = 100
	}
	if duration <= 0 {
		duration = time.Second
	}
	const hotFrac, zipfS = 0.7, 1.2
	out := StealResult{
		Duration: duration, Shards: shards, Conns: conns,
		HotFrac: hotFrac, ZipfS: zipfS,
	}

	type shape struct{ steal, skewed bool }
	for _, sh := range []shape{{false, true}, {true, true}, {true, false}} {
		cfg := storeCfgLarge()
		cfg.MetaSlots /= shards
		cfg.DataSlots /= shards
		d, err := deploy(deployOptions{
			profile: profile, kind: kindPktStore, zeroCopy: true,
			shards: shards, storeCfg: cfg,
			srvCfg: kvserver.Config{
				MaxBatch: 16,
				Steal:    kvserver.StealConfig{Enabled: sh.steal, MinDepth: 4, Poll: 200 * time.Microsecond},
			},
		})
		if err != nil {
			return out, err
		}
		wcfg := d.align(wrkgen.Config{
			Conns: conns, Duration: duration, Warmup: duration / 5,
			ValueSize: 1024, KeySpace: 1 << 14, PutPct: 100, Seed: 7,
			KeyDist: wrkgen.DistZipf, ZipfS: zipfS,
		})
		dial := d.dial
		if sh.skewed {
			dial = skewDialer(d, shards, hotFrac)
		}
		res, err := wrkgen.Run(wcfg, dial)
		st := d.srv.Stats()
		var lreqs []uint64
		for _, ls := range d.srv.LoopStats() {
			lreqs = append(lreqs, ls.Requests)
		}
		d.close()
		if err != nil {
			return out, err
		}
		out.Points = append(out.Points, StealPoint{
			Steal: sh.steal, Skewed: sh.skewed, Conns: conns,
			Throughput: res.Throughput(),
			MeanLatUs:  us(res.Hist.Mean()),
			P50LatUs:   us(res.Hist.Percentile(50)),
			P99LatUs:   us(res.Hist.Percentile(99)),
			Steals:     st.Steals, StolenOps: st.StolenOps, StealAborts: st.StealAborts,
			Puts: st.Puts, ZeroCopyPuts: st.ZeroCopyPuts,
			ZeroCopyFallbacks: st.ZeroCopyFallbacks,
			LoopRequests:      lreqs,
		})
	}
	return out, nil
}

// Print renders the steal experiment.
func (r StealResult) Print(w io.Writer) {
	fprintf(w, "Work stealing: %d shards, %d conns, %.0f%% pinned to queue 0, Zipf s=%.1f keys (%v per point)\n",
		r.Shards, r.Conns, r.HotFrac*100, r.ZipfS, r.Duration)
	fprintf(w, "\n%-22s %12s %10s %10s %10s %8s %9s\n",
		"point", "req/s", "mean us", "p50 us", "p99 us", "balance", "steals")
	for _, p := range r.Points {
		name := "skewed"
		if !p.Skewed {
			name = "uniform"
		}
		if p.Steal {
			name += " +steal"
		}
		fprintf(w, "%-22s %12.0f %10.1f %10.1f %10.1f %8.2f %9d\n",
			name, p.Throughput, p.MeanLatUs, p.P50LatUs, p.P99LatUs, p.Balance(), p.Steals)
	}
	if ratio := r.P99Ratio(); ratio > 0 {
		fprintf(w, "\nSkewed p99 with stealing = %.2fx of without.\n", ratio)
	}
	if p := r.point(true, true); p != nil && p.Puts > 0 {
		fprintf(w, "Skewed+steal: %d stolen cycles (%d ops), %d aborts, %.0f%% zero-copy PUTs, %d copy fallbacks.\n",
			p.Steals, p.StolenOps, p.StealAborts,
			float64(p.ZeroCopyPuts)/float64(p.Puts)*100, p.ZeroCopyFallbacks)
	}
}
