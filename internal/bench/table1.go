package bench

import (
	"io"
	"time"

	"packetstore/internal/calib"
)

// Table1Result reproduces Table 1: the latency breakdown of a 1KB write
// RTT against the NoveLSM baseline.
//
// Methodology follows the paper: the networking row is the RTT against a
// discarding server; persistence is the RTT difference between the full
// configuration and one with the PM flush/fence latencies zeroed; the
// data-management rows come from direct instrumentation of the storage
// stack's phases (which the paper obtained by selectively disabling
// operations).
type Table1Result struct {
	Requests int

	NetworkingRTT time.Duration // discard server
	TotalRTT      time.Duration // full NoveLSM-sim
	NoPersistRTT  time.Duration // flushes free

	// Data-management breakdown (per request).
	RequestPrep time.Duration
	Checksum    time.Duration
	DataCopy    time.Duration
	AllocInsert time.Duration

	// Derived aggregates.
	DataMgmt    time.Duration // sum of the four rows above
	Persistence time.Duration // instrumented flush+fence time per put
	// PersistenceBySubtraction cross-checks Persistence with the paper's
	// methodology (full RTT minus flush-free RTT); it carries the full
	// run-to-run noise of two RTT measurements.
	PersistenceBySubtraction time.Duration
}

// RunTable1 executes experiment E1.
func RunTable1(profile calib.Profile, requests int) (Table1Result, error) {
	if requests <= 0 {
		requests = 2000
	}
	out := Table1Result{Requests: requests}

	// 1. Networking only.
	d, err := deploy(deployOptions{profile: profile, kind: kindDiscard})
	if err != nil {
		return out, err
	}
	out.NetworkingRTT, err = measureRTT(d, requests, 1024)
	d.close()
	if err != nil {
		return out, err
	}

	// 2. Full storage stack, with phase instrumentation.
	d, err = deploy(deployOptions{profile: profile, kind: kindNoveLSM})
	if err != nil {
		return out, err
	}
	d.db.ResetBreakdown()
	out.TotalRTT, err = measureRTT(d, requests, 1024)
	bd := d.db.Breakdown()
	d.close()
	if err != nil {
		return out, err
	}
	if bd.Ops > 0 {
		ops := time.Duration(bd.Ops)
		out.RequestPrep = bd.Prep / ops
		out.Checksum = bd.Checksum / ops
		out.DataCopy = bd.Insert.Copy / ops
		out.AllocInsert = (bd.Insert.Search + bd.Insert.Alloc + bd.Insert.Link) / ops
		out.Persistence = bd.Insert.Flush / ops
	}
	out.DataMgmt = out.RequestPrep + out.Checksum + out.DataCopy + out.AllocInsert

	// 3. Persistence disabled (flush/fence free).
	d, err = deploy(deployOptions{profile: profile, kind: kindNoveLSM, noPersist: true})
	if err != nil {
		return out, err
	}
	out.NoPersistRTT, err = measureRTT(d, requests, 1024)
	d.close()
	if err != nil {
		return out, err
	}
	if out.TotalRTT > out.NoPersistRTT {
		out.PersistenceBySubtraction = out.TotalRTT - out.NoPersistRTT
	}
	return out, nil
}

// Print renders the result in the paper's Table 1 format.
func (r Table1Result) Print(w io.Writer) {
	fprintf(w, "Table 1: latency breakdown of RTT for a 1KB write (%d requests)\n", r.Requests)
	fprintf(w, "%-12s %-38s %10s\n", "Overhead", "Operation", "Time [us]")
	fprintf(w, "%-12s %-38s %10.2f\n", "Networking", "TCP/IP & HTTP both hosts + fabric", us(r.NetworkingRTT))
	fprintf(w, "%-12s %-38s %10.2f\n", "Data mgmt.", "Request preparation", us(r.RequestPrep))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "Checksum calculation", us(r.Checksum))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "Data copy", us(r.DataCopy))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "Buffer allocation and insertion", us(r.AllocInsert))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "(sum)", us(r.DataMgmt))
	fprintf(w, "%-12s %-38s %10.2f\n", "Persistence", "Flush CPU caches to PM", us(r.Persistence))
	fprintf(w, "%-12s %-38s %10.2f\n", "Total", "(measured full-stack RTT)", us(r.TotalRTT))
	fprintf(w, "cross-check: persistence by RTT subtraction = %.2f us (noisier)\n", us(r.PersistenceBySubtraction))
}
