package bench

import (
	"testing"
	"time"

	"packetstore/internal/calib"
)

// TestRunEraseSmoke runs a tiny erase sweep through the bench wrapper;
// the full sweep is pktbench -experiment erase.
func TestRunEraseSmoke(t *testing.T) {
	res, err := RunErase(calib.Off(), 6, 1000, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		for _, note := range res.FailureNotes {
			t.Error(note)
		}
		t.Fatalf("erase sweep failed: %d failures in %d runs", res.Failures, res.Runs)
	}
	if res.SingleLossRuns == 0 || res.TwoLossRuns == 0 {
		t.Fatalf("sweep shape degenerate: %d single-loss, %d two-loss",
			res.SingleLossRuns, res.TwoLossRuns)
	}
	if res.Reconstructions == 0 {
		t.Fatal("no records reconstructed from parity")
	}
	if res.Rejoins == 0 {
		t.Fatal("no operator rejoin samples recorded")
	}
	if res.BaselineThroughput <= 0 || res.ParityThroughput <= 0 {
		t.Fatalf("throughput phases empty: base %.0f parity %.0f",
			res.BaselineThroughput, res.ParityThroughput)
	}
	if res.ParityWritesPerOp <= 0 {
		t.Fatal("parity deployment folded no parity lines on the write path")
	}
	if res.ColdRebuildUs <= 0 || res.WarmRebuildUs <= 0 || res.ReconstructRebuildUs <= 0 {
		t.Fatalf("rebuild timings empty: cold %.0f warm %.0f reconstruct %.0f",
			res.ColdRebuildUs, res.WarmRebuildUs, res.ReconstructRebuildUs)
	}
	// Timing comparisons (warm < cold) are asserted by the full pktbench
	// run, not here — a loaded CI host makes microsecond-scale ordering
	// flaky at this store size.
}
