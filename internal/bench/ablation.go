package bench

import (
	"io"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
)

// AblationRow is one configuration of experiment E4.
type AblationRow struct {
	Name     string
	MeanRTT  time.Duration
	Checksum time.Duration // per-request software checksum time in the store
	DataCopy time.Duration // per-request copy time in the store
}

// AblationResult quantifies each packetstore mechanism by disabling it.
type AblationResult struct {
	Requests int
	Rows     []AblationRow
}

// RunAblation executes experiment E4: full packetstore, checksum reuse
// off, and zero-copy off (DRAM receive pool, values copied into PM).
func RunAblation(profile calib.Profile, requests int) (AblationResult, error) {
	if requests <= 0 {
		requests = 2000
	}
	out := AblationResult{Requests: requests}
	cases := []struct {
		name     string
		cfg      core.Config
		zeroCopy bool
	}{
		{"full (reuse+zero-copy)", storeCfgLarge(), true},
		{"checksum reuse off", func() core.Config {
			c := storeCfgLarge()
			c.ChecksumReuse = false
			return c
		}(), true},
		{"zero-copy off (rx in DRAM)", storeCfgLarge(), false},
	}
	for _, cs := range cases {
		cs.cfg.Breakdown = true // rows are per-phase timings
		d, err := deploy(deployOptions{
			profile: profile, kind: kindPktStore,
			storeCfg: cs.cfg, zeroCopy: cs.zeroCopy,
		})
		if err != nil {
			return out, err
		}
		d.store.ResetBreakdown()
		rtt, err := measureRTT(d, requests, 1024)
		bd := d.store.Breakdown()
		d.close()
		if err != nil {
			return out, err
		}
		row := AblationRow{Name: cs.name, MeanRTT: rtt}
		if bd.Ops > 0 {
			ops := time.Duration(bd.Ops)
			row.Checksum = bd.Checksum / ops
			row.DataCopy = bd.Copy / ops
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Print renders the ablation table.
func (r AblationResult) Print(w io.Writer) {
	fprintf(w, "Ablation (E4): packetstore mechanisms, 1KB writes (%d requests)\n", r.Requests)
	fprintf(w, "%-30s %12s %14s %12s\n", "configuration", "RTT [us]", "checksum [us]", "copy [us]")
	for _, row := range r.Rows {
		fprintf(w, "%-30s %12.2f %14.2f %12.2f\n",
			row.Name, us(row.MeanRTT), us(row.Checksum), us(row.DataCopy))
	}
}
