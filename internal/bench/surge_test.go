package bench

import (
	"strings"
	"testing"
	"time"

	"packetstore/internal/calib"
)

// TestSurgeSmoke is the CI gate on overload control: at 2x capacity
// with the controller on, the server must shed measurably (doomed-work
// drops, CoDel sheds, or client-side lapses) while goodput holds a
// floor relative to the sweep's peak. Short mode shrinks the sweep to
// the 1x and 2x control-on points plus the 2x baseline.
func TestSurgeSmoke(t *testing.T) {
	prof := calib.Off()
	shards, conns := 2, 16
	dur := 400 * time.Millisecond
	factors := []float64{1, 2}
	if testing.Short() {
		dur = 250 * time.Millisecond
	}
	res, err := RunSurge(prof, shards, conns, dur, factors)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityRps <= 0 || res.Budget <= 0 {
		t.Fatalf("calibration failed: %+v", res)
	}
	p2 := res.point(2, true)
	if p2 == nil || p2.Offered == 0 {
		t.Fatalf("no 2x control point: %+v", res.Points)
	}
	if p2.Shed+p2.ClientDrops+p2.SrvExpired+p2.SrvCoDelSheds == 0 {
		t.Fatalf("2x overload shed nothing: %+v", *p2)
	}
	// Goodput floor: the controller must keep a usable fraction of peak
	// at 2x. Full mode only — short mode runs under -race in CI, whose
	// ~10x slowdown makes the calibrated capacity stale by sweep time, so
	// performance ratios are not assertable there (the mechanism
	// assertions above still are).
	if !testing.Short() {
		if frac := res.GoodputFraction(2, true); frac < 0.5 {
			t.Fatalf("2x goodput %.0f%% of peak, want >= 50%%", frac*100)
		}
	}
	// Containment: the surplus clients must have tripped breakers, and
	// the healthz view must carry the tally.
	c := res.Containment
	if c.BreakerOpens == 0 {
		t.Fatalf("no breaker opens in containment phase: %+v", c)
	}
	if c.HealthOverload == nil || c.HealthOverload.BreakerOpens != c.BreakerOpens {
		t.Fatalf("healthz overload section missing breaker tally: %+v", c)
	}
	var sb strings.Builder
	res.Print(&sb)
	if sb.Len() == 0 {
		t.Fatal("empty Print")
	}
}
