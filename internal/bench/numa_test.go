package bench

import (
	"bytes"
	"testing"
	"time"

	"packetstore/internal/calib"
)

// TestRunNUMASmoke runs a small locality sweep through the bench
// wrapper; the full measurement is pktbench -experiment numa. It
// validates the deterministic, counter-based properties — placement
// shapes the remote-line share exactly, the modeled penalty is
// charged, flat never touches the NUMA counters — not wall-clock
// latency contrasts, which a timeshared 1-CPU host (and the ~10x
// -race slowdown in CI) cannot resolve at smoke durations.
func TestRunNUMASmoke(t *testing.T) {
	dur, rounds := 200*time.Millisecond, 2
	if testing.Short() {
		dur, rounds = 120*time.Millisecond, 1
	}
	res, err := RunNUMA(calib.Fast(), 2, 2, dur, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 8 {
		t.Fatalf("want 8 points (4 placements x 2 conn counts), got %d", len(res.Points))
	}
	for _, conns := range []int{16, 100} {
		flat := res.point("flat", conns)
		if flat == nil || flat.Throughput <= 0 {
			t.Fatalf("flat point at %d conns missing or empty: %+v", conns, flat)
		}
		if flat.LocalLines != 0 || flat.RemoteLines != 0 {
			t.Errorf("flat (Nodes=1) placement moved NUMA counters: %+v", flat)
		}
		al := res.point("aligned", conns)
		if al == nil || al.LocalLines == 0 {
			t.Fatalf("aligned point at %d conns charged no local lines: %+v", conns, al)
		}
		if al.RemoteLines != 0 {
			t.Errorf("aligned placement charged %d remote lines, want 0", al.RemoteLines)
		}
		anti := res.point("anti", conns)
		if anti == nil || anti.RemoteShare != 1 {
			t.Fatalf("anti placement remote share = %+v, want 1.0", anti)
		}
		if il := res.point("interleaved", conns); il == nil ||
			il.RemoteShare < 0.2 || il.RemoteShare > 0.8 {
			t.Errorf("page-interleaved remote share = %+v, want roughly even split", il)
		}
		if res.ModeledPenaltyUs(conns) <= 0 {
			t.Errorf("anti placement at %d conns charged no modeled penalty", conns)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("recovered")) {
		t.Fatal("print output missing the recovery summary")
	}
}
