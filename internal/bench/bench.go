// Package bench implements the experiment harness: one function per
// table/figure of the paper (plus the projection experiments the
// proposal's §4.2 quantifies), each returning a structured, printable
// result. cmd/pktbench and the repository-level benchmarks are thin
// wrappers around this package.
//
// Experiment index (see DESIGN.md):
//
//	E1 Table 1   — RTT breakdown of a 1KB write against the NoveLSM
//	               baseline: networking / data management / persistence.
//	E2 Figure 2  — latency and throughput vs concurrent connections,
//	               "Net.+persist." (rawpm) vs "Net.+data mgmt.+persist."
//	               (NoveLSM-sim).
//	E3 Table 2   — the same breakdown with the packetstore: checksum
//	               reuse, zero-copy and allocator sharing remove most of
//	               the data-management rows (ours).
//	E4 Ablation  — packetstore with individual mechanisms disabled.
//	E5 Figure 3  — Figure 2 plus the packetstore series (ours).
//	E6 Recovery  — post-crash recovery time vs record count (§5.1).
//	E7 MetaSize  — metadata slot size vs operation latency (§5.1).
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/host"
	"packetstore/internal/kvclient"
	"packetstore/internal/kvserver"
	"packetstore/internal/lsm"
	"packetstore/internal/nic"
	"packetstore/internal/pmem"
	"packetstore/internal/rawpm"
	"packetstore/internal/tcp"
	"packetstore/internal/wrkgen"
)

// deployment bundles a running server + testbed.
type deployment struct {
	tb    *host.Testbed
	srv   *kvserver.Server
	store *core.Store
	ss    *core.ShardedStore // sharded pktstore deployments
	db    *lsm.DB
	pm    *pmem.Region
}

func (d *deployment) close() {
	d.srv.Close()
	d.tb.Close()
	// Deployments hold multi-hundred-MB regions; reclaim them now so GC
	// work does not bleed into the next measurement on a small host.
	d.pm, d.store, d.ss, d.db = nil, nil, nil, nil
	runtime.GC()
}

func (d *deployment) dial() (kvclient.Conn, error) { return d.tb.Dial(80) }

// align wires the hash-alignment invariant into a workload config: each
// connection learns its server RSS queue and draws keys from that
// queue's shard subspace, so every PUT arrives at the loop owning its
// shard. A no-op for unsharded deployments.
func (d *deployment) align(cfg wrkgen.Config) wrkgen.Config {
	if d.ss == nil || d.ss.Shards() == 1 {
		return cfg
	}
	n := d.ss.Shards()
	serverIP := d.tb.Server.IP
	cfg.QueueOf = func(c kvclient.Conn) int {
		tc := c.(*tcp.Conn)
		ip, port := tc.LocalAddr()
		// The server NIC hashes incoming frames: src = client, dst = server.
		return nic.RSSQueue(ip, serverIP, port, 80, n)
	}
	cfg.ShardOfKey = func(k []byte) int { return core.ShardOf(k, n) }
	return cfg
}

// backendKind selects the server configuration.
type backendKind int

const (
	kindDiscard backendKind = iota
	kindRawPM
	kindNoveLSM
	kindPktStore
)

// deployOptions tunes deployments.
type deployOptions struct {
	profile    calib.Profile
	kind       backendKind
	storeCfg   core.Config     // pktstore
	srvCfg     kvserver.Config // server knobs (group-commit MaxBatch etc.)
	shards     int             // pktstore: partitions (= RSS queues = server loops)
	zeroCopy   bool            // pktstore: PM rx pool(s)
	pmBytes    int             // region size for rawpm / novelsm
	noPersist  bool            // zero the PM flush/fence latencies (Table 1 methodology)
	noChecksum bool            // disable the LSM's checksum phase

	// NUMA shape (pktstore sharded deployments only). numaNodes <= 1
	// keeps the flat single-socket model. With a model installed,
	// numaShardNode places shard i's PM partition (nil = page-interleaved
	// across nodes), numaQueueNodes pins each RSS queue's interrupt, and
	// numaLoopNodes overrides each event loop's declared node (default:
	// its queue's interrupt node).
	numaNodes      int
	numaShardNode  []int
	numaQueueNodes []int
	numaLoopNodes  []int
}

func deploy(opt deployOptions) (*deployment, error) {
	prof := opt.profile
	pmProf := prof
	if opt.noPersist {
		pmProf.PMFlushLine = 0
		pmProf.PMFence = 0
	}
	d := &deployment{}
	var backend kvserver.Backend
	hostOpt := host.Options{Profile: prof}

	switch opt.kind {
	case kindDiscard:
		backend = kvserver.Discard{}
	case kindRawPM:
		size := opt.pmBytes
		if size == 0 {
			size = 64 << 20
		}
		d.pm = pmem.New(size, pmProf)
		backend = kvserver.RawPM{S: rawpm.New(d.pm, 0, size)}
	case kindNoveLSM:
		size := opt.pmBytes
		if size == 0 {
			size = 256 << 20
		}
		d.pm = pmem.New(size, pmProf)
		db, err := lsm.Open(lsm.Options{
			Mode: lsm.NoveLSMSim, PM: d.pm, PMSize: size,
			ArenaSize:         32 << 20,
			Checksum:          !opt.noChecksum,
			DisableCompaction: true, // the paper's experimental setup
		})
		if err != nil {
			return nil, err
		}
		d.db = db
		backend = kvserver.LSM{DB: db}
	case kindPktStore:
		cfg := opt.storeCfg
		if cfg.MetaSlots == 0 {
			cfg.MetaSlots = 1 << 16
		}
		if cfg.DataSlots == 0 {
			cfg.DataSlots = 1 << 16
		}
		if opt.shards > 1 {
			d.pm = pmem.New(core.ShardedRegionSize(cfg, opt.shards), pmProf)
			ss, err := core.OpenSharded(d.pm, cfg, opt.shards)
			if err != nil {
				return nil, err
			}
			if opt.numaNodes > 1 {
				// Placement must precede server construction: the server
				// caches the deployment's socket count when wiring loops.
				if err := ss.SetNUMAPlacement(prof.NUMA, opt.numaNodes, opt.numaShardNode); err != nil {
					return nil, err
				}
				hostOpt.ServerQueueNodes = opt.numaQueueNodes
				opt.srvCfg.LoopNodes = opt.numaLoopNodes
			}
			d.ss = ss
			d.store = ss.Shard(0)
			backend = kvserver.ShardedPktStore{S: ss}
			if opt.zeroCopy {
				hostOpt.ServerRxPools = ss.Pools()
			}
			break
		}
		d.pm = pmem.New(cfg.RegionSize(), pmProf)
		store, err := core.Open(d.pm, cfg)
		if err != nil {
			return nil, err
		}
		d.store = store
		backend = kvserver.PktStore{S: store}
		if opt.zeroCopy {
			hostOpt.ServerRxPool = store.Pool()
		}
	}

	d.tb = host.NewTestbed(hostOpt)
	srv, err := kvserver.NewWithConfig(d.tb.Server.Stack, 80, backend, opt.srvCfg)
	if err != nil {
		d.tb.Close()
		return nil, err
	}
	d.srv = srv
	go srv.Run()
	return d, nil
}

// measureRTT runs n sequential 1KB PUTs on one connection and returns the
// mean RTT (after warm-up).
func measureRTT(d *deployment, n, valueSize int) (time.Duration, error) {
	// Warm up first: fault in buffers, grow goroutine stacks, settle the
	// allocator — one-time costs that would otherwise skew the mean.
	warm := n / 5
	if warm < 100 {
		warm = 100
	}
	if _, err := wrkgen.Run(wrkgen.Config{
		Conns: 1, Requests: warm, ValueSize: valueSize,
		KeySpace: 65536, KeyDist: wrkgen.DistSeq, PutPct: 100, Seed: 2,
	}, d.dial); err != nil {
		return 0, err
	}
	res, err := wrkgen.Run(wrkgen.Config{
		Conns: 1, Requests: n, ValueSize: valueSize,
		KeySpace: 65536, KeyDist: wrkgen.DistSeq, PutPct: 100, Seed: 1,
	}, d.dial)
	if err != nil {
		return 0, err
	}
	if res.Requests == 0 {
		return 0, fmt.Errorf("bench: no requests completed")
	}
	return res.Hist.Mean(), nil
}

// measureGetRTT preloads keys (if absent) then measures GET round trips.
func measureGetRTT(d *deployment, n int) (time.Duration, error) {
	// Preload via the same sequential keyspace the PUT phase used.
	res, err := wrkgen.Run(wrkgen.Config{
		Conns: 1, Requests: n, ValueSize: 1024,
		KeySpace: 65536, KeyDist: wrkgen.DistSeq, PutPct: 0, Seed: 1,
	}, d.dial)
	if err != nil {
		return 0, err
	}
	if res.Requests == 0 {
		return 0, fmt.Errorf("bench: no GET requests completed")
	}
	return res.Hist.Mean(), nil
}

func us(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
