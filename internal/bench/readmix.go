package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/hdrhist"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
	"packetstore/internal/wrkgen"
)

// ReadMixPoint is one measurement of the read-mix experiment (E14): a
// fixed GET/PUT mix and connection count, served with the lock-free
// read fast path on (Locked=false) or forced onto the store mutex
// (Locked=true, the pre-seqlock behavior).
type ReadMixPoint struct {
	// Locked is the A/B knob: true pins every GET to the locked slow
	// path (core.Config.LockedReads).
	Locked bool
	// Direct marks store-level points: Conns worker goroutines drive
	// the ShardedStore with no server or network stack in the way, so
	// the store mutex is the contended resource and the seqlock's
	// effect is isolated. Server points (Direct=false) run the full
	// TCP deployment, where (on a small host) the shared stack bounds
	// throughput and the fast path mostly shows up in tail latency.
	Direct bool
	// ReadPct is the GET share of the mix (PUTs are the remainder).
	ReadPct int
	Conns   int
	// Throughput is measured req/s over the whole mix.
	Throughput float64
	MeanLatUs  float64
	P50LatUs   float64
	P99LatUs   float64
	// Store read-path counters over the measured run: Gets is every
	// index lookup, FastGets the ones completed without the store
	// mutex, FastGetRetries the optimistic passes discarded by a
	// mid-read mutation, FastGetFallbacks the reads that conceded to
	// the locked path.
	Gets             uint64
	FastGets         uint64
	FastGetRetries   uint64
	FastGetFallbacks uint64
	ZeroCopyGets     uint64
}

// FastHitRate is the fraction of GETs served lock-free.
func (p ReadMixPoint) FastHitRate() float64 {
	if p.Gets == 0 {
		return 0
	}
	return float64(p.FastGets) / float64(p.Gets)
}

// ReadMixResult reproduces experiment E14: GET-heavy mixes swept over
// read share and connection count, locked against lock-free. The
// deployment is deliberately unaligned (uniform keys, no per-queue key
// subspace): every loop's GETs land on every shard, so the store mutex
// is contended across loops — the contention the seqlock fast path
// removes.
type ReadMixResult struct {
	Duration  time.Duration
	Shards    int
	ValueSize int
	KeySpace  int
	// Direct points use their own geometry: a single shard (the mutex is
	// per shard, so more shards multiply both baselines equally without
	// changing the contrast) and larger values (more PM lines charged
	// under the lock in the locked baseline, so the mutex — not the
	// harness's own CPU cost — is what binds).
	DirectShards    int
	DirectValueSize int
	ReadPcts        []int
	Conns           []int
	Points          []ReadMixPoint
}

func (r ReadMixResult) point(locked, direct bool, readPct, conns int) *ReadMixPoint {
	for i := range r.Points {
		p := &r.Points[i]
		if p.Locked == locked && p.Direct == direct && p.ReadPct == readPct && p.Conns == conns {
			return p
		}
	}
	return nil
}

// Speedup is fast-path throughput over locked throughput for one mix
// shape; the issue's target is >= 1.5x at 99% reads, 100 readers,
// measured where the store mutex is the contended resource (direct).
func (r ReadMixResult) Speedup(direct bool, readPct, conns int) float64 {
	locked, fast := r.point(true, direct, readPct, conns), r.point(false, direct, readPct, conns)
	if locked == nil || fast == nil || locked.Throughput <= 0 {
		return 0
	}
	return fast.Throughput / locked.Throughput
}

// RunReadMix sweeps read share x connections, locked vs lock-free.
func RunReadMix(profile calib.Profile, shards int, conns []int, duration time.Duration) (ReadMixResult, error) {
	return runReadMix(profile, shards, conns, []int{50, 90, 99}, 1<<14, duration)
}

func runReadMix(profile calib.Profile, shards int, conns, readPcts []int, keySpace int, duration time.Duration) (ReadMixResult, error) {
	if shards <= 1 {
		shards = 4
	}
	if len(conns) == 0 {
		conns = []int{16, 100}
	}
	if duration <= 0 {
		duration = time.Second
	}
	out := ReadMixResult{
		Duration: duration, Shards: shards,
		ValueSize: 1024, KeySpace: keySpace,
		DirectShards: 1, DirectValueSize: directValueSize,
		ReadPcts: readPcts, Conns: conns,
	}

	for _, locked := range []bool{true, false} {
		for _, readPct := range out.ReadPcts {
			for _, nc := range conns {
				p, err := measureDirect(profile, locked, readPct, nc, keySpace, duration)
				if err != nil {
					return out, err
				}
				out.Points = append(out.Points, p)
			}
		}
	}
	for _, locked := range []bool{true, false} {
		for _, readPct := range out.ReadPcts {
			for _, nc := range conns {
				cfg := storeCfgLarge()
				cfg.MetaSlots /= shards
				cfg.DataSlots /= shards
				cfg.LockedReads = locked
				d, err := deploy(deployOptions{
					profile: profile, kind: kindPktStore, zeroCopy: true,
					shards: shards, storeCfg: cfg,
					srvCfg: kvserver.Config{MaxBatch: 16},
				})
				if err != nil {
					return out, err
				}
				// Preload the whole keyspace through the store's front
				// door so the measured GETs hit; wrkgen's unaligned key
				// format is key%012d.
				for i := 0; i < out.KeySpace; i++ {
					k := []byte(fmt.Sprintf("key%012d", i))
					if err := d.ss.Put(k, make([]byte, out.ValueSize)); err != nil {
						d.close()
						return out, err
					}
				}
				stBefore := d.ss.Stats()
				wcfg := wrkgen.Config{
					Conns: nc, Duration: duration, Warmup: duration / 5,
					ValueSize: out.ValueSize, KeySpace: out.KeySpace,
					KeyDist: wrkgen.DistUniform, PutPct: 100 - readPct, Seed: 11,
				}
				res, err := wrkgen.Run(wcfg, d.dial)
				st := d.ss.Stats()
				srvSt := d.srv.Stats()
				d.close()
				if err != nil {
					return out, err
				}
				out.Points = append(out.Points, ReadMixPoint{
					Locked: locked, ReadPct: wcfg.GetPct(), Conns: nc,
					Throughput:       res.Throughput(),
					MeanLatUs:        us(res.Hist.Mean()),
					P50LatUs:         us(res.Hist.Percentile(50)),
					P99LatUs:         us(res.Hist.Percentile(99)),
					Gets:             st.Gets - stBefore.Gets,
					FastGets:         st.FastGets - stBefore.FastGets,
					FastGetRetries:   st.FastGetRetries - stBefore.FastGetRetries,
					FastGetFallbacks: st.FastGetFallbacks - stBefore.FastGetFallbacks,
					ZeroCopyGets:     srvSt.ZeroCopyGets,
				})
			}
		}
	}
	return out, nil
}

// directValueSize is the value size for direct (store-level) points:
// large enough that a locked GET's modeled PM read — the lines it
// charges while holding the shard mutex — dominates the harness's own
// per-op CPU cost, so the mutex is what the locked baseline measures.
const directValueSize = 4096

// measureDirect runs one store-level point: nc goroutines issue the
// GET/PUT mix straight at a single-shard store opened on a
// latency-modeled region. With the multi-core latency model, a locked
// GET serializes its modeled PM line charges under the shard mutex
// while a lock-free GET overlaps them with every other reader — this
// is the contention the seqlock removes, isolated from the network
// stack. One shard because the mutex is per shard: adding shards
// multiplies locked and lock-free capacity alike.
func measureDirect(profile calib.Profile, locked bool, readPct, nc, keySpace int, duration time.Duration) (ReadMixPoint, error) {
	// Key+value spans three 2KB data slots, so each record carries one
	// extent-chain slot besides its own: two metadata slots per record.
	cfg := core.Config{
		MetaSlots: 1 << 16, DataSlots: 1 << 16,
		ChecksumReuse: true, LockedReads: locked,
	}
	r := pmem.New(core.ShardedRegionSize(cfg, 1), profile)
	ss, err := core.OpenSharded(r, cfg, 1)
	if err != nil {
		return ReadMixPoint{}, err
	}
	// The harness itself is many simulated cores hitting one shard, so
	// PM charges must yield-spin even though the store is unsharded.
	r.SetMultiCore(true)
	// Preformat the keyspace: the worker loop must spend its cycles in
	// the store, not in fmt.
	keys := make([][]byte, keySpace)
	val := make([]byte, directValueSize)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key%012d", i))
		if err := ss.Put(keys[i], val); err != nil {
			return ReadMixPoint{}, err
		}
	}
	stBefore := ss.Stats()

	var wg sync.WaitGroup
	var stop atomic.Bool
	hists := make([]hdrhist.Hist, nc)
	ops := make([]uint64, nc)
	errs := make([]error, nc)
	warmed := time.Now().Add(duration / 5)
	deadline := warmed.Add(duration)
	for w := 0; w < nc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			buf := make([]byte, directValueSize)
			for i := 0; !stop.Load(); i++ {
				key := keys[rng.Intn(keySpace)]
				t0 := time.Now()
				if rng.Intn(100) < readPct {
					if _, _, err := ss.Get(key); err != nil {
						errs[w] = err
						return
					}
				} else {
					if err := ss.Put(key, buf); err != nil {
						errs[w] = err
						return
					}
				}
				if t0.After(warmed) {
					hists[w].Record(time.Since(t0))
					ops[w]++
				}
				if i%64 == 0 && time.Now().After(deadline) {
					return
				}
			}
		}(w)
	}
	time.Sleep(time.Until(deadline) + duration/10)
	stop.Store(true)
	wg.Wait()
	var hist hdrhist.Hist
	var total uint64
	for w := range hists {
		if errs[w] != nil {
			return ReadMixPoint{}, errs[w]
		}
		hist.Merge(&hists[w])
		total += ops[w]
	}
	st := ss.Stats()
	p := ReadMixPoint{
		Locked: locked, Direct: true, ReadPct: readPct, Conns: nc,
		Throughput:       float64(total) / duration.Seconds(),
		MeanLatUs:        us(hist.Mean()),
		P50LatUs:         us(hist.Percentile(50)),
		P99LatUs:         us(hist.Percentile(99)),
		Gets:             st.Gets - stBefore.Gets,
		FastGets:         st.FastGets - stBefore.FastGets,
		FastGetRetries:   st.FastGetRetries - stBefore.FastGetRetries,
		FastGetFallbacks: st.FastGetFallbacks - stBefore.FastGetFallbacks,
	}
	// Drop the (hundreds-of-MB) region before the next point deploys its
	// own: letting them stack up poisons later measurements with GC work.
	ss, r, keys = nil, nil, nil
	_, _, _ = ss, r, keys
	runtime.GC()
	return p, nil
}

// Print renders the read-mix experiment.
func (r ReadMixResult) Print(w io.Writer) {
	fprintf(w, "Read mix: uniform unaligned keys over %d keys (%v per point)\n", r.KeySpace, r.Duration)
	fprintf(w, "  direct: %d shard(s), %dB values; server: %d shards, %dB values\n",
		r.DirectShards, r.DirectValueSize, r.Shards, r.ValueSize)
	fprintf(w, "\n%-33s %12s %10s %10s %10s %9s\n",
		"point", "req/s", "mean us", "p50 us", "p99 us", "fast%")
	for _, p := range r.Points {
		kind := "server"
		if p.Direct {
			kind = "direct"
		}
		name := fmt.Sprintf("%s %d%% reads, %d conns", kind, p.ReadPct, p.Conns)
		if p.Locked {
			name += " locked"
		}
		fprintf(w, "%-33s %12.0f %10.1f %10.1f %10.1f %9.1f\n",
			name, p.Throughput, p.MeanLatUs, p.P50LatUs, p.P99LatUs, p.FastHitRate()*100)
	}
	fprintf(w, "\nLock-free speedup (throughput vs locked):\n")
	for _, direct := range []bool{true, false} {
		kind := "server"
		if direct {
			kind = "direct"
		}
		for _, readPct := range r.ReadPcts {
			for _, nc := range r.Conns {
				if sp := r.Speedup(direct, readPct, nc); sp > 0 {
					fprintf(w, "  %s %2d%% reads, %3d conns: %.2fx\n", kind, readPct, nc, sp)
				}
			}
		}
	}
	if fast := r.point(false, true, 99, 100); fast != nil {
		fprintf(w, "Direct 99%% reads, 100 readers: %.1f%% of GETs lock-free (%d retries, %d fallbacks).\n",
			fast.FastHitRate()*100, fast.FastGetRetries, fast.FastGetFallbacks)
	}
}
