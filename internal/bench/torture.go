package bench

import (
	"fmt"
	"io"
	"sort"

	"packetstore/internal/fault"
	"packetstore/internal/pmem"
)

// TortureMode aggregates one fault mode's sweep.
type TortureMode struct {
	Mode        string
	Runs        int
	Failures    int
	SuccessRate float64
	// FailureNotes carries the first few failures verbatim — each names
	// the seed that reproduces it.
	FailureNotes []string `json:",omitempty"`
	// SlotsQuarantined totals slots fenced off by recovery across the
	// sweep; Detected totals corrupted keys surfaced as a miss or error.
	SlotsQuarantined int
	Detected         int
	// Recovery time distribution across the mode's runs, microseconds.
	RecoveryP50us float64
	RecoveryP95us float64
	RecoveryMaxus float64
}

// TortureResult is experiment E9: the randomized crash-consistency,
// corruption, shard-loss and network-fault torture sweep. Success rate
// below 1.0 is a correctness bug, not a performance result.
type TortureResult struct {
	BaseSeed int64
	Modes    []TortureMode
}

// RunTorture sweeps all four fault modes. seeds scales the crash mode
// (the headline); the other modes run proportionally smaller sweeps.
func RunTorture(seeds int, baseSeed int64) (TortureResult, error) {
	if seeds <= 0 {
		seeds = 256
	}
	// The sweep injects one crash per run; record seeds in results
	// instead of spamming the log.
	pmem.SetCrashLogger(func(int64) {})
	defer pmem.SetCrashLogger(nil)

	out := TortureResult{BaseSeed: baseSeed}
	sweep := func(mode string, runs int, one func(seed int64) (fault.RunStats, error)) {
		m := TortureMode{Mode: mode, Runs: runs}
		var recNs []int64
		for i := 0; i < runs; i++ {
			rs, err := one(baseSeed + int64(i))
			m.SlotsQuarantined += rs.SlotsQuarantined
			m.Detected += rs.Detected
			if rs.RecoveryNs > 0 {
				recNs = append(recNs, rs.RecoveryNs)
			}
			if err != nil {
				m.Failures++
				if len(m.FailureNotes) < 8 {
					m.FailureNotes = append(m.FailureNotes, fmt.Sprintf("seed %d: %v", rs.Seed, err))
				}
			}
		}
		m.SuccessRate = float64(runs-m.Failures) / float64(runs)
		m.RecoveryP50us = pctUs(recNs, 0.50)
		m.RecoveryP95us = pctUs(recNs, 0.95)
		m.RecoveryMaxus = pctUs(recNs, 1.00)
		out.Modes = append(out.Modes, m)
	}

	sweep("crash", seeds, func(seed int64) (fault.RunStats, error) {
		shards := 1
		if seed%2 == 1 {
			shards = 4
		}
		return fault.RunCrash(seed, shards)
	})
	sweep("corrupt", max(8, seeds/4), fault.RunCorrupt)
	sweep("shard", max(4, seeds/8), fault.RunShard)
	sweep("net", max(2, seeds/32), fault.RunNet)
	return out, nil
}

// Failed reports whether any mode had a failing run.
func (r TortureResult) Failed() bool {
	for _, m := range r.Modes {
		if m.Failures > 0 {
			return true
		}
	}
	return false
}

// pctUs returns the q-quantile of ns samples, in microseconds.
func pctUs(ns []int64, q float64) float64 {
	if len(ns) == 0 {
		return 0
	}
	sort.Slice(ns, func(a, b int) bool { return ns[a] < ns[b] })
	i := int(q*float64(len(ns))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(ns) {
		i = len(ns) - 1
	}
	return float64(ns[i]) / 1000
}

// Print renders the torture summary.
func (r TortureResult) Print(w io.Writer) {
	fprintf(w, "Torture (E9): seeded fault injection, base seed %d\n", r.BaseSeed)
	fprintf(w, "%8s %6s %6s %9s %12s %10s %14s %14s %14s\n",
		"mode", "runs", "fail", "success", "quarantined", "detected",
		"rec p50 [us]", "rec p95 [us]", "rec max [us]")
	for _, m := range r.Modes {
		fprintf(w, "%8s %6d %6d %8.1f%% %12d %10d %14.1f %14.1f %14.1f\n",
			m.Mode, m.Runs, m.Failures, m.SuccessRate*100,
			m.SlotsQuarantined, m.Detected,
			m.RecoveryP50us, m.RecoveryP95us, m.RecoveryMaxus)
		for _, note := range m.FailureNotes {
			fprintf(w, "         FAIL %s\n", note)
		}
	}
}
