package bench

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/fault"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
)

// HealResult is experiment E11: the self-healing sweep. Part one runs
// the heal torture mode over many seeds — shard loss and latent bit
// flips injected into a live store under traffic, supervised by the
// Healer — and aggregates correctness (every rejoin loss-free, every
// flip found) plus the time-to-rejoin and availability-during-heal
// distributions. Part two measures non-victim read throughput while a
// shard is continuously being destroyed and rebuilt, against an
// all-serving baseline: the cost a heal imposes on the rest of the
// store.
type HealResult struct {
	BaseSeed int64
	Runs     int
	Failures int
	// FailureNotes carries the first few failures verbatim — each names
	// the seed that reproduces it.
	FailureNotes []string `json:",omitempty"`

	// Flip flavor: injected vs detected must match for a clean sweep.
	FlipRuns      int
	FlipsInjected int
	FlipsDetected int

	// Loss flavor: quarantine-to-readmission distribution.
	LossRuns    int
	Rejoins     int
	RejoinP50us float64
	RejoinP95us float64
	RejoinMaxus float64

	// Availability during heal: per-run fraction of concurrent traffic
	// answered successfully (the remainder hit the victim's outage
	// window).
	AvailabilityP50 float64
	AvailabilityMin float64

	// Non-victim throughput, reads/sec: all shards serving vs a shard
	// under continuous destroy-rebuild churn. Ratio is heal/baseline.
	BaselineReadsPerSec float64
	HealReadsPerSec     float64
	ThroughputRatio     float64
	ChurnRebuilds       uint64
}

// Failed reports whether the sweep found a correctness failure.
func (r HealResult) Failed() bool {
	return r.Failures > 0 || r.FlipsDetected != r.FlipsInjected
}

// RunHeal executes experiment E11. seeds sizes the torture sweep
// (default 200); window is the throughput measurement duration per
// phase (default 400ms).
func RunHeal(profile calib.Profile, seeds int, baseSeed int64, window time.Duration) (HealResult, error) {
	if seeds <= 0 {
		seeds = 200
	}
	if window <= 0 {
		window = 400 * time.Millisecond
	}
	out := HealResult{BaseSeed: baseSeed, Runs: seeds}

	var rejoinNs []int64
	var avail []float64
	for i := 0; i < seeds; i++ {
		rs, err := fault.RunHeal(baseSeed + int64(i))
		if rs.Seed%2 == 1 {
			out.FlipRuns++
			out.FlipsInjected += 3
			out.FlipsDetected += rs.Detected
		} else {
			out.LossRuns++
			if rs.RejoinNs > 0 {
				rejoinNs = append(rejoinNs, rs.RejoinNs)
			}
			if rs.TrafficOps > 0 {
				avail = append(avail, float64(rs.TrafficOps-rs.TrafficErrs)/float64(rs.TrafficOps))
			}
		}
		if err != nil {
			out.Failures++
			if len(out.FailureNotes) < 8 {
				out.FailureNotes = append(out.FailureNotes, fmt.Sprintf("seed %d: %v", rs.Seed, err))
			}
		}
	}
	out.Rejoins = len(rejoinNs)
	out.RejoinP50us = pctUs(rejoinNs, 0.50)
	out.RejoinP95us = pctUs(rejoinNs, 0.95)
	out.RejoinMaxus = pctUs(rejoinNs, 1.00)
	if len(avail) > 0 {
		sort.Float64s(avail)
		out.AvailabilityMin = avail[0]
		out.AvailabilityP50 = avail[len(avail)/2]
	}

	base, heal, rebuilds, err := healThroughput(profile, baseSeed, window)
	if err != nil {
		return out, err
	}
	out.BaselineReadsPerSec = base
	out.HealReadsPerSec = heal
	out.ChurnRebuilds = rebuilds
	if base > 0 {
		out.ThroughputRatio = heal / base
	}
	return out, nil
}

// healThroughput measures non-victim read throughput twice on one
// store: a baseline window with every shard serving, then a window in
// which the victim shard is destroyed and rebuilt in a continuous loop.
func healThroughput(profile calib.Profile, seed int64, window time.Duration) (base, heal float64, rebuilds uint64, err error) {
	const shards = 4
	cfg := core.Config{MetaSlots: 1024, SlotSize: 128, DataSlots: 1024, DataBufSize: 512}
	size := core.ShardedRegionSize(cfg, shards)
	r := pmem.New(size, profile)
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		return 0, 0, 0, err
	}
	const victim = 0
	val := make([]byte, 256)
	var nonVictim [][]byte
	for i := 0; i < 1024; i++ {
		k := []byte(fmt.Sprintf("key%012d", i))
		if err := ss.Put(k, val); err != nil {
			return 0, 0, 0, err
		}
		if core.ShardOf(k, shards) != victim {
			nonVictim = append(nonVictim, k)
		}
	}

	// A production-scale scrub budget: the walker covers a 1024-slot
	// shard in ~16 ticks, so superblock loss is detected within ~16ms
	// (the cursor-0 probe), while the per-tick store-lock hold stays
	// small enough that serving reads are not measuring scrub
	// contention. The identical budget runs in both windows; the churn
	// window's delta is the cost of the rebuilds themselves.
	h := kvserver.NewHealer(ss, kvserver.HealConfig{
		ScrubInterval:  time.Millisecond,
		ScrubSlots:     64,
		RebuildBackoff: 100 * time.Microsecond,
	})
	go h.Run()
	defer h.Close()

	// measure runs the non-victim read workload for one window.
	const workers = 4
	measure := func() float64 {
		var total atomic.Uint64
		var wg sync.WaitGroup
		deadline := time.Now().Add(window)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed + int64(w)))
				var n uint64
				for time.Now().Before(deadline) {
					k := nonVictim[rng.Intn(len(nonVictim))]
					if _, ok, err := ss.Get(k); err == nil && ok {
						n++
					}
					if n%256 == 0 {
						// Keep the healer schedulable on small GOMAXPROCS:
						// a spinning reader can otherwise monopolize the
						// only P for whole preemption slices.
						runtime.Gosched()
					}
				}
				total.Add(n)
			}(w)
		}
		wg.Wait()
		return float64(total.Load()) / window.Seconds()
	}

	base = measure()

	// Churn: destroy the victim's superblock, wait for the supervisor to
	// quarantine and rebuild it, repeat — the victim cycles
	// down->rebuilding->serving for the whole window. Fault injection is
	// paced at one loss per faultPeriod (100 shard losses/sec — orders of
	// magnitude beyond any real media-fault rate) rather than
	// back-to-back: with zero gap the victim crash-loops and the window
	// degenerates into measuring how the host's cores timeshare between
	// rebuild rescans and readers, instead of what a heal event costs the
	// serving shards.
	const faultPeriod = 10 * time.Millisecond
	stop := make(chan struct{})
	churnDone := make(chan uint64, 1)
	first := make(chan struct{})
	go func() {
		var n uint64
		rejoins := h.RejoinC()
		for {
			select {
			case <-stop:
				churnDone <- n
				return
			case <-time.After(faultPeriod):
			}
			ss.SmashSuperblock(victim)
			// Event-driven: the healer pushes each completed rejoin on its
			// sample channel, so the churn loop sleeps until the victim is
			// actually back instead of polling Stats on a timer.
			select {
			case <-rejoins:
				n++
				if n == 1 {
					close(first)
				}
			case <-stop:
				churnDone <- n
				return
			}
		}
	}()
	heal = measure()
	// The measurement window may close mid-cycle. Wait for the cycle in
	// flight (and thereby at least one rejoin overall) before stopping,
	// so ChurnRebuilds is never zero just because a short window raced a
	// slow rebuild.
	select {
	case <-first:
	case <-time.After(10 * time.Second):
	}
	close(stop)
	rebuilds = <-churnDone
	return base, heal, rebuilds, nil
}

// Print renders the heal summary.
func (r HealResult) Print(w io.Writer) {
	fprintf(w, "Heal (E11): self-healing sweep, base seed %d\n", r.BaseSeed)
	fprintf(w, "  torture: %d runs, %d failures (%d loss-flavor, %d flip-flavor)\n",
		r.Runs, r.Failures, r.LossRuns, r.FlipRuns)
	for _, note := range r.FailureNotes {
		fprintf(w, "  FAIL %s\n", note)
	}
	fprintf(w, "  flips: %d injected, %d detected\n", r.FlipsInjected, r.FlipsDetected)
	fprintf(w, "  rejoin [us]: p50 %.1f  p95 %.1f  max %.1f  (%d rejoins)\n",
		r.RejoinP50us, r.RejoinP95us, r.RejoinMaxus, r.Rejoins)
	fprintf(w, "  availability during heal: p50 %.4f  min %.4f\n", r.AvailabilityP50, r.AvailabilityMin)
	fprintf(w, "  non-victim reads/s: baseline %.0f  during churn %.0f  ratio %.3f (%d rebuilds)\n",
		r.BaselineReadsPerSec, r.HealReadsPerSec, r.ThroughputRatio, r.ChurnRebuilds)
}
