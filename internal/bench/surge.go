package bench

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/kvclient"
	"packetstore/internal/kvserver"
	"packetstore/internal/wrkgen"
)

// surgeValueSize is the PUT payload for the surge sweep: small enough
// that a deep in-flight window's bytes sit far below the transport's
// 256KB socket buffers (the queueing under test is request-count
// queueing at the server, not byte queueing in the pipe).
const surgeValueSize = 256

// SurgePoint is one cell of the overload sweep: a fixed offered-load
// factor with the overload controller on or off.
type SurgePoint struct {
	// Factor is offered load as a multiple of calibrated capacity.
	Factor float64
	// Control marks the overload controller (deadline drops + CoDel)
	// enabled; false is the binary-shed baseline every PR before this
	// one shipped.
	Control bool
	// OfferedRate is the open-loop Poisson rate (req/s).
	OfferedRate float64
	// Open-loop tallies (see wrkgen.Result).
	Offered, Good, Shed, ClientDrops, Errors uint64
	// Goodput is SLO-compliant completions per second.
	Goodput float64
	// Accepted-response latency percentiles (503s excluded), measured
	// from scheduled arrival — client queue wait included.
	AcceptedP50Us, AcceptedP99Us float64
	// Server-side overload counters for the run.
	SrvExpired, SrvCoDelSheds, SrvBrownouts, SrvSheds uint64
	QueueDelayMs                                      float64
}

// SurgeContainment summarizes the client-containment phase: more
// retrying clients than the server admits, so the surplus must be
// absorbed by circuit breakers instead of retry storms.
type SurgeContainment struct {
	Clients, Admitted int
	Requests, Errors  uint64
	Retries           uint64
	BreakerOpens      uint64
	BreakerFastFails  uint64
	BudgetDenied      uint64
	Hedges, HedgeWins uint64
	// HealthOverload is the healer's /healthz overload section captured
	// at the end of the phase — breaker transitions and server sheds on
	// one report.
	HealthOverload *kvserver.OverloadHealth
}

// SurgeResult reproduces experiment E15: open-loop load swept from
// under to far over capacity, overload control on versus off. The
// headline: with control on, goodput at 2-3x offered load stays near
// the peak while the baseline collapses under doomed work.
type SurgeResult struct {
	Duration time.Duration
	Shards   int
	Conns    int
	// Budget is the per-request latency budget (and the goodput SLO),
	// derived from the calibrated closed-loop p99.
	Budget time.Duration
	// CapacityRps is the calibrated closed-loop capacity the factors
	// multiply.
	CapacityRps float64
	// ClosedP99Us is the closed-loop p99 the budget was derived from.
	ClosedP99Us float64
	Points      []SurgePoint
	Containment SurgeContainment
}

func (r SurgeResult) point(factor float64, control bool) *SurgePoint {
	for i := range r.Points {
		if r.Points[i].Factor == factor && r.Points[i].Control == control {
			return &r.Points[i]
		}
	}
	return nil
}

// PeakGoodput is the best goodput over the control-on points.
func (r SurgeResult) PeakGoodput() float64 {
	var peak float64
	for _, p := range r.Points {
		if p.Control && p.Goodput > peak {
			peak = p.Goodput
		}
	}
	return peak
}

// GoodputFraction returns goodput at the given point as a fraction of
// the control-on peak (0 when either is missing).
func (r SurgeResult) GoodputFraction(factor float64, control bool) float64 {
	peak := r.PeakGoodput()
	p := r.point(factor, control)
	if p == nil || peak <= 0 {
		return 0
	}
	return p.Goodput / peak
}

// RunSurge sweeps offered load over the overload knob (experiment E15).
// factors lists the capacity multiples to sweep; nil means the default
// 0.5x, 1x, 2x, 3x.
func RunSurge(profile calib.Profile, shards, conns int, duration time.Duration, factors []float64) (SurgeResult, error) {
	if shards <= 1 {
		shards = 2
	}
	if conns <= 0 {
		conns = 96
	}
	if duration <= 0 {
		duration = time.Second
	}
	if len(factors) == 0 {
		factors = []float64{0.5, 1, 2, 3}
	}
	out := SurgeResult{Duration: duration, Shards: shards, Conns: conns}

	// Serialize dialing: hundreds of workers dialing at once would
	// overflow the listener backlog, and a backlog overflow resets the
	// connection after the client's dial already succeeded.
	serialDial := func(d *deployment) wrkgen.Dialer {
		var mu sync.Mutex
		return func() (kvclient.Conn, error) {
			mu.Lock()
			defer mu.Unlock()
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				var c kvclient.Conn
				if c, err = d.dial(); err == nil {
					return c, nil
				}
				// An accept loop busy with another connection's setup can
				// momentarily overflow the listen backlog; back off and
				// redial like a real client instead of failing the run.
				time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
			}
			return nil, fmt.Errorf("surge dial: %w", err)
		}
	}

	deploySurge := func(control bool, maxConns int) (*deployment, error) {
		cfg := storeCfgLarge()
		cfg.MetaSlots /= shards
		cfg.DataSlots /= shards
		// Copy-path ingest: under sustained 2-3x overload a zero-copy
		// deployment's rx pool pins packet buffers behind the backlog,
		// and the experiment would measure transport retransmit spirals
		// instead of the scheduler under test.
		return deploy(deployOptions{
			profile: profile, kind: kindPktStore, zeroCopy: false,
			shards: shards, storeCfg: cfg,
			srvCfg: kvserver.Config{
				MaxBatch: 16,
				MaxConns: maxConns,
				Overload: kvserver.OverloadConfig{Enabled: control},
			},
		})
	}

	// Calibrate: pipelined closed-loop throughput at this concurrency is
	// the capacity the surge factors multiply (pipelined so group commit
	// amortization is part of it — the open-loop sweep pipelines too),
	// and its p99 anchors the latency budget.
	{
		d, err := deploySurge(false, 0)
		if err != nil {
			return out, err
		}
		res, err := wrkgen.Run(d.align(wrkgen.Config{
			Conns: conns, Duration: duration, Warmup: duration / 4,
			ValueSize: surgeValueSize, KeySpace: 1 << 14, PutPct: 100, Seed: 11,
			Pipeline: 8,
		}), serialDial(d))
		d.close()
		if err != nil {
			return out, fmt.Errorf("bench: surge calibration: %w", err)
		}
		if res.Requests == 0 {
			return out, fmt.Errorf("bench: calibration completed no requests")
		}
		out.CapacityRps = res.Throughput()
		out.ClosedP99Us = us(res.Hist.Percentile(99))
		// The budget is a fixed SLO floor (30ms) rather than a pure
		// percentile of the calibration run: several times the unloaded
		// closed-loop latency, yet comfortably below the delay one full
		// window-depth of standing queue produces, so the on/off
		// comparison is about queueing ratios and survives the host's
		// run-to-run capacity noise (a percentile-derived budget would
		// inherit the calibration run's own scheduler tails and swing the
		// SLO between runs). Slow profiles — paper-calibrated PM stalls
		// push the closed-loop p99 past 30ms — raise the floor to 2x that
		// p99 so the SLO stays meetable unloaded on every profile.
		out.Budget = 30 * time.Millisecond
		if p99 := time.Duration(out.ClosedP99Us) * time.Microsecond; out.Budget < 2*p99 {
			out.Budget = 2 * p99
		}
	}

	// The per-connection window models undisciplined open-loop clients —
	// exactly what the server's controller must protect against — so it
	// is sized to hold about two budgets of work at calibrated capacity:
	// deep enough that a server executing everything (the baseline) is
	// late on nearly all of it once saturated, shallow enough that the
	// window's bytes stay far below the 256KB socket buffers, where TCP
	// zero-window stalls would displace the effect under test.
	inFlight := 48

	for _, factor := range factors {
		for _, control := range []bool{true, false} {
			d, err := deploySurge(control, 0)
			if err != nil {
				return out, err
			}
			rate := factor * out.CapacityRps
			res, err := wrkgen.Run(d.align(wrkgen.Config{
				Conns: conns, Duration: duration, Warmup: duration / 4,
				ValueSize: surgeValueSize, KeySpace: 1 << 14, PutPct: 100, Seed: 13,
				Rate: rate, Budget: out.Budget, InFlight: inFlight,
			}), serialDial(d))
			st := d.srv.Stats()
			d.close()
			if err != nil {
				err = fmt.Errorf("bench: surge point %gx control=%v: %w", factor, control, err)
				return out, err
			}
			out.Points = append(out.Points, SurgePoint{
				Factor: factor, Control: control, OfferedRate: rate,
				Offered: res.Offered, Good: res.Good, Shed: res.Shed,
				ClientDrops: res.ClientDrops, Errors: res.Errors,
				Goodput:       res.Goodput(),
				AcceptedP50Us: us(res.Hist.Percentile(50)),
				AcceptedP99Us: us(res.Hist.Percentile(99)),
				SrvExpired:    st.Expired, SrvCoDelSheds: st.CoDelSheds,
				SrvBrownouts: st.Brownouts, SrvSheds: st.Sheds,
				QueueDelayMs: float64(st.QueueDelay.Microseconds()) / 1e3,
			})
		}
	}

	// Containment: more breaker-equipped retrying clients than the
	// server admits (MaxConns). The surplus clients' 503s must trip
	// breakers — bounded fast-fails — instead of hammering the accept
	// path; hedged GETs exercise the tail-racing path on the admitted
	// ones. A healer aggregates the client breakers next to the server
	// counters, the /healthz view an operator would see.
	{
		admit := conns / 8
		if admit < 2 {
			admit = 2
		}
		clients := admit * 3
		d, err := deploySurge(true, (admit+shards-1)/shards)
		if err != nil {
			return out, err
		}
		// Bound every containment dial with a deadline: the fast-fail
		// storm can starve the simulated stack's handshake timers on a
		// single-core host, parking a Dial far past the stack's own
		// give-up, and one wedged dial would hang the whole phase. A dial
		// that completes after the deadline is closed by the reaper.
		guardedDial := func() (kvclient.Conn, error) {
			type dialRes struct {
				c   kvclient.Conn
				err error
			}
			ch := make(chan dialRes, 1)
			go func() {
				c, err := d.dial()
				ch <- dialRes{c, err}
			}()
			select {
			case r := <-ch:
				return r.c, r.err
			case <-time.After(2 * time.Second):
				go func() {
					if r := <-ch; r.err == nil {
						r.c.Close()
					}
				}()
				return nil, fmt.Errorf("surge dial: %w", os.ErrDeadlineExceeded)
			}
		}
		var mu sync.Mutex
		var agg kvclient.RetryStats
		var reqs, errsN uint64
		var wg sync.WaitGroup
		stopAt := time.Now().Add(duration)
		for i := 0; i < clients; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				rc := kvclient.NewRetry(guardedDial, kvclient.RetryConfig{
					Attempts: 3, Backoff: time.Millisecond, BackoffMax: 10 * time.Millisecond,
					Timeout: 250 * time.Millisecond, Budget: out.Budget,
					BreakerThreshold: 3, BreakerCooldown: 20 * time.Millisecond,
					RetryBudget: 10, Hedge: out.Budget / 4,
					Seed: int64(i)*6151 + 17,
				})
				defer rc.Close()
				key := []byte(fmt.Sprintf("containment-%04d", i))
				var r, e uint64
				for n := 0; time.Now().Before(stopAt); n++ {
					var err error
					if n%2 == 0 {
						err = rc.Put(key, make([]byte, 128))
					} else {
						_, _, err = rc.Get(key)
					}
					r++
					if err != nil {
						e++
						if !kvclient.Transient(err) {
							break
						}
						// Fast-failed or exhausted: hold off briefly instead
						// of spinning on the open breaker.
						time.Sleep(200 * time.Microsecond)
					}
				}
				st := rc.Stats()
				mu.Lock()
				agg.Retries += st.Retries
				agg.Exhausted += st.Exhausted
				agg.BreakerOpens += st.BreakerOpens
				agg.BreakerFastFails += st.BreakerFastFails
				agg.BudgetDenied += st.BudgetDenied
				agg.Hedges += st.Hedges
				agg.HedgeWins += st.HedgeWins
				reqs += r
				errsN += e
				mu.Unlock()
			}(i)
		}
		wg.Wait()
		// The /healthz view: a healer fed by the server loops and the
		// clients' breaker tally.
		h := kvserver.NewHealer(d.ss, kvserver.HealConfig{})
		h.SetLoopSource(d.srv.LoopStats)
		h.SetPressureSource(d.srv.Pressure)
		h.SetBreakerSource(func() uint64 { return agg.BreakerOpens })
		go h.Run()
		rep := h.Health()
		h.Close()
		d.close()
		out.Containment = SurgeContainment{
			Clients: clients, Admitted: admit,
			Requests: reqs, Errors: errsN,
			Retries:      agg.Retries,
			BreakerOpens: agg.BreakerOpens, BreakerFastFails: agg.BreakerFastFails,
			BudgetDenied: agg.BudgetDenied,
			Hedges:       agg.Hedges, HedgeWins: agg.HedgeWins,
			HealthOverload: rep.Overload,
		}
	}
	return out, nil
}

// Print renders the surge experiment.
func (r SurgeResult) Print(w io.Writer) {
	fprintf(w, "Overload surge: %d shards, %d conns, capacity %.0f req/s (closed-loop p99 %.1fus), budget/SLO %v (%v per point)\n",
		r.Shards, r.Conns, r.CapacityRps, r.ClosedP99Us, r.Budget, r.Duration)
	fprintf(w, "\n%-14s %10s %10s %10s %10s %10s %9s %9s %9s\n",
		"point", "offered/s", "goodput/s", "good%", "acc p99us", "shed", "expired", "codel", "brownout")
	for _, p := range r.Points {
		name := fmt.Sprintf("%.1fx", p.Factor)
		if p.Control {
			name += " +control"
		} else {
			name += " baseline"
		}
		frac := 0.0
		if p.Offered > 0 {
			frac = float64(p.Good) / float64(p.Offered) * 100
		}
		fprintf(w, "%-14s %10.0f %10.0f %9.1f%% %10.1f %10d %9d %9d %9d\n",
			name, p.OfferedRate, p.Goodput, frac, p.AcceptedP99Us,
			p.Shed+p.ClientDrops, p.SrvExpired, p.SrvCoDelSheds, p.SrvBrownouts)
	}
	if peak := r.PeakGoodput(); peak > 0 {
		for _, f := range []float64{2, 3} {
			on, off := r.GoodputFraction(f, true), r.GoodputFraction(f, false)
			if on > 0 || off > 0 {
				fprintf(w, "\nAt %.0fx capacity: goodput %.0f%% of peak with control, %.0f%% baseline.",
					f, on*100, off*100)
			}
		}
		fprintf(w, "\n")
	}
	c := r.Containment
	if c.Clients > 0 {
		fprintf(w, "\nContainment: %d retrying clients vs %d admitted: %d requests, %d retries, %d breaker opens, %d fast-fails, %d hedges (%d won).\n",
			c.Clients, c.Admitted, c.Requests, c.Retries, c.BreakerOpens, c.BreakerFastFails, c.Hedges, c.HedgeWins)
		if c.HealthOverload != nil {
			fprintf(w, "healthz overload: sheds=%d expired=%d codel=%d brownouts=%d breaker_opens=%d\n",
				c.HealthOverload.Sheds, c.HealthOverload.Expired, c.HealthOverload.CoDelSheds,
				c.HealthOverload.Brownouts, c.HealthOverload.BreakerOpens)
		}
	}
}
