package bench

import (
	"io"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/kvserver"
	"packetstore/internal/wrkgen"
)

// BatchPoint is one (MaxBatch, connections) measurement of the
// group-persist pipeline (E10).
type BatchPoint struct {
	Batch int
	Conns int
	// Throughput is measured req/s over the window.
	Throughput float64
	MeanLatUs  float64
	P50LatUs   float64
	P99LatUs   float64
	// FencesPerOp / FlushesPerOp / LinesPerOp are the PM persist costs
	// amortized over the measured requests: group commit's whole point
	// is driving FencesPerOp below 1.
	FencesPerOp  float64
	FlushesPerOp float64
	LinesPerOp   float64
	// GroupCommits is how many multi-connection bursts the server
	// committed during the window; GroupedConns the connections they
	// covered, so AvgBurst = GroupedConns/GroupCommits.
	GroupCommits uint64
	GroupedConns uint64
	AvgBurst     float64
	// Puts/ZeroCopyPuts confirm the measured path: only zero-copy PUTs
	// stage into the group commit.
	Puts         uint64
	ZeroCopyPuts uint64
}

// BatchResult reproduces experiment E10: small-value continual PUTs
// against a single-loop packetstore with the group-persist pipeline
// swept over MaxBatch × connection count. The batch=1 column is the
// per-op commit path (the pre-batching server); fence-per-op and
// flush-per-op counters show where the throughput comes from.
type BatchResult struct {
	Duration time.Duration
	Batches  []int
	Conns    []int
	Points   []BatchPoint
}

// RunBatch sweeps group-commit batch sizes × connection counts over a
// single-shard zero-copy packetstore deployment.
func RunBatch(profile calib.Profile, batches, conns []int, duration time.Duration) (BatchResult, error) {
	if len(batches) == 0 {
		batches = []int{1, 4, 16, 64}
	}
	if len(conns) == 0 {
		conns = []int{1, 16, 64, 100}
	}
	if duration <= 0 {
		duration = time.Second
	}
	out := BatchResult{Duration: duration, Batches: batches, Conns: conns}

	for _, nb := range batches {
		for _, nc := range conns {
			cfg := core.Config{
				MetaSlots: 1 << 16, DataSlots: 1 << 16, ChecksumReuse: true,
			}
			d, err := deploy(deployOptions{
				profile: profile, kind: kindPktStore, zeroCopy: true,
				storeCfg: cfg, srvCfg: kvserver.Config{MaxBatch: nb},
			})
			if err != nil {
				return out, err
			}
			wl := wrkgen.Config{
				Conns: nc, ValueSize: 128,
				KeySpace: 4096, KeyDist: wrkgen.DistUniform,
				PutPct: 100, Seed: 11,
				// Pipelined clients (like async real-world writers) keep
				// requests queued at the server, which is what gives the
				// event loop multiple readable connections per cycle.
				Pipeline: 4,
			}
			// Warmup pass: fault in buffers and fill the keyspace so the
			// measured window is steady-state overwrites.
			wl.Requests = 2000 * nc
			if wl.Requests > 50000 {
				wl.Requests = 50000
			}
			if _, err := wrkgen.Run(wl, d.dial); err != nil {
				d.close()
				return out, err
			}
			// Measured pass against zeroed PM counters; server counters
			// are diffed across the window instead.
			d.pm.ResetStats()
			st0 := d.srv.Stats()
			wl.Requests = 0
			wl.Duration = duration
			wl.Seed = 12
			res, err := wrkgen.Run(wl, d.dial)
			pm := d.pm.Stats()
			st := d.srv.Stats()
			d.close()
			if err != nil {
				return out, err
			}
			p := BatchPoint{
				Batch: nb, Conns: nc,
				Throughput:   res.Throughput(),
				MeanLatUs:    us(res.Hist.Mean()),
				P50LatUs:     us(res.Hist.Percentile(50)),
				P99LatUs:     us(res.Hist.Percentile(99)),
				GroupCommits: st.GroupCommits - st0.GroupCommits,
				GroupedConns: st.GroupedConns - st0.GroupedConns,
				Puts:         st.Puts - st0.Puts,
				ZeroCopyPuts: st.ZeroCopyPuts - st0.ZeroCopyPuts,
			}
			if res.Requests > 0 {
				n := float64(res.Requests)
				p.FencesPerOp = float64(pm.Fences) / n
				p.FlushesPerOp = float64(pm.Flushes) / n
				p.LinesPerOp = float64(pm.LinesFlushed) / n
			}
			if p.GroupCommits > 0 {
				p.AvgBurst = float64(p.GroupedConns) / float64(p.GroupCommits)
			}
			out.Points = append(out.Points, p)
		}
	}
	return out, nil
}

// point returns the measurement for (batch, conns), or nil.
func (r BatchResult) point(nb, nc int) *BatchPoint {
	for i := range r.Points {
		if r.Points[i].Batch == nb && r.Points[i].Conns == nc {
			return &r.Points[i]
		}
	}
	return nil
}

// Print renders the sweep as throughput/latency/persist-cost tables
// plus speedups over the batch=1 row.
func (r BatchResult) Print(w io.Writer) {
	fprintf(w, "Batch sweep: continual 128B writes, group-commit MaxBatch x connections (%v per point)\n", r.Duration)
	fprintf(w, "\nThroughput (k req/s):\n%-10s", "batch")
	for _, nc := range r.Conns {
		fprintf(w, "%8d co", nc)
	}
	fprintf(w, "\n")
	for _, nb := range r.Batches {
		fprintf(w, "%-10d", nb)
		for _, nc := range r.Conns {
			if p := r.point(nb, nc); p != nil {
				fprintf(w, "%11.1f", p.Throughput/1000)
			}
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nMedian latency (us):\n%-10s", "batch")
	for _, nc := range r.Conns {
		fprintf(w, "%8d co", nc)
	}
	fprintf(w, "\n")
	for _, nb := range r.Batches {
		fprintf(w, "%-10d", nb)
		for _, nc := range r.Conns {
			if p := r.point(nb, nc); p != nil {
				fprintf(w, "%11.1f", p.P50LatUs)
			}
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nFences per op:\n%-10s", "batch")
	for _, nc := range r.Conns {
		fprintf(w, "%8d co", nc)
	}
	fprintf(w, "\n")
	for _, nb := range r.Batches {
		fprintf(w, "%-10d", nb)
		for _, nc := range r.Conns {
			if p := r.point(nb, nc); p != nil {
				fprintf(w, "%11.2f", p.FencesPerOp)
			}
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nSpeedup vs batch=1, flushes/op, achieved burst:\n")
	for _, nc := range r.Conns {
		base := r.point(r.Batches[0], nc)
		if base == nil || base.Throughput <= 0 {
			continue
		}
		for _, nb := range r.Batches {
			p := r.point(nb, nc)
			if p == nil {
				continue
			}
			fprintf(w, "  %3d conns, batch %3d: %.2fx, %.2f flushes/op, %.2f lines/op, burst %.1f\n",
				nc, nb, p.Throughput/base.Throughput, p.FlushesPerOp, p.LinesPerOp, p.AvgBurst)
		}
	}
	fprintf(w, "(batch=1 is the per-op commit path; fences/op < 1 means one group\n")
	fprintf(w, " fence covered several connections' PUTs)\n")
}
