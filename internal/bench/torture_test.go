package bench

import "testing"

// TestRunTortureSmoke runs a tiny sweep of every fault mode through the
// bench wrapper; the full sweep is pktbench -experiment torture.
func TestRunTortureSmoke(t *testing.T) {
	res, err := RunTorture(4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Modes) != 4 {
		t.Fatalf("want 4 modes, got %d", len(res.Modes))
	}
	if res.Failed() {
		for _, m := range res.Modes {
			for _, note := range m.FailureNotes {
				t.Errorf("%s: %s", m.Mode, note)
			}
		}
	}
}
