package bench

import (
	"bytes"
	"testing"
	"time"

	"packetstore/internal/calib"
)

// TestRunStealSmoke runs a small steal experiment through the bench
// wrapper; the full measurement is pktbench -experiment steal. It
// validates plumbing — skewed placement lands, cycles get stolen, the
// zero-copy path holds — not absolute latency numbers.
func TestRunStealSmoke(t *testing.T) {
	res, err := RunSteal(calib.Off(), 4, 24, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("want 3 points, got %d", len(res.Points))
	}
	on := res.point(true, true)
	if on == nil || on.Throughput <= 0 {
		t.Fatalf("skewed steal-on point missing or empty: %+v", on)
	}
	if on.Steals == 0 {
		t.Error("no cycles stolen under placement skew")
	}
	if on.Puts > 0 && on.ZeroCopyPuts+on.ZeroCopyFallbacks == 0 {
		t.Error("no PUT took the zero-copy path and none fell back — ingest accounting broken")
	}
	// The skewed no-steal row must show the imbalance the scheduler is
	// for: loop request counts cannot be empty.
	off := res.point(false, true)
	if off == nil || len(off.LoopRequests) != 4 {
		t.Fatalf("skewed baseline loop stats missing: %+v", off)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("stolen cycles")) {
		t.Fatal("print output missing steal summary")
	}
}
