package bench

import (
	"io"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/wrkgen"
)

// Fig2Series is one configuration's curve.
type Fig2Series struct {
	Name       string
	Throughput []float64       // req/s per connection count
	MeanLat    []time.Duration // per connection count
	P99Lat     []time.Duration
}

// Fig2Result reproduces Figure 2: latency and throughput of continual 1KB
// writes over parallel persistent TCP connections, with and without data
// management (and, for Figure 3 / E5, the packetstore).
type Fig2Result struct {
	Conns    []int
	Duration time.Duration
	Series   []Fig2Series
}

// RunFigure2 executes experiment E2 (and E5 when withPktStore is set).
func RunFigure2(profile calib.Profile, conns []int, duration time.Duration, withPktStore bool) (Fig2Result, error) {
	if len(conns) == 0 {
		conns = []int{1, 25, 50, 75, 100}
	}
	if duration <= 0 {
		duration = time.Second
	}
	out := Fig2Result{Conns: conns, Duration: duration}

	kinds := []struct {
		name string
		opt  deployOptions
	}{
		{"Net.+persist.", deployOptions{profile: profile, kind: kindRawPM}},
		{"Net.+data mgmt.+persist.", deployOptions{profile: profile, kind: kindNoveLSM, pmBytes: 256 << 20}},
	}
	if withPktStore {
		kinds = append(kinds, struct {
			name string
			opt  deployOptions
		}{"Packetstore (ours)", deployOptions{profile: profile, kind: kindPktStore, zeroCopy: true,
			storeCfg: storeCfgLarge()}})
	}

	for _, k := range kinds {
		series := Fig2Series{Name: k.name}
		for _, nc := range conns {
			d, err := deploy(k.opt)
			if err != nil {
				return out, err
			}
			res, err := wrkgen.Run(wrkgen.Config{
				Conns: nc, Duration: duration, Warmup: duration / 5,
				ValueSize: 1024, KeySpace: 1 << 16, KeyDist: wrkgen.DistSeq,
				PutPct: 100, Seed: 7,
			}, d.dial)
			d.close()
			if err != nil {
				return out, err
			}
			series.Throughput = append(series.Throughput, res.Throughput())
			series.MeanLat = append(series.MeanLat, res.Hist.Mean())
			series.P99Lat = append(series.P99Lat, res.Hist.Percentile(99))
		}
		out.Series = append(out.Series, series)
	}
	return out, nil
}

func storeCfgLarge() core.Config {
	return core.Config{
		MetaSlots: 1 << 17, DataSlots: 1 << 17, ChecksumReuse: true,
	}
}

// Print renders both panels of the figure as tables.
func (r Fig2Result) Print(w io.Writer) {
	fprintf(w, "Figure 2: continual 1KB writes over parallel persistent TCP connections (%v per point)\n", r.Duration)
	fprintf(w, "\nLatency (mean, us):\n%-28s", "series \\ conns")
	for _, c := range r.Conns {
		fprintf(w, "%10d", c)
	}
	fprintf(w, "\n")
	for _, s := range r.Series {
		fprintf(w, "%-28s", s.Name)
		for _, l := range s.MeanLat {
			fprintf(w, "%10.1f", us(l))
		}
		fprintf(w, "\n")
	}
	fprintf(w, "\nThroughput (k req/s):\n%-28s", "series \\ conns")
	for _, c := range r.Conns {
		fprintf(w, "%10d", c)
	}
	fprintf(w, "\n")
	for _, s := range r.Series {
		fprintf(w, "%-28s", s.Name)
		for _, t := range s.Throughput {
			fprintf(w, "%10.1f", t/1000)
		}
		fprintf(w, "\n")
	}
	// The paper's headline deltas, when both baseline series are present.
	if len(r.Series) >= 2 {
		a, b := r.Series[0], r.Series[1]
		fprintf(w, "\nData management cost (series 2 vs 1):\n")
		for i, c := range r.Conns {
			if a.Throughput[i] <= 0 || a.MeanLat[i] <= 0 {
				continue
			}
			tputDelta := (b.Throughput[i]/a.Throughput[i] - 1) * 100
			latDelta := (float64(b.MeanLat[i])/float64(a.MeanLat[i]) - 1) * 100
			fprintf(w, "  %3d conns: throughput %+.0f%%, latency %+.0f%%\n", c, tputDelta, latDelta)
		}
	}
}
