package bench

import (
	"bytes"
	"testing"
	"time"

	"packetstore/internal/calib"
)

// The harness smoke tests run with the "off" profile and small request
// counts: they validate plumbing and invariants, not absolute numbers
// (cmd/pktbench with the "paper" profile produces those).

func TestTable1Smoke(t *testing.T) {
	res, err := RunTable1(calib.Off(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkingRTT <= 0 || res.TotalRTT <= 0 {
		t.Fatalf("bad RTTs: %+v", res)
	}
	if res.TotalRTT < res.NetworkingRTT {
		t.Fatalf("storage stack faster than discard: %+v", res)
	}
	if res.RequestPrep <= 0 || res.Checksum <= 0 || res.DataCopy <= 0 || res.AllocInsert <= 0 {
		t.Fatalf("breakdown rows missing: %+v", res)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("Checksum calculation")) {
		t.Fatal("print output missing rows")
	}
}

func TestTable2Smoke(t *testing.T) {
	res, err := RunTable2(calib.Off(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.ZeroCopyPuts == 0 || res.ChecksumReused == 0 {
		t.Fatalf("zero-copy machinery not engaged: %+v", res)
	}
	if res.DataCopy != 0 {
		t.Fatalf("zero-copy path copied data: %v", res.DataCopy)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestFigure2Smoke(t *testing.T) {
	res, err := RunFigure2(calib.Off(), []int{1, 4}, 150*time.Millisecond, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("%d series", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Throughput) != 2 {
			t.Fatalf("series %s has %d points", s.Name, len(s.Throughput))
		}
		for i, tput := range s.Throughput {
			if tput <= 0 {
				t.Fatalf("series %s point %d: zero throughput", s.Name, i)
			}
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("Throughput")) {
		t.Fatal("print output missing panels")
	}
}

func TestAblationSmoke(t *testing.T) {
	res, err := RunAblation(calib.Off(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	full, noReuse, noZC := res.Rows[0], res.Rows[1], res.Rows[2]
	// Disabling checksum reuse must show software checksum time the full
	// configuration does not have.
	if noReuse.Checksum <= full.Checksum {
		t.Fatalf("checksum ablation invisible: full=%v off=%v", full.Checksum, noReuse.Checksum)
	}
	// Disabling zero-copy must show copy time.
	if noZC.DataCopy <= full.DataCopy {
		t.Fatalf("zero-copy ablation invisible: full=%v off=%v", full.DataCopy, noZC.DataCopy)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestScalingSmoke(t *testing.T) {
	res, err := RunScaling(calib.Off(), []int{1, 2}, []int{4}, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("%d points", len(res.Points))
	}
	for _, p := range res.Points {
		if p.Throughput <= 0 {
			t.Fatalf("zero throughput at %d shards", p.Shards)
		}
		if p.Puts == 0 || p.ZeroCopyPuts != p.Puts {
			// Aligned load means every PUT must take the zero-copy path,
			// at every shard count — the hash-alignment invariant.
			t.Fatalf("%d shards: %d/%d PUTs zero-copy", p.Shards, p.ZeroCopyPuts, p.Puts)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("Speedup")) {
		t.Fatal("print output missing speedups")
	}
}

func TestRecoverySmoke(t *testing.T) {
	res, err := RunRecovery(calib.Off(), []int{500, 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].RecoverTime <= 0 {
		t.Fatalf("%+v", res)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestMetaSizeSmoke(t *testing.T) {
	res, err := RunMetaSize(calib.Off(), 150, []int{128, 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 || res.Points[0].PutRTT <= 0 || res.Points[0].GetRTT <= 0 {
		t.Fatalf("%+v", res)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}
