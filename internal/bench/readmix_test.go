package bench

import (
	"bytes"
	"testing"
	"time"

	"packetstore/internal/calib"
)

// TestReadMixSmoke runs a small read-mix experiment through the bench
// wrapper; the full measurement is pktbench -experiment readmix. It
// validates plumbing — the A/B knob lands, GETs take the lock-free
// path, counters flow — not absolute throughput numbers.
func TestReadMixSmoke(t *testing.T) {
	res, err := runReadMix(calib.Off(), 2, []int{8}, []int{99}, 1<<10, 150*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 4 {
		t.Fatalf("want 4 points (direct+server x locked+fast), got %d", len(res.Points))
	}
	for _, direct := range []bool{true, false} {
		fast := res.point(false, direct, 99, 8)
		if fast == nil || fast.Throughput <= 0 {
			t.Fatalf("fast-path point (direct=%v) missing or empty: %+v", direct, fast)
		}
		if fast.Gets == 0 || fast.FastGets == 0 {
			t.Fatalf("no GET took the lock-free path (direct=%v): %+v", direct, fast)
		}
		// The fallback ratio must be below 100%: a fast path that always
		// concedes to the mutex is dead code, not an optimization.
		if fast.FastGetFallbacks >= fast.Gets {
			t.Fatalf("every GET fell back to the locked path (%d of %d, direct=%v)",
				fast.FastGetFallbacks, fast.Gets, direct)
		}
		locked := res.point(true, direct, 99, 8)
		if locked == nil || locked.Throughput <= 0 {
			t.Fatalf("locked baseline point (direct=%v) missing or empty: %+v", direct, locked)
		}
		// The A/B knob must actually pin the baseline to the mutex.
		if locked.FastGets != 0 {
			t.Fatalf("locked baseline served %d GETs lock-free (direct=%v)", locked.FastGets, direct)
		}
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("speedup")) {
		t.Fatal("print output missing speedup summary")
	}
}
