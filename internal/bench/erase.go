package bench

import (
	"fmt"
	"io"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
	"packetstore/internal/fault"
	"packetstore/internal/kvserver"
	"packetstore/internal/pmem"
	"packetstore/internal/wrkgen"
)

// EraseResult is experiment E13: the cross-shard parity sweep. Part one
// runs the erase torture mode over many seeds — whole data areas
// destroyed under traffic, healed by parity reconstruction (operator-
// reported or scrub-discovered), with two-member loss required to
// surface as typed ErrUnrecoverable. Part two prices the redundancy:
// write throughput with parity groups on vs off at the E10 group-commit
// sweet spot. Part three times a single-shard rebuild three ways — cold
// (full value rescan), warm (scrub stamps fresh, value sweep skipped:
// the scrub-aware hand-off), and after a data-area erase (every record
// re-materialised from parity).
type EraseResult struct {
	BaseSeed int64
	Runs     int
	Failures int
	// FailureNotes carries the first few failures verbatim — each names
	// the seed that reproduces it.
	FailureNotes []string `json:",omitempty"`

	// Sweep shape: even seeds lose one member (healable), odd seeds lose
	// two (must fail typed).
	SingleLossRuns int
	TwoLossRuns    int
	// Reconstructions totals records re-materialised from parity across
	// the sweep.
	Reconstructions uint64

	// Operator-path quarantine-to-readmission distribution (seed%4==0
	// runs).
	Rejoins     int
	RejoinP50us float64
	RejoinP95us float64
	RejoinMaxus float64

	// Parity write overhead: continual 128B PUTs, 16 pipelined
	// connections, group commit MaxBatch=16, four shards — without and
	// with a parity group spanning them. OverheadPct is the throughput
	// given up for the redundancy.
	BaselineThroughput float64
	ParityThroughput   float64
	OverheadPct        float64
	// ParityWritesPerOp / ParityLinesPerOp are the incremental parity
	// cost amortized over measured requests; the fence counts confirm
	// parity rides the existing group fence instead of adding its own.
	ParityWritesPerOp float64
	ParityLinesPerOp  float64
	BaseFencesPerOp   float64
	ParityFencesPerOp float64

	// Rebuild timing for one shard of RebuildRecords records.
	RebuildRecords       int
	ColdRebuildUs        float64
	WarmRebuildUs        float64
	ReconstructRebuildUs float64
}

// Failed reports whether the sweep found a correctness failure.
func (r EraseResult) Failed() bool {
	return r.Failures > 0
}

// RunErase executes experiment E13. seeds sizes the torture sweep
// (default 200); window is the throughput measurement duration per
// deployment (default 400ms).
func RunErase(profile calib.Profile, seeds int, baseSeed int64, window time.Duration) (EraseResult, error) {
	if seeds <= 0 {
		seeds = 200
	}
	if window <= 0 {
		window = 400 * time.Millisecond
	}
	out := EraseResult{BaseSeed: baseSeed, Runs: seeds}

	var rejoinNs []int64
	for i := 0; i < seeds; i++ {
		rs, err := fault.RunErase(baseSeed + int64(i))
		if rs.Seed%2 == 1 {
			out.TwoLossRuns++
		} else {
			out.SingleLossRuns++
		}
		out.Reconstructions += rs.Reconstructions
		if rs.RejoinNs > 0 {
			rejoinNs = append(rejoinNs, rs.RejoinNs)
		}
		if err != nil {
			out.Failures++
			if len(out.FailureNotes) < 8 {
				out.FailureNotes = append(out.FailureNotes, fmt.Sprintf("seed %d: %v", rs.Seed, err))
			}
		}
	}
	out.Rejoins = len(rejoinNs)
	out.RejoinP50us = pctUs(rejoinNs, 0.50)
	out.RejoinP95us = pctUs(rejoinNs, 0.95)
	out.RejoinMaxus = pctUs(rejoinNs, 1.00)

	base, err := parityThroughput(profile, 0, window)
	if err != nil {
		return out, err
	}
	par, err := parityThroughput(profile, 4, window)
	if err != nil {
		return out, err
	}
	out.BaselineThroughput = base.throughput
	out.ParityThroughput = par.throughput
	if base.throughput > 0 {
		out.OverheadPct = 1 - par.throughput/base.throughput
	}
	out.ParityWritesPerOp = par.parityWritesPerOp
	out.ParityLinesPerOp = par.parityLinesPerOp
	out.BaseFencesPerOp = base.fencesPerOp
	out.ParityFencesPerOp = par.fencesPerOp

	cold, n, err := rebuildTime(profile, rebuildCold)
	if err != nil {
		return out, err
	}
	warm, _, err := rebuildTime(profile, rebuildWarm)
	if err != nil {
		return out, err
	}
	recon, _, err := rebuildTime(profile, rebuildErase)
	if err != nil {
		return out, err
	}
	out.RebuildRecords = n
	out.ColdRebuildUs = us(cold)
	out.WarmRebuildUs = us(warm)
	out.ReconstructRebuildUs = us(recon)
	return out, nil
}

// parityPoint is one throughput deployment's measurement.
type parityPoint struct {
	throughput        float64
	parityWritesPerOp float64
	parityLinesPerOp  float64
	fencesPerOp       float64
}

// parityThroughput measures continual-PUT throughput on a four-shard
// zero-copy deployment, with parity groups of size pg (0 disables).
// Geometry and workload are otherwise identical, so the delta is the
// parity fold-and-flush cost on the commit path.
func parityThroughput(profile calib.Profile, pg int, window time.Duration) (parityPoint, error) {
	const shards = 4
	cfg := core.Config{
		MetaSlots: 1 << 14, SlotSize: 128,
		DataSlots: 1 << 14, DataBufSize: 2048,
		ChecksumReuse: true, ParityGroup: pg,
	}
	d, err := deploy(deployOptions{
		profile: profile, kind: kindPktStore, zeroCopy: true,
		shards: shards, storeCfg: cfg,
		srvCfg: kvserver.Config{MaxBatch: 16},
	})
	if err != nil {
		return parityPoint{}, err
	}
	defer d.close()
	wl := d.align(wrkgen.Config{
		Conns: 16, ValueSize: 128,
		KeySpace: 4096, KeyDist: wrkgen.DistUniform,
		PutPct: 100, Seed: 11, Pipeline: 4,
	})
	// Warmup pass: fault in buffers and fill the keyspace so the
	// measured window is steady-state overwrites.
	wl.Requests = 2000 * wl.Conns
	if _, err := wrkgen.Run(wl, d.dial); err != nil {
		return parityPoint{}, err
	}
	d.pm.ResetStats()
	st0 := d.srv.Stats()
	wl.Requests = 0
	wl.Duration = window
	wl.Seed = 12
	res, err := wrkgen.Run(wl, d.dial)
	if err != nil {
		return parityPoint{}, err
	}
	pm := d.pm.Stats()
	st := d.srv.Stats()
	p := parityPoint{throughput: res.Throughput()}
	if res.Requests > 0 {
		n := float64(res.Requests)
		p.parityWritesPerOp = float64(st.ParityWrites-st0.ParityWrites) / n
		p.parityLinesPerOp = float64(pm.ParityLines) / n
		p.fencesPerOp = float64(pm.Fences) / n
	}
	return p, nil
}

// rebuildMode selects what state a timed rebuild starts from.
type rebuildMode int

const (
	// rebuildCold quarantines a healthy shard directly: the rescan's
	// value sweep re-reads and re-checksums every record.
	rebuildCold rebuildMode = iota
	// rebuildWarm runs one full scrub pass first, so every record's
	// stamp is fresh and the value sweep is skipped — the scrub-aware
	// rebuild hand-off.
	rebuildWarm
	// rebuildErase destroys the shard's whole data area first: the
	// rescan must re-materialise every record from parity and resync
	// the group.
	rebuildErase
)

// rebuildTime builds a four-shard parity store, loads it, applies the
// mode's preparation to one shard, and times Quarantine→Rebuild→rejoin.
func rebuildTime(profile calib.Profile, mode rebuildMode) (time.Duration, int, error) {
	const shards = 4
	cfg := core.Config{
		MetaSlots: 4096, SlotSize: 128,
		DataSlots: 8192, DataBufSize: 512,
		ParityGroup: shards,
	}
	r := pmem.New(core.ShardedRegionSize(cfg, shards), profile)
	ss, err := core.OpenSharded(r, cfg, shards)
	if err != nil {
		return 0, 0, err
	}
	val := make([]byte, 1024)
	for i := 0; i < 3000; i++ {
		k := []byte(fmt.Sprintf("key%012d", i))
		if err := ss.Put(k, val); err != nil {
			return 0, 0, err
		}
	}
	const victim = 0
	st := ss.Shard(victim)
	records := st.Stats().Records
	switch mode {
	case rebuildWarm:
		cursor := 0
		for {
			res := st.ScrubSlots(cursor, 512)
			cursor = res.Next
			if cursor == 0 {
				break
			}
		}
	case rebuildErase:
		ss.EraseDataArea(victim)
	}
	ss.Quarantine(victim, fmt.Errorf("bench: timed rebuild"))
	t0 := time.Now()
	if err := ss.Rebuild(victim); err != nil {
		return 0, records, err
	}
	el := time.Since(t0)
	if got := ss.Shard(victim).Stats().Records; got != records {
		return el, records, fmt.Errorf("bench: rebuild kept %d/%d records", got, records)
	}
	if err := ss.VerifyParity(); err != nil {
		return el, records, fmt.Errorf("bench: post-rebuild parity: %w", err)
	}
	return el, records, nil
}

// Print renders the erase summary.
func (r EraseResult) Print(w io.Writer) {
	fprintf(w, "Erase (E13): cross-shard parity sweep, base seed %d\n", r.BaseSeed)
	fprintf(w, "  torture: %d runs (%d single-loss, %d two-loss), %d failures\n",
		r.Runs, r.SingleLossRuns, r.TwoLossRuns, r.Failures)
	for _, note := range r.FailureNotes {
		fprintf(w, "  FAIL %s\n", note)
	}
	fprintf(w, "  reconstructions: %d records re-materialised from parity\n", r.Reconstructions)
	fprintf(w, "  operator rejoin [us]: p50 %.1f  p95 %.1f  max %.1f  (%d rejoins)\n",
		r.RejoinP50us, r.RejoinP95us, r.RejoinMaxus, r.Rejoins)
	fprintf(w, "  write overhead (16 conns, batch 16): base %.0f req/s, parity %.0f req/s, overhead %.1f%%\n",
		r.BaselineThroughput, r.ParityThroughput, r.OverheadPct*100)
	fprintf(w, "    parity writes/op %.2f, parity lines/op %.2f, fences/op %.2f -> %.2f\n",
		r.ParityWritesPerOp, r.ParityLinesPerOp, r.BaseFencesPerOp, r.ParityFencesPerOp)
	fprintf(w, "  one-shard rebuild (%d records): cold %.0f us, warm/scrubbed %.0f us, erase+reconstruct %.0f us\n",
		r.RebuildRecords, r.ColdRebuildUs, r.WarmRebuildUs, r.ReconstructRebuildUs)
}
