package bench

import (
	"io"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/core"
)

// Table2Result is experiment E3 (ours): the Table 1 breakdown measured
// against the packetstore, quantifying the savings §4.2 of the paper
// projects — checksum reuse eliminates the checksum pass, PASTE-style PM
// receive buffers eliminate the data copy, and sharing the network
// buffer allocator eliminates storage-allocator work.
type Table2Result struct {
	Requests int

	NetworkingRTT time.Duration
	TotalRTT      time.Duration
	NoPersistRTT  time.Duration

	// Per-request phases (direct instrumentation).
	RequestPrep time.Duration // server-side request parsing / dispatch
	Checksum    time.Duration // residual checksum work (header peeling)
	DataCopy    time.Duration // zero on the zero-copy path
	AllocInsert time.Duration // slot pop + skip-list search/link

	DataMgmt                 time.Duration
	Persistence              time.Duration // instrumented flush+fence per put
	PersistenceBySubtraction time.Duration

	// Plumbing counters proving the mechanisms engaged.
	ZeroCopyPuts   uint64
	ChecksumReused uint64
}

// RunTable2 executes experiment E3.
func RunTable2(profile calib.Profile, requests int) (Table2Result, error) {
	if requests <= 0 {
		requests = 2000
	}
	out := Table2Result{Requests: requests}

	d, err := deploy(deployOptions{profile: profile, kind: kindDiscard})
	if err != nil {
		return out, err
	}
	out.NetworkingRTT, err = measureRTT(d, requests, 1024)
	d.close()
	if err != nil {
		return out, err
	}

	run := func(noPersist bool) (time.Duration, core.Breakdown, uint64, uint64, time.Duration, error) {
		cfg := storeCfgLarge()
		cfg.Breakdown = true // this experiment reads per-phase timings
		d, err := deploy(deployOptions{
			profile: profile, kind: kindPktStore, zeroCopy: true,
			storeCfg: cfg, noPersist: noPersist,
		})
		if err != nil {
			return 0, core.Breakdown{}, 0, 0, 0, err
		}
		defer d.close()
		d.store.ResetBreakdown()
		rtt, err := measureRTT(d, requests, 1024)
		if err != nil {
			return 0, core.Breakdown{}, 0, 0, 0, err
		}
		bd := d.store.Breakdown()
		st := d.srv.Stats()
		var parsePer time.Duration
		if st.Requests > 0 {
			parsePer = st.ParseTime / time.Duration(st.Requests)
		}
		return rtt, bd, st.ZeroCopyPuts, d.store.Stats().ChecksumReused, parsePer, nil
	}

	rtt, bd, zc, reused, parsePer, err := run(false)
	if err != nil {
		return out, err
	}
	out.TotalRTT = rtt
	out.ZeroCopyPuts = zc
	out.ChecksumReused = reused
	if bd.Ops > 0 {
		ops := time.Duration(bd.Ops)
		out.Checksum = bd.Checksum / ops
		out.DataCopy = bd.Copy / ops
		out.AllocInsert = (bd.Alloc + bd.Meta) / ops
		out.Persistence = bd.Flush / ops
	}
	out.RequestPrep = parsePer
	out.DataMgmt = out.RequestPrep + out.Checksum + out.DataCopy + out.AllocInsert

	noPersistRTT, _, _, _, _, err := run(true)
	if err != nil {
		return out, err
	}
	out.NoPersistRTT = noPersistRTT
	if out.TotalRTT > out.NoPersistRTT {
		out.PersistenceBySubtraction = out.TotalRTT - out.NoPersistRTT
	}
	return out, nil
}

// Print renders the result next to Table 1's row structure.
func (r Table2Result) Print(w io.Writer) {
	fprintf(w, "Table 2 (ours): latency breakdown of a 1KB write against the packetstore (%d requests)\n", r.Requests)
	fprintf(w, "%-12s %-38s %10s\n", "Overhead", "Operation", "Time [us]")
	fprintf(w, "%-12s %-38s %10.2f\n", "Networking", "TCP/IP & HTTP both hosts + fabric", us(r.NetworkingRTT))
	fprintf(w, "%-12s %-38s %10.2f\n", "Data mgmt.", "Request parsing/dispatch", us(r.RequestPrep))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "Checksum (reused from NIC)", us(r.Checksum))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "Data copy (zero-copy ingest)", us(r.DataCopy))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "Slot allocation and insertion", us(r.AllocInsert))
	fprintf(w, "%-12s %-38s %10.2f\n", "", "(sum)", us(r.DataMgmt))
	fprintf(w, "%-12s %-38s %10.2f\n", "Persistence", "Flush CPU caches to PM", us(r.Persistence))
	fprintf(w, "%-12s %-38s %10.2f\n", "Total", "(measured full-stack RTT)", us(r.TotalRTT))
	fprintf(w, "cross-check: persistence by RTT subtraction = %.2f us (noisier)\n", us(r.PersistenceBySubtraction))
	fprintf(w, "zero-copy puts: %d, NIC checksums reused: %d\n", r.ZeroCopyPuts, r.ChecksumReused)
}
