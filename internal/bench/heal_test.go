package bench

import (
	"testing"
	"time"

	"packetstore/internal/calib"
)

// TestRunHealSmoke runs a tiny heal sweep through the bench wrapper;
// the full sweep is pktbench -experiment heal.
func TestRunHealSmoke(t *testing.T) {
	// The churn phase waits event-driven on the healer's rejoin sample
	// channel for the cycle in flight, so a short window can no longer
	// flake with zero completed rebuilds (it used to, about one run in
	// six at 50ms, when the wall-clock window raced the rebuild).
	res, err := RunHeal(calib.Off(), 6, 1000, 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed() {
		for _, note := range res.FailureNotes {
			t.Error(note)
		}
		t.Fatalf("heal sweep failed: flips %d/%d detected, %d failures",
			res.FlipsDetected, res.FlipsInjected, res.Failures)
	}
	if res.Rejoins == 0 {
		t.Fatal("no rejoin samples recorded")
	}
	if res.BaselineReadsPerSec <= 0 || res.HealReadsPerSec <= 0 {
		t.Fatalf("throughput phases empty: base %.0f heal %.0f",
			res.BaselineReadsPerSec, res.HealReadsPerSec)
	}
	if res.ChurnRebuilds == 0 {
		t.Fatal("churn phase completed no rebuilds")
	}
}
