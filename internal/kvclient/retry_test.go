package kvclient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"packetstore/internal/tcp"
)

func TestTransientClassification(t *testing.T) {
	transient := []error{
		&StatusError{Op: "GET", Status: 503},
		fmt.Errorf("wrapped: %w", &StatusError{Op: "PUT", Status: 503}),
		io.EOF,
		io.ErrUnexpectedEOF,
		os.ErrDeadlineExceeded,
		syscall.ECONNRESET,
		syscall.ECONNREFUSED,
		net.ErrClosed,
		tcp.ErrReset,
		tcp.ErrRefused,
		tcp.ErrTimeout,
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		&StatusError{Op: "GET", Status: 400},
		&StatusError{Op: "PUT", Status: 507},
		errors.New("kvproto: bad path"),
		tcp.ErrClosed,
	}
	for _, err := range permanent {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

// seqDial hands out scripted connections in order.
func seqDial(conns ...*scriptConn) func() (Conn, error) {
	i := 0
	return func() (Conn, error) {
		if i >= len(conns) {
			return nil, fmt.Errorf("dial budget exceeded")
		}
		c := conns[i]
		i++
		return c, nil
	}
}

const (
	resp200 = "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"
	resp503 = "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n"
	resp400 = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
)

func fastRetry(attempts int) RetryConfig {
	return RetryConfig{Attempts: attempts, Backoff: time.Microsecond, BackoffMax: 10 * time.Microsecond}
}

func TestRetryRidesThrough503(t *testing.T) {
	// Two sheds, then success — all on one connection (503 must not
	// redial: the server answered, the stream is synchronized).
	conn := &scriptConn{resp: []byte(resp503 + resp503 + resp200)}
	rc := NewRetry(seqDial(conn), fastRetry(5))
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry did not ride through 503s: %v", err)
	}
	st := rc.Stats()
	if st.Retries != 2 || st.Redials != 0 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v, want 2 retries on one conn", st)
	}
}

func TestRetryRedialsBrokenConn(t *testing.T) {
	// First connection dies mid-request (EOF); the retry must redial and
	// succeed on the second.
	dead := &scriptConn{} // immediate EOF
	live := &scriptConn{resp: []byte(resp200)}
	rc := NewRetry(seqDial(dead, live), fastRetry(3))
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry did not redial: %v", err)
	}
	if !dead.closed {
		t.Fatal("broken connection not closed")
	}
	if st := rc.Stats(); st.Redials != 1 {
		t.Fatalf("stats = %+v, want 1 redial", st)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	conn := &scriptConn{resp: []byte(resp400 + resp400)}
	rc := NewRetry(seqDial(conn), fastRetry(5))
	err := rc.Put([]byte("k"), []byte("v"))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 400 {
		t.Fatalf("want 400 StatusError, got %v", err)
	}
	if st := rc.Stats(); st.Retries != 0 {
		t.Fatalf("retried a permanent error: %+v", st)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	conn := &scriptConn{resp: []byte(resp503 + resp503 + resp503)}
	rc := NewRetry(seqDial(conn), fastRetry(3))
	err := rc.Put([]byte("k"), []byte("v"))
	if !Transient(err) || !errors.Is(err, ErrStatus) {
		t.Fatalf("exhausted error = %v, want the last 503", err)
	}
	if st := rc.Stats(); st.Exhausted != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetryTimeoutOverOSSockets drives the per-request deadline end to
// end: a server that accepts and goes quiet must produce a transient
// timeout, and the retry layer must redial and succeed against the
// replacement.
func TestRetryTimeoutOverOSSockets(t *testing.T) {
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	conns := 0
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			conns++
			if conns == 1 {
				// First connection: swallow the request, never answer.
				go func(c net.Conn) {
					buf := make([]byte, 4096)
					for {
						if _, err := c.Read(buf); err != nil {
							c.Close()
							return
						}
					}
				}(c)
				continue
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
					c.Write([]byte(resp200))
				}
			}(c)
		}
	}()

	rc := NewRetry(func() (Conn, error) {
		return net.Dial("tcp", lst.Addr().String())
	}, RetryConfig{Attempts: 3, Backoff: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		Timeout: 50 * time.Millisecond})
	defer rc.Close()
	start := time.Now()
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry did not recover from a stalled server: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("succeeded in %v — the deadline never fired", d)
	}
	if st := rc.Stats(); st.Redials != 1 {
		t.Fatalf("stats = %+v, want 1 redial after the timeout", st)
	}
}
