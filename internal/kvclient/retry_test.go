package kvclient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"syscall"
	"testing"
	"time"

	"packetstore/internal/tcp"
)

func TestTransientClassification(t *testing.T) {
	transient := []error{
		&StatusError{Op: "GET", Status: 503},
		fmt.Errorf("wrapped: %w", &StatusError{Op: "PUT", Status: 503}),
		io.EOF,
		io.ErrUnexpectedEOF,
		os.ErrDeadlineExceeded,
		syscall.ECONNRESET,
		syscall.ECONNREFUSED,
		net.ErrClosed,
		tcp.ErrReset,
		tcp.ErrRefused,
		tcp.ErrTimeout,
	}
	for _, err := range transient {
		if !Transient(err) {
			t.Errorf("Transient(%v) = false, want true", err)
		}
	}
	permanent := []error{
		nil,
		&StatusError{Op: "GET", Status: 400},
		&StatusError{Op: "PUT", Status: 507},
		errors.New("kvproto: bad path"),
		tcp.ErrClosed,
	}
	for _, err := range permanent {
		if Transient(err) {
			t.Errorf("Transient(%v) = true, want false", err)
		}
	}
}

// seqDial hands out scripted connections in order.
func seqDial(conns ...*scriptConn) func() (Conn, error) {
	i := 0
	return func() (Conn, error) {
		if i >= len(conns) {
			return nil, fmt.Errorf("dial budget exceeded")
		}
		c := conns[i]
		i++
		return c, nil
	}
}

const (
	resp200 = "HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n"
	resp503 = "HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\n\r\n"
	resp400 = "HTTP/1.1 400 Bad Request\r\nContent-Length: 0\r\n\r\n"
)

func fastRetry(attempts int) RetryConfig {
	return RetryConfig{Attempts: attempts, Backoff: time.Microsecond, BackoffMax: 10 * time.Microsecond}
}

func TestRetryRidesThrough503(t *testing.T) {
	// Two sheds, then success — all on one connection (503 must not
	// redial: the server answered, the stream is synchronized).
	conn := &scriptConn{resp: []byte(resp503 + resp503 + resp200)}
	rc := NewRetry(seqDial(conn), fastRetry(5))
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry did not ride through 503s: %v", err)
	}
	st := rc.Stats()
	if st.Retries != 2 || st.Redials != 0 || st.Exhausted != 0 {
		t.Fatalf("stats = %+v, want 2 retries on one conn", st)
	}
}

func TestRetryRedialsBrokenConn(t *testing.T) {
	// First connection dies mid-request (EOF); the retry must redial and
	// succeed on the second.
	dead := &scriptConn{} // immediate EOF
	live := &scriptConn{resp: []byte(resp200)}
	rc := NewRetry(seqDial(dead, live), fastRetry(3))
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry did not redial: %v", err)
	}
	if !dead.closed {
		t.Fatal("broken connection not closed")
	}
	if st := rc.Stats(); st.Redials != 1 {
		t.Fatalf("stats = %+v, want 1 redial", st)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	conn := &scriptConn{resp: []byte(resp400 + resp400)}
	rc := NewRetry(seqDial(conn), fastRetry(5))
	err := rc.Put([]byte("k"), []byte("v"))
	var se *StatusError
	if !errors.As(err, &se) || se.Status != 400 {
		t.Fatalf("want 400 StatusError, got %v", err)
	}
	if st := rc.Stats(); st.Retries != 0 {
		t.Fatalf("retried a permanent error: %+v", st)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	conn := &scriptConn{resp: []byte(resp503 + resp503 + resp503)}
	rc := NewRetry(seqDial(conn), fastRetry(3))
	err := rc.Put([]byte("k"), []byte("v"))
	if !Transient(err) || !errors.Is(err, ErrStatus) {
		t.Fatalf("exhausted error = %v, want the last 503", err)
	}
	if st := rc.Stats(); st.Exhausted != 1 || st.Retries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestRetryTimeoutOverOSSockets drives the per-request deadline end to
// end: a server that accepts and goes quiet must produce a transient
// timeout, and the retry layer must redial and succeed against the
// replacement.
func TestRetryTimeoutOverOSSockets(t *testing.T) {
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	conns := 0
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			conns++
			if conns == 1 {
				// First connection: swallow the request, never answer.
				go func(c net.Conn) {
					buf := make([]byte, 4096)
					for {
						if _, err := c.Read(buf); err != nil {
							c.Close()
							return
						}
					}
				}(c)
				continue
			}
			go func(c net.Conn) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
					c.Write([]byte(resp200))
				}
			}(c)
		}
	}()

	rc := NewRetry(func() (Conn, error) {
		return net.Dial("tcp", lst.Addr().String())
	}, RetryConfig{Attempts: 3, Backoff: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		Timeout: 50 * time.Millisecond})
	defer rc.Close()
	start := time.Now()
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry did not recover from a stalled server: %v", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("succeeded in %v — the deadline never fired", d)
	}
	if st := rc.Stats(); st.Redials != 1 {
		t.Fatalf("stats = %+v, want 1 redial after the timeout", st)
	}
}

func TestRetryHonorsRetryAfterHint(t *testing.T) {
	// Two 503s carrying a 40ms Retry-After-Ms hint, then success. The
	// hint must replace the (microsecond) exponential schedule, so the
	// operation cannot complete in less than two jittered hints (>= 20ms
	// each at half-jitter).
	const resp503Hint = "HTTP/1.1 503 Service Unavailable\r\nRetry-After-Ms: 40\r\nContent-Length: 0\r\n\r\n"
	conn := &scriptConn{resp: []byte(resp503Hint + resp503Hint + resp200)}
	rc := NewRetry(seqDial(conn), fastRetry(5))
	start := time.Now()
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("retry did not ride through hinted 503s: %v", err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("completed in %v — the 40ms Retry-After hints were not honored", d)
	}
	if st := rc.Stats(); st.Retries != 2 {
		t.Fatalf("stats = %+v, want 2 retries", st)
	}
}

func TestBreakerOpensAndFastFails(t *testing.T) {
	// Every request 503s: after BreakerThreshold consecutive transient
	// failures the breaker opens mid-operation, and the next operation
	// fast-fails locally without touching the connection.
	conn := &scriptConn{resp: []byte(resp503 + resp503 + resp503 + resp503)}
	cfg := fastRetry(10)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Hour // stay open for the test's lifetime
	rc := NewRetry(seqDial(conn), cfg)
	err := rc.Put([]byte("k"), []byte("v"))
	if !Transient(err) {
		t.Fatalf("want transient failure, got %v", err)
	}
	st := rc.Stats()
	if st.BreakerOpens != 1 {
		t.Fatalf("stats = %+v, want 1 breaker open", st)
	}
	wrote := conn.wrote.Len()
	if err := rc.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if conn.wrote.Len() != wrote {
		t.Fatal("fast-fail generated network traffic")
	}
	if st := rc.Stats(); st.BreakerFastFails != 1 {
		t.Fatalf("stats = %+v, want 1 fast-fail", st)
	}
	if !Transient(ErrBreakerOpen) {
		t.Fatal("ErrBreakerOpen must classify transient")
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	// Threshold failures open the breaker; after cooldown, the half-open
	// probe finds a healthy server and must close the breaker again.
	// One connection scripts the whole episode: two 503s (the outage),
	// then 200s (the recovery). 503s keep the connection synchronized, so
	// the half-open probe rides the same conn and finds it healthy.
	conn := &scriptConn{resp: []byte(resp503 + resp503 + resp200 + resp200)}
	cfg := fastRetry(2) // exactly threshold failures, then exhausted
	cfg.BreakerThreshold = 2
	cfg.BreakerCooldown = time.Millisecond
	rc := NewRetry(seqDial(conn), cfg)
	if err := rc.Put([]byte("k"), []byte("v")); !Transient(err) {
		t.Fatalf("want transient failure, got %v", err)
	}
	if st := rc.Stats(); st.BreakerOpens != 1 {
		t.Fatalf("stats = %+v, want breaker open", st)
	}
	time.Sleep(2 * time.Millisecond) // cooldown passes
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if err := rc.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("closed breaker rejected: %v", err)
	}
	if st := rc.Stats(); st.BreakerFastFails != 0 {
		t.Fatalf("stats = %+v, want no fast-fails after recovery", st)
	}
}

func TestRetryBudgetStopsAmplification(t *testing.T) {
	// A bucket of 2 tokens allows two retries across operations; the
	// third retry is denied and the operation fails with the last error
	// even though attempts remain.
	conn := &scriptConn{resp: []byte(resp503 + resp503 + resp503 + resp503)}
	cfg := fastRetry(10)
	cfg.RetryBudget = 2
	rc := NewRetry(seqDial(conn), cfg)
	err := rc.Put([]byte("k"), []byte("v"))
	if !Transient(err) {
		t.Fatalf("want transient failure, got %v", err)
	}
	st := rc.Stats()
	if st.Retries != 2 || st.BudgetDenied != 1 || st.Exhausted != 1 {
		t.Fatalf("stats = %+v, want 2 retries then a budget denial", st)
	}
}

func TestHedgedGetRacesStragglers(t *testing.T) {
	// The primary server accepts the GET and stalls forever; the hedge
	// (second dial) answers. The client must return the hedge's response
	// and adopt its connection as the new primary.
	lst, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lst.Close()
	const hedgeVal = "hedged"
	conns := 0
	go func() {
		for {
			c, err := lst.Accept()
			if err != nil {
				return
			}
			conns++
			stall := conns == 1
			go func(c net.Conn, stall bool) {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
					if stall {
						continue // swallow: the straggling primary
					}
					fmt.Fprintf(c, "HTTP/1.1 200 OK\r\nContent-Length: %d\r\n\r\n%s", len(hedgeVal), hedgeVal)
				}
			}(c, stall)
		}
	}()
	rc := NewRetry(func() (Conn, error) {
		return net.Dial("tcp", lst.Addr().String())
	}, RetryConfig{Attempts: 2, Backoff: time.Millisecond, BackoffMax: time.Millisecond,
		Timeout: time.Second, Hedge: 5 * time.Millisecond})
	defer rc.Close()
	val, ok, err := rc.Get([]byte("k"))
	if err != nil || !ok || string(val) != hedgeVal {
		t.Fatalf("hedged GET = %q, %v, %v; want %q", val, ok, err, hedgeVal)
	}
	st := rc.Stats()
	if st.Hedges != 1 || st.HedgeWins != 1 {
		t.Fatalf("stats = %+v, want 1 hedge, 1 win", st)
	}
	// The adopted hedge connection keeps serving.
	if val, ok, err := rc.Get([]byte("k")); err != nil || !ok || string(val) != hedgeVal {
		t.Fatalf("post-hedge GET = %q, %v, %v", val, ok, err)
	}
}
