package kvclient

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// scriptConn feeds canned response bytes in configurable chunk sizes and
// records what the client wrote.
type scriptConn struct {
	wrote  bytes.Buffer
	resp   []byte
	chunk  int
	closed bool
}

func (c *scriptConn) Write(p []byte) (int, error) {
	c.wrote.Write(p)
	return len(p), nil
}

func (c *scriptConn) Read(p []byte) (int, error) {
	if len(c.resp) == 0 {
		return 0, io.EOF
	}
	n := len(c.resp)
	if c.chunk > 0 && n > c.chunk {
		n = c.chunk
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, c.resp[:n])
	c.resp = c.resp[n:]
	return n, nil
}

func (c *scriptConn) Close() error { c.closed = true; return nil }

func TestPutFormatsRequest(t *testing.T) {
	conn := &scriptConn{resp: []byte("HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n")}
	cl := New(conn)
	if err := cl.Put([]byte("k1"), []byte("hello")); err != nil {
		t.Fatal(err)
	}
	want := "PUT /k/k1 HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello"
	if conn.wrote.String() != want {
		t.Fatalf("wrote %q", conn.wrote.String())
	}
}

func TestGetParsesBodyAcrossChunks(t *testing.T) {
	for chunk := 1; chunk < 40; chunk += 7 {
		conn := &scriptConn{
			resp:  []byte("HTTP/1.1 200 OK\r\nContent-Length: 11\r\n\r\nhello world"),
			chunk: chunk,
		}
		cl := New(conn)
		v, ok, err := cl.Get([]byte("k"))
		if err != nil || !ok || string(v) != "hello world" {
			t.Fatalf("chunk=%d: %q %v %v", chunk, v, ok, err)
		}
	}
}

func TestGet404(t *testing.T) {
	conn := &scriptConn{resp: []byte("HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")}
	cl := New(conn)
	_, ok, err := cl.Get([]byte("k"))
	if err != nil || ok {
		t.Fatalf("%v %v", ok, err)
	}
}

func TestUnexpectedStatus(t *testing.T) {
	conn := &scriptConn{resp: []byte("HTTP/1.1 500 Internal Server Error\r\nContent-Length: 0\r\n\r\n")}
	cl := New(conn)
	if err := cl.Put([]byte("k"), nil); !errors.Is(err, ErrStatus) {
		t.Fatalf("want ErrStatus, got %v", err)
	}
}

func TestDelete(t *testing.T) {
	conn := &scriptConn{resp: []byte("HTTP/1.1 204 No Content\r\nContent-Length: 0\r\n\r\n" +
		"HTTP/1.1 404 Not Found\r\nContent-Length: 0\r\n\r\n")}
	cl := New(conn)
	found, err := cl.Delete([]byte("k"))
	if err != nil || !found {
		t.Fatalf("%v %v", found, err)
	}
	found, err = cl.Delete([]byte("k"))
	if err != nil || found {
		t.Fatalf("second delete: %v %v", found, err)
	}
	if !strings.Contains(conn.wrote.String(), "DELETE /k/k HTTP/1.1") {
		t.Fatalf("wrote %q", conn.wrote.String())
	}
}

func TestPipelinedResponsesStaySplit(t *testing.T) {
	// Two responses arriving in one read must be consumed one at a time.
	conn := &scriptConn{resp: []byte(
		"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nA" +
			"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\nB")}
	cl := New(conn)
	v1, _, err := cl.Get([]byte("k1"))
	if err != nil || string(v1) != "A" {
		t.Fatalf("%q %v", v1, err)
	}
	v2, _, err := cl.Get([]byte("k2"))
	if err != nil || string(v2) != "B" {
		t.Fatalf("%q %v", v2, err)
	}
}

func TestCloseClosesConn(t *testing.T) {
	conn := &scriptConn{}
	cl := New(conn)
	cl.Close()
	if !conn.closed {
		t.Fatal("underlying conn not closed")
	}
}

func TestReadError(t *testing.T) {
	conn := &scriptConn{} // immediate EOF
	cl := New(conn)
	if err := cl.Put([]byte("k"), nil); err == nil {
		t.Fatal("EOF not surfaced")
	}
}
