package kvclient

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"syscall"
	"time"

	"packetstore/internal/kvproto"
	"packetstore/internal/tcp"
)

// Transient reports whether err is worth retrying: the operation failed
// for a reason that heals with time — a 503 (shard down or rebuilding,
// connection shed), a response deadline, or a broken transport (reset,
// refused, EOF from a restarting server). Anything else — 4xx statuses,
// protocol errors, ErrFull's 507 — is permanent and retrying it only
// repeats the failure.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status == 503
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, ErrBreakerOpen):
		return true
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed),
		errors.Is(err, os.ErrDeadlineExceeded):
		return true
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE):
		return true
	case errors.Is(err, tcp.ErrReset), errors.Is(err, tcp.ErrRefused),
		errors.Is(err, tcp.ErrTimeout):
		return true
	}
	return false
}

// RetryConfig tunes the retry layer. The zero value makes 8 attempts
// with exponential backoff from 1ms to 250ms and no per-request
// deadline; the containment features (breaker, retry budget, hedging)
// are opt-in and disabled at zero.
type RetryConfig struct {
	// Attempts is the total tries per operation (first try included).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// attempt up to BackoffMax, with equal jitter (uniform in
	// [d/2, d]) so a fleet of clients does not reconverge in lockstep
	// on a recovering shard. When the server's 503 carries a
	// Retry-After-Ms hint, the hint replaces this schedule (same
	// jitter) — the server knows its own drain rate better than any
	// client-side guess.
	Backoff    time.Duration
	BackoffMax time.Duration
	// Timeout is the per-request response deadline applied to the
	// underlying Client (see Client.SetTimeout). Zero means none.
	Timeout time.Duration
	// Budget is the per-request latency budget advertised to the server
	// (X-Budget-Us); a deadline-aware server drops rather than executes
	// the request once it lapses. Zero sends no budget.
	Budget time.Duration
	// BreakerThreshold opens a per-target circuit breaker after this
	// many consecutive transient failures: further operations fast-fail
	// with ErrBreakerOpen (no network traffic) until BreakerCooldown
	// passes, then a single half-open probe decides whether to close it.
	// Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker rejects before
	// half-open probing (default 100ms when the breaker is enabled).
	BreakerCooldown time.Duration
	// RetryBudget caps retry amplification with a token bucket: the
	// bucket starts full at RetryBudget tokens, each retry spends one,
	// and each success refills RetryBudgetRatio (default 0.1) up to the
	// cap. An empty bucket stops retries — a saturated server is not
	// DDoSed by its own clients. Zero disables.
	RetryBudget float64
	// RetryBudgetRatio is the per-success refill (default 0.1: at most
	// one retry per ten successes in steady state).
	RetryBudgetRatio float64
	// Hedge, when > 0, hedges idempotent GETs: if the primary response
	// has not arrived within this delay, a second connection races the
	// same GET and the first answer wins. Point it near the expected
	// p99 so only stragglers pay the extra request.
	Hedge time.Duration
	// Seed randomizes the jitter; 0 derives one from the config.
	Seed int64
}

func (c *RetryConfig) fill() {
	if c.Attempts <= 0 {
		c.Attempts = 8
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 100 * time.Millisecond
	}
	if c.RetryBudget > 0 && c.RetryBudgetRatio <= 0 {
		c.RetryBudgetRatio = 0.1
	}
	if c.Seed == 0 {
		c.Seed = int64(c.Attempts)<<32 ^ int64(c.Backoff)
	}
}

// RetryStats counts the retry layer's work.
type RetryStats struct {
	// Retries counts re-attempts after a transient failure.
	Retries uint64
	// Redials counts reconnects after a transport-level failure (a 503
	// keeps the connection: the server answered, only the shard is
	// down).
	Redials uint64
	// Exhausted counts operations that failed after the final attempt.
	Exhausted uint64
	// BreakerOpens counts closed->open transitions of the circuit
	// breaker.
	BreakerOpens uint64
	// BreakerFastFails counts operations rejected locally while the
	// breaker was open (no network traffic generated).
	BreakerFastFails uint64
	// BudgetDenied counts retries suppressed by an empty retry-token
	// bucket.
	BudgetDenied uint64
	// Hedges counts hedge requests issued; HedgeWins counts the subset
	// where the hedge answered before the primary.
	Hedges    uint64
	HedgeWins uint64
}

// RetryClient wraps the dial-and-request cycle with transient-failure
// retry: operations back off exponentially with jitter and re-issue on
// 503s, response timeouts and broken connections, so callers ride
// through shard quarantines, rebuilds, and server restarts without
// seeing an error unless the outage outlasts the attempt budget. Not
// safe for concurrent use, like Client.
// breaker states: closed (normal), open (fast-fail), half-open (one
// probe in flight decides).
type breakerState int

const (
	brkClosed breakerState = iota
	brkOpen
	brkHalfOpen
)

// ErrBreakerOpen is returned without touching the network while the
// per-target circuit breaker is open. It is transient: the target may
// recover, so callers with time to spare can retry later.
var ErrBreakerOpen = errors.New("kvclient: circuit breaker open")

type RetryClient struct {
	dial  func() (Conn, error)
	cfg   RetryConfig
	cl    *Client
	rng   *rand.Rand
	stats RetryStats

	brk         breakerState
	brkFails    int       // consecutive transient failures while closed
	brkOpenedAt time.Time // when the breaker last opened
	tokens      float64   // retry-budget bucket (when RetryBudget > 0)
}

// NewRetry builds a retrying client over dial, which is invoked for the
// initial connection and after any transport-level failure.
func NewRetry(dial func() (Conn, error), cfg RetryConfig) *RetryClient {
	cfg.fill()
	return &RetryClient{
		dial:   dial,
		cfg:    cfg,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		tokens: cfg.RetryBudget,
	}
}

// Stats snapshots the retry counters.
func (rc *RetryClient) Stats() RetryStats { return rc.stats }

// Close closes the current connection, if any.
func (rc *RetryClient) Close() error {
	if rc.cl == nil {
		return nil
	}
	err := rc.cl.Close()
	rc.cl = nil
	return err
}

// dropConn discards a broken connection so the next attempt redials.
func (rc *RetryClient) dropConn() {
	if rc.cl != nil {
		rc.cl.Close()
		rc.cl = nil
	}
	rc.stats.Redials++
}

// sleepBackoff waits before retry round `round`: the server's
// Retry-After hint when the last failure carried one, otherwise the
// exponential schedule — jittered either way (equal jitter: half
// deterministic, half uniform) so a fleet does not reconverge in
// lockstep.
func (rc *RetryClient) sleepBackoff(round int, hint time.Duration) {
	d := rc.cfg.Backoff << uint(round)
	if d > rc.cfg.BackoffMax || d <= 0 {
		d = rc.cfg.BackoffMax
	}
	if hint > 0 {
		d = hint
	}
	d = d/2 + time.Duration(rc.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// retryAfterHint extracts the server's Retry-After-Ms backoff hint from
// a status error, or 0.
func retryAfterHint(err error) time.Duration {
	var se *StatusError
	if errors.As(err, &se) {
		return se.RetryAfter
	}
	return 0
}

// breakerAdmit gates an operation on the breaker state. It returns
// false (fast-fail) while the breaker is open and inside cooldown;
// after cooldown it admits a single half-open probe.
func (rc *RetryClient) breakerAdmit() bool {
	if rc.cfg.BreakerThreshold <= 0 {
		return true
	}
	if rc.brk == brkOpen {
		if time.Since(rc.brkOpenedAt) < rc.cfg.BreakerCooldown {
			rc.stats.BreakerFastFails++
			return false
		}
		rc.brk = brkHalfOpen
	}
	return true
}

// noteSuccess records a completed operation: closes the breaker and
// refills the retry-token bucket.
func (rc *RetryClient) noteSuccess() {
	rc.brk = brkClosed
	rc.brkFails = 0
	if rc.cfg.RetryBudget > 0 {
		rc.tokens += rc.cfg.RetryBudgetRatio
		if rc.tokens > rc.cfg.RetryBudget {
			rc.tokens = rc.cfg.RetryBudget
		}
	}
}

// noteFailure records a transient failure and reports whether the
// breaker just opened (the caller should stop hammering the target).
func (rc *RetryClient) noteFailure() bool {
	if rc.cfg.BreakerThreshold <= 0 {
		return false
	}
	if rc.brk == brkHalfOpen {
		// The probe failed: back to open for another cooldown.
		rc.brk = brkOpen
		rc.brkOpenedAt = time.Now()
		rc.stats.BreakerOpens++
		return true
	}
	rc.brkFails++
	if rc.brkFails >= rc.cfg.BreakerThreshold {
		rc.brk = brkOpen
		rc.brkOpenedAt = time.Now()
		rc.brkFails = 0
		rc.stats.BreakerOpens++
		return true
	}
	return false
}

// do runs op with the retry policy, redialing as needed.
func (rc *RetryClient) do(op func(cl *Client) error) error {
	if !rc.breakerAdmit() {
		return ErrBreakerOpen
	}
	var err error
	for attempt := 0; attempt < rc.cfg.Attempts; attempt++ {
		if attempt > 0 {
			// Retries spend from the token bucket: when overload has
			// drained it, first tries still flow but amplification stops.
			if rc.cfg.RetryBudget > 0 {
				if rc.tokens < 1 {
					rc.stats.BudgetDenied++
					break
				}
				rc.tokens--
			}
			rc.stats.Retries++
			rc.sleepBackoff(attempt-1, retryAfterHint(err))
		}
		if rc.cl == nil {
			var c Conn
			if c, err = rc.dial(); err != nil {
				if !Transient(err) {
					return err
				}
				if rc.noteFailure() {
					break
				}
				continue
			}
			rc.cl = New(c)
			rc.cl.SetTimeout(rc.cfg.Timeout)
			rc.cl.SetBudget(rc.cfg.Budget)
		}
		if err = op(rc.cl); err == nil {
			rc.noteSuccess()
			return nil
		}
		if !Transient(err) {
			return err
		}
		// A 503 means the server answered; the connection is still
		// synchronized and reusable. Everything else transient is a
		// transport failure — or a timeout that may have left a straggler
		// response in flight — so the connection must be replaced.
		if !errors.Is(err, ErrStatus) {
			rc.dropConn()
		}
		if rc.noteFailure() {
			// Breaker opened mid-loop: the target is saturated or down;
			// keeping on retrying is exactly the amplification the
			// breaker exists to stop.
			break
		}
	}
	rc.stats.Exhausted++
	return err
}

// Put stores key -> value, retrying transient failures.
func (rc *RetryClient) Put(key, value []byte) error {
	return rc.do(func(cl *Client) error { return cl.Put(key, value) })
}

// Get fetches key's value, retrying transient failures; ok=false on 404.
// With cfg.Hedge > 0 a straggling primary is raced by a second
// connection (GET is idempotent, so the duplicate is harmless).
func (rc *RetryClient) Get(key []byte) (val []byte, ok bool, err error) {
	err = rc.do(func(cl *Client) error {
		if rc.cfg.Hedge > 0 {
			val, ok, err = rc.raceGet(key)
		} else {
			val, ok, err = cl.Get(key)
		}
		return err
	})
	return val, ok, err
}

// raceGet issues the GET on the current connection and, if no answer
// arrives within cfg.Hedge, races it against a fresh connection; the
// first answer wins. The losing connection has a response in flight and
// can't be resynchronized, so it is closed; when the hedge wins it
// becomes the new primary.
func (rc *RetryClient) raceGet(key []byte) ([]byte, bool, error) {
	type getRes struct {
		val []byte
		ok  bool
		err error
	}
	primary := rc.cl
	ch1 := make(chan getRes, 1)
	go func() {
		v, o, e := primary.Get(key)
		ch1 <- getRes{v, o, e}
	}()
	t := time.NewTimer(rc.cfg.Hedge)
	defer t.Stop()
	select {
	case r := <-ch1:
		return r.val, r.ok, r.err
	case <-t.C:
	}
	rc.stats.Hedges++
	c2, derr := rc.dial()
	if derr != nil {
		// No second connection to race with: fall back to waiting for
		// the primary (its own timeout bounds the wait).
		r := <-ch1
		return r.val, r.ok, r.err
	}
	hedge := New(c2)
	hedge.SetTimeout(rc.cfg.Timeout)
	hedge.SetBudget(rc.cfg.Budget)
	ch2 := make(chan getRes, 1)
	go func() {
		v, o, e := hedge.Get(key)
		ch2 <- getRes{v, o, e}
	}()
	select {
	case r := <-ch1:
		hedge.Close() // mid-flight: discard
		return r.val, r.ok, r.err
	case r := <-ch2:
		rc.stats.HedgeWins++
		primary.Close() // mid-flight: unusable
		rc.cl = hedge   // adopt the winner as the new primary
		return r.val, r.ok, r.err
	}
}

// Delete removes key, retrying transient failures; found=false on 404.
func (rc *RetryClient) Delete(key []byte) (found bool, err error) {
	err = rc.do(func(cl *Client) error {
		found, err = cl.Delete(key)
		return err
	})
	return found, err
}

// Range queries [start, end) up to limit records, retrying transient
// failures.
func (rc *RetryClient) Range(start, end []byte, limit int) (kvs []kvproto.KV, err error) {
	err = rc.do(func(cl *Client) error {
		kvs, err = cl.Range(start, end, limit)
		return err
	})
	return kvs, err
}
