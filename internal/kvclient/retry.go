package kvclient

import (
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"syscall"
	"time"

	"packetstore/internal/kvproto"
	"packetstore/internal/tcp"
)

// Transient reports whether err is worth retrying: the operation failed
// for a reason that heals with time — a 503 (shard down or rebuilding,
// connection shed), a response deadline, or a broken transport (reset,
// refused, EOF from a restarting server). Anything else — 4xx statuses,
// protocol errors, ErrFull's 507 — is permanent and retrying it only
// repeats the failure.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Status == 503
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	switch {
	case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, io.ErrClosedPipe), errors.Is(err, net.ErrClosed),
		errors.Is(err, os.ErrDeadlineExceeded):
		return true
	case errors.Is(err, syscall.ECONNRESET), errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EPIPE):
		return true
	case errors.Is(err, tcp.ErrReset), errors.Is(err, tcp.ErrRefused),
		errors.Is(err, tcp.ErrTimeout):
		return true
	}
	return false
}

// RetryConfig tunes the retry layer. The zero value makes 8 attempts
// with exponential backoff from 1ms to 250ms and no per-request
// deadline.
type RetryConfig struct {
	// Attempts is the total tries per operation (first try included).
	Attempts int
	// Backoff is the delay before the second attempt; it doubles per
	// attempt up to BackoffMax, with equal jitter (uniform in
	// [d/2, d]) so a fleet of clients does not reconverge in lockstep
	// on a recovering shard.
	Backoff    time.Duration
	BackoffMax time.Duration
	// Timeout is the per-request response deadline applied to the
	// underlying Client (see Client.SetTimeout). Zero means none.
	Timeout time.Duration
	// Seed randomizes the jitter; 0 derives one from the config.
	Seed int64
}

func (c *RetryConfig) fill() {
	if c.Attempts <= 0 {
		c.Attempts = 8
	}
	if c.Backoff <= 0 {
		c.Backoff = time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 250 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = int64(c.Attempts)<<32 ^ int64(c.Backoff)
	}
}

// RetryStats counts the retry layer's work.
type RetryStats struct {
	// Retries counts re-attempts after a transient failure.
	Retries uint64
	// Redials counts reconnects after a transport-level failure (a 503
	// keeps the connection: the server answered, only the shard is
	// down).
	Redials uint64
	// Exhausted counts operations that failed after the final attempt.
	Exhausted uint64
}

// RetryClient wraps the dial-and-request cycle with transient-failure
// retry: operations back off exponentially with jitter and re-issue on
// 503s, response timeouts and broken connections, so callers ride
// through shard quarantines, rebuilds, and server restarts without
// seeing an error unless the outage outlasts the attempt budget. Not
// safe for concurrent use, like Client.
type RetryClient struct {
	dial  func() (Conn, error)
	cfg   RetryConfig
	cl    *Client
	rng   *rand.Rand
	stats RetryStats
}

// NewRetry builds a retrying client over dial, which is invoked for the
// initial connection and after any transport-level failure.
func NewRetry(dial func() (Conn, error), cfg RetryConfig) *RetryClient {
	cfg.fill()
	return &RetryClient{dial: dial, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the retry counters.
func (rc *RetryClient) Stats() RetryStats { return rc.stats }

// Close closes the current connection, if any.
func (rc *RetryClient) Close() error {
	if rc.cl == nil {
		return nil
	}
	err := rc.cl.Close()
	rc.cl = nil
	return err
}

// dropConn discards a broken connection so the next attempt redials.
func (rc *RetryClient) dropConn() {
	if rc.cl != nil {
		rc.cl.Close()
		rc.cl = nil
	}
	rc.stats.Redials++
}

// sleepBackoff waits the jittered backoff for the given retry round.
func (rc *RetryClient) sleepBackoff(round int) {
	d := rc.cfg.Backoff << uint(round)
	if d > rc.cfg.BackoffMax || d <= 0 {
		d = rc.cfg.BackoffMax
	}
	// Equal jitter: half deterministic, half uniform.
	d = d/2 + time.Duration(rc.rng.Int63n(int64(d/2)+1))
	time.Sleep(d)
}

// do runs op with the retry policy, redialing as needed.
func (rc *RetryClient) do(op func(cl *Client) error) error {
	var err error
	for attempt := 0; attempt < rc.cfg.Attempts; attempt++ {
		if attempt > 0 {
			rc.stats.Retries++
			rc.sleepBackoff(attempt - 1)
		}
		if rc.cl == nil {
			var c Conn
			if c, err = rc.dial(); err != nil {
				if !Transient(err) {
					return err
				}
				continue
			}
			rc.cl = New(c)
			rc.cl.SetTimeout(rc.cfg.Timeout)
		}
		if err = op(rc.cl); err == nil {
			return nil
		}
		if !Transient(err) {
			return err
		}
		// A 503 means the server answered; the connection is still
		// synchronized and reusable. Everything else transient is a
		// transport failure — or a timeout that may have left a straggler
		// response in flight — so the connection must be replaced.
		if !errors.Is(err, ErrStatus) {
			rc.dropConn()
		}
	}
	rc.stats.Exhausted++
	return err
}

// Put stores key -> value, retrying transient failures.
func (rc *RetryClient) Put(key, value []byte) error {
	return rc.do(func(cl *Client) error { return cl.Put(key, value) })
}

// Get fetches key's value, retrying transient failures; ok=false on 404.
func (rc *RetryClient) Get(key []byte) (val []byte, ok bool, err error) {
	err = rc.do(func(cl *Client) error {
		val, ok, err = cl.Get(key)
		return err
	})
	return val, ok, err
}

// Delete removes key, retrying transient failures; found=false on 404.
func (rc *RetryClient) Delete(key []byte) (found bool, err error) {
	err = rc.do(func(cl *Client) error {
		found, err = cl.Delete(key)
		return err
	})
	return found, err
}

// Range queries [start, end) up to limit records, retrying transient
// failures.
func (rc *RetryClient) Range(start, end []byte, limit int) (kvs []kvproto.KV, err error) {
	err = rc.do(func(cl *Client) error {
		kvs, err = cl.Range(start, end, limit)
		return err
	})
	return kvs, err
}
