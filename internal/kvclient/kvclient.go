// Package kvclient is the client side of the KV-over-HTTP protocol: a
// synchronous request/response client over any stream connection (the
// simulated TCP stack or a real net.Conn).
package kvclient

import (
	"errors"
	"fmt"
	"io"
	"time"

	"packetstore/internal/httpmsg"
	"packetstore/internal/kvproto"
)

// Conn is the transport the client runs on.
type Conn interface {
	io.Reader
	io.Writer
	Close() error
}

// Client issues storage requests over one persistent connection. Not safe
// for concurrent use; open one Client per connection.
type Client struct {
	c       Conn
	parser  *httpmsg.ResponseParser
	rbuf    []byte
	pend    []byte // unconsumed response bytes
	wbuf    []byte
	timeout time.Duration
	budget  time.Duration
}

// ErrStatus wraps an unexpected HTTP status. StatusError values match it
// under errors.Is.
var ErrStatus = errors.New("kvclient: unexpected status")

// StatusError is an operation that completed with an unexpected HTTP
// status — the server answered, the connection is intact, but the
// request did not succeed. A 503 (shard down, rebuilding, or connection
// shed) is transient: the retry layer backs off and re-issues on the
// same connection.
type StatusError struct {
	Op     string
	Status int
	// RetryAfter is the server's backoff hint (Retry-After-Ms header),
	// or 0 when the server sent none. The retry layer paces off it.
	RetryAfter time.Duration
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("kvclient: %s: unexpected status %d", e.Op, e.Status)
}

// Is matches ErrStatus so errors.Is(err, ErrStatus) keeps working.
func (e *StatusError) Is(target error) bool { return target == ErrStatus }

// deadliners are the two SetReadDeadline shapes a transport may offer
// (net.Conn returns an error; the simulated tcp.Conn does not).
type netDeadliner interface{ SetReadDeadline(time.Time) error }
type rawDeadliner interface{ SetReadDeadline(time.Time) }

// New wraps a connection.
func New(c Conn) *Client {
	return &Client{
		c:      c,
		parser: httpmsg.NewResponseParser(),
		rbuf:   make([]byte, 64<<10),
	}
}

// Close closes the underlying connection.
func (cl *Client) Close() error { return cl.c.Close() }

// SetTimeout installs a per-request response deadline: each Recv must
// complete within d or fail with a timeout error (transient — see
// Transient). Requires a transport with SetReadDeadline (net.Conn and
// the simulated tcp.Conn both qualify); zero disables. Without a
// deadline, a server that dies mid-response strands the client forever.
func (cl *Client) SetTimeout(d time.Duration) { cl.timeout = d }

// SetBudget attaches an X-Budget-Us latency-budget header to every
// subsequent request (see kvproto: servers that understand it drop the
// request instead of executing it once the budget lapses; old servers
// ignore it). Zero disables.
func (cl *Client) SetBudget(d time.Duration) { cl.budget = d }

// RetryAfter returns the server's backoff hint from the most recently
// received response (0 when the server sent none).
func (cl *Client) RetryAfter() time.Duration {
	return time.Duration(cl.parser.Response().RetryAfterMs) * time.Millisecond
}

// armDeadline applies the per-request deadline (or clears it) on
// transports that support one.
func (cl *Client) armDeadline(t time.Time) {
	switch c := cl.c.(type) {
	case netDeadliner:
		c.SetReadDeadline(t)
	case rawDeadliner:
		c.SetReadDeadline(t)
	}
}

// roundTrip sends a request and reads one full response.
func (cl *Client) roundTrip(method, path string, body []byte) (int, []byte, error) {
	if err := cl.Send(method, path, body); err != nil {
		return 0, nil, err
	}
	return cl.Recv()
}

// Send transmits one request without waiting for its response. Paired
// with Recv it pipelines requests on the connection: responses arrive
// in request order, so callers must issue exactly one Recv per Send,
// in order, and keep enough Recvs flowing that the peer's response
// stream never backs up.
func (cl *Client) Send(method, path string, body []byte) error {
	return cl.SendBudget(method, path, body, cl.budget)
}

// SendBudget is Send with an explicit per-request latency budget,
// overriding the connection-wide SetBudget value. Open-loop load
// generators use it to send the budget *remaining* after client-side
// queueing, so the server's doomed-work check sees the truth.
func (cl *Client) SendBudget(method, path string, body []byte, budget time.Duration) error {
	cl.wbuf = httpmsg.AppendRequestBudget(cl.wbuf[:0], method, path, len(body), budget.Microseconds())
	cl.wbuf = append(cl.wbuf, body...)
	_, err := cl.c.Write(cl.wbuf)
	return err
}

// Recv reads the next pipelined response (in request order) and returns
// its status and body.
func (cl *Client) Recv() (int, []byte, error) {
	if cl.timeout > 0 {
		cl.armDeadline(time.Now().Add(cl.timeout))
		defer cl.armDeadline(time.Time{})
	}
	cl.parser.Reset()
	var respBody []byte
	for {
		chunk := cl.pend
		if len(chunk) == 0 {
			n, err := cl.c.Read(cl.rbuf)
			if err != nil {
				return 0, nil, err
			}
			chunk = cl.rbuf[:n]
		}
		res := cl.parser.Feed(chunk)
		if res.Err != nil {
			return 0, nil, res.Err
		}
		respBody = append(respBody, chunk[res.Body.Off:res.Body.Off+res.Body.Len]...)
		rest := chunk[res.Consumed:]
		if res.Done {
			cl.pend = append(cl.pend[:0], rest...)
			return cl.parser.Response().Status, respBody, nil
		}
		cl.pend = cl.pend[:0]
	}
}

// Put stores key -> value.
func (cl *Client) Put(key, value []byte) error {
	status, _, err := cl.roundTrip("PUT", kvproto.KeyPath(key), value)
	if err != nil {
		return err
	}
	if status != 200 && status != 201 {
		return &StatusError{Op: "PUT", Status: status, RetryAfter: cl.RetryAfter()}
	}
	return nil
}

// Get fetches key's value; ok=false on 404.
func (cl *Client) Get(key []byte) ([]byte, bool, error) {
	status, body, err := cl.roundTrip("GET", kvproto.KeyPath(key), nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case 200:
		return body, true, nil
	case 404:
		return nil, false, nil
	}
	return nil, false, &StatusError{Op: "GET", Status: status, RetryAfter: cl.RetryAfter()}
}

// Delete removes key; found=false on 404.
func (cl *Client) Delete(key []byte) (bool, error) {
	status, _, err := cl.roundTrip("DELETE", kvproto.KeyPath(key), nil)
	if err != nil {
		return false, err
	}
	switch status {
	case 200, 204:
		return true, nil
	case 404:
		return false, nil
	}
	return false, &StatusError{Op: "DELETE", Status: status, RetryAfter: cl.RetryAfter()}
}

// Range queries [start, end) up to limit records.
func (cl *Client) Range(start, end []byte, limit int) ([]kvproto.KV, error) {
	status, body, err := cl.roundTrip("GET", kvproto.RangePath(start, end, limit), nil)
	if err != nil {
		return nil, err
	}
	if status != 200 {
		return nil, &StatusError{Op: "RANGE", Status: status, RetryAfter: cl.RetryAfter()}
	}
	return kvproto.DecodeRangeBody(body)
}
