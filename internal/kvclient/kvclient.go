// Package kvclient is the client side of the KV-over-HTTP protocol: a
// synchronous request/response client over any stream connection (the
// simulated TCP stack or a real net.Conn).
package kvclient

import (
	"errors"
	"fmt"
	"io"

	"packetstore/internal/httpmsg"
	"packetstore/internal/kvproto"
)

// Conn is the transport the client runs on.
type Conn interface {
	io.Reader
	io.Writer
	Close() error
}

// Client issues storage requests over one persistent connection. Not safe
// for concurrent use; open one Client per connection.
type Client struct {
	c      Conn
	parser *httpmsg.ResponseParser
	rbuf   []byte
	pend   []byte // unconsumed response bytes
	wbuf   []byte
}

// ErrStatus wraps an unexpected HTTP status.
var ErrStatus = errors.New("kvclient: unexpected status")

// New wraps a connection.
func New(c Conn) *Client {
	return &Client{
		c:      c,
		parser: httpmsg.NewResponseParser(),
		rbuf:   make([]byte, 64<<10),
	}
}

// Close closes the underlying connection.
func (cl *Client) Close() error { return cl.c.Close() }

// roundTrip sends a request and reads one full response.
func (cl *Client) roundTrip(method, path string, body []byte) (int, []byte, error) {
	if err := cl.Send(method, path, body); err != nil {
		return 0, nil, err
	}
	return cl.Recv()
}

// Send transmits one request without waiting for its response. Paired
// with Recv it pipelines requests on the connection: responses arrive
// in request order, so callers must issue exactly one Recv per Send,
// in order, and keep enough Recvs flowing that the peer's response
// stream never backs up.
func (cl *Client) Send(method, path string, body []byte) error {
	cl.wbuf = httpmsg.AppendRequest(cl.wbuf[:0], method, path, len(body))
	cl.wbuf = append(cl.wbuf, body...)
	_, err := cl.c.Write(cl.wbuf)
	return err
}

// Recv reads the next pipelined response (in request order) and returns
// its status and body.
func (cl *Client) Recv() (int, []byte, error) {
	cl.parser.Reset()
	var respBody []byte
	for {
		chunk := cl.pend
		if len(chunk) == 0 {
			n, err := cl.c.Read(cl.rbuf)
			if err != nil {
				return 0, nil, err
			}
			chunk = cl.rbuf[:n]
		}
		res := cl.parser.Feed(chunk)
		if res.Err != nil {
			return 0, nil, res.Err
		}
		respBody = append(respBody, chunk[res.Body.Off:res.Body.Off+res.Body.Len]...)
		rest := chunk[res.Consumed:]
		if res.Done {
			cl.pend = append(cl.pend[:0], rest...)
			return cl.parser.Response().Status, respBody, nil
		}
		cl.pend = cl.pend[:0]
	}
}

// Put stores key -> value.
func (cl *Client) Put(key, value []byte) error {
	status, _, err := cl.roundTrip("PUT", kvproto.KeyPath(key), value)
	if err != nil {
		return err
	}
	if status != 200 && status != 201 {
		return fmt.Errorf("%w: PUT %d", ErrStatus, status)
	}
	return nil
}

// Get fetches key's value; ok=false on 404.
func (cl *Client) Get(key []byte) ([]byte, bool, error) {
	status, body, err := cl.roundTrip("GET", kvproto.KeyPath(key), nil)
	if err != nil {
		return nil, false, err
	}
	switch status {
	case 200:
		return body, true, nil
	case 404:
		return nil, false, nil
	}
	return nil, false, fmt.Errorf("%w: GET %d", ErrStatus, status)
}

// Delete removes key; found=false on 404.
func (cl *Client) Delete(key []byte) (bool, error) {
	status, _, err := cl.roundTrip("DELETE", kvproto.KeyPath(key), nil)
	if err != nil {
		return false, err
	}
	switch status {
	case 200, 204:
		return true, nil
	case 404:
		return false, nil
	}
	return false, fmt.Errorf("%w: DELETE %d", ErrStatus, status)
}

// Range queries [start, end) up to limit records.
func (cl *Client) Range(start, end []byte, limit int) ([]kvproto.KV, error) {
	status, body, err := cl.roundTrip("GET", kvproto.RangePath(start, end, limit), nil)
	if err != nil {
		return nil, err
	}
	if status != 200 {
		return nil, fmt.Errorf("%w: RANGE %d", ErrStatus, status)
	}
	return kvproto.DecodeRangeBody(body)
}
