package core

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"packetstore/internal/checksum"
	"packetstore/internal/pmem"
)

// This file is the lock-free GET fast path (DESIGN.md §5.13): an
// optimistic, seqlock-validated read protocol that serves point lookups
// without ever taking the store mutex.
//
// Three pieces cooperate:
//
//   - A per-store mutation sequence (mutSeq): even = stable, odd = a
//     mutation is in flight. Every section that changes the index, the
//     slot area or the data area — stage, group commit, delete, scrub
//     rewrite, parity repair, rehydrate, fault injection — brackets
//     itself with beginMutLocked/endMutLocked under s.mu. Readers
//     snapshot an even sequence, do their work, and re-check it;
//     any change means a mutation overlapped and the result is thrown
//     away.
//
//   - A volatile mirror of the persistent skip list: one immutable
//     descriptor (nodeDesc) per committed record, published through
//     recs[slot] with an atomic head tower (fastHead) and per-node
//     atomic successor towers. Mutators maintain the mirror under s.mu
//     inside their seqlock brackets; readers walk it with plain atomic
//     loads. The mirror can be momentarily torn mid-bracket — a nil
//     descriptor or an exhausted step budget — which readers treat as a
//     retry signal, never an error.
//
//   - Per-data-slot pin counters (dataPins, now atomic). A validated
//     reader pins its record's data slots before re-checking the
//     sequence; sequential consistency of the two atomics makes the pin
//     visible to any mutator that could recycle or rewrite the slot
//     (the mutator stores the odd sequence before inspecting pins, the
//     reader pins before loading the even sequence — both cannot
//     succeed). Pinned slots are never returned to the NIC pool and
//     never rewritten in place by a parity repair, so the reader's
//     value bytes stay stable without the store lock. A mutator that
//     finds a slot pinned publishes a recycle intent (recycleWanted);
//     the final unpinner re-enters the lock and completes the recycle.
//
// Fallback taxonomy (all land in the locked slow path, counted by
// FastGetFallbacks):
//
//	odd sequence        — a mutation holds the store; queue behind it
//	staged puts pending — reads are a commit barrier and must stay one
//	gated record        — valueBad: the locked path answers typed
//	retries exhausted   — sustained churn; the lock is cheaper
//	checksum mismatch   — media damage (or a race the sequence cannot
//	                      see): the locked path re-reads and decides
//	LockedReads         — the A/B baseline knob for benchmarks
//
// A shard rebuild (Rehydrate) brackets its whole body and is therefore
// just another sequence change to readers — the epoch fence needs no
// separate read-side check.

// nodeDesc is the volatile mirror of one committed record: everything a
// lock-free GET needs, snapshotted at publish time. All fields except
// gated and next are immutable after publication; a record update
// publishes a fresh descriptor rather than mutating the old one, so a
// reader holding a stale pointer sees a consistent (merely outdated)
// view and the sequence re-check rejects it.
type nodeDesc struct {
	key    []byte   // private copy of the key bytes
	kp     uint64   // big-endian key prefix (compare order == bytes.Compare)
	koff   int      // region offset of the key bytes (latency modeling)
	exts   []Extent // immutable extent list
	vlen   int
	csum   uint32
	hwtime int64
	seq    uint64
	// gated mirrors valueBad[slot]: the record's value bytes are damaged
	// and awaiting parity repair, so reads must take the locked path for
	// its typed error.
	gated atomic.Bool
	// next mirrors the slot's tower: successor slot index + 1 per level
	// (0 = nil), updated by writeSlotNextLocked alongside the PM image.
	next [maxHeight]atomic.Uint32
}

// beginMutLocked opens a mutation bracket: the first (outermost) level
// flips the store's sequence odd, so lock-free readers fall back or
// discard. Caller holds s.mu. Brackets nest (a delete commits the staged
// group; a scrub triggers a rescan; a rescan triggers repairs).
func (s *Store) beginMutLocked() {
	if s.mutDepth == 0 {
		s.mutSeq.Add(1) // even -> odd
	}
	s.mutDepth++
}

// endMutLocked closes a mutation bracket; the outermost close flips the
// sequence back to even (a new value, so readers that snapshotted before
// the bracket reject their results).
func (s *Store) endMutLocked() {
	s.mutDepth--
	if s.mutDepth == 0 {
		s.mutSeq.Add(1) // odd -> even
	}
}

// publishDescLocked builds and publishes slot idx's descriptor from its
// current slot image. seq is the record's commit sequence (at stage time
// the image still carries seq=0, so the caller passes the assigned one).
// Caller holds s.mu inside a mutation bracket.
func (s *Store) publishDescLocked(idx int, seq uint64) {
	sl := s.slot(idx)
	exts, err := s.readExtentsLocked(sl)
	if err != nil {
		// A record whose extents cannot be decoded is never served fast;
		// the locked path owns its typed error.
		s.recs[idx].Store(nil)
		return
	}
	d := &nodeDesc{
		key:    append([]byte(nil), s.slotKey(sl)...),
		kp:     binary.LittleEndian.Uint64(sl[oKPrefix:]),
		koff:   int(binary.LittleEndian.Uint32(sl[oKOff:])),
		exts:   exts,
		vlen:   int(binary.LittleEndian.Uint32(sl[oVLen:])),
		csum:   binary.LittleEndian.Uint32(sl[oVCsum:]),
		hwtime: int64(binary.LittleEndian.Uint64(sl[oHWTime:])),
		seq:    seq,
	}
	for l := 0; l < maxHeight; l++ {
		d.next[l].Store(binary.LittleEndian.Uint32(sl[oTower+4*l:]))
	}
	d.gated.Store(s.valueBad[idx])
	s.recs[idx].Store(d)
}

// clearDescLocked unpublishes slot idx's descriptor (record retired,
// superseded, excised or about to be rebuilt).
func (s *Store) clearDescLocked(idx int) {
	s.recs[idx].Store(nil)
}

// setValueBadLocked flips a record's serving gate and mirrors it into
// the published descriptor so lock-free readers fall back immediately.
func (s *Store) setValueBadLocked(idx int, bad bool) {
	s.valueBad[idx] = bad
	if d := s.recs[idx].Load(); d != nil {
		d.gated.Store(bad)
	}
}

// cmpDesc orders key against a descriptor, mirroring compareKey: prefix
// first, then lengths for short keys, then a full compare. The full
// compare runs against the descriptor's DRAM key copy but still bills
// the PM read the locked walk would pay, so the fast path's speedup is
// lock removal, not an accounting artifact.
func (s *Store) cmpDesc(key []byte, kp uint64, d *nodeDesc, charge bool) int {
	if kp != d.kp {
		if kp < d.kp {
			return -1
		}
		return 1
	}
	if len(key) <= 8 && len(d.key) <= 8 {
		switch {
		case len(key) == len(d.key):
			return 0
		case len(key) < len(d.key):
			return -1
		default:
			return 1
		}
	}
	if charge {
		s.r.TouchFrom(s.nd(), d.koff, min(len(d.key), 64))
	}
	return bytes.Compare(key, d.key)
}

// fastFindGE walks the descriptor mirror to the first record >= key,
// charging the same modeled PM latency as the locked findGE (bottom two
// levels touch the slot line and, on full compares, the key bytes).
// ok=false reports a torn mirror — a nil descriptor or an exhausted
// step budget mid-bracket — which the caller maps to retry/fallback.
func (s *Store) fastFindGE(key []byte, kp uint64) (ge *nodeDesc, ok bool) {
	budget := s.cfg.MetaSlots + maxHeight + 1
	var cur *nodeDesc // nil = head
	level := maxHeight - 1
	for {
		var nxt int
		if cur == nil {
			nxt = int(s.fastHead[level].Load()) - 1
		} else {
			nxt = int(cur.next[level].Load()) - 1
		}
		if nxt >= 0 {
			if nxt >= len(s.recs) {
				return nil, false
			}
			if budget--; budget < 0 {
				return nil, false
			}
			d := s.recs[nxt].Load()
			if d == nil {
				return nil, false
			}
			if level <= 1 {
				s.r.TouchFrom(s.nd(), s.slotOff(nxt), 64)
			}
			if s.cmpDesc(key, kp, d, level <= 1) > 0 {
				cur = d
				continue
			}
			if level == 0 {
				return d, true
			}
		} else if level == 0 {
			return nil, true
		}
		level--
	}
}

// lineSpan counts the cache lines [off, off+n) covers — the unit the
// batched read charge (pmem.TouchLines) is billed in.
func lineSpan(off, n int) int {
	if n <= 0 {
		return 0
	}
	return (off+n-1)/pmem.LineSize - off/pmem.LineSize + 1
}

// pinDescExtents pins the data slots a descriptor's extents occupy.
func (s *Store) pinDescExtents(d *nodeDesc) {
	for i := range d.exts {
		s.dataPins[s.dataSlotIndex(d.exts[i].Off)].Add(1)
	}
}

// unpinFast drops fast-path pins. It re-enters the store lock only when
// a mutator published a deferred-recycle intent against one of the
// slots (it found the slot unreferenced but pinned); the final unpinner
// completes the recycle so pinned slots never leak.
func (s *Store) unpinFast(exts []Extent) {
	retry := false
	for i := range exts {
		idx := s.dataSlotIndex(exts[i].Off)
		if s.dataPins[idx].Add(-1) == 0 && s.recycleWanted[idx].Load() {
			retry = true
		}
	}
	if !retry {
		return
	}
	s.mu.Lock()
	for i := range exts {
		idx := s.dataSlotIndex(exts[i].Off)
		if s.recycleWanted[idx].Load() {
			s.recycleWanted[idx].Store(false)
			s.maybeRecycleLocked(idx)
		}
	}
	s.mu.Unlock()
}

// fastOutcome classifies one optimistic lookup attempt.
type fastOutcome int

const (
	// fastOK: the lookup validated — a hit (descriptor returned, its
	// data slots pinned) or a definite miss (nil descriptor).
	fastOK fastOutcome = iota
	// fastRetrySeq: the sequence moved mid-lookup; worth retrying.
	fastRetrySeq
	// fastRetryOdd: a mutation bracket was open at snapshot time. On
	// read-mostly traffic the caller yields once so the mutator can
	// close it, then retries; under sustained write pressure (oddHot
	// saturated) it concedes straight to the lock.
	fastRetryOdd
	// fastFall: the locked path is required (staged puts, gated record,
	// or a torn mirror the sequence cannot explain).
	fastFall
)

// fastGetAttempts bounds optimistic retries before conceding to the
// lock: under sustained write churn the lock queue is cheaper than
// spinning through invalidated snapshots.
const fastGetAttempts = 3

// oddHot thresholds. A reader that catches an open mutation bracket
// yields once and retries only while the gauge is below oddHotYield —
// on read-mostly traffic brackets are rare, the gauge sits near zero,
// and the yield stops every concurrent reader from convoying onto the
// mutex behind one writer (the queue drains serially, so the convoy
// costs far more than the yield). Under sustained write pressure the
// gauge saturates and readers concede immediately: the bracket they'd
// wait out would just be followed by another, and the extra scheduler
// round only fattens the tail the lock queue already bounds.
const (
	oddHotYield = 16
	oddHotMax   = 128
)

// yieldOnOdd reports whether an open-bracket retry is worth a yield.
func (s *Store) yieldOnOdd() bool {
	if s.oddHot.Load() >= oddHotYield {
		return false
	}
	runtime.Gosched()
	return true
}

// fastLookup runs one optimistic lookup. On fastOK with a non-nil
// descriptor the record's data slots are pinned and the store's
// mutation sequence is verified unchanged since before the walk; the
// caller must unpinFast(d.exts) when done with the bytes.
func (s *Store) fastLookup(key []byte) (d *nodeDesc, seq0 uint64, out fastOutcome) {
	seq0 = s.mutSeq.Load()
	if seq0&1 != 0 {
		// A mutation bracket is open; let the caller decide (via oddHot)
		// between one yield-and-retry and an immediate concession.
		if s.oddHot.Load() < oddHotMax {
			s.oddHot.Add(2)
		}
		return nil, 0, fastRetryOdd
	}
	if v := s.oddHot.Load(); v > 0 {
		s.oddHot.Add(-1)
	}
	if s.stagedN.Load() != 0 {
		// Reads are a commit barrier: a staged group is pending and the
		// locked path must commit it before serving.
		return nil, 0, fastFall
	}
	kp := keyPrefix(key)
	ge, ok := s.fastFindGE(key, kp)
	if !ok {
		if s.mutSeq.Load() != seq0 {
			return nil, 0, fastRetrySeq
		}
		// Torn mirror with no sequence change should not happen; be
		// defensive and take the lock rather than loop.
		return nil, 0, fastFall
	}
	if ge == nil || s.cmpDesc(key, kp, ge, false) != 0 {
		if s.mutSeq.Load() != seq0 {
			return nil, 0, fastRetrySeq
		}
		return nil, seq0, fastOK // validated miss
	}
	s.pinDescExtents(ge)
	if s.mutSeq.Load() != seq0 {
		s.unpinFast(ge.exts)
		return nil, 0, fastRetrySeq
	}
	// The pins are now visible to every future mutation bracket (it
	// stores the odd sequence before inspecting pins; we pinned before
	// loading the even sequence — sequential consistency orders the
	// two), so the extents' slots can be neither recycled nor rewritten
	// in place until unpinned.
	if ge.gated.Load() {
		s.unpinFast(ge.exts)
		return nil, 0, fastFall // valueBad: locked path answers typed
	}
	return ge, seq0, fastOK
}

// refFromDesc materialises the public Ref from a descriptor.
func refFromDesc(d *nodeDesc) Ref {
	return Ref{
		Extents: append([]Extent(nil), d.exts...),
		VLen:    d.vlen,
		Csum:    d.csum,
		HWTime:  time.Unix(0, d.hwtime),
		Seq:     d.seq,
	}
}

// fastGet is the lock-free copying read. done=false means the caller
// must run the locked slow path; val/ok are meaningful only when done.
func (s *Store) fastGet(key []byte) (val []byte, ok, done bool) {
	if s.cfg.LockedReads {
		return nil, false, false
	}
	yielded := false
	for attempt := 0; ; attempt++ {
		d, seq0, out := s.fastLookup(key)
		if out == fastRetryOdd && !yielded && s.yieldOnOdd() {
			yielded = true
			s.fastGetRetries.Add(1)
			continue
		}
		if out == fastRetrySeq && attempt+1 < fastGetAttempts {
			s.fastGetRetries.Add(1)
			continue
		}
		if out != fastOK {
			s.fastGetFallbacks.Add(1)
			return nil, false, false
		}
		if d == nil {
			s.gets.Add(1)
			s.fastGets.Add(1)
			return nil, false, true
		}
		// Copy each extent under the region's write lock (atomic against
		// every locked mutator), billing the whole value as one batched
		// PM read charge — same total lines the locked path reads.
		buf := make([]byte, d.vlen)
		pos, nl := 0, 0
		for _, e := range d.exts {
			s.r.CopyOut(buf[pos:pos+e.Len], e.Off)
			pos += e.Len
			nl += lineSpan(e.Off, e.Len)
		}
		off0 := 0
		if len(d.exts) > 0 {
			off0 = d.exts[0].Off
		}
		s.r.TouchLinesFrom(s.nd(), off0, nl)
		s.unpinFast(d.exts)
		if s.mutSeq.Load() != seq0 {
			// A mutation (possibly fault injection into our pinned bytes —
			// pins stop repairs and recycling, not injected media damage)
			// overlapped the copy: discard it.
			if attempt+1 < fastGetAttempts {
				s.fastGetRetries.Add(1)
				continue
			}
			s.fastGetFallbacks.Add(1)
			return nil, false, false
		}
		if s.cfg.VerifyOnGet {
			var acc checksum.Accumulator
			pos = 0
			for _, e := range d.exts {
				acc.Add(buf[pos : pos+e.Len])
				pos += e.Len
			}
			if checksum.Norm16(checksum.Fold(acc.Sum())) != checksum.Norm16(checksum.Fold(d.csum)) {
				// Stable snapshot, bad bytes: media damage. The locked path
				// re-reads and owns the typed error.
				s.fastGetFallbacks.Add(1)
				return nil, false, false
			}
		}
		s.gets.Add(1)
		s.hits.Add(1)
		s.fastGets.Add(1)
		return buf, true, true
	}
}

// fastGetRef is the lock-free zero-copy lookup. Like the locked GetRef,
// the returned extents are only guaranteed stable while pinned
// (GetRefPinned does lookup and pin atomically).
func (s *Store) fastGetRef(key []byte) (ref Ref, ok, done bool) {
	if s.cfg.LockedReads {
		return Ref{}, false, false
	}
	yielded := false
	for attempt := 0; ; attempt++ {
		d, seq0, out := s.fastLookup(key)
		if out == fastRetryOdd && !yielded && s.yieldOnOdd() {
			yielded = true
			s.fastGetRetries.Add(1)
			continue
		}
		if out == fastRetrySeq && attempt+1 < fastGetAttempts {
			s.fastGetRetries.Add(1)
			continue
		}
		if out != fastOK {
			s.fastGetFallbacks.Add(1)
			return Ref{}, false, false
		}
		if d == nil {
			s.gets.Add(1)
			s.fastGets.Add(1)
			return Ref{}, false, true
		}
		ref = refFromDesc(d)
		s.unpinFast(d.exts)
		if s.mutSeq.Load() != seq0 {
			if attempt+1 < fastGetAttempts {
				s.fastGetRetries.Add(1)
				continue
			}
			s.fastGetFallbacks.Add(1)
			return Ref{}, false, false
		}
		s.gets.Add(1)
		s.hits.Add(1)
		s.fastGets.Add(1)
		return ref, true, true
	}
}

// GetRefPinned resolves key and pins the data slots its extents occupy
// in one atomic step, returning the pinned Ref and its release. It
// closes the lookup→pin window that separate GetRef + PinExtents calls
// leave open (a delete between them could recycle the slots out from
// under the pin), and in the common case it completes without touching
// the store mutex — the zero-copy transmit path's read.
func (s *Store) GetRefPinned(key []byte) (Ref, func(), bool, error) {
	if !s.cfg.LockedReads {
		for attempt := 0; ; attempt++ {
			d, _, out := s.fastLookup(key)
			if out == fastRetrySeq && attempt+1 < fastGetAttempts {
				s.fastGetRetries.Add(1)
				continue
			}
			if out != fastOK {
				s.fastGetFallbacks.Add(1)
				break // locked slow path below
			}
			if d == nil {
				s.gets.Add(1)
				s.fastGets.Add(1)
				return Ref{}, nil, false, nil
			}
			// The pins taken by fastLookup are the result: hold them until
			// the caller releases.
			s.gets.Add(1)
			s.hits.Add(1)
			s.fastGets.Add(1)
			exts := d.exts
			var once sync.Once
			release := func() { once.Do(func() { s.unpinFast(exts) }) }
			return refFromDesc(d), release, true, nil
		}
	}
	s.mu.Lock()
	ref, ok, err := s.getRefLocked(key)
	if err != nil || !ok {
		s.mu.Unlock()
		return Ref{}, nil, ok, err
	}
	for _, e := range ref.Extents {
		s.dataPins[s.dataSlotIndex(e.Off)].Add(1)
	}
	s.mu.Unlock()
	exts := ref.Extents
	var once sync.Once
	release := func() { once.Do(func() { s.unpinFast(exts) }) }
	return ref, release, true, nil
}
