package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"packetstore/internal/checksum"
)

// This file is the self-healing layer: online rehydration of a
// quarantined store, the background scrubber's budgeted slot walk, and
// the index audit that catches tower damage the slot CRCs deliberately
// exclude. Everything here runs against a live region — no reboot, no
// repool — which is what distinguishes it from recover.go's boot path.

// Rehydrate re-runs recovery on this store's PM area in place, while the
// region (and the NIC wired to this store's receive pool) stays live.
// It repairs a damaged superblock from the configured geometry, rescans
// the slot array, rebuilds the index and recomputes the allocation state
// — and it reuses the existing packet pool, so the NIC's DMA wiring and
// slab allocation survive.
//
// Staged-but-uncommitted puts are dropped, and the epoch advances to
// make that loss detectable: a server that buffered acks against the
// staged group re-checks Epoch after its Commit, and a mismatch tells
// it those acks must not reach the client (it fails the connections
// instead — the writes were never durable, so nothing acked is lost).
//
// Record reference counts are recomputed from the scan; external pins
// (dataPins — transmit borrows, the server's key arena) are preserved,
// because their holders still append into or read from those slots.
// A slot re-admits to the NIC pool once both counts drain. Slots that
// were store-owned but end the scan unreferenced and unpinned (e.g.
// packet buffers mid-parse, or the data of dropped staged puts) stay
// slab-allocated: in-flight server work may still resolve them via
// ReleaseUnused, and anything truly orphaned leaks — bounded by the
// in-flight work at the instant of one heal event, not by later churn.
func (s *Store) Rehydrate() error {
	// With parity, a rebuild is also a reconstruction pass: take the
	// group's repair mutex before the store lock, so every repair below
	// runs with the group quiesced (scrub repairs elsewhere in the group
	// try-lock this mutex and defer). s.parity is immutable after attach.
	if rt := s.parity; rt != nil {
		rt.repairMu.Lock()
		defer rt.repairMu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// The whole rebuild is one mutation bracket: lock-free readers fall
	// back from the first dropped staged put to the rebuilt index, which
	// also covers the epoch advance — no separate read-side epoch check.
	s.beginMutLocked()
	defer s.endMutLocked()
	s.staged = nil
	s.stagedN.Store(0)
	s.fs.Reset()
	if s.r.ReadUint64(s.base+sbOMagic) != sbMagic || s.validateSuperblock() != nil {
		s.writeSuperblock()
	}
	s.epoch++
	return s.rescan(rescanRehydrate)
}

// CheckSuperblock revalidates the superblock magic and geometry — the
// scrubber's cheap per-pass shard-health probe. A failure means the
// store's layout anchor is damaged; the caller quarantines the shard and
// lets Rebuild repair it from configuration.
func (s *Store) CheckSuperblock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if m := s.r.ReadUint64(s.base + sbOMagic); m != sbMagic {
		return fmt.Errorf("%w: superblock magic %#x", ErrCorrupt, m)
	}
	return s.validateSuperblock()
}

// ScrubResult reports one budgeted scrub step.
type ScrubResult struct {
	// Checked counts committed record slots whose CRC and value checksum
	// were re-verified this step.
	Checked int
	// Bad counts slots found damaged (slot CRC, structural, or value
	// checksum failure).
	Bad int
	// Excised counts committed records the repair rebuild dropped from
	// the index (quarantined slots plus value-corrupt records retired).
	Excised int
	// Reconstructed counts damaged records repaired in place from parity
	// this step (their fences lifted, their bytes re-validated).
	Reconstructed int
	// Unrecoverable counts records whose reconstruction failed because
	// the loss exceeds the group's redundancy — the caller quarantines
	// the shard so the damage surfaces typed, never as silent misses.
	Unrecoverable int
	// NeedsRebuild counts damaged records an in-place repair could not
	// handle right now (group peer down or busy, or metadata damage):
	// the caller quarantines the shard and lets the rebuild path — which
	// owns the whole group — reconstruct or excise them.
	NeedsRebuild int
	// Next is the cursor for the following step; 0 means the pass
	// wrapped (one full sweep of the slot array completed).
	Next int
}

// ScrubSlots re-validates up to n committed slots starting at cursor —
// the background scrubber's unit of work. Each slot's stored CRC32C
// (which covers the commit word) is re-checked, and the record's value
// bytes are re-read against the transport-derived checksum, so both
// metadata bit flips and data-area media damage surface here instead of
// at the next reboot. Damage triggers an in-place repair: value-corrupt
// records are retired (commit word cleared — the meta slot is clean and
// recycles; the damaged data slots are fenced via dataHeld so they never
// rejoin the NIC pool), and the index, free list and counts are rebuilt
// by rescan, which quarantines CRC-corrupt slots exactly as boot
// recovery would.
//
// The caller paces calls to meet its lines/sec budget; each call holds
// the store lock, so n bounds the per-step latency impact on serving
// operations.
func (s *Store) ScrubSlots(cursor, n int) ScrubResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitStagedLocked()
	// One bracket for the whole step: repairs rewrite media in place and
	// retired records unlink, so lock-free readers sit out the step (its
	// length is already bounded by n to cap serving-latency impact).
	s.beginMutLocked()
	defer s.endMutLocked()
	if cursor < 0 || cursor >= s.cfg.MetaSlots {
		cursor = 0
	}
	end := cursor + n
	if end > s.cfg.MetaSlots {
		end = s.cfg.MetaSlots
	}
	var res ScrubResult
	damaged := false
	for i := cursor; i < end; i++ {
		if s.metaFenced[i] {
			continue // already quarantined: damage reported once
		}
		sl := s.slot(i)
		if binary.LittleEndian.Uint32(sl[oMagic:]) != slotMagic {
			continue // free, or a chain slot (validated via its record)
		}
		if binary.LittleEndian.Uint64(sl[oSeq:]) == 0 {
			continue // uncommitted or deleted
		}
		res.Checked++
		s.r.TouchFrom(s.nd(), s.slotOff(i), s.cfg.SlotSize)
		if err := s.validateSlot(sl); err != nil {
			res.Bad++
			s.scrubStamp[i] = 0
			if s.parity == nil {
				// The repair rescan below re-finds this slot, fences it and
				// fires the quarantine hook — no need to report it twice.
				damaged = true
				continue
			}
			// CRC damage with parity: the record cannot be served (its key
			// bytes or extents are untrustworthy, so a lookup would miss
			// silently). Repair in place, or hand the shard to the rebuild
			// path, which owns the whole group.
			switch rerr := s.repairRecordLocked(i, false); {
			case rerr == nil:
				res.Reconstructed++
			case errors.Is(rerr, ErrUnrecoverable):
				res.Unrecoverable++
				s.setValueBadLocked(i, true)
			default: // deferred or metadata damage
				res.NeedsRebuild++
			}
			continue
		}
		exts, err := s.readExtentsLocked(sl)
		if err != nil {
			res.Bad++
			s.scrubStamp[i] = 0
			if s.parity == nil {
				damaged = true
			} else {
				res.NeedsRebuild++
			}
			continue
		}
		var acc checksum.Accumulator
		for _, e := range exts {
			s.r.TouchFrom(s.nd(), e.Off, e.Len)
			acc.Add(s.r.Slice(e.Off, e.Len))
		}
		want := binary.LittleEndian.Uint32(sl[oVCsum:])
		if checksum.Norm16(checksum.Fold(acc.Sum())) != checksum.Norm16(checksum.Fold(want)) {
			res.Bad++
			s.scrubStamp[i] = 0
			if s.parity != nil {
				// Data-area media damage under intact metadata: exactly what
				// parity covers. Repair in place; if the group cannot help
				// right now, gate the record (typed reads, skipped scans)
				// and fence its data slots until a later pass repairs it.
				switch rerr := s.repairRecordLocked(i, false); {
				case rerr == nil:
					res.Reconstructed++
				case errors.Is(rerr, ErrUnrecoverable):
					res.Unrecoverable++
					s.setValueBadLocked(i, true)
				default:
					s.setValueBadLocked(i, true)
					for _, e := range exts {
						s.dataHeld[s.dataSlotIndex(e.Off)] = true
					}
				}
				continue
			}
			// The metadata is intact but the value bytes are not: media
			// damage in the data area. Retire the record (clear the commit
			// word; crash-safe — recovery simply never sees it again), and
			// fence its data slots (dataHeld): the slot CRC passed, so the
			// extents are trustworthy and point at exactly the damaged
			// media — it must never be handed back to the NIC pool, even
			// after a later rebuild recomputes the reference counts.
			if s.onQuarantine != nil {
				s.onQuarantine(i, fmt.Errorf("%w: value checksum mismatch", ErrCorrupt))
			}
			for _, e := range exts {
				s.dataHeld[s.dataSlotIndex(e.Off)] = true
			}
			s.clearSeqLocked(i)
			damaged = true
			continue
		}
		s.scrubStamp[i] = s.scrubPass
	}
	if damaged {
		before := s.count
		// rescanIndex cannot fail: survivors passed validateSlot, so their
		// chains are intact.
		if err := s.rescan(rescanIndex); err != nil {
			panic(fmt.Sprintf("pktstore: index rescan failed on validated slots: %v", err))
		}
		if d := before - s.count; d > 0 {
			res.Excised = d
		}
	}
	if end >= s.cfg.MetaSlots {
		res.Next = 0
		// One full sweep completed: advance the validation generation the
		// per-slot stamps are measured against (rebuilds trust stamps from
		// the current or previous generation).
		s.scrubPass++
	} else {
		res.Next = end
	}
	return res
}

// AuditIndex verifies the skip list's structure — every level's chain
// must visit committed slots with strictly ascending keys within a
// bounded number of steps, and level 0 must visit exactly the live
// count. The slot CRC deliberately excludes the tower (it is retargeted
// at runtime without re-persisting), so a flipped tower pointer is
// invisible to ScrubSlots; unrepaired, it could cycle an index walk
// forever under the store lock. On damage the index is rebuilt from a
// slot rescan. Returns whether a rebuild ran and how many records it
// dropped.
//
// With parity attached the in-place rescan is refused: it would excise
// any CRC-damaged slot it trips over instead of reconstructing it. The
// returned error (typed ErrCorrupt) tells the caller to quarantine the
// shard and route it through Rebuild, whose rescan owns the whole group
// and repairs from parity.
func (s *Store) AuditIndex() (rebuilt bool, excised int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitStagedLocked()
	if s.auditLocked() {
		return false, 0, nil
	}
	if s.parity != nil {
		return false, 0, fmt.Errorf("%w: index structure damaged; rebuild required", ErrCorrupt)
	}
	before := s.count
	if rerr := s.rescan(rescanIndex); rerr != nil {
		panic(fmt.Sprintf("pktstore: index rescan failed on validated slots: %v", rerr))
	}
	if d := before - s.count; d > 0 {
		excised = d
	}
	return true, excised, nil
}

// auditLocked walks every tower level with a step budget, checking that
// each visited slot is committed, structurally sane, and in strictly
// ascending key order. It never dereferences an unvalidated key offset.
func (s *Store) auditLocked() bool {
	var prevKey []byte
	for level := 0; level < maxHeight; level++ {
		idx := s.headNext(level)
		prevKey = prevKey[:0]
		first := true
		steps := 0
		for idx >= 0 {
			if steps >= s.count || idx >= s.cfg.MetaSlots {
				return false // cycle, or more nodes than live records
			}
			steps++
			sl := s.slot(idx)
			if binary.LittleEndian.Uint32(sl[oMagic:]) != slotMagic ||
				binary.LittleEndian.Uint64(sl[oSeq:]) == 0 {
				return false // link targets a non-record
			}
			klen := int(binary.LittleEndian.Uint32(sl[oKLen:]))
			koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
			if klen == 0 || klen > 0xffff || !s.inDataArea(koff, klen) {
				return false
			}
			key := s.slotKey(sl)
			if !first && bytes.Compare(prevKey, key) >= 0 {
				return false // order violated (or a backward link)
			}
			prevKey = append(prevKey[:0], key...)
			first = false
			idx = slotNext(sl, level)
		}
		if level == 0 && steps != s.count {
			return false // level 0 must index every live record
		}
	}
	return true
}

// FlipTarget selects which byte class CorruptRecord damages.
type FlipTarget int

const (
	// FlipSlotField flips a CRC-covered metadata field (the hardware
	// timestamp / value checksum words — bytes no index walk dereferences,
	// so the damage is guaranteed latent until a scrub or reboot).
	FlipSlotField FlipTarget = iota
	// FlipKeyByte flips a key byte in the data area (covered by the slot
	// CRC).
	FlipKeyByte
	// FlipValueByte flips a value byte (covered by the transport-derived
	// value checksum).
	FlipValueByte
)

// CorruptRecord flips bits in key's committed record — the fault
// injection hook behind the heal torture mode. The damage hits both the
// volatile and durable images (a media fault, like pmem.CorruptByte,
// because that is what it uses). pick selects the byte within the
// target class; mask is the XOR pattern (a zero mask is promoted to 1
// so the call always damages something). Returns the absolute region
// offset flipped, or -1 when the key is absent.
func (s *Store) CorruptRecord(key []byte, t FlipTarget, pick int, mask byte) int {
	if mask == 0 {
		mask = 1
	}
	if pick < 0 {
		pick = -pick
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.commitStagedLocked()
	// Injection is a media mutation: bracket it so a lock-free reader
	// copying the victim's bytes discards its snapshot (the flip may land
	// mid-copy — pins stop repairs and recycling, not injected damage).
	s.beginMutLocked()
	defer s.endMutLocked()
	idx := s.findGE(key, nil)
	if idx < 0 || s.compareKey(key, keyPrefix(key), s.slot(idx), false) != 0 {
		return -1
	}
	sl := s.slot(idx)
	var off int
	switch t {
	case FlipKeyByte:
		klen := int(binary.LittleEndian.Uint32(sl[oKLen:]))
		koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
		off = koff + pick%klen
	case FlipValueByte:
		exts, err := s.readExtentsLocked(sl)
		if err != nil || len(exts) == 0 {
			return -1
		}
		total := 0
		for _, e := range exts {
			total += e.Len
		}
		p := pick % total
		for _, e := range exts {
			if p < e.Len {
				off = e.Off + p
				break
			}
			p -= e.Len
		}
	default:
		// [oHWTime, oKLen): timestamp and value-checksum bytes. CRC-covered
		// (detection guaranteed) but never used to route an index walk, so
		// concurrent reads of *other* keys stay safe between injection and
		// detection.
		off = s.slotOff(idx) + oHWTime + pick%(oKLen-oHWTime)
	}
	s.r.CorruptByte(off, mask)
	return off
}
