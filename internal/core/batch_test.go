package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

// batchOp is one step of a randomized workload for the equivalence
// property tests. Keys draw from a small space so overwrites, deletes
// of staged keys and same-key-twice-in-a-batch all occur.
type batchOp struct {
	Key byte
	Val uint16
	Del bool
}

func (op batchOp) key() []byte { return []byte(fmt.Sprintf("key-%02d", op.Key%32)) }

func (op batchOp) value() []byte {
	v := make([]byte, 32+int(op.Val)%480)
	for i := range v {
		v[i] = byte(int(op.Val) + i)
	}
	return v
}

// dump snapshots the store's logical contents (key -> value, ordered).
func dump(t testing.TB, s *Store) []Record {
	t.Helper()
	recs, err := s.Range(nil, nil, 0)
	if err != nil {
		t.Fatalf("Range: %v", err)
	}
	return recs
}

func sameContents(t testing.TB, a, b []Record) bool {
	t.Helper()
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !bytes.Equal(a[i].Key, b[i].Key) || !bytes.Equal(a[i].Value, b[i].Value) {
			return false
		}
	}
	return true
}

// TestBatchedEquivalenceQuick: any op stream applied through the staged
// path (committing every k ops) leaves the store logically identical to
// the per-op path — same keys, same values, same record count, clean
// Verify.
func TestBatchedEquivalenceQuick(t *testing.T) {
	cfg := Config{MetaSlots: 512, DataSlots: 512, VerifyOnGet: true}
	property := func(ops []batchOp, kRaw uint8) bool {
		k := 1 + int(kRaw)%9
		_, perOp := newStore(t, cfg)
		_, batched := newStore(t, cfg)
		for i, op := range ops {
			if op.Del {
				if _, err := perOp.Delete(op.key()); err != nil {
					t.Fatalf("per-op delete: %v", err)
				}
				if _, err := batched.Delete(op.key()); err != nil {
					t.Fatalf("batched delete: %v", err)
				}
				continue
			}
			if err := perOp.Put(op.key(), op.value()); err != nil {
				t.Fatalf("per-op put: %v", err)
			}
			if err := batched.PutStaged(op.key(), op.value()); err != nil {
				t.Fatalf("staged put: %v", err)
			}
			if (i+1)%k == 0 {
				batched.Commit()
			}
		}
		batched.Commit()
		if perOp.Len() != batched.Len() {
			return false
		}
		if bad, err := batched.Verify(); err != nil || len(bad) > 0 {
			return false
		}
		return sameContents(t, dump(t, perOp), dump(t, batched))
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(1))}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchedCrashEquivalence cuts the power at every persist-op index
// inside a batched commit and checks the recovered store holds exactly
// a prefix-consistent subset: every key either its last committed
// (pre-batch) value or the batch's value, no torn or phantom state,
// and nothing quarantined on a clean (untorn) cut.
func TestBatchedCrashEquivalence(t *testing.T) {
	pmem.SetCrashLogger(func(int64) {})
	defer pmem.SetCrashLogger(nil)
	cfg := Config{MetaSlots: 512, DataSlots: 512, VerifyOnGet: true}

	// The workload: 4 committed baseline records, then one batch of 8
	// staged puts (two overwriting baseline keys, two on the same fresh
	// key) and a commit.
	baseline := map[string]string{}
	runBatch := func(s *Store) {
		stage := func(k, v string) {
			if err := s.PutStaged([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		stage("base-0", "newer-0") // overwrite
		stage("fresh-a", "va-1")
		stage("fresh-b", "vb-1")
		stage("base-1", "newer-1") // overwrite
		stage("fresh-a", "va-2")   // supersedes va-1 in-batch
		stage("fresh-c", "vc-1")
		stage("fresh-d", "vd-1")
		stage("fresh-e", "ve-1")
		s.Commit()
	}
	setup := func() (*pmem.Region, *Store) {
		r := pmem.New(cfg.RegionSize(), calib.Off())
		s, err := Open(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("base-%d", i)
			v := fmt.Sprintf("old-%d", i)
			baseline[k] = v
			if err := s.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		return r, s
	}
	batchVal := map[string]string{
		"base-0": "newer-0", "base-1": "newer-1",
		"fresh-a": "va-2", "fresh-b": "vb-1", "fresh-c": "vc-1",
		"fresh-d": "vd-1", "fresh-e": "ve-1",
	}

	// Count the batch's persist ops.
	r0, s0 := setup()
	total := 0
	r0.SetPersistHook(func(op pmem.PersistOp) pmem.PersistDecision {
		total++
		return pmem.PersistDecision{}
	})
	runBatch(s0)
	r0.SetPersistHook(nil)
	if total == 0 {
		t.Fatal("no persist ops observed")
	}
	// The whole batch must cost far fewer persist ops than 8 per-op puts
	// would (2 with overwrites pay 3 phases): group commit = 5 ops here
	// (A flush, A fence, B flush+fence, C flush+fence = 6) at most.
	if total > 6 {
		t.Fatalf("batched commit issued %d persist ops, want <= 6", total)
	}

	for cut := 1; cut <= total; cut++ {
		for _, tear := range []int{0, 13} {
			r, s := setup()
			n := 0
			r.SetPersistHook(func(op pmem.PersistOp) pmem.PersistDecision {
				n++
				if n == cut {
					return pmem.PersistDecision{Cut: true, TearBytes: tear}
				}
				return pmem.PersistDecision{}
			})
			runBatch(s)
			acked := !r.PowerFailed() // commit returned without a cut? (never here)
			if acked {
				t.Fatalf("cut %d: power never failed", cut)
			}
			r.Crash(int64(cut*100 + tear))
			s2, err := Open(r, cfg)
			if err != nil {
				t.Fatalf("cut %d tear %d: reopen: %v", cut, tear, err)
			}
			if q := s2.Quarantined(); q != 0 {
				t.Fatalf("cut %d tear %d: %d slots quarantined", cut, tear, q)
			}
			// The batch was never acked (the cut precedes commit's
			// return), so every key may hold its pre-batch state or the
			// batch state — but nothing else, and no key outside the
			// expected set may exist.
			recs := dump(t, s2)
			for _, rec := range recs {
				k, v := string(rec.Key), string(rec.Value)
				if bv, inBatch := batchVal[k]; inBatch {
					if v != bv && v != baseline[k] {
						t.Fatalf("cut %d tear %d: key %q = %q, want %q or %q", cut, tear, k, v, bv, baseline[k])
					}
					continue
				}
				if bl, ok := baseline[k]; ok {
					if v != bl {
						t.Fatalf("cut %d tear %d: baseline key %q = %q, want %q", cut, tear, k, v, bl)
					}
					continue
				}
				t.Fatalf("cut %d tear %d: phantom key %q", cut, tear, k)
			}
			// Baseline keys can never disappear: their old version's
			// commit word is cleared only after the replacement fenced.
			have := map[string]bool{}
			for _, rec := range recs {
				have[string(rec.Key)] = true
			}
			for k := range baseline {
				if !have[k] {
					t.Fatalf("cut %d tear %d: baseline key %q lost", cut, tear, k)
				}
			}
			if bad, err := s2.Verify(); err != nil || len(bad) > 0 {
				t.Fatalf("cut %d tear %d: verify bad=%d err=%v", cut, tear, len(bad), err)
			}
		}
	}
}

// TestGroupCommitFenceAmortization: N staged puts commit under 2 fences
// (3 when the group replaces committed records) instead of N*2.
func TestGroupCommitFenceAmortization(t *testing.T) {
	_, s := newStore(t, Config{MetaSlots: 512, DataSlots: 512})
	r := s.Region()

	r.ResetStats()
	for i := 0; i < 16; i++ {
		if err := s.PutStaged([]byte(fmt.Sprintf("key-%02d", i)), []byte("value")); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Fences != 0 {
		t.Fatalf("staging fenced %d times, want 0", st.Fences)
	}
	s.Commit()
	st := r.Stats()
	if st.Fences != 2 {
		t.Fatalf("fresh-key group commit used %d fences, want 2", st.Fences)
	}
	if st.Flushes != 2 {
		t.Fatalf("fresh-key group commit used %d flush calls, want 2", st.Flushes)
	}

	// Overwrites add exactly one more flush+fence (phase C).
	r.ResetStats()
	for i := 0; i < 16; i++ {
		if err := s.PutStaged([]byte(fmt.Sprintf("key-%02d", i)), []byte("value2")); err != nil {
			t.Fatal(err)
		}
	}
	s.Commit()
	if st := r.Stats(); st.Fences != 3 {
		t.Fatalf("overwrite group commit used %d fences, want 3", st.Fences)
	}

	cs := s.Stats()
	if cs.GroupCommits != 2 || cs.GroupedPuts != 32 {
		t.Fatalf("group stats = %d commits / %d puts, want 2/32", cs.GroupCommits, cs.GroupedPuts)
	}
}

// TestCommitNoDuplicateLines: the commit protocol never issues a clwb
// for a line already sitting in the flushed-but-unfenced window — the
// assertion that the old per-extent + whole-slot double flushing is
// gone.
func TestCommitNoDuplicateLines(t *testing.T) {
	_, s := newStore(t, Config{MetaSlots: 512, DataSlots: 512})
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		key := []byte(fmt.Sprintf("key-%02d", rng.Intn(24)))
		val := make([]byte, 1+rng.Intn(1500))
		switch rng.Intn(4) {
		case 0:
			if err := s.Put(key, val); err != nil {
				t.Fatal(err)
			}
		case 1:
			if _, err := s.Delete(key); err != nil {
				t.Fatal(err)
			}
		default:
			if err := s.PutStaged(key, val); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				s.Commit()
			}
		}
	}
	s.Commit()
	if st := s.Region().Stats(); st.WastedFlushes != 0 {
		t.Fatalf("workload issued %d duplicate-line flushes, want 0", st.WastedFlushes)
	}
}

// TestStagedVisibilityBarriers: staged puts are not observable through
// reads until their group is durable — the read itself forces the
// commit.
func TestStagedVisibilityBarriers(t *testing.T) {
	_, s := newStore(t, Config{MetaSlots: 512, DataSlots: 512})
	if err := s.PutStaged([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if n := s.StagedPuts(); n != 1 {
		t.Fatalf("StagedPuts = %d, want 1", n)
	}
	r := s.Region()
	fencesBefore := r.Stats().Fences
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if r.Stats().Fences == fencesBefore {
		t.Fatal("read served a staged record without committing it")
	}
	if n := s.StagedPuts(); n != 0 {
		t.Fatalf("StagedPuts after read barrier = %d, want 0", n)
	}
}

func benchPut(b *testing.B, staged bool) {
	cfg := Config{MetaSlots: 1 << 18, DataSlots: 1 << 18}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := Open(r, cfg)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1024)
	const group = 16
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("key-%07d", i%100000))
		if staged {
			if err := s.PutStaged(key, val); err != nil {
				b.Fatal(err)
			}
			if (i+1)%group == 0 {
				s.Commit()
			}
		} else {
			if err := s.Put(key, val); err != nil {
				b.Fatal(err)
			}
		}
	}
	if staged {
		s.Commit()
	}
}

func BenchmarkPut1KUnbatched(b *testing.B) { benchPut(b, false) }
func BenchmarkPut1KBatched16(b *testing.B) { benchPut(b, true) }
