package core

import (
	"bytes"
	"fmt"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

// Self-healing tests: online rebuild of a quarantined shard, budgeted
// scrubbing of latent bit flips, and index-audit repair of tower damage.
// The invariant throughout: a heal never loses an acked write that is
// not itself the damaged record, and a damaged record is excised or
// quarantined — never served with wrong bytes.

func healSetup(t *testing.T) (*pmem.Region, *Store) {
	t.Helper()
	cfg := Config{MetaSlots: 64, SlotSize: 128, DataSlots: 64, DataBufSize: 512, VerifyOnGet: true}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		if err := s.Put([]byte(k), bytes.Repeat([]byte(k), 20)); err != nil {
			t.Fatal(err)
		}
	}
	return r, s
}

// fullScrub sweeps the whole slot array once.
func fullScrub(s *Store) (checked, bad, excised int) {
	cursor := 0
	for {
		res := s.ScrubSlots(cursor, 16)
		checked += res.Checked
		bad += res.Bad
		excised += res.Excised
		cursor = res.Next
		if cursor == 0 {
			return
		}
	}
}

func wantKey(t *testing.T, s *Store, key string) {
	t.Helper()
	v, ok, err := s.Get([]byte(key))
	if err != nil || !ok {
		t.Fatalf("Get(%q) = ok=%v err=%v, want present", key, ok, err)
	}
	if !bytes.Equal(v, bytes.Repeat([]byte(key), 20)) {
		t.Fatalf("Get(%q) returned wrong bytes", key)
	}
}

// wantGoneOrError accepts a miss or a detection error — never wrong
// bytes — for a deliberately damaged key.
func wantGoneOrError(t *testing.T, s *Store, key string) {
	t.Helper()
	v, ok, err := s.Get([]byte(key))
	if err == nil && ok && !bytes.Equal(v, bytes.Repeat([]byte(key), 20)) {
		t.Fatalf("Get(%q) served wrong bytes after corruption", key)
	}
	if err == nil && ok {
		t.Fatalf("Get(%q) still serving after scrub excision", key)
	}
}

func TestScrubDetectsSlotFieldFlip(t *testing.T) {
	_, s := healSetup(t)
	if off := s.CorruptRecord([]byte("beta"), FlipSlotField, 3, 0x40); off < 0 {
		t.Fatal("CorruptRecord found no slot")
	}
	_, bad, excised := fullScrub(s)
	if bad == 0 {
		t.Fatal("scrub missed a CRC-covered slot-field flip")
	}
	if excised == 0 {
		t.Fatal("scrub did not excise the damaged record")
	}
	if s.Quarantined() == 0 {
		t.Fatal("damaged slot not quarantined")
	}
	wantGoneOrError(t, s, "beta")
	for _, k := range []string{"alpha", "gamma", "delta"} {
		wantKey(t, s, k)
	}
	// A second sweep over the repaired store is clean.
	if _, bad, _ := fullScrub(s); bad != 0 {
		t.Fatalf("second scrub still found %d bad slots", bad)
	}
}

func TestScrubDetectsValueFlip(t *testing.T) {
	_, s := healSetup(t)
	if off := s.CorruptRecord([]byte("gamma"), FlipValueByte, 17, 0x08); off < 0 {
		t.Fatal("CorruptRecord found no slot")
	}
	_, bad, _ := fullScrub(s)
	if bad == 0 {
		t.Fatal("scrub missed a value-byte flip")
	}
	wantGoneOrError(t, s, "gamma")
	for _, k := range []string{"alpha", "beta", "delta"} {
		wantKey(t, s, k)
	}
	// Value damage retires the record but the meta slot is clean: it must
	// be reusable (back in the free list), unlike a CRC-quarantined slot.
	if err := s.Put([]byte("epsilon"), bytes.Repeat([]byte("epsilon"), 20)); err != nil {
		t.Fatalf("put after value excision: %v", err)
	}
}

func TestScrubDetectsKeyFlip(t *testing.T) {
	_, s := healSetup(t)
	if off := s.CorruptRecord([]byte("delta"), FlipKeyByte, 2, 0x01); off < 0 {
		t.Fatal("CorruptRecord found no slot")
	}
	_, bad, _ := fullScrub(s)
	if bad == 0 {
		t.Fatal("scrub missed a key-byte flip (slot CRC covers keys)")
	}
	wantGoneOrError(t, s, "delta")
	for _, k := range []string{"alpha", "beta", "gamma"} {
		wantKey(t, s, k)
	}
}

func TestScrubHookObservesDamage(t *testing.T) {
	_, s := healSetup(t)
	var seen []int
	s.SetQuarantineHook(func(slot int, err error) { seen = append(seen, slot) })
	idx := slotOf(t, s, "beta")
	s.CorruptRecord([]byte("beta"), FlipSlotField, 0, 0xff)
	fullScrub(s)
	found := false
	for _, sl := range seen {
		if sl == idx {
			found = true
		}
	}
	if !found {
		t.Fatalf("quarantine hook saw %v, want slot %d", seen, idx)
	}
}

func TestAuditIndexRepairsTowerFlip(t *testing.T) {
	r, s := healSetup(t)
	idx := slotOf(t, s, "beta")
	// Flip the slot's level-0 next pointer: invisible to the slot CRC
	// (the tower is excluded by design), only the audit can see it.
	r.CorruptByte(s.slotOff(idx)+oTower, 0x20)
	if _, bad, _ := fullScrub(s); bad != 0 {
		t.Fatalf("slot CRC unexpectedly covered the tower (bad=%d)", bad)
	}
	rebuilt, _, _ := s.AuditIndex()
	if !rebuilt {
		t.Fatal("audit missed a flipped level-0 link")
	}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		wantKey(t, s, k)
	}
	if rebuilt, _, _ := s.AuditIndex(); rebuilt {
		t.Fatal("audit of a repaired index rebuilt again")
	}
}

func TestRehydrateInPlace(t *testing.T) {
	_, s := healSetup(t)
	pool := s.Pool()
	// A pin taken before the rebuild survives it (pins are counted apart
	// from the record references the rescan recomputes) and its release
	// must drain the pin, not the recomputed record counts.
	ref, ok, err := s.GetRef([]byte("alpha"))
	if err != nil || !ok {
		t.Fatal("GetRef(alpha) failed")
	}
	release := s.PinExtents(ref.Extents)
	if epoch := s.Epoch(); epoch != 0 {
		t.Fatalf("fresh store epoch = %d, want 0", epoch)
	}
	if err := s.Rehydrate(); err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	if epoch := s.Epoch(); epoch != 1 {
		t.Fatalf("post-rehydrate epoch = %d, want 1", epoch)
	}
	release()
	if s.Pool() != pool {
		t.Fatal("Rehydrate replaced the packet pool (NIC wiring would break)")
	}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		wantKey(t, s, k)
	}
	// The store keeps working end to end after the rebuild.
	if err := s.Put([]byte("post"), []byte("post-heal value")); err != nil {
		t.Fatalf("put after rehydrate: %v", err)
	}
	if _, err := s.Delete([]byte("alpha")); err != nil {
		t.Fatalf("delete after rehydrate: %v", err)
	}
	if _, bad, _ := fullScrub(s); bad != 0 {
		t.Fatalf("scrub found %d bad slots after rehydrate", bad)
	}
}

// TestRehydrateReclaimsSlotsAfterChurn is the capacity-leak regression:
// an online rebuild must not fence surviving data slots from the NIC
// pool — post-rebuild deletes return every undamaged slot.
func TestRehydrateReclaimsSlotsAfterChurn(t *testing.T) {
	_, s := healSetup(t)
	if err := s.Rehydrate(); err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		if _, err := s.Delete([]byte(k)); err != nil {
			t.Fatalf("delete %q: %v", k, err)
		}
	}
	free := 0
	for s.Pool().Alloc(0) != nil {
		free++
	}
	if free != 64 {
		t.Fatalf("%d data slots allocatable after post-rebuild churn, want all 64 (rebuild leaked the rest)", free)
	}
}

// TestValueDamageFenceSurvivesRehydrate: the one fence that must NOT be
// reclaimed is a slot with confirmed media damage — it stays out of the
// pool across a rebuild while every healthy slot reclaims.
func TestValueDamageFenceSurvivesRehydrate(t *testing.T) {
	_, s := healSetup(t)
	if off := s.CorruptRecord([]byte("gamma"), FlipValueByte, 9, 0x04); off < 0 {
		t.Fatal("CorruptRecord found no slot")
	}
	if _, bad, _ := fullScrub(s); bad == 0 {
		t.Fatal("scrub missed the value flip")
	}
	if err := s.Rehydrate(); err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	for _, k := range []string{"alpha", "beta", "delta"} {
		if _, err := s.Delete([]byte(k)); err != nil {
			t.Fatalf("delete %q: %v", k, err)
		}
	}
	free := 0
	for s.Pool().Alloc(0) != nil {
		free++
	}
	if free != 63 {
		t.Fatalf("%d data slots allocatable, want 63: the damaged slot stays fenced, everything else reclaims", free)
	}
}

func TestRehydrateRepairsSuperblock(t *testing.T) {
	r, s := healSetup(t)
	// Trash the superblock magic — the shard-loss flavor of the heal
	// torture mode.
	r.CorruptByte(0, 0xff)
	if err := s.CheckSuperblock(); err == nil {
		t.Fatal("CheckSuperblock missed a trashed magic")
	}
	if err := s.Rehydrate(); err != nil {
		t.Fatalf("Rehydrate: %v", err)
	}
	if err := s.CheckSuperblock(); err != nil {
		t.Fatalf("superblock still bad after rehydrate: %v", err)
	}
	for _, k := range []string{"alpha", "beta", "gamma", "delta"} {
		wantKey(t, s, k)
	}
}

func TestShardedRebuildRejoins(t *testing.T) {
	cfg := Config{MetaSlots: 64, SlotSize: 128, DataSlots: 64, DataBufSize: 512, VerifyOnGet: true}
	const shards = 4
	r := pmem.New(ShardedRegionSize(cfg, shards), calib.Off())
	ss, err := OpenSharded(r, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 32; i++ {
		k := fmt.Sprintf("key-%03d", i)
		keys = append(keys, k)
		if err := ss.Put([]byte(k), []byte("value of "+k)); err != nil {
			t.Fatal(err)
		}
	}
	victim := 2
	before := ss.Shard(victim)
	ss.Quarantine(victim, fmt.Errorf("injected"))
	if st := ss.States()[victim]; st.State != "down" {
		t.Fatalf("victim state = %q, want down", st.State)
	}
	// Non-victim keys keep serving; victim keys answer ErrShardDown.
	for _, k := range keys {
		_, ok, err := ss.Get([]byte(k))
		if ShardOf([]byte(k), shards) == victim {
			if err == nil {
				t.Fatalf("quarantined shard served %q", k)
			}
		} else if err != nil || !ok {
			t.Fatalf("healthy shard lost %q: ok=%v err=%v", k, ok, err)
		}
	}
	if err := ss.Rebuild(victim); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if ss.Shard(victim) != before {
		t.Fatal("rebuild replaced the parked Store (pool wiring would break)")
	}
	if st := ss.States()[victim]; st.State != "serving" {
		t.Fatalf("victim state = %q after rebuild, want serving", st.State)
	}
	for _, k := range keys {
		v, ok, err := ss.Get([]byte(k))
		if err != nil || !ok || string(v) != "value of "+k {
			t.Fatalf("after rejoin, %q: ok=%v err=%v v=%q", k, ok, err, v)
		}
	}
	// Rebuild of a serving shard is a no-op.
	if err := ss.Rebuild(victim); err != nil {
		t.Fatalf("Rebuild of serving shard: %v", err)
	}
}
