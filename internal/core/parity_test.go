package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

// Parity-group tests. The redundancy invariants under test:
//   - every parity partition equals the XOR of its members' durable data
//     areas whenever the store is quiescent (maintenance rides the
//     commit fence, boot recomputes);
//   - losing one member's whole data area is survivable: rebuild or
//     in-place scrub re-materialises every record from parity + peers;
//   - losing two members of one group surfaces as typed
//     ErrUnrecoverable — never as silent misses or wrong bytes;
//   - a successful repair lifts the media-damage fences so the data
//     slots recycle (the capacity-leak regression).

func parityCfg(group int) Config {
	return Config{MetaSlots: 64, SlotSize: 128, DataSlots: 64, DataBufSize: 512,
		VerifyOnGet: true, ParityGroup: group}
}

func parityOpen(t *testing.T, cfg Config, shards int) (*pmem.Region, *ShardedStore) {
	t.Helper()
	r := pmem.New(ShardedRegionSize(cfg, shards), calib.Off())
	ss, err := OpenSharded(r, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}
	return r, ss
}

// parityFill puts n records through the sharded front door and returns
// the reference map.
func parityFill(t *testing.T, ss *ShardedStore, n int) map[string]string {
	t.Helper()
	ref := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("key%03d", i)
		v := fmt.Sprintf("val-%03d-%03d", i, i*7)
		if err := ss.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	return ref
}

func wantAll(t *testing.T, ss *ShardedStore, ref map[string]string) {
	t.Helper()
	for k, v := range ref {
		got, ok, err := ss.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("Get(%q) = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
}

// scrubAll sweeps one store's whole slot array, accumulating results.
func scrubAll(s *Store) ScrubResult {
	var sum ScrubResult
	cursor := 0
	for {
		res := s.ScrubSlots(cursor, 16)
		sum.Checked += res.Checked
		sum.Bad += res.Bad
		sum.Excised += res.Excised
		sum.Reconstructed += res.Reconstructed
		sum.Unrecoverable += res.Unrecoverable
		sum.NeedsRebuild += res.NeedsRebuild
		cursor = res.Next
		if cursor == 0 {
			return sum
		}
	}
}

// TestParityMaintainedUnderMixedLoad checks the incremental write-path
// maintenance: after an arbitrary mix of immediate puts, staged batches,
// overwrites and deletes, every parity partition still equals the XOR of
// its members' durable data areas.
func TestParityMaintainedUnderMixedLoad(t *testing.T) {
	_, ss := parityOpen(t, parityCfg(2), 4)
	for i := 0; i < 120; i++ {
		k := fmt.Sprintf("key%03d", i%40)
		switch i % 5 {
		case 3:
			if _, err := ss.Delete([]byte(k)); err != nil {
				t.Fatal(err)
			}
		case 4:
			if err := ss.PutStaged([]byte(k), []byte(fmt.Sprintf("staged-%04d", i))); err != nil {
				t.Fatal(err)
			}
			if i%10 == 9 {
				ss.Commit()
			}
		default:
			if err := ss.Put([]byte(k), []byte(fmt.Sprintf("val-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
	}
	ss.Commit()
	if err := ss.VerifyParity(); err != nil {
		t.Fatalf("parity diverged under mixed load: %v", err)
	}
	if st := ss.Stats(); st.ParityWrites == 0 {
		t.Fatal("no parity lines written by the commit path")
	}
}

// TestParityRebuildRecoversErasedDataArea is the tentpole end-to-end:
// one member's entire data area is destroyed at media level, the shard
// is quarantined and rebuilt, and every record comes back bit-exact via
// reconstruction from parity and the surviving members.
func TestParityRebuildRecoversErasedDataArea(t *testing.T) {
	_, ss := parityOpen(t, parityCfg(3), 3)
	ref := parityFill(t, ss, 40)

	ss.EraseDataArea(1)
	ss.Quarantine(1, nil)
	// The surviving members keep serving their keyspace throughout.
	for k, v := range ref {
		if ShardOf([]byte(k), 3) == 1 {
			continue
		}
		got, ok, err := ss.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("survivor Get(%q) = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
	if err := ss.Rebuild(1); err != nil {
		t.Fatalf("rebuild after data-area erase: %v", err)
	}
	wantAll(t, ss, ref)
	if err := ss.VerifyParity(); err != nil {
		t.Fatalf("parity inconsistent after rebuild: %v", err)
	}
	if st := ss.Stats(); st.Reconstructions == 0 {
		t.Fatal("rebuild recovered an erased data area without reconstructions")
	}
}

// TestScrubHealsErasedDataAreaInPlace: the same whole-area loss healed
// by the budgeted scrubber alone — no quarantine, the shard keeps
// serving while successive scrub steps re-materialise each record.
func TestScrubHealsErasedDataAreaInPlace(t *testing.T) {
	_, ss := parityOpen(t, parityCfg(2), 2)
	ref := parityFill(t, ss, 30)

	ss.EraseDataArea(0)
	// During the damage window reads of the erased shard may miss or
	// fail typed — they must never return wrong bytes.
	for k, v := range ref {
		got, ok, err := ss.Get([]byte(k))
		if err == nil && ok && string(got) != v {
			t.Fatalf("Get(%q) served wrong bytes from erased data area", k)
		}
	}
	res := scrubAll(ss.Shard(0))
	if res.Reconstructed == 0 {
		t.Fatal("scrub reconstructed nothing from an erased data area")
	}
	if res.Unrecoverable != 0 || res.NeedsRebuild != 0 {
		t.Fatalf("single-member loss not fully repairable in place: %+v", res)
	}
	if ss.DownShards() != 0 {
		t.Fatal("in-place heal quarantined a shard")
	}
	wantAll(t, ss, ref)
	if err := ss.VerifyParity(); err != nil {
		t.Fatalf("parity inconsistent after in-place heal: %v", err)
	}
}

// TestParityTwoMemberLossIsTyped: destroying two members of one group
// exceeds the redundancy. The rebuild must fail with ErrUnrecoverable —
// the shards stay down with a typed reason and the other group's shards
// are untouched. Silent loss (a rebuild "succeeding" without the data)
// is the failure mode this test pins down.
func TestParityTwoMemberLossIsTyped(t *testing.T) {
	_, ss := parityOpen(t, parityCfg(2), 4) // groups {0,1} and {2,3}
	ref := parityFill(t, ss, 40)

	ss.EraseDataArea(0)
	ss.EraseDataArea(1)
	ss.Quarantine(0, nil)
	ss.Quarantine(1, nil)
	for _, i := range []int{0, 1} {
		err := ss.Rebuild(i)
		if err == nil {
			t.Fatalf("rebuild of shard %d succeeded after two-member loss", i)
		}
		if !errors.Is(err, ErrUnrecoverable) {
			t.Fatalf("rebuild of shard %d failed untyped: %v", i, err)
		}
		if herr := ss.Health()[i]; !errors.Is(herr, ErrUnrecoverable) {
			t.Fatalf("Health()[%d] = %v, want ErrUnrecoverable", i, herr)
		}
	}
	// The other group's records are all intact and served.
	for k, v := range ref {
		sh := ShardOf([]byte(k), 4)
		got, ok, err := ss.Get([]byte(k))
		if sh <= 1 {
			if err == nil {
				t.Fatalf("Get(%q) on lost shard %d returned no error (ok=%v)", k, sh, ok)
			}
			if !errors.Is(err, ErrShardDown) {
				t.Fatalf("Get(%q) on lost shard: %v, want ErrShardDown", k, err)
			}
			continue
		}
		if err != nil || !ok || string(got) != v {
			t.Fatalf("surviving group Get(%q) = %q,%v,%v want %q", k, got, ok, err, v)
		}
	}
}

// TestRepairLiftsDataHeldFence is the capacity-leak regression
// (satellite 2): value damage that cannot be repaired right away (group
// peer down) fences the data slots and gates the key typed; once the
// peer rejoins, the next scrub pass repairs the record, lifts the
// fences, and the slots recycle normally.
func TestRepairLiftsDataHeldFence(t *testing.T) {
	_, ss := parityOpen(t, parityCfg(2), 2)
	key := ""
	for i := 0; i < 64; i++ {
		if k := fmt.Sprintf("key%03d", i); ShardOf([]byte(k), 2) == 0 {
			key = k
			break
		}
	}
	val := bytes.Repeat([]byte(key), 8)
	if err := ss.Put([]byte(key), val); err != nil {
		t.Fatal(err)
	}
	st := ss.Shard(0)

	// Peer down: the repair has no reconstruction sources.
	ss.Quarantine(1, nil)
	if off := st.CorruptRecord([]byte(key), FlipValueByte, 9, 0x20); off < 0 {
		t.Fatal("CorruptRecord found no slot")
	}
	res := scrubAll(st)
	if res.Bad == 0 || res.Reconstructed != 0 {
		t.Fatalf("scrub with peer down: %+v, want Bad>0 and the repair deferred", res)
	}
	if held := st.HeldDataSlots(); held == 0 {
		t.Fatal("damaged value's data slots not fenced while unrepaired")
	}
	if _, _, err := ss.Get([]byte(key)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get during deferred repair: %v, want typed ErrCorrupt", err)
	}

	// Peer rejoins; the next pass repairs in place and lifts the fences.
	if err := ss.Rebuild(1); err != nil {
		t.Fatalf("peer rebuild: %v", err)
	}
	res = scrubAll(st)
	if res.Reconstructed == 0 {
		t.Fatalf("scrub after peer rejoin repaired nothing: %+v", res)
	}
	got, ok, err := ss.Get([]byte(key))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("Get after repair = %q,%v,%v want %q", got, ok, err, val)
	}
	if held := st.HeldDataSlots(); held != 0 {
		t.Fatalf("%d data slots still fenced after successful repair (capacity leak)", held)
	}
	// The slots must actually recycle: delete and refill the shard's
	// data area well past the once-fenced slots.
	if _, err := ss.Delete([]byte(key)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 24; i++ {
		k := fmt.Sprintf("refill%03d", i)
		if ShardOf([]byte(k), 2) != 0 {
			continue
		}
		if err := ss.Put([]byte(k), bytes.Repeat([]byte("x"), 400)); err != nil {
			t.Fatalf("refill put %d after fence lift: %v", i, err)
		}
		if _, err := ss.Delete([]byte(k)); err != nil {
			t.Fatal(err)
		}
	}
}

// TestParityCrashCutPointSweep (satellite 4): cut the power at every
// persist-op index inside a parity-maintaining group commit. After each
// crash the reopened store must hold the acked baseline intact, the
// recomputed parity must verify, and — the part that proves the parity
// bytes are usable, not just self-consistent — a subsequent data-area
// erase of one member must be fully recoverable by rebuild.
func TestParityCrashCutPointSweep(t *testing.T) {
	pmem.SetCrashLogger(func(int64) {})
	defer pmem.SetCrashLogger(nil)
	cfg := parityCfg(3)
	const shards = 3

	baseline := map[string]string{}
	batch := map[string]string{}
	for i := 0; i < 6; i++ {
		baseline[fmt.Sprintf("base%02d", i)] = fmt.Sprintf("old-%02d", i)
	}
	for i := 0; i < 8; i++ {
		batch[fmt.Sprintf("fresh%02d", i)] = fmt.Sprintf("new-%02d", i)
	}
	setup := func() (*pmem.Region, *ShardedStore) {
		r, ss := parityOpen(t, cfg, shards)
		for k, v := range baseline {
			if err := ss.Put([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
		}
		return r, ss
	}
	runBatch := func(ss *ShardedStore) {
		for i := 0; i < 8; i++ {
			k := fmt.Sprintf("fresh%02d", i)
			if err := ss.PutStaged([]byte(k), []byte(batch[k])); err != nil {
				t.Fatal(err)
			}
		}
		ss.Commit()
	}

	// Count the batch's persist ops once.
	r0, ss0 := setup()
	total := 0
	r0.SetPersistHook(func(op pmem.PersistOp) pmem.PersistDecision {
		total++
		return pmem.PersistDecision{}
	})
	runBatch(ss0)
	r0.SetPersistHook(nil)
	if total == 0 {
		t.Fatal("no persist ops observed")
	}

	for cut := 1; cut <= total; cut++ {
		for _, tear := range []int{0, 13} {
			r, ss := setup()
			n := 0
			r.SetPersistHook(func(op pmem.PersistOp) pmem.PersistDecision {
				n++
				if n == cut {
					return pmem.PersistDecision{Cut: true, TearBytes: tear}
				}
				return pmem.PersistDecision{}
			})
			runBatch(ss)
			r.SetPersistHook(nil)
			if !r.PowerFailed() {
				t.Fatalf("cut %d: power never failed", cut)
			}
			r.Crash(int64(cut*100 + tear))

			ss2, err := OpenSharded(r, cfg, shards)
			if err != nil {
				t.Fatalf("cut %d tear %d: reopen: %v", cut, tear, err)
			}
			if d := ss2.DownShards(); d != 0 {
				t.Fatalf("cut %d tear %d: %d shards down after clean-cut recovery", cut, tear, d)
			}
			if err := ss2.VerifyParity(); err != nil {
				t.Fatalf("cut %d tear %d: parity after recovery: %v", cut, tear, err)
			}
			// Acked baseline intact; batch keys hold the batch value or
			// nothing (the cut preceded the ack).
			state := map[string]string{}
			for k, v := range baseline {
				got, ok, gerr := ss2.Get([]byte(k))
				if gerr != nil || !ok || string(got) != v {
					t.Fatalf("cut %d tear %d: baseline %q = %q,%v,%v want %q",
						cut, tear, k, got, ok, gerr, v)
				}
				state[k] = v
			}
			for k, v := range batch {
				got, ok, gerr := ss2.Get([]byte(k))
				if gerr != nil {
					t.Fatalf("cut %d tear %d: batch key %q: %v", cut, tear, k, gerr)
				}
				if ok {
					if string(got) != v {
						t.Fatalf("cut %d tear %d: batch key %q = %q, want %q or absent",
							cut, tear, k, got, v)
					}
					state[k] = v
				}
			}

			// The recovered parity must be strong enough to survive a
			// member loss: erase one data area, rebuild, compare exactly.
			victim := cut % shards
			ss2.EraseDataArea(victim)
			ss2.Quarantine(victim, nil)
			if err := ss2.Rebuild(victim); err != nil {
				t.Fatalf("cut %d tear %d: post-crash rebuild of shard %d: %v", cut, tear, victim, err)
			}
			for k, v := range state {
				got, ok, gerr := ss2.Get([]byte(k))
				if gerr != nil || !ok || string(got) != v {
					t.Fatalf("cut %d tear %d: after erase+rebuild %q = %q,%v,%v want %q",
						cut, tear, k, got, ok, gerr, v)
				}
			}
			if err := ss2.VerifyParity(); err != nil {
				t.Fatalf("cut %d tear %d: parity after erase+rebuild: %v", cut, tear, err)
			}
		}
	}
}
