package core

import (
	"bytes"
	"fmt"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

// Satellite tests for the seqlock read path's commit-barrier contract:
// a staged-but-uncommitted value must never be observable through the
// lock-free fast path, at any persist-op index of the group commit.

// TestFastGetStagedBarrier: while a group is staged, the fast path must
// concede (stagedN forces the fallback) so the locked path's read
// barrier commits the group before serving it — the E10 contract
// extended to lock-free reads.
func TestFastGetStagedBarrier(t *testing.T) {
	_, s := newStore(t, Config{MetaSlots: 512, DataSlots: 512, VerifyOnGet: true})
	if err := s.PutStaged([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	falls0 := s.fastGetFallbacks.Load()
	if _, _, done := s.fastGet([]byte("k")); done {
		t.Fatal("fast path served a read while a staged group was pending")
	}
	if s.fastGetFallbacks.Load() == falls0 {
		t.Fatal("staged-pending fallback not counted")
	}
	// The public read still works — through the locked barrier.
	fences0 := s.Region().Stats().Fences
	v, ok, err := s.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if s.Region().Stats().Fences == fences0 {
		t.Fatal("read served a staged record without committing it")
	}
	// Once the group is durable the fast path serves it.
	v2, ok2, done2 := s.fastGet([]byte("k"))
	if !done2 || !ok2 || string(v2) != "v" {
		t.Fatalf("fastGet after commit = %q,%v,done=%v", v2, ok2, done2)
	}
}

// TestCommitHoldsMutSeqOddAtEveryPersist: every persist op of a staged
// group commit lands inside the store's mutation bracket (mutSeq odd),
// so an optimistic reader racing any commit cut point is guaranteed to
// detect the mutation and retry or fall back — there is no persist-op
// index at which a half-committed batch looks stable.
func TestCommitHoldsMutSeqOddAtEveryPersist(t *testing.T) {
	r, s := newStore(t, Config{MetaSlots: 512, DataSlots: 512, VerifyOnGet: true})
	for i := 0; i < 8; i++ {
		if err := s.PutStaged([]byte(fmt.Sprintf("key-%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	ops, odd := 0, 0
	r.SetPersistHook(func(op pmem.PersistOp) pmem.PersistDecision {
		ops++
		if s.mutSeq.Load()%2 == 1 {
			odd++
		}
		return pmem.PersistDecision{}
	})
	s.Commit()
	r.SetPersistHook(nil)
	if ops == 0 {
		t.Fatal("no persist ops observed")
	}
	if odd != ops {
		t.Fatalf("%d of %d commit persist ops ran outside the mutation bracket", ops-odd, ops)
	}
	if s.mutSeq.Load()%2 != 0 {
		t.Fatal("mutSeq left odd after commit")
	}
}

// TestFastGetCrashCutEquivalence cuts the power at every persist-op
// index inside a batched commit, reopens, and checks the lock-free fast
// path agrees byte-for-byte with the locked view for every key — and
// that what it serves is prefix-consistent (pre-batch or batch value,
// never a torn hybrid). A staged value that did not survive the cut
// must be invisible to both paths equally.
func TestFastGetCrashCutEquivalence(t *testing.T) {
	pmem.SetCrashLogger(func(int64) {})
	defer pmem.SetCrashLogger(nil)
	cfg := Config{MetaSlots: 512, DataSlots: 512, VerifyOnGet: true}

	baseline := map[string]string{}
	runBatch := func(s *Store) {
		for i := 0; i < 6; i++ {
			k := fmt.Sprintf("key-%d", i%4) // overwrites and fresh keys
			if i >= 4 {
				k = fmt.Sprintf("fresh-%d", i)
			}
			if err := s.PutStaged([]byte(k), []byte("new-"+k)); err != nil {
				t.Fatal(err)
			}
		}
		s.Commit()
	}
	setup := func() (*pmem.Region, *Store) {
		r := pmem.New(cfg.RegionSize(), calib.Off())
		s, err := Open(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			k := fmt.Sprintf("key-%d", i)
			baseline[k] = "old-" + k
			if err := s.Put([]byte(k), []byte("old-"+k)); err != nil {
				t.Fatal(err)
			}
		}
		return r, s
	}

	r0, s0 := setup()
	total := 0
	r0.SetPersistHook(func(op pmem.PersistOp) pmem.PersistDecision {
		total++
		return pmem.PersistDecision{}
	})
	runBatch(s0)
	r0.SetPersistHook(nil)
	if total == 0 {
		t.Fatal("no persist ops observed")
	}

	allKeys := []string{"key-0", "key-1", "key-2", "key-3", "fresh-4", "fresh-5"}
	for cut := 1; cut <= total; cut++ {
		for _, tear := range []int{0, 13} {
			r, s := setup()
			n := 0
			r.SetPersistHook(func(op pmem.PersistOp) pmem.PersistDecision {
				n++
				if n == cut {
					return pmem.PersistDecision{Cut: true, TearBytes: tear}
				}
				return pmem.PersistDecision{}
			})
			runBatch(s)
			r.Crash(int64(cut*100 + tear))
			s2, err := Open(r, cfg)
			if err != nil {
				t.Fatalf("cut %d tear %d: reopen: %v", cut, tear, err)
			}
			// Locked view: the index walk under the store mutex.
			locked := map[string]string{}
			for _, rec := range dump(t, s2) {
				locked[string(rec.Key)] = string(rec.Value)
			}
			fast0 := s2.fastGets.Load()
			for _, k := range allKeys {
				fval, fok, done := s2.fastGet([]byte(k))
				if !done {
					t.Fatalf("cut %d tear %d: fast path fell back on quiescent key %q", cut, tear, k)
				}
				lval, lok := locked[k]
				if fok != lok {
					t.Fatalf("cut %d tear %d: key %q fast ok=%v locked ok=%v", cut, tear, k, fok, lok)
				}
				if !fok {
					continue
				}
				if !bytes.Equal(fval, []byte(lval)) {
					t.Fatalf("cut %d tear %d: key %q fast=%q locked=%q", cut, tear, k, fval, lval)
				}
				if v := string(fval); v != "new-"+k && v != baseline[k] {
					t.Fatalf("cut %d tear %d: key %q fast path served torn value %q", cut, tear, k, v)
				}
			}
			if got := s2.fastGets.Load() - fast0; got != uint64(len(allKeys)) {
				t.Fatalf("cut %d tear %d: only %d of %d reads took the fast path", cut, tear, got, len(allKeys))
			}
		}
	}
}
