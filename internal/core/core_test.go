package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"packetstore/internal/calib"
	"packetstore/internal/checksum"
	"packetstore/internal/pmem"
)

func newStore(t *testing.T, cfg Config) (*pmem.Region, *Store) {
	t.Helper()
	cfg2 := cfg
	r := pmem.New(cfg2.RegionSize(), calib.Off())
	s, err := Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, s
}

func TestPutGetDelete(t *testing.T) {
	_, s := newStore(t, Config{VerifyOnGet: true})
	if err := s.Put([]byte("alpha"), []byte("value-1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put([]byte("beta"), []byte("value-2")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("alpha"))
	if err != nil || !ok || string(v) != "value-1" {
		t.Fatalf("Get=%q,%v,%v", v, ok, err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len=%d", s.Len())
	}
	found, err := s.Delete([]byte("alpha"))
	if err != nil || !found {
		t.Fatalf("Delete=%v,%v", found, err)
	}
	if _, ok, _ := s.Get([]byte("alpha")); ok {
		t.Fatal("deleted key visible")
	}
	if found, _ := s.Delete([]byte("alpha")); found {
		t.Fatal("double delete found the key")
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d after delete", s.Len())
	}
}

func TestOverwriteNewestWins(t *testing.T) {
	_, s := newStore(t, Config{VerifyOnGet: true})
	for i := 0; i < 10; i++ {
		if err := s.Put([]byte("key"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := s.Get([]byte("key"))
	if err != nil || !ok || string(v) != "v9" {
		t.Fatalf("Get=%q,%v,%v", v, ok, err)
	}
	if s.Len() != 1 {
		t.Fatalf("Len=%d", s.Len())
	}
	// Old versions' slots and data must have been recycled: store many
	// more overwrites than there are slots.
	for i := 0; i < 10000; i++ {
		if err := s.Put([]byte("key"), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("overwrite %d: %v (slot leak?)", i, err)
		}
	}
}

func TestEmptyValueAndMissingKey(t *testing.T) {
	_, s := newStore(t, Config{VerifyOnGet: true})
	if err := s.Put([]byte("empty"), nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get([]byte("empty"))
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty value: %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := s.Get([]byte("absent")); ok {
		t.Fatal("absent key found")
	}
	if err := s.Put(nil, []byte("v")); err != ErrKeyTooLong {
		t.Fatalf("empty key accepted: %v", err)
	}
}

func TestLargeValueSpansSlots(t *testing.T) {
	_, s := newStore(t, Config{VerifyOnGet: true, DataBufSize: 512})
	val := make([]byte, 10000)
	rand.New(rand.NewSource(1)).Read(val)
	if err := s.Put([]byte("big"), val); err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get([]byte("big"))
	if err != nil || !ok || !bytes.Equal(got, val) {
		t.Fatalf("large value corrupted: %d bytes, %v, %v", len(got), ok, err)
	}
	ref, _, _ := s.GetRef([]byte("big"))
	if len(ref.Extents) <= inlineExtents {
		t.Fatalf("expected chained extents, got %d", len(ref.Extents))
	}
}

func TestZeroCopyPutExtents(t *testing.T) {
	_, s := newStore(t, Config{ChecksumReuse: true, VerifyOnGet: true})
	// Simulate a received packet: allocate from the store's pool (as the
	// NIC would), fill with "payload", adopt, and commit by reference.
	b := s.Pool().Alloc(0)
	payload := []byte("KEY1value-from-the-wire")
	copy(b.Append(len(payload)), payload)
	base := s.AdoptBuf(b)
	keyOff := base
	valOff := base + 4
	valLen := len(payload) - 4
	sum := checksum.Partial(0, payload[4:])
	err := s.PutExtents(payload[:4], valLen, PutOptions{
		Extents: []Extent{{Off: valOff, Len: valLen, Sum: sum}},
		KeyOff:  keyOff,
		HasSum:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.Release()
	s.ReleaseUnused(base) // must be a no-op: record references the slot

	v, ok, err := s.Get([]byte("KEY1"))
	if err != nil || !ok || string(v) != "value-from-the-wire" {
		t.Fatalf("Get=%q,%v,%v", v, ok, err)
	}
	st := s.Stats()
	if st.ChecksumReused != 1 || st.ChecksumComputed != 0 {
		t.Fatalf("checksum reuse not exercised: %+v", st)
	}
}

func TestMultiExtentChecksumCombine(t *testing.T) {
	_, s := newStore(t, Config{ChecksumReuse: true, VerifyOnGet: true})
	// A value split across three packets (three extents), each with its
	// NIC-provided partial sum; the combined stored checksum must match a
	// straight computation over the concatenation.
	var bufs [][]byte
	var exts []Extent
	whole := []byte{}
	key := []byte("multi")
	// Key lives in the first buffer.
	b0 := s.Pool().Alloc(0)
	copy(b0.Append(len(key)), key)
	base0 := s.AdoptBuf(b0)
	b0.Release()
	for i := 0; i < 3; i++ {
		part := make([]byte, 1000+i*3) // even and odd lengths
		rand.New(rand.NewSource(int64(i))).Read(part)
		b := s.Pool().Alloc(0)
		copy(b.Append(len(part)), part)
		base := s.AdoptBuf(b)
		b.Release()
		exts = append(exts, Extent{Off: base, Len: len(part), Sum: checksum.Partial(0, part)})
		whole = append(whole, part...)
		bufs = append(bufs, part)
	}
	_ = bufs
	err := s.PutExtents(key, len(whole), PutOptions{Extents: exts, KeyOff: base0, HasSum: true})
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := s.Get(key)
	if err != nil || !ok || !bytes.Equal(got, whole) {
		t.Fatalf("multi-extent get failed: %v %v", ok, err)
	}
	ref, _, _ := s.GetRef(key)
	if checksum.Fold(ref.Csum) != checksum.Fold(checksum.Partial(0, whole)) {
		t.Fatal("combined checksum does not match straight computation")
	}
}

func TestReleaseUnusedReturnsSlot(t *testing.T) {
	_, s := newStore(t, Config{DataSlots: 4})
	b := s.Pool().Alloc(0)
	base := s.AdoptBuf(b)
	b.Release()
	s.ReleaseUnused(base)
	// All four slots allocatable again.
	for i := 0; i < 4; i++ {
		if nb := s.Pool().Alloc(0); nb == nil {
			t.Fatal("slot leaked")
		}
	}
}

func TestVerifyDetectsCorruption(t *testing.T) {
	r, s := newStore(t, Config{})
	s.Put([]byte("good"), []byte("untouched-data"))
	s.Put([]byte("bad"), []byte("to-be-corrupted"))
	// Flip a bit in "bad"'s value inside the data area.
	img := r.Slice(0, r.Size())
	idx := bytes.Index(img, []byte("to-be-corrupted"))
	if idx < 0 {
		t.Fatal("value not found in region")
	}
	img[idx] ^= 0x80
	bad, err := s.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || string(bad[0]) != "bad" {
		t.Fatalf("Verify reported %q", bad)
	}
	// VerifyOnGet catches it too.
	_, s2 := newStore(t, Config{VerifyOnGet: true})
	_ = s2
}

func TestGetVerifyOnReadCorruption(t *testing.T) {
	r, s := newStore(t, Config{VerifyOnGet: true})
	s.Put([]byte("k"), []byte("sensitive-payload"))
	img := r.Slice(0, r.Size())
	idx := bytes.Index(img, []byte("sensitive-payload"))
	img[idx+3] ^= 0x01
	if _, _, err := s.Get([]byte("k")); err == nil {
		t.Fatal("corrupted read not detected")
	}
}

func TestRangeAndAscend(t *testing.T) {
	_, s := newStore(t, Config{})
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	recs, err := s.Range([]byte("k010"), []byte("k020"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("range size %d", len(recs))
	}
	for i, rec := range recs {
		if string(rec.Key) != fmt.Sprintf("k%03d", 10+i) {
			t.Fatalf("order broken at %d: %s", i, rec.Key)
		}
		if string(rec.Value) != fmt.Sprintf("v%d", 10+i) {
			t.Fatalf("value mismatch at %s", rec.Key)
		}
	}
	// Limit + unbounded end.
	recs, _ = s.Range([]byte("k045"), nil, 3)
	if len(recs) != 3 || string(recs[0].Key) != "k045" {
		t.Fatalf("limited range: %d", len(recs))
	}
	// Early-stop Ascend.
	n := 0
	s.Ascend(nil, func(rec Record) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("ascend early stop: %d", n)
	}
}

func TestMetaSlotExhaustion(t *testing.T) {
	_, s := newStore(t, Config{MetaSlots: 8, DataSlots: 64})
	var err error
	for i := 0; i < 100; i++ {
		if err = s.Put([]byte(fmt.Sprintf("key%04d", i)), []byte("v")); err != nil {
			break
		}
	}
	if err != ErrFull {
		t.Fatalf("want ErrFull, got %v", err)
	}
}

func TestDataSlotExhaustion(t *testing.T) {
	_, s := newStore(t, Config{MetaSlots: 512, DataSlots: 4, DataBufSize: 512})
	var err error
	for i := 0; i < 100; i++ {
		if err = s.Put([]byte(fmt.Sprintf("key%04d", i)), make([]byte, 400)); err != nil {
			break
		}
	}
	if err != ErrFull {
		t.Fatalf("want ErrFull, got %v", err)
	}
}

func TestRecoveryCleanReopen(t *testing.T) {
	r, s := newStore(t, Config{VerifyOnGet: true})
	ref := map[string]string{}
	for i := 0; i < 500; i++ {
		k, v := fmt.Sprintf("key%05d", i), fmt.Sprintf("value-%d", i)
		if err := s.Put([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		ref[k] = v
	}
	s2, err := Open(r, Config{VerifyOnGet: true})
	if err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 500 {
		t.Fatalf("recovered %d records", s2.Len())
	}
	for k, v := range ref {
		got, ok, err := s2.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Fatalf("reopen lost %s: %q,%v,%v", k, got, ok, err)
		}
	}
	// Writable after recovery; overwrites and deletes work.
	if err := s2.Put([]byte("key00000"), []byte("new")); err != nil {
		t.Fatal(err)
	}
	if v, _, _ := s2.Get([]byte("key00000")); string(v) != "new" {
		t.Fatal("post-recovery overwrite failed")
	}
}

func TestCrashRecoveryProperty(t *testing.T) {
	// Randomized crash consistency: after any crash, (a) every
	// acknowledged put that was not later overwritten/deleted is present
	// with intact data; (b) every deleted key is absent; (c) Verify
	// passes.
	for seed := int64(0); seed < 15; seed++ {
		cfg := Config{MetaSlots: 2048, DataSlots: 2048, VerifyOnGet: true}
		r := pmem.New(cfg.RegionSize(), calib.Off())
		s, err := Open(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed))
		ref := map[string]string{}
		ops := 200 + rng.Intn(400)
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("key%03d", rng.Intn(150))
			switch rng.Intn(5) {
			case 0:
				if _, err := s.Delete([]byte(k)); err != nil {
					t.Fatal(err)
				}
				delete(ref, k)
			default:
				v := fmt.Sprintf("val-%d-%d", seed, i)
				if err := s.Put([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				ref[k] = v
			}
		}
		r.Crash(rng.Int63())
		s2, err := Open(r, cfg)
		if err != nil {
			t.Fatalf("seed %d: recovery failed: %v", seed, err)
		}
		if s2.Len() != len(ref) {
			t.Fatalf("seed %d: recovered %d records, want %d", seed, s2.Len(), len(ref))
		}
		for k, v := range ref {
			got, ok, err := s2.Get([]byte(k))
			if err != nil || !ok || string(got) != v {
				t.Fatalf("seed %d: key %s = %q,%v,%v want %q", seed, k, got, ok, err, v)
			}
		}
		if bad, _ := s2.Verify(); len(bad) != 0 {
			t.Fatalf("seed %d: Verify failed for %q", seed, bad)
		}
		// The store remains fully usable: fill-and-check again.
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("post%03d", i)
			if err := s2.Put([]byte(k), []byte(k)); err != nil {
				t.Fatalf("seed %d: post-crash put: %v", seed, err)
			}
		}
	}
}

func TestCrashDuringOverwriteKeepsOneVersion(t *testing.T) {
	// Repeated overwrite + crash: after recovery exactly one committed
	// version exists (either old or new, never both, never neither —
	// unless the new one was never acknowledged, in which case old).
	for seed := int64(0); seed < 10; seed++ {
		cfg := Config{MetaSlots: 64, DataSlots: 64}
		r := pmem.New(cfg.RegionSize(), calib.Off())
		s, _ := Open(r, cfg)
		s.Put([]byte("k"), []byte("v0"))
		for i := 1; i <= 5; i++ {
			s.Put([]byte("k"), []byte(fmt.Sprintf("v%d", i)))
		}
		r.Crash(seed)
		s2, err := Open(r, cfg)
		if err != nil {
			t.Fatal(err)
		}
		v, ok, err := s2.Get([]byte("k"))
		if err != nil || !ok || string(v) != "v5" {
			t.Fatalf("seed %d: got %q,%v,%v want v5", seed, v, ok, err)
		}
		if s2.Len() != 1 {
			t.Fatalf("seed %d: %d records", seed, s2.Len())
		}
	}
}

func TestPinExtentsBlocksReclaim(t *testing.T) {
	_, s := newStore(t, Config{DataSlots: 8, DataBufSize: 512})
	s.Put([]byte("pinned"), []byte("payload"))
	ref, ok, _ := s.GetRef([]byte("pinned"))
	if !ok {
		t.Fatal("missing")
	}
	release := s.PinExtents(ref.Extents)
	// Delete while pinned: record goes away but data slot survives until
	// release (lent to the transport for retransmission).
	s.Delete([]byte("pinned"))
	got := s.Slice(ref.Extents[0].Off, ref.Extents[0].Len)
	if string(got) != "payload" {
		t.Fatal("pinned data reclaimed early")
	}
	release()
	release() // idempotent
	// Now all 8 slots are free again.
	free := 0
	for {
		if b := s.Pool().Alloc(0); b != nil {
			free++
		} else {
			break
		}
	}
	if free != 8 {
		t.Fatalf("%d slots free after release, want 8", free)
	}
}

func TestHWTimestampPersisted(t *testing.T) {
	_, s := newStore(t, Config{ChecksumReuse: true})
	b := s.Pool().Alloc(0)
	copy(b.Append(8), "KEYVALUE")
	base := s.AdoptBuf(b)
	b.Release()
	hw := time.Unix(0, 123456789)
	err := s.PutExtents([]byte("KEY"), 5, PutOptions{
		Extents: []Extent{{Off: base + 3, Len: 5, Sum: checksum.Partial(0, []byte("VALUE"))}},
		KeyOff:  base, HasSum: true, HWTime: hw,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, ok, _ := s.GetRef([]byte("KEY"))
	if !ok || !ref.HWTime.Equal(hw) {
		t.Fatalf("HWTime %v want %v", ref.HWTime, hw)
	}
}

func TestGeometryMismatchRejected(t *testing.T) {
	cfg := Config{MetaSlots: 128, DataSlots: 128}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := Open(r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Put([]byte("k"), []byte("v"))
	if _, err := Open(r, Config{MetaSlots: 256, DataSlots: 128}); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestRegionTooSmall(t *testing.T) {
	r := pmem.New(4096, calib.Off())
	if _, err := Open(r, Config{}); err == nil {
		t.Fatal("tiny region accepted")
	}
}

func TestSlotSizeAblation(t *testing.T) {
	for _, slotSize := range []int{128, 256, 512} {
		cfg := Config{SlotSize: slotSize, MetaSlots: 256, DataSlots: 256}
		r := pmem.New(cfg.RegionSize(), calib.Off())
		s, err := Open(r, cfg)
		if err != nil {
			t.Fatalf("slot size %d: %v", slotSize, err)
		}
		for i := 0; i < 100; i++ {
			if err := s.Put([]byte(fmt.Sprintf("k%03d", i)), []byte("v")); err != nil {
				t.Fatalf("slot size %d: %v", slotSize, err)
			}
		}
		if _, ok, _ := s.Get([]byte("k050")); !ok {
			t.Fatalf("slot size %d: lost key", slotSize)
		}
	}
}

func TestBreakdownPhases(t *testing.T) {
	_, s := newStore(t, Config{Breakdown: true})
	for i := 0; i < 50; i++ {
		s.Put([]byte(fmt.Sprintf("k%03d", i)), make([]byte, 1024))
	}
	bd := s.Breakdown()
	if bd.Ops != 50 || bd.Checksum == 0 || bd.Copy == 0 || bd.Meta == 0 || bd.Flush == 0 {
		t.Fatalf("breakdown %+v", bd)
	}
	s.ResetBreakdown()
	if s.Breakdown().Ops != 0 {
		t.Fatal("reset failed")
	}
}

func BenchmarkPut1KCopyPath(b *testing.B) {
	cfg := Config{MetaSlots: 1 << 18, DataSlots: 1 << 18}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, err := Open(r, cfg)
	if err != nil {
		b.Fatal(err)
	}
	val := make([]byte, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Put([]byte(fmt.Sprintf("key%012d", i%100000)), val); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGet1K(b *testing.B) {
	cfg := Config{MetaSlots: 1 << 17, DataSlots: 1 << 17}
	r := pmem.New(cfg.RegionSize(), calib.Off())
	s, _ := Open(r, cfg)
	val := make([]byte, 1024)
	for i := 0; i < 50000; i++ {
		s.Put([]byte(fmt.Sprintf("key%08d", i)), val)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Get([]byte(fmt.Sprintf("key%08d", (i*7919)%50000)))
	}
}
