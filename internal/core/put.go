package core

import (
	"encoding/binary"
	"fmt"
	"time"

	"packetstore/internal/checksum"
)

// PutOptions carries the zero-copy ingest description.
type PutOptions struct {
	// Extents locate the value bytes inside the data area. When nil, the
	// value is passed by copy via Put.
	Extents []Extent
	// KeyOff is the region offset of the key bytes inside the data area.
	KeyOff int
	// HasSum marks the extents' Sum fields as NIC-derived partial sums
	// (CHECKSUM_COMPLETE harvest); with Config.ChecksumReuse the store
	// then never reads the value bytes.
	HasSum bool
	// HWTime is the NIC hardware receive timestamp to persist as the
	// record's storage timestamp.
	HWTime time.Time
}

// PutExtents commits key -> value where the value (and key) bytes already
// live in the data area — the zero-copy ingest path. The data slots
// holding the extents and key must have been adopted (AdoptBuf).
func (s *Store) PutExtents(key []byte, vlen int, opt PutOptions) error {
	if len(key) == 0 || len(key) > 0xffff {
		return ErrKeyTooLong
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.stagePutLocked(key, vlen, opt); err != nil {
		return err
	}
	s.commitStagedLocked()
	return nil
}

// Put stores key -> value by copying both into freshly allocated data
// slots — the path for callers outside the network fast path (CLI tools,
// examples, tests). Integrity sums are computed in software.
func (s *Store) Put(key, value []byte) error {
	return s.putCopy(key, value, false)
}

// putCopy is the copying ingest shared by Put and PutStaged.
func (s *Store) putCopy(key, value []byte, staged bool) error {
	if len(key) == 0 || len(key) > 0xffff {
		return ErrKeyTooLong
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	t0 := s.tnow()
	// Lay key then value into data slots: key always fits one slot
	// (<=64KB keys would span; restrict keys to one slot).
	if len(key) > s.cfg.DataBufSize {
		return ErrKeyTooLong
	}
	need := len(key) + len(value)
	var slots []int
	for covered := 0; covered < need || len(slots) == 0; {
		off := s.pool.Slab().Alloc()
		if off < 0 {
			for _, o := range slots {
				s.pool.Slab().Free(o)
			}
			return ErrFull
		}
		slots = append(slots, off)
		covered += s.cfg.DataBufSize
	}
	// The key occupies the head of the first slot; value bytes follow and
	// spill into subsequent slots.
	var exts []Extent
	s.r.WriteFrom(s.nd(), slots[0], key)
	vOffInSlot := len(key)
	rest := value
	for i, base := range slots {
		room := s.cfg.DataBufSize
		start := base
		if i == 0 {
			room -= vOffInSlot
			start += vOffInSlot
		}
		n := min(room, len(rest))
		if n > 0 {
			s.r.WriteFrom(s.nd(), start, rest[:n])
			exts = append(exts, Extent{Off: start, Len: n})
			rest = rest[n:]
		}
	}
	s.bd.Copy += s.since(t0)

	// Mark the slots store-owned (refcounts incremented by stagePutLocked).
	for _, base := range slots {
		s.dataRefs[s.dataSlotIndex(base)] = 0
	}
	err := s.stagePutLocked(key, len(value), PutOptions{
		Extents: exts, KeyOff: slots[0], HasSum: false, HWTime: time.Now(),
	})
	if err != nil {
		for _, base := range slots {
			s.dataRefs[s.dataSlotIndex(base)] = -1
			s.pool.Slab().Free(base)
		}
		return err
	}
	if !staged {
		s.commitStagedLocked()
	}
	// Slots with no references (value smaller than reserved space never
	// happens here: key slot always referenced) — nothing to release.
	return nil
}

// stagePutLocked prepares a put for the next group commit: it writes
// the data, key, chains and the uncommitted (seq=0) slot image, links
// the record into the volatile index, and accumulates every dirty
// range into s.fs. Nothing is flushed or fenced here — a per-op put is
// simply a stage followed immediately by commitStagedLocked.
func (s *Store) stagePutLocked(key []byte, vlen int, opt PutOptions) error {
	s.beginMutLocked()
	defer s.endMutLocked()
	if s.cfg.Breakdown {
		s.bd.Ops++
	}
	tAlloc := s.tnow()
	nChains := 0
	if n := len(opt.Extents); n > inlineExtents {
		nChains = (n - inlineExtents + chainExtents - 1) / chainExtents
	}
	if len(s.metaFree) < 1+nChains {
		return ErrFull
	}
	slotIdx := s.metaFree[len(s.metaFree)-1]
	s.metaFree = s.metaFree[:len(s.metaFree)-1]
	s.scrubStamp[slotIdx], s.valueBad[slotIdx] = 0, false
	chains := make([]int, nChains)
	for i := range chains {
		chains[i] = s.metaFree[len(s.metaFree)-1]
		s.metaFree = s.metaFree[:len(s.metaFree)-1]
		s.scrubStamp[chains[i]], s.valueBad[chains[i]] = 0, false
	}
	s.bd.Alloc += s.since(tAlloc)

	// Integrity: reuse NIC sums or compute in software.
	tCsum := s.tnow()
	exts := opt.Extents
	var acc checksum.Accumulator
	if opt.HasSum && s.cfg.ChecksumReuse {
		for i := range exts {
			if !acc.AddPartial(exts[i].Sum, exts[i].Len) {
				// Odd alignment: fold this extent in by reading it.
				acc.Add(s.r.Slice(exts[i].Off, exts[i].Len))
			}
		}
		s.stats.ChecksumReused++
	} else {
		for i := range exts {
			exts[i].Sum = checksum.Partial(0, s.r.Slice(exts[i].Off, exts[i].Len))
			if !acc.AddPartial(exts[i].Sum, exts[i].Len) {
				acc.Add(s.r.Slice(exts[i].Off, exts[i].Len))
			}
		}
		s.stats.ChecksumComputed++
	}
	combined := acc.Sum()
	s.bd.Checksum += s.since(tCsum)

	tMeta := s.tnow()
	var prev [maxHeight]int
	ge := s.findGE(key, &prev)
	var old int = -1
	var oldHeight int
	if ge >= 0 && s.compareKey(key, keyPrefix(key), s.slot(ge), false) == 0 {
		old = ge
		oldHeight = int(s.slot(ge)[oHeight])
	}

	height := s.randomHeightLocked()
	// Build the slot image with seq=0 (uncommitted).
	img := make([]byte, s.cfg.SlotSize)
	binary.LittleEndian.PutUint32(img[oMagic:], slotMagic)
	img[oHeight] = byte(height)
	img[oExtCnt] = byte(len(exts))
	binary.LittleEndian.PutUint64(img[oSeq:], 0)
	binary.LittleEndian.PutUint64(img[oHWTime:], uint64(opt.HWTime.UnixNano()))
	binary.LittleEndian.PutUint32(img[oVCsum:], combined)
	binary.LittleEndian.PutUint32(img[oKLen:], uint32(len(key)))
	binary.LittleEndian.PutUint64(img[oKPrefix:], keyPrefix(key))
	binary.LittleEndian.PutUint32(img[oKOff:], uint32(opt.KeyOff))
	binary.LittleEndian.PutUint32(img[oVLen:], uint32(vlen))
	for l := 0; l < height; l++ {
		var succ int
		switch {
		case old >= 0 && l < oldHeight:
			// Bypass the old version: link directly to its successor.
			succ = slotNext(s.slot(old), l)
		case prev[l] < 0:
			succ = s.headNext(l)
		default:
			succ = slotNext(s.slot(prev[l]), l)
		}
		binary.LittleEndian.PutUint32(img[oTower+4*l:], uint32(succ+1))
	}
	// Inline extents + chain slots.
	inline := exts
	if len(inline) > inlineExtents {
		inline = inline[:inlineExtents]
	}
	for i, e := range inline {
		base := oExt + i*extSize
		binary.LittleEndian.PutUint32(img[base:], uint32(e.Off))
		binary.LittleEndian.PutUint32(img[base+4:], uint32(e.Len))
		binary.LittleEndian.PutUint32(img[base+8:], e.Sum)
	}
	if nChains > 0 {
		binary.LittleEndian.PutUint32(img[oChain:], uint32(chains[0]+1))
		s.writeChainsLocked(chains, exts[inlineExtents:])
	}
	// The checksum covers the commit word, so compute it with the final
	// sequence stamped in, then restore seq=0: the image persists
	// uncommitted, and the later 8-byte commit write turns the slot into
	// exactly what the sum describes.
	seq := s.seq + 1
	binary.LittleEndian.PutUint64(img[oSeq:], seq)
	binary.LittleEndian.PutUint32(img[oSlotSum:], slotSum(img, key))
	binary.LittleEndian.PutUint64(img[oSeq:], 0)
	s.bd.Meta += s.since(tMeta)

	// Stage the write-back set: the uncommitted slot image, the data
	// lines and the key bytes have no mutual persist order, so they all
	// join the group's flush batch (deduplicated — an extent sharing a
	// line with the key, or two slots sharing a line, costs one clwb).
	tFlush := s.tnow()
	off := s.slotOff(slotIdx)
	s.r.WriteFrom(s.nd(), off, img)
	for _, e := range exts {
		s.fs.Add(e.Off, e.Len)
	}
	s.fs.Add(opt.KeyOff, len(key))
	s.fs.Add(off, s.cfg.SlotSize)
	s.seq = seq
	s.bd.Flush += s.since(tFlush)

	// Link into the index; reference the data slots. Linking before the
	// commit word persists is safe: recovery never follows links, and
	// readers under this lock see the record exactly when its ack-gating
	// group commit will make it durable.
	tLink := s.tnow()
	maxH := height
	if old >= 0 && oldHeight > maxH {
		maxH = oldHeight
	}
	for l := 0; l < maxH; l++ {
		switch {
		case l < height:
			if prev[l] < 0 {
				s.setHeadNext(l, slotIdx)
			} else {
				s.writeSlotNextLocked(prev[l], l, slotIdx)
			}
		default: // l >= height, old linked at this level: bypass it.
			var bypass int
			bypass = slotNext(s.slot(old), l)
			if prev[l] < 0 {
				s.setHeadNext(l, bypass)
			} else {
				s.writeSlotNextLocked(prev[l], l, bypass)
			}
		}
	}
	s.bd.Meta += s.since(tLink)
	// The level-0 link that now targets this record persists with the
	// commit word in the group's phase B.
	linkOff := s.base + sbOTower
	if prev[0] >= 0 {
		linkOff = s.slotOff(prev[0]) + oTower
	}

	for _, e := range exts {
		s.refDataLocked(e.Off)
	}
	s.refDataLocked(opt.KeyOff)

	p := prepared{slot: slotIdx, seq: seq, old: -1, linkOff: linkOff}
	switch {
	case old < 0:
		s.count++
	default:
		if j := s.stagedIndexOf(old); j >= 0 {
			// Overwriting an uncommitted put of the same batch: it is
			// superseded in place and this put inherits whatever
			// committed version it was replacing.
			p.old = s.supersedeStagedLocked(j)
		} else {
			p.old = old
		}
	}
	s.staged = append(s.staged, p)
	s.stagedN.Add(1)
	// Publish the record's descriptor for lock-free readers. They still
	// cannot serve it before Commit — stagedN forces the fallback, whose
	// locked read is the commit barrier — but publishing here keeps the
	// mirror in lockstep with the index links written above.
	s.publishDescLocked(slotIdx, seq)
	s.stats.Puts++
	s.stats.BytesStored += uint64(vlen)
	return nil
}

func (s *Store) writeSlotNextLocked(idx, level, next int) {
	s.r.WriteUint32From(s.nd(), s.slotOff(idx)+oTower+4*level, uint32(next+1))
	// Mirror the link into the published descriptor, if any, so the
	// lock-free walk (fastget.go) tracks every retarget.
	if d := s.recs[idx].Load(); d != nil {
		d.next[level].Store(uint32(next + 1))
	}
}

// writeChainsLocked stages extent-continuation slots into the group's
// flush set. They persist in phase A, before any parent commit word is
// stamped in phase B, so recovery only ever follows complete chains —
// and they no longer cost their own flush calls and fence: the former
// per-chain Flush both re-covered lines the whole-slot flush already
// owned and paid an extra fence per chained put.
func (s *Store) writeChainsLocked(chains []int, exts []Extent) {
	for ci, idx := range chains {
		img := make([]byte, s.cfg.SlotSize)
		binary.LittleEndian.PutUint32(img[oMagic:], chainMagic)
		n := min(chainExtents, len(exts)-ci*chainExtents)
		binary.LittleEndian.PutUint32(img[oChainCnt:], uint32(n))
		for i := 0; i < n; i++ {
			e := exts[ci*chainExtents+i]
			base := oChainExt + i*extSize
			binary.LittleEndian.PutUint32(img[base:], uint32(e.Off))
			binary.LittleEndian.PutUint32(img[base+4:], uint32(e.Len))
			binary.LittleEndian.PutUint32(img[base+8:], e.Sum)
		}
		if ci+1 < len(chains) {
			binary.LittleEndian.PutUint32(img[oChainNext:], uint32(chains[ci+1]+1))
		}
		binary.LittleEndian.PutUint32(img[oSlotSum:], chainSum(img))
		off := s.slotOff(idx)
		s.r.WriteFrom(s.nd(), off, img)
		s.fs.Add(off, s.cfg.SlotSize)
	}
}

// readExtentsLocked collects a record's extents (inline + chains).
func (s *Store) readExtentsLocked(sl []byte) ([]Extent, error) {
	n := int(sl[oExtCnt])
	exts := make([]Extent, 0, n)
	for i := 0; i < min(n, inlineExtents); i++ {
		base := oExt + i*extSize
		exts = append(exts, Extent{
			Off: int(binary.LittleEndian.Uint32(sl[base:])),
			Len: int(binary.LittleEndian.Uint32(sl[base+4:])),
			Sum: binary.LittleEndian.Uint32(sl[base+8:]),
		})
	}
	chain := int(binary.LittleEndian.Uint32(sl[oChain:])) - 1
	for hops := 0; chain >= 0; hops++ {
		if chain >= s.cfg.MetaSlots || hops >= s.cfg.MetaSlots {
			// Out-of-range or cyclic chain pointer: corruption must not
			// crash or hang the scan.
			return nil, fmt.Errorf("%w: broken extent chain", ErrCorrupt)
		}
		cs := s.slot(chain)
		if binary.LittleEndian.Uint32(cs[oMagic:]) != chainMagic {
			return nil, fmt.Errorf("%w: broken extent chain", ErrCorrupt)
		}
		cnt := int(binary.LittleEndian.Uint32(cs[oChainCnt:]))
		if cnt > chainExtents {
			return nil, fmt.Errorf("%w: chain count %d", ErrCorrupt, cnt)
		}
		for i := 0; i < cnt; i++ {
			base := oChainExt + i*extSize
			exts = append(exts, Extent{
				Off: int(binary.LittleEndian.Uint32(cs[base:])),
				Len: int(binary.LittleEndian.Uint32(cs[base+4:])),
				Sum: binary.LittleEndian.Uint32(cs[base+8:]),
			})
		}
		chain = int(binary.LittleEndian.Uint32(cs[oChainNext:])) - 1
	}
	if len(exts) != n {
		return nil, fmt.Errorf("%w: extent count mismatch", ErrCorrupt)
	}
	return exts, nil
}

// freeRecordLocked retires a committed record: clear the commit word
// first (crash-safe: the record simply disappears from the scan), then
// recycle slots and data references. The caller has already unlinked it
// from (or replaced it in) the index.
func (s *Store) freeRecordLocked(idx int) {
	off := s.slotOff(idx)
	s.r.WriteUint64From(s.nd(), off+oSeq, 0)
	s.r.PersistFrom(s.nd(), off+oSeq, 8)
	s.recycleRecordLocked(idx)
}

func (s *Store) randomHeightLocked() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// Ref describes a stored record without copying its value — the zero-copy
// read result handed to the transport.
type Ref struct {
	Extents []Extent
	VLen    int
	Csum    uint32 // combined unfolded partial sum of the value
	HWTime  time.Time
	Seq     uint64
}

// GetRef locates key and returns extent references. The referenced data
// is only guaranteed stable while pinned (PinExtents) or under the
// caller's own synchronization with deletes; GetRefPinned does lookup
// and pin in one atomic step. The common case completes lock-free
// (fastget.go).
func (s *Store) GetRef(key []byte) (Ref, bool, error) {
	if ref, ok, done := s.fastGetRef(key); done {
		return ref, ok, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.getRefLocked(key)
}

func (s *Store) getRefLocked(key []byte) (Ref, bool, error) {
	// Reads act as a commit barrier: a staged record must not be served
	// (and thereby observable) while its durability is still pending,
	// or a crash could lose a value another client already read.
	s.commitStagedLocked()
	s.gets.Add(1)
	idx := s.findGE(key, nil)
	if idx < 0 || s.compareKey(key, keyPrefix(key), s.slot(idx), false) != 0 {
		return Ref{}, false, nil
	}
	if s.valueBad[idx] {
		// Known media damage awaiting a deferred parity repair: a typed
		// error, never bytes that cannot be trusted.
		return Ref{}, false, fmt.Errorf("%w: value bytes pending parity repair for key %q", ErrCorrupt, key)
	}
	sl := s.slot(idx)
	exts, err := s.readExtentsLocked(sl)
	if err != nil {
		return Ref{}, false, err
	}
	s.hits.Add(1)
	return Ref{
		Extents: exts,
		VLen:    int(binary.LittleEndian.Uint32(sl[oVLen:])),
		Csum:    binary.LittleEndian.Uint32(sl[oVCsum:]),
		HWTime:  time.Unix(0, int64(binary.LittleEndian.Uint64(sl[oHWTime:]))),
		Seq:     binary.LittleEndian.Uint64(sl[oSeq:]),
	}, true, nil
}

// Get returns a copy of the value stored under key, verifying its
// checksum when configured. The common case completes lock-free with
// pinned extents (fastget.go); the slow path copies under the store
// lock, so in either case the returned bytes are stable against
// concurrent in-place parity repairs rewriting the record's media.
func (s *Store) Get(key []byte) ([]byte, bool, error) {
	if val, ok, done := s.fastGet(key); done {
		return val, ok, nil
	}
	s.mu.Lock()
	ref, ok, err := s.getRefLocked(key)
	if err != nil || !ok {
		s.mu.Unlock()
		return nil, ok, err
	}
	out := make([]byte, 0, ref.VLen)
	var acc checksum.Accumulator
	nl := 0
	for _, e := range ref.Extents {
		b := s.r.Slice(e.Off, e.Len)
		nl += lineSpan(e.Off, e.Len)
		out = append(out, b...)
		if s.cfg.VerifyOnGet {
			acc.Add(b)
		}
	}
	// One batched latency charge for the whole value instead of a
	// per-extent Touch: span-by-span charging paid the scheduler
	// hand-off per extent (the read-path twin of XorDeltaBatch's fix).
	off0 := 0
	if len(ref.Extents) > 0 {
		off0 = ref.Extents[0].Off
	}
	s.r.TouchLinesFrom(s.nd(), off0, nl)
	s.mu.Unlock()
	if s.cfg.VerifyOnGet && checksum.Norm16(checksum.Fold(acc.Sum())) != checksum.Norm16(checksum.Fold(ref.Csum)) {
		return nil, false, fmt.Errorf("%w: checksum mismatch for key %q", ErrCorrupt, key)
	}
	return out, true, nil
}

// Delete removes key. Crash-safe: the commit word is cleared (and fenced)
// before the record is unlinked and recycled, so a crash can never
// resurrect the key.
func (s *Store) Delete(key []byte) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Deletes commit the pending group first: unlinking and recycling
	// assume every indexed record is committed.
	s.commitStagedLocked()
	s.stats.Deletes++
	var prev [maxHeight]int
	idx := s.findGE(key, &prev)
	if idx < 0 || s.compareKey(key, keyPrefix(key), s.slot(idx), false) != 0 {
		return false, nil
	}
	sl := s.slot(idx)
	height := int(sl[oHeight])
	s.beginMutLocked()
	defer s.endMutLocked()
	// Unlink from every level it occupies.
	for l := 0; l < height; l++ {
		next := slotNext(sl, l)
		if prev[l] < 0 {
			s.setHeadNext(l, next)
		} else {
			s.writeSlotNextLocked(prev[l], l, next)
		}
	}
	if prev[0] < 0 {
		s.r.PersistFrom(s.nd(), s.base+sbOTower, 4)
	} else {
		s.r.PersistFrom(s.nd(), s.slotOff(prev[0])+oTower, 4)
	}
	s.freeRecordLocked(idx)
	s.count--
	return true, nil
}
