package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

func TestShardOfStableAndInRange(t *testing.T) {
	for shards := 1; shards <= 9; shards++ {
		for i := 0; i < 200; i++ {
			k := []byte(fmt.Sprintf("key%d", i))
			s := ShardOf(k, shards)
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%q,%d)=%d out of range", k, shards, s)
			}
			if s != ShardOf(k, shards) {
				t.Fatalf("ShardOf(%q,%d) not stable", k, shards)
			}
		}
	}
}

func TestShardedSingleShardLayoutMatchesStore(t *testing.T) {
	// One shard must be bit-for-bit a plain Store: open the same region
	// both ways and check the records agree.
	cfg := Config{MetaSlots: 256, DataSlots: 256, VerifyOnGet: true}
	r := pmem.New(ShardedRegionSize(cfg, 1), calib.Off())
	ss, err := OpenSharded(r, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		k := fmt.Sprintf("key%03d", i)
		if err := ss.Put([]byte(k), []byte("v-"+k)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := Open(r, cfg)
	if err != nil {
		t.Fatalf("plain Open over 1-shard layout: %v", err)
	}
	if s.Len() != 50 {
		t.Fatalf("plain Store sees %d records, want 50", s.Len())
	}
	v, ok, err := s.Get([]byte("key007"))
	if err != nil || !ok || string(v) != "v-key007" {
		t.Fatalf("Get=%q,%v,%v", v, ok, err)
	}
}

// shardedModel drives a ShardedStore and a reference map through the
// same random PUT/DELETE/RANGE schedule, crashes, recovers in parallel,
// and checks full agreement. Returns false (for testing/quick) on any
// divergence.
func shardedModel(t *testing.T, seed int64) bool {
	rng := rand.New(rand.NewSource(seed))
	shards := 1 + rng.Intn(8)
	cfg := Config{MetaSlots: 512, DataSlots: 512, VerifyOnGet: true}
	r := pmem.New(ShardedRegionSize(cfg, shards), calib.Off())
	ss, err := OpenSharded(r, cfg, shards)
	if err != nil {
		t.Logf("seed %d: open: %v", seed, err)
		return false
	}
	ref := map[string]string{}
	checkRange := func(tag string) bool {
		keys := make([]string, 0, len(ref))
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		// Random window and limit, plus the full scan.
		for _, probe := range [][2]string{
			{"", ""},
			{fmt.Sprintf("key%03d", rng.Intn(100)), fmt.Sprintf("key%03d", rng.Intn(100))},
		} {
			var start, end []byte
			if probe[0] != "" {
				start = []byte(probe[0])
			}
			if probe[1] != "" {
				end = []byte(probe[1])
			}
			if end != nil && bytes.Compare(start, end) > 0 {
				start, end = end, start
			}
			limit := 1 + rng.Intn(len(ref)+4)
			var want []string
			for _, k := range keys {
				if len(want) >= limit {
					break
				}
				if bytes.Compare([]byte(k), start) < 0 {
					continue
				}
				if len(end) > 0 && bytes.Compare([]byte(k), end) >= 0 {
					continue
				}
				want = append(want, k)
			}
			got, err := ss.Range(start, end, limit)
			if err != nil {
				t.Logf("seed %d %s: Range: %v", seed, tag, err)
				return false
			}
			if len(got) != len(want) {
				t.Logf("seed %d %s: Range[%q,%q) limit %d = %d records, want %d",
					seed, tag, start, end, limit, len(got), len(want))
				return false
			}
			for i, rec := range got {
				if string(rec.Key) != want[i] || string(rec.Value) != ref[want[i]] {
					t.Logf("seed %d %s: Range[%d] = %q=%q, want %q=%q",
						seed, tag, i, rec.Key, rec.Value, want[i], ref[want[i]])
					return false
				}
			}
		}
		return true
	}
	ops := 150 + rng.Intn(250)
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("key%03d", rng.Intn(120))
		switch rng.Intn(6) {
		case 0:
			found, err := ss.Delete([]byte(k))
			if err != nil {
				t.Logf("seed %d: delete: %v", seed, err)
				return false
			}
			_, want := ref[k]
			if found != want {
				t.Logf("seed %d: Delete(%q)=%v, want %v", seed, k, found, want)
				return false
			}
			delete(ref, k)
		case 1:
			if !checkRange("live") {
				return false
			}
		default:
			v := fmt.Sprintf("val-%d-%d", seed, i)
			if err := ss.Put([]byte(k), []byte(v)); err != nil {
				t.Logf("seed %d: put: %v", seed, err)
				return false
			}
			ref[k] = v
		}
	}
	// Crash, then parallel recovery must round-trip every committed
	// record at this shard count.
	r.Crash(rng.Int63())
	ss2, err := OpenSharded(r, cfg, shards)
	if err != nil {
		t.Logf("seed %d: recovery: %v", seed, err)
		return false
	}
	if ss2.Len() != len(ref) {
		t.Logf("seed %d (%d shards): recovered %d records, want %d",
			seed, shards, ss2.Len(), len(ref))
		return false
	}
	for k, v := range ref {
		got, ok, err := ss2.Get([]byte(k))
		if err != nil || !ok || string(got) != v {
			t.Logf("seed %d: post-crash %q = %q,%v,%v want %q", seed, k, got, ok, err, v)
			return false
		}
	}
	if bad, err := ss2.Verify(); err != nil || len(bad) != 0 {
		t.Logf("seed %d: Verify bad=%q err=%v", seed, bad, err)
		return false
	}
	ss = ss2
	return checkRange("recovered")
}

func TestShardedStoreQuick(t *testing.T) {
	// Property: a ShardedStore with a random shard count is
	// indistinguishable from an ordered map under random
	// PUT/DELETE/RANGE, including across a randomized crash and parallel
	// recovery.
	cfg := &quick.Config{MaxCount: 12}
	if testing.Short() {
		cfg.MaxCount = 4
	}
	if err := quick.Check(func(seed int64) bool {
		return shardedModel(t, seed)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}
