package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

// Property test for the lock-free read fast path: concurrent fast GETs
// (copying and pinned zero-copy) race against overwrites, deletes,
// injected media damage plus scrub repair, and live shard rebuilds. The
// invariant is byte-exactness: a read either misses, returns a typed
// error, or returns exactly the bytes some writer stored — never a torn
// or stale-beyond-bounds value.
//
// Version protocol (single writer per key): the writer publishes
// hi[k]=v before Put(propVal(v)) and lo[k]=v after it returns. A reader
// that loads lo before the read and hi after it may accept any version
// in [lo0, hi1]; the version is embedded in the value, so the reader
// recomputes the expected bytes and compares exactly.

// propVal derives a deterministic value from (key, version): the key,
// the version (LE64), then xorshift filler. Length varies with version
// so overwrites change extent shape.
func propVal(key []byte, ver uint64) []byte {
	n := 64 + int(ver%5)*48
	out := make([]byte, 0, len(key)+8+n)
	out = append(out, key...)
	var vb [8]byte
	binary.LittleEndian.PutUint64(vb[:], ver)
	out = append(out, vb[:]...)
	x := ver*2654435761 + 1
	for _, c := range key {
		x = x*31 + uint64(c)
	}
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		out = append(out, byte(x))
	}
	return out
}

// checkPropVal asserts val is byte-exact for a version within
// [lo0, hi1] (lo0 bound skipped for churn keys, whose delete/re-put
// cycles make the lower bound meaningless).
func checkPropVal(t *testing.T, key, val []byte, lo0, hi1 uint64, churn bool) {
	if len(val) < len(key)+8 {
		t.Errorf("key %q: short value %d bytes", key, len(val))
		return
	}
	v := binary.LittleEndian.Uint64(val[len(key):])
	if v > hi1 || (!churn && v < lo0) {
		t.Errorf("key %q: version %d outside [%d, %d]", key, v, lo0, hi1)
		return
	}
	if want := propVal(key, v); !bytes.Equal(val, want) {
		t.Errorf("key %q: torn read at version %d (%d bytes, want %d)", key, v, len(val), len(want))
	}
}

func TestFastGetPropertyUnderChaos(t *testing.T) {
	const shards = 4
	cfg := Config{MetaSlots: 64, SlotSize: 128, DataSlots: 128, DataBufSize: 128,
		VerifyOnGet: true, ParityGroup: 2}
	r := pmem.New(ShardedRegionSize(cfg, shards), calib.Off())
	ss, err := OpenSharded(r, cfg, shards)
	if err != nil {
		t.Fatal(err)
	}

	writerIters, chaosIters := 250, 25
	if testing.Short() {
		writerIters, chaosIters = 60, 8
	}

	// Key roles: stable keys are written once and become the chaos
	// targets (corruption + scrub repair); hot keys are overwritten by a
	// single writer under the version protocol; churn keys cycle through
	// put/delete. Readers never see injected damage on hot/churn keys,
	// so the pinned zero-copy path (no checksum) stays byte-exact there.
	const nKeys = 48
	keys := make([][]byte, nKeys)
	hi := make([]atomic.Uint64, nKeys)
	lo := make([]atomic.Uint64, nKeys)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("prop-key-%04d", i))
	}
	for i := 0; i < nKeys; i += 3 { // stable
		if err := ss.Put(keys[i], propVal(keys[i], 1)); err != nil {
			t.Fatal(err)
		}
		hi[i].Store(1)
		lo[i].Store(1)
	}

	tolerable := func(err error) bool {
		return errors.Is(err, ErrShardDown) || errors.Is(err, ErrCorrupt) ||
			errors.Is(err, ErrUnrecoverable)
	}

	var stop atomic.Bool
	var wg, readers sync.WaitGroup

	writer := func(role int) { // role 1 = hot, role 2 = churn
		defer wg.Done()
		for it := 0; it < writerIters; it++ {
			for k := role; k < nKeys; k += 3 {
				key := keys[k]
				v := hi[k].Load() + 1
				hi[k].Store(v)
				var err error
				if it%7 == 3 { // staged group path
					if err = ss.PutStaged(key, propVal(key, v)); err == nil {
						ss.Commit()
					}
				} else {
					err = ss.Put(key, propVal(key, v))
				}
				if err != nil {
					if !tolerable(err) {
						t.Errorf("put %q: %v", key, err)
					}
					continue
				}
				lo[k].Store(v)
				if role == 2 && it%3 == 1 {
					if _, err := ss.Delete(key); err != nil && !tolerable(err) {
						t.Errorf("delete %q: %v", key, err)
					}
				}
			}
		}
	}
	wg.Add(2)
	go writer(1)
	go writer(2)

	// Chaos: flip a value byte in a stable key's media and scrub the
	// shard so parity repairs it (repairs defer while readers hold
	// pins); periodically quarantine and rebuild a live shard.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for it := 0; it < chaosIters; it++ {
			k := keys[(it*3)%nKeys]
			if st := ss.StoreFor(k); st != nil {
				st.CorruptRecord(k, FlipValueByte, it, 0x40)
				scrubAll(st)
				scrubAll(st)
			}
			if it%5 == 4 {
				sh := it % shards
				ss.Quarantine(sh, fmt.Errorf("chaos"))
				if err := ss.Rebuild(sh); err != nil {
					t.Errorf("rebuild shard %d: %v", sh, err)
				}
			}
		}
	}()

	reader := func(seed int) {
		defer readers.Done()
		for it := 0; !stop.Load(); it++ {
			k := (it*7 + seed) % nKeys
			key, churn := keys[k], k%3 == 2
			lo0 := lo[k].Load()
			if (it+seed)%2 == 0 || k%3 == 0 {
				// Copying read (checksum-verified): the only safe read
				// for chaos-corrupted stable keys.
				val, ok, err := ss.Get(key)
				hi1 := hi[k].Load()
				switch {
				case err != nil:
					if !tolerable(err) {
						t.Errorf("get %q: %v", key, err)
					}
				case !ok:
					if !churn && lo0 > 0 {
						t.Errorf("get %q: lost (lo=%d)", key, lo0)
					}
				default:
					checkPropVal(t, key, val, lo0, hi1, churn)
				}
				continue
			}
			// Pinned zero-copy read: extents stay stable against
			// concurrent deletes, repairs, and recycling until release.
			st := ss.StoreFor(key)
			if st == nil {
				continue
			}
			ref, release, ok, err := st.GetRefPinned(key)
			hi1 := hi[k].Load()
			switch {
			case err != nil:
				if !tolerable(err) {
					t.Errorf("getref %q: %v", key, err)
				}
			case !ok:
				if !churn && lo0 > 0 {
					t.Errorf("getref %q: lost (lo=%d)", key, lo0)
				}
			default:
				val := make([]byte, 0, ref.VLen)
				for _, e := range ref.Extents {
					val = append(val, st.Slice(e.Off, e.Len)...)
				}
				release()
				checkPropVal(t, key, val, lo0, hi1, churn)
			}
		}
	}
	readers.Add(3)
	for i := 0; i < 3; i++ {
		go reader(i)
	}

	wg.Wait()
	stop.Store(true)
	readers.Wait()

	// Quiesce: repair any damage whose in-place rewrite was deferred by
	// reader pins, then every key must verify byte-exact at its final
	// committed version.
	for i := 0; i < shards; i++ {
		if st := ss.Shard(i); st != nil {
			scrubAll(st)
			scrubAll(st)
		}
	}
	for k, key := range keys {
		val, ok, err := ss.Get(key)
		if err != nil {
			t.Errorf("final get %q: %v", key, err)
			continue
		}
		if !ok {
			if k%3 != 2 && lo[k].Load() > 0 {
				t.Errorf("final get %q: lost", key)
			}
			continue
		}
		checkPropVal(t, key, val, lo[k].Load(), hi[k].Load(), k%3 == 2)
	}

	st := ss.Stats()
	if st.FastGets == 0 {
		t.Fatal("no GET completed on the lock-free fast path")
	}
	t.Logf("gets=%d fast=%d retries=%d fallbacks=%d",
		st.Gets, st.FastGets, st.FastGetRetries, st.FastGetFallbacks)
}
