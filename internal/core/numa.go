package core

import (
	"fmt"

	"packetstore/internal/calib"
	"packetstore/internal/pmem"
)

// SetNUMAPlacement installs a NUMA model on the backing region and
// carves the shard partitions onto sockets. shardNode[i] names shard
// i's home node: the shard's whole partition (superblock, metadata
// slots, data area / receive pool) is owned by that node, and each
// parity partition lands on the node where most of its group's members
// live (ties go to the first member) so the parity delta of a typical
// commit stays node-local. A nil shardNode models the OS default
// first-touch-free policy instead: page-sized chunks of the whole
// region round-robin across the nodes, so every placement is equally
// mediocre — the baseline aligned placement is measured against.
//
// nodes <= 1 removes the model entirely; the region then charges the
// exact pre-NUMA costs (the Nodes=1 no-op guarantee).
//
// Must be called while the store is quiescent (after OpenSharded,
// before serving): the region's node table is read lock-free afterwards.
func (ss *ShardedStore) SetNUMAPlacement(prof calib.NUMAProfile, nodes int, shardNode []int) error {
	n := len(ss.shards)
	if nodes <= 1 {
		ss.numaNodes = 1
		ss.homeNodes = nil
		ss.r.SetNUMA(1, prof, nil)
		return nil
	}
	home := make([]int, n)
	var ranges []pmem.NodeRange
	if shardNode == nil {
		// Interleaved: page-granular round-robin over the whole region,
		// parity partitions included. Shards keep a nominal home node
		// (i mod nodes) so loop placement stays well-defined.
		for i := range home {
			home[i] = i % nodes
		}
		size := ss.r.Size()
		for off := 0; off < size; off += shardAlign {
			ln := shardAlign
			if off+ln > size {
				ln = size - off
			}
			ranges = append(ranges, pmem.NodeRange{Off: off, Len: ln, Node: (off / shardAlign) % nodes})
		}
	} else {
		if len(shardNode) != n {
			return fmt.Errorf("pktstore: %d shard nodes for %d shards", len(shardNode), n)
		}
		for i, nd := range shardNode {
			if nd < 0 || nd >= nodes {
				return fmt.Errorf("pktstore: shard %d placed on node %d of %d", i, nd, nodes)
			}
			home[i] = nd
			ranges = append(ranges, pmem.NodeRange{Off: i * ss.stride, Len: ss.stride, Node: nd})
		}
		groups := parityGroups(ss.cfg, n)
		pstride := parityStride(ss.cfg)
		pbase0 := n * ss.stride
		for g, members := range groups {
			ranges = append(ranges, pmem.NodeRange{
				Off: pbase0 + g*pstride, Len: pstride,
				Node: preferredNode(members, home, nodes),
			})
		}
	}
	ss.numaNodes = nodes
	ss.homeNodes = home
	ss.r.SetNUMA(nodes, prof, ranges)
	// Stamp each store's caller-node default with its home: recovery,
	// scrub and healer work the shard drives itself is node-local until
	// a serving loop (or a thief) restamps it per cycle.
	ss.mu.RLock()
	for i := 0; i < n; i++ {
		if st := ss.shards[i]; st != nil {
			st.SetNUMANode(home[i])
		}
		if st := ss.parked[i]; st != nil {
			st.SetNUMANode(home[i])
		}
	}
	ss.mu.RUnlock()
	return nil
}

// preferredNode picks the node hosting the most of the given shards'
// homes; the first member breaks ties (its node was counted first).
func preferredNode(members []int, home []int, nodes int) int {
	counts := make([]int, nodes)
	best := home[members[0]]
	for _, m := range members {
		nd := home[m]
		counts[nd]++
		if counts[nd] > counts[best] {
			best = nd
		}
	}
	return best
}

// NUMANodes reports the configured socket count (1 without a model).
func (ss *ShardedStore) NUMANodes() int {
	if ss.numaNodes <= 1 {
		return 1
	}
	return ss.numaNodes
}

// NodeOf reports shard i's home NUMA node (0 without a model).
func (ss *ShardedStore) NodeOf(i int) int {
	if ss.homeNodes == nil {
		return 0
	}
	return ss.homeNodes[i]
}
