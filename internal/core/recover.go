package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"packetstore/internal/checksum"
)

// rescanMode selects what a slot-array rescan reconstructs beyond the
// index itself.
type rescanMode int

const (
	// rescanRecover is boot-time recovery: the volatile state is fresh
	// and every live data slot must transition pool -> store exactly once
	// (a double adoption is corruption).
	rescanRecover rescanMode = iota
	// rescanRehydrate is the online rebuild of a quarantined store: the
	// slab allocator is shared with a still-wired NIC and survives the
	// rebuild, so adoption is tolerant of already-allocated slots, and
	// store-owned reference counts are recomputed from scratch.
	rescanRehydrate
	// rescanIndex rebuilds only the index, free list and counts (after
	// the scrubber excises records or finds a damaged tower). Data-slot
	// ownership is untouched: an excised record's slots keep their
	// references and are thereby fenced from reuse — the damage may be
	// media.
	rescanIndex
)

// recover rebuilds the store from the persistent metadata slots after a
// reboot or crash: it scans every slot, keeps the committed records
// (newest sequence per key), rebuilds the skip-list index, reconstructs
// the volatile allocation state (metadata free list, data-slot reference
// counts), and restores the sequence counter. Nothing in recovery trusts
// the pre-crash index links — the scan is the ground truth, which is what
// makes the at-runtime tower updates safe to leave unflushed.
func (s *Store) recover() error { return s.rescan(rescanRecover) }

// rescan is the shared scan-and-rebuild pass behind boot recovery,
// online rehydration and scrubber-triggered index repair.
func (s *Store) rescan(mode rescanMode) error {
	type rec struct {
		idx int
		key []byte
		seq uint64
	}
	used := make([]bool, s.cfg.MetaSlots)
	var survivors []rec
	byKey := make(map[string]int) // key -> survivors index
	unrecoverable := 0

	// The whole rescan is one mutation bracket: lock-free readers fall
	// back for its duration, and the descriptor mirror is rebuilt from
	// scratch alongside the index (survivors republish below; everything
	// else — excised, deduped, quarantined — stays unpublished).
	s.beginMutLocked()
	defer s.endMutLocked()
	for i := range s.recs {
		s.recs[i].Store(nil)
	}

	s.seq, s.count, s.quarantined = 0, 0, 0
	for i := range s.metaFenced {
		s.metaFenced[i] = false
	}
	if mode != rescanIndex {
		// Serving gates are re-derived: repaired records drop them, still-
		// damaged ones re-earn them through the repair paths below.
		for i := range s.valueBad {
			s.valueBad[i] = false
		}
	}
	if mode == rescanRehydrate {
		// Record reference counts are about to be recomputed from the
		// scan; any surviving store-owned slot starts at zero. External
		// pins (dataPins) are NOT reset — their holders survive the
		// rebuild and release them later, which is what lets pinned slots
		// re-admit to the pool afterwards. Slots whose records do not
		// survive stay slab-allocated with zero references until an
		// in-flight ReleaseUnused resolves them (or leak, bounded by the
		// work in flight at the heal event — see Rehydrate).
		for i := range s.dataRefs {
			if s.dataRefs[i] > 0 {
				s.dataRefs[i] = 0
			}
		}
	}

	for i := 0; i < s.cfg.MetaSlots; i++ {
		sl := s.slot(i)
		if binary.LittleEndian.Uint32(sl[oMagic:]) != slotMagic {
			continue
		}
		seq := binary.LittleEndian.Uint64(sl[oSeq:])
		if seq == 0 {
			continue // never committed, or deleted
		}
		if err := s.validateSlot(sl); err != nil {
			if s.parity != nil && mode == rescanRehydrate {
				// The rebuild owns the group's repairMu (Rehydrate takes it
				// before the store lock), so reconstruction runs with the
				// whole group quiesced.
				switch rerr := s.repairRecordLocked(i, true); {
				case rerr == nil:
					goto survived // repaired and re-validated: a normal record
				case errors.Is(rerr, errMetaDamage):
					// Parity spans the data area only; metadata damage still
					// takes the excise path below.
				default:
					// Deferred (a group peer is down) or unrecoverable. Fence
					// the slot without clearing its commit word: the media is
					// preserved, so a retry after the peer rejoins can still
					// reconstruct. The rescan as a whole fails typed — the
					// shard must not serve while acked records are missing.
					unrecoverable++
					s.quarantined++
					s.metaFenced[i] = true
					s.scrubStamp[i] = 0
					used[i] = true
					continue
				}
			}
			if s.onQuarantine != nil {
				s.onQuarantine(i, err)
			}
			// A committed slot that fails validation is corruption:
			// quarantine it. It is never served (not indexed) and never
			// reused (kept out of the free list — the fault may be media
			// damage that would eat the next record too), and the store
			// still opens: every other committed record keeps serving.
			s.quarantined++
			s.metaFenced[i] = true
			used[i] = true
			continue
		}
	survived:
		key := append([]byte(nil), s.slotKey(sl)...)
		if j, dup := byKey[string(key)]; dup {
			// Keep the newer version; retire the loser.
			if survivors[j].seq >= seq {
				s.clearSeqLocked(i)
				continue
			}
			s.clearSeqLocked(survivors[j].idx)
			survivors[j] = rec{idx: i, key: key, seq: seq}
		} else {
			byKey[string(key)] = len(survivors)
			survivors = append(survivors, rec{idx: i, key: key, seq: seq})
		}
		if seq > s.seq {
			s.seq = seq
		}
	}

	if s.parity != nil && mode == rescanRehydrate {
		// Value sweep: slot CRCs cover metadata and keys, but only the
		// value checksum notices damaged value bytes, and boot-style scans
		// never read values. A rebuild with parity attached does — except
		// for records the scrubber validated within the last full pass,
		// whose stamps make the re-read redundant (the scrub-aware rebuild
		// hand-off that shrinks time-to-rejoin).
		kept := survivors[:0]
		for _, rv := range survivors {
			if st := s.scrubStamp[rv.idx]; st != 0 && s.scrubPass-st <= 1 {
				kept = append(kept, rv)
				continue
			}
			sl := s.slot(rv.idx)
			if s.valueChecksumOKLocked(sl) {
				s.scrubStamp[rv.idx] = s.scrubPass
				kept = append(kept, rv)
				continue
			}
			if rerr := s.repairRecordLocked(rv.idx, true); rerr == nil {
				kept = append(kept, rv)
				continue
			}
			// Damaged beyond what the group can reconstruct right now:
			// fence, preserve the media, fail the rescan typed below.
			unrecoverable++
			s.quarantined++
			s.metaFenced[rv.idx] = true
			s.scrubStamp[rv.idx] = 0
			used[rv.idx] = true
		}
		survivors = kept
	}

	// Mark used slots (records + their chains) and data references.
	for _, rv := range survivors {
		used[rv.idx] = true
		sl := s.slot(rv.idx)
		exts, err := s.readExtentsLocked(sl)
		if err != nil {
			return err
		}
		chain := int(binary.LittleEndian.Uint32(sl[oChain:])) - 1
		for hops := 0; chain >= 0; hops++ {
			if chain >= s.cfg.MetaSlots || hops >= s.cfg.MetaSlots {
				return fmt.Errorf("%w: chain index out of range", ErrCorrupt)
			}
			used[chain] = true
			cs := s.slot(chain)
			chain = int(binary.LittleEndian.Uint32(cs[oChainNext:])) - 1
		}
		if mode == rescanIndex {
			continue // ownership state is already correct
		}
		tolerant := mode == rescanRehydrate
		koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
		s.adoptForRecovery(koff, tolerant)
		s.dataRefs[s.dataSlotIndex(koff)]++
		for _, e := range exts {
			s.adoptForRecovery(e.Off, tolerant)
			s.dataRefs[s.dataSlotIndex(e.Off)]++
		}
	}

	// Free list: all unused slots.
	s.metaFree = s.metaFree[:0]
	for i := s.cfg.MetaSlots - 1; i >= 0; i-- {
		if !used[i] {
			s.metaFree = append(s.metaFree, i)
		}
	}

	// Rebuild the index in key order with each record's stored height.
	sort.Slice(survivors, func(a, b int) bool {
		ka, kb := survivors[a].key, survivors[b].key
		return string(ka) < string(kb)
	})
	var last [maxHeight]int
	for l := range last {
		last[l] = -1
		s.setHeadNext(l, -1)
	}
	for _, rv := range survivors {
		sl := s.slot(rv.idx)
		h := int(sl[oHeight])
		if h < 1 || h > maxHeight {
			h = 1
		}
		// Publish the survivor's descriptor before retargeting its tower:
		// the writeSlotNextLocked calls below then mirror into it.
		s.publishDescLocked(rv.idx, rv.seq)
		for l := 0; l < maxHeight; l++ {
			// Clear the tower; links below are rewritten as successors
			// arrive.
			s.writeSlotNextLocked(rv.idx, l, -1)
		}
		for l := 0; l < h; l++ {
			if last[l] < 0 {
				s.setHeadNext(l, rv.idx)
			} else {
				s.writeSlotNextLocked(last[l], l, rv.idx)
			}
			last[l] = rv.idx
		}
	}
	// Persist the rebuilt level-0 chain and head.
	s.r.FlushFrom(s.nd(), s.base+sbOTower, 4*maxHeight)
	for _, rv := range survivors {
		s.r.FlushFrom(s.nd(), s.slotOff(rv.idx)+oTower, 4*maxHeight)
	}
	s.r.Fence()

	s.count = len(survivors)
	if unrecoverable > 0 {
		// Committed (possibly acked) records exist that cannot currently be
		// reconstructed. The store must not be re-admitted as serving — a
		// miss for those keys would be silent loss — so the rescan fails
		// with the typed error; the supervisor keeps the shard down and
		// retries once group peers rejoin.
		return fmt.Errorf("%w: %d slots await parity repair or exceed redundancy", ErrUnrecoverable, unrecoverable)
	}
	return nil
}

// adoptForRecovery transitions a data slot from pool-owned to store-owned
// (once) during the scan. Boot recovery runs strict: two committed records
// claiming one slab slot is corruption. An online rehydrate runs tolerant:
// the slab is shared with a live NIC whose allocation state legitimately
// survives the rebuild.
func (s *Store) adoptForRecovery(off int, tolerant bool) {
	idx := s.dataSlotIndex(off)
	if s.dataRefs[idx] < 0 {
		s.dataRefs[idx] = 0
		if !s.pool.MarkSlotLive(s.dataBase+idx*s.cfg.DataBufSize) && !tolerant {
			panic("pktstore: recovery double-adopted a data slot")
		}
	}
}

// validateSlot sanity-checks a committed slot's offsets, then verifies
// the stored CRC32C (slot image fields + key bytes, and every chain
// slot) before trusting any of it. Structural checks run first so the
// key read the checksum needs is itself safe.
func (s *Store) validateSlot(sl []byte) error {
	klen := int(binary.LittleEndian.Uint32(sl[oKLen:]))
	koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
	if klen == 0 || klen > 0xffff {
		return fmt.Errorf("%w: key length %d", ErrCorrupt, klen)
	}
	if !s.inDataArea(koff, klen) {
		return fmt.Errorf("%w: key outside data area", ErrCorrupt)
	}
	exts, err := s.readExtentsLocked(sl)
	if err != nil {
		return err
	}
	vlen := int(binary.LittleEndian.Uint32(sl[oVLen:]))
	total := 0
	for _, e := range exts {
		if e.Len <= 0 || !s.inDataArea(e.Off, e.Len) {
			return fmt.Errorf("%w: extent outside data area", ErrCorrupt)
		}
		total += e.Len
	}
	if total != vlen {
		return fmt.Errorf("%w: extent lengths %d != value length %d", ErrCorrupt, total, vlen)
	}
	if binary.LittleEndian.Uint32(sl[oSlotSum:]) != slotSum(sl, s.slotKey(sl)) {
		return fmt.Errorf("%w: slot checksum mismatch", ErrCorrupt)
	}
	chain := int(binary.LittleEndian.Uint32(sl[oChain:])) - 1
	for hops := 0; chain >= 0; hops++ {
		if chain >= s.cfg.MetaSlots || hops >= s.cfg.MetaSlots {
			return fmt.Errorf("%w: broken extent chain", ErrCorrupt)
		}
		cs := s.slot(chain)
		if binary.LittleEndian.Uint32(cs[oSlotSum:]) != chainSum(cs) {
			return fmt.Errorf("%w: chain slot checksum mismatch", ErrCorrupt)
		}
		chain = int(binary.LittleEndian.Uint32(cs[oChainNext:])) - 1
	}
	return nil
}

func (s *Store) inDataArea(off, n int) bool {
	return off >= s.dataBase && off+n <= s.dataBase+s.cfg.DataSlots*s.cfg.DataBufSize
}

func (s *Store) clearSeqLocked(idx int) {
	s.clearDescLocked(idx)
	off := s.slotOff(idx)
	s.r.WriteUint64From(s.nd(), off+oSeq, 0)
	s.r.PersistFrom(s.nd(), off+oSeq, 8)
}

// Record is one entry reported by iteration. Value is populated only by
// Range (Ascend hands out extent references instead).
type Record struct {
	Key   []byte
	Value []byte
	Ref   Ref
}

// Ascend walks records in key order, calling fn until it returns false.
// The callback runs under the store lock; it must not call back into the
// store.
func (s *Store) Ascend(start []byte, fn func(rec Record) bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Iteration is a commit barrier, like GetRef: staged records must be
	// durable before they are observable.
	s.commitStagedLocked()
	s.stats.Ranges++
	var idx int
	if len(start) == 0 {
		idx = s.headNext(0)
	} else {
		idx = s.findGE(start, nil)
	}
	for idx >= 0 {
		sl := s.slot(idx)
		if s.valueBad[idx] {
			// Damaged value awaiting deferred parity repair: omitted from
			// iteration rather than handing out bytes that cannot be
			// trusted (point reads answer the typed error instead).
			idx = slotNext(sl, 0)
			continue
		}
		s.r.TouchFrom(s.nd(), s.slotOff(idx), 64)
		exts, err := s.readExtentsLocked(sl)
		if err != nil {
			return err
		}
		rec := Record{
			Key: append([]byte(nil), s.slotKey(sl)...),
			Ref: Ref{
				Extents: exts,
				VLen:    int(binary.LittleEndian.Uint32(sl[oVLen:])),
				Csum:    binary.LittleEndian.Uint32(sl[oVCsum:]),
				Seq:     binary.LittleEndian.Uint64(sl[oSeq:]),
			},
		}
		if !fn(rec) {
			return nil
		}
		idx = slotNext(sl, 0)
	}
	return nil
}

// Range returns up to limit records with start <= key < end (nil end
// means unbounded), copying values out.
func (s *Store) Range(start, end []byte, limit int) ([]Record, error) {
	if limit <= 0 {
		limit = 1 << 30
	}
	var out []Record
	err := s.Ascend(start, func(rec Record) bool {
		if end != nil && string(rec.Key) >= string(end) {
			return false
		}
		out = append(out, rec)
		return len(out) < limit
	})
	if err != nil {
		return nil, err
	}
	// Copy values outside the walk (the refs stay valid under the single
	// lock model; this also verifies nothing).
	for i := range out {
		val := make([]byte, 0, out[i].Ref.VLen)
		for _, e := range out[i].Ref.Extents {
			val = append(val, s.Slice(e.Off, e.Len)...)
		}
		out[i].Ref.Extents = nil
		out[i].Value = val
	}
	return out, err
}

// Verify scrubs the store: every record's value bytes are re-read and
// checked against the stored (NIC-derived or computed) checksum. It
// returns the keys that fail — the integrity property the paper obtains
// for free from the transport checksum.
func (s *Store) Verify() ([][]byte, error) {
	var bad [][]byte
	err := s.Ascend(nil, func(rec Record) bool {
		var acc checksum.Accumulator
		for _, e := range rec.Ref.Extents {
			s.r.TouchFrom(s.nd(), e.Off, e.Len)
			acc.Add(s.r.Slice(e.Off, e.Len))
		}
		if checksum.Norm16(checksum.Fold(acc.Sum())) != checksum.Norm16(checksum.Fold(rec.Ref.Csum)) {
			bad = append(bad, rec.Key)
		}
		return true
	})
	return bad, err
}

// SetQuarantineHook installs this store's quarantine observer (test
// hook): it is called with each slot the rescan fences off. Per-store,
// so parallel tests installing observers never race — the former global
// hook tripped the race detector when recovery tests ran in parallel.
func (s *Store) SetQuarantineHook(fn func(slot int, err error)) {
	s.mu.Lock()
	s.onQuarantine = fn
	s.mu.Unlock()
}
