package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"

	"packetstore/internal/checksum"
	"packetstore/internal/pmem"
)

// This file is the redundancy layer: RAID-5-style parity groups over the
// ShardedStore's shards. Each group of up to Config.ParityGroup member
// shards gets one parity partition appended after the shard partitions;
// the partition holds, line for line, the XOR of the members' *data
// areas* (values and key bytes — everything a value checksum or slot CRC
// covers that lives outside the metadata slots). Metadata damage is
// already handled by excision and quarantine; what only redundancy can
// survive is data-area loss, so that is exactly what parity covers.
//
// Maintenance is incremental and rides the existing commit pipeline:
// immediately before a group commit's phase-A flush batch, the store
// folds each dirty data-area line's delta (volatile XOR durable image)
// into the parity partition and adds the parity lines to the same
// FlushSet, so they persist under the same fence. XOR is commutative, so
// members of one group commit concurrently without a group lock: the
// per-line folds are atomic under the region lock and order does not
// matter.
//
// Repair reconstructs a damaged record's data-area ranges as the XOR of
// the parity partition and the surviving members' durable images, then
// re-validates the slot CRC and value checksum before accepting the
// bytes. All reconstruction in one group is serialised by a per-group
// repair mutex; in-place scrub repairs try-lock it and defer on
// contention, while a full rebuild (Rehydrate) blocks on it, which keeps
// the member-mutex quiescing below deadlock-free.

// ErrUnrecoverable marks data loss that exceeds the parity group's
// redundancy: two or more members of one group are damaged in the same
// stripe, so reconstruction cannot produce bytes that re-validate. It is
// always surfaced as a typed error — never as a silent miss.
var ErrUnrecoverable = errors.New("pktstore: data loss exceeds parity redundancy")

var (
	// errRepairDeferred: reconstruction cannot run right now (a group peer
	// is down or rebuilding, another repair holds the group, or the target
	// range has in-flight volatile writes). Retry on a later pass.
	errRepairDeferred = errors.New("pktstore: parity repair deferred")
	// errMetaDamage: the slot's metadata is damaged in a way parity cannot
	// fix (parity covers the data area only). The record takes the
	// excise/quarantine path instead.
	errMetaDamage = errors.New("pktstore: metadata damage outside parity coverage")
)

// parityRT is one member's runtime handle on its parity group, attached
// to the Store after open and immutable afterwards.
type parityRT struct {
	ss    *ShardedStore
	group []int // member shard indices, ascending
	self  int   // this member's shard index
	pbase int   // region offset of the group's parity partition
	// repairMu serialises every reconstruction touching this group —
	// scrub in-place repairs (TryLock; contention defers) and full
	// rebuilds (Lock, taken before any store mutex).
	repairMu *sync.Mutex
}

// parityStride is the per-group parity partition footprint: one member
// data area, page-aligned like the shard partitions.
func parityStride(cfg Config) int {
	return (cfg.DataSlots*cfg.DataBufSize + shardAlign - 1) &^ (shardAlign - 1)
}

// parityGroups returns the member-index groups for a configuration, or
// nil when parity is disabled (ParityGroup < 2 or a single shard — a
// group needs at least one member plus somewhere independent to lose).
func parityGroups(cfg Config, shards int) [][]int {
	if cfg.ParityGroup < 2 || shards < 2 {
		return nil
	}
	k := cfg.ParityGroup
	if k > shards {
		k = shards
	}
	var groups [][]int
	for lo := 0; lo < shards; lo += k {
		hi := lo + k
		if hi > shards {
			hi = shards
		}
		g := make([]int, 0, hi-lo)
		for m := lo; m < hi; m++ {
			g = append(g, m)
		}
		groups = append(groups, g)
	}
	return groups
}

// memberDataBase returns the region offset of shard i's data area.
func (ss *ShardedStore) memberDataBase(i int) int {
	return i*ss.stride + superblockSize + ss.cfg.MetaSlots*ss.cfg.SlotSize
}

// DataAreaBounds returns shard i's data area as a region offset and
// length — the unit the erase fault and partial-damage benchmarks target.
func (ss *ShardedStore) DataAreaBounds(i int) (off, n int) {
	return ss.memberDataBase(i), ss.cfg.DataSlots * ss.cfg.DataBufSize
}

// EraseDataArea destroys shard i's entire data area at media level (both
// images zeroed), modelling the loss of the PM rows behind one shard's
// receive pool. Only parity can bring the records back. Like
// SmashSuperblock, the erasure is serialized with the victim's serving
// and scrub operations via its store lock (peer repairs reading this
// member's bytes hold it too, through lockPeers), so injection lands
// between operations, never mid-read.
func (ss *ShardedStore) EraseDataArea(i int) {
	off, n := ss.DataAreaBounds(i)
	ss.mu.RLock()
	st := ss.shards[i]
	if st == nil {
		st = ss.parked[i]
	}
	ss.mu.RUnlock()
	if st != nil {
		st.mu.Lock()
		defer st.mu.Unlock()
		// Media mutation: bracket it so the victim's lock-free readers
		// discard any copy the erasure overlapped.
		st.beginMutLocked()
		defer st.endMutLocked()
	}
	ss.r.EraseRange(off, n)
}

// SmashSuperblock destroys shard i's superblock magic at media level —
// the shard-loss injection behind the supervised heal runs. The flip is
// serialized with the victim's serving operations via its store lock
// (CorruptRecord models media faults the same way): the damage lands
// between operations, never mid-read of the layout anchor the
// scrubber's health probe revalidates every pass.
func (ss *ShardedStore) SmashSuperblock(i int) {
	ss.mu.RLock()
	st := ss.shards[i]
	if st == nil {
		st = ss.parked[i]
	}
	ss.mu.RUnlock()
	if st == nil {
		return
	}
	st.mu.Lock()
	st.beginMutLocked()
	st.r.CorruptByte(st.base+sbOMagic, 0xff)
	st.endMutLocked()
	st.mu.Unlock()
}

// initParity attaches parity runtimes to the shards and recomputes every
// parity partition wholesale from the members' durable data areas. The
// recompute heals the write hole a crash can leave (parity lines and
// data lines of the cut batch diverge only for never-acked records), at
// the cost of baking in any member media damage that predates this boot
// — the same trade a RAID-5 resync after unclean shutdown makes.
func (ss *ShardedStore) initParity() {
	groups := parityGroups(ss.cfg, len(ss.shards))
	if groups == nil {
		return
	}
	if ss.cfg.SlotSize%pmem.LineSize != 0 || ss.cfg.DataBufSize%pmem.LineSize != 0 {
		panic("pktstore: parity groups need line-aligned geometry (SlotSize and DataBufSize multiples of 64)")
	}
	ss.parity = make([]*parityRT, len(ss.shards))
	pstride := parityStride(ss.cfg)
	pbase0 := len(ss.shards) * ss.stride
	dataLen := ss.cfg.DataSlots * ss.cfg.DataBufSize
	for gi, g := range groups {
		pbase := pbase0 + gi*pstride
		mu := new(sync.Mutex)
		srcs := make([]int, 0, len(g))
		for _, m := range g {
			ss.parity[m] = &parityRT{ss: ss, group: g, self: m, pbase: pbase, repairMu: mu}
			srcs = append(srcs, ss.memberDataBase(m))
		}
		ss.r.EraseRange(pbase, dataLen)
		ss.r.XorReconstruct(pbase, srcs, dataLen)
		for _, m := range g {
			if st := ss.shards[m]; st != nil {
				st.mu.Lock()
				st.parity = ss.parity[m]
				st.mu.Unlock()
			}
		}
	}
}

// VerifyParity checks, at durable-image level, that every parity
// partition equals the XOR of its members' data areas. Valid whenever
// the store is quiescent (every commit fences before releasing the
// store lock, and boot recomputes the partitions).
func (ss *ShardedStore) VerifyParity() error {
	groups := parityGroups(ss.cfg, ss.shardCount())
	if groups == nil {
		return nil
	}
	dataLen := ss.cfg.DataSlots * ss.cfg.DataBufSize
	pstride := parityStride(ss.cfg)
	pbase0 := ss.shardCount() * ss.stride
	acc := make([]byte, dataLen)
	tmp := make([]byte, dataLen)
	for gi, g := range groups {
		ss.r.ReadShadow(acc, pbase0+gi*pstride)
		for _, m := range g {
			ss.r.ReadShadow(tmp, ss.memberDataBase(m))
			for i := range acc {
				acc[i] ^= tmp[i]
			}
		}
		for i, b := range acc {
			if b != 0 {
				return fmt.Errorf("%w: parity group %d mismatch at data-area offset %d", ErrCorrupt, gi, i)
			}
		}
	}
	return nil
}

// applyParityLocked folds the staged group's data-area deltas into the
// parity partition and schedules the parity lines in the same flush
// batch, so they become durable under the group's phase-A fence. Called
// with the store lock held, immediately before the phase-A FlushBatch —
// the only point where data-area lines move toward durability. The
// whole batch folds through one XorDeltaBatch call, so its emulated
// write cost is charged once per commit rather than once per span.
func (s *Store) applyParityLocked() {
	rt := s.parity
	if rt == nil {
		return
	}
	dataEnd := s.dataBase + s.cfg.DataSlots*s.cfg.DataBufSize
	lines := 0
	s.parityFold = s.parityFold[:0]
	s.fs.VisitSpans(func(off, n int) {
		lo, hi := off, off+n
		if lo < s.dataBase {
			lo = s.dataBase
		}
		if hi > dataEnd {
			hi = dataEnd
		}
		if lo >= hi {
			return // metadata or superblock lines: not parity-covered
		}
		poff := rt.pbase + (lo - s.dataBase)
		s.parityFold = append(s.parityFold, pmem.XorSpan{Poff: poff, Off: lo, N: hi - lo})
		s.fs.Add(poff, hi-lo)
		lines += (hi - lo) / pmem.LineSize
	})
	if len(s.parityFold) == 0 {
		return
	}
	s.r.XorDeltaBatch(s.parityFold)
	s.stats.ParityWrites += uint64(lines)
}

// lockPeers snapshots and locks every *other* serving member of the
// group, in ascending shard order. It fails (deferred repair) if any
// peer is down or rebuilding — its durable image cannot be trusted as a
// reconstruction source. The caller holds the group's repairMu, which
// excludes every other multi-store lock holder, so blocking on the peer
// mutexes (held elsewhere only by single-store operations) cannot
// deadlock. Callers must unlockPeers.
func (rt *parityRT) lockPeers() ([]*Store, bool) {
	rt.ss.mu.RLock()
	peers := make([]*Store, 0, len(rt.group)-1)
	for _, m := range rt.group {
		if m == rt.self {
			continue
		}
		st := rt.ss.shards[m]
		if st == nil {
			rt.ss.mu.RUnlock()
			return nil, false
		}
		peers = append(peers, st)
	}
	rt.ss.mu.RUnlock()
	for _, p := range peers {
		p.mu.Lock()
	}
	return peers, true
}

func (rt *parityRT) unlockPeers(peers []*Store) {
	for _, p := range peers {
		p.mu.Unlock()
	}
}

// recordRangesLocked returns the line-aligned, merged data-area ranges a
// record occupies (key bytes plus every value extent), or errMetaDamage
// if the metadata describing them is structurally insane — parity cannot
// repair metadata, so such a record takes the excise path.
func (s *Store) recordRangesLocked(sl []byte) ([][2]int, error) {
	klen := int(binary.LittleEndian.Uint32(sl[oKLen:]))
	koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
	if klen == 0 || klen > 0xffff || !s.inDataArea(koff, klen) {
		return nil, errMetaDamage
	}
	exts, err := s.readExtentsLocked(sl)
	if err != nil {
		return nil, errMetaDamage
	}
	ranges := make([][2]int, 0, len(exts)+1)
	ranges = append(ranges, [2]int{koff, koff + klen})
	for _, e := range exts {
		if e.Len <= 0 || !s.inDataArea(e.Off, e.Len) {
			return nil, errMetaDamage
		}
		ranges = append(ranges, [2]int{e.Off, e.Off + e.Len})
	}
	for i := range ranges {
		ranges[i][0] &^= pmem.LineSize - 1
		ranges[i][1] = (ranges[i][1] + pmem.LineSize - 1) &^ (pmem.LineSize - 1)
	}
	sort.Slice(ranges, func(a, b int) bool { return ranges[a][0] < ranges[b][0] })
	out := ranges[:1]
	for _, rg := range ranges[1:] {
		if t := &out[len(out)-1]; rg[0] <= t[1] {
			if rg[1] > t[1] {
				t[1] = rg[1]
			}
			continue
		}
		out = append(out, rg)
	}
	return out, nil
}

// valueChecksumOKLocked re-reads the record's value bytes against its
// stored transport-derived checksum.
func (s *Store) valueChecksumOKLocked(sl []byte) bool {
	exts, err := s.readExtentsLocked(sl)
	if err != nil {
		return false
	}
	var acc checksum.Accumulator
	for _, e := range exts {
		// A validation sweep misses cache by construction (the bytes were
		// not recently served), so it pays PM read latency — same charge
		// the scrubber's value re-read pays.
		s.r.TouchFrom(s.nd(), e.Off, e.Len)
		acc.Add(s.r.Slice(e.Off, e.Len))
	}
	want := binary.LittleEndian.Uint32(sl[oVCsum:])
	return checksum.Norm16(checksum.Fold(acc.Sum())) == checksum.Norm16(checksum.Fold(want))
}

// liftDamageLocked clears the damage state of a successfully repaired
// record: the media-damage fences on its data slots are lifted (the
// bytes re-validated, so the slots recycle normally once their counts
// drain — the former permanent-fence capacity leak), the serving gate is
// dropped and the slot is stamped as freshly validated.
func (s *Store) liftDamageLocked(idx int) {
	sl := s.slot(idx)
	if exts, err := s.readExtentsLocked(sl); err == nil {
		for _, e := range exts {
			s.dataHeld[s.dataSlotIndex(e.Off)] = false
		}
	}
	koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
	s.dataHeld[s.dataSlotIndex(koff)] = false
	s.setValueBadLocked(idx, false)
	s.scrubStamp[idx] = s.scrubPass
}

// repairRecordLocked reconstructs the data-area bytes of the record in
// slot idx from parity and the surviving group members, accepting the
// result only if the slot CRC and value checksum then validate. Called
// with the store lock held; groupHeld says the caller already owns the
// group's repairMu (a rebuild), otherwise it is try-locked and
// contention defers the repair.
//
// Failure never leaves partial repairs behind: the target ranges are
// snapshotted first and rolled back (volatile and durable image — the
// rollback deliberately bypasses parity maintenance, restoring exactly
// the untracked damaged state) before a non-nil error returns.
//
// Returns nil on success, errRepairDeferred when reconstruction cannot
// run or complete right now, errMetaDamage when the reconstructed bytes
// satisfy the value checksum but not the slot CRC (the damage is in
// CRC-covered metadata parity does not span), and ErrUnrecoverable when
// even reconstructed bytes fail the value checksum — a second member of
// the group has lost the same stripe.
func (s *Store) repairRecordLocked(idx int, groupHeld bool) error {
	rt := s.parity
	if rt == nil {
		return errRepairDeferred
	}
	// Every caller (scrub step, rescan) already holds a mutation bracket;
	// nest one anyway so an in-place rewrite can never run with an even
	// sequence if a future caller forgets.
	s.beginMutLocked()
	defer s.endMutLocked()
	ranges, err := s.recordRangesLocked(s.slot(idx))
	if err != nil {
		return err
	}
	if !groupHeld {
		// A pinned slot has a borrower reading its bytes outside the store
		// lock (a transmit borrow, the server's key arena): rewriting it in
		// place would race that reader. Defer — either the pin drains before
		// the next scrub pass, or repeated deferral escalates to the rebuild
		// path, which quarantines the shard and owns the whole group.
		for _, rg := range ranges {
			for di := s.dataSlotIndex(rg[0]); di <= s.dataSlotIndex(rg[1]-1); di++ {
				if s.dataPins[di].Load() > 0 {
					return errRepairDeferred
				}
			}
		}
		if !rt.repairMu.TryLock() {
			return errRepairDeferred
		}
		defer rt.repairMu.Unlock()
	}
	peers, ok := rt.lockPeers()
	if !ok {
		return errRepairDeferred
	}
	saved := make([][]byte, len(ranges))
	for i, rg := range ranges {
		b := make([]byte, rg[1]-rg[0])
		s.r.ReadShadow(b, rg[0])
		saved[i] = b
	}
	skipped := 0
	srcs := make([]int, 0, len(peers)+1)
	for _, rg := range ranges {
		rel := rg[0] - s.dataBase
		srcs = srcs[:0]
		srcs = append(srcs, rt.pbase+rel)
		for _, p := range peers {
			srcs = append(srcs, p.dataBase+rel)
		}
		skipped += s.r.XorReconstruct(rg[0], srcs, rg[1]-rg[0])
	}
	rt.unlockPeers(peers)
	rollback := func() {
		for i, rg := range ranges {
			s.r.WriteFrom(s.nd(), rg[0], saved[i])
			s.r.PersistFrom(s.nd(), rg[0], len(saved[i]))
		}
	}
	if skipped > 0 {
		// In-flight volatile writes share lines with the record (e.g. a key
		// arena mid-append): the repair is incomplete, try again later.
		rollback()
		return errRepairDeferred
	}
	sl := s.slot(idx)
	crcOK := s.validateSlot(sl) == nil
	valOK := s.valueChecksumOKLocked(sl)
	switch {
	case crcOK && valOK:
		s.liftDamageLocked(idx)
		s.stats.Reconstructions++
		return nil
	case !crcOK && valOK:
		rollback()
		return errMetaDamage
	default:
		rollback()
		s.stats.UnrecoverableSlots++
		return ErrUnrecoverable
	}
}

// coverDataLines sets, in cov (one bit per data-area line), the lines
// every committed record's key bytes and value extents occupy. Records
// whose metadata is too damaged to describe ranges contribute nothing —
// they are headed for excision, which parity cannot prevent anyway.
// Caller holds s.mu.
func (s *Store) coverDataLines(cov []uint64) {
	for i := 0; i < s.cfg.MetaSlots; i++ {
		sl := s.slot(i)
		if binary.LittleEndian.Uint32(sl[oMagic:]) != slotMagic ||
			binary.LittleEndian.Uint64(sl[oSeq:]) == 0 {
			continue
		}
		ranges, err := s.recordRangesLocked(sl)
		if err != nil {
			continue
		}
		for _, rg := range ranges {
			for off := rg[0]; off < rg[1]; off += pmem.LineSize {
				l := (off - s.dataBase) / pmem.LineSize
				cov[l/64] |= 1 << (l % 64)
			}
		}
	}
}

// resyncGroupParity re-derives st's group parity partition from the
// members' current durable data areas — but only on lines no live
// record of the rebuilt member covers. The rebuild path calls it after
// a rehydration that had to reconstruct records, i.e. when the member's
// data area demonstrably lost content: the rescan restores
// record-covered ranges, so those lines are parity-consistent again,
// but free-space bytes the rescan has no reason to restore (orphaned
// staged writes of a cut batch that a data-area erase then destroyed)
// would stay folded into the parity image and poison every member's
// repairs at those offsets. The member's record-covered lines keep
// their parity history untouched. On the resynced lines a *peer's*
// latent, not-yet-scrubbed damage does get baked in — but a line both
// lost on the rebuilt member and damaged on a peer exceeds single-
// parity redundancy anyway; the resync just makes the store's current
// state the new baseline, exactly as a RAID-5 resync after replacing a
// disk does. Skipped when a peer is down; the rebuild that brings it
// back resyncs again.
func (ss *ShardedStore) resyncGroupParity(st *Store) {
	rt := st.parity // immutable once attached
	if rt == nil {
		return
	}
	rt.repairMu.Lock()
	defer rt.repairMu.Unlock()
	peers, ok := rt.lockPeers()
	if !ok {
		return
	}
	defer rt.unlockPeers(peers)
	st.mu.Lock()
	defer st.mu.Unlock()
	dataLen := ss.cfg.DataSlots * ss.cfg.DataBufSize
	nl := dataLen / pmem.LineSize
	cov := make([]uint64, (nl+63)/64)
	st.coverDataLines(cov)
	srcs := make([]int, len(rt.group))
	for i, m := range rt.group {
		srcs[i] = ss.memberDataBase(m)
	}
	run := -1
	shifted := make([]int, len(srcs))
	flush := func(end int) {
		if run < 0 {
			return
		}
		off := run * pmem.LineSize
		n := end*pmem.LineSize - off
		for i, s := range srcs {
			shifted[i] = s + off
		}
		ss.r.EraseRange(rt.pbase+off, n)
		ss.r.XorReconstruct(rt.pbase+off, shifted, n)
		run = -1
	}
	for l := 0; l < nl; l++ {
		if cov[l/64]&(1<<(l%64)) != 0 {
			flush(l)
		} else if run < 0 {
			run = l
		}
	}
	flush(nl)
}

// HeldDataSlots counts data slots currently fenced by the media-damage
// hold — capacity the allocator cannot reuse until a parity repair
// lifts the fence (or, without parity, ever).
func (s *Store) HeldDataSlots() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, h := range s.dataHeld {
		if h {
			n++
		}
	}
	return n
}

// ScrubPass returns the scrubber's current sweep generation (advanced
// each time a scrub pass wraps the slot array). Rebuilds use the
// per-slot stamps from earlier generations to skip re-validating
// recently-clean records.
func (s *Store) ScrubPass() uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.scrubPass
}
