package core

import (
	"encoding/binary"
	"time"
)

// prepared describes one staged put awaiting its group commit: the slot
// image is written (seq=0), the record is linked into the volatile
// index, and its dirty lines sit in the store's FlushSet.
type prepared struct {
	slot int    // metadata slot holding the uncommitted image
	seq  uint64 // commit sequence assigned at stage time
	// old is the committed slot this put replaces (-1 if none); its
	// commit word is cleared in phase C, after the group fence makes the
	// replacement durable.
	old int
	// linkOff is the region offset of the level-0 pointer that targets
	// this record (head tower or predecessor tower), flushed with the
	// commit words in phase B.
	linkOff int
	// superseded marks a staged put overwritten by a later put of the
	// same key inside the same batch: its slots were recycled at stage
	// time and its commit word is never stamped.
	superseded bool
}

// since returns the elapsed time for a breakdown phase, or 0 when
// breakdown collection is off (the fast path then never reads the
// clock: tnow returned the zero Time).
func (s *Store) since(t time.Time) time.Duration {
	if !s.cfg.Breakdown {
		return 0
	}
	return time.Since(t)
}

// tnow reads the clock only when breakdown collection is on.
func (s *Store) tnow() time.Time {
	if !s.cfg.Breakdown {
		return time.Time{}
	}
	return time.Now()
}

// PutStaged stages a copying write for the next Commit: the record is
// written, linked and readable, but not durable — and must not be
// acknowledged — until Commit's group fence. Any read, delete, sync or
// close commits the pending group first.
func (s *Store) PutStaged(key, value []byte) error {
	return s.putCopy(key, value, true)
}

// PutExtentsStaged stages a zero-copy write for the next Commit (see
// PutStaged for the deferred-durability contract).
func (s *Store) PutExtentsStaged(key []byte, vlen int, opt PutOptions) error {
	if len(key) == 0 || len(key) > 0xffff {
		return ErrKeyTooLong
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stagePutLocked(key, vlen, opt)
}

// Commit makes every staged put durable under one group flush and
// fence, and retires the versions they replaced. A no-op when nothing
// is staged.
func (s *Store) Commit() {
	s.mu.Lock()
	s.commitStagedLocked()
	s.mu.Unlock()
}

// StagedPuts reports how many puts await the next Commit.
func (s *Store) StagedPuts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for i := range s.staged {
		if !s.staged[i].superseded {
			n++
		}
	}
	return n
}

// stagedIndexOf finds the live staged entry occupying slot idx, or -1.
func (s *Store) stagedIndexOf(idx int) int {
	for i := range s.staged {
		if s.staged[i].slot == idx && !s.staged[i].superseded {
			return i
		}
	}
	return -1
}

// commitStagedLocked is the group commit: three flush batches, each
// followed by one fence (phase C only when the group replaced committed
// records).
//
//	A: the staged images, data lines, key bytes and chain slots — all
//	   accumulated in s.fs at stage time — deduplicated and flushed.
//	B: commit words stamped with the stage-assigned sequences, plus the
//	   level-0 links. They share a fence because recovery rebuilds the
//	   index from committed slots alone: a link without its commit word
//	   is swept away, and a commit word without its link is found by
//	   the scan.
//	C: replaced records' commit words cleared, then their slots and
//	   data references recycled. Clearing strictly after the B fence
//	   keeps the invariant that at every instant a committed version of
//	   each acked key exists on media.
func (s *Store) commitStagedLocked() {
	if len(s.staged) == 0 {
		// No seqlock bracket on the empty case: read-path commit barriers
		// land here constantly and must not churn the mutation sequence.
		return
	}
	s.beginMutLocked()
	defer s.endMutLocked()
	tFlush := s.tnow()
	// Phase A. Parity deltas fold in first so the parity lines join the
	// same batch and persist under the same fence as the data they cover.
	s.applyParityLocked()
	s.r.FlushBatchFrom(s.nd(), &s.fs)
	s.r.Fence()

	// Phase B.
	live := 0
	for i := range s.staged {
		p := &s.staged[i]
		if p.superseded {
			continue
		}
		live++
		off := s.slotOff(p.slot)
		s.r.WriteUint64From(s.nd(), off+oSeq, p.seq)
		s.fs.Add(off+oSeq, 8)
		s.fs.Add(p.linkOff, 4)
	}
	s.r.FlushBatchFrom(s.nd(), &s.fs)
	s.r.Fence()

	// Phase C.
	clears := false
	for i := range s.staged {
		if p := &s.staged[i]; p.old >= 0 {
			o := s.slotOff(p.old) + oSeq
			s.r.WriteUint64From(s.nd(), o, 0)
			s.fs.Add(o, 8)
			clears = true
		}
	}
	if clears {
		s.r.FlushBatchFrom(s.nd(), &s.fs)
		s.r.Fence()
		for i := range s.staged {
			if p := &s.staged[i]; p.old >= 0 {
				s.recycleRecordLocked(p.old)
			}
		}
	}
	if live > 1 {
		s.stats.GroupCommits++
		s.stats.GroupedPuts += uint64(live)
	}
	s.bd.Flush += s.since(tFlush)
	s.staged = s.staged[:0]
	s.stagedN.Store(0)
}

// supersedeStagedLocked handles a same-key overwrite landing on a
// staged (uncommitted) record of the current batch: the earlier put's
// commit word is never stamped, its slots and data references are
// recycled immediately (nothing on media refers to them: seq stays 0),
// and responsibility for the committed old version it was replacing —
// if any — transfers to the new put. Returns that inherited old slot.
func (s *Store) supersedeStagedLocked(j int) int {
	p := &s.staged[j]
	inherited := p.old
	p.old = -1
	p.superseded = true
	s.recycleRecordLocked(p.slot)
	return inherited
}

// recycleRecordLocked returns a record's metadata slots (itself plus
// extent chains) to the free list and drops its data references,
// without touching the commit word — the caller has already cleared it
// (freeRecordLocked), batched the clear (phase C), or never stamped it
// (superseded staged puts).
func (s *Store) recycleRecordLocked(idx int) {
	s.clearDescLocked(idx)
	sl := s.slot(idx)
	exts, err := s.readExtentsLocked(sl)
	koff := int(binary.LittleEndian.Uint32(sl[oKOff:]))
	chain := int(binary.LittleEndian.Uint32(sl[oChain:])) - 1
	for chain >= 0 {
		cs := s.slot(chain)
		next := int(binary.LittleEndian.Uint32(cs[oChainNext:])) - 1
		s.r.WriteUint32From(s.nd(), s.slotOff(chain)+oMagic, 0)
		s.metaFree = append(s.metaFree, chain)
		chain = next
	}
	s.metaFree = append(s.metaFree, idx)
	if err == nil {
		for _, e := range exts {
			s.unrefDataLocked(e.Off)
		}
	}
	s.unrefDataLocked(koff)
}
